package netsmith

import (
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/expert"
	"netsmith/internal/fault"
	"netsmith/internal/layout"
	"netsmith/internal/power"
	"netsmith/internal/route"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
	"netsmith/internal/vc"
)

// Re-exported core types. These aliases form the public API surface;
// the implementation lives in internal packages.
type (
	// Grid is a physical router placement.
	Grid = layout.Grid
	// Class is a Kite-taxonomy link-length budget.
	Class = layout.Class
	// Topology is a directed NoI topology.
	Topology = topo.Topology
	// Cut is a two-way partition with its bandwidth.
	Cut = topo.Cut
	// Result is a synthesis outcome (topology + bound + gap).
	Result = synth.Result
	// ProgressPoint samples solver progress (Figure 5 style).
	ProgressPoint = synth.ProgressPoint
	// Routing is a per-flow shortest-path table.
	Routing = route.Routing
	// VCAssignment maps flows to deadlock-free VC layers.
	VCAssignment = vc.Assignment
	// Network bundles topology, routing and VCs, ready to simulate.
	Network = sim.Setup
	// SweepResult is a latency-vs-injection curve with saturation.
	SweepResult = sim.SweepResult
	// Pattern is a synthetic traffic pattern.
	Pattern = traffic.Pattern
	// Objective selects what Generate optimizes.
	Objective = synth.Objective
	// SimConfig parameterizes one simulation run (cycle budgets, VC and
	// buffer geometry); used as the Base of a MatrixConfig.
	SimConfig = sim.Config
	// MatrixConfig drives a {topology x pattern x rate} scenario matrix.
	MatrixConfig = sim.MatrixConfig
	// MatrixResult is a scenario matrix outcome (per-curve points plus
	// zero-load latency and saturation throughput).
	MatrixResult = sim.MatrixResult
	// PatternFactory names a workload and builds fresh instances of it.
	PatternFactory = sim.PatternFactory
	// EnergyReport is a run's measured-energy outcome: raw activity
	// counters plus their picojoule conversion (set SimConfig's
	// CollectEnergy, or use RunEnergy).
	EnergyReport = sim.EnergyReport
	// PowerModel holds the 22nm technology constants shared by the
	// analytic estimate and the measured conversion.
	PowerModel = power.Model
	// PowerReport is the analytic power/area estimate (paper Figure 9).
	PowerReport = power.Report
	// Store is a content-addressed on-disk result cache (OpenStore);
	// attach it to MatrixConfig.Store for cached, resumable matrix runs
	// or pass it to GenerateCached for cached synthesis.
	Store = store.Store
	// Shard deterministically partitions a matrix's cells for
	// distributed execution (MatrixConfig.Shard); see ParseShard for
	// the "i/n" CLI form.
	Shard = sim.Shard
	// MatrixStats reports a store-backed matrix run's simulated/cached
	// cell split (MatrixResult.Stats).
	MatrixStats = sim.MatrixStats
	// IncompleteError is returned by RunMatrix when a sharded run has
	// persisted its own cells but other shards' cells are not yet in
	// the store.
	IncompleteError = sim.IncompleteError
	// FaultSchedule is a deterministic timeline of link/router failures
	// and recoveries; attach to SimConfig.FaultSchedule or run a fault
	// axis with MatrixConfig.Faults.
	FaultSchedule = fault.Schedule
	// FaultEvent is one failure or recovery in a schedule.
	FaultEvent = fault.Event
	// FaultFactory names a fault schedule and builds it per topology for
	// a matrix's fault axis (MatrixConfig.Faults).
	FaultFactory = sim.FaultFactory
	// SynthConfig is the resolved solver configuration — the type of
	// ParetoConfig.Base. Build one from the public surface with
	// Options.SynthConfig.
	SynthConfig = synth.Config
	// ParetoConfig parameterizes a Pareto-frontier sweep (ParetoSweep):
	// a base synthesis config plus the EnergyWeight/RobustWeight grids,
	// the measured rate grid and the sim fidelity.
	ParetoConfig = exp.ParetoConfig
	// Frontier is a sweep's dominated-point-free artifact: surviving
	// points in sweep order plus the fleet-level energy aggregate.
	Frontier = exp.Frontier
	// FrontierPoint is one surviving sweep point (synthesized topology +
	// measured latency/saturation/power split).
	FrontierPoint = exp.ParetoPoint
	// FleetEnergy is the sweep-level PUE-style aggregate: idle vs.
	// active power shares and mean energy per delivered flit.
	FleetEnergy = exp.FleetEnergy
	// ParetoStats reports what a sweep actually did (synthesized vs.
	// cached points and cells; FrontierCached for a warm-frontier hit).
	ParetoStats = exp.ParetoStats
	// ParetoIncompleteError is returned by a sharded sweep whose owned
	// points are persisted but whose frontier awaits other shards.
	ParetoIncompleteError = exp.ParetoIncompleteError
)

// Link-length classes (small (1,1), medium (2,0), large (2,1)).
const (
	Small  = layout.Small
	Medium = layout.Medium
	Large  = layout.Large
)

// Objectives.
const (
	// LatOp minimizes average hop count.
	LatOp = synth.LatOp
	// SCOp maximizes sparsest-cut bandwidth.
	SCOp = synth.SCOp
	// PatternOp minimizes traffic-weighted hops (set Options.Weights).
	PatternOp = synth.Weighted
)

// Paper-standard grids, plus a beyond-paper scalability configuration.
var (
	// Grid4x5 is the 20-router interposer layout.
	Grid4x5 = layout.Grid4x5
	// Grid6x5 is the 30-router layout.
	Grid6x5 = layout.Grid6x5
	// Grid8x6 is the 48-router scalability layout.
	Grid8x6 = layout.Grid8x6
	// Grid10x10 is the 100-router scalability layout. Synthesis has no
	// 64-router cap: Generate accepts any NewGrid(rows, cols).
	Grid10x10 = layout.Grid10x10
)

// NewGrid returns a rows x cols router placement. Any size is accepted;
// grids beyond 64 routers use the synthesizer's multi-word bitset path.
func NewGrid(rows, cols int) *Grid { return layout.NewGrid(rows, cols) }

// Options parameterizes topology generation. Zero values select paper
// defaults (radix 4, asymmetric links allowed).
type Options struct {
	Grid        *Grid
	Class       Class
	Objective   Objective
	Radix       int
	Symmetric   bool
	MaxDiameter int
	MinCutBW    float64
	Weights     [][]float64 // for PatternOp
	// EnergyWeight > 0 adds the energy-proxy term (wire dynamic +
	// per-port leakage) to the synthesis objective; the chosen topology's
	// proxy value is reported in Result.EnergyProxy.
	EnergyWeight float64
	// RobustWeight > 0 adds the fragility term (degree slack below 2
	// plus pooled min-cut slack below 2) to the objective and runs the
	// post-anneal critical-link oracle; the chosen topology's residual
	// exposure is reported in Result.CriticalLinks / Result.Fragility.
	RobustWeight float64
	Seed         int64
	// Iterations and Restarts bound the fixed-budget search (zero
	// selects the paper defaults). Fixed budgets are deterministic and
	// cacheable; both are ignored when TimeBudget > 0.
	Iterations int
	Restarts   int
	TimeBudget time.Duration
	// Population >= 2 switches the fixed-budget search to population
	// mode: a pool of Population topologies evolved for Generations
	// rounds (default 8) of tournament crossover + anneal-burst
	// mutation, elitist-merged deterministically. Total budget is
	// Population*(1+Generations)*Iterations annealing steps. Generation
	// counts require Population; Population 1 is invalid.
	Population  int
	Generations int
	Progress    func(ProgressPoint)
}

// synthConfig maps the public Options onto the solver config — the one
// translation shared by Generate and GenerateCached, so the cached and
// uncached paths cannot drift.
func (o Options) synthConfig() synth.Config {
	cfg := synth.Config{
		Grid: o.Grid, Class: o.Class, Objective: o.Objective,
		Radix: o.Radix, Symmetric: o.Symmetric, MaxDiameter: o.MaxDiameter,
		MinCutBW: o.MinCutBW, Weights: o.Weights, EnergyWeight: o.EnergyWeight,
		RobustWeight: o.RobustWeight,
		Seed:         o.Seed, Iterations: o.Iterations, Restarts: o.Restarts,
		TimeBudget: o.TimeBudget, Progress: o.Progress,
		Population: o.Population, Generations: o.Generations,
	}
	if o.TimeBudget > 0 {
		// Time-bounded runs should not stop early on iteration count.
		cfg.Iterations = 1 << 30
		cfg.Restarts = 1 << 20
	}
	return cfg
}

// SynthConfig resolves the Options into the solver configuration that
// ParetoSweep expects as ParetoConfig.Base — the exact translation
// Generate and GenerateCached use, so a sweep's per-point synthesis
// cache entries are shared with direct GenerateCached calls. The
// sweep requires a fixed budget (no TimeBudget) and zero
// EnergyWeight/RobustWeight: the sweep grids set the weights per
// point.
func (o Options) SynthConfig() SynthConfig { return o.synthConfig() }

// Generate discovers a topology for the given options.
func Generate(o Options) (*Result, error) { return synth.Generate(o.synthConfig()) }

// Baseline returns a named expert-designed or prior-synthesis topology
// for the grid; see BaselineNames.
func Baseline(name string, g *Grid) (*Topology, error) { return expert.Get(name, g) }

// BaselineNames lists available baselines for a grid.
func BaselineNames(g *Grid) []string { return expert.Names(g) }

// Mesh returns the standard 2D mesh for a grid.
func Mesh(g *Grid) *Topology { return expert.Mesh(g) }

// FoldedTorus returns the folded torus for a grid.
func FoldedTorus(g *Grid) *Topology { return expert.FoldedTorus(g) }

// MCLB computes minimum-maximum-channel-load shortest-path routing.
func MCLB(t *Topology, seed int64) (*Routing, error) {
	return route.MCLB(t, route.MCLBOptions{Seed: seed})
}

// NDBT computes the expert-topology no-double-back-turns routing.
func NDBT(t *Topology, seed int64) (*Routing, error) { return route.NDBT(t, seed) }

// AssignVCs partitions routed flows into deadlock-free VC layers and
// verifies the result.
func AssignVCs(r *Routing, seed int64) (*VCAssignment, error) {
	a, err := vc.Assign(r, vc.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := a.Verify(r); err != nil {
		return nil, err
	}
	return a, nil
}

// Prepare builds MCLB routing plus verified VC assignment for a
// topology (NetSmith's standard pipeline).
func Prepare(t *Topology) (*Network, error) { return sim.Prepare(t, sim.UseMCLB, 1) }

// PrepareNDBT is Prepare with the expert heuristic routing.
func PrepareNDBT(t *Topology) (*Network, error) { return sim.Prepare(t, sim.UseNDBT, 1) }

// UniformTraffic returns uniform-random all-to-all traffic over n nodes.
func UniformTraffic(n int) Pattern { return traffic.Uniform{N: n} }

// ShuffleTraffic returns the gem5 shuffle permutation over n nodes.
func ShuffleTraffic(n int) Pattern { return traffic.Shuffle{N: n} }

// MemoryTraffic returns core-to-MC request/reply traffic for a grid.
func MemoryTraffic(g *Grid) Pattern {
	return traffic.NewMemory(g.CoreRouters(), g.MemoryControllerRouters())
}

// ShuffleWeights returns the shuffle demand matrix for PatternOp
// synthesis.
func ShuffleWeights(n int) [][]float64 { return traffic.Shuffle{N: n}.WeightMatrix() }

// PatternNames lists the workload registry's built-in traffic patterns
// (uniform, shuffle, memory, transpose, bitcomp, bitrev, tornado,
// hotspot, bursty, trace).
func PatternNames() []string { return traffic.Default().Names() }

// BuildPattern constructs a fresh instance of a registered pattern for a
// grid. params may be nil; see the registry's ParamSpecs (e.g. hotspot
// takes "weight" and "hot", bursty takes "base", "ponoff", "poffon").
func BuildPattern(name string, g *Grid, params map[string]string) (Pattern, error) {
	return traffic.Default().Build(name, traffic.GridEnv(g), traffic.Params(params))
}

// PatternFactoryFor returns a RunMatrix factory for a registered pattern.
func PatternFactoryFor(name string, g *Grid, params map[string]string) PatternFactory {
	return sim.RegistryFactory(traffic.Default(), name, traffic.GridEnv(g), traffic.Params(params))
}

// FaultNames lists the fault-schedule registry's built-in generators
// (none, klinks, krouters, randlinks, list).
func FaultNames() []string { return fault.Default().Names() }

// BuildFaultSchedule constructs a registered fault schedule against a
// topology. params may be nil; see the registry's ParamSpecs (e.g.
// klinks takes "k", "seed", "at", "until").
func BuildFaultSchedule(name string, t *Topology, params map[string]string) (*FaultSchedule, error) {
	return fault.Default().Build(name, t, fault.Params(params))
}

// ParseFaultArg splits the CLI form "name:key=val:..." used by
// netbench -faults into a registry name and parameter map.
func ParseFaultArg(arg string) (name string, params map[string]string, err error) {
	name, p, err := fault.ParseScheduleArg(arg)
	return name, p, err
}

// FaultFactoryFor returns a RunMatrix fault-axis factory for a
// registered schedule generator; the factory rebuilds the schedule per
// topology, so link-count-relative generators (klinks, region) adapt to
// each matrix topology.
func FaultFactoryFor(name string, params map[string]string) FaultFactory {
	return sim.FaultRegistryFactory(fault.Default(), name, fault.Params(params))
}

// RunMatrix simulates every {topology x pattern x rate} cell of a
// scenario matrix on a bounded worker pool. Results are deterministic
// for a given config at any GOMAXPROCS; cmd/netbench -matrix is the CLI
// front end.
//
// With MatrixConfig.Store set, cells are content-addressed: cached
// cells are returned without simulating (bit-identical to a fresh
// run), fresh cells are persisted, and an interrupted run resumed over
// the same store completes from where it stopped. With
// MatrixConfig.Shard enabled, only the owned subset of cells is
// simulated; RunMatrix returns *IncompleteError until every shard has
// run against the shared store, after which the assembled matrix is
// byte-identical to an unsharded run.
func RunMatrix(c MatrixConfig) (*MatrixResult, error) { return sim.RunMatrix(c) }

// OpenStore creates (if needed) and opens a content-addressed result
// store rooted at dir. Stores are safe for concurrent use and may be
// shared between processes (matrix shards on different machines can
// point at one directory over a shared filesystem). Cached entries are
// invalidated wholesale when the store schema version changes.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// ParseShard parses the "i/n" shard notation used by the CLIs (e.g.
// "0/2" is the first of two shards); "" means unsharded.
func ParseShard(arg string) (Shard, error) { return sim.ParseShard(arg) }

// GenerateCached is Generate behind a result store: repeated calls
// with the same fixed-budget Options return the previously discovered
// topology without searching. The bool reports a cache hit; cached
// results carry no solver Trace, and time-budgeted runs (Options.
// TimeBudget > 0) bypass the cache entirely because their outcome
// depends on the wall clock. A nil store falls through to Generate.
func GenerateCached(st *Store, o Options) (*Result, bool, error) {
	return synth.CachedGenerate(st, o.synthConfig())
}

// ParetoSweep runs a Pareto-frontier sweep: one cache-first synthesis
// per (EnergyWeight, RobustWeight) grid point, a matrix measurement of
// every distinct candidate, exact non-domination pruning, and
// fleet-level energy aggregation. Deterministic — same config, same
// frontier bytes, at any GOMAXPROCS, warm or cold store — and cached
// wholesale under a canonical pareto key when c.Store is set. See
// Client.Pareto for the served/remote form of the same sweep.
func ParetoSweep(c ParetoConfig) (*Frontier, error) { return exp.ParetoSweep(c) }

// Sweep runs a latency-vs-injection sweep for a prepared network under a
// pattern. rates nil selects the standard grid; fast trades fidelity for
// runtime.
func Sweep(n *Network, p Pattern, rates []float64, fast bool, seed int64) (*SweepResult, error) {
	return n.Curve(p, rates, fast, seed)
}

// SweepUniform is Sweep with uniform-random traffic.
func SweepUniform(n *Network, rates []float64, seed int64) (*SweepResult, error) {
	return n.Curve(traffic.Uniform{N: n.Topo.N()}, rates, true, seed)
}

// Default22nm returns the calibrated 22nm technology constants used by
// both the analytic power model and the measured-energy conversion.
func Default22nm() PowerModel { return power.Default22nm() }

// AnalyzePower is the analytic power/area estimate for a prepared
// network at a uniform offered load (packets/node/cycle) — the model
// behind the paper's Figure 9.
func AnalyzePower(n *Network, rate float64, m PowerModel) PowerReport {
	return power.Analyze(n.Topo, n.Routing, rate, m)
}

// RunEnergy simulates a prepared network under a pattern with activity
// counters enabled and returns the measured-energy report alongside the
// run result. cfg-level control (cycle budgets, custom models) is
// available through SimConfig.CollectEnergy / SimConfig.EnergyModel with
// RunMatrix or sim.Run.
func RunEnergy(n *Network, p Pattern, rate float64, seed int64) (*sim.Result, *EnergyReport, error) {
	res, err := sim.Run(sim.Config{
		Topo: n.Topo, Routing: n.Routing, VC: n.VC,
		Pattern: p, InjectionRate: rate, Seed: seed,
		CollectEnergy: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, res.Energy, nil
}
