module netsmith

go 1.22
