package netsmith

// Benchmark harness: one benchmark per paper table/figure (regenerating
// the same rows/series, at fast fidelity) plus ablation benches for the
// design choices called out in DESIGN.md and micro-benchmarks of the
// core kernels. Run:
//
//	go test -bench=. -benchmem
//
// For paper-formatted output use cmd/netbench.

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"netsmith/internal/bitgraph"
	"netsmith/internal/exp"
	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/route"
	"netsmith/internal/sim"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
)

var (
	suiteOnce sync.Once
	suite     *exp.Suite
)

func benchSuite() *exp.Suite {
	suiteOnce.Do(func() { suite = exp.NewSuite(true) })
	return suite
}

// BenchmarkTable2 regenerates Table II (topology metrics, 20 and 30
// routers).
func BenchmarkTable2(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintTable2(io.Discard, rows)
			for _, r := range rows {
				if r.Topology == "NS-LatOp-medium" && r.Routers == 20 {
					b.ReportMetric(r.AvgHops, "NS-medium-avghops")
				}
			}
		}
	}
}

// BenchmarkFig1 regenerates the latency-vs-saturation scatter.
func BenchmarkFig1(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		pts, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig1(io.Discard, pts)
		}
	}
}

// BenchmarkFig5 regenerates the solver-progress traces.
func BenchmarkFig5(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		traces, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig5(io.Discard, traces)
		}
	}
}

// BenchmarkFig6 regenerates the synthetic-traffic curves (coherence and
// memory, 20 routers).
func BenchmarkFig6(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		curves, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig6(io.Discard, curves)
		}
	}
}

// BenchmarkFig7 regenerates the topology-vs-routing isolation study.
func BenchmarkFig7(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig7(io.Discard, rows)
		}
	}
}

// BenchmarkFig8 regenerates the PARSEC full-system study.
func BenchmarkFig8(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig8(io.Discard, rows)
			for _, r := range rows {
				if r.Benchmark == "geomean" && r.Topology == "NS-LatOp-large" {
					b.ReportMetric(r.Speedup, "NS-large-geomean-speedup")
				}
			}
		}
	}
}

// BenchmarkFig9 regenerates the power/area analysis.
func BenchmarkFig9(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig9(io.Discard, rows)
		}
	}
}

// BenchmarkFig10 regenerates the shuffle-pattern study.
func BenchmarkFig10(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		curves, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig10(io.Discard, curves)
		}
	}
}

// BenchmarkFig11 regenerates the 48-router scalability study.
func BenchmarkFig11(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		curves, err := s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.PrintFig11(io.Discard, curves)
		}
	}
}

// --- Ablations -----------------------------------------------------

// BenchmarkAblationSymmetry quantifies the cost of forcing symmetric
// links (paper: <3% latency loss, no bandwidth loss).
func BenchmarkAblationSymmetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := synth.Config{Grid: layout.Grid4x5, Class: layout.Medium,
			Objective: synth.LatOp, Seed: 42, Iterations: 20000, Restarts: 2}
		asym, err := synth.Generate(base)
		if err != nil {
			b.Fatal(err)
		}
		symCfg := base
		symCfg.Symmetric = true
		sym, err := synth.Generate(symCfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(asym.Topology.AverageHops(), "asym-avghops")
			b.ReportMetric(sym.Topology.AverageHops(), "sym-avghops")
		}
	}
}

// BenchmarkAblationDiameter measures the effect of the optional C8
// diameter bound on solution quality at a fixed budget.
func BenchmarkAblationDiameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := synth.Config{Grid: layout.Grid4x5, Class: layout.Large,
			Objective: synth.LatOp, Seed: 42, Iterations: 12000, Restarts: 2}
		free, err := synth.Generate(base)
		if err != nil {
			b.Fatal(err)
		}
		bounded := base
		bounded.MaxDiameter = 4
		bnd, err := synth.Generate(bounded)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(free.Gap, "unbounded-gap")
			b.ReportMetric(bnd.Gap, "bounded-gap")
		}
	}
}

// BenchmarkAblationCutPool compares SCOp with the lazy cut pool against
// a dense random pool of the same search budget.
func BenchmarkAblationCutPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := synth.Config{Grid: layout.Grid4x5, Class: layout.Medium,
			Objective: synth.SCOp, Seed: 42, Iterations: 12000, Restarts: 2}
		res, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Objective*100, "scop-bandwidth-x100")
		}
	}
}

// BenchmarkAblationRadix checks the paper's observation that a higher
// radix converges faster (smaller gap at equal budget).
func BenchmarkAblationRadix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var gaps [2]float64
		for j, radix := range []int{4, 6} {
			cfg := synth.Config{Grid: layout.Grid4x5, Class: layout.Medium,
				Objective: synth.LatOp, Radix: radix, Seed: 42,
				Iterations: 10000, Restarts: 2}
			res, err := synth.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			gaps[j] = res.Gap
		}
		if i == 0 {
			b.ReportMetric(gaps[0], "radix4-gap")
			b.ReportMetric(gaps[1], "radix6-gap")
		}
	}
}

// --- Micro-benchmarks of the core kernels ---------------------------

// BenchmarkBitgraphAPSP measures the bitmask all-pairs BFS on a
// 20-router topology (the annealer's inner loop).
func BenchmarkBitgraphAPSP(b *testing.B) {
	t := expert.Mesh(layout.Grid4x5)
	g := bitgraph.New(20)
	for _, l := range t.Links() {
		g.Add(l.From, l.To)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HopStats()
	}
}

// BenchmarkSparsestCutExact measures exhaustive sparsest-cut evaluation
// at 20 routers (2^19 partitions).
func BenchmarkSparsestCutExact(b *testing.B) {
	t := expert.Mesh(layout.Grid4x5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := t.Clone()
		fresh.SparsestCut()
	}
}

// BenchmarkMCLB20 measures MCLB path selection on a 20-router Kite.
func BenchmarkMCLB20(b *testing.B) {
	t, err := expert.Get(expert.NameKiteMedium, layout.Grid4x5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.MCLB(t, route.MCLBOptions{Seed: int64(i), Restarts: 2, Sweeps: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesisIteration measures annealing throughput
// (iterations/second) via a fixed-iteration LatOp run on the paper's
// 4x5 medium configuration. PR 2's incremental evaluator took this
// from ~5.7 ms to ~1.4 ms per 5000-iteration run on the CI Xeon
// (interleaved A/B against the PR 1 engine).
func BenchmarkSynthesisIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := synth.Generate(synth.Config{Grid: layout.Grid4x5, Class: layout.Medium,
			Objective: synth.LatOp, Seed: int64(i), Iterations: 5000, Restarts: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPopulationGeneration measures population-mode synthesis on
// the paper's 4x5 medium configuration: a 4-member pool evolved for 2
// generations of 1200-step bursts (tournament crossover, journaled
// repair, elitist merge). The benchdiff gate holds its ns/op and
// allocs/op so operator overhead (crossover scratch graphs, repair
// probes) stays visible.
func BenchmarkPopulationGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := synth.Generate(synth.Config{Grid: layout.Grid4x5, Class: layout.Medium,
			Objective: synth.LatOp, Seed: int64(i), Iterations: 1200, Restarts: 1,
			Population: 4, Generations: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesisIteration100 is the same throughput measurement on
// the beyond-paper 100-router grid, exercising the multi-word bitset
// path (the PR 1 engine capped out at 64 routers).
func BenchmarkSynthesisIteration100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := synth.Generate(synth.Config{Grid: layout.Grid10x10, Class: layout.Medium,
			Objective: synth.LatOp, Seed: int64(i), Iterations: 2000, Restarts: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalEval measures the evaluator's raw delta-query
// throughput: speculative remove+rollback and remove+re-add cycles on a
// dense 20-router graph, the annealer's innermost workload.
func BenchmarkIncrementalEval(b *testing.B) {
	g := bitgraph.New(20)
	for i := 0; i < 20; i++ {
		g.Add(i, (i+1)%20)
		g.Add((i+1)%20, i)
	}
	for a := 0; a < 20; a++ {
		for d := 2; d <= 3; d++ {
			if g.OutDeg[a] < 4 && g.InDeg[(a+d)%20] < 4 {
				g.Add(a, (a+d)%20)
			}
		}
	}
	e := bitgraph.NewEval(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := g.LinkAt(i % g.NumLinks())
		e.Begin()
		e.Remove(l.A, l.B)
		if e.Pending() > 0 && i%2 == 0 {
			e.Rollback()
			continue
		}
		_ = e.Total()
		e.Commit()
		e.Begin()
		e.Add(l.A, l.B)
		e.Commit()
	}
}

// BenchmarkEngineSteadyState measures raw flit-engine throughput: one
// fixed-window simulation of a 4x5 mesh under uniform traffic at
// moderate load. Run with -benchmem: steady-state cycles must not
// allocate (packets are pooled; buffers and link queues are flat rings),
// so allocs/op stays bounded by engine setup.
func BenchmarkEngineSteadyState(b *testing.B) {
	s, err := sim.Prepare(expert.Mesh(layout.Grid4x5), sim.UseNDBT, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Topo: s.Topo, Routing: s.Routing, VC: s.VC,
			Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.09,
			WarmupCycles: 2000, MeasureCycles: 8000, DrainCycles: 8000,
			Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stalled {
			b.Fatal("stalled")
		}
	}
}

// BenchmarkEngineSteadyStateEnergy is BenchmarkEngineSteadyState with
// activity counters enabled: the same fixed-window simulation plus
// per-router/per-link energy accounting. The benchdiff gate holds it to
// the usual allocs/op ceiling (the counters are flat arrays sized at
// setup) and its ns/op must track the non-energy benchmark within a few
// percent — the counting is three predictable branch+increment pairs on
// already-hot cache lines.
func BenchmarkEngineSteadyStateEnergy(b *testing.B) {
	s, err := sim.Prepare(expert.Mesh(layout.Grid4x5), sim.UseNDBT, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Topo: s.Topo, Routing: s.Routing, VC: s.VC,
			Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.09,
			WarmupCycles: 2000, MeasureCycles: 8000, DrainCycles: 8000,
			CollectEnergy: true,
			Seed:          int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stalled || res.Energy == nil {
			b.Fatal("bad energy run")
		}
	}
}

// BenchmarkEngineIdleFastForward measures the hybrid stepper's win on
// quiescent stretches: a trace that dries up early in the warmup window
// leaves the engine with nothing to do until the measure-window end,
// and the Never injection hint lets it jump there instead of idling
// cycle by cycle. The benchdiff baseline pins the fast-forwarded cost;
// regressions here mean the skip gate stopped engaging.
func BenchmarkEngineIdleFastForward(b *testing.B) {
	s, err := sim.Prepare(expert.Mesh(layout.Grid4x5), sim.UseNDBT, 1)
	if err != nil {
		b.Fatal(err)
	}
	var recs []traffic.TraceRecord
	for c := int64(0); c < 100; c++ {
		for src := 0; src < 20; src++ {
			recs = append(recs, traffic.TraceRecord{Cycle: c, Src: src, Dst: (src + 1) % 20, Flits: 1})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := traffic.NewReplay("idle", 20, recs, false)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Topo: s.Topo, Routing: s.Routing, VC: s.VC,
			Pattern: rep, InjectionRate: 1.0,
			WarmupCycles: 2000, MeasureCycles: 8000, DrainCycles: 8000,
			Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stalled {
			b.Fatal("stalled")
		}
	}
}

// BenchmarkMatrixBatched measures one smoke-fidelity scenario matrix on
// a 4x4 mesh: the per-worker engine-reuse path that RunMatrix uses by
// default, covering setup amortization across {pattern x rate} cells.
func BenchmarkMatrixBatched(b *testing.B) {
	s, err := sim.Prepare(expert.Mesh(layout.NewGrid(4, 4)), sim.UseNDBT, 1)
	if err != nil {
		b.Fatal(err)
	}
	var base sim.Config
	if err := sim.ApplyFidelity(&base, sim.FidelitySmoke); err != nil {
		b.Fatal(err)
	}
	mc := sim.MatrixConfig{
		Setups: []*sim.Setup{s},
		Patterns: []sim.PatternFactory{
			{Name: "uniform", New: func() (traffic.Pattern, error) { return traffic.Uniform{N: 16}, nil }},
			{Name: "tornado", New: func() (traffic.Pattern, error) { return traffic.Tornado{Rows: 4, Cols: 4}, nil }},
		},
		Rates: []float64{0.02, 0.10},
		Base:  base,
		Seed:  42,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunMatrix(mc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactLatOpTiny measures the branch-and-bound optimality
// certification on a small instance.
func BenchmarkExactLatOpTiny(b *testing.B) {
	cfg := synth.Config{Grid: layout.NewGrid(1, 4), Class: layout.Large, Radix: 2,
		Objective: synth.LatOp, Seed: 3, Iterations: 2000, Restarts: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.ExactLatOp(cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParetoFilter measures the exact domination filter behind
// ParetoSweep on a 1024-point cloud (the filter is O(n²) in swept
// points, so this is the frontier-assembly hot path at fleet scale).
func BenchmarkParetoFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ms := make([]exp.ParetoMetrics, 1024)
	for i := range ms {
		ms[i] = exp.ParetoMetrics{
			LatencyNs:       20 + 40*rng.Float64(),
			SaturationPerNs: 0.05 + 0.25*rng.Float64(),
			EnergyPerFlitPJ: 1 + 9*rng.Float64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if keep := exp.FilterDominated(ms); len(keep) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// BenchmarkTopologyMetrics measures the static Table II metric kernel.
func BenchmarkTopologyMetrics(b *testing.B) {
	t, err := expert.Get(expert.NameKiteLarge, layout.Grid4x5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := t.Clone()
		_ = fresh.AverageHops()
		_ = fresh.Diameter()
		_ = fresh.BisectionBandwidth()
	}
}
