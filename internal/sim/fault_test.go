package sim

import (
	"reflect"
	"testing"

	"netsmith/internal/fault"
	"netsmith/internal/traffic"
)

// faultCfg returns a small mesh run config with the given schedule.
func faultCfg(t *testing.T, sched *fault.Schedule) Config {
	t.Helper()
	s := meshSetup(t)
	return Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern:       traffic.Uniform{N: 20},
		InjectionRate: 0.03,
		WarmupCycles:  500, MeasureCycles: 1500, DrainCycles: 3000,
		Seed:          11,
		FaultSchedule: sched,
	}
}

func buildSched(t *testing.T, cfg Config, arg string) *fault.Schedule {
	t.Helper()
	name, params, err := fault.ParseScheduleArg(arg)
	if err != nil {
		t.Fatalf("parse %q: %v", arg, err)
	}
	sched, err := fault.Default().Build(name, cfg.Topo, params)
	if err != nil {
		t.Fatalf("build %q: %v", arg, err)
	}
	return sched
}

func TestFaultFreeMatchesNoneSchedule(t *testing.T) {
	base := faultCfg(t, nil)
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withNone := base
	withNone.FaultSchedule = buildSched(t, base, "none")
	b, err := Run(withNone)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("none schedule changed the result:\n%+v\nvs\n%+v", a, b)
	}
	if a.RerouteEvents != 0 || a.DroppedFlits != 0 || a.UnreachablePairs != 0 {
		t.Fatalf("fault-free run reported fault stats: %+v", a)
	}
	if a.DeliveredFraction <= 0.99 {
		t.Fatalf("low-load fault-free delivered fraction %v", a.DeliveredFraction)
	}
}

func TestPermanentLinkFaultReroutesAndDelivers(t *testing.T) {
	cfg := faultCfg(t, nil)
	cfg.FaultSchedule = buildSched(t, cfg, "klinks:k=2:seed=9:at=400")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("run stalled under 2-link failure")
	}
	if res.RerouteEvents != 1 {
		t.Fatalf("RerouteEvents = %d, want 1", res.RerouteEvents)
	}
	// The mesh stays connected after two link losses with this seed, so
	// every pair keeps a path and traffic keeps flowing.
	if res.UnreachablePairs != 0 {
		t.Fatalf("mesh reported %d unreachable pairs", res.UnreachablePairs)
	}
	if res.Measured == 0 {
		t.Fatal("no packets measured after the fault")
	}
	if res.DeliveredFraction <= 0.9 || res.DeliveredFraction > 1 {
		t.Fatalf("delivered fraction %v implausible for a connected reroute", res.DeliveredFraction)
	}
	// The boundary falls mid-warmup with traffic in flight: the epoch
	// flush must have dropped something.
	if res.DroppedFlits == 0 || res.DroppedPackets == 0 {
		t.Fatalf("no drops recorded at the fault boundary: %+v", res)
	}
	// The fault hits during warmup (cycle 400 < 500), so every measured
	// packet is post-fault.
	if res.PreFaultAvgLatencyNs != 0 || res.PostFaultAvgLatencyNs == 0 {
		t.Fatalf("latency phases: pre=%v post=%v", res.PreFaultAvgLatencyNs, res.PostFaultAvgLatencyNs)
	}
}

func TestFaultDeterminism(t *testing.T) {
	cfg := faultCfg(t, nil)
	// Recovery at 1800 sits inside the measure window (ends 2000), so
	// both boundaries are guaranteed to be processed before any early
	// drain exit.
	cfg.FaultSchedule = buildSched(t, cfg, "klinks:k=3:seed=5:at=700:until=1800")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.RerouteEvents != 2 {
		t.Fatalf("transient 3-link fault: RerouteEvents = %d, want 2 (onset + recovery)", a.RerouteEvents)
	}
}

func TestPartitioningRouterFault(t *testing.T) {
	// Killing routers 1, 5 and 6 isolates corner router 0 of the 4x5
	// mesh: every flow to or from it becomes unreachable, and flows
	// among the dead routers are gone too. The run must terminate
	// without tripping the watchdog and report the disconnection.
	cfg := faultCfg(t, nil)
	cfg.FaultSchedule = buildSched(t, cfg, "list:events=router=1@600+router=5@600+router=6@600")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("partitioned run stalled")
	}
	// Dead routers 1,5,6 and isolated router 0: all ordered pairs
	// touching any of the four are unreachable: 4*19 + 4*19 - 4*3 = 140.
	if res.UnreachablePairs != 140 {
		t.Fatalf("UnreachablePairs = %d, want 140", res.UnreachablePairs)
	}
	if res.SkippedInjections == 0 {
		t.Fatal("no injections were skipped despite unreachable pairs")
	}
	if res.Measured == 0 {
		t.Fatal("surviving partition delivered nothing")
	}
	if res.DeliveredFraction >= 1 {
		t.Fatalf("delivered fraction %v should reflect skipped flows", res.DeliveredFraction)
	}
}

func TestTransientFaultRecoversMidDrain(t *testing.T) {
	// Onset in the measure window, recovery after the measure window
	// ends (cycle 2000 = start of drain). The run must process the
	// recovery (or finish draining early) and terminate cleanly.
	cfg := faultCfg(t, nil)
	cfg.FaultSchedule = buildSched(t, cfg, "list:events=link=0>1@1200-2600")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("mid-drain recovery stalled")
	}
	if res.RerouteEvents < 1 || res.RerouteEvents > 2 {
		t.Fatalf("RerouteEvents = %d, want 1 or 2", res.RerouteEvents)
	}
	if res.Measured == 0 {
		t.Fatal("nothing measured")
	}
}

func TestFaultAtCycleZero(t *testing.T) {
	// The degraded epoch starts before any traffic exists: nothing to
	// drop, one reroute, and the run proceeds on the survivor tables.
	cfg := faultCfg(t, nil)
	cfg.FaultSchedule = buildSched(t, cfg, "list:events=link=0>1@0")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("cycle-0 fault stalled")
	}
	if res.RerouteEvents != 1 {
		t.Fatalf("RerouteEvents = %d, want 1", res.RerouteEvents)
	}
	if res.DroppedFlits != 0 || res.DroppedPackets != 0 {
		t.Fatalf("cycle-0 fault dropped traffic: %+v", res)
	}
	if res.Measured == 0 {
		t.Fatal("nothing measured")
	}
}

func TestFaultPastHorizonIsInert(t *testing.T) {
	base := faultCfg(t, nil)
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultCfg(t, nil)
	cfg.FaultSchedule = buildSched(t, cfg, "list:events=link=0>1@1000000")
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.RerouteEvents != 0 || b.DroppedFlits != 0 {
		t.Fatalf("past-horizon event fired: %+v", b)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("past-horizon schedule perturbed the run:\n%+v\nvs\n%+v", a, b)
	}
}

func TestTransientRecoveryRestoresConfigTables(t *testing.T) {
	// After recovery the healthy epoch must reuse the Config's own
	// routing (not a rebuilt survivor table): run a schedule that has
	// fully recovered before measurement starts and compare steady
	// state against the fault-free baseline — identical tables mean the
	// only difference is the rng-stream history, so latencies stay in
	// the same regime.
	cfg := faultCfg(t, nil)
	cfg.FaultSchedule = buildSched(t, cfg, "list:events=link=0>1@100-300")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.RerouteEvents != 2 {
		t.Fatalf("recovery run: %+v", res)
	}
	if res.UnreachablePairs != 0 {
		t.Fatalf("single mesh link loss disconnected pairs: %d", res.UnreachablePairs)
	}
}
