package sim

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/store"
	"netsmith/internal/traffic"
)

// storeMatrix builds a small store-friendly matrix config: 3x3 mesh,
// two patterns (one stateful), two rates, energy on so cached results
// carry full EnergyReports.
func storeMatrix(t *testing.T) MatrixConfig {
	t.Helper()
	g := layout.NewGrid(3, 3)
	st, err := Prepare(expert.Mesh(g), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	env := traffic.GridEnv(g)
	reg := traffic.Default()
	return MatrixConfig{
		Setups: []*Setup{st},
		Patterns: []PatternFactory{
			RegistryFactory(reg, "uniform", env, nil),
			RegistryFactory(reg, "bursty", env, traffic.Params{"ponoff": "0.1", "poffon": "0.1"}),
		},
		Rates: []float64{0.02, 0.10},
		Base: Config{
			WarmupCycles: 200, MeasureCycles: 500, DrainCycles: 1000,
			CollectEnergy: true,
		},
		Seed: 7,
	}
}

// TestMatrixStoreRoundTrip pins the core cache contract: a warm-store
// run returns results deeply identical to the fresh run that populated
// it, with every cell a hit and zero simulation.
func TestMatrixStoreRoundTrip(t *testing.T) {
	mc := storeMatrix(t)
	fresh, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc.Store = st
	cold, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(mc.Setups) * len(mc.Patterns) * len(mc.Rates)
	if cold.Stats.Computed != cells || cold.Stats.CacheHits != 0 {
		t.Fatalf("cold run stats = %+v, want %d computed, 0 hits", cold.Stats, cells)
	}
	warm, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Computed != 0 || warm.Stats.CacheHits != cells {
		t.Fatalf("warm run stats = %+v, want 0 computed, %d hits", warm.Stats, cells)
	}
	// Stats intentionally differ between runs; everything emitted must
	// not.
	cold.Stats, warm.Stats, fresh.Stats = MatrixStats{}, MatrixStats{}, MatrixStats{}
	if !reflect.DeepEqual(fresh, cold) {
		t.Error("store-backed cold run differs from storeless run")
	}
	if !reflect.DeepEqual(fresh, warm) {
		t.Error("cache-served run differs from fresh run")
	}
}

// TestMatrixShardMerge pins the sharded contract: each shard computes
// only its owned cells, reports IncompleteError while cells are
// pending, and the final shard (or a resumed unsharded run) assembles
// the exact unsharded result.
func TestMatrixShardMerge(t *testing.T) {
	mc := storeMatrix(t)
	unsharded, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(mc.Setups) * len(mc.Patterns) * len(mc.Rates)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc.Store = st
	mc.Shard = Shard{Index: 0, Count: 2}
	_, err = RunMatrix(mc)
	var inc *IncompleteError
	if !errors.As(err, &inc) {
		t.Fatalf("first shard: got err %v, want IncompleteError", err)
	}
	if inc.Computed == 0 || inc.Missing == 0 || inc.Computed+inc.Missing != cells {
		t.Fatalf("first shard accounting: %+v (cells %d)", inc, cells)
	}

	mc.Shard = Shard{Index: 1, Count: 2}
	merged, err := RunMatrix(mc)
	if err != nil {
		t.Fatalf("second shard should assemble the full matrix: %v", err)
	}
	if merged.Stats.Computed != inc.Missing || merged.Stats.CacheHits != inc.Computed {
		t.Fatalf("second shard stats = %+v, want %d computed + %d cached", merged.Stats, inc.Missing, inc.Computed)
	}
	merged.Stats = MatrixStats{}
	unsharded.Stats = MatrixStats{}
	if !reflect.DeepEqual(unsharded, merged) {
		t.Error("2-shard merged matrix differs from unsharded run")
	}
}

// TestMatrixResume emulates a killed run: a shard pass leaves a partial
// store behind, and an unsharded re-run over that store must recompute
// only the missing cells and reproduce the uninterrupted result.
func TestMatrixResume(t *testing.T) {
	mc := storeMatrix(t)
	uninterrupted, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(mc.Setups) * len(mc.Patterns) * len(mc.Rates)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// "Interrupted" run: only a third of the cells made it to the store.
	mc.Store = st
	mc.Shard = Shard{Index: 0, Count: 3}
	var inc *IncompleteError
	if _, err := RunMatrix(mc); !errors.As(err, &inc) {
		t.Fatalf("partial shard: got err %v, want IncompleteError", err)
	}
	// Resume: unsharded run over the partial store.
	mc.Shard = Shard{}
	resumed, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.CacheHits == 0 || resumed.Stats.Computed == 0 ||
		resumed.Stats.CacheHits+resumed.Stats.Computed != cells {
		t.Fatalf("resume stats = %+v, want a cached/computed split covering %d cells", resumed.Stats, cells)
	}
	resumed.Stats = MatrixStats{}
	uninterrupted.Stats = MatrixStats{}
	if !reflect.DeepEqual(uninterrupted, resumed) {
		t.Error("resumed matrix differs from uninterrupted run")
	}
}

// TestMatrixStoreKeySensitivity: any input that changes results must
// miss the cache — matrix seed, fidelity knobs, pattern parameters and
// the routing baked into the Setup all participate in the key.
func TestMatrixStoreKeySensitivity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc := storeMatrix(t)
	mc.Store = st
	cells := len(mc.Setups) * len(mc.Patterns) * len(mc.Rates)
	if res, err := RunMatrix(mc); err != nil || res.Stats.Computed != cells {
		t.Fatalf("populate: err=%v stats=%+v", err, res.Stats)
	}

	mutate := []struct {
		name     string
		wantHits int // addressing is per cell: unchanged cells may hit
		mod      func(*MatrixConfig)
	}{
		{"seed", 0, func(m *MatrixConfig) { m.Seed = 8 }},
		{"measure-cycles", 0, func(m *MatrixConfig) { m.Base.MeasureCycles = 600 }},
		{"energy-off", 0, func(m *MatrixConfig) { m.Base.CollectEnergy = false }},
		// Re-parameterizing bursty invalidates only its cells; the two
		// uniform cells legitimately still hit.
		{"pattern-params", 2, func(m *MatrixConfig) {
			g := layout.NewGrid(3, 3)
			m.Patterns[1] = RegistryFactory(traffic.Default(), "bursty",
				traffic.GridEnv(g), traffic.Params{"ponoff": "0.2", "poffon": "0.1"})
		}},
		{"routing-seed", 0, func(m *MatrixConfig) {
			g := layout.NewGrid(3, 3)
			st2, err := Prepare(expert.Mesh(g), UseNDBT, 99)
			if err != nil {
				t.Fatal(err)
			}
			m.Setups = []*Setup{st2}
		}},
	}
	for _, mut := range mutate {
		m2 := storeMatrix(t)
		m2.Store = st
		mut.mod(&m2)
		res, err := RunMatrix(m2)
		if err != nil {
			t.Fatalf("%s: %v", mut.name, err)
		}
		if res.Stats.CacheHits != mut.wantHits {
			t.Errorf("%s: cache hits = %d, want %d (%+v)", mut.name, res.Stats.CacheHits, mut.wantHits, res.Stats)
		}
	}

	// And the original config still hits all cells afterwards.
	res, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != cells {
		t.Errorf("original config no longer fully cached: %+v", res.Stats)
	}
}

// TestMatrixStoreConcurrent exercises the store under the full worker
// pool at high parallelism (run with -race in CI): concurrent cold
// misses racing to Put, then concurrent warm hits.
func TestMatrixStoreConcurrent(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc := storeMatrix(t)
	mc.Store = st
	cold, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	cold.Stats, warm.Stats = MatrixStats{}, MatrixStats{}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("concurrent cached run differs from populating run")
	}
}

func TestShardValidation(t *testing.T) {
	mc := storeMatrix(t)
	mc.Shard = Shard{Index: 0, Count: 2}
	if _, err := RunMatrix(mc); err == nil {
		t.Error("sharded run without a store accepted")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc.Store = st
	mc.Shard = Shard{Index: 2, Count: 2}
	if _, err := RunMatrix(mc); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":    {},
		"0/2": {Index: 0, Count: 2},
		"3/4": {Index: 3, Count: 4},
		"0/1": {Index: 0, Count: 1},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, in := range []string{"2/2", "-1/2", "1", "a/b", "1/0"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) accepted", in)
		}
	}
}

// TestSetupFingerprint: equal pipelines agree, any ingredient change
// disagrees.
func TestSetupFingerprint(t *testing.T) {
	g := layout.NewGrid(3, 3)
	a, err := Prepare(expert.Mesh(g), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prepare(expert.Mesh(g), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fb, _ := b.Fingerprint(); fb != fa {
		t.Error("identical Prepare pipelines fingerprint differently")
	}
	// Different routing seed (NDBT tie-breaks by seed) or topology must
	// change the fingerprint.
	c, err := Prepare(expert.Mesh(g), UseMCLB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fc, _ := c.Fingerprint(); fc == fa {
		t.Error("different routing algorithm, same fingerprint")
	}
	d, err := Prepare(expert.FoldedTorus(g), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fd, _ := d.Fingerprint(); fd == fa {
		t.Error("different topology, same fingerprint")
	}
}
