package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"netsmith/internal/traffic"
)

// The scenario matrix generalizes Sweep from "one topology, one
// pattern, a rate grid" to the full cross product
// {topology x pattern x injection rate}. Cells run on the same bounded
// worker pool, each with a deterministic seed derived from its matrix
// position and a fresh pattern instance built from its factory, so the
// emitted result is bit-identical across reruns and GOMAXPROCS settings
// (the contract the synthesis engine pinned in PR 2, extended to
// workloads).

// PatternFactory names a workload and constructs fresh instances of it.
// A fresh instance per simulation keeps stateful patterns (bursty MMPP,
// trace replay) safe under the concurrent matrix pool.
type PatternFactory struct {
	Name string
	New  func() (traffic.Pattern, error)
}

// RegistryFactory adapts a traffic-registry pattern to a PatternFactory.
func RegistryFactory(reg *traffic.Registry, name string, env traffic.Env, params traffic.Params) PatternFactory {
	return PatternFactory{
		Name: name,
		New:  func() (traffic.Pattern, error) { return reg.Build(name, env, params) },
	}
}

// MatrixConfig drives a scenario matrix run.
type MatrixConfig struct {
	// Setups are the prepared topologies (routing + verified VCs).
	Setups []*Setup
	// Patterns are the workload factories; each cell builds its own
	// instance.
	Patterns []PatternFactory
	// Rates is the offered-rate grid (packets/node/cycle); default
	// DefaultRates().
	Rates []float64
	// Base supplies fidelity knobs (cycle budgets, VC counts, bandwidth);
	// its Topo/Routing/VC/Pattern/InjectionRate/Seed fields are
	// overridden per cell. Setting Base.CollectEnergy fills every cell's
	// energy columns (avg power, dynamic pJ per delivered flit).
	Base Config
	// Seed is the matrix-level seed; cell i simulates with
	// Seed + i*7919 where i is the cell's fixed matrix position.
	Seed int64
}

// MatrixCurve is one (topology, pattern) row of the matrix: its
// latency-vs-injection points plus the derived summary metrics.
type MatrixCurve struct {
	Topology string       `json:"topology"`
	Pattern  string       `json:"pattern"`
	Points   []SweepPoint `json:"points"`
	// ZeroLoadLatencyNs is the latency at the lowest offered rate;
	// SaturationPerNs the highest pre-saturation accepted throughput
	// (packets/node/ns).
	ZeroLoadLatencyNs float64 `json:"zero_load_latency_ns"`
	SaturationPerNs   float64 `json:"saturation_pkt_node_ns"`
}

// MatrixResult is the full scenario matrix, ordered topology-major then
// pattern (the Setups/Patterns input order).
type MatrixResult struct {
	Rates  []float64     `json:"rates"`
	Curves []MatrixCurve `json:"curves"`
}

// Curve returns the row for a topology/pattern name pair.
func (m *MatrixResult) Curve(topology, pattern string) *MatrixCurve {
	for i := range m.Curves {
		if m.Curves[i].Topology == topology && m.Curves[i].Pattern == pattern {
			return &m.Curves[i]
		}
	}
	return nil
}

// RunMatrix simulates every {topology x pattern x rate} cell on a
// bounded worker pool and derives per-curve saturation. Results are
// deterministic for a given config at any GOMAXPROCS.
func RunMatrix(mc MatrixConfig) (*MatrixResult, error) {
	if len(mc.Setups) == 0 || len(mc.Patterns) == 0 {
		return nil, fmt.Errorf("sim: matrix needs at least one topology and one pattern")
	}
	rates := mc.Rates
	if rates == nil {
		rates = DefaultRates()
	}
	nT, nP, nR := len(mc.Setups), len(mc.Patterns), len(rates)
	cells := nT * nP * nR
	points := make([]SweepPoint, cells)
	errs := make([]error, cells)

	workers := runtime.GOMAXPROCS(0)
	if workers > cells {
		workers = cells
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				ti := i / (nP * nR)
				pi := (i / nR) % nP
				ri := i % nR
				pat, err := mc.Patterns[pi].New()
				if err != nil {
					errs[i] = fmt.Errorf("pattern %s: %w", mc.Patterns[pi].Name, err)
					continue
				}
				cfg := mc.Base
				cfg.Topo = mc.Setups[ti].Topo
				cfg.Routing = mc.Setups[ti].Routing
				cfg.VC = mc.Setups[ti].VC
				cfg.Pattern = pat
				cfg.InjectionRate = rates[ri]
				cfg.Seed = mc.Seed + int64(i)*7919
				res, err := Run(cfg)
				if err != nil {
					errs[i] = fmt.Errorf("%s/%s@%g: %w", cfg.Topo.Name, mc.Patterns[pi].Name, rates[ri], err)
					continue
				}
				points[i] = SweepPoint{
					OfferedRate:   rates[ri],
					AvgLatencyNs:  res.AvgLatencyNs,
					AcceptedPerNs: res.AcceptedPerNs,
					Stalled:       res.Stalled,
				}
				points[i].energize(res)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &MatrixResult{Rates: rates, Curves: make([]MatrixCurve, 0, nT*nP)}
	for ti := 0; ti < nT; ti++ {
		for pi := 0; pi < nP; pi++ {
			base := (ti*nP + pi) * nR
			c := MatrixCurve{
				Topology: mc.Setups[ti].Topo.Name,
				Pattern:  mc.Patterns[pi].Name,
				Points:   points[base : base+nR : base+nR],
			}
			c.ZeroLoadLatencyNs, c.SaturationPerNs = deriveSaturation(c.Points)
			out.Curves = append(out.Curves, c)
		}
	}
	return out, nil
}
