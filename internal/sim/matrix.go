package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"netsmith/internal/fault"
	"netsmith/internal/store"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// The scenario matrix generalizes Sweep from "one topology, one
// pattern, a rate grid" to the full cross product
// {topology x pattern x fault schedule x injection rate}. Cells run on the same bounded
// worker pool, each with a deterministic seed derived from its matrix
// position and a fresh pattern instance built from its factory, so the
// emitted result is bit-identical across reruns and GOMAXPROCS settings
// (the contract the synthesis engine pinned in PR 2, extended to
// workloads). That determinism is also what makes cells
// content-addressable: with a Store attached, each cell's result is
// cached under a canonical hash of its inputs, giving killed runs a
// resume path and letting Shard split one matrix across machines.

// PatternFactory names a workload and constructs fresh instances of it.
// A fresh instance per simulation keeps stateful patterns (bursty MMPP,
// trace replay) safe under the concurrent matrix pool.
type PatternFactory struct {
	Name string
	// Key is the workload's canonical content key for the result store
	// (traffic.CanonicalPatternKey form: name plus sorted, escaped
	// parameters). Factories built by RegistryFactory always fill it;
	// hand-built factories must set it before running with a Store —
	// RunMatrix refuses keyless factories there, because a Name-only
	// fallback would let two differently-parameterized closures collide
	// on the same cached cells.
	Key string
	New func() (traffic.Pattern, error)
}

// FaultFactory names a fault schedule and builds it per topology. The
// build takes the topology because most schedule specs resolve to
// different concrete events on different networks (klinks draws from
// each topology's own link list); RunMatrix builds one schedule per
// (setup, fault) pair and shares it across that pair's cells — the
// engine never mutates a schedule, so sharing is safe.
type FaultFactory struct {
	// Name labels the fault axis in curves and reports.
	Name string
	// Key is the schedule's canonical content key for the result store
	// (fault.CanonicalScheduleKey form). Like PatternFactory.Key it must
	// be non-empty for store-backed runs unless the built schedule is
	// empty: a keyless lossy schedule would collide with fault-free
	// cells in the cache.
	Key string
	New func(t *topo.Topology) (*fault.Schedule, error)
}

// FaultRegistryFactory adapts a fault-registry schedule spec to a
// FaultFactory. The display name is the canonical key, so differently
// parameterized instances of one builder stay distinguishable in the
// matrix output.
func FaultRegistryFactory(reg *fault.Registry, name string, params fault.Params) FaultFactory {
	key := fault.CanonicalScheduleKey(name, params)
	f := FaultFactory{
		Name: key,
		Key:  key,
		New: func(t *topo.Topology) (*fault.Schedule, error) {
			return reg.Build(name, t, params)
		},
	}
	if name == "none" && len(params) == 0 {
		// Matches Registry.Build's convention: the bare fault-free
		// schedule carries an empty key so its cells are cache-compatible
		// with matrices that have no fault axis at all.
		f.Key = ""
	}
	return f
}

// RegistryFactory adapts a traffic-registry pattern to a PatternFactory.
func RegistryFactory(reg *traffic.Registry, name string, env traffic.Env, params traffic.Params) PatternFactory {
	f := PatternFactory{
		Name: name,
		Key:  traffic.CanonicalPatternKey(name, params),
		New:  func() (traffic.Pattern, error) { return reg.Build(name, env, params) },
	}
	// The registry's trace entry is keyed by its file PATH parameter,
	// which is not a content address: the file can change under the
	// same name and serve stale cells. Leave the Key empty so
	// store-backed runs reject it (netbench -trace builds a
	// content-hashed factory instead).
	if name == "trace" {
		f.Key = ""
	}
	return f
}

// MatrixConfig drives a scenario matrix run.
type MatrixConfig struct {
	// Setups are the prepared topologies (routing + verified VCs).
	Setups []*Setup
	// Patterns are the workload factories; each cell builds its own
	// instance.
	Patterns []PatternFactory
	// Rates is the offered-rate grid (packets/node/cycle); default
	// DefaultRates().
	Rates []float64
	// Faults is the optional fault-schedule axis. Empty means a single
	// implicit fault-free entry whose cells are key-compatible with
	// matrices that predate the axis (and with explicit "none" entries).
	Faults []FaultFactory
	// Base supplies fidelity knobs (cycle budgets, VC counts, bandwidth);
	// its Topo/Routing/VC/Pattern/InjectionRate/Seed fields are
	// overridden per cell. Setting Base.CollectEnergy fills every cell's
	// energy columns (avg power, dynamic pJ per delivered flit).
	Base Config
	// Seed is the matrix-level seed; cell i simulates with
	// Seed + i*7919 where i is the cell's fixed matrix position.
	Seed int64

	// Ctx, when non-nil, cancels the run: the worker pool checks it
	// before starting each cell, so a cancelled matrix stops simulating
	// within at most one in-flight cell per worker and RunMatrix returns
	// the context's error. Cells already computed by a store-backed run
	// have been persisted — a re-run resumes from them. Cancellation
	// never changes emitted bytes: a run either completes (identical to
	// an uncancelled run) or errors.
	Ctx context.Context

	// Progress, when non-nil, is invoked once per resolved cell (whether
	// simulated or served from the store) with the number of resolved
	// cells so far and the total cell count. Calls arrive concurrently
	// from the worker pool: done values may repeat or arrive out of
	// order (consumers should keep a running max; a done == total call
	// is guaranteed on completion), and the callback must be cheap and
	// safe for concurrent use.
	Progress func(done, total int)

	// Unbatched disables batched cell execution (each worker reusing
	// one engine's flat arrays across consecutive cells of the same
	// prepared topology) and builds a fresh engine per cell instead.
	// Output is bit-identical either way — the knob exists for the
	// equivalence tests and the CI leg that cmp the two paths.
	Unbatched bool

	// Store, when non-nil, content-addresses every cell: results are
	// looked up before simulating and persisted after, so an
	// interrupted run resumed with the same Store recomputes only the
	// missing cells and reproduces the uninterrupted output byte for
	// byte.
	Store *store.Store
	// Shard, when enabled (Count > 1), restricts simulation to the
	// cells this shard owns (deterministic i % Count == Index
	// partitioning, independent of GOMAXPROCS). Sharded runs require a
	// Store: owned cells are persisted there, and the full matrix is
	// assembled from it once every shard has run. Until then RunMatrix
	// returns *IncompleteError.
	Shard Shard
}

// MatrixCurve is one (topology, pattern) row of the matrix: its
// latency-vs-injection points plus the derived summary metrics.
type MatrixCurve struct {
	Topology string `json:"topology"`
	Pattern  string `json:"pattern"`
	// Fault names the curve's fault schedule; empty when the matrix has
	// no fault axis (keeping the emitted JSON shape of fault-free
	// matrices unchanged).
	Fault  string       `json:"fault,omitempty"`
	Points []SweepPoint `json:"points"`
	// ZeroLoadLatencyNs is the latency at the lowest offered rate;
	// SaturationPerNs the highest pre-saturation accepted throughput
	// (packets/node/ns).
	ZeroLoadLatencyNs float64 `json:"zero_load_latency_ns"`
	SaturationPerNs   float64 `json:"saturation_pkt_node_ns"`
}

// MatrixResult is the full scenario matrix, ordered topology-major then
// pattern (the Setups/Patterns input order).
type MatrixResult struct {
	Rates  []float64     `json:"rates"`
	Curves []MatrixCurve `json:"curves"`
	// Stats reports the simulated/cached split of a store-backed run.
	// It is excluded from JSON so cached, resumed and fresh runs emit
	// byte-identical files.
	Stats MatrixStats `json:"-"`
}

// Curve returns the first row for a topology/pattern name pair (the
// fault-free row when the matrix has no fault axis; otherwise the row
// of the first configured fault entry).
func (m *MatrixResult) Curve(topology, pattern string) *MatrixCurve {
	for i := range m.Curves {
		if m.Curves[i].Topology == topology && m.Curves[i].Pattern == pattern {
			return &m.Curves[i]
		}
	}
	return nil
}

// FaultCurve returns the row for a topology/pattern/fault name triple.
func (m *MatrixResult) FaultCurve(topology, pattern, faultName string) *MatrixCurve {
	for i := range m.Curves {
		c := &m.Curves[i]
		if c.Topology == topology && c.Pattern == pattern && c.Fault == faultName {
			return c
		}
	}
	return nil
}

// Fidelity presets shared by the matrix front ends (netbench -matrix,
// netsmith serve). The budgets are hashed into every cell's cache key,
// so front ends sharing a store MUST take them from here: a drifted
// copy would silently stop cache-sharing between CLI and HTTP runs.
const (
	FidelitySmoke = "smoke" // minimal budgets (CI smoke)
	FidelityFast  = "fast"  // reduced fidelity (default for matrices)
	FidelityFull  = "full"  // simulator defaults (tightest numbers)
)

// ApplyFidelity sets the preset cycle budgets on cfg; FidelityFull
// leaves the simulator defaults in place.
func ApplyFidelity(cfg *Config, name string) error {
	switch name {
	case FidelitySmoke:
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 800, 1600
	case FidelityFast:
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 1500, 4000, 6000
	case FidelityFull:
		// defaulted() fills the full-fidelity budgets.
	default:
		return fmt.Errorf("sim: unknown fidelity %q (want %s, %s or %s)",
			name, FidelitySmoke, FidelityFast, FidelityFull)
	}
	return nil
}

// cellPoint derives a cell's sweep point from its run result — the one
// conversion both fresh and cached cells go through, keeping their
// emitted bytes identical.
func cellPoint(rate float64, res *Result) SweepPoint {
	p := SweepPoint{
		OfferedRate:       rate,
		AvgLatencyNs:      res.AvgLatencyNs,
		AcceptedPerNs:     res.AcceptedPerNs,
		Stalled:           res.Stalled,
		DeliveredFraction: res.DeliveredFraction,
		DroppedFlits:      res.DroppedFlits,
	}
	if res.PreFaultAvgLatencyNs > 0 && res.PostFaultAvgLatencyNs > 0 {
		p.LatencyInflation = res.PostFaultAvgLatencyNs / res.PreFaultAvgLatencyNs
	}
	p.energize(res)
	return p
}

// RunMatrix simulates every {topology x pattern x rate} cell on a
// bounded worker pool and derives per-curve saturation. Results are
// deterministic for a given config at any GOMAXPROCS.
//
// With a Store attached, cells hit the cache before simulating and
// persist after (the resume path). With Shard enabled, only owned
// cells are simulated; the rest are read from the store, and if any
// are still missing the run returns *IncompleteError after persisting
// its own share.
func RunMatrix(mc MatrixConfig) (*MatrixResult, error) {
	if len(mc.Setups) == 0 || len(mc.Patterns) == 0 {
		return nil, fmt.Errorf("sim: matrix needs at least one topology and one pattern")
	}
	if err := mc.Shard.validate(); err != nil {
		return nil, err
	}
	if mc.Shard.enabled() && mc.Store == nil {
		return nil, fmt.Errorf("sim: sharded matrix runs need a Store to merge through")
	}
	rates := mc.Rates
	if rates == nil {
		rates = DefaultRates()
	}
	faults := mc.Faults
	if len(faults) == 0 {
		// Implicit fault-free axis: empty Name keeps the emitted curves
		// shaped exactly like pre-fault-axis matrices, empty Key keeps
		// their cells cache-compatible.
		faults = []FaultFactory{{
			New: func(*topo.Topology) (*fault.Schedule, error) { return &fault.Schedule{}, nil },
		}}
	}
	nT, nP, nF, nR := len(mc.Setups), len(mc.Patterns), len(faults), len(rates)
	cells := nT * nP * nF * nR
	points := make([]SweepPoint, cells)
	have := make([]bool, cells)
	errs := make([]error, cells)

	// Fault schedules are built once per (setup, fault) pair, up front:
	// builders are cheap and deterministic, and eager building surfaces
	// bad specs before any cell simulates.
	scheds := make([]*fault.Schedule, nT*nF)
	for ti, st := range mc.Setups {
		for fi, ff := range faults {
			s, err := ff.New(st.Topo)
			if err != nil {
				return nil, fmt.Errorf("sim: fault %q on %s: %w", ff.Name, st.Topo.Name, err)
			}
			scheds[ti*nF+fi] = s
			if mc.Store != nil && ff.Key == "" && !s.Empty() {
				return nil, fmt.Errorf("sim: fault factory %q needs a content Key for store-backed runs (see fault.CanonicalScheduleKey) — a keyless lossy schedule would collide with fault-free cached cells", ff.Name)
			}
		}
	}

	// Setup fingerprints anchor every cell key; compute each once.
	var fps []string
	if mc.Store != nil {
		for _, f := range mc.Patterns {
			if f.Key == "" {
				return nil, fmt.Errorf("sim: pattern factory %q needs a content Key for store-backed runs (file-path keys like the registry's trace entry are rejected — use netbench -trace, which hashes the trace bytes; see traffic.CanonicalPatternKey)", f.Name)
			}
		}
		fps = make([]string, nT)
		for i, st := range mc.Setups {
			fp, err := st.Fingerprint()
			if err != nil {
				return nil, err
			}
			fps[i] = fp
		}
	}
	// idx decodes cell i's fixed matrix position: topology-major, then
	// pattern, then fault, then rate. With no fault axis (nF == 1) this
	// reduces to the pre-axis layout, preserving per-cell seeds.
	idx := func(i int) (ti, pi, fi, ri int) {
		ri = i % nR
		fi = (i / nR) % nF
		pi = (i / (nR * nF)) % nP
		ti = i / (nR * nF * nP)
		return
	}
	// baseCfg assembles cell i's Config sans Pattern; keyFor canonical-
	// izes it (normalized knobs, no workload instance needed).
	baseCfg := func(ti, fi, ri, i int) Config {
		cfg := mc.Base
		cfg.Topo = mc.Setups[ti].Topo
		cfg.Routing = mc.Setups[ti].Routing
		cfg.VC = mc.Setups[ti].VC
		cfg.InjectionRate = rates[ri]
		cfg.Seed = mc.Seed + int64(i)*7919
		cfg.FaultSchedule = scheds[ti*nF+fi]
		return cfg
	}
	keyFor := func(i int) store.Key {
		ti, pi, fi, ri := idx(i)
		return cellKey(fps[ti], mc.Patterns[pi].Key, faults[fi].Key, baseCfg(ti, fi, ri, i).normalized())
	}

	// Progress is derived from the two existing counters rather than a
	// dedicated one: an extra captured atomic (or a reporting closure)
	// costs a heap allocation the Progress-free path must not pay (the
	// bench gate counts allocs/op).
	var computed, cacheHits, storeErrs atomic.Int64
	workers := runtime.GOMAXPROCS(0)
	if workers > cells {
		workers = cells
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Batched execution: each worker keeps one engine and
			// resets it per cell, rebuilding only on a topology change.
			// The atomic counter hands out cells in index order and the
			// layout is topology-major, so consecutive cells nearly
			// always share their geometry.
			var eng *engine
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				// Cancellation is cell-granular: the check sits before
				// each cell's work, so a cancelled run stops after at
				// most one in-flight cell per worker.
				if mc.Ctx != nil && mc.Ctx.Err() != nil {
					return
				}
				if !mc.Shard.Owns(i) {
					continue // filled from the store after the pool drains
				}
				ti, pi, fi, ri := idx(i)
				var key store.Key
				if mc.Store != nil {
					key = keyFor(i)
					var cached Result
					hit, err := mc.Store.Get(key, &cached)
					if err != nil {
						errs[i] = err
						continue
					}
					if hit {
						points[i] = cellPoint(rates[ri], &cached)
						have[i] = true
						cacheHits.Add(1)
						if mc.Progress != nil {
							mc.Progress(int(computed.Load()+cacheHits.Load()), cells)
						}
						continue
					}
				}
				pat, err := mc.Patterns[pi].New()
				if err != nil {
					errs[i] = fmt.Errorf("pattern %s: %w", mc.Patterns[pi].Name, err)
					continue
				}
				cfg := baseCfg(ti, fi, ri, i)
				cfg.Pattern = pat
				var res *Result
				if mc.Unbatched {
					res, err = Run(cfg)
				} else {
					res, err = runReused(&eng, cfg)
				}
				if err != nil {
					errs[i] = fmt.Errorf("%s/%s@%g: %w", cfg.Topo.Name, mc.Patterns[pi].Name, rates[ri], err)
					continue
				}
				points[i] = cellPoint(rates[ri], res)
				have[i] = true
				computed.Add(1)
				if mc.Progress != nil {
					mc.Progress(int(computed.Load()+cacheHits.Load()), cells)
				}
				if mc.Store != nil {
					// Persistence is best-effort: a full or read-only
					// store must not discard a computed result. The
					// failure is surfaced through Stats.StoreErrors.
					if err := mc.Store.Put(key, res); err != nil {
						storeErrs.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if mc.Ctx != nil && mc.Ctx.Err() != nil {
		// Cancelled: owned cells that finished before the cancellation
		// were persisted (store-backed runs), so a resumed run picks up
		// exactly where this one stopped.
		return nil, fmt.Errorf("sim: matrix cancelled after %d of %d cells: %w",
			int(computed.Load()+cacheHits.Load()), cells, mc.Ctx.Err())
	}

	// Sharded runs: pull the other shards' cells out of the store.
	missing := 0
	if mc.Shard.enabled() {
		for i := 0; i < cells; i++ {
			if have[i] {
				continue
			}
			var cached Result
			hit, err := mc.Store.Get(keyFor(i), &cached)
			if err != nil {
				return nil, err
			}
			if !hit {
				missing++
				continue
			}
			points[i] = cellPoint(rates[i%nR], &cached)
			have[i] = true
			cacheHits.Add(1)
			if mc.Progress != nil {
				mc.Progress(int(computed.Load()+cacheHits.Load()), cells)
			}
		}
	}
	if missing > 0 {
		return nil, &IncompleteError{
			Shard: mc.Shard, Cells: cells,
			Computed: int(computed.Load()), CacheHits: int(cacheHits.Load()),
			Missing: missing,
		}
	}

	out := &MatrixResult{
		Rates:  rates,
		Curves: make([]MatrixCurve, 0, nT*nP*nF),
		Stats: MatrixStats{
			Cells:    cells,
			Computed: int(computed.Load()), CacheHits: int(cacheHits.Load()),
			StoreErrors: int(storeErrs.Load()),
		},
	}
	for ti := 0; ti < nT; ti++ {
		for pi := 0; pi < nP; pi++ {
			for fi := 0; fi < nF; fi++ {
				base := ((ti*nP+pi)*nF + fi) * nR
				c := MatrixCurve{
					Topology: mc.Setups[ti].Topo.Name,
					Pattern:  mc.Patterns[pi].Name,
					Fault:    faults[fi].Name,
					Points:   points[base : base+nR : base+nR],
				}
				c.ZeroLoadLatencyNs, c.SaturationPerNs = deriveSaturation(c.Points)
				out.Curves = append(out.Curves, c)
			}
		}
	}
	return out, nil
}
