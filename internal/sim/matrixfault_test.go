package sim

import (
	"reflect"
	"runtime"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/fault"
	"netsmith/internal/layout"
	"netsmith/internal/store"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// faultMatrix builds a small matrix with a two-entry fault axis:
// fault-free and a deterministic 2-link failure.
func faultMatrix(t *testing.T) MatrixConfig {
	t.Helper()
	g := layout.NewGrid(3, 3)
	st, err := Prepare(expert.Mesh(g), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	env := traffic.GridEnv(g)
	freg := fault.Default()
	return MatrixConfig{
		Setups: []*Setup{st},
		Patterns: []PatternFactory{
			RegistryFactory(traffic.Default(), "uniform", env, nil),
		},
		Faults: []FaultFactory{
			FaultRegistryFactory(freg, "none", nil),
			FaultRegistryFactory(freg, "klinks", fault.Params{"k": "2", "seed": "3", "at": "150"}),
		},
		Rates: []float64{0.02, 0.08},
		Base: Config{
			WarmupCycles: 200, MeasureCycles: 500, DrainCycles: 1000,
		},
		Seed: 7,
	}
}

// TestMatrixFaultAxisShape pins the curve layout and the robustness
// columns: one curve per (topology, pattern, fault), faulted curves
// labeled by canonical key and showing drops that fault-free curves do
// not.
func TestMatrixFaultAxisShape(t *testing.T) {
	mc := faultMatrix(t)
	res, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("got %d curves, want 2 (one per fault entry)", len(res.Curves))
	}
	clean := res.FaultCurve(expert.NameMesh, "uniform", "none")
	faulted := res.FaultCurve(expert.NameMesh, "uniform", "klinks:at=150:k=2:seed=3")
	if clean == nil || faulted == nil {
		t.Fatalf("missing fault curves; labels: %q, %q", res.Curves[0].Fault, res.Curves[1].Fault)
	}
	for _, p := range clean.Points {
		if p.DroppedFlits != 0 || p.DeliveredFraction != 1 {
			t.Fatalf("fault-free point has fault stats: %+v", p)
		}
	}
	drops := 0
	for _, p := range faulted.Points {
		drops += p.DroppedFlits
		if p.DeliveredFraction <= 0 || p.DeliveredFraction > 1 {
			t.Fatalf("faulted point delivered fraction out of range: %+v", p)
		}
	}
	if drops == 0 {
		t.Error("2-link failure at cycle 150 dropped nothing across the rate grid")
	}
}

// TestMatrixFaultAxisDeterminism pins the fault-dimension determinism
// contract: the same config replays deeply identical at different
// GOMAXPROCS settings.
func TestMatrixFaultAxisDeterminism(t *testing.T) {
	mc := faultMatrix(t)
	prev := runtime.GOMAXPROCS(1)
	a, err := RunMatrix(mc)
	runtime.GOMAXPROCS(8)
	b, err2 := RunMatrix(mc)
	runtime.GOMAXPROCS(prev)
	if err != nil || err2 != nil {
		t.Fatal(err, err2)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("faulted matrix differs across GOMAXPROCS")
	}
}

// TestMatrixImplicitFaultAxisCompat pins cache and seed compatibility
// between a matrix with no fault axis and the same matrix with an
// explicit bare "none" entry: same per-cell seeds, same store keys —
// the explicit entry must hit every cell the implicit run persisted.
func TestMatrixImplicitFaultAxisCompat(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc := faultMatrix(t)
	mc.Faults = nil
	mc.Store = st
	implicit, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	cells := 2
	if implicit.Stats.Computed != cells {
		t.Fatalf("implicit run stats: %+v", implicit.Stats)
	}

	mc2 := faultMatrix(t)
	mc2.Faults = []FaultFactory{FaultRegistryFactory(fault.Default(), "none", nil)}
	mc2.Store = st
	explicit, err := RunMatrix(mc2)
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Stats.CacheHits != cells || explicit.Stats.Computed != 0 {
		t.Fatalf("explicit none run should be fully cached: %+v", explicit.Stats)
	}
	// Points agree cell for cell; only the curve label differs ("" vs
	// "none").
	if !reflect.DeepEqual(implicit.Curves[0].Points, explicit.Curves[0].Points) {
		t.Error("implicit and explicit fault-free cells disagree")
	}
	if implicit.Curves[0].Fault != "" || explicit.Curves[0].Fault != "none" {
		t.Errorf("fault labels: implicit %q, explicit %q", implicit.Curves[0].Fault, explicit.Curves[0].Fault)
	}
}

// TestMatrixFaultStoreKeySensitivity: the fault schedule participates
// in the cell key — an unchanged axis resumes entirely from cache, a
// reparameterized schedule invalidates exactly its own cells.
func TestMatrixFaultStoreKeySensitivity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc := faultMatrix(t)
	mc.Store = st
	cells := 4 // 1 setup x 1 pattern x 2 faults x 2 rates
	if res, err := RunMatrix(mc); err != nil || res.Stats.Computed != cells {
		t.Fatalf("populate: err=%v stats=%+v", err, res.Stats)
	}

	// Warm resume: zero recomputation for an unchanged fault axis.
	warm, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Computed != 0 || warm.Stats.CacheHits != cells {
		t.Fatalf("warm resume stats = %+v, want 0 computed / %d hits", warm.Stats, cells)
	}

	// A different schedule seed invalidates the two klinks cells only.
	mc2 := faultMatrix(t)
	mc2.Store = st
	mc2.Faults[1] = FaultRegistryFactory(fault.Default(), "klinks",
		fault.Params{"k": "2", "seed": "4", "at": "150"})
	res, err := RunMatrix(mc2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 2 || res.Stats.Computed != 2 {
		t.Fatalf("reseeded schedule stats = %+v, want 2 hits + 2 computed", res.Stats)
	}
}

// TestMatrixRejectsKeylessLossyFault: a hand-built factory with events
// but no content key must be refused on store-backed runs — it would
// collide with fault-free cached cells.
func TestMatrixRejectsKeylessLossyFault(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc := faultMatrix(t)
	mc.Store = st
	mc.Faults = []FaultFactory{{
		Name: "sneaky",
		New: func(tp *topo.Topology) (*fault.Schedule, error) {
			return &fault.Schedule{Events: []fault.Event{{Kind: fault.Link, From: 0, To: 1, Start: 100}}}, nil
		},
	}}
	if _, err := RunMatrix(mc); err == nil {
		t.Error("keyless lossy fault factory accepted on a store-backed run")
	}
	// Without a store the same factory is fine.
	mc.Store = nil
	if _, err := RunMatrix(mc); err != nil {
		t.Errorf("keyless factory rejected on storeless run: %v", err)
	}
}
