package sim

import (
	"reflect"
	"testing"

	"netsmith/internal/layout"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
)

// TestRunBitIdenticalOnSynthesizedTopology locks in end-to-end
// determinism: a fixed-restart synth.Generate must reproduce the same
// topology, and two sim.Run calls with identical Config must produce
// bit-identical Results. The engine iterates links in dense-ID order
// (not map order), so there is no iteration-order nondeterminism left.
func TestRunBitIdenticalOnSynthesizedTopology(t *testing.T) {
	gen := func() string {
		res, err := synth.Generate(synth.Config{
			Grid: layout.Grid4x5, Class: layout.Medium, Objective: synth.LatOp,
			Seed: 11, Iterations: 3000, Restarts: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Topology.CanonicalLinkList()
	}
	first := gen()
	if second := gen(); second != first {
		t.Fatal("synth.Generate with fixed seed/restarts produced different topologies")
	}

	res, err := synth.Generate(synth.Config{
		Grid: layout.Grid4x5, Class: layout.Medium, Objective: synth.LatOp,
		Seed: 11, Iterations: 3000, Restarts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Prepare(res.Topology, UseMCLB, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.12,
		CollectEnergy: true,
		WarmupCycles:  600, MeasureCycles: 2000, DrainCycles: 4000, Seed: 33,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// DeepEqual covers Energy too: every activity counter and derived
	// picojoule value must be bit-identical across reruns.
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical Config must reproduce bit-identical Results:\n%+v\n%+v", a, b)
	}
	if a.Measured == 0 {
		t.Fatal("determinism check measured nothing")
	}
	if a.Energy == nil || b.Energy == nil {
		t.Fatal("energy reports missing from determinism check")
	}
}
