package sim

import (
	"netsmith/internal/route"
	"netsmith/internal/vc"
)

// Fault-boundary processing. At every cycle where the schedule changes
// the set of dead elements the engine performs an epoch flush: every
// in-flight flit is dropped and counted (the table-update loss window of
// a programmable data plane), all per-slot and per-link state is reset
// to its initial empty-and-fully-credited shape, routing is rebuilt on
// the surviving subgraph and a fresh VC assignment keeps the epoch
// deadlock-free. Everything below is single-threaded and seeded, so a
// given (config, schedule) pair replays bit-identically.

// applyFaultBoundary processes one boundary cycle: recompute liveness,
// and — only if the alive set actually changed — flush, reroute and
// re-admit the injection queues.
func (e *engine) applyFaultBoundary() {
	deadLinks, deadRouters := e.cfg.FaultSchedule.DeadAt(e.cycle)
	aliveR := make([]bool, e.n)
	for i := range aliveR {
		aliveR[i] = true
	}
	for _, r := range deadRouters {
		aliveR[r] = false
	}
	aliveL := make([]bool, e.numLinks)
	for i := range aliveL {
		aliveL[i] = true
	}
	for _, l := range deadLinks {
		if id := e.linkIDAt[l[0]*e.n+l[1]]; id >= 0 {
			aliveL[id] = false
		}
	}
	if boolsEqual(aliveR, e.aliveRouter) && boolsEqual(aliveL, e.aliveLinkID) {
		return
	}
	e.rerouteEvents++
	purged := e.purgeNetwork()
	e.aliveRouter = aliveR
	e.aliveLinkID = aliveL
	e.rebuildEpochRouting(len(deadLinks) == 0 && len(deadRouters) == 0)
	e.flushInjectQueues(purged)
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// purgeNetwork drops every buffered and in-flight flit and resets all
// per-slot and per-link engine state to the post-setup shape: empty
// rings, full credits on real ports (phantom slots stay at zero), no
// owners, no mask bits. Returns the set of packets whose flits were
// purged; fully-injected ones are recycled here, partially-injected
// ones still sit in their source's injection queue and are recycled by
// flushInjectQueues.
func (e *engine) purgeNetwork() map[*packet]bool {
	purged := make(map[*packet]bool)
	for lid := 0; lid < e.numLinks; lid++ {
		cnt := e.lqCount[lid]
		base := lid * e.lqCap
		head := e.lqHead[lid]
		for i := int32(0); i < cnt; i++ {
			e.dropFlit(e.lqData[base+int((head+i)&e.lqMask)].f, purged)
		}
		e.lqCount[lid] = 0
		e.lqHead[lid] = 0
	}
	e.linkFlits = 0
	for s := range e.bufCount {
		cnt := e.bufCount[s]
		base := s * e.bufCap
		head := e.bufHead[s]
		for i := int32(0); i < cnt; i++ {
			e.dropFlit(e.bufData[base+int((head+i)&e.bufMask)], purged)
		}
		e.bufCount[s] = 0
		e.bufHead[s] = 0
		e.owner[s] = nil
		e.slotWhere[s] = whereNone
	}
	e.bufferedFlits = 0
	for i := range e.ejectMask {
		e.ejectMask[i] = 0
	}
	for i := range e.candMask {
		e.candMask[i] = 0
	}
	clear(e.lqPending)
	clear(e.ejectPending)
	clear(e.candPending)
	for i := range e.free {
		e.free[i] = 0
	}
	for r := 0; r < e.n; r++ {
		for p := 0; p < int(e.numPorts[r]); p++ {
			for v := 0; v < e.numVCs; v++ {
				e.free[(r*e.maxPorts+p)*e.numVCs+v] = int32(e.bufDepth)
			}
		}
	}
	return purged
}

// dropFlit accounts one purged flit; the first flit of each packet also
// retires the packet (measured-in-flight bookkeeping, drop counters).
func (e *engine) dropFlit(f flit, purged map[*packet]bool) {
	e.droppedFlits++
	p := f.pkt
	if p == nil || purged[p] {
		return
	}
	purged[p] = true
	e.droppedPackets++
	if p.measured {
		e.measuredInFlight--
	}
	if p.flitsQueued == p.flits {
		// Fully injected: the injection queue holds no reference, so the
		// packet object can be pooled immediately. Later purged flits of
		// the same packet are caught by the purged-set check above.
		e.recyclePacket(p)
	}
}

// rebuildEpochRouting installs the routing and VC assignment for the
// epoch that starts at the current cycle. When every element is alive
// the Config's own tables come back verbatim; otherwise survivor tables
// are built on the alive subgraph. Flows whose fresh assignment would
// need more layers than the physical VC count are deterministically
// dropped (nil path, reported unreachable) — the epoch must stay
// deadlock-free within the configured buffers.
func (e *engine) rebuildEpochRouting(healthy bool) {
	if healthy {
		e.routing = e.cfg.Routing
		e.vcAssign = e.cfg.VC
		e.escapeVCs = e.cfg.VC.NumVCs
		e.noteUnreachable()
		return
	}
	aliveRouter := func(r int) bool { return e.aliveRouter[r] }
	aliveLink := func(a, b int) bool {
		id := e.linkIDAt[a*e.n+b]
		return id >= 0 && e.aliveLinkID[id]
	}
	r := route.SurvivorRouting(e.cfg.Routing.Name+"+survivor", e.cfg.Topo, aliveRouter, aliveLink)
	a, err := vc.Assign(r, vc.Options{Seed: e.cfg.Seed})
	if err != nil {
		// Defensive only: layering simple per-flow paths always makes
		// progress. Should it ever fail, block every flow for the epoch
		// rather than risk a deadlock.
		for s := 0; s < e.n; s++ {
			for d := 0; d < e.n; d++ {
				r.Table[s][d] = nil
			}
		}
		layerOf := make([][]int, e.n)
		for s := range layerOf {
			layerOf[s] = make([]int, e.n)
			for d := range layerOf[s] {
				layerOf[s][d] = -1
			}
		}
		a = &vc.Assignment{NumVCs: 1, LayerOf: layerOf}
	}
	if a.NumVCs > e.cfg.NumVCs {
		for s := 0; s < e.n; s++ {
			for d := 0; d < e.n; d++ {
				if a.LayerOf[s][d] >= e.cfg.NumVCs {
					r.Table[s][d] = nil
					a.LayerOf[s][d] = -1
				}
			}
		}
		a.NumVCs = e.cfg.NumVCs
	}
	e.routing = r
	e.vcAssign = a
	e.escapeVCs = a.NumVCs
	e.noteUnreachable()
}

// noteUnreachable counts the epoch's ordered pairs with no path and
// keeps the peak for Result.UnreachablePairs.
func (e *engine) noteUnreachable() {
	unreach := 0
	for s := 0; s < e.n; s++ {
		row := e.routing.Table[s]
		for d := 0; d < e.n; d++ {
			if s != d && row[d] == nil {
				unreach++
			}
		}
	}
	if unreach > e.peakUnreachable {
		e.peakUnreachable = unreach
	}
}

// flushInjectQueues re-admits queued packets into the new epoch:
// packets already partially in the network are dropped (their worm was
// purged; a freshly injected body flit would have no owner chain),
// packets whose flow lost its path are dropped and counted, and the
// rest are re-pathed onto the epoch's tables, preserving FIFO order and
// generation timestamps.
func (e *engine) flushInjectQueues(purged map[*packet]bool) {
	var keep []*packet
	for r := 0; r < e.n; r++ {
		q := &e.injectQ[r]
		keep = keep[:0]
		for !q.empty() {
			p := q.pop()
			if p.flitsQueued > 0 {
				e.queuedPkts--
				if !purged[p] {
					// All its injected flits were already ejected, but the
					// tail never entered the network; the packet is lost
					// at the boundary like any in-flight worm.
					e.droppedPackets++
					if p.measured {
						e.measuredInFlight--
					}
				}
				e.recyclePacket(p)
				continue
			}
			if e.flowBlocked(p.src, p.dst) {
				e.queuedPkts--
				e.droppedPackets++
				if p.measured {
					e.measuredInFlight--
				}
				e.recyclePacket(p)
				continue
			}
			p.layer = e.vcAssign.Layer(p.src, p.dst)
			p.path = e.routing.PathFor(p.src, p.dst)
			keep = append(keep, p)
		}
		for _, p := range keep {
			q.push(p)
		}
	}
}
