package sim

import (
	"math"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/traffic"
)

func meshSetup(t *testing.T) *Setup {
	t.Helper()
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunLowLoadLatency(t *testing.T) {
	s := meshSetup(t)
	res, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern:       traffic.Uniform{N: 20},
		InjectionRate: 0.01,
		WarmupCycles:  1000, MeasureCycles: 3000, DrainCycles: 4000,
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("low-load mesh must not stall")
	}
	if res.Measured == 0 {
		t.Fatal("no packets measured")
	}
	// Zero-load latency sanity: avg hops ~3, link latency 2 =>
	// ~6 cycles network + serialization (avg 5 flits) + injection.
	if res.AvgLatencyCycles < 5 || res.AvgLatencyCycles > 40 {
		t.Errorf("low-load latency %v cycles implausible", res.AvgLatencyCycles)
	}
	// Accepted should approximate offered at low load (within 20%).
	if math.Abs(res.AcceptedPerCycle-0.01) > 0.002 {
		t.Errorf("accepted %v far from offered 0.01", res.AcceptedPerCycle)
	}
	// ns conversion: small class clocks at 3.6GHz.
	wantNs := res.AvgLatencyCycles / 3.6
	if math.Abs(res.AvgLatencyNs-wantNs) > 1e-9 {
		t.Errorf("ns conversion wrong: %v vs %v", res.AvgLatencyNs, wantNs)
	}
}

func TestRunDeterminism(t *testing.T) {
	s := meshSetup(t)
	cfg := Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern:       traffic.Uniform{N: 20},
		InjectionRate: 0.05,
		WarmupCycles:  500, MeasureCycles: 1500, DrainCycles: 3000,
		Seed: 7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatencyCycles != b.AvgLatencyCycles || a.Delivered != b.Delivered {
		t.Errorf("same seed must reproduce: %+v vs %+v", a, b)
	}
	cfg.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delivered == a.Delivered && c.AvgLatencyCycles == a.AvgLatencyCycles {
		t.Log("different seed produced identical stats (unlikely but possible)")
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	s := meshSetup(t)
	var prev float64
	for i, rate := range []float64{0.01, 0.10, 0.20} {
		res, err := Run(Config{
			Topo: s.Topo, Routing: s.Routing, VC: s.VC,
			Pattern:       traffic.Uniform{N: 20},
			InjectionRate: rate,
			WarmupCycles:  1500, MeasureCycles: 4000, DrainCycles: 8000,
			Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Measured == 0 {
			t.Fatalf("rate %v: nothing measured", rate)
		}
		if i > 0 && res.AvgLatencyCycles < prev*0.8 {
			t.Errorf("latency decreased markedly with load: %v -> %v at %v",
				prev, res.AvgLatencyCycles, rate)
		}
		prev = res.AvgLatencyCycles
	}
}

func TestMeshSaturatesUnderHeavyLoad(t *testing.T) {
	s := meshSetup(t)
	low, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.01,
		WarmupCycles: 1000, MeasureCycles: 3000, DrainCycles: 4000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.45,
		WarmupCycles: 1000, MeasureCycles: 3000, DrainCycles: 4000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At 0.45 pkts/node/cycle a 4x5 mesh is far beyond saturation:
	// latency must blow up relative to zero load, and accepted
	// throughput must fall well short of offered.
	if high.AvgLatencyCycles < 3*low.AvgLatencyCycles {
		t.Errorf("no saturation signature: %v vs %v cycles", high.AvgLatencyCycles, low.AvgLatencyCycles)
	}
	if high.AcceptedPerCycle > 0.40 {
		t.Errorf("accepted %v implies mesh carries 0.45 uniform load, impossible", high.AcceptedPerCycle)
	}
}

func TestNoStallAcrossTopologies(t *testing.T) {
	// Deadlock-freedom end to end: NetSmith topology with MCLB routing
	// and VC layering must never wedge, even past saturation.
	for _, name := range []string{expert.NameKiteSmall, expert.NameFoldedTorus} {
		tp, err := expert.Get(name, layout.Grid4x5)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Prepare(tp, UseMCLB, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Run(Config{
			Topo: s.Topo, Routing: s.Routing, VC: s.VC,
			Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.5,
			WarmupCycles: 1000, MeasureCycles: 2500, DrainCycles: 3000, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stalled {
			t.Errorf("%s stalled: deadlock-free assignment violated in sim", name)
		}
	}
}

func TestMemoryTrafficReplies(t *testing.T) {
	g := layout.Grid4x5
	s := meshSetup(t)
	mem := traffic.NewMemory(g.CoreRouters(), g.MemoryControllerRouters())
	res, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: mem, InjectionRate: 0.02,
		WarmupCycles: 1000, MeasureCycles: 3000, DrainCycles: 5000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured == 0 {
		t.Fatal("memory pattern delivered nothing")
	}
	// Replies roughly double deliveries vs requests alone; delivered
	// counts both. With 12 injecting cores at 0.02, measure window 3000:
	// ~720 requests + ~720 replies.
	if res.Delivered < 800 {
		t.Errorf("delivered %d suggests replies missing", res.Delivered)
	}
}

func TestSweepDerivesSaturation(t *testing.T) {
	s := meshSetup(t)
	sr, err := s.Curve(traffic.Uniform{N: 20}, []float64{0.01, 0.08, 0.2, 0.4}, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ZeroLoadLatencyNs <= 0 {
		t.Fatal("zero-load latency missing")
	}
	if sr.SaturationPerNs <= 0 {
		t.Fatal("saturation throughput missing")
	}
	if len(sr.Points) != 4 {
		t.Fatalf("points %d", len(sr.Points))
	}
	// The 0.4 point must be flagged saturated for a mesh.
	if !sr.Points[3].Saturated {
		t.Errorf("0.4 offered on mesh should be saturated: %+v", sr.Points[3])
	}
}

func TestMultiClockNodeRateSlowsNetwork(t *testing.T) {
	s := meshSetup(t)
	fast, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.02,
		WarmupCycles: 1000, MeasureCycles: 3000, DrainCycles: 5000, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	slowRate := make([]float64, 20)
	for i := range slowRate {
		slowRate[i] = 0.5
	}
	slow, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.02,
		WarmupCycles: 1000, MeasureCycles: 3000, DrainCycles: 6000, Seed: 13,
		NodeRate: slowRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgLatencyCycles <= fast.AvgLatencyCycles {
		t.Errorf("half-rate routers should increase latency: %v vs %v",
			slow.AvgLatencyCycles, fast.AvgLatencyCycles)
	}
}

func TestConfigValidation(t *testing.T) {
	s := meshSetup(t)
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config must error")
	}
	_, err := Run(Config{Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, NumVCs: 1})
	if err == nil && s.VC.NumVCs > 1 {
		t.Error("NumVCs below assignment layers must error")
	}
}
