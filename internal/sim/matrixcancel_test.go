package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"netsmith/internal/store"
)

// TestMatrixCancellation pins the cell-granular cancellation contract:
// a context cancelled mid-run stops the matrix within at most one
// in-flight cell per worker, RunMatrix reports the context error, and a
// resumed run over the same store completes with output identical to an
// uncancelled run.
func TestMatrixCancellation(t *testing.T) {
	mc := storeMatrix(t)
	// Widen the rate grid so the matrix comfortably exceeds the worker
	// pool: cancellation after the first cell must leave most of it
	// unsimulated on any realistic core count.
	mc.Rates = []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10}
	want, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(mc.Setups) * len(mc.Patterns) * len(mc.Rates)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	doneAtCancel := 0
	mc.Store = st
	mc.Ctx = ctx
	mc.Progress = func(done, total int) {
		if total != cells {
			t.Errorf("progress total = %d, want %d", total, cells)
		}
		mu.Lock()
		defer mu.Unlock()
		if doneAtCancel == 0 {
			doneAtCancel = done
			cancel() // cancel after the first resolved cell
		}
	}
	if _, err := RunMatrix(mc); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}
	// Each pool worker finishes at most the cell it was simulating when
	// the context died — the "stops within one cell" bound.
	workers := runtime.GOMAXPROCS(0)
	if workers > cells {
		workers = cells
	}
	n, err := st.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > workers {
		t.Fatalf("cancelled run persisted %d cells, want in [1, %d] (one in-flight cell per worker)", n, workers)
	}

	// Resume: the remaining cells compute, the finished ones come from
	// the store, and the merged result matches the uncancelled run.
	mc.Ctx = nil
	mc.Progress = nil
	res, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != n || res.Stats.Computed != cells-n {
		t.Fatalf("resumed stats = %+v, want %d cached + %d computed", res.Stats, n, cells-n)
	}
	res.Stats, want.Stats = MatrixStats{}, MatrixStats{}
	if !reflect.DeepEqual(want, res) {
		t.Error("resumed matrix differs from uncancelled run")
	}
}

// TestMatrixPreCancelled: a context cancelled before the run starts
// simulates nothing.
func TestMatrixPreCancelled(t *testing.T) {
	mc := storeMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mc.Ctx = ctx
	if _, err := RunMatrix(mc); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run error = %v, want context.Canceled", err)
	}
}

// TestMatrixProgressCompletes: an uncancelled run invokes Progress once
// per cell with in-range done values and guarantees a final
// (total, total) call. Concurrent callbacks may repeat or skip
// intermediate values (the documented contract), so the test counts
// invocations rather than distinct values.
func TestMatrixProgressCompletes(t *testing.T) {
	mc := storeMatrix(t)
	cells := len(mc.Setups) * len(mc.Patterns) * len(mc.Rates)
	var mu sync.Mutex
	calls, sawTotal := 0, false
	mc.Progress = func(done, total int) {
		mu.Lock()
		calls++
		if done == cells {
			sawTotal = true
		}
		if done < 1 || done > cells || total != cells {
			t.Errorf("progress out of range: done=%d total=%d (cells=%d)", done, total, cells)
		}
		mu.Unlock()
	}
	if _, err := RunMatrix(mc); err != nil {
		t.Fatal(err)
	}
	if calls != cells || !sawTotal {
		t.Fatalf("progress invoked %d times (saw total: %v), want %d invocations ending at %d/%d",
			calls, sawTotal, cells, cells, cells)
	}
}
