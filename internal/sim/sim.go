// Package sim is a flit-level network simulator: input-queued routers
// with per-port virtual channels, credit-based flow control, wormhole
// switching with per-packet VC ownership, round-robin switch allocation,
// table-based (per-flow precomputed path) routing and multi-rate clock
// domains. It substitutes for the paper's gem5 + HeteroGarnet setup; see
// DESIGN.md for the fidelity argument.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"netsmith/internal/route"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
	"netsmith/internal/vc"
)

// Config parameterizes one simulation run.
type Config struct {
	Topo    *topo.Topology
	Routing *route.Routing
	VC      *vc.Assignment

	// NumVCs is the physical VC count per input port (paper Table IV: 6
	// total for synthetic runs). Must be >= VC.NumVCs. Default 6.
	NumVCs int
	// BufDepth is the flit capacity of each VC buffer. Default 4.
	BufDepth int
	// LinkLatency is the cycle count from switch allocation to arrival
	// in the downstream buffer (router pipeline + wire). Default 2,
	// matching the paper's 2-cycle router latency.
	LinkLatency int
	// ClockGHz converts cycles to nanoseconds. Default: the topology
	// class clock.
	ClockGHz float64

	// Pattern generates traffic; InjectionRate is offered packets per
	// injecting node per cycle.
	Pattern       traffic.Pattern
	InjectionRate float64

	// InjectBandwidth / EjectBandwidth are flits per node per cycle
	// (default 4 each: the paper's concentration attaches four cores per
	// NoI router, so local ports are not the bottleneck).
	InjectBandwidth int
	EjectBandwidth  int

	// WarmupCycles run before measurement; MeasureCycles are measured;
	// after the measure window the simulation drains up to DrainCycles
	// to collect in-flight measured packets. Defaults 4000/12000/20000.
	WarmupCycles  int
	MeasureCycles int
	DrainCycles   int

	// NodeRate optionally scales each router's service rate relative to
	// the base clock (multi-clock domains); 0 entries default to 1.0.
	NodeRate []float64
	// ExtraLinkLatency adds per-link latency cycles (e.g. CDC
	// crossings), keyed by [from][to]. Nil = none.
	ExtraLinkLatency map[[2]int]int

	Seed int64
}

// Result summarizes a run.
type Result struct {
	// OfferedRate is packets/node/cycle offered; Accepted is the
	// measured delivery rate in packets/node/cycle and packets/node/ns.
	OfferedRate      float64
	AcceptedPerCycle float64
	AcceptedPerNs    float64
	// AvgLatencyNs is the mean packet latency (generation to tail
	// ejection) over measured packets, in nanoseconds; AvgLatencyCycles
	// the same in cycles.
	AvgLatencyNs     float64
	AvgLatencyCycles float64
	// Measured is the number of packets the latency average covers;
	// Delivered counts all packets ejected in the measure window.
	Measured  int
	Delivered int
	// Stalled is set when the watchdog detected no forward progress
	// (should never happen with verified deadlock-free VC assignments).
	Stalled bool
}

type flit struct {
	pkt     *packet
	pathIdx int // index of the flit's current router within pkt.path
	isHead  bool
	isTail  bool
}

type packet struct {
	src, dst    int
	flits       int
	layer       int
	path        route.Path
	injectedAt  int64
	measured    bool
	flitsQueued int // flits already pushed into the network
}

type buffer struct {
	q []flit
}

func (b *buffer) empty() bool    { return len(b.q) == 0 }
func (b *buffer) head() *flit    { return &b.q[0] }
func (b *buffer) pop() flit      { f := b.q[0]; b.q = b.q[1:]; return f }
func (b *buffer) push(f flit)    { b.q = append(b.q, f) }
func (b *buffer) occupancy() int { return len(b.q) }

type inflight struct {
	f           flit
	arriveAt    int64
	port, vcIdx int
}

// engine is the simulation state.
type engine struct {
	cfg      Config
	n        int
	rng      *rand.Rand
	numVCs   int
	bufDepth int

	// ports[r] lists input ports of router r: port 0 is injection, the
	// rest map from upstream routers via portOf[r][upstream].
	numPorts []int
	portOf   []map[int]int
	bufs     [][][]buffer // [router][port][vc]
	free     [][][]int    // free slots mirror
	owner    [][][]*packet

	// link queues keyed by directed link.
	links map[[2]int]*[]inflight

	injectQ [][]*packet
	rrOut   map[[2]int]int // RR pointer per output link
	rrEject []int

	accRate []float64 // multi-clock accumulators
	rate    []float64

	cycle int64

	// stats
	delivered, measured int
	measuredInFlight    int
	latencySum          int64
	forwardedThisCycle  bool
}

func defaulted(cfg Config) (Config, error) {
	if cfg.Topo == nil || cfg.Routing == nil || cfg.VC == nil || cfg.Pattern == nil {
		return cfg, errors.New("sim: Topo, Routing, VC and Pattern are required")
	}
	if cfg.NumVCs == 0 {
		cfg.NumVCs = 6
	}
	if cfg.NumVCs < cfg.VC.NumVCs {
		return cfg, fmt.Errorf("sim: %d physical VCs < %d assigned layers", cfg.NumVCs, cfg.VC.NumVCs)
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 4
	}
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = 2
	}
	if cfg.ClockGHz == 0 {
		cfg.ClockGHz = cfg.Topo.Class.ClockGHz()
	}
	if cfg.InjectBandwidth == 0 {
		cfg.InjectBandwidth = 4
	}
	if cfg.EjectBandwidth == 0 {
		cfg.EjectBandwidth = 4
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 4000
	}
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 12000
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 20000
	}
	return cfg, nil
}

// Run executes the simulation and returns aggregate statistics.
func Run(c Config) (*Result, error) {
	cfg, err := defaulted(c)
	if err != nil {
		return nil, err
	}
	e := newEngine(cfg)
	return e.run()
}

func newEngine(cfg Config) *engine {
	n := cfg.Topo.N()
	e := &engine{
		cfg:      cfg,
		n:        n,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		numVCs:   cfg.NumVCs,
		bufDepth: cfg.BufDepth,
		numPorts: make([]int, n),
		portOf:   make([]map[int]int, n),
		links:    make(map[[2]int]*[]inflight),
		injectQ:  make([][]*packet, n),
		rrOut:    make(map[[2]int]int),
		rrEject:  make([]int, n),
		accRate:  make([]float64, n),
		rate:     make([]float64, n),
	}
	for r := 0; r < n; r++ {
		e.portOf[r] = map[int]int{}
		ports := 1 // injection port
		for _, u := range cfg.Topo.In(r) {
			e.portOf[r][u] = ports
			ports++
		}
		e.numPorts[r] = ports
		e.rate[r] = 1
		if cfg.NodeRate != nil && cfg.NodeRate[r] > 0 {
			e.rate[r] = cfg.NodeRate[r]
		}
	}
	e.bufs = make([][][]buffer, n)
	e.free = make([][][]int, n)
	e.owner = make([][][]*packet, n)
	for r := 0; r < n; r++ {
		e.bufs[r] = make([][]buffer, e.numPorts[r])
		e.free[r] = make([][]int, e.numPorts[r])
		e.owner[r] = make([][]*packet, e.numPorts[r])
		for p := 0; p < e.numPorts[r]; p++ {
			e.bufs[r][p] = make([]buffer, e.numVCs)
			e.free[r][p] = make([]int, e.numVCs)
			e.owner[r][p] = make([]*packet, e.numVCs)
			for v := 0; v < e.numVCs; v++ {
				e.free[r][p][v] = e.bufDepth
			}
		}
	}
	for _, l := range cfg.Topo.Links() {
		q := make([]inflight, 0, 8)
		e.links[[2]int{l.From, l.To}] = &q
	}
	return e
}

func (e *engine) run() (*Result, error) {
	cfg := e.cfg
	total := int64(cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles)
	measStart := int64(cfg.WarmupCycles)
	measEnd := measStart + int64(cfg.MeasureCycles)
	idleCycles := 0
	pendingMeasured := 0
	for e.cycle = 0; e.cycle < total; e.cycle++ {
		generating := e.cycle < measEnd
		measuring := e.cycle >= measStart && e.cycle < measEnd
		e.forwardedThisCycle = false
		e.deliverArrivals()
		e.ejectAndSwitch(measuring)
		if generating {
			e.generate(measuring)
		}
		e.inject()
		// Watchdog: if nothing moved for a long stretch while flits are
		// buffered, the network is wedged.
		if e.forwardedThisCycle || e.networkEmpty() {
			idleCycles = 0
		} else {
			idleCycles++
			if idleCycles > 4*(cfg.LinkLatency+8)*e.n {
				return &Result{Stalled: true}, nil
			}
		}
		if e.cycle >= measEnd {
			pendingMeasured = e.pendingMeasured()
			if pendingMeasured == 0 {
				break
			}
		}
	}
	res := &Result{
		OfferedRate: cfg.InjectionRate,
		Measured:    e.measured,
		Delivered:   e.delivered,
	}
	injectingNodes := e.injectingNodes()
	if injectingNodes == 0 {
		injectingNodes = e.n
	}
	cyclesNs := 1.0 / cfg.ClockGHz
	if e.measured > 0 {
		res.AvgLatencyCycles = float64(e.latencySum) / float64(e.measured)
		res.AvgLatencyNs = res.AvgLatencyCycles * cyclesNs
	}
	res.AcceptedPerCycle = float64(e.delivered) / float64(cfg.MeasureCycles) / float64(injectingNodes)
	res.AcceptedPerNs = res.AcceptedPerCycle * cfg.ClockGHz
	return res, nil
}

// injectingNodes counts nodes that originate traffic under the pattern.
func (e *engine) injectingNodes() int {
	count := 0
	probe := rand.New(rand.NewSource(1))
	for r := 0; r < e.n; r++ {
		if _, _, ok := e.cfg.Pattern.Inject(r, probe); ok {
			count++
		}
	}
	return count
}

func (e *engine) networkEmpty() bool {
	for r := 0; r < e.n; r++ {
		for p := 0; p < e.numPorts[r]; p++ {
			for v := 0; v < e.numVCs; v++ {
				if !e.bufs[r][p][v].empty() {
					return false
				}
			}
		}
	}
	for _, q := range e.links {
		if len(*q) > 0 {
			return false
		}
	}
	return true
}

func (e *engine) pendingMeasured() int {
	// Cheap check: any measured packet not yet fully ejected is counted
	// via measured-vs-delivered bookkeeping; we approximate by testing
	// network emptiness of measured flits using the counters.
	if e.measuredInFlight > 0 {
		return e.measuredInFlight
	}
	return 0
}

// generate creates new packets per the Bernoulli injection process.
func (e *engine) generate(measuring bool) {
	for r := 0; r < e.n; r++ {
		if e.rng.Float64() >= e.cfg.InjectionRate {
			continue
		}
		dst, flits, ok := e.cfg.Pattern.Inject(r, e.rng)
		if !ok {
			continue
		}
		e.enqueuePacket(r, dst, flits, measuring)
	}
}

func (e *engine) enqueuePacket(src, dst, flits int, measuring bool) {
	p := &packet{
		src: src, dst: dst, flits: flits,
		layer:      e.cfg.VC.Layer(src, dst),
		path:       e.cfg.Routing.PathFor(src, dst),
		injectedAt: e.cycle,
		measured:   measuring,
	}
	if measuring {
		e.measuredInFlight++
	}
	e.injectQ[src] = append(e.injectQ[src], p)
}
