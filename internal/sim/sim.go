// Package sim is a flit-level network simulator: input-queued routers
// with per-port virtual channels, credit-based flow control, wormhole
// switching with per-packet VC ownership, round-robin switch allocation,
// table-based (per-flow precomputed path) routing and multi-rate clock
// domains. It substitutes for the paper's gem5 + HeteroGarnet setup; see
// DESIGN.md for the fidelity argument and the engine's data layout.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"netsmith/internal/fault"
	"netsmith/internal/power"
	"netsmith/internal/route"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
	"netsmith/internal/vc"
)

// Config parameterizes one simulation run.
type Config struct {
	Topo    *topo.Topology
	Routing *route.Routing
	VC      *vc.Assignment

	// NumVCs is the physical VC count per input port (paper Table IV: 6
	// total for synthetic runs). Must be >= VC.NumVCs. Default 6.
	NumVCs int
	// BufDepth is the flit capacity of each VC buffer. Default 4.
	BufDepth int
	// LinkLatency is the cycle count from switch allocation to arrival
	// in the downstream buffer (router pipeline + wire). Default 2,
	// matching the paper's 2-cycle router latency.
	LinkLatency int
	// ClockGHz converts cycles to nanoseconds. Default: the topology
	// class clock.
	ClockGHz float64

	// Pattern generates traffic; InjectionRate is offered packets per
	// injecting node per cycle.
	Pattern       traffic.Pattern
	InjectionRate float64

	// InjectBandwidth / EjectBandwidth are flits per node per cycle
	// (default 4 each: the paper's concentration attaches four cores per
	// NoI router, so local ports are not the bottleneck).
	InjectBandwidth int
	EjectBandwidth  int

	// WarmupCycles run before measurement; MeasureCycles are measured;
	// after the measure window the simulation drains up to DrainCycles
	// to collect in-flight measured packets. Defaults 4000/12000/20000.
	WarmupCycles  int
	MeasureCycles int
	DrainCycles   int

	// CollectEnergy enables per-router/per-link activity counters on the
	// hot path (plain uint64 increments; no extra allocations) and fills
	// Result.Energy with the measured-energy report. The counting branches
	// are gated on nil slices, so runs without it pay nothing.
	CollectEnergy bool
	// EnergyModel supplies the technology constants for the energy
	// conversion; nil selects power.Default22nm().
	EnergyModel *power.Model

	// FaultSchedule, when non-empty, deterministically kills links and
	// routers during the run per the schedule's events. At every cycle
	// where the set of dead elements changes the engine performs an
	// epoch flush: all in-flight flits are dropped and counted
	// (modeling the table-update loss window of a programmable data
	// plane), routing is recomputed on the surviving subgraph
	// (route.SurvivorRouting) with a fresh per-epoch VC assignment so
	// each epoch stays deadlock-free, and unreachable flows stop
	// injecting (reported via Result.UnreachablePairs, never wedging
	// the watchdog). Same seed + schedule replays bit-identically.
	// Energy conservation invariants hold only for fault-free runs:
	// dropped flits have buffer writes without matching ejections.
	FaultSchedule *fault.Schedule

	// DisableFastForward forces the fully cycle-by-cycle stepping path:
	// no event-driven router/link scanning and no quiescent-window cycle
	// skipping. Results are bit-identical either way — the flag exists
	// for the equivalence tests and CI cross-checks that pin that claim
	// (and it is deliberately excluded from matrix store cell keys).
	// Engines with sub-rate clock domains (any NodeRate entry < 1) take
	// the cycle-by-cycle path regardless.
	DisableFastForward bool

	// NodeRate optionally scales each router's service rate relative to
	// the base clock (multi-clock domains); 0 entries default to 1.0.
	NodeRate []float64
	// ExtraLinkLatency adds per-link latency cycles (e.g. CDC
	// crossings), keyed by [from][to]. Nil = none. The engine densifies
	// this into a per-link-ID latency table at setup.
	ExtraLinkLatency map[[2]int]int

	Seed int64
}

// Result summarizes a run.
type Result struct {
	// OfferedRate is packets/node/cycle offered; Accepted is the
	// measured delivery rate in packets/node/cycle and packets/node/ns.
	OfferedRate      float64
	AcceptedPerCycle float64
	AcceptedPerNs    float64
	// AvgLatencyNs is the mean packet latency (generation to tail
	// ejection) over measured packets, in nanoseconds; AvgLatencyCycles
	// the same in cycles.
	AvgLatencyNs     float64
	AvgLatencyCycles float64
	// Measured is the number of packets the latency average covers;
	// Delivered counts all packets ejected in the measure window.
	Measured  int
	Delivered int
	// Stalled is set when the watchdog detected no forward progress
	// (should never happen with verified deadlock-free VC assignments).
	Stalled bool

	// Robustness accounting. DeliveredFraction is filled for every run:
	// measured deliveries over measured injection attempts (1.0 when
	// nothing was offered); it dips below 1 under faults (drops,
	// unreachable flows) and at saturation (drain-cap overruns). The
	// remaining fields stay zero unless Config.FaultSchedule fired.
	DeliveredFraction float64
	// DroppedFlits / DroppedPackets count flits and packets purged at
	// fault boundaries (in-flight worms lost to the reroute flush).
	DroppedFlits   int
	DroppedPackets int
	// RerouteEvents counts fault boundaries at which the alive set
	// actually changed and the engine recomputed routing.
	RerouteEvents int
	// UnreachablePairs is the peak, across epochs, of ordered (src,dst)
	// pairs with no surviving deadlock-free path; such flows stop
	// injecting for the epoch (SkippedInjections counts the attempts).
	UnreachablePairs  int
	SkippedInjections int
	// PreFaultAvgLatencyNs / PostFaultAvgLatencyNs split the measured
	// latency average by whether the packet was generated before or
	// after the first fault onset (both zero without faults).
	PreFaultAvgLatencyNs  float64
	PostFaultAvgLatencyNs float64

	// Energy is the measured-energy report (nil unless
	// Config.CollectEnergy was set).
	Energy *EnergyReport
}

// EnergyReport is the measured-energy outcome of one run: the raw
// activity counters the engine accumulated plus their conversion into
// picojoules via power.Model (dynamic by component, leakage x run
// duration, per-router and per-link breakdowns).
//
// Counter semantics (the conservation invariants pinned by
// TestEnergyConservation):
//
//   - BufWrites[r] counts flits written into router r's VC buffers: one
//     per injection at r plus one per link arrival at r.
//   - BufReads[r] counts flits popped out of router r's buffers — the
//     switch/ejection traversals the router dynamic energy is charged
//     on: one per link departure plus one per local ejection. A flit
//     crossing h links is read h+1 times network-wide.
//   - LinkFlits[id] counts flit crossings of dense directed link id
//     (topo.LinkID order); wire dynamic energy is charged per crossing
//     times the link's length.
//
// At full drain: sum(BufWrites) == InjectedFlits + sum(LinkFlits),
// sum(BufReads) == EjectedFlits + sum(LinkFlits), and InjectedFlits ==
// EjectedFlits == the flit count of every delivered packet.
type EnergyReport struct {
	power.ActivityReport

	BufReads      []uint64
	BufWrites     []uint64
	LinkFlits     []uint64
	InjectedFlits uint64
	EjectedFlits  uint64
}

// PerFlitPJ is the dynamic energy per delivered flit (0 when the run
// delivered nothing) — the single definition behind every
// energy_per_flit_pj column.
func (r *EnergyReport) PerFlitPJ() float64 {
	if r.EjectedFlits == 0 {
		return 0
	}
	return r.DynamicPJ / float64(r.EjectedFlits)
}

type flit struct {
	pkt     *packet
	pathIdx int32 // index of the flit's current router within pkt.path
	isHead  bool
	isTail  bool
}

type packet struct {
	src, dst    int
	flits       int
	layer       int
	path        route.Path
	injectedAt  int64
	measured    bool
	flitsQueued int // flits already pushed into the network
}

type inflight struct {
	f        flit
	arriveAt int64
	slot     int32 // destination VC-buffer slot (reserved at send time)
}

// pktRing is a growable power-of-two ring of queued packets. It replaces
// the leaky q = q[1:] reslice queue: popped slots are reused instead of
// retaining dead prefixes of the backing array.
type pktRing struct {
	q    []*packet
	head int32
	size int32
}

func (r *pktRing) empty() bool    { return r.size == 0 }
func (r *pktRing) front() *packet { return r.q[r.head] }

func (r *pktRing) push(p *packet) {
	if int(r.size) == len(r.q) {
		grown := make([]*packet, max(8, 2*len(r.q)))
		for i := int32(0); i < r.size; i++ {
			grown[i] = r.q[(r.head+i)&int32(len(r.q)-1)]
		}
		r.q = grown
		r.head = 0
	}
	r.q[(r.head+r.size)&int32(len(r.q)-1)] = p
	r.size++
}

func (r *pktRing) pop() *packet {
	p := r.q[r.head]
	r.q[r.head] = nil
	r.head = (r.head + 1) & int32(len(r.q)-1)
	r.size--
	return p
}

// slotWhere sentinel values; non-negative entries are link IDs.
const (
	whereNone  int32 = -1 // buffer empty (or head unroutable)
	whereEject int32 = -2 // head flit is at its final router
)

// engine is the simulation state. All per-(router,port,vc) state lives in
// flat arrays indexed by slot = router*slotsPerRouter + port*numVCs + vc
// (slotsPerRouter = maxPorts*numVCs); all per-link state is indexed by
// the topology's dense directed-link ID. Steady-state cycles allocate
// nothing: VC buffers and link queues are fixed-capacity rings over
// shared backing arrays, and packet objects are pooled per engine.
type engine struct {
	cfg      Config
	n        int
	rng      *rand.Rand
	numVCs   int
	bufDepth int

	// Port geometry: port 0 is injection; ports 1.. map upstream routers
	// in Topo.In order. Phantom slots of routers with fewer than
	// maxPorts ports keep zero credits and are never routed to.
	numPorts       []int32
	maxPorts       int
	slotsPerRouter int
	wordsPerRouter int // occupancy-mask words per router

	// VC buffers: per-slot rings of capacity bufCap (power of two >=
	// BufDepth) over one shared backing array.
	bufCap   int
	bufMask  int32
	bufData  []flit
	bufHead  []int32
	bufCount []int32
	free     []int32   // credit mirror per slot
	owner    []*packet // wormhole VC ownership per slot

	// Head-target tracking. slotWhere[s] records where slot s's head
	// flit wants to go (whereNone, whereEject, or a link ID); ejectMask
	// and candMask mirror it as per-router bitmask words (bit = local
	// slot port*numVCs+vc) so ejection and switch allocation iterate
	// only occupied, correctly-targeted VCs — the bitgraph word-ops
	// idiom applied to switch state.
	slotWhere []int32
	ejectMask []uint64 // [router*wordsPerRouter + w]
	candMask  []uint64 // [linkID*wordsPerRouter + w]

	// Claimed-VC caches: the downstream VC a worm's head picked, reused
	// by its body flits without re-scanning the owner chain. claimVC is
	// keyed by the upstream slot the worm forwards out of, injVC by the
	// source router. Only read for body flits, whose head's claim (same
	// slot / same queue, worms are contiguous) always preceded them;
	// epoch flushes purge partial worms, so stale values are never read.
	claimVC []int8
	injVC   []int8

	// Dense directed links (IDs from topo.LinkID).
	numLinks     int
	linkFrom     []int32
	linkTo       []int32
	linkDownBase []int32 // destination slot base: (to*maxPorts+downPort)*numVCs
	linkLat      []int64 // LinkLatency + ExtraLinkLatency, per link
	linkIDAt     []int32 // n*n lookup (from*n+to) -> link ID, -1 absent
	outLinks     [][]int32

	// Link in-flight queues: per-link rings of capacity lqCap over one
	// shared backing array. At most one flit enters a link per cycle and
	// every flit leaves after exactly linkLat cycles, so occupancy is
	// bounded by maxLat < lqCap.
	lqCap   int
	lqMask  int32
	lqData  []inflight
	lqHead  []int32
	lqCount []int32

	injectQ   []pktRing
	rrOut     []int32 // RR scan start per output link (local slot index)
	rrEject   []int32
	activeNow []bool // per-cycle scratch

	accRate []float64 // multi-clock accumulators
	rate    []float64

	// Hybrid event-driven stepping (see DESIGN.md "Time stepping").
	// uniformClock is true when every router has a service slot each
	// cycle (all rates >= 1); eventDriven additionally requires the
	// fast path not be disabled. lqPending/ejectPending/candPending are
	// one-bit-per-link (resp. per-router) summaries of the occupancy
	// state — a link with in-flight flits, a router with eject-ready
	// heads, a link with switch candidates — so idle elements are never
	// scanned. lastEject/lastOut record the cycle a router's ejector /
	// a link's switch allocator last ran, letting the +1-per-cycle
	// round-robin advance of skipped no-op cycles be reconstructed
	// lazily (the property that also makes whole-cycle fast-forward
	// round-robin-exact). queuedPkts counts packets across all
	// injection queues for an O(1) idle check.
	uniformClock bool
	eventDriven  bool
	lqPending    []uint64
	ejectPending []uint64
	candPending  []uint64
	lastEject    []int64
	lastOut      []int64
	queuedPkts   int
	hinter       traffic.InjectionHinter
	ffSkipped    int64 // cycles fast-forwarded (stats/tests only)

	pktFree []*packet // packet pool

	// Activity counters (nil unless CollectEnergy): per-router buffer
	// reads/writes, per-link flit crossings, and the injection/ejection
	// totals. Plain uint64 increments on the existing hot-path events —
	// no allocation, no extra passes, gated on a nil check that predicts
	// perfectly when disabled.
	actBufRead   []uint64
	actBufWrite  []uint64
	actLinkFlits []uint64
	actInjected  uint64
	actEjected   uint64

	cycle int64

	// Fault state. routing/vcAssign/escapeVCs are the CURRENT epoch's
	// tables — the Config's own while everything is alive, survivor
	// tables after a fault boundary. escapeVCs is the escape-layer count
	// of the current assignment (adaptive VCs are indices >= escapeVCs).
	// aliveRouter/aliveLinkID track element liveness; boundaries holds
	// the schedule's precomputed alive-set change cycles.
	routing      *route.Routing
	vcAssign     *vc.Assignment
	escapeVCs    int
	aliveRouter  []bool
	aliveLinkID  []bool
	boundaries   []int64
	nextBoundary int
	firstFault   int64 // earliest fault onset cycle; -1 without faults

	// stats and progress tracking. bufferedFlits/linkFlits replace the
	// O(routers*ports*VCs) networkEmpty scan.
	bufferedFlits       int
	linkFlits           int
	delivered, measured int
	measuredInFlight    int
	latencySum          int64
	forwardedThisCycle  bool

	// fault stats
	droppedFlits    int
	droppedPackets  int
	rerouteEvents   int
	peakUnreachable int
	skippedInject   int
	measuredOffered int
	preLatSum       int64
	postLatSum      int64
	preMeasured     int
	postMeasured    int
}

// normalized applies the default knob values. It is pattern-independent
// (only Topo is consulted, for the class clock), which lets the matrix
// cell cache keys canonicalize a Config without building its workload.
func (c Config) normalized() Config {
	cfg := c
	if cfg.NumVCs == 0 {
		cfg.NumVCs = 6
	}
	if cfg.BufDepth == 0 {
		cfg.BufDepth = 4
	}
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = 2
	}
	if cfg.ClockGHz == 0 && cfg.Topo != nil {
		cfg.ClockGHz = cfg.Topo.Class.ClockGHz()
	}
	if cfg.InjectBandwidth == 0 {
		cfg.InjectBandwidth = 4
	}
	if cfg.EjectBandwidth == 0 {
		cfg.EjectBandwidth = 4
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 4000
	}
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 12000
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 20000
	}
	return cfg
}

func defaulted(cfg Config) (Config, error) {
	if cfg.Topo == nil || cfg.Routing == nil || cfg.VC == nil || cfg.Pattern == nil {
		return cfg, errors.New("sim: Topo, Routing, VC and Pattern are required")
	}
	cfg = cfg.normalized()
	if cfg.NumVCs < cfg.VC.NumVCs {
		return cfg, fmt.Errorf("sim: %d physical VCs < %d assigned layers", cfg.NumVCs, cfg.VC.NumVCs)
	}
	return cfg, nil
}

// Run executes the simulation and returns aggregate statistics.
func Run(c Config) (*Result, error) {
	cfg, err := defaulted(c)
	if err != nil {
		return nil, err
	}
	e := newEngine(cfg)
	return e.run()
}

// runReused executes cfg on the cached engine in *slot, rebuilding it
// only when the geometry changed (different topology or sizing knobs)
// and resetting it otherwise. This is the batched matrix-cell path:
// consecutive cells of one prepared topology skip the port-map,
// flat-array and link-table construction. Results are bit-identical
// to Run's.
func runReused(slot **engine, c Config) (*Result, error) {
	cfg, err := defaulted(c)
	if err != nil {
		return nil, err
	}
	if *slot == nil || !(*slot).compatible(cfg) {
		*slot = newEngine(cfg)
	} else {
		(*slot).reset(cfg)
	}
	return (*slot).run()
}

// pow2 returns the smallest power of two >= v (and >= 1).
func pow2(v int) int {
	c := 1
	for c < v {
		c <<= 1
	}
	return c
}

// newEngine allocates the geometry-sized state for cfg and resets it
// for a run. The split between allocation (here) and per-run state
// (reset) is what batched matrix execution reuses: cells sharing a
// prepared topology rebuild only the run state.
func newEngine(cfg Config) *engine {
	n := cfg.Topo.N()
	e := &engine{
		n:        n,
		numVCs:   cfg.NumVCs,
		bufDepth: cfg.BufDepth,
		numPorts: make([]int32, n),
		accRate:  make([]float64, n),
		rate:     make([]float64, n),
	}
	// Port geometry. portOf is setup-only: the per-link downstream port
	// is densified into linkDownBase below.
	portOf := make([]map[int]int, n)
	maxPorts := 1
	for r := 0; r < n; r++ {
		portOf[r] = map[int]int{}
		ports := 1 // injection port
		for _, u := range cfg.Topo.In(r) {
			portOf[r][u] = ports
			ports++
		}
		e.numPorts[r] = int32(ports)
		if ports > maxPorts {
			maxPorts = ports
		}
		e.rate[r] = 1
		if cfg.NodeRate != nil && cfg.NodeRate[r] > 0 {
			e.rate[r] = cfg.NodeRate[r]
		}
	}
	e.maxPorts = maxPorts
	e.slotsPerRouter = maxPorts * e.numVCs
	e.wordsPerRouter = (e.slotsPerRouter + 63) / 64

	e.uniformClock = true
	for r := 0; r < n; r++ {
		if e.rate[r] < 1 {
			e.uniformClock = false
			break
		}
	}

	totalSlots := n * e.slotsPerRouter
	e.bufCap = pow2(e.bufDepth)
	e.bufMask = int32(e.bufCap - 1)
	e.bufData = make([]flit, totalSlots*e.bufCap)
	e.bufHead = make([]int32, totalSlots)
	e.bufCount = make([]int32, totalSlots)
	e.free = make([]int32, totalSlots)
	e.owner = make([]*packet, totalSlots)
	e.slotWhere = make([]int32, totalSlots)
	e.claimVC = make([]int8, totalSlots)
	e.injVC = make([]int8, n)
	e.ejectMask = make([]uint64, n*e.wordsPerRouter)
	e.ejectPending = make([]uint64, (n+63)/64)
	e.lastEject = make([]int64, n)

	// Dense links.
	L := cfg.Topo.NumDirectedLinks()
	e.numLinks = L
	e.linkFrom = make([]int32, L)
	e.linkTo = make([]int32, L)
	e.linkDownBase = make([]int32, L)
	e.linkLat = make([]int64, L)
	e.linkIDAt = make([]int32, n*n)
	for i := range e.linkIDAt {
		e.linkIDAt[i] = -1
	}
	maxLat := int64(cfg.LinkLatency)
	for id := 0; id < L; id++ {
		l := cfg.Topo.LinkByID(id)
		e.linkFrom[id] = int32(l.From)
		e.linkTo[id] = int32(l.To)
		e.linkDownBase[id] = int32((l.To*e.maxPorts + portOf[l.To][l.From]) * e.numVCs)
		e.linkIDAt[l.From*n+l.To] = int32(id)
		lat := int64(cfg.LinkLatency)
		if cfg.ExtraLinkLatency != nil {
			lat += int64(cfg.ExtraLinkLatency[[2]int{l.From, l.To}])
		}
		e.linkLat[id] = lat
		if lat > maxLat {
			maxLat = lat
		}
	}
	e.candMask = make([]uint64, L*e.wordsPerRouter)
	e.candPending = make([]uint64, (L+63)/64)
	e.lqPending = make([]uint64, (L+63)/64)
	e.rrOut = make([]int32, L)
	e.lastOut = make([]int64, L)
	outBacking := make([]int32, L)
	e.outLinks = make([][]int32, n)
	pos := 0
	for r := 0; r < n; r++ {
		start := pos
		for _, v := range cfg.Topo.Out(r) {
			outBacking[pos] = int32(cfg.Topo.LinkID(r, v))
			pos++
		}
		e.outLinks[r] = outBacking[start:pos:pos]
	}

	e.lqCap = pow2(int(maxLat) + 1)
	e.lqMask = int32(e.lqCap - 1)
	e.lqData = make([]inflight, L*e.lqCap)
	e.lqHead = make([]int32, L)
	e.lqCount = make([]int32, L)

	e.injectQ = make([]pktRing, n)
	e.rrEject = make([]int32, n)
	e.activeNow = make([]bool, n)
	e.reset(cfg)
	return e
}

// compatible reports whether cfg can run on this engine's geometry
// without reallocating: the same topology object and the knobs that
// size or shape the flat arrays. Pointer equality on Topo is the right
// test for the batched-matrix use case (cells share one prepared
// Setup); a distinct-but-equal topology just falls back to a fresh
// engine.
func (e *engine) compatible(cfg Config) bool {
	old := e.cfg
	if cfg.Topo != old.Topo || cfg.NumVCs != old.NumVCs ||
		cfg.BufDepth != old.BufDepth || cfg.LinkLatency != old.LinkLatency {
		return false
	}
	if len(cfg.NodeRate) != len(old.NodeRate) {
		return false
	}
	for i := range cfg.NodeRate {
		if cfg.NodeRate[i] != old.NodeRate[i] {
			return false
		}
	}
	if len(cfg.ExtraLinkLatency) != len(old.ExtraLinkLatency) {
		return false
	}
	for k, v := range cfg.ExtraLinkLatency {
		if old.ExtraLinkLatency[k] != v {
			return false
		}
	}
	return true
}

// reset returns the engine to its post-setup state for a fresh run of
// cfg, reusing every geometry-sized allocation (and the packet pool).
// cfg must be compatible() with the engine's geometry. A reset engine
// is indistinguishable from a newly built one — the invariant batched
// matrix execution rests on, pinned by TestEngineResetMatchesFresh.
func (e *engine) reset(cfg Config) {
	e.cfg = cfg
	e.rng = rand.New(rand.NewSource(cfg.Seed))
	e.hinter, _ = cfg.Pattern.(traffic.InjectionHinter)
	e.eventDriven = e.uniformClock && !cfg.DisableFastForward

	clear(e.bufHead)
	clear(e.bufCount)
	clear(e.owner)
	clear(e.free)
	for s := range e.slotWhere {
		e.slotWhere[s] = whereNone
	}
	for r := 0; r < e.n; r++ {
		for p := 0; p < int(e.numPorts[r]); p++ {
			for v := 0; v < e.numVCs; v++ {
				e.free[(r*e.maxPorts+p)*e.numVCs+v] = int32(e.bufDepth)
			}
		}
	}
	clear(e.ejectMask)
	clear(e.candMask)
	clear(e.ejectPending)
	clear(e.candPending)
	clear(e.lqPending)
	clear(e.lqHead)
	clear(e.lqCount)
	clear(e.rrOut)
	clear(e.rrEject)
	clear(e.accRate)
	for i := range e.lastOut {
		e.lastOut[i] = -1
	}
	for i := range e.lastEject {
		e.lastEject[i] = -1
	}
	for r := range e.injectQ {
		q := &e.injectQ[r]
		clear(q.q)
		q.head, q.size = 0, 0
	}
	e.queuedPkts = 0

	if cfg.CollectEnergy {
		if e.actBufRead == nil {
			e.actBufRead = make([]uint64, e.n)
			e.actBufWrite = make([]uint64, e.n)
			e.actLinkFlits = make([]uint64, e.numLinks)
		} else {
			clear(e.actBufRead)
			clear(e.actBufWrite)
			clear(e.actLinkFlits)
		}
	} else {
		e.actBufRead, e.actBufWrite, e.actLinkFlits = nil, nil, nil
	}
	e.actInjected, e.actEjected = 0, 0

	e.cycle = 0
	e.routing = cfg.Routing
	e.vcAssign = cfg.VC
	e.escapeVCs = cfg.VC.NumVCs
	e.aliveRouter, e.aliveLinkID = nil, nil
	e.boundaries = nil
	e.nextBoundary = 0
	e.firstFault = -1
	if !cfg.FaultSchedule.Empty() {
		total := int64(cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles)
		e.boundaries = cfg.FaultSchedule.Boundaries(total)
		if len(e.boundaries) > 0 {
			// Boundaries are sorted and every recovery follows its own
			// onset, so the first boundary is the first fault onset.
			e.firstFault = e.boundaries[0]
			e.aliveRouter = make([]bool, e.n)
			e.aliveLinkID = make([]bool, e.numLinks)
			for i := range e.aliveRouter {
				e.aliveRouter[i] = true
			}
			for i := range e.aliveLinkID {
				e.aliveLinkID[i] = true
			}
		}
	}

	e.bufferedFlits, e.linkFlits = 0, 0
	e.delivered, e.measured = 0, 0
	e.measuredInFlight = 0
	e.latencySum = 0
	e.forwardedThisCycle = false
	e.droppedFlits, e.droppedPackets = 0, 0
	e.rerouteEvents = 0
	e.peakUnreachable = 0
	e.skippedInject = 0
	e.measuredOffered = 0
	e.preLatSum, e.postLatSum = 0, 0
	e.preMeasured, e.postMeasured = 0, 0
	e.ffSkipped = 0
}

// step advances the engine by one cycle body (the run loop owns the
// cycle counter, watchdog and drain logic).
func (e *engine) step(generating, measuring bool) {
	e.forwardedThisCycle = false
	e.deliverArrivals()
	e.ejectAndSwitch()
	if generating {
		e.generate(measuring)
	}
	e.inject()
}

func (e *engine) run() (*Result, error) {
	cfg := e.cfg
	total := int64(cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles)
	measStart := int64(cfg.WarmupCycles)
	measEnd := measStart + int64(cfg.MeasureCycles)
	idleCycles := 0
	idleLimit := 4 * (cfg.LinkLatency + 8) * e.n
	for e.cycle = 0; e.cycle < total; e.cycle++ {
		if e.nextBoundary < len(e.boundaries) && e.boundaries[e.nextBoundary] == e.cycle {
			e.applyFaultBoundary()
			e.nextBoundary++
		}
		if e.eventDriven && e.bufferedFlits == 0 && e.queuedPkts == 0 {
			if target := e.skipTarget(measEnd, total); target > e.cycle {
				// Nothing observable happens in [cycle, target): no flit
				// can move (buffers and injection queues are empty; link
				// pipelines next deliver at target or later), no injection
				// can occur (drain phase, or the pattern promised Never),
				// and no fault boundary lands inside the window. Jump the
				// cycle counter: leakage energy integrates over the final
				// e.cycle at report time, and round-robin state catches up
				// lazily from lastEject/lastOut.
				e.ffSkipped += target - e.cycle
				if e.networkEmpty() {
					idleCycles = 0
				} else {
					// Replicate the per-cycle watchdog across the window:
					// flits sit in link pipelines and nothing forwards, so
					// the count rises by one per skipped cycle.
					idleCycles += int(target - e.cycle)
					if idleCycles > idleLimit {
						return &Result{Stalled: true}, nil
					}
				}
				e.cycle = target - 1
				continue
			}
		}
		generating := e.cycle < measEnd
		measuring := e.cycle >= measStart && e.cycle < measEnd
		e.step(generating, measuring)
		// Watchdog: if nothing moved for a long stretch while flits are
		// buffered, the network is wedged.
		if e.forwardedThisCycle || e.networkEmpty() {
			idleCycles = 0
		} else {
			idleCycles++
			if idleCycles > idleLimit {
				return &Result{Stalled: true}, nil
			}
		}
		if e.cycle >= measEnd && e.pendingMeasured() == 0 {
			break
		}
	}
	res := &Result{
		OfferedRate: cfg.InjectionRate,
		Measured:    e.measured,
		Delivered:   e.delivered,
	}
	injectingNodes := e.injectingNodes()
	if injectingNodes == 0 {
		injectingNodes = e.n
	}
	cyclesNs := 1.0 / cfg.ClockGHz
	if e.measured > 0 {
		res.AvgLatencyCycles = float64(e.latencySum) / float64(e.measured)
		res.AvgLatencyNs = res.AvgLatencyCycles * cyclesNs
	}
	res.AcceptedPerCycle = float64(e.delivered) / float64(cfg.MeasureCycles) / float64(injectingNodes)
	res.AcceptedPerNs = res.AcceptedPerCycle * cfg.ClockGHz
	res.DeliveredFraction = 1
	if e.measuredOffered > 0 {
		res.DeliveredFraction = float64(e.measured) / float64(e.measuredOffered)
	}
	res.DroppedFlits = e.droppedFlits
	res.DroppedPackets = e.droppedPackets
	res.RerouteEvents = e.rerouteEvents
	res.UnreachablePairs = e.peakUnreachable
	res.SkippedInjections = e.skippedInject
	if e.preMeasured > 0 {
		res.PreFaultAvgLatencyNs = float64(e.preLatSum) / float64(e.preMeasured) * cyclesNs
	}
	if e.postMeasured > 0 {
		res.PostFaultAvgLatencyNs = float64(e.postLatSum) / float64(e.postMeasured) * cyclesNs
	}
	if cfg.CollectEnergy {
		energy, err := e.energyReport()
		if err != nil {
			return nil, err
		}
		res.Energy = energy
	}
	return res, nil
}

// energyReport converts the run's activity counters into the measured
// energy report.
func (e *engine) energyReport() (*EnergyReport, error) {
	m := power.Default22nm()
	if e.cfg.EnergyModel != nil {
		m = *e.cfg.EnergyModel
	}
	rep, err := m.ActivityReport(e.cfg.Topo, power.Activity{
		Cycles:      e.cycle,
		ClockGHz:    e.cfg.ClockGHz,
		RouterFlits: e.actBufRead,
		LinkFlits:   e.actLinkFlits,
	})
	if err != nil {
		return nil, err
	}
	return &EnergyReport{
		ActivityReport: *rep,
		BufReads:       e.actBufRead,
		BufWrites:      e.actBufWrite,
		LinkFlits:      e.actLinkFlits,
		InjectedFlits:  e.actInjected,
		EjectedFlits:   e.actEjected,
	}, nil
}

// injectingNodes counts nodes that originate traffic under the pattern,
// via the static Originator contract when the pattern provides it (all
// internal patterns do; the probing fallback would both miscount and
// perturb stateful patterns like bursty modulation).
func (e *engine) injectingNodes() int {
	count := 0
	for r := 0; r < e.n; r++ {
		if traffic.PatternOriginates(e.cfg.Pattern, r) {
			count++
		}
	}
	return count
}

// networkEmpty is O(1): buffered and in-flight flit counters are
// maintained at every push/pop.
func (e *engine) networkEmpty() bool {
	return e.bufferedFlits == 0 && e.linkFlits == 0
}

// skipTarget returns the first cycle > e.cycle at which anything
// observable can happen again, or e.cycle when the current cycle must
// be simulated. The caller guarantees empty buffers and injection
// queues; the remaining wake-ups are link-pipeline arrivals, injection
// opportunities, the next fault boundary, and the measure-window end
// (where the drain-exit check must run cycle by cycle).
func (e *engine) skipTarget(measEnd, total int64) int64 {
	if e.cycle >= measEnd && e.pendingMeasured() == 0 {
		// The drain-exit check fires after this cycle executes; skipping
		// past it would end the run at a later cycle than the
		// cycle-by-cycle path (observable through leakage-energy
		// integration). During any legal skip window measuredInFlight is
		// constant — measured flits still in link pipelines clamp the
		// window via nextArrival — so the exit condition can only become
		// true at an executed cycle.
		return e.cycle
	}
	target := total
	if e.cycle < measEnd {
		// Generation is live. The Bernoulli gate draws rng once per
		// router per cycle whatever the pattern would answer, so
		// skipping is only legal when the pattern promises those draws
		// are unobservable: no future Inject returns ok and no future
		// Inject/OnDeliver call consumes rng (the Never contract).
		if e.hinter == nil || e.hinter.NextInjectionAfter(e.cycle) != traffic.Never {
			return e.cycle
		}
		if measEnd < target {
			target = measEnd
		}
	}
	if e.linkFlits > 0 {
		if a := e.nextArrival(); a < target {
			target = a
		}
	}
	if e.nextBoundary < len(e.boundaries) && e.boundaries[e.nextBoundary] < target {
		target = e.boundaries[e.nextBoundary]
	}
	return target
}

func (e *engine) pendingMeasured() int {
	return e.measuredInFlight
}

// generate creates new packets per the Bernoulli injection process.
// Flows without a path in the current epoch (dead endpoint or
// disconnected pair) are offered-but-skipped: the rng draw and pattern
// state advance identically either way, so an epoch's injection stream
// is independent of which flows are blocked.
func (e *engine) generate(measuring bool) {
	for r := 0; r < e.n; r++ {
		if e.rng.Float64() >= e.cfg.InjectionRate {
			continue
		}
		dst, flits, ok := e.cfg.Pattern.Inject(r, e.rng)
		if !ok {
			continue
		}
		if measuring {
			e.measuredOffered++
		}
		if e.flowBlocked(r, dst) {
			e.skippedInject++
			continue
		}
		e.enqueuePacket(r, dst, flits, measuring)
	}
}

// flowBlocked reports whether the current epoch has no path for the
// flow. Self-flows keep their historical behavior (immediate local
// ejection via a nil path) rather than being blocked.
func (e *engine) flowBlocked(src, dst int) bool {
	return src != dst && e.routing.Table[src][dst] == nil
}

// newPacket reuses a pooled packet or allocates one (warm-up only).
func (e *engine) newPacket() *packet {
	if n := len(e.pktFree); n > 0 {
		p := e.pktFree[n-1]
		e.pktFree = e.pktFree[:n-1]
		return p
	}
	return &packet{}
}

// recyclePacket returns a fully delivered packet to the pool. Safe at
// tail ejection: all flits have been ejected, downstream VC ownership
// was cleared when the tail was forwarded, and the injection queue entry
// was popped when the tail entered the network.
func (e *engine) recyclePacket(p *packet) {
	*p = packet{}
	e.pktFree = append(e.pktFree, p)
}

func (e *engine) enqueuePacket(src, dst, flits int, measuring bool) {
	p := e.newPacket()
	p.src, p.dst, p.flits = src, dst, flits
	p.layer = e.vcAssign.Layer(src, dst)
	p.path = e.routing.PathFor(src, dst)
	p.injectedAt = e.cycle
	p.measured = measuring
	if measuring {
		e.measuredInFlight++
	}
	e.injectQ[src].push(p)
	e.queuedPkts++
}
