package sim

import (
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/traffic"
)

// TestFlitConservation checks that after a run with full drain, every
// measured packet was delivered exactly once: measured-in-flight returns
// to zero and latency accounting covers all measured packets.
func TestFlitConservation(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.08,
		WarmupCycles: 800, MeasureCycles: 2500, DrainCycles: 30000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("stalled")
	}
	if e.measuredInFlight != 0 {
		t.Errorf("%d measured packets never drained", e.measuredInFlight)
	}
	if res.Measured == 0 {
		t.Fatal("nothing measured")
	}
}

// TestCreditConservation verifies that every VC buffer's free-slot
// counter matches its actual occupancy at end of simulation.
func TestCreditConservation(t *testing.T) {
	s, err := Prepare(expert.FoldedTorus(layout.Grid4x5), UseMCLB, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.15,
		WarmupCycles: 500, MeasureCycles: 1500, DrainCycles: 2000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	if _, err := e.run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < e.n; r++ {
		for p := 0; p < e.numPorts[r]; p++ {
			for v := 0; v < e.numVCs; v++ {
				inFlightToBuf := 0
				for key, qp := range e.links {
					if key[1] != r {
						continue
					}
					for _, inf := range *qp {
						if inf.port == p && inf.vcIdx == v {
							inFlightToBuf++
						}
					}
				}
				occupied := e.bufs[r][p][v].occupancy() + inFlightToBuf
				if e.free[r][p][v]+occupied != e.bufDepth {
					t.Fatalf("router %d port %d vc %d: free %d + occupied %d != depth %d",
						r, p, v, e.free[r][p][v], occupied, e.bufDepth)
				}
			}
		}
	}
}

// TestZeroRateRunsClean ensures an idle network terminates immediately
// with no deliveries and no stall report.
func TestZeroRateRunsClean(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0,
		WarmupCycles: 200, MeasureCycles: 400, DrainCycles: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Delivered != 0 || res.Measured != 0 {
		t.Errorf("idle network misbehaved: %+v", res)
	}
}

// TestTwoNodeNetwork exercises the smallest possible topology.
func TestTwoNodeNetwork(t *testing.T) {
	g := layout.NewGrid(1, 2)
	tp := expert.Mesh(g)
	s, err := Prepare(tp, UseMCLB, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 2}, InjectionRate: 0.1,
		WarmupCycles: 300, MeasureCycles: 1000, DrainCycles: 2000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Measured == 0 {
		t.Fatalf("two-node network failed: %+v", res)
	}
	// One hop, link latency 2, plus serialization: latency must be small.
	if res.AvgLatencyCycles > 20 {
		t.Errorf("two-node latency %v cycles too high", res.AvgLatencyCycles)
	}
}

// TestWormholeContiguity drives heavy multi-flit traffic and relies on
// the engine's internal consistency: if flits of different packets
// interleaved within a VC, tail accounting would corrupt measured
// counts and the drain would hang (caught by measuredInFlight != 0).
func TestWormholeContiguity(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.30,
		WarmupCycles: 500, MeasureCycles: 2000, DrainCycles: 60000, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("stalled under heavy load")
	}
	if e.measuredInFlight != 0 {
		t.Errorf("measured packets lost: %d", e.measuredInFlight)
	}
}
