package sim

import (
	"math"
	"math/rand"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/traffic"
)

// TestFlitConservation checks that after a run with full drain, every
// measured packet was delivered exactly once: measured-in-flight returns
// to zero and latency accounting covers all measured packets.
func TestFlitConservation(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.08,
		WarmupCycles: 800, MeasureCycles: 2500, DrainCycles: 30000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("stalled")
	}
	if e.measuredInFlight != 0 {
		t.Errorf("%d measured packets never drained", e.measuredInFlight)
	}
	if res.Measured == 0 {
		t.Fatal("nothing measured")
	}
}

// TestCreditConservation verifies that every VC buffer's free-slot
// counter matches its actual occupancy at end of simulation.
func TestCreditConservation(t *testing.T) {
	s, err := Prepare(expert.FoldedTorus(layout.Grid4x5), UseMCLB, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.15,
		WarmupCycles: 500, MeasureCycles: 1500, DrainCycles: 2000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	if _, err := e.run(); err != nil {
		t.Fatal(err)
	}
	// Tally in-flight flits by their reserved destination slot.
	inflightTo := make([]int, len(e.free))
	for lid := 0; lid < e.numLinks; lid++ {
		for i := int32(0); i < e.lqCount[lid]; i++ {
			inf := e.lqData[lid*e.lqCap+int((e.lqHead[lid]+i)&e.lqMask)]
			inflightTo[inf.slot]++
		}
	}
	for r := 0; r < e.n; r++ {
		for p := 0; p < int(e.numPorts[r]); p++ {
			for v := 0; v < e.numVCs; v++ {
				s := (r*e.maxPorts+p)*e.numVCs + v
				occupied := int(e.bufCount[s]) + inflightTo[s]
				if int(e.free[s])+occupied != e.bufDepth {
					t.Fatalf("router %d port %d vc %d: free %d + occupied %d != depth %d",
						r, p, v, e.free[s], occupied, e.bufDepth)
				}
			}
		}
	}
}

// TestOccupancyMaskConsistency verifies that after a run the head-target
// bookkeeping (slotWhere plus the eject/candidate bitmasks) exactly
// mirrors buffer contents: every occupied slot is filed under the mask
// matching its head flit's next hop, and every set mask bit corresponds
// to such a slot.
func TestOccupancyMaskConsistency(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.25,
		WarmupCycles: 400, MeasureCycles: 1200, DrainCycles: 200, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	if _, err := e.run(); err != nil {
		t.Fatal(err)
	}
	bufferedSeen := 0
	for r := 0; r < e.n; r++ {
		for lb := 0; lb < e.slotsPerRouter; lb++ {
			slot := int32(r*e.slotsPerRouter + lb)
			w, bit := lb>>6, uint64(1)<<uint(lb&63)
			inEject := e.ejectMask[r*e.wordsPerRouter+w]&bit != 0
			candOf := int32(-1)
			for lid := 0; lid < e.numLinks; lid++ {
				if e.linkFrom[lid] == int32(r) && e.candMask[lid*e.wordsPerRouter+w]&bit != 0 {
					if candOf >= 0 {
						t.Fatalf("slot %d in two candidate masks", slot)
					}
					candOf = int32(lid)
				}
			}
			bufferedSeen += int(e.bufCount[slot])
			switch {
			case e.bufCount[slot] == 0:
				if inEject || candOf >= 0 || e.slotWhere[slot] != whereNone {
					t.Fatalf("empty slot %d still filed (eject=%v cand=%d where=%d)",
						slot, inEject, candOf, e.slotWhere[slot])
				}
			default:
				h := e.headFlit(slot)
				if int(h.pathIdx) >= len(h.pkt.path)-1 {
					if !inEject || candOf >= 0 || e.slotWhere[slot] != whereEject {
						t.Fatalf("local head in slot %d misfiled (eject=%v cand=%d)", slot, inEject, candOf)
					}
				} else {
					want := int32(e.linkIDAt[r*e.n+h.pkt.path[h.pathIdx+1]])
					if inEject || candOf != want || e.slotWhere[slot] != want {
						t.Fatalf("routed head in slot %d misfiled (want link %d, cand %d, where %d)",
							slot, want, candOf, e.slotWhere[slot])
					}
				}
			}
		}
	}
	if bufferedSeen != e.bufferedFlits {
		t.Fatalf("bufferedFlits counter %d != actual %d", e.bufferedFlits, bufferedSeen)
	}
}

// recordingPattern wraps a pattern and logs every accepted injection so
// tests can recompute expected activity from the routing tables.
type recordingPattern struct {
	traffic.Pattern
	recs [][3]int // src, dst, flits
}

func (r *recordingPattern) Inject(src int, rng *rand.Rand) (int, int, bool) {
	dst, flits, ok := r.Pattern.Inject(src, rng)
	if ok {
		r.recs = append(r.recs, [3]int{src, dst, flits})
	}
	return dst, flits, ok
}

// Originates must answer statically: the probing fallback would log a
// spurious injection through the recorder.
func (r *recordingPattern) Originates(src int) bool {
	return traffic.PatternOriginates(r.Pattern, src)
}

// TestEnergyConservation pins the activity-counter semantics after a
// fully drained run:
//
//  1. flit conservation per component: buffer writes = injections +
//     link arrivals, buffer reads = link departures + ejections, and
//     injected == ejected once the network is empty;
//  2. measured traversal/hop counters equal delivered-flit x hop-count
//     recomputed from the routing tables (every recorded packet of f
//     flits over an h-hop path contributes f*h link crossings and
//     f*(h+1) buffer reads);
//  3. energy conservation in the converted report: the per-router plus
//     per-link dynamic breakdowns sum to the dynamic total, and dynamic
//     plus leakage equals the total.
func TestEnergyConservation(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingPattern{Pattern: traffic.Uniform{N: 20}}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: rec, InjectionRate: 0.10, CollectEnergy: true,
		WarmupCycles: 600, MeasureCycles: 2500, DrainCycles: 30000, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("stalled")
	}
	if !e.networkEmpty() {
		t.Fatal("network not drained; conservation invariants need a full drain")
	}
	for r := 0; r < e.n; r++ {
		if !e.injectQ[r].empty() {
			t.Fatalf("router %d still has queued packets", r)
		}
	}
	rep := res.Energy
	if rep == nil {
		t.Fatal("CollectEnergy run returned no energy report")
	}

	// (1) Component-level flit conservation.
	var writes, reads, cross uint64
	for _, v := range rep.BufWrites {
		writes += v
	}
	for _, v := range rep.BufReads {
		reads += v
	}
	for _, v := range rep.LinkFlits {
		cross += v
	}
	if writes != rep.InjectedFlits+cross {
		t.Errorf("buffer writes %d != injected %d + link crossings %d", writes, rep.InjectedFlits, cross)
	}
	if reads != rep.EjectedFlits+cross {
		t.Errorf("buffer reads %d != ejected %d + link crossings %d", reads, rep.EjectedFlits, cross)
	}
	if rep.InjectedFlits != rep.EjectedFlits {
		t.Errorf("drained network: injected %d != ejected %d flits", rep.InjectedFlits, rep.EjectedFlits)
	}

	// (2) Counters vs the routing tables: every recorded injection of f
	// flits rides its table path end to end.
	var wantFlits, wantFlitHops uint64
	for _, r := range rec.recs {
		hops := s.Routing.PathFor(r[0], r[1]).Hops()
		wantFlits += uint64(r[2])
		wantFlitHops += uint64(r[2] * hops)
	}
	if wantFlits == 0 {
		t.Fatal("pattern recorded no injections")
	}
	if rep.InjectedFlits != wantFlits {
		t.Errorf("injected flits %d != recorded %d", rep.InjectedFlits, wantFlits)
	}
	if cross != wantFlitHops {
		t.Errorf("link crossings %d != recorded flit-hops %d from routing tables", cross, wantFlitHops)
	}
	if reads != wantFlitHops+wantFlits {
		t.Errorf("router traversals %d != flit-hops %d + delivered flits %d", reads, wantFlitHops, wantFlits)
	}

	// (3) Energy conservation in the converted report.
	var routerPJ, linkPJ float64
	for _, v := range rep.PerRouterPJ {
		routerPJ += v
	}
	for _, v := range rep.PerLinkPJ {
		linkPJ += v
	}
	closeEnough := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}
	if !closeEnough(routerPJ, rep.RouterDynPJ) || !closeEnough(linkPJ, rep.WireDynPJ) {
		t.Errorf("component sums (%v, %v) != report components (%v, %v)",
			routerPJ, linkPJ, rep.RouterDynPJ, rep.WireDynPJ)
	}
	if !closeEnough(routerPJ+linkPJ, rep.DynamicPJ) {
		t.Errorf("per-router %v + per-link %v != dynamic total %v", routerPJ, linkPJ, rep.DynamicPJ)
	}
	if !closeEnough(rep.DynamicPJ+rep.LeakagePJ, rep.TotalPJ) {
		t.Errorf("dynamic %v + leakage %v != total %v", rep.DynamicPJ, rep.LeakagePJ, rep.TotalPJ)
	}
	if rep.DynamicPJ <= 0 || rep.LeakagePJ <= 0 || rep.DurationNs <= 0 {
		t.Errorf("degenerate report: %+v", rep.ActivityReport)
	}
}

// TestEnergyDisabledCollectsNothing guards the zero-overhead contract:
// without CollectEnergy the engine allocates no counters and the result
// carries no report.
func TestEnergyDisabledCollectsNothing(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.05,
		WarmupCycles: 200, MeasureCycles: 500, DrainCycles: 2000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != nil {
		t.Error("energy report present without CollectEnergy")
	}
}

// TestZeroRateRunsClean ensures an idle network terminates immediately
// with no deliveries and no stall report.
func TestZeroRateRunsClean(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0,
		WarmupCycles: 200, MeasureCycles: 400, DrainCycles: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Delivered != 0 || res.Measured != 0 {
		t.Errorf("idle network misbehaved: %+v", res)
	}
}

// TestTwoNodeNetwork exercises the smallest possible topology.
func TestTwoNodeNetwork(t *testing.T) {
	g := layout.NewGrid(1, 2)
	tp := expert.Mesh(g)
	s, err := Prepare(tp, UseMCLB, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 2}, InjectionRate: 0.1,
		WarmupCycles: 300, MeasureCycles: 1000, DrainCycles: 2000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Measured == 0 {
		t.Fatalf("two-node network failed: %+v", res)
	}
	// One hop, link latency 2, plus serialization: latency must be small.
	if res.AvgLatencyCycles > 20 {
		t.Errorf("two-node latency %v cycles too high", res.AvgLatencyCycles)
	}
}

// TestWormholeContiguity drives heavy multi-flit traffic and relies on
// the engine's internal consistency: if flits of different packets
// interleaved within a VC, tail accounting would corrupt measured
// counts and the drain would hang (caught by measuredInFlight != 0).
func TestWormholeContiguity(t *testing.T) {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: 0.30,
		WarmupCycles: 500, MeasureCycles: 2000, DrainCycles: 60000, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("stalled under heavy load")
	}
	if e.measuredInFlight != 0 {
		t.Errorf("measured packets lost: %d", e.measuredInFlight)
	}
}
