package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"netsmith/internal/power"
	"netsmith/internal/store"
)

// Content addressing for matrix cells. A cell's result is fully
// determined by (prepared network, workload, offered rate, simulator
// knobs, effective seed) — the determinism contract RunMatrix pins by
// test — so that tuple, canonicalized, is the cell's cache key. The
// store schema version rides along inside store.Key, invalidating
// everything on encoding changes.

// Shard selects a deterministic subset of matrix cells: cell i belongs
// to shard Index iff i % Count == Index, where i is the cell's fixed
// (topology-major, then pattern, then rate) matrix position. The
// partition depends only on the matrix shape — never on GOMAXPROCS or
// worker scheduling — so n shard runs over a shared store compose into
// the same matrix an unsharded run produces, byte for byte. The zero
// value means unsharded.
type Shard struct {
	Index int
	Count int
}

func (s Shard) enabled() bool { return s.Count > 1 }

// Owns reports whether the shard is responsible for computing cell i.
func (s Shard) Owns(i int) bool { return !s.enabled() || i%s.Count == s.Index }

// String renders the CLI form, e.g. "0/2"; "" when unsharded.
func (s Shard) String() string {
	if !s.enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

func (s Shard) validate() error {
	if s.Count < 0 || s.Index < 0 {
		return fmt.Errorf("sim: invalid shard %d/%d", s.Index, s.Count)
	}
	if s.enabled() && s.Index >= s.Count {
		return fmt.Errorf("sim: shard index %d out of range 0..%d", s.Index, s.Count-1)
	}
	return nil
}

// ParseShard parses the CLI "i/n" form (e.g. "0/2"). Empty means
// unsharded.
func ParseShard(arg string) (Shard, error) {
	if arg == "" {
		return Shard{}, nil
	}
	is, ns, ok := strings.Cut(arg, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sim: bad shard %q (want i/n, e.g. 0/2)", arg)
	}
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return Shard{}, fmt.Errorf("sim: bad shard %q (want i/n with 0 <= i < n)", arg)
	}
	return Shard{Index: i, Count: n}, nil
}

// Fingerprint returns a stable content hash of the prepared network:
// the topology (canonical JSON), the exact routing table and the VC
// layer assignment. Two Setups with equal fingerprints simulate
// identically, so the fingerprint — not the topology name — anchors
// cell cache keys (the same grid prepared with a different routing seed
// must not collide).
func (s *Setup) Fingerprint() (string, error) {
	h := sha256.New()
	tj, err := json.Marshal(s.Topo)
	if err != nil {
		return "", fmt.Errorf("sim: fingerprint topology: %w", err)
	}
	h.Write(tj)
	fmt.Fprintf(h, "|routing:%s:%d|", s.Routing.Name, s.Routing.N)
	for src, row := range s.Routing.Table {
		for dst, path := range row {
			if path == nil {
				continue
			}
			fmt.Fprintf(h, "%d>%d:", src, dst)
			for _, r := range path {
				fmt.Fprintf(h, "%d,", r)
			}
		}
	}
	fmt.Fprintf(h, "|vc:%d|", s.VC.NumVCs)
	for _, row := range s.VC.LayerOf {
		for _, l := range row {
			fmt.Fprintf(h, "%d,", l)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// linkLatKV is one ExtraLinkLatency entry in canonical (sorted) order.
type linkLatKV struct {
	From  int `json:"from"`
	To    int `json:"to"`
	Extra int `json:"extra"`
}

// cellPayload is the canonical request description hashed into a matrix
// cell's cache key. Every field that influences the cell's Result is
// present; the simulator knobs are recorded post-defaulting so a zero
// Config and an explicit Config with the default values share entries.
type cellPayload struct {
	Setup   string `json:"setup"`
	Pattern string `json:"pattern"`
	// Fault is the canonical fault-schedule key; empty (and omitted, so
	// fault-free payloads keep their original shape) when the cell runs
	// without faults.
	Fault string  `json:"fault,omitempty"`
	Rate  float64 `json:"rate"`
	Seed  int64   `json:"seed"` // effective per-cell seed

	NumVCs          int          `json:"num_vcs"`
	BufDepth        int          `json:"buf_depth"`
	LinkLatency     int          `json:"link_latency"`
	ClockGHz        float64      `json:"clock_ghz"`
	InjectBandwidth int          `json:"inject_bw"`
	EjectBandwidth  int          `json:"eject_bw"`
	WarmupCycles    int          `json:"warmup"`
	MeasureCycles   int          `json:"measure"`
	DrainCycles     int          `json:"drain"`
	CollectEnergy   bool         `json:"collect_energy"`
	EnergyModel     *power.Model `json:"energy_model,omitempty"`
	NodeRate        []float64    `json:"node_rate,omitempty"`
	ExtraLinkLat    []linkLatKV  `json:"extra_link_latency,omitempty"`
}

// cellKey builds the store key for one matrix cell. cfg must be the
// cell's fully defaulted Config (the one Run will execute).
func cellKey(setupFP, patternKey, faultKey string, cfg Config) store.Key {
	p := cellPayload{
		Setup:   setupFP,
		Pattern: patternKey,
		Fault:   faultKey,
		Rate:    cfg.InjectionRate,
		Seed:    cfg.Seed,

		NumVCs:          cfg.NumVCs,
		BufDepth:        cfg.BufDepth,
		LinkLatency:     cfg.LinkLatency,
		ClockGHz:        cfg.ClockGHz,
		InjectBandwidth: cfg.InjectBandwidth,
		EjectBandwidth:  cfg.EjectBandwidth,
		WarmupCycles:    cfg.WarmupCycles,
		MeasureCycles:   cfg.MeasureCycles,
		DrainCycles:     cfg.DrainCycles,
		CollectEnergy:   cfg.CollectEnergy,
		EnergyModel:     cfg.EnergyModel,
		NodeRate:        cfg.NodeRate,
	}
	for k, v := range cfg.ExtraLinkLatency {
		p.ExtraLinkLat = append(p.ExtraLinkLat, linkLatKV{From: k[0], To: k[1], Extra: v})
	}
	sort.Slice(p.ExtraLinkLat, func(i, j int) bool {
		a, b := p.ExtraLinkLat[i], p.ExtraLinkLat[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return store.NewKey("matrix-cell", p)
}

// IncompleteError reports a sharded RunMatrix that computed and
// persisted every cell it owns but could not assemble the full matrix:
// cells owned by other shards are not yet in the store. Run the
// remaining shards against the same store (or re-run unsharded, which
// resumes from the cached cells) to obtain the merged result.
type IncompleteError struct {
	Shard     Shard
	Cells     int // total matrix cells
	Computed  int // cells this run simulated
	CacheHits int // cells this run served from the store
	Missing   int // cells still absent from the store
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("sim: shard %s complete (%d computed, %d cached of %d cells); %d cells pending from other shards",
		e.Shard, e.Computed, e.CacheHits, e.Cells, e.Missing)
}

// MatrixStats summarizes where a matrix run's cells came from. It is
// excluded from the matrix JSON emission (MatrixResult.Stats is tagged
// json:"-") so cached and fresh runs stay byte-identical; the tags
// here serve consumers that report it separately (the serve API's job
// payload).
type MatrixStats struct {
	Cells     int `json:"cells"`      // total cells in the matrix
	Computed  int `json:"computed"`   // cells simulated by this run
	CacheHits int `json:"cache_hits"` // cells served from the store
	// StoreErrors counts cells whose computed result could not be
	// persisted (full or read-only store). The results themselves are
	// still returned — persistence is best-effort — but those cells
	// will recompute on resume and stay invisible to other shards.
	StoreErrors int `json:"store_errors"`
}
