package sim

// deliverArrivals moves in-flight flits that reach their arrival cycle
// into downstream VC buffers (the slot was reserved at send time).
func (e *engine) deliverArrivals() {
	for key, qp := range e.links {
		q := *qp
		idx := 0
		for idx < len(q) && q[idx].arriveAt <= e.cycle {
			inf := q[idx]
			e.bufs[key[1]][inf.port][inf.vcIdx].push(inf.f)
			idx++
		}
		if idx > 0 {
			*qp = q[idx:]
			if len(*qp) == 0 {
				// Reset backing array occasionally to bound growth.
				*qp = (*qp)[:0]
			}
		}
	}
}

// active reports whether router r has a service slot this cycle
// (multi-clock domains: slower routers skip base-clock ticks).
func (e *engine) active(r int) bool {
	if e.rate[r] >= 1 {
		return true
	}
	e.accRate[r] += e.rate[r]
	if e.accRate[r] >= 1 {
		e.accRate[r]--
		return true
	}
	return false
}

// ejectAndSwitch performs, for each active router, local ejection and
// output-link switch allocation.
func (e *engine) ejectAndSwitch(measuring bool) {
	n := e.n
	activeNow := make([]bool, n)
	for r := 0; r < n; r++ {
		activeNow[r] = e.active(r)
	}
	// Ejection first: frees buffer slots for this cycle's switching.
	for r := 0; r < n; r++ {
		if !activeNow[r] {
			continue
		}
		e.eject(r, measuring)
	}
	// Switch allocation per output link, round-robin across (port, vc).
	for r := 0; r < n; r++ {
		if !activeNow[r] {
			continue
		}
		for _, v := range e.cfg.Topo.Out(r) {
			e.allocateOutput(r, v)
		}
	}
}

// eject drains up to EjectBandwidth flits destined locally at router r.
func (e *engine) eject(r int, measuring bool) {
	budget := e.cfg.EjectBandwidth
	slots := e.numPorts[r] * e.numVCs
	start := e.rrEject[r]
	for s := 0; s < slots && budget > 0; s++ {
		idx := (start + s) % slots
		port, vcIdx := idx/e.numVCs, idx%e.numVCs
		buf := &e.bufs[r][port][vcIdx]
		for budget > 0 && !buf.empty() {
			h := buf.head()
			if h.pkt.dst != r || h.pathIdx != len(h.pkt.path)-1 {
				break
			}
			f := buf.pop()
			e.free[r][port][vcIdx]++
			e.forwardedThisCycle = true
			budget--
			if f.isTail {
				e.completePacket(f.pkt)
			}
		}
	}
	e.rrEject[r] = (start + 1) % slots
}

// completePacket records stats and triggers pattern replies.
func (e *engine) completePacket(p *packet) {
	if e.cycle >= int64(e.cfg.WarmupCycles) && e.cycle < int64(e.cfg.WarmupCycles+e.cfg.MeasureCycles) {
		e.delivered++
	}
	if p.measured {
		e.latencySum += e.cycle - p.injectedAt
		e.measured++
		e.measuredInFlight--
	}
	if replyDst, replyFlits, ok := e.cfg.Pattern.OnDeliver(p.src, p.dst, e.rng); ok {
		generating := e.cycle < int64(e.cfg.WarmupCycles+e.cfg.MeasureCycles)
		if generating {
			e.enqueuePacket(p.dst, replyDst, replyFlits, false)
		}
	}
}

// allocateOutput picks one (port, vc) whose head flit targets link r->v
// and forwards it, honoring credits and per-packet VC ownership.
func (e *engine) allocateOutput(r, v int) {
	key := [2]int{r, v}
	downPort := e.portOf[v][r]
	slots := e.numPorts[r] * e.numVCs
	start := e.rrOut[key]
	for s := 0; s < slots; s++ {
		idx := (start + s) % slots
		port, vcIdx := idx/e.numVCs, idx%e.numVCs
		buf := &e.bufs[r][port][vcIdx]
		if buf.empty() {
			continue
		}
		h := buf.head()
		// Routed to v?
		if h.pathIdx+1 >= len(h.pkt.path) || h.pkt.path[h.pathIdx+1] != v {
			continue
		}
		downVC := e.pickDownVC(v, downPort, h)
		if downVC < 0 {
			continue
		}
		// Forward one flit.
		f := buf.pop()
		e.free[r][port][vcIdx]++
		e.free[v][downPort][downVC]--
		if f.isHead {
			e.owner[v][downPort][downVC] = f.pkt
		}
		if f.isTail {
			e.owner[v][downPort][downVC] = nil
		}
		lat := int64(e.cfg.LinkLatency)
		if e.cfg.ExtraLinkLatency != nil {
			lat += int64(e.cfg.ExtraLinkLatency[key])
		}
		f.pathIdx++
		qp := e.links[key]
		*qp = append(*qp, inflight{f: f, arriveAt: e.cycle + lat, port: downPort, vcIdx: downVC})
		e.forwardedThisCycle = true
		e.rrOut[key] = (idx + 1) % slots
		return
	}
	e.rrOut[key] = (start + 1) % slots
}

// pickDownVC selects the downstream VC for a flit, Duato-style: the
// packet's assigned layer is its escape VC (per-layer CDGs are acyclic),
// while physical VCs beyond the escape layers (indices >= VC.NumVCs) are
// adaptive and may be claimed by any packet. Heads prefer a free adaptive
// VC and fall back to their escape layer; body flits must follow the VC
// their head claimed in this buffer. Returns -1 when blocked.
func (e *engine) pickDownVC(router, port int, h *flit) int {
	if !h.isHead {
		for vcIdx := 0; vcIdx < e.numVCs; vcIdx++ {
			if e.owner[router][port][vcIdx] == h.pkt {
				if e.free[router][port][vcIdx] > 0 {
					return vcIdx
				}
				return -1
			}
		}
		return -1 // should not happen: head always precedes body
	}
	escape := e.cfg.VC.NumVCs
	for vcIdx := escape; vcIdx < e.numVCs; vcIdx++ {
		if e.owner[router][port][vcIdx] == nil && e.free[router][port][vcIdx] > 0 {
			return vcIdx
		}
	}
	lay := h.pkt.layer
	if e.owner[router][port][lay] == nil && e.free[router][port][lay] > 0 {
		return lay
	}
	return -1
}

// inject pushes queued packet flits into each router's injection port.
func (e *engine) inject() {
	for r := 0; r < e.n; r++ {
		budget := e.cfg.InjectBandwidth
		for budget > 0 && len(e.injectQ[r]) > 0 {
			p := e.injectQ[r][0]
			f := flit{
				pkt:     p,
				pathIdx: 0,
				isHead:  p.flitsQueued == 0,
				isTail:  p.flitsQueued == p.flits-1,
			}
			// The injection buffer holds whole packets contiguously,
			// using the same adaptive/escape VC choice as link traversal.
			vcIdx := e.pickDownVC(r, 0, &f)
			if vcIdx < 0 {
				break
			}
			if f.isHead {
				e.owner[r][0][vcIdx] = p
			}
			e.bufs[r][0][vcIdx].push(f)
			e.free[r][0][vcIdx]--
			p.flitsQueued++
			budget--
			e.forwardedThisCycle = true
			if f.isTail {
				e.owner[r][0][vcIdx] = nil
				e.injectQ[r] = e.injectQ[r][1:]
			}
		}
	}
}
