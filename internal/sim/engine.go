package sim

import "math/bits"

// --- VC-buffer ring primitives --------------------------------------

// headFlit returns the head flit of slot s without popping it.
func (e *engine) headFlit(s int32) *flit {
	return &e.bufData[int(s)*e.bufCap+int(e.bufHead[s])]
}

// pushFlit appends a flit to slot s of router r and retargets the
// occupancy masks when the buffer was empty (new head).
func (e *engine) pushFlit(s int32, r int, f flit) {
	e.bufData[int(s)*e.bufCap+int((e.bufHead[s]+e.bufCount[s])&e.bufMask)] = f
	e.bufCount[s]++
	e.bufferedFlits++
	if e.actBufWrite != nil {
		e.actBufWrite[r]++
	}
	if e.bufCount[s] == 1 {
		e.retarget(s, r)
	}
}

// popFlit removes and returns the head flit of slot s of router r,
// retargeting the masks for the new head (or emptiness).
func (e *engine) popFlit(s int32, r int) flit {
	f := e.bufData[int(s)*e.bufCap+int(e.bufHead[s])]
	e.bufHead[s] = (e.bufHead[s] + 1) & e.bufMask
	e.bufCount[s]--
	e.bufferedFlits--
	if e.actBufRead != nil {
		e.actBufRead[r]++
	}
	if !f.isTail && e.bufCount[s] != 0 {
		// The new head is a later flit of the same worm (packets are
		// contiguous per VC): same packet, same pathIdx, same target —
		// the masks already file this slot correctly.
		return f
	}
	e.retarget(s, r)
	return f
}

// retarget re-files slot s of router r under the mask matching its
// current head flit: the router's eject mask when the head is at its
// final hop, the candidate mask of the link it wants next otherwise.
// Each occupied slot lives in exactly one mask, so switch allocation and
// ejection never scan empty or mis-targeted VCs. The per-router /
// per-link summary bits (ejectPending, candPending) are kept eagerly in
// sync so the event-driven cycle scan never visits an idle element.
func (e *engine) retarget(s int32, r int) {
	// Compute the new target first: a worm transiting a slot leaves the
	// target unchanged for every body flit (same packet, same path), and
	// then no mask or summary word needs touching at all — the dominant
	// case on the per-flit hot path.
	nw := whereNone
	if e.bufCount[s] != 0 {
		h := e.headFlit(s)
		if int(h.pathIdx) >= len(h.pkt.path)-1 {
			nw = whereEject
		} else if lid := e.linkIDAt[r*e.n+h.pkt.path[h.pathIdx+1]]; lid >= 0 {
			nw = lid
		}
		// Malformed route (lid < 0) leaves the flit unscheduled under
		// whereNone: the watchdog reports the wedge, matching the old
		// full-scan behavior.
	}
	old := e.slotWhere[s]
	if nw == old {
		return
	}
	e.slotWhere[s] = nw
	lb := int(s) - r*e.slotsPerRouter // local slot index: port*numVCs+vc
	w := lb >> 6
	bit := uint64(1) << uint(lb&63)
	switch old {
	case whereNone:
	case whereEject:
		base := r * e.wordsPerRouter
		e.ejectMask[base+w] &^= bit
		if e.maskEmpty(e.ejectMask, base) {
			e.ejectPending[r>>6] &^= uint64(1) << uint(r&63)
		}
	default:
		base := int(old) * e.wordsPerRouter
		e.candMask[base+w] &^= bit
		if e.maskEmpty(e.candMask, base) {
			e.candPending[int(old)>>6] &^= uint64(1) << uint(int(old)&63)
		}
	}
	switch nw {
	case whereNone:
	case whereEject:
		e.ejectMask[r*e.wordsPerRouter+w] |= bit
		e.ejectPending[r>>6] |= uint64(1) << uint(r&63)
	default:
		e.candMask[int(nw)*e.wordsPerRouter+w] |= bit
		e.candPending[int(nw)>>6] |= uint64(1) << uint(int(nw)&63)
	}
}

// maskEmpty reports whether the wordsPerRouter-word mask group starting
// at base is all zero.
func (e *engine) maskEmpty(m []uint64, base int) bool {
	for i := 0; i < e.wordsPerRouter; i++ {
		if m[base+i] != 0 {
			return false
		}
	}
	return true
}

// --- cycle phases ---------------------------------------------------

// deliverArrivals moves in-flight flits that reach their arrival cycle
// into downstream VC buffers (the slot was reserved at send time).
// Only links with in-flight flits (lqPending) are visited, in dense-ID
// order — the same deterministic order as a full scan, since skipped
// links have nothing to deliver. Delivery never pushes onto a link, so
// a per-word snapshot of the pending bits is exact.
func (e *engine) deliverArrivals() {
	if e.linkFlits == 0 {
		return
	}
	for wi, w := range e.lqPending {
		for w != 0 {
			lid := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			cnt := e.lqCount[lid]
			base := lid * e.lqCap
			head := e.lqHead[lid]
			to := int(e.linkTo[lid])
			for ; cnt > 0; cnt-- {
				inf := &e.lqData[base+int(head)]
				if inf.arriveAt > e.cycle {
					break
				}
				e.pushFlit(inf.slot, to, inf.f)
				head = (head + 1) & e.lqMask
				e.linkFlits--
			}
			e.lqHead[lid] = head
			e.lqCount[lid] = cnt
			if cnt == 0 {
				e.lqPending[wi] &^= uint64(1) << uint(lid&63)
			}
		}
	}
}

// nextArrival returns the earliest arrival cycle over all in-flight
// link flits. Each link ring is FIFO with a fixed per-link latency, so
// its head is its earliest arrival. Only called on the fast-forward
// path, with at least one flit in flight.
func (e *engine) nextArrival() int64 {
	next := int64(1)<<62 - 1
	for wi, w := range e.lqPending {
		for w != 0 {
			lid := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if at := e.lqData[lid*e.lqCap+int(e.lqHead[lid])].arriveAt; at < next {
				next = at
			}
		}
	}
	return next
}

// linkPush enqueues a forwarded flit on link lid's in-flight ring.
func (e *engine) linkPush(lid int32, inf inflight) {
	cnt := e.lqCount[lid]
	if int(cnt) == e.lqCap {
		e.growLinkRings()
	}
	e.lqData[int(lid)*e.lqCap+int((e.lqHead[lid]+cnt)&e.lqMask)] = inf
	e.lqCount[lid] = cnt + 1
	e.lqPending[int(lid)>>6] |= uint64(1) << uint(int(lid)&63)
	e.linkFlits++
	if e.actLinkFlits != nil {
		e.actLinkFlits[lid]++
	}
}

// growLinkRings doubles the shared link-ring stride. Occupancy is
// bounded by the maximum link latency (at most one flit enters a link
// per cycle and each leaves after exactly linkLat cycles), so this is
// defensive and should never run after setup sizes lqCap to maxLat+1.
func (e *engine) growLinkRings() {
	newCap := e.lqCap * 2
	data := make([]inflight, e.numLinks*newCap)
	for lid := 0; lid < e.numLinks; lid++ {
		for i := int32(0); i < e.lqCount[lid]; i++ {
			data[lid*newCap+int(i)] = e.lqData[lid*e.lqCap+int((e.lqHead[lid]+i)&e.lqMask)]
		}
		e.lqHead[lid] = 0
	}
	e.lqData = data
	e.lqCap = newCap
	e.lqMask = int32(newCap - 1)
}

// active reports whether router r has a service slot this cycle
// (multi-clock domains: slower routers skip base-clock ticks).
func (e *engine) active(r int) bool {
	if e.rate[r] >= 1 {
		return true
	}
	e.accRate[r] += e.rate[r]
	if e.accRate[r] >= 1 {
		e.accRate[r]--
		return true
	}
	return false
}

// ejectAndSwitch performs, for each active router, local ejection and
// output-link switch allocation. Uniform-clock engines take the
// event-driven path; engines with sub-rate clock domains keep the full
// per-router scan because active() mutates per-cycle accumulator state
// that a skip would desynchronize.
func (e *engine) ejectAndSwitch() {
	if e.eventDriven {
		e.ejectAndSwitchEvent()
		return
	}
	for r := 0; r < e.n; r++ {
		e.activeNow[r] = e.active(r)
	}
	// Ejection first: frees buffer slots for this cycle's switching.
	for r := 0; r < e.n; r++ {
		if e.activeNow[r] {
			e.eject(r)
		}
	}
	// Switch allocation per output link, round-robin across (port, vc).
	for r := 0; r < e.n; r++ {
		if !e.activeNow[r] {
			continue
		}
		for _, lid := range e.outLinks[r] {
			e.allocateOutput(lid)
		}
	}
}

// ejectAndSwitchEvent visits only routers with eject-ready heads and
// links with switch candidates, in the same ascending orders the full
// scan uses: dense link IDs are assigned router-major in topo.refresh,
// so ascending link ID equals the legacy router-major outLinks order.
// Round-robin pointers of skipped routers/links catch up lazily inside
// eject/allocateOutput.
func (e *engine) ejectAndSwitchEvent() {
	if e.bufferedFlits == 0 {
		return
	}
	// Ejection first: frees buffer slots for this cycle's switching.
	// Processing a router only mutates its own pending bit, so a
	// per-word snapshot reproduces the full scan's visit set exactly.
	for wi, w := range e.ejectPending {
		for w != 0 {
			r := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			e.eject(r)
		}
	}
	// Switch allocation. Forwarding a flit can expose a new head that
	// targets a *later* link of this same cycle's scan (which the full
	// scan would reach), so re-read the word after every link and
	// advance monotonically instead of snapshotting; bits set behind
	// the scan position wait for the next cycle, exactly like the
	// legacy ascending scan.
	for wi := range e.candPending {
		pos := 0
		for {
			w := e.candPending[wi] >> uint(pos) << uint(pos)
			if w == 0 {
				break
			}
			b := bits.TrailingZeros64(w)
			pos = b + 1
			e.allocateOutput(int32(wi<<6 + b))
		}
	}
}

// eject drains up to EjectBandwidth flits destined locally at router r,
// scanning only slots whose head is at its final hop (ejectMask), in
// round-robin order starting at rrEject[r].
func (e *engine) eject(r int) {
	budget := e.cfg.EjectBandwidth
	slots := int(e.numPorts[r]) * e.numVCs
	start := int(e.rrEject[r])
	if e.eventDriven {
		// Catch up the +1-per-cycle advance of the cycles skipped since
		// this router was last visited (the full scan calls eject every
		// cycle; the event scan only on pending work).
		if d := e.cycle - e.lastEject[r] - 1; d > 0 {
			start = int((int64(start) + d) % int64(slots))
		}
		e.lastEject[r] = e.cycle
	}
	next := start + 1
	if next == slots {
		next = 0
	}
	e.rrEject[r] = int32(next)
	base := r * e.wordsPerRouter
	sw := start >> 6
	for wi := sw; wi < e.wordsPerRouter && budget > 0; wi++ {
		w := e.ejectMask[base+wi]
		if wi == sw {
			w &= ^uint64(0) << uint(start&63)
		}
		for w != 0 && budget > 0 {
			lb := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			e.drainLocal(r, lb, &budget)
		}
	}
	for wi := 0; wi <= sw && wi < e.wordsPerRouter && budget > 0; wi++ {
		w := e.ejectMask[base+wi]
		if wi == sw {
			w &= uint64(1)<<uint(start&63) - 1
		}
		for w != 0 && budget > 0 {
			lb := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			e.drainLocal(r, lb, &budget)
		}
	}
}

// drainLocal pops consecutive locally-destined flits from one VC buffer.
func (e *engine) drainLocal(r, lb int, budget *int) {
	s := int32(r*e.slotsPerRouter + lb)
	for *budget > 0 && e.bufCount[s] > 0 {
		h := e.headFlit(s)
		if int(h.pathIdx) < len(h.pkt.path)-1 {
			return // new head continues onward
		}
		f := e.popFlit(s, r)
		e.free[s]++
		e.forwardedThisCycle = true
		*budget--
		if e.actBufRead != nil {
			e.actEjected++
		}
		if f.isTail {
			e.completePacket(f.pkt)
		}
	}
}

// completePacket records stats, triggers pattern replies and recycles
// the packet object.
func (e *engine) completePacket(p *packet) {
	if e.cycle >= int64(e.cfg.WarmupCycles) && e.cycle < int64(e.cfg.WarmupCycles+e.cfg.MeasureCycles) {
		e.delivered++
	}
	if p.measured {
		lat := e.cycle - p.injectedAt
		e.latencySum += lat
		if e.firstFault >= 0 {
			if p.injectedAt >= e.firstFault {
				e.postLatSum += lat
				e.postMeasured++
			} else {
				e.preLatSum += lat
				e.preMeasured++
			}
		}
		e.measured++
		e.measuredInFlight--
	}
	if replyDst, replyFlits, ok := e.cfg.Pattern.OnDeliver(p.src, p.dst, e.rng); ok {
		generating := e.cycle < int64(e.cfg.WarmupCycles+e.cfg.MeasureCycles)
		if generating {
			if e.flowBlocked(p.dst, replyDst) {
				e.skippedInject++
			} else {
				e.enqueuePacket(p.dst, replyDst, replyFlits, false)
			}
		}
	}
	e.recyclePacket(p)
}

// allocateOutput picks one (port, vc) whose head flit targets link lid
// and forwards it, honoring credits and per-packet VC ownership. Only
// candidate slots (candMask) are scanned, in round-robin order.
func (e *engine) allocateOutput(lid int32) {
	r := int(e.linkFrom[lid])
	slots := int(e.numPorts[r]) * e.numVCs
	start := int(e.rrOut[lid])
	if e.eventDriven {
		// Same lazy catch-up as eject: the full scan advances rrOut by
		// one on every no-forward cycle; reconstruct the skipped ones.
		if d := e.cycle - e.lastOut[lid] - 1; d > 0 {
			start = int((int64(start) + d) % int64(slots))
		}
		e.lastOut[lid] = e.cycle
	}
	base := int(lid) * e.wordsPerRouter
	sw := start >> 6
	for wi := sw; wi < e.wordsPerRouter; wi++ {
		w := e.candMask[base+wi]
		if wi == sw {
			w &= ^uint64(0) << uint(start&63)
		}
		for w != 0 {
			lb := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if e.tryForward(lid, r, lb) {
				return
			}
		}
	}
	for wi := 0; wi <= sw && wi < e.wordsPerRouter; wi++ {
		w := e.candMask[base+wi]
		if wi == sw {
			w &= uint64(1)<<uint(start&63) - 1
		}
		for w != 0 {
			lb := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if e.tryForward(lid, r, lb) {
				return
			}
		}
	}
	next := start + 1
	if next == slots {
		next = 0
	}
	e.rrOut[lid] = int32(next)
}

// tryForward forwards the head flit of local slot lb onto link lid if a
// downstream VC accepts it.
func (e *engine) tryForward(lid int32, r, lb int) bool {
	s := int32(r*e.slotsPerRouter + lb)
	h := e.headFlit(s)
	downBase := e.linkDownBase[lid]
	var downVC int
	if h.isHead {
		downVC = e.pickDownVC(downBase, h)
		if downVC < 0 {
			return false
		}
		e.claimVC[s] = int8(downVC)
	} else {
		// Body flits follow the VC their head claimed from this slot;
		// the owner chain guarantees it is still theirs until the tail
		// passes, so only credit availability can block.
		downVC = int(e.claimVC[s])
		if e.free[downBase+int32(downVC)] <= 0 {
			return false
		}
	}
	f := e.popFlit(s, r)
	e.free[s]++
	ds := downBase + int32(downVC)
	e.free[ds]--
	if f.isHead {
		e.owner[ds] = f.pkt
	}
	if f.isTail {
		e.owner[ds] = nil
	}
	f.pathIdx++
	e.linkPush(lid, inflight{f: f, arriveAt: e.cycle + e.linkLat[lid], slot: ds})
	e.forwardedThisCycle = true
	next := lb + 1
	if next == int(e.numPorts[r])*e.numVCs {
		next = 0
	}
	e.rrOut[lid] = int32(next)
	return true
}

// pickDownVC selects the downstream VC for a flit, Duato-style: the
// packet's assigned layer is its escape VC (per-layer CDGs are acyclic),
// while physical VCs beyond the escape layers (indices >= VC.NumVCs) are
// adaptive and may be claimed by any packet. Heads prefer a free adaptive
// VC and fall back to their escape layer. Body flits never reach here:
// they follow the VC their head claimed via the claimVC/injVC caches.
// base is the destination slot with vc=0; returns -1 when blocked.
func (e *engine) pickDownVC(base int32, h *flit) int {
	for vcIdx := e.escapeVCs; vcIdx < e.numVCs; vcIdx++ {
		if e.owner[base+int32(vcIdx)] == nil && e.free[base+int32(vcIdx)] > 0 {
			return vcIdx
		}
	}
	lay := int32(h.pkt.layer)
	if e.owner[base+lay] == nil && e.free[base+lay] > 0 {
		return int(lay)
	}
	return -1
}

// inject pushes queued packet flits into each router's injection port.
func (e *engine) inject() {
	if e.queuedPkts == 0 {
		return
	}
	for r := 0; r < e.n; r++ {
		q := &e.injectQ[r]
		if q.empty() {
			continue
		}
		budget := e.cfg.InjectBandwidth
		base := int32(r * e.slotsPerRouter) // port 0, vc 0
		for budget > 0 && !q.empty() {
			p := q.front()
			f := flit{
				pkt:     p,
				pathIdx: 0,
				isHead:  p.flitsQueued == 0,
				isTail:  p.flitsQueued == p.flits-1,
			}
			// The injection buffer holds whole packets contiguously,
			// using the same adaptive/escape VC choice as link traversal.
			// Body flits reuse the head's claimed VC (injVC cache).
			var vcIdx int
			if f.isHead {
				vcIdx = e.pickDownVC(base, &f)
				if vcIdx < 0 {
					break
				}
				e.injVC[r] = int8(vcIdx)
			} else {
				vcIdx = int(e.injVC[r])
				if e.free[base+int32(vcIdx)] <= 0 {
					break
				}
			}
			s := base + int32(vcIdx)
			if f.isHead {
				e.owner[s] = p
			}
			e.pushFlit(s, r, f)
			e.free[s]--
			p.flitsQueued++
			budget--
			e.forwardedThisCycle = true
			if e.actBufRead != nil {
				e.actInjected++
			}
			if f.isTail {
				e.owner[s] = nil
				q.pop()
				e.queuedPkts--
			}
		}
	}
}
