package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"netsmith/internal/route"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
	"netsmith/internal/vc"
)

// SweepPoint is one (offered rate, latency, accepted throughput) sample.
// The JSON names match the scenario-matrix CSV columns.
type SweepPoint struct {
	OfferedRate   float64 `json:"offered_pkt_node_cycle"` // packets/node/cycle
	AvgLatencyNs  float64 `json:"latency_ns"`
	AcceptedPerNs float64 `json:"accepted_pkt_node_ns"` // packets/node/ns
	Saturated     bool    `json:"saturated"`
	Stalled       bool    `json:"stalled"`
	// Robustness summary. DeliveredFraction mirrors
	// Result.DeliveredFraction (measured deliveries over measured
	// injection attempts; 1.0 for a healthy, unsaturated run).
	// LatencyInflation is the post-fault/pre-fault measured latency
	// ratio (0 when either phase measured nothing, and for fault-free
	// runs); DroppedFlits counts flits purged at fault boundaries.
	DeliveredFraction float64 `json:"delivered_fraction"`
	LatencyInflation  float64 `json:"latency_inflation"`
	DroppedFlits      int     `json:"dropped_flits"`
	// Measured-energy summary (zero unless the run's Config set
	// CollectEnergy): average total power over the run and dynamic energy
	// per delivered flit.
	AvgPowerMW      float64 `json:"avg_power_mw"`
	EnergyPerFlitPJ float64 `json:"energy_per_flit_pj"`
}

// energize fills the point's energy summary from a run result.
func (p *SweepPoint) energize(res *Result) {
	if res.Energy == nil {
		return
	}
	p.AvgPowerMW = res.Energy.AvgTotalMW
	p.EnergyPerFlitPJ = res.Energy.PerFlitPJ()
}

// SweepResult is a latency-vs-injection curve plus derived summary
// metrics (the data behind the paper's Figs. 1, 6, 10 and 11).
type SweepResult struct {
	Topology string
	Pattern  string
	Points   []SweepPoint
	// ZeroLoadLatencyNs is the latency at the lowest offered rate.
	ZeroLoadLatencyNs float64
	// SaturationPerNs is the highest accepted throughput measured before
	// latency exceeds SaturationFactor x zero-load (packets/node/ns).
	SaturationPerNs float64
}

// SaturationFactor defines the latency blow-up treated as saturation.
const SaturationFactor = 5.0

// SweepConfig drives a saturation sweep for one topology+routing+pattern.
type SweepConfig struct {
	Base  Config    // InjectionRate is overridden per point
	Rates []float64 // offered packets/node/cycle; default DefaultRates()
}

// DefaultRates returns the standard offered-rate grid.
func DefaultRates() []float64 {
	return []float64{0.005, 0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.24, 0.28, 0.32, 0.38, 0.45}
}

// Sweep runs the rate grid on a bounded worker pool and derives
// saturation. Each point is seeded deterministically from its index, so
// sweep results do not depend on scheduling order. The configured
// Pattern instance is shared across concurrently simulated points, so it
// must be stateless; for stateful patterns (bursty, trace replay) use
// RunMatrix, which builds a fresh instance per cell from a factory.
func Sweep(sc SweepConfig) (*SweepResult, error) {
	rates := sc.Rates
	if rates == nil {
		rates = DefaultRates()
	}
	points := make([]SweepPoint, len(rates))
	errs := make([]error, len(rates))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rates) {
		workers = len(rates)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rates) {
					return
				}
				cfg := sc.Base
				cfg.InjectionRate = rates[i]
				cfg.Seed = sc.Base.Seed + int64(i)*7919
				res, err := Run(cfg)
				if err != nil {
					errs[i] = err
					continue
				}
				points[i] = cellPoint(rates[i], res)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &SweepResult{
		Topology: sc.Base.Topo.Name,
		Pattern:  sc.Base.Pattern.Name(),
		Points:   points,
	}
	out.ZeroLoadLatencyNs, out.SaturationPerNs = deriveSaturation(points)
	return out, nil
}

// deriveSaturation marks saturated points in place (latency blow-up past
// SaturationFactor x zero-load, watchdog stalls, or no measured packets)
// and returns the zero-load latency and the highest pre-saturation
// accepted throughput. Points must be in ascending offered-rate order.
func deriveSaturation(points []SweepPoint) (zeroLoadNs, satPerNs float64) {
	if len(points) == 0 {
		return 0, 0
	}
	zeroLoadNs = points[0].AvgLatencyNs
	for i := range points {
		sat := points[i].Stalled ||
			points[i].AvgLatencyNs > SaturationFactor*zeroLoadNs ||
			points[i].Measured() == 0
		points[i].Saturated = sat
		if !sat && points[i].AcceptedPerNs > satPerNs {
			satPerNs = points[i].AcceptedPerNs
		}
	}
	return zeroLoadNs, satPerNs
}

// Measured reports whether the point produced latency data.
func (p SweepPoint) Measured() float64 { return p.AvgLatencyNs }

// Setup bundles the standard preparation pipeline: routing (MCLB or
// NDBT), VC assignment and its deadlock-freedom verification.
type Setup struct {
	Topo    *topo.Topology
	Routing *route.Routing
	VC      *vc.Assignment
}

// RoutingKind selects the routing algorithm for Prepare.
type RoutingKind int

const (
	// UseMCLB applies NetSmith's minimum-max-channel-load routing.
	UseMCLB RoutingKind = iota
	// UseNDBT applies the expert-topology no-double-back-turns
	// heuristic.
	UseNDBT
)

// Prepare builds routing and a verified deadlock-free VC assignment for
// a topology.
func Prepare(t *topo.Topology, kind RoutingKind, seed int64) (*Setup, error) {
	var r *route.Routing
	var err error
	switch kind {
	case UseMCLB:
		r, err = route.MCLB(t, route.MCLBOptions{Seed: seed})
	case UseNDBT:
		r, err = route.NDBT(t, seed)
	default:
		return nil, fmt.Errorf("sim: unknown routing kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	if err := r.Validate(t); err != nil {
		return nil, err
	}
	a, err := vc.Assign(r, vc.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := a.Verify(r); err != nil {
		return nil, err
	}
	return &Setup{Topo: t, Routing: r, VC: a}, nil
}

// Curve runs a sweep for a prepared setup and pattern with the given
// fidelity (warmup/measure cycles scale with fast=false).
func (s *Setup) Curve(p traffic.Pattern, rates []float64, fast bool, seed int64) (*SweepResult, error) {
	base := Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: p, Seed: seed,
	}
	if fast {
		base.WarmupCycles = 1500
		base.MeasureCycles = 4000
		base.DrainCycles = 6000
	}
	return Sweep(SweepConfig{Base: base, Rates: rates})
}
