package sim

import (
	"reflect"
	"runtime"
	"testing"

	"netsmith/internal/fault"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// ffTrace builds a short trace that dries up well inside the warmup
// window: at injection rate 1.0 every source pops one record per cycle,
// so after ~60 cycles the replay is permanently dry and the engine's
// generation-phase fast-forward (the Never hint) carries the run to the
// measure-window end.
func ffTrace(t testing.TB) []traffic.TraceRecord {
	t.Helper()
	var recs []traffic.TraceRecord
	for c := int64(0); c < 60; c++ {
		for src := 0; src < 20; src++ {
			flits := 1
			if (src+int(c))%2 == 0 {
				flits = 9
			}
			recs = append(recs, traffic.TraceRecord{Cycle: c, Src: src, Dst: (src + 7) % 20, Flits: flits})
		}
	}
	return recs
}

// ffScenarios returns fresh-Config builders covering the paths hybrid
// stepping must keep bit-identical: steady uniform load, energy
// collection, fault epochs (including a boundary inside a fast-forward
// window), stateful patterns, trace replay that dries up, and sub-rate
// clock domains (which must fall back to cycle-by-cycle stepping).
// Builders return fresh pattern instances so the paired fast/slow runs
// never share state.
func ffScenarios(t *testing.T) map[string]func() Config {
	t.Helper()
	s := meshSetup(t)
	base := func() Config {
		return Config{
			Topo: s.Topo, Routing: s.Routing, VC: s.VC,
			WarmupCycles: 400, MeasureCycles: 1500, DrainCycles: 3000,
			Seed: 11,
		}
	}
	replay := func() traffic.Pattern {
		rep, err := traffic.NewReplay("ff", 20, ffTrace(t), false)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	return map[string]func() Config{
		"uniform-low-energy": func() Config {
			cfg := base()
			cfg.Pattern = traffic.Uniform{N: 20}
			cfg.InjectionRate = 0.02
			cfg.CollectEnergy = true
			return cfg
		},
		"uniform-mid": func() Config {
			cfg := base()
			cfg.Pattern = traffic.Uniform{N: 20}
			cfg.InjectionRate = 0.09
			return cfg
		},
		"uniform-faults-energy": func() Config {
			cfg := base()
			cfg.Pattern = traffic.Uniform{N: 20}
			cfg.InjectionRate = 0.03
			cfg.CollectEnergy = true
			cfg.FaultSchedule = buildSched(t, cfg, "klinks:k=2:seed=9:at=600")
			return cfg
		},
		"bursty": func() Config {
			cfg := base()
			b, err := traffic.NewBursty(traffic.Uniform{N: 20}, 20, 0.05, 0.02)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Pattern = b
			cfg.InjectionRate = 0.05
			return cfg
		},
		"memory": func() Config {
			cfg := base()
			cores := make([]int, 16)
			for i := range cores {
				cores[i] = i
			}
			cfg.Pattern = traffic.NewMemory(cores, []int{16, 17, 18, 19})
			cfg.InjectionRate = 0.03
			return cfg
		},
		"trace-dry-energy": func() Config {
			cfg := base()
			cfg.Pattern = replay()
			cfg.InjectionRate = 1.0
			cfg.CollectEnergy = true
			return cfg
		},
		"trace-dry-fault-in-window": func() Config {
			// The boundary at cycle 900 lands long after the trace dried
			// (~cycle 60): without clamping, fast-forward would jump the
			// epoch flush entirely.
			cfg := base()
			cfg.Pattern = replay()
			cfg.InjectionRate = 1.0
			cfg.CollectEnergy = true
			cfg.FaultSchedule = buildSched(t, cfg, "klinks:k=2:seed=9:at=900")
			return cfg
		},
		"sub-rate-clocks": func() Config {
			cfg := base()
			cfg.Pattern = traffic.Uniform{N: 20}
			cfg.InjectionRate = 0.03
			rates := make([]float64, 20)
			for i := range rates {
				rates[i] = 1
			}
			rates[3], rates[11] = 0.5, 0.25
			cfg.NodeRate = rates
			return cfg
		},
	}
}

// TestFastForwardEquivalence pins the tentpole claim: the event-driven
// fast-forward engine and the cycle-by-cycle engine produce DeepEqual
// Results — latency, energy counters, fault accounting — on every
// scenario class.
func TestFastForwardEquivalence(t *testing.T) {
	for name, mk := range ffScenarios(t) {
		t.Run(name, func(t *testing.T) {
			fast, err := Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			slowCfg := mk()
			slowCfg.DisableFastForward = true
			slow, err := Run(slowCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("fast-forward result diverged:\nfast: %+v\nslow: %+v", fast, slow)
			}
		})
	}
}

// TestFastForwardEngages verifies (white-box) that the dried-up trace
// actually triggers cycle skipping, and that a fault boundary inside
// the skipped window still fires its epoch flush at the right cycle.
func TestFastForwardEngages(t *testing.T) {
	mk := ffScenarios(t)["trace-dry-fault-in-window"]
	cfg, err := defaulted(mk())
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	if e.ffSkipped == 0 {
		t.Fatal("dried-up trace run never fast-forwarded")
	}
	if res.RerouteEvents != 1 {
		t.Fatalf("fault boundary inside the skipped window applied %d reroutes, want 1", res.RerouteEvents)
	}
	if e.nextBoundary != len(e.boundaries) {
		t.Fatalf("processed %d of %d fault boundaries", e.nextBoundary, len(e.boundaries))
	}
	// And the pure-drain case (no faults) should skip much more.
	cfg2, err := defaulted(ffScenarios(t)["trace-dry-energy"]())
	if err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(cfg2)
	if _, err := e2.run(); err != nil {
		t.Fatal(err)
	}
	if e2.ffSkipped < 100 {
		t.Fatalf("quiescent run skipped only %d cycles", e2.ffSkipped)
	}
	// With nothing measured in flight the run must end exactly at the
	// measure-window boundary, like the cycle-by-cycle path.
	if want := int64(cfg2.WarmupCycles + cfg2.MeasureCycles); e2.cycle != want {
		t.Fatalf("quiescent run ended at cycle %d, want %d", e2.cycle, want)
	}
}

// TestEngineResetMatchesFresh pins the batching invariant: an engine
// reset between runs (different pattern, rate, seed, energy, faults) is
// indistinguishable from a freshly built one.
func TestEngineResetMatchesFresh(t *testing.T) {
	s := meshSetup(t)
	cfgA := Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern:       traffic.Uniform{N: 20},
		InjectionRate: 0.08,
		WarmupCycles:  400, MeasureCycles: 1500, DrainCycles: 3000,
		Seed:          3,
		CollectEnergy: true,
	}
	cfgB := Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern:       traffic.Tornado{Rows: 4, Cols: 5},
		InjectionRate: 0.05,
		WarmupCycles:  400, MeasureCycles: 1500, DrainCycles: 3000,
		Seed: 77,
	}
	cfgB.FaultSchedule = buildSched(t, cfgB, "klinks:k=2:seed=9:at=600")

	var slot *engine
	gotA, err := runReused(&slot, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	first := slot
	gotB, err := runReused(&slot, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if slot != first {
		t.Fatal("compatible config rebuilt the engine instead of resetting it")
	}
	// A third run repeating cfgA exercises reset after fault epochs.
	gotA2, err := runReused(&slot, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatalf("reused engine diverged on cfgA:\n%+v\nvs\n%+v", gotA, wantA)
	}
	if !reflect.DeepEqual(gotA2, wantA) {
		t.Fatalf("reused engine diverged on repeated cfgA:\n%+v\nvs\n%+v", gotA2, wantA)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("reused engine diverged on cfgB:\n%+v\nvs\n%+v", gotB, wantB)
	}
}

// TestMatrixBatchedMatchesUnbatched pins the batched scheduler: the
// per-worker engine-reuse path, the fresh-engine path, and a
// single-threaded run all emit DeepEqual matrices.
func TestMatrixBatchedMatchesUnbatched(t *testing.T) {
	s := meshSetup(t)
	mc := MatrixConfig{
		Setups: []*Setup{s},
		Patterns: []PatternFactory{
			{Name: "uniform", New: func() (traffic.Pattern, error) { return traffic.Uniform{N: 20}, nil }},
			{Name: "bursty", New: func() (traffic.Pattern, error) {
				return traffic.NewBursty(traffic.Uniform{N: 20}, 20, 0.05, 0.02)
			}},
			{Name: "trace", New: func() (traffic.Pattern, error) {
				return traffic.NewReplay("ff", 20, ffTrace(t), false)
			}},
		},
		Rates: []float64{0.02, 0.10},
		Faults: []FaultFactory{
			{Name: "none", New: func(*topo.Topology) (*fault.Schedule, error) { return &fault.Schedule{}, nil }},
			{Name: "cut01", New: func(*topo.Topology) (*fault.Schedule, error) {
				return &fault.Schedule{Events: []fault.Event{{Kind: fault.Link, From: 0, To: 1, Start: 100}}}, nil
			}},
		},
		Base: Config{
			WarmupCycles: 300, MeasureCycles: 800, DrainCycles: 1600,
			CollectEnergy: true,
		},
		Seed: 42,
	}
	batched, err := RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	un := mc
	un.Unbatched = true
	unbatched, err := RunMatrix(un)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, unbatched) {
		t.Fatalf("batched matrix diverged from unbatched:\n%+v\nvs\n%+v", batched, unbatched)
	}
	old := runtime.GOMAXPROCS(1)
	serial, err := RunMatrix(mc)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, serial) {
		t.Fatalf("batched matrix depends on GOMAXPROCS:\n%+v\nvs\n%+v", batched, serial)
	}
}
