package sim

import (
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/traffic"
)

// steadyEngine builds an engine and runs it far enough past warm-up that
// every pool and ring has reached its steady-state capacity. The measure
// window is set huge so the stepped cycles below stay in the generating
// phase.
func steadyEngine(t testing.TB, rate float64, energy bool) *engine {
	s, err := Prepare(expert.Mesh(layout.Grid4x5), UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := defaulted(Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: rate,
		CollectEnergy: energy,
		WarmupCycles:  1000, MeasureCycles: 1 << 30, DrainCycles: 1000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cfg)
	for i := 0; i < 4000; i++ {
		e.step(true, false)
		e.cycle++
	}
	return e
}

// TestSteadyStateCyclesDoNotAllocate guards the engine's zero-alloc
// property: once warm, simulation cycles must not allocate — packets are
// pooled, VC buffers and link queues are fixed rings, and the injection
// queues have grown to their working capacity. A regression to
// per-packet or per-flit allocation shows up as >= 1 alloc per window.
// Rates stay below mesh saturation: past saturation the injection
// backlog (and hence the packet pool) grows without bound by design.
// Energy-enabled engines must hold the same property: the activity
// counters are fixed uint64 arrays sized at setup, so counting adds no
// steady-state allocation.
func TestSteadyStateCyclesDoNotAllocate(t *testing.T) {
	for _, energy := range []bool{false, true} {
		for _, rate := range []float64{0.05, 0.09} {
			e := steadyEngine(t, rate, energy)
			avg := testing.AllocsPerRun(10, func() {
				for i := 0; i < 200; i++ {
					e.step(true, false)
					e.cycle++
				}
			})
			if avg > 0.5 {
				t.Errorf("rate %v energy=%v: %.1f allocs per 200 warm cycles, want 0", rate, energy, avg)
			}
		}
	}
}

// TestSteadyStateRunStaysLive sanity-checks that the stepped engine used
// by the allocation guard is actually doing work (delivering packets),
// so the zero-alloc assertion is not vacuous.
func TestSteadyStateRunStaysLive(t *testing.T) {
	e := steadyEngine(t, 0.10, true)
	before := e.delivered
	for i := 0; i < 2000; i++ {
		e.step(true, false)
		e.cycle++
	}
	if e.delivered <= before {
		t.Fatalf("no deliveries across 2000 warm cycles (delivered=%d)", e.delivered)
	}
}
