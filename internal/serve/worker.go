package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"netsmith/internal/sim"
	"netsmith/internal/store"
)

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g.
	// "http://127.0.0.1:8080"); required.
	Coordinator string
	// Store is the result store shared with the coordinator (same
	// directory on a shared filesystem); required. It is the data
	// plane: shard results travel through it, the lease protocol only
	// carries control traffic.
	Store *store.Store
	// Name identifies this worker in leases and liveness metrics
	// (default "worker-<hostname>-<pid>").
	Name string
	// Poll is the idle claim-poll interval (default 500ms).
	Poll time.Duration
	// Client is the HTTP client (default: 10s timeout).
	Client *http.Client
	// Logf, when set, receives one line per lease lifecycle event.
	Logf func(format string, args ...any)
}

// RunWorker runs the claim → execute → complete loop until ctx is
// cancelled (its only non-nil return is ctx.Err()). Coordinator
// outages are ridden out by polling — a worker is stateless between
// leases, so restarting either side at any instant is safe: at worst
// one lease expires and its unfinished cells are re-simulated by the
// next claimant.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Coordinator == "" {
		return fmt.Errorf("serve: WorkerConfig.Coordinator is required")
	}
	if cfg.Store == nil {
		return fmt.Errorf("serve: WorkerConfig.Store is required")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("worker-%s-%d", defaultStr(host, "unknown"), os.Getpid())
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	base := strings.TrimSuffix(cfg.Coordinator, "/")
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := claimLease(ctx, cfg, base)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logf("claim: %v", err)
			sleepCtx(ctx, cfg.Poll)
			continue
		}
		if lease == nil {
			sleepCtx(ctx, cfg.Poll)
			continue
		}
		logf("lease %s: job %s shard %d/%d", lease.LeaseID, lease.JobID, lease.Shard, lease.Of)
		executeLease(ctx, cfg, base, lease, logf)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// postJSON posts body and decodes a 2xx response into out (when
// non-nil); non-2xx statuses are returned for the caller to classify
// (410 Gone means "stand down", not "retry").
func postJSON(ctx context.Context, client *http.Client, url string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.StatusCode, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func claimLease(ctx context.Context, cfg WorkerConfig, base string) (*Lease, error) {
	var lease Lease
	status, err := postJSON(ctx, cfg.Client, base+"/v1/cluster/claim", ClaimRequest{Worker: cfg.Name}, &lease)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &lease, nil
}

// executeLease runs one shard: decode the coordinator-validated
// request, simulate owned cells cache-first into the shared store
// while a heartbeat goroutine keeps the lease alive, then report. A
// rejected heartbeat (lease stolen, job cancelled) cancels the shard
// context so simulation stops within one cell and nothing is
// reported.
func executeLease(ctx context.Context, cfg WorkerConfig, base string, lease *Lease, logf func(string, ...any)) {
	var runShard shardRunner
	var failMsg string
	switch lease.Kind {
	case "", "matrix": // empty Kind = pre-pareto coordinator
		var req MatrixRequest
		if err := json.Unmarshal(lease.Request, &req); err != nil {
			failMsg = fmt.Sprintf("decoding lease request: %v", err)
		} else if p, err := req.plan(); err != nil {
			// The coordinator validated this request; failing here means
			// version skew. Deterministic, so report it (another worker
			// would fail identically).
			failMsg = fmt.Sprintf("planning lease request: %v", err)
		} else {
			runShard = p.shardRunner()
		}
	case "pareto":
		var req ParetoRequest
		if err := json.Unmarshal(lease.Request, &req); err != nil {
			failMsg = fmt.Sprintf("decoding lease request: %v", err)
		} else if p, err := req.plan(); err != nil {
			failMsg = fmt.Sprintf("planning lease request: %v", err)
		} else {
			runShard = p.shardRunner()
		}
	default:
		failMsg = fmt.Sprintf("unknown lease kind %q (version skew?)", lease.Kind)
	}
	if failMsg != "" {
		_, _ = postJSON(ctx, cfg.Client, base+"/v1/cluster/complete", CompleteRequest{
			JobID: lease.JobID, LeaseID: lease.LeaseID, Worker: cfg.Name, Error: failMsg,
		}, nil)
		return
	}

	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var doneCells atomic.Int64
	hbEvery := time.Duration(lease.TTLMS) * time.Millisecond / 3
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				status, err := postJSON(shardCtx, cfg.Client, base+"/v1/cluster/heartbeat", HeartbeatRequest{
					JobID: lease.JobID, LeaseID: lease.LeaseID, Worker: cfg.Name,
					Done: int(doneCells.Load()),
				}, nil)
				if status == http.StatusGone {
					logf("lease %s: gone, abandoning shard", lease.LeaseID)
					cancel()
					return
				}
				if err != nil && shardCtx.Err() == nil {
					// Transient coordinator hiccup: keep simulating;
					// the next beat may land before the lease expires,
					// and losing the lease only costs duplicate work.
					logf("heartbeat: %v", err)
				}
			}
		}
	}()

	start := time.Now()
	rep, err := runShard(shardCtx, cfg.Store, sim.Shard{Index: lease.Shard, Count: lease.Of},
		func(done, total int) { doneCells.Store(int64(done)) })
	comp := CompleteRequest{
		JobID: lease.JobID, LeaseID: lease.LeaseID, Worker: cfg.Name,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	switch {
	case rep == nil && shardCtx.Err() != nil:
		return // lease lost or worker shutting down: stand down silently
	case rep == nil:
		comp.Error = err.Error()
	default:
		comp.Stats = rep.stats
		comp.SynthCached = rep.synthCached
		comp.PointsSynthesized = rep.pointsSynth
	}
	// Complete on the parent ctx: a lease-loss cancel must not block a
	// legitimate report (shardCtx is only dead in the return above).
	if _, err := postJSON(ctx, cfg.Client, base+"/v1/cluster/complete", comp, nil); err != nil {
		logf("complete: %v", err)
		return
	}
	logf("lease %s: shard %d/%d done (%d computed, %d cached)",
		lease.LeaseID, lease.Shard, lease.Of, comp.Stats.Computed, comp.Stats.CacheHits)
}
