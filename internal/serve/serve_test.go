package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netsmith/internal/store"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postReq(t *testing.T, url, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, v
}

// pollDone polls the job until it reaches a terminal state.
func pollDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if terminal(v.State) {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// waitState spins until the job reaches the wanted state (registry
// access; only usable from this package's tests).
func waitState(t *testing.T, s *Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		j, ok := s.jobs[id]
		var state string
		if ok {
			state = j.state
		}
		s.mu.Unlock()
		if state == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// noopRun is a trivial job body for queue-mechanics tests.
func noopRun(ctx context.Context, _ *job) (any, bool, error) { return "ok", false, nil }

// gatedRun blocks until the gate closes or the job is cancelled.
func gatedRun(gate chan struct{}) runFunc {
	return func(ctx context.Context, _ *job) (any, bool, error) {
		select {
		case <-gate:
			return "ok", false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v["status"] != "ok" {
		t.Fatalf("healthz body %v", v)
	}
}

// TestSynthJobLifecycleAndCacheHit: first POST computes, second POST of
// the identical request completes from the store with cache_hit set and
// an identical topology. Runs through the unified /v1/jobs surface.
func TestSynthJobLifecycleAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"kind":"synth","grid":"4x5","class":"medium","objective":"latop","seed":3,"iterations":1500,"restarts":1}`

	code, j1 := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	if j1.State != StateQueued && j1.State != StateRunning {
		t.Fatalf("fresh job state %q", j1.State)
	}
	if j1.Status != j1.State {
		t.Fatalf("deprecated status alias %q != state %q", j1.Status, j1.State)
	}
	done1 := pollDone(t, ts.URL, j1.ID)
	if done1.State != StateDone {
		t.Fatalf("job 1: %+v", done1)
	}
	if done1.CacheHit {
		t.Error("first synthesis claims a cache hit")
	}
	var r1 SynthResult
	if err := json.Unmarshal(done1.Result, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Links == 0 || r1.Diameter == 0 || r1.Objective == 0 {
		t.Fatalf("implausible synth result: %+v", r1)
	}

	code, j2 := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST 2 status %d", code)
	}
	done2 := pollDone(t, ts.URL, j2.ID)
	if done2.State != StateDone || !done2.CacheHit {
		t.Fatalf("repeated request not served from cache: %+v", done2)
	}
	var r2 SynthResult
	if err := json.Unmarshal(done2.Result, &r2); err != nil {
		t.Fatal(err)
	}
	if string(r1.Topology) != string(r2.Topology) {
		t.Error("cached topology differs from computed one")
	}
	if r1.Objective != r2.Objective || r1.AvgHops != r2.AvgHops {
		t.Errorf("cached metrics differ: %+v vs %+v", r1, r2)
	}
}

// TestSynthPopulationJob: population-mode synth bodies run end to end
// through /v1/jobs, the repeated POST is a cache hit, and a classic
// restart body over the same store never collides with it.
func TestSynthPopulationJob(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"kind":"synth","grid":"4x5","class":"medium","objective":"latop","seed":3,"iterations":1200,"restarts":1,"population":2,"generations":1}`

	code, j1 := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	done1 := pollDone(t, ts.URL, j1.ID)
	if done1.State != StateDone || done1.CacheHit {
		t.Fatalf("population job 1: %+v", done1)
	}
	var r1 SynthResult
	if err := json.Unmarshal(done1.Result, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Links == 0 || r1.Objective == 0 {
		t.Fatalf("implausible population result: %+v", r1)
	}

	code, j2 := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST 2 status %d", code)
	}
	done2 := pollDone(t, ts.URL, j2.ID)
	if done2.State != StateDone || !done2.CacheHit {
		t.Fatalf("repeated population request not served from cache: %+v", done2)
	}

	classic := `{"kind":"synth","grid":"4x5","class":"medium","objective":"latop","seed":3,"iterations":1200,"restarts":1}`
	code, j3 := postReq(t, ts.URL+"/v1/jobs", classic)
	if code != http.StatusAccepted {
		t.Fatalf("POST 3 status %d", code)
	}
	done3 := pollDone(t, ts.URL, j3.ID)
	if done3.State != StateDone {
		t.Fatalf("classic job: %+v", done3)
	}
	if done3.CacheHit {
		t.Error("classic restart request collided with the population cache entry")
	}
}

// TestMatrixJobCacheHit: the serve-smoke contract — a repeated matrix
// POST simulates zero cells. Exercises the deprecated /v1/matrix alias
// to pin that it still works and routes into the same path.
func TestMatrixJobCacheHit(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"grid":"3x3","patterns":["uniform","tornado"],"rates":[0.02,0.1],"fidelity":"smoke","energy":true,"seed":9}`

	resp, err := http.Post(ts.URL+"/v1/matrix", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Error("alias response missing Deprecation header")
	}
	var j1 JobView
	if err := json.NewDecoder(resp.Body).Decode(&j1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	done1 := pollDone(t, ts.URL, j1.ID)
	if done1.State != StateDone {
		t.Fatalf("matrix job failed: %+v", done1)
	}
	if done1.CacheHit {
		t.Error("first matrix run claims a cache hit")
	}
	if done1.Progress == nil || done1.Progress.Done != 4 || done1.Progress.Total != 4 {
		t.Errorf("finished matrix progress = %+v, want 4/4", done1.Progress)
	}
	var r1 MatrixJobResult
	if err := json.Unmarshal(done1.Result, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Cells != 4 || r1.Stats.Computed != 4 || r1.Stats.CacheHits != 0 {
		t.Fatalf("first run stats: %+v", r1.Stats)
	}
	if len(r1.Matrix.Curves) != 2 {
		t.Fatalf("curves: %d", len(r1.Matrix.Curves))
	}

	// Second run through the unified endpoint: same cells, all cached.
	code, j2 := postReq(t, ts.URL+"/v1/jobs", `{"kind":"matrix",`+body[1:])
	if code != http.StatusAccepted {
		t.Fatalf("POST 2 status %d", code)
	}
	done2 := pollDone(t, ts.URL, j2.ID)
	if done2.State != StateDone || !done2.CacheHit {
		t.Fatalf("repeated matrix not served from cache: %+v", done2)
	}
	var r2 MatrixJobResult
	if err := json.Unmarshal(done2.Result, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Computed != 0 || r2.Stats.CacheHits != 4 {
		t.Fatalf("second run stats: %+v", r2.Stats)
	}
	// The served matrices are byte-identical (Stats ride outside).
	m1, _ := json.Marshal(r1.Matrix)
	m2, _ := json.Marshal(r2.Matrix)
	if string(m1) != string(m2) {
		t.Error("cache-served matrix differs from computed one")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct{ path, body string }{
		{"/v1/synth", `{"grid":"bogus"}`},
		{"/v1/synth", `{"grid":"4x5","objective":"nope"}`},
		{"/v1/synth", `{"grid":"4x5","unknown_field":1}`},
		{"/v1/synth", `{"grid":"100x100"}`},                                                                       // router cap
		{"/v1/synth", `{"grid":"4x5","iterations":2000000}`},                                                      // iteration cap
		{"/v1/synth", `{"grid":"4x5","restarts":1000}`},                                                           // restart cap
		{"/v1/matrix", `{"grid":"4x4","topos":["mesh","mesh","mesh","mesh","mesh","mesh","mesh","mesh","mesh"]}`}, // topo cap
		{"/v1/matrix", `{"grid":"4x5","patterns":["nosuch"]}`},
		{"/v1/matrix", `{"grid":"4x5","rates":[-1]}`},
		{"/v1/matrix", `{"grid":"4x5","topos":["ring"]}`},
		{"/v1/matrix", `{"grid":"4x5","fidelity":"warp"}`},
		{"/v1/matrix", `{"grid":"200x200"}`},                              // router cap
		{"/v1/matrix", `{"grid":"4x5","synth_iterations":2000000}`},       // iteration cap
		{"/v1/matrix", `{"grid":"4x5","patterns":["trace:file=/etc/x"]}`}, // trace is CLI-only
		{"/v1/synth", `{"grid":"4x5","iterations":-1}`},                   // negative budget
		{"/v1/synth", `{"grid":"4x5","energy_weight":-1}`},                // negative weight
		{"/v1/synth", `{"grid":"4x5","radix":-2}`},                        // negative radix
		{"/v1/matrix", `{"grid":"4x5","energy_weight":-1}`},               // negative weight
		{"/v1/synth", `{"grid":"4x5","robust_weight":-1}`},                // negative weight
		{"/v1/matrix", `{"grid":"4x5","robust_weight":-1}`},               // negative weight
		{"/v1/matrix", `{"grid":"4x5","faults":["nosuch"]}`},              // unknown schedule
		{"/v1/matrix", `{"grid":"4x5","faults":["klinks:k=abc"]}`},        // bad param
		{"/v1/matrix", `{"grid":"4x5","faults":["klinks:k=1","klinks:k=2","klinks:k=3","klinks:k=4","klinks:k=5","klinks:k=6","klinks:k=7","klinks:k=8","klinks:k=9","klinks:k=10","klinks:k=11","klinks:k=12","klinks:k=13","klinks:k=14","klinks:k=15","klinks:k=16","klinks:k=17"]}`}, // fault cap
		{"/v1/matrix", `not json`},
		// Unified-endpoint rejections: missing/unknown kind, bad
		// priority, out-of-range shards, typoed fields.
		{"/v1/jobs", `{"grid":"4x5"}`},                                // missing kind
		{"/v1/jobs", `{"kind":"paint","grid":"4x5"}`},                 // unknown kind
		{"/v1/jobs", `{"kind":"synth","grid":"4x5","priority":9000}`}, // priority range
		{"/v1/jobs", `{"kind":"matrix","grid":"4x5","shards":-1}`},    // negative shards
		{"/v1/jobs", `{"kind":"matrix","grid":"4x5","shards":100}`},   // shard cap
		{"/v1/jobs", `{"kind":"synth","grid":"4x5","unknown_field":1}`},
		{"/v1/jobs", `not json`},
		// Population knobs: population 1 is invalid, generations need a
		// population, caps hold, and the total population budget
		// (population x generations x iterations) is bounded even when
		// each knob individually passes its cap.
		{"/v1/synth", `{"grid":"4x5","population":1}`},
		{"/v1/synth", `{"grid":"4x5","population":100}`},
		{"/v1/synth", `{"grid":"4x5","generations":2}`},
		{"/v1/synth", `{"grid":"4x5","population":2,"generations":100}`},
		{"/v1/synth", `{"grid":"4x5","population":64,"generations":64,"iterations":1000000}`},
		{"/v1/matrix", `{"grid":"4x5","synth_population":1}`},
		{"/v1/matrix", `{"grid":"4x5","synth_generations":2}`},
		{"/v1/matrix", `{"grid":"4x5","synth_population":64,"synth_generations":64,"synth_iterations":1000000}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		decErr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400", c.path, c.body, resp.StatusCode)
			continue
		}
		if decErr != nil || env.Error.Code != "bad_request" || env.Error.Message == "" {
			t.Errorf("POST %s %s: error envelope %+v (decode err %v)", c.path, c.body, env, decErr)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
		t.Errorf("unknown job: status %d code %q, want 404 not_found", resp.StatusCode, env.Error.Code)
	}
}

// TestMatrixFaultAxisJob: a faults request runs the fault-free baseline
// plus each schedule as matrix-axis entries, with labeled curves and
// populated robustness columns.
func TestMatrixFaultAxisJob(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"kind":"matrix","grid":"3x3","patterns":["uniform"],"rates":[0.02],"fidelity":"smoke","faults":["krouters:k=1:seed=3:at=150"],"seed":9}`

	code, j := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	done := pollDone(t, ts.URL, j.ID)
	if done.State != StateDone {
		t.Fatalf("matrix job failed: %+v", done)
	}
	var r MatrixJobResult
	if err := json.Unmarshal(done.Result, &r); err != nil {
		t.Fatal(err)
	}
	if r.Stats.Cells != 2 {
		t.Fatalf("stats: %+v (want 2 cells: 1 pattern x 2 faults x 1 rate)", r.Stats)
	}
	if len(r.Matrix.Curves) != 2 {
		t.Fatalf("curves: %d, want 2 (baseline + krouters)", len(r.Matrix.Curves))
	}
	var sawClean, sawFaulted bool
	for _, c := range r.Matrix.Curves {
		switch c.Fault {
		case "none":
			sawClean = true
			if p := c.Points[0]; p.DroppedFlits != 0 || p.DeliveredFraction != 1 {
				t.Errorf("baseline curve carries fault damage: %+v", p)
			}
		case "krouters:at=150:k=1:seed=3":
			sawFaulted = true
			// A dead router makes 1/9 of the uniform destinations
			// unreachable: delivery must visibly degrade.
			if p := c.Points[0]; p.DeliveredFraction >= 1 {
				t.Errorf("faulted curve shows no degradation: %+v", p)
			}
		default:
			t.Errorf("unexpected fault label %q", c.Fault)
		}
	}
	if !sawClean || !sawFaulted {
		t.Fatalf("missing curve: clean=%v faulted=%v", sawClean, sawFaulted)
	}
}

// TestMatrixSeedDefault: an omitted seed must mean 42 — the
// netbench -matrix default — so bare HTTP and CLI runs share cache
// cells; an explicit 0 is honored.
func TestMatrixSeedDefault(t *testing.T) {
	req := MatrixRequest{Grid: "3x3"}
	p, err := req.plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.seed != 42 {
		t.Errorf("omitted seed = %d, want 42", p.seed)
	}
	zero := int64(0)
	req.Seed = &zero
	if p, err = req.plan(); err != nil || p.seed != 0 {
		t.Errorf("explicit zero seed = %d (err %v), want 0", p.seed, err)
	}
}

// TestCloseTerminatesQueuedJobs: after Close, every accepted job is in
// a terminal state — pollers never spin on a job that will not run.
func TestCloseTerminatesQueuedJobs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	j1, qerr := s.enqueue("block", 0, gatedRun(gate))
	if qerr != nil {
		t.Fatal("job 1 rejected:", qerr)
	}
	waitState(t, s, j1.id, StateRunning)
	j2, qerr := s.enqueue("noop", 0, noopRun)
	if qerr != nil {
		t.Fatal("job 2 rejected:", qerr)
	}
	close(gate)
	s.Close()
	s.mu.Lock()
	got := s.jobs[j2.id].state
	s.mu.Unlock()
	if !terminal(got) {
		t.Fatalf("queued job left in %q after Close", got)
	}
	// A closed server accepts nothing further.
	if _, qerr := s.enqueue("noop", 0, noopRun); qerr == nil {
		t.Error("closed server accepted a job")
	} else if qerr.code != "shutting_down" {
		t.Errorf("closed-server rejection code %q", qerr.code)
	}
}

// TestJobEviction: the registry stays bounded — finished jobs beyond
// MaxJobs are evicted oldest-first, queued/running jobs never are.
func TestJobEviction(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 8, MaxJobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		j, qerr := s.enqueue("noop", 0, noopRun)
		if qerr != nil {
			t.Fatalf("job %d rejected: %v", i, qerr)
		}
		waitState(t, s, j.id, StateDone)
	}
	s.mu.Lock()
	n := len(s.jobs)
	_, oldest := s.jobs["j000001"]
	_, newest := s.jobs["j000005"]
	s.mu.Unlock()
	if n > 3 {
		t.Errorf("registry holds %d jobs, cap 3", n)
	}
	if oldest {
		t.Error("oldest finished job not evicted")
	}
	if !newest {
		t.Error("newest job evicted")
	}
}

// TestQueueBounded: a 1-worker, depth-1 server sheds load with 503
// instead of buffering unbounded jobs.
func TestQueueBounded(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Saturate deterministically: a gated job occupies the single
	// worker, a second fills the single queue slot; the next POST must
	// shed with 503.
	gate := make(chan struct{})
	if _, qerr := s.enqueue("block", 0, gatedRun(gate)); qerr != nil {
		t.Fatal("first job rejected:", qerr)
	}
	waitState(t, s, "j000001", StateRunning)
	if _, qerr := s.enqueue("block", 0, gatedRun(gate)); qerr != nil {
		t.Fatal("second job rejected with a free queue slot:", qerr)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"synth","grid":"4x5","seed":11,"iterations":1000,"restarts":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "queue_full" {
		t.Errorf("POST against a full queue: status %d code %q, want 503 queue_full", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue_full response missing Retry-After")
	}
	close(gate)
	pollDone(t, ts.URL, "j000002")
	// With the gate open the queue drains and POSTs flow again.
	code, j := postReq(t, ts.URL+"/v1/jobs", `{"kind":"synth","grid":"4x5","seed":11,"iterations":1000,"restarts":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST after drain: status %d", code)
	}
	if v := pollDone(t, ts.URL, j.ID); v.State != StateDone {
		t.Fatalf("post-drain job: %+v", v)
	}

	// The jobs listing endpoint stays responsive and well-formed.
	resp2, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) == 0 {
		t.Error("jobs listing empty after accepted POSTs")
	}
}
