package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/expert"
	"netsmith/internal/fault"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
)

// ---- synth ----

// SynthRequest is the body of a {"kind":"synth"} job (and of the
// deprecated POST /v1/synth alias). Zero values select the paper
// defaults (radix 4, asymmetric, fixed 60000x4 search budget).
type SynthRequest struct {
	Grid         string  `json:"grid"`      // "RxC", e.g. "4x5"
	Class        string  `json:"class"`     // small | medium | large
	Objective    string  `json:"objective"` // latop | scop | shufopt
	Radix        int     `json:"radix,omitempty"`
	Symmetric    bool    `json:"symmetric,omitempty"`
	MaxDiameter  int     `json:"max_diameter,omitempty"`
	MinCutBW     float64 `json:"min_cut_bw,omitempty"`
	EnergyWeight float64 `json:"energy_weight,omitempty"`
	RobustWeight float64 `json:"robust_weight,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	Restarts     int     `json:"restarts,omitempty"`
	// Population >= 2 selects population-mode synthesis (evolution over
	// a pool of that many topologies); Generations is the number of
	// evolution rounds (default 8). See synth.Config.
	Population  int `json:"population,omitempty"`
	Generations int `json:"generations,omitempty"`
}

// SynthResult is a synth job's result payload.
type SynthResult struct {
	Topology    json.RawMessage `json:"topology"` // topo JSON (name, grid, links)
	Objective   float64         `json:"objective"`
	Bound       float64         `json:"bound"`
	Gap         float64         `json:"gap"`
	Optimal     bool            `json:"optimal"`
	EnergyProxy float64         `json:"energy_proxy,omitempty"`
	// CriticalLinks and Fragility are filled when the request priced
	// fragility (robust_weight > 0): single links whose loss disconnects
	// some pair, and the residual fragility score.
	CriticalLinks int     `json:"critical_links,omitempty"`
	Fragility     int     `json:"fragility,omitempty"`
	Links         int     `json:"links"`
	Diameter      int     `json:"diameter"`
	AvgHops       float64 `json:"avg_hops"`
}

func (req *SynthRequest) config() (synth.Config, error) {
	g, err := parseBoundedGrid(req.Grid)
	if err != nil {
		return synth.Config{}, err
	}
	if req.Iterations < 0 || req.Iterations > maxSynthIters {
		return synth.Config{}, fmt.Errorf("iterations %d outside [0, %d]", req.Iterations, maxSynthIters)
	}
	if req.Restarts < 0 || req.Restarts > maxSynthRestarts {
		return synth.Config{}, fmt.Errorf("restarts %d outside [0, %d]", req.Restarts, maxSynthRestarts)
	}
	if err := checkPopulation(req.Population, req.Generations, req.Iterations); err != nil {
		return synth.Config{}, err
	}
	// Statically invalid knobs must 400 at POST time, not fail the job
	// after consuming a queue slot.
	if req.Radix < 0 {
		return synth.Config{}, fmt.Errorf("negative radix %d", req.Radix)
	}
	if req.EnergyWeight < 0 {
		return synth.Config{}, fmt.Errorf("negative energy_weight %v", req.EnergyWeight)
	}
	if req.RobustWeight < 0 {
		return synth.Config{}, fmt.Errorf("negative robust_weight %v", req.RobustWeight)
	}
	if req.MaxDiameter < 0 || req.MinCutBW < 0 {
		return synth.Config{}, fmt.Errorf("negative constraint bound")
	}
	cl, err := layout.ParseClass(defaultStr(req.Class, "medium"))
	if err != nil {
		return synth.Config{}, err
	}
	cfg := synth.Config{
		Grid: g, Class: cl,
		Radix: req.Radix, Symmetric: req.Symmetric,
		MaxDiameter: req.MaxDiameter, MinCutBW: req.MinCutBW,
		EnergyWeight: req.EnergyWeight, RobustWeight: req.RobustWeight,
		Seed: req.Seed, Iterations: req.Iterations, Restarts: req.Restarts,
		Population: req.Population, Generations: req.Generations,
	}
	switch defaultStr(req.Objective, "latop") {
	case "latop":
		cfg.Objective = synth.LatOp
	case "scop":
		cfg.Objective = synth.SCOp
	case "shufopt":
		cfg.Objective = synth.Weighted
		cfg.Weights = traffic.Shuffle{N: g.N()}.WeightMatrix()
	default:
		return synth.Config{}, fmt.Errorf("unknown objective %q (want latop, scop or shufopt)", req.Objective)
	}
	return cfg, nil
}

func synthResult(res *synth.Result) (*SynthResult, error) {
	tj, err := json.Marshal(res.Topology)
	if err != nil {
		return nil, err
	}
	return &SynthResult{
		Topology:  tj,
		Objective: res.Objective, Bound: res.Bound, Gap: res.Gap,
		Optimal: res.Optimal, EnergyProxy: res.EnergyProxy,
		CriticalLinks: res.CriticalLinks, Fragility: res.Fragility,
		Links:    res.Topology.NumLinks(),
		Diameter: res.Topology.Diameter(),
		AvgHops:  res.Topology.AverageHops(),
	}, nil
}

// ExecuteSynth runs a synth request in-process against st, through the
// exact validation and cached-generation path the HTTP job runner
// uses. It backs the root-package Client's local mode, so local and
// remote execution cannot drift.
func ExecuteSynth(st *store.Store, req SynthRequest) (*SynthResult, bool, error) {
	cfg, err := req.config()
	if err != nil {
		return nil, false, err
	}
	res, hit, err := synth.CachedGenerate(st, cfg)
	if err != nil {
		return nil, false, err
	}
	payload, err := synthResult(res)
	return payload, hit, err
}

// ---- matrix ----

// MatrixRequest is the body of a {"kind":"matrix"} job (and of the
// deprecated POST /v1/matrix alias); it mirrors the netbench -matrix
// flags.
type MatrixRequest struct {
	Grid     string    `json:"grid"`               // "RxC"
	Class    string    `json:"class,omitempty"`    // synthesized-topology class
	Topos    []string  `json:"topos,omitempty"`    // "mesh" and/or "ns"; default mesh
	Patterns []string  `json:"patterns,omitempty"` // registry args; default uniform
	Rates    []float64 `json:"rates,omitempty"`    // default 0.02, 0.08, 0.14
	// Fidelity selects the cycle budgets: smoke, fast (default) or
	// full.
	Fidelity string `json:"fidelity,omitempty"`
	// Seed is the matrix base seed. Omitted means 42 — the
	// netbench -matrix default, so a bare HTTP request and a bare CLI
	// run share cache cells (an explicit 0 is honored as 0).
	Seed         *int64  `json:"seed,omitempty"`
	Energy       bool    `json:"energy,omitempty"`
	EnergyWeight float64 `json:"energy_weight,omitempty"`
	RobustWeight float64 `json:"robust_weight,omitempty"`
	// Faults lists fault-schedule registry args ("name" or
	// "name:key=val:..."), each added as a matrix axis entry alongside
	// the always-present fault-free baseline.
	Faults []string `json:"faults,omitempty"`
	// SynthIterations bounds "ns" topology synthesis (default 20000,
	// fixed 4 restarts; deterministic, hence cacheable).
	SynthIterations int `json:"synth_iterations,omitempty"`
	// SynthPopulation/SynthGenerations switch "ns" synthesis to
	// population mode (still deterministic and cacheable). Like the
	// synthesis budget, they are part of the ns topology's identity, so
	// CLI and HTTP runs must agree on them to share matrix cells.
	SynthPopulation  int `json:"synth_population,omitempty"`
	SynthGenerations int `json:"synth_generations,omitempty"`
	// Shards, when > 1, splits the matrix into that many shard leases
	// for cluster workers instead of executing locally (clamped to the
	// cell count; capped at 32). 0 defers to the server's configured
	// default (Config.ClusterShards); 1 forces local execution.
	Shards int `json:"shards,omitempty"`
}

// MatrixJobResult is a matrix job's result payload: the matrix itself
// plus the cache accounting the byte-identical JSON emission omits.
type MatrixJobResult struct {
	Matrix *sim.MatrixResult `json:"matrix"`
	// Stats reports the simulated/cached/persist-failure split (see
	// sim.MatrixStats; a nonzero StoreErrors means the matrix is
	// complete but some cells will re-simulate on the next request).
	// For cluster jobs Computed aggregates across shard workers and
	// CacheHits is the complement, so the split still sums to Cells.
	Stats         sim.MatrixStats `json:"stats"`
	SynthCacheHit bool            `json:"synth_cache_hit"` // true when no ns topology was searched
	// Shards is the shard count the job executed with (0 for a plain
	// local run).
	Shards int `json:"shards,omitempty"`
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// Request size caps. The bounded queue sheds load across jobs; these
// bound the work inside one accepted job, so a single well-formed POST
// cannot monopolize a worker for hours or exhaust memory.
const (
	maxGridRouters   = 1024
	maxSynthIters    = 1_000_000
	maxSynthRestarts = 64
	maxTopos         = 8
	maxRatePoints    = 64
	maxPatterns      = 64
	maxFaults        = 16
	maxShards        = 32
	maxPopulation    = 64
	maxGenerations   = 64
)

// checkPopulation validates population-mode knobs, including the total
// annealing budget population * (1 + generations) * iterations — a
// population job must not exceed what the restart caps already allow
// (maxSynthIters * maxSynthRestarts steps).
func checkPopulation(population, generations, iterations int) error {
	if population < 0 || population == 1 || population > maxPopulation {
		return fmt.Errorf("population %d outside {0, 2..%d}", population, maxPopulation)
	}
	if generations < 0 || generations > maxGenerations {
		return fmt.Errorf("generations %d outside [0, %d]", generations, maxGenerations)
	}
	if generations > 0 && population == 0 {
		return fmt.Errorf("generations %d needs population >= 2", generations)
	}
	if population > 0 {
		iters, gens := iterations, generations
		if iters == 0 {
			iters = 60000 // synth.Config default
		}
		if gens == 0 {
			gens = 8 // synth.Config default
		}
		if total := int64(population) * int64(1+gens) * int64(iters); total > int64(maxSynthIters)*int64(maxSynthRestarts) {
			return fmt.Errorf("population budget %d annealing steps over cap %d", total, int64(maxSynthIters)*int64(maxSynthRestarts))
		}
	}
	return nil
}

// parseBoundedGrid is layout.ParseGrid plus the router-count cap.
func parseBoundedGrid(s string) (*layout.Grid, error) {
	g, err := layout.ParseGrid(s)
	if err != nil {
		return nil, err
	}
	if g.N() > maxGridRouters {
		return nil, fmt.Errorf("grid %q has %d routers (cap %d)", s, g.N(), maxGridRouters)
	}
	return g, nil
}

// matrixPlan is the validated, executable form of a MatrixRequest.
type matrixPlan struct {
	grid      *layout.Grid
	class     layout.Class
	topos     []string
	factories []sim.PatternFactory
	faults    []sim.FaultFactory
	rates     []float64
	base      sim.Config
	seed      int64
	ew        float64
	rw        float64
	synthIter int
	synthPop  int
	synthGens int
}

// cellCount is the matrix cell total the plan will resolve — the
// denominator of job progress and the clamp on shard counts.
func (p *matrixPlan) cellCount() int {
	nF := len(p.faults)
	if nF == 0 {
		nF = 1
	}
	return len(p.topos) * len(p.factories) * nF * len(p.rates)
}

func (req *MatrixRequest) plan() (*matrixPlan, error) {
	g, err := parseBoundedGrid(req.Grid)
	if err != nil {
		return nil, err
	}
	cl, err := layout.ParseClass(defaultStr(req.Class, "medium"))
	if err != nil {
		return nil, err
	}
	// Defaulting matters for cache sharing: a bare request must key its
	// cells exactly like a bare `netbench -matrix` run (seed 42).
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	p := &matrixPlan{grid: g, class: cl, seed: seed, ew: req.EnergyWeight, rw: req.RobustWeight}
	p.topos = req.Topos
	if len(p.topos) == 0 {
		p.topos = []string{"mesh"}
	}
	if len(p.topos) > maxTopos {
		return nil, fmt.Errorf("%d topologies over cap %d", len(p.topos), maxTopos)
	}
	for _, name := range p.topos {
		if name != "mesh" && name != "ns" {
			return nil, fmt.Errorf("unknown topology %q (want mesh or ns)", name)
		}
	}
	patterns := req.Patterns
	if len(patterns) == 0 {
		patterns = []string{"uniform"}
	}
	if len(patterns) > maxPatterns {
		return nil, fmt.Errorf("%d patterns over cap %d", len(patterns), maxPatterns)
	}
	env := traffic.GridEnv(g)
	reg := traffic.Default()
	for _, arg := range patterns {
		name, params, err := traffic.ParsePatternArg(strings.TrimSpace(arg))
		if err != nil {
			return nil, err
		}
		// Trace replay is CLI-only: over HTTP it would make the server
		// open client-chosen local file paths, and its cache key would
		// follow the file name, not the file content (netbench hashes
		// the trace bytes into the key; a path-keyed cell would serve
		// stale results after the file changes).
		if name == "trace" {
			return nil, fmt.Errorf("trace replay is not available over the API; use netbench -matrix -trace")
		}
		if _, err := reg.Build(name, env, params); err != nil {
			return nil, err
		}
		p.factories = append(p.factories, sim.RegistryFactory(reg, name, env, params))
	}
	p.rates = req.Rates
	if len(p.rates) == 0 {
		p.rates = []float64{0.02, 0.08, 0.14}
	}
	if len(p.rates) > maxRatePoints {
		return nil, fmt.Errorf("%d rates over cap %d", len(p.rates), maxRatePoints)
	}
	for _, r := range p.rates {
		if r <= 0 {
			return nil, fmt.Errorf("bad rate %g", r)
		}
	}
	// The shared presets keep the cycle budgets — part of every cell's
	// cache key — in lockstep with netbench -matrix.
	if err := sim.ApplyFidelity(&p.base, defaultStr(req.Fidelity, sim.FidelityFast)); err != nil {
		return nil, err
	}
	p.base.CollectEnergy = req.Energy
	if req.EnergyWeight < 0 {
		return nil, fmt.Errorf("negative energy_weight %v", req.EnergyWeight)
	}
	if req.RobustWeight < 0 {
		return nil, fmt.Errorf("negative robust_weight %v", req.RobustWeight)
	}
	if len(req.Faults) > maxFaults {
		return nil, fmt.Errorf("%d faults over cap %d", len(req.Faults), maxFaults)
	}
	if len(req.Faults) > 0 {
		// Same axis construction as netbench -faults: the fault-free
		// baseline leads, schedules are validated eagerly against the
		// grid's mesh, and duplicate canonical specs collapse.
		freg := fault.Default()
		mesh := expert.Mesh(g)
		p.faults = []sim.FaultFactory{sim.FaultRegistryFactory(freg, "none", nil)}
		seen := map[string]bool{p.faults[0].Name: true}
		for _, arg := range req.Faults {
			name, params, err := fault.ParseScheduleArg(strings.TrimSpace(arg))
			if err != nil {
				return nil, err
			}
			if _, err := freg.Build(name, mesh, params); err != nil {
				return nil, err
			}
			f := sim.FaultRegistryFactory(freg, name, params)
			if seen[f.Name] {
				continue
			}
			seen[f.Name] = true
			p.faults = append(p.faults, f)
		}
	}
	p.synthIter = req.SynthIterations
	if p.synthIter == 0 {
		// Match netbench -matrix exactly (fast: 20000, -full: 80000) —
		// the synthesis budget decides the ns topology, whose
		// fingerprint anchors every cell key, so a different default
		// here would stop "full" CLI and HTTP runs from sharing cells.
		p.synthIter = 20000
		if defaultStr(req.Fidelity, sim.FidelityFast) == sim.FidelityFull {
			p.synthIter = 80000
		}
	}
	if p.synthIter < 0 || p.synthIter > maxSynthIters {
		return nil, fmt.Errorf("synth_iterations %d outside [0, %d]", p.synthIter, maxSynthIters)
	}
	if err := checkPopulation(req.SynthPopulation, req.SynthGenerations, p.synthIter); err != nil {
		return nil, err
	}
	p.synthPop, p.synthGens = req.SynthPopulation, req.SynthGenerations
	if req.Shards < 0 || req.Shards > maxShards {
		return nil, fmt.Errorf("shards %d outside [0, %d]", req.Shards, maxShards)
	}
	return p, nil
}

// run builds the setups through the builder shared with
// netbench -matrix (exp.MatrixSetups: mesh expert-routed, ns via
// cached synthesis) and runs the store-backed matrix. A zero shard
// executes (or merges) the full matrix; an enabled shard simulates
// only owned cells and surfaces sim.IncompleteError when other shards'
// cells are still pending — for a cluster worker that error IS
// success. synthAllCached reports whether every "ns" topology came
// from the store.
func (p *matrixPlan) run(ctx context.Context, st *store.Store, shard sim.Shard, progress func(done, total int)) (res *sim.MatrixResult, synthAllCached bool, err error) {
	setups, synthAllCached, err := exp.MatrixSetups(p.topos, p.grid, p.class, st, p.ew, p.rw, p.seed, p.synthIter, p.synthPop, p.synthGens)
	if err != nil {
		return nil, false, err
	}
	res, err = sim.RunMatrix(sim.MatrixConfig{
		Setups: setups, Patterns: p.factories, Faults: p.faults,
		Rates: p.rates,
		Base:  p.base, Seed: p.seed, Store: st,
		Shard: shard, Ctx: ctx, Progress: progress,
	})
	return res, synthAllCached, err
}

// ExecuteMatrix runs a matrix request in-process against st (full
// matrix, no sharding), through the same validation and execution path
// as the HTTP job runner. ctx cancels with cell granularity; progress
// may be nil. It backs the root-package Client's local mode.
func ExecuteMatrix(ctx context.Context, st *store.Store, req MatrixRequest, progress func(done, total int)) (*MatrixJobResult, bool, error) {
	plan, err := req.plan()
	if err != nil {
		return nil, false, err
	}
	res, synthCached, err := plan.run(ctx, st, sim.Shard{}, progress)
	if err != nil {
		return nil, false, err
	}
	out := &MatrixJobResult{Matrix: res, Stats: res.Stats, SynthCacheHit: synthCached}
	return out, res.Stats.Computed == 0 && synthCached, nil
}

// ---- pareto ----

// maxParetoPoints caps the sweep's weight grid (|energy_weights| x
// |robust_weights|): each point is a full synthesis plus a matrix row.
const maxParetoPoints = 64

// ParetoRequest is the body of a {"kind":"pareto"} job (and of POST
// /v1/pareto). It sweeps the synthesis weight grid, measures every
// candidate, and returns the dominated-point-free frontier with
// fleet-level energy accounting. Synthesis knobs default exactly like
// matrix "ns" topologies (seed 42, 20000 iterations fast / 80000 full),
// so a pareto sweep and a matrix run over the same store share
// synthesis results and cells.
type ParetoRequest struct {
	Grid  string `json:"grid"`            // "RxC"
	Class string `json:"class,omitempty"` // small | medium | large
	// EnergyWeights/RobustWeights span the sweep grid; empty defaults to
	// exp.DefaultEnergyWeights and {0}.
	EnergyWeights []float64 `json:"energy_weights,omitempty"`
	RobustWeights []float64 `json:"robust_weights,omitempty"`
	// Rates is the measured offered-rate grid (positive, strictly
	// ascending; default exp.DefaultParetoRates).
	Rates []float64 `json:"rates,omitempty"`
	// Fidelity selects the cycle budgets: smoke, fast (default) or full.
	Fidelity string `json:"fidelity,omitempty"`
	// Seed is the synthesis/matrix base seed; omitted means 42 (matrix
	// parity — an explicit 0 is honored as 0).
	Seed *int64 `json:"seed,omitempty"`
	// SynthIterations bounds each point's synthesis (default 20000, or
	// 80000 at full fidelity — matrix "ns" parity).
	SynthIterations  int `json:"synth_iterations,omitempty"`
	SynthPopulation  int `json:"synth_population,omitempty"`
	SynthGenerations int `json:"synth_generations,omitempty"`
	// Shards, when > 1, splits the sweep points into cluster leases
	// (clamped to the point count; capped at 32). 0 defers to the
	// server default; 1 forces local execution.
	Shards int `json:"shards,omitempty"`
}

// ParetoJobResult is a pareto job's result payload: the frontier plus
// the run's cache accounting (excluded from the cached artifact).
type ParetoJobResult struct {
	Frontier *exp.Frontier   `json:"frontier"`
	Stats    exp.ParetoStats `json:"stats"`
	// Shards is the shard count the job executed with (0 for a plain
	// local run).
	Shards int `json:"shards,omitempty"`
}

// paretoPlan is the validated, executable form of a ParetoRequest.
type paretoPlan struct {
	cfg    exp.ParetoConfig
	points int // resolved weight-grid size
}

// units is the job's progress denominator (sweep units: one per
// synthesis point plus an equal measurement share).
func (p *paretoPlan) units() int { return 2 * p.points }

func (req *ParetoRequest) plan() (*paretoPlan, error) {
	g, err := parseBoundedGrid(req.Grid)
	if err != nil {
		return nil, err
	}
	cl, err := layout.ParseClass(defaultStr(req.Class, "medium"))
	if err != nil {
		return nil, err
	}
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	fidelity := defaultStr(req.Fidelity, sim.FidelityFast)
	// Matrix "ns" parity: the synthesis budget decides each candidate
	// topology, whose fingerprint anchors its cells, so pareto and
	// matrix front ends must agree on the default or stop sharing work.
	synthIter := req.SynthIterations
	if synthIter == 0 {
		synthIter = 20000
		if fidelity == sim.FidelityFull {
			synthIter = 80000
		}
	}
	if synthIter < 0 || synthIter > maxSynthIters {
		return nil, fmt.Errorf("synth_iterations %d outside [0, %d]", synthIter, maxSynthIters)
	}
	if err := checkPopulation(req.SynthPopulation, req.SynthGenerations, synthIter); err != nil {
		return nil, err
	}
	if len(req.Rates) > maxRatePoints {
		return nil, fmt.Errorf("%d rates over cap %d", len(req.Rates), maxRatePoints)
	}
	if req.Shards < 0 || req.Shards > maxShards {
		return nil, fmt.Errorf("shards %d outside [0, %d]", req.Shards, maxShards)
	}
	cfg := exp.ParetoConfig{
		Base:          synth.MatrixNSConfig(g, cl, 0, 0, seed, synthIter, req.SynthPopulation, req.SynthGenerations),
		EnergyWeights: req.EnergyWeights,
		RobustWeights: req.RobustWeights,
		Rates:         req.Rates,
		Fidelity:      fidelity,
	}
	// Points validates the grids, rates and fidelity through the exact
	// normalization ParetoSweep will apply — statically invalid knobs
	// 400 at POST time instead of failing the job in the queue.
	n, err := cfg.Points()
	if err != nil {
		return nil, err
	}
	if n > maxParetoPoints {
		return nil, fmt.Errorf("%d sweep points over cap %d", n, maxParetoPoints)
	}
	return &paretoPlan{cfg: cfg, points: n}, nil
}

// run executes the sweep (or one shard of it) against st.
func (p *paretoPlan) run(ctx context.Context, st *store.Store, shard sim.Shard, progress func(done, total int)) (*exp.Frontier, error) {
	cfg := p.cfg
	cfg.Store, cfg.Ctx, cfg.Progress, cfg.Shard = st, ctx, progress, shard
	return exp.ParetoSweep(cfg)
}

// shardRunner adapts the plan to the cluster lease loop.
func (p *paretoPlan) shardRunner() shardRunner {
	return func(ctx context.Context, st *store.Store, shard sim.Shard, progress func(done, total int)) (*shardReport, error) {
		fr, err := p.run(ctx, st, shard, progress)
		return paretoShardOutcome(fr, err)
	}
}

// shardRunner adapts the matrix plan to the same lease loop.
func (p *matrixPlan) shardRunner() shardRunner {
	return func(ctx context.Context, st *store.Store, shard sim.Shard, progress func(done, total int)) (*shardReport, error) {
		res, synthCached, err := p.run(ctx, st, shard, progress)
		stats, ok := shardOutcome(res, err)
		if !ok {
			return nil, err
		}
		return &shardReport{stats: stats, synthCached: synthCached}, nil
	}
}

// paretoCacheHit reports whether a sweep did no new work: the frontier
// itself was cached, or every synthesis and every cell hit the store.
func paretoCacheHit(st exp.ParetoStats) bool {
	return st.FrontierCached || (st.Synthesized == 0 && st.CellsComputed == 0)
}

// ExecutePareto runs a pareto request in-process against st (full
// sweep, no sharding), through the same validation and execution path
// as the HTTP job runner. It backs the root-package Client's local
// mode, so served and in-process frontiers are byte-identical.
func ExecutePareto(ctx context.Context, st *store.Store, req ParetoRequest, progress func(done, total int)) (*ParetoJobResult, bool, error) {
	plan, err := req.plan()
	if err != nil {
		return nil, false, err
	}
	fr, err := plan.run(ctx, st, sim.Shard{}, progress)
	if err != nil {
		return nil, false, err
	}
	out := &ParetoJobResult{Frontier: fr, Stats: fr.Stats}
	return out, paretoCacheHit(fr.Stats), nil
}

// ---- job-creating handlers ----

func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return nil, false
	}
	return body, true
}

// handlePostJob is POST /v1/jobs: one tagged body for every job kind —
// {"kind":"synth"|"matrix", "priority":N, ...kind-specific fields}.
func (s *Server) handlePostJob(w http.ResponseWriter, r *http.Request) {
	if !s.allowClient(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	kindRaw, ok := fields["kind"]
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_request", `missing "kind" (want "synth", "matrix" or "pareto")`)
		return
	}
	var kind string
	if err := json.Unmarshal(kindRaw, &kind); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad kind: %v", err)
		return
	}
	priority := 0
	if pRaw, ok := fields["priority"]; ok {
		if err := json.Unmarshal(pRaw, &priority); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad priority: %v", err)
			return
		}
		if priority < -100 || priority > 100 {
			writeError(w, http.StatusBadRequest, "bad_request", "priority %d outside [-100, 100]", priority)
			return
		}
	}
	// The rest of the envelope is the kind-specific request, decoded
	// strictly so typos fail loudly instead of silently running a
	// default job.
	delete(fields, "kind")
	delete(fields, "priority")
	rest, err := json.Marshal(fields)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	switch kind {
	case "synth":
		var req SynthRequest
		if err := decodeStrict(rest, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad synth request: %v", err)
			return
		}
		s.acceptSynth(w, req, priority)
	case "matrix":
		var req MatrixRequest
		if err := decodeStrict(rest, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad matrix request: %v", err)
			return
		}
		s.acceptMatrix(w, req, priority)
	case "pareto":
		var req ParetoRequest
		if err := decodeStrict(rest, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad pareto request: %v", err)
			return
		}
		s.acceptPareto(w, req, priority)
	default:
		writeError(w, http.StatusBadRequest, "bad_request", `unknown kind %q (want "synth", "matrix" or "pareto")`, kind)
	}
}

// handleParetoPost is POST /v1/pareto: a first-class single-kind
// entrypoint (priority 0) over the unified job path.
func (s *Server) handleParetoPost(w http.ResponseWriter, r *http.Request) {
	if !s.allowClient(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req ParetoRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	s.acceptPareto(w, req, 0)
}

// handleSynthAlias keeps the pre-v1-jobs POST /v1/synth surface alive
// as a thin shim over the unified path (priority 0).
func (s *Server) handleSynthAlias(w http.ResponseWriter, r *http.Request) {
	if !s.allowClient(w, r) {
		return
	}
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/jobs>; rel="successor-version"`)
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req SynthRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	s.acceptSynth(w, req, 0)
}

// handleMatrixAlias is the deprecated POST /v1/matrix shim.
func (s *Server) handleMatrixAlias(w http.ResponseWriter, r *http.Request) {
	if !s.allowClient(w, r) {
		return
	}
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/jobs>; rel="successor-version"`)
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req MatrixRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	s.acceptMatrix(w, req, 0)
}

func (s *Server) acceptSynth(w http.ResponseWriter, req SynthRequest, priority int) {
	cfg, err := req.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	j, qerr := s.enqueue("synth", priority, func(ctx context.Context, _ *job) (any, bool, error) {
		// Synthesis has no internal cancellation points; honor a
		// cancel that lands while the job waits in the queue.
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		res, hit, err := synth.CachedGenerate(s.cfg.Store, cfg)
		if err != nil {
			return nil, false, err
		}
		s.noteSynth(hit)
		payload, err := synthResult(res)
		return payload, hit, err
	})
	if qerr != nil {
		writeAPIError(w, qerr)
		return
	}
	s.mu.Lock()
	v := s.view(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) acceptMatrix(w http.ResponseWriter, req MatrixRequest, priority int) {
	plan, err := req.plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	cells := plan.cellCount()
	shards := req.Shards
	if shards == 0 {
		shards = s.cfg.ClusterShards
	}
	if shards > cells {
		shards = cells // a lease with zero owned cells is pure overhead
	}
	var run runFunc
	if shards > 1 {
		// Canonical re-marshal (not the client's raw bytes) so every
		// worker decodes exactly the fields the coordinator validated.
		reqJSON, merr := json.Marshal(req)
		if merr != nil {
			writeError(w, http.StatusInternalServerError, "internal", "%v", merr)
			return
		}
		run = s.clusterMatrixRun(plan, reqJSON, shards)
	} else {
		run = s.localMatrixRun(plan)
	}
	j, qerr := s.enqueue("matrix", priority, run)
	if qerr != nil {
		writeAPIError(w, qerr)
		return
	}
	s.setProgress(j, 0, cells)
	s.mu.Lock()
	v := s.view(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) acceptPareto(w http.ResponseWriter, req ParetoRequest, priority int) {
	plan, err := req.plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	shards := req.Shards
	if shards == 0 {
		shards = s.cfg.ClusterShards
	}
	if shards > plan.points {
		shards = plan.points // a lease owning zero sweep points is pure overhead
	}
	var run runFunc
	if shards > 1 {
		// Canonical re-marshal (not the client's raw bytes) so every
		// worker decodes exactly the fields the coordinator validated.
		reqJSON, merr := json.Marshal(req)
		if merr != nil {
			writeError(w, http.StatusInternalServerError, "internal", "%v", merr)
			return
		}
		run = s.clusterParetoRun(plan, reqJSON, shards)
	} else {
		run = s.localParetoRun(plan)
	}
	j, qerr := s.enqueue("pareto", priority, run)
	if qerr != nil {
		writeAPIError(w, qerr)
		return
	}
	s.setProgress(j, 0, plan.units())
	s.mu.Lock()
	v := s.view(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}

// localParetoRun executes the whole sweep in-process (the single-node
// path).
func (s *Server) localParetoRun(plan *paretoPlan) runFunc {
	return func(ctx context.Context, j *job) (any, bool, error) {
		start := time.Now()
		fr, err := plan.run(ctx, s.cfg.Store, sim.Shard{}, func(done, total int) {
			s.setProgress(j, done, total)
		})
		if err != nil {
			return nil, false, err
		}
		s.notePareto(fr, fr.Stats, time.Since(start))
		out := ParetoJobResult{Frontier: fr, Stats: fr.Stats}
		return out, paretoCacheHit(fr.Stats), nil
	}
}

// localMatrixRun executes the whole matrix in-process (the
// single-node path).
func (s *Server) localMatrixRun(plan *matrixPlan) runFunc {
	return func(ctx context.Context, j *job) (any, bool, error) {
		start := time.Now()
		res, synthCached, err := plan.run(ctx, s.cfg.Store, sim.Shard{}, func(done, total int) {
			s.setProgress(j, done, total)
		})
		if err != nil {
			return nil, false, err
		}
		s.noteMatrix(res.Stats, time.Since(start))
		out := MatrixJobResult{Matrix: res, Stats: res.Stats, SynthCacheHit: synthCached}
		return out, res.Stats.Computed == 0 && synthCached, nil
	}
}
