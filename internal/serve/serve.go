// Package serve exposes topology synthesis and scenario-matrix
// simulation as an HTTP API with async job semantics, backed by the
// content-addressed result store. POST /v1/synth and POST /v1/matrix
// validate the request, enqueue a job on a bounded worker pool and
// return its ID; GET /v1/jobs/{id} polls status and, once done, the
// result. Because every unit of work is content-addressed (synthesis
// runs by config+seed, matrix cells by their canonical input hash),
// repeating a request re-simulates nothing: the job completes from the
// store in milliseconds and reports cache_hit — the "serve heavy
// repeated load at near-zero marginal cost" move the ROADMAP asks for.
//
// The package is transport only. All semantics live in internal/synth
// (CachedGenerate), internal/sim (store-backed RunMatrix) and
// internal/store; the server adds request validation, the job registry
// and the pool.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/expert"
	"netsmith/internal/fault"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/synth"
	"netsmith/internal/traffic"
)

// Config parameterizes a server.
type Config struct {
	// Store is the content-addressed result cache; required.
	Store *store.Store
	// Workers is the job pool size (default 2): at most this many
	// synthesis/matrix jobs execute concurrently. Each matrix job's
	// cells additionally fan out on the RunMatrix worker pool.
	Workers int
	// QueueDepth bounds the pending-job queue (default 32). A full
	// queue rejects new POSTs with 503 rather than buffering unbounded
	// work.
	QueueDepth int
	// MaxJobs bounds the job registry (default 1000). When a new job
	// would exceed it, the oldest finished jobs are evicted (their
	// results live on in the store; polling an evicted ID returns 404).
	// Queued and running jobs are never evicted.
	MaxJobs int
	// MaxResultBytes bounds the total marshaled result bytes retained
	// across finished jobs (default 64 MiB) — count-based eviction
	// alone would let a few huge matrix results accumulate multi-GB
	// memory. Over the cap, oldest finished jobs are evicted; their
	// results remain reproducible from the store.
	MaxResultBytes int
}

// Job statuses.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// job is the registry entry; mutable fields are guarded by Server.mu.
type job struct {
	id       string
	seq      int    // creation order (authoritative; IDs are display only)
	finSeq   int    // finish order (eviction spares the newest-finished)
	kind     string // "synth" | "matrix"
	status   string
	cacheHit bool
	err      string
	result   json.RawMessage
	created  time.Time
	started  time.Time
	finished time.Time
	run      func() (result any, cacheHit bool, err error)
}

// JobView is the wire form of a job.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	// CacheHit reports that the job's entire result came from the
	// store: no synthesis search, no simulated cells.
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	// ElapsedMS is the execution time (0 until started; queued wait
	// excluded).
	ElapsedMS int64           `json:"elapsed_ms"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Server is the HTTP front end. Create with New, mount Handler, and
// Close when done.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu          sync.Mutex
	jobs        map[string]*job
	nextID      int
	nextFin     int
	closed      bool
	resultBytes int // total len(job.result) across finished jobs
}

// New validates the config and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = 1000
	}
	if cfg.MaxResultBytes == 0 {
		cfg.MaxResultBytes = 64 << 20
	}
	if cfg.Workers < 1 || cfg.QueueDepth < 1 || cfg.MaxJobs < 1 || cfg.MaxResultBytes < 1 {
		return nil, fmt.Errorf("serve: need at least 1 worker, queue slot, job slot and result byte")
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		queue: make(chan *job, cfg.QueueDepth),
		stop:  make(chan struct{}),
		jobs:  map[string]*job{},
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/synth", s.handleSynth)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP handler (mount on any server or mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Close rejects new jobs (POSTs answer 503) and stops the worker pool.
// In-flight jobs finish (a worker racing the stop signal may even pick
// up one last queued job); jobs still queued afterwards are marked
// failed so pollers terminate instead of spinning on a job that will
// never run.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			j.status = StatusFailed
			j.err = "server shut down before the job started"
			j.finished = time.Now()
			s.nextFin++
			j.finSeq = s.nextFin
			j.run = nil
			s.mu.Unlock()
		default:
			return
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.execute(j)
		}
	}
}

func (s *Server) execute(j *job) {
	s.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	s.mu.Unlock()

	result, cacheHit, err := runContained(j.run)
	// Marshal outside the lock: a big matrix result must not stall
	// every handler and enqueue behind one critical section.
	var b []byte
	if err == nil {
		b, err = json.Marshal(result)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	s.nextFin++
	j.finSeq = s.nextFin
	// The closure captures the whole validated request (pattern
	// factories, weight matrices); release it — the job never runs
	// again.
	j.run = nil
	if err != nil {
		j.status = StatusFailed
		j.err = err.Error()
		return
	}
	j.status = StatusDone
	j.cacheHit = cacheHit
	j.result = b
	s.resultBytes += len(b)
	s.evictLocked()
}

// overBudgetLocked reports whether the registry exceeds either bound.
func (s *Server) overBudgetLocked() bool {
	return len(s.jobs) >= s.cfg.MaxJobs || s.resultBytes > s.cfg.MaxResultBytes
}

// evictLocked keeps the registry within MaxJobs and MaxResultBytes by
// dropping the oldest-finished jobs (by finish sequence, not creation
// order or ID string: a slow early job that just completed must not be
// the first evicted). The most recently finished job is always
// retained so a client gets at least one poll at its result. Caller
// holds s.mu.
func (s *Server) evictLocked() {
	if !s.overBudgetLocked() {
		return
	}
	finished := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.status == StatusDone || j.status == StatusFailed {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].finSeq < finished[k].finSeq })
	for i, j := range finished {
		if !s.overBudgetLocked() || i == len(finished)-1 {
			return
		}
		s.resultBytes -= len(j.result)
		delete(s.jobs, j.id)
	}
}

// runContained executes a job function, converting a panic anywhere in
// the synthesis/simulation stack into a failed job instead of a dead
// server (workers share the process with every other job and the
// listener).
func runContained(run func() (any, bool, error)) (result any, cacheHit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, cacheHit = nil, false
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	return run()
}

// enqueue registers the job and hands it to the pool; a full queue or
// a closed server is the caller's 503. Registration and the
// (non-blocking) queue send happen under one critical section, so
// Close — which flips closed under the same mutex before draining —
// can never leave a job stranded in the queue with nobody to run it.
func (s *Server) enqueue(kind string, run func() (any, bool, error)) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server shutting down")
	}
	s.evictLocked()
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("j%06d", s.nextID),
		seq:    s.nextID,
		kind:   kind,
		status: StatusQueued, created: time.Now(),
		run: run,
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		return j, nil
	default:
		return nil, fmt.Errorf("job queue full (%d pending)", s.cfg.QueueDepth)
	}
}

func (s *Server) view(j *job, withResult bool) JobView {
	v := JobView{
		ID: j.id, Kind: j.kind, Status: j.status,
		CacheHit: j.cacheHit, Error: j.err,
	}
	switch {
	case j.started.IsZero():
		// Never executed (still queued, or failed at shutdown).
	case !j.finished.IsZero():
		v.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	default:
		v.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, queued := len(s.jobs), len(s.queue)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   jobs,
		"queued": queued,
		"store":  s.cfg.Store.Dir(),
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var v JobView
	if ok {
		v = s.view(j, true)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	type seqView struct {
		seq  int
		view JobView
	}
	s.mu.Lock()
	entries := make([]seqView, 0, len(s.jobs))
	for _, j := range s.jobs {
		entries = append(entries, seqView{j.seq, s.view(j, false)})
	}
	s.mu.Unlock()
	// Deterministic creation-order listing (by sequence, not ID string:
	// the zero padding runs out past a million jobs).
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	views := make([]JobView, len(entries))
	for i, e := range entries {
		views[i] = e.view
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// ---- synth ----

// SynthRequest is the POST /v1/synth body. Zero values select the
// paper defaults (radix 4, asymmetric, fixed 60000x4 search budget).
type SynthRequest struct {
	Grid         string  `json:"grid"`      // "RxC", e.g. "4x5"
	Class        string  `json:"class"`     // small | medium | large
	Objective    string  `json:"objective"` // latop | scop | shufopt
	Radix        int     `json:"radix,omitempty"`
	Symmetric    bool    `json:"symmetric,omitempty"`
	MaxDiameter  int     `json:"max_diameter,omitempty"`
	MinCutBW     float64 `json:"min_cut_bw,omitempty"`
	EnergyWeight float64 `json:"energy_weight,omitempty"`
	RobustWeight float64 `json:"robust_weight,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	Restarts     int     `json:"restarts,omitempty"`
}

// SynthResult is a synth job's result payload.
type SynthResult struct {
	Topology    json.RawMessage `json:"topology"` // topo JSON (name, grid, links)
	Objective   float64         `json:"objective"`
	Bound       float64         `json:"bound"`
	Gap         float64         `json:"gap"`
	Optimal     bool            `json:"optimal"`
	EnergyProxy float64         `json:"energy_proxy,omitempty"`
	// CriticalLinks and Fragility are filled when the request priced
	// fragility (robust_weight > 0): single links whose loss disconnects
	// some pair, and the residual fragility score.
	CriticalLinks int     `json:"critical_links,omitempty"`
	Fragility     int     `json:"fragility,omitempty"`
	Links         int     `json:"links"`
	Diameter      int     `json:"diameter"`
	AvgHops       float64 `json:"avg_hops"`
}

func (req *SynthRequest) config() (synth.Config, error) {
	g, err := parseBoundedGrid(req.Grid)
	if err != nil {
		return synth.Config{}, err
	}
	if req.Iterations < 0 || req.Iterations > maxSynthIters {
		return synth.Config{}, fmt.Errorf("iterations %d outside [0, %d]", req.Iterations, maxSynthIters)
	}
	if req.Restarts < 0 || req.Restarts > maxSynthRestarts {
		return synth.Config{}, fmt.Errorf("restarts %d outside [0, %d]", req.Restarts, maxSynthRestarts)
	}
	// Statically invalid knobs must 400 at POST time, not fail the job
	// after consuming a queue slot.
	if req.Radix < 0 {
		return synth.Config{}, fmt.Errorf("negative radix %d", req.Radix)
	}
	if req.EnergyWeight < 0 {
		return synth.Config{}, fmt.Errorf("negative energy_weight %v", req.EnergyWeight)
	}
	if req.RobustWeight < 0 {
		return synth.Config{}, fmt.Errorf("negative robust_weight %v", req.RobustWeight)
	}
	if req.MaxDiameter < 0 || req.MinCutBW < 0 {
		return synth.Config{}, fmt.Errorf("negative constraint bound")
	}
	cl, err := layout.ParseClass(defaultStr(req.Class, "medium"))
	if err != nil {
		return synth.Config{}, err
	}
	cfg := synth.Config{
		Grid: g, Class: cl,
		Radix: req.Radix, Symmetric: req.Symmetric,
		MaxDiameter: req.MaxDiameter, MinCutBW: req.MinCutBW,
		EnergyWeight: req.EnergyWeight, RobustWeight: req.RobustWeight,
		Seed: req.Seed, Iterations: req.Iterations, Restarts: req.Restarts,
	}
	switch defaultStr(req.Objective, "latop") {
	case "latop":
		cfg.Objective = synth.LatOp
	case "scop":
		cfg.Objective = synth.SCOp
	case "shufopt":
		cfg.Objective = synth.Weighted
		cfg.Weights = traffic.Shuffle{N: g.N()}.WeightMatrix()
	default:
		return synth.Config{}, fmt.Errorf("unknown objective %q (want latop, scop or shufopt)", req.Objective)
	}
	return cfg, nil
}

func (s *Server) handleSynth(w http.ResponseWriter, r *http.Request) {
	var req SynthRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cfg, err := req.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, qerr := s.enqueue("synth", func() (any, bool, error) {
		res, hit, err := synth.CachedGenerate(s.cfg.Store, cfg)
		if err != nil {
			return nil, false, err
		}
		payload, err := synthResult(res)
		return payload, hit, err
	})
	if qerr != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", qerr)
		return
	}
	s.mu.Lock()
	v := s.view(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}

func synthResult(res *synth.Result) (any, error) {
	tj, err := json.Marshal(res.Topology)
	if err != nil {
		return nil, err
	}
	return SynthResult{
		Topology:  tj,
		Objective: res.Objective, Bound: res.Bound, Gap: res.Gap,
		Optimal: res.Optimal, EnergyProxy: res.EnergyProxy,
		CriticalLinks: res.CriticalLinks, Fragility: res.Fragility,
		Links:    res.Topology.NumLinks(),
		Diameter: res.Topology.Diameter(),
		AvgHops:  res.Topology.AverageHops(),
	}, nil
}

// ---- matrix ----

// MatrixRequest is the POST /v1/matrix body; it mirrors the
// netbench -matrix flags.
type MatrixRequest struct {
	Grid     string    `json:"grid"`               // "RxC"
	Class    string    `json:"class,omitempty"`    // synthesized-topology class
	Topos    []string  `json:"topos,omitempty"`    // "mesh" and/or "ns"; default mesh
	Patterns []string  `json:"patterns,omitempty"` // registry args; default uniform
	Rates    []float64 `json:"rates,omitempty"`    // default 0.02, 0.08, 0.14
	// Fidelity selects the cycle budgets: smoke, fast (default) or
	// full.
	Fidelity string `json:"fidelity,omitempty"`
	// Seed is the matrix base seed. Omitted means 42 — the
	// netbench -matrix default, so a bare HTTP request and a bare CLI
	// run share cache cells (an explicit 0 is honored as 0).
	Seed         *int64  `json:"seed,omitempty"`
	Energy       bool    `json:"energy,omitempty"`
	EnergyWeight float64 `json:"energy_weight,omitempty"`
	RobustWeight float64 `json:"robust_weight,omitempty"`
	// Faults lists fault-schedule registry args ("name" or
	// "name:key=val:..."), each added as a matrix axis entry alongside
	// the always-present fault-free baseline.
	Faults []string `json:"faults,omitempty"`
	// SynthIterations bounds "ns" topology synthesis (default 20000,
	// fixed 4 restarts; deterministic, hence cacheable).
	SynthIterations int `json:"synth_iterations,omitempty"`
}

// MatrixJobResult is a matrix job's result payload: the matrix itself
// plus the cache accounting the byte-identical JSON emission omits.
type MatrixJobResult struct {
	Matrix *sim.MatrixResult `json:"matrix"`
	// Stats reports the simulated/cached/persist-failure split (see
	// sim.MatrixStats; a nonzero StoreErrors means the matrix is
	// complete but some cells will re-simulate on the next request).
	Stats         sim.MatrixStats `json:"stats"`
	SynthCacheHit bool            `json:"synth_cache_hit"` // true when no ns topology was searched
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// Request size caps. The bounded queue sheds load across jobs; these
// bound the work inside one accepted job, so a single well-formed POST
// cannot monopolize a worker for hours or exhaust memory.
const (
	maxGridRouters   = 1024
	maxSynthIters    = 1_000_000
	maxSynthRestarts = 64
	maxTopos         = 8
	maxRatePoints    = 64
	maxPatterns      = 64
	maxFaults        = 16
)

// parseBoundedGrid is layout.ParseGrid plus the router-count cap.
func parseBoundedGrid(s string) (*layout.Grid, error) {
	g, err := layout.ParseGrid(s)
	if err != nil {
		return nil, err
	}
	if g.N() > maxGridRouters {
		return nil, fmt.Errorf("grid %q has %d routers (cap %d)", s, g.N(), maxGridRouters)
	}
	return g, nil
}

// matrixPlan is the validated, executable form of a MatrixRequest.
type matrixPlan struct {
	grid      *layout.Grid
	class     layout.Class
	topos     []string
	factories []sim.PatternFactory
	faults    []sim.FaultFactory
	rates     []float64
	base      sim.Config
	seed      int64
	ew        float64
	rw        float64
	synthIter int
}

func (req *MatrixRequest) plan() (*matrixPlan, error) {
	g, err := parseBoundedGrid(req.Grid)
	if err != nil {
		return nil, err
	}
	cl, err := layout.ParseClass(defaultStr(req.Class, "medium"))
	if err != nil {
		return nil, err
	}
	// Defaulting matters for cache sharing: a bare request must key its
	// cells exactly like a bare `netbench -matrix` run (seed 42).
	seed := int64(42)
	if req.Seed != nil {
		seed = *req.Seed
	}
	p := &matrixPlan{grid: g, class: cl, seed: seed, ew: req.EnergyWeight, rw: req.RobustWeight}
	p.topos = req.Topos
	if len(p.topos) == 0 {
		p.topos = []string{"mesh"}
	}
	if len(p.topos) > maxTopos {
		return nil, fmt.Errorf("%d topologies over cap %d", len(p.topos), maxTopos)
	}
	for _, name := range p.topos {
		if name != "mesh" && name != "ns" {
			return nil, fmt.Errorf("unknown topology %q (want mesh or ns)", name)
		}
	}
	patterns := req.Patterns
	if len(patterns) == 0 {
		patterns = []string{"uniform"}
	}
	if len(patterns) > maxPatterns {
		return nil, fmt.Errorf("%d patterns over cap %d", len(patterns), maxPatterns)
	}
	env := traffic.GridEnv(g)
	reg := traffic.Default()
	for _, arg := range patterns {
		name, params, err := traffic.ParsePatternArg(strings.TrimSpace(arg))
		if err != nil {
			return nil, err
		}
		// Trace replay is CLI-only: over HTTP it would make the server
		// open client-chosen local file paths, and its cache key would
		// follow the file name, not the file content (netbench hashes
		// the trace bytes into the key; a path-keyed cell would serve
		// stale results after the file changes).
		if name == "trace" {
			return nil, fmt.Errorf("trace replay is not available over the API; use netbench -matrix -trace")
		}
		if _, err := reg.Build(name, env, params); err != nil {
			return nil, err
		}
		p.factories = append(p.factories, sim.RegistryFactory(reg, name, env, params))
	}
	p.rates = req.Rates
	if len(p.rates) == 0 {
		p.rates = []float64{0.02, 0.08, 0.14}
	}
	if len(p.rates) > maxRatePoints {
		return nil, fmt.Errorf("%d rates over cap %d", len(p.rates), maxRatePoints)
	}
	for _, r := range p.rates {
		if r <= 0 {
			return nil, fmt.Errorf("bad rate %g", r)
		}
	}
	// The shared presets keep the cycle budgets — part of every cell's
	// cache key — in lockstep with netbench -matrix.
	if err := sim.ApplyFidelity(&p.base, defaultStr(req.Fidelity, sim.FidelityFast)); err != nil {
		return nil, err
	}
	p.base.CollectEnergy = req.Energy
	if req.EnergyWeight < 0 {
		return nil, fmt.Errorf("negative energy_weight %v", req.EnergyWeight)
	}
	if req.RobustWeight < 0 {
		return nil, fmt.Errorf("negative robust_weight %v", req.RobustWeight)
	}
	if len(req.Faults) > maxFaults {
		return nil, fmt.Errorf("%d faults over cap %d", len(req.Faults), maxFaults)
	}
	if len(req.Faults) > 0 {
		// Same axis construction as netbench -faults: the fault-free
		// baseline leads, schedules are validated eagerly against the
		// grid's mesh, and duplicate canonical specs collapse.
		freg := fault.Default()
		mesh := expert.Mesh(g)
		p.faults = []sim.FaultFactory{sim.FaultRegistryFactory(freg, "none", nil)}
		seen := map[string]bool{p.faults[0].Name: true}
		for _, arg := range req.Faults {
			name, params, err := fault.ParseScheduleArg(strings.TrimSpace(arg))
			if err != nil {
				return nil, err
			}
			if _, err := freg.Build(name, mesh, params); err != nil {
				return nil, err
			}
			f := sim.FaultRegistryFactory(freg, name, params)
			if seen[f.Name] {
				continue
			}
			seen[f.Name] = true
			p.faults = append(p.faults, f)
		}
	}
	p.synthIter = req.SynthIterations
	if p.synthIter == 0 {
		// Match netbench -matrix exactly (fast: 20000, -full: 80000) —
		// the synthesis budget decides the ns topology, whose
		// fingerprint anchors every cell key, so a different default
		// here would stop "full" CLI and HTTP runs from sharing cells.
		p.synthIter = 20000
		if defaultStr(req.Fidelity, sim.FidelityFast) == sim.FidelityFull {
			p.synthIter = 80000
		}
	}
	if p.synthIter < 0 || p.synthIter > maxSynthIters {
		return nil, fmt.Errorf("synth_iterations %d outside [0, %d]", p.synthIter, maxSynthIters)
	}
	return p, nil
}

// execute builds the setups through the builder shared with
// netbench -matrix (exp.MatrixSetups: mesh expert-routed, ns via
// cached synthesis) and runs the store-backed matrix.
func (p *matrixPlan) execute(st *store.Store) (any, bool, error) {
	setups, synthAllCached, err := exp.MatrixSetups(p.topos, p.grid, p.class, st, p.ew, p.rw, p.seed, p.synthIter)
	if err != nil {
		return nil, false, err
	}
	res, err := sim.RunMatrix(sim.MatrixConfig{
		Setups: setups, Patterns: p.factories, Faults: p.faults,
		Rates: p.rates,
		Base:  p.base, Seed: p.seed, Store: st,
	})
	if err != nil {
		return nil, false, err
	}
	out := MatrixJobResult{Matrix: res, Stats: res.Stats, SynthCacheHit: synthAllCached}
	cacheHit := res.Stats.Computed == 0 && synthAllCached
	return out, cacheHit, nil
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if !decodeBody(w, r, &req) {
		return
	}
	plan, err := req.plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, qerr := s.enqueue("matrix", func() (any, bool, error) {
		return plan.execute(s.cfg.Store)
	})
	if qerr != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", qerr)
		return
	}
	s.mu.Lock()
	v := s.view(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}
