// Package serve exposes topology synthesis and scenario-matrix
// simulation as an HTTP API with async job semantics, backed by the
// content-addressed result store, and scales it horizontally: one
// coordinator process accepts jobs through a unified /v1/jobs surface
// and splits matrix work into shard leases that any number of worker
// processes (RunWorker; `netsmith serve -worker`) claim, execute
// cache-first over the shared store, and report back. Because every
// unit of work is content-addressed (synthesis runs by config+seed,
// matrix cells by their canonical input hash), repeated requests
// re-simulate nothing, a killed worker's shard is safely re-stolen
// after its lease expires (finished cells are already in the store),
// and the coordinator's merged result is byte-identical to a
// single-process run.
//
// The v1 job surface:
//
//	POST   /v1/jobs             tagged body {"kind":"synth"|"matrix"|"pareto",...}
//	POST   /v1/pareto           Pareto-frontier sweep (first-class single-kind entrypoint)
//	GET    /v1/jobs             list (pagination ?limit=&after=, ?state=)
//	GET    /v1/jobs/{id}        poll one job
//	DELETE /v1/jobs/{id}        cancel (stops a running matrix within a cell)
//	GET    /v1/jobs/{id}/events SSE stream of job state/progress changes
//	GET    /metrics             Prometheus-style text metrics
//	GET    /healthz             liveness + queue summary
//	POST   /v1/synth, /v1/matrix   deprecated aliases of POST /v1/jobs
//
// Every error response uses one envelope: {"error":{"code","message"}}.
// Admission is priority-aware (negative-priority jobs shed first, with
// Retry-After) and per-client token-bucket rate limiting guards the
// POST surface.
//
// The package is transport and orchestration only. All simulation
// semantics live in internal/synth (CachedGenerate), internal/sim
// (store-backed, cancellable RunMatrix) and internal/store.
package serve

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"netsmith/internal/store"
)

// Config parameterizes a server.
type Config struct {
	// Store is the content-addressed result cache; required. Cluster
	// workers must point at the same directory (shared filesystem): it
	// is the data plane shard results travel through.
	Store *store.Store
	// Workers is the job pool size (default 2): at most this many
	// synthesis/matrix jobs execute concurrently. Each matrix job's
	// cells additionally fan out on the RunMatrix worker pool.
	Workers int
	// QueueDepth bounds the pending-job queue (default 32). A full
	// queue rejects new POSTs with 503 rather than buffering unbounded
	// work; above half depth, negative-priority jobs are shed early.
	QueueDepth int
	// MaxJobs bounds the job registry (default 1000). When a new job
	// would exceed it, the oldest finished jobs are evicted (their
	// results live on in the store; polling an evicted ID returns 404).
	// Queued and running jobs are never evicted.
	MaxJobs int
	// MaxResultBytes bounds the total marshaled result bytes retained
	// across finished jobs (default 64 MiB) — count-based eviction
	// alone would let a few huge matrix results accumulate multi-GB
	// memory. Over the cap, oldest finished jobs are evicted; their
	// results remain reproducible from the store.
	MaxResultBytes int

	// RatePerSec enables per-client token-bucket rate limiting of the
	// job-creating POST endpoints at this sustained rate (requests per
	// second per client address). 0 disables. Over-rate requests get
	// 429 with a Retry-After header.
	RatePerSec float64
	// RateBurst is the token-bucket capacity (default: 2*RatePerSec,
	// at least 1).
	RateBurst int

	// ClusterShards, when > 1, is the default shard count for matrix
	// jobs that do not set "shards" themselves: such jobs are split
	// into that many leases for cluster workers instead of executing
	// locally. 0 or 1 keeps matrix jobs local unless a request asks.
	ClusterShards int
	// LeaseTTL is how long a claimed shard lease lives without a
	// heartbeat before it is considered abandoned and re-offered to
	// other workers (default 10s). Short TTLs re-steal dead workers'
	// shards faster but demand faster heartbeats.
	LeaseTTL time.Duration
	// DisableSelfWork stops the coordinator from executing shards
	// itself. By default a cluster job's coordinator claims any shard
	// that has stayed unclaimed for a full LeaseTTL — external workers
	// get first shot, but a job always completes even with zero
	// workers. Tests that pin worker behavior disable it.
	DisableSelfWork bool
}

// Job states. A job moves queued -> running -> done|failed|cancelled;
// cancellation of a queued job is immediate.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// runFunc executes a job's work. ctx is cancelled by DELETE
// /v1/jobs/{id} and by server Close; matrix jobs honor it with
// cell-granular cancellation, synthesis jobs check it before starting.
type runFunc func(ctx context.Context, j *job) (result any, cacheHit bool, err error)

// job is the registry entry; mutable fields are guarded by Server.mu.
type job struct {
	id       string
	seq      int    // creation order (authoritative; IDs are display only)
	finSeq   int    // finish order (eviction spares the newest-finished)
	kind     string // "synth" | "matrix"
	priority int
	state    string
	cacheHit bool
	err      string
	result   json.RawMessage
	created  time.Time
	started  time.Time
	finished time.Time

	progressDone  int
	progressTotal int

	cancelled bool // DELETE arrived (running jobs flip state on finish)
	cancel    context.CancelFunc
	ctx       context.Context
	heapIdx   int // position in the pending heap; -1 once popped
	run       runFunc
}

// Progress is a job's resolved-work counter: done of total units
// (matrix cells for matrix jobs).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobView is the canonical wire form of a job — the single envelope
// every handler (and the SSE stream) emits.
type JobView struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Priority int    `json:"priority"`
	// Progress reports resolved work units (matrix cells); omitted
	// until the job's total is known.
	Progress *Progress `json:"progress,omitempty"`
	// CacheHit reports that the job's entire result came from the
	// store: no synthesis search, no simulated cells.
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error,omitempty"`
	// ElapsedMS is the execution time (0 until started; queued wait
	// excluded).
	ElapsedMS int64           `json:"elapsed_ms"`
	Result    json.RawMessage `json:"result,omitempty"`

	// Status is a deprecated alias of State, kept for clients of the
	// pre-/v1/jobs API.
	Status string `json:"status"`
}

// pendingHeap orders queued jobs by (priority desc, seq asc): higher
// priority first, FIFO within a priority band.
type pendingHeap []*job

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *pendingHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}

// Server is the HTTP front end. Create with New, mount Handler, and
// Close when done.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	wg      sync.WaitGroup
	limiter *rateLimiter

	mu          sync.Mutex
	cond        *sync.Cond // job queued, or server closing
	pending     pendingHeap
	jobs        map[string]*job
	nextID      int
	nextFin     int
	closed      bool
	resultBytes int // total len(job.result) across finished jobs

	// Cluster coordination state (cluster.go).
	clusters    map[string]*clusterRun
	leaseSeq    int
	workersSeen map[string]time.Time

	stats serverStats
}

// New validates the config and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = 1000
	}
	if cfg.MaxResultBytes == 0 {
		cfg.MaxResultBytes = 64 << 20
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Workers < 1 || cfg.QueueDepth < 1 || cfg.MaxJobs < 1 || cfg.MaxResultBytes < 1 {
		return nil, fmt.Errorf("serve: need at least 1 worker, queue slot, job slot and result byte")
	}
	if cfg.RatePerSec < 0 || cfg.RateBurst < 0 || cfg.ClusterShards < 0 || cfg.LeaseTTL < 0 {
		return nil, fmt.Errorf("serve: negative rate, burst, shard count or lease TTL")
	}
	if cfg.ClusterShards > maxShards {
		return nil, fmt.Errorf("serve: ClusterShards %d over cap %d", cfg.ClusterShards, maxShards)
	}
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		jobs:        map[string]*job{},
		clusters:    map[string]*clusterRun{},
		workersSeen: map[string]time.Time{},
		stats:       serverStats{accepted: map[string]int64{}},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.RatePerSec > 0 {
		burst := cfg.RateBurst
		if burst == 0 {
			burst = int(2 * cfg.RatePerSec)
			if burst < 1 {
				burst = 1
			}
		}
		s.limiter = newRateLimiter(cfg.RatePerSec, burst)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.handlePostJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /v1/pareto", s.handleParetoPost)
	s.mux.HandleFunc("POST /v1/synth", s.handleSynthAlias)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrixAlias)
	s.mux.HandleFunc("POST /v1/cluster/claim", s.handleClusterClaim)
	s.mux.HandleFunc("POST /v1/cluster/heartbeat", s.handleClusterHeartbeat)
	s.mux.HandleFunc("POST /v1/cluster/complete", s.handleClusterComplete)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP handler (mount on any server or mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Close rejects new jobs (POSTs answer 503), cancels the contexts of
// running jobs (a running matrix job stops within one cell per pool
// worker and finishes cancelled; synthesis runs complete), and stops
// the worker pool. Jobs still queued afterwards are marked failed so
// pollers terminate instead of spinning on a job that will never run.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, j := range s.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) > 0 {
		j := heap.Pop(&s.pending).(*job)
		if terminal(j.state) {
			continue // cancelled while queued; already accounted
		}
		s.finishLocked(j, StateFailed, "server shut down before the job started")
	}
}

// finishLocked moves a job into a terminal state. Caller holds s.mu.
func (s *Server) finishLocked(j *job, state, errMsg string) {
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	s.nextFin++
	j.finSeq = s.nextFin
	j.run = nil
	if j.cancel != nil {
		j.cancel() // release the context's resources
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && s.queuedLocked() == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.popLocked()
		if j == nil {
			s.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = time.Now()
		s.mu.Unlock()
		s.execute(j)
	}
}

// queuedLocked counts live (non-cancelled) queued jobs; cancelled jobs
// linger in the heap until popped but consume no admission budget.
func (s *Server) queuedLocked() int {
	n := 0
	for _, j := range s.pending {
		if !terminal(j.state) {
			n++
		}
	}
	return n
}

// popLocked pops the highest-priority live queued job, discarding
// entries cancelled while they waited.
func (s *Server) popLocked() *job {
	for len(s.pending) > 0 {
		j := heap.Pop(&s.pending).(*job)
		if !terminal(j.state) {
			return j
		}
	}
	return nil
}

func (s *Server) execute(j *job) {
	result, cacheHit, err := runContained(j.ctx, j, j.run)
	// Marshal outside the lock: a big matrix result must not stall
	// every handler and enqueue behind one critical section.
	var b []byte
	if err == nil {
		b, err = json.Marshal(result)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err != nil && (j.cancelled || errors.Is(err, context.Canceled)):
		s.stats.cancelledTotal++
		s.finishLocked(j, StateCancelled, err.Error())
	case err != nil:
		s.finishLocked(j, StateFailed, err.Error())
	default:
		s.finishLocked(j, StateDone, "")
		j.cacheHit = cacheHit
		j.result = b
		s.resultBytes += len(b)
	}
	s.evictLocked()
}

// overBudgetLocked reports whether the registry exceeds either bound.
func (s *Server) overBudgetLocked() bool {
	return len(s.jobs) >= s.cfg.MaxJobs || s.resultBytes > s.cfg.MaxResultBytes
}

// evictLocked keeps the registry within MaxJobs and MaxResultBytes by
// dropping the oldest-finished jobs (by finish sequence, not creation
// order or ID string: a slow early job that just completed must not be
// the first evicted). The most recently finished job is always
// retained so a client gets at least one poll at its result. Caller
// holds s.mu.
func (s *Server) evictLocked() {
	if !s.overBudgetLocked() {
		return
	}
	finished := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if terminal(j.state) && j.heapIdx < 0 {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].finSeq < finished[k].finSeq })
	for i, j := range finished {
		if !s.overBudgetLocked() || i == len(finished)-1 {
			return
		}
		s.resultBytes -= len(j.result)
		delete(s.jobs, j.id)
	}
}

// runContained executes a job function, converting a panic anywhere in
// the synthesis/simulation stack into a failed job instead of a dead
// server (workers share the process with every other job and the
// listener).
func runContained(ctx context.Context, j *job, run runFunc) (result any, cacheHit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, cacheHit = nil, false
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	return run(ctx, j)
}

// apiError is a handler-layer rejection: HTTP status, stable error
// code, message, and an optional Retry-After hint in seconds.
type apiError struct {
	status     int
	code       string
	message    string
	retryAfter int
}

func (e *apiError) Error() string { return e.message }

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_request", message: fmt.Sprintf(format, args...)}
}

// enqueue admits and registers a job. Admission is priority-aware: a
// full queue rejects everything; a queue at or past half depth rejects
// negative-priority (batch) jobs early so interactive work keeps
// queueing. Both rejections carry a Retry-After estimate.
func (s *Server) enqueue(kind string, priority int, run runFunc) (*job, *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &apiError{status: http.StatusServiceUnavailable, code: "shutting_down", message: "server shutting down"}
	}
	s.evictLocked()
	queued := s.queuedLocked()
	retry := 1 + queued/s.cfg.Workers
	if queued >= s.cfg.QueueDepth {
		s.stats.shedTotal++
		return nil, &apiError{
			status: http.StatusServiceUnavailable, code: "queue_full",
			message:    fmt.Sprintf("job queue full (%d pending)", queued),
			retryAfter: retry,
		}
	}
	if priority < 0 && queued >= (s.cfg.QueueDepth+1)/2 {
		s.stats.shedTotal++
		return nil, &apiError{
			status: http.StatusServiceUnavailable, code: "shed_low_priority",
			message:    fmt.Sprintf("queue past high-water mark (%d pending): negative-priority jobs shed first", queued),
			retryAfter: retry,
		}
	}
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:   fmt.Sprintf("j%06d", s.nextID),
		seq:  s.nextID,
		kind: kind, priority: priority,
		state: StateQueued, created: time.Now(),
		ctx: ctx, cancel: cancel,
		run: run,
	}
	s.jobs[j.id] = j
	heap.Push(&s.pending, j)
	s.stats.accepted[kind]++
	s.cond.Signal()
	return j, nil
}

// setProgress updates a job's resolved-work counter; safe for
// concurrent calls from RunMatrix's pool (done is monotone).
func (s *Server) setProgress(j *job, done, total int) {
	s.mu.Lock()
	if done > j.progressDone {
		j.progressDone = done
	}
	j.progressTotal = total
	s.mu.Unlock()
}

func (s *Server) view(j *job, withResult bool) JobView {
	v := JobView{
		ID: j.id, Kind: j.kind, State: j.state, Status: j.state,
		Priority: j.priority, CacheHit: j.cacheHit, Error: j.err,
	}
	if j.progressTotal > 0 {
		v.Progress = &Progress{Done: j.progressDone, Total: j.progressTotal}
	}
	switch {
	case j.started.IsZero():
		// Never executed (still queued, or failed at shutdown).
	case !j.finished.IsZero():
		v.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	default:
		v.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// ---- shared handler plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorDetail is the body of the uniform error envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON shape of every non-2xx response:
// {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeError(w, e.status, e.code, "%s", e.message)
}

// ---- core handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs, queued := len(s.jobs), s.queuedLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   jobs,
		"queued": queued,
		"store":  s.cfg.Store.Dir(),
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var v JobView
	if ok {
		v = s.view(j, true)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleCancelJob is DELETE /v1/jobs/{id}: a queued job cancels
// immediately; a running job's context is cancelled (matrix jobs stop
// within one cell per pool worker, cluster jobs revoke their shard
// leases) and flips to cancelled when its runner returns. Terminal
// jobs answer 409.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "not_found", "no such job %q", id)
		return
	}
	switch j.state {
	case StateQueued:
		j.cancelled = true
		s.stats.cancelledTotal++
		s.finishLocked(j, StateCancelled, "cancelled before start")
	case StateRunning:
		j.cancelled = true
		j.cancel()
	default:
		state := j.state
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "conflict", "job %s already %s", id, state)
		return
	}
	v := s.view(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// handleJobs is GET /v1/jobs: creation-ordered listing with pagination
// (?limit=, ?after=<job id>) and state filtering (?state=running). The
// response carries next_after when truncated.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 100
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad_request", "bad limit %q", ls)
			return
		}
		if n > 1000 {
			n = 1000
		}
		limit = n
	}
	stateFilter := q.Get("state")
	switch stateFilter {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		writeError(w, http.StatusBadRequest, "bad_request", "unknown state %q", stateFilter)
		return
	}
	afterSeq := 0
	if as := q.Get("after"); as != "" {
		// The cursor is a job ID; evicted IDs still work (the sequence
		// is embedded in the ID), so pagination survives eviction.
		n, err := strconv.Atoi(strings.TrimPrefix(as, "j"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad after cursor %q", as)
			return
		}
		afterSeq = n
	}

	type seqView struct {
		seq  int
		view JobView
	}
	s.mu.Lock()
	entries := make([]seqView, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.seq <= afterSeq {
			continue
		}
		if stateFilter != "" && j.state != stateFilter {
			continue
		}
		entries = append(entries, seqView{j.seq, s.view(j, false)})
	}
	s.mu.Unlock()
	// Deterministic creation-order listing (by sequence, not ID string:
	// the zero padding runs out past a million jobs).
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	resp := map[string]any{}
	truncated := len(entries) > limit
	if truncated {
		entries = entries[:limit]
		resp["next_after"] = entries[len(entries)-1].view.ID
	}
	views := make([]JobView, len(entries))
	for i, e := range entries {
		views[i] = e.view
	}
	resp["jobs"] = views
	writeJSON(w, http.StatusOK, resp)
}

// handleJobEvents is GET /v1/jobs/{id}/events: a Server-Sent Events
// stream of the job's envelope, emitted on every state or progress
// change plus a keepalive comment, ending after the terminal event.
// The terminal event omits the result payload — fetch it with a final
// GET /v1/jobs/{id}.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job %q", id)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	last := ""
	idle := 0
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		var v JobView
		if ok {
			v = s.view(j, false)
		}
		s.mu.Unlock()
		if !ok {
			// Evicted mid-stream: tell the client instead of hanging.
			fmt.Fprintf(w, "event: gone\ndata: {}\n\n")
			flusher.Flush()
			return
		}
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		if string(b) != last {
			last = string(b)
			idle = 0
			fmt.Fprintf(w, "data: %s\n\n", b)
			flusher.Flush()
		} else if idle++; idle >= 150 { // ~15s of silence
			idle = 0
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		}
		if terminal(v.State) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
