package serve

import (
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter for the
// job-creating POST endpoints. Each client address gets a bucket of
// `burst` tokens refilled at `rate` per second; a request spends one
// token or is rejected with a Retry-After estimate. State is in-memory
// and advisory — the point is protecting the queue from one chatty
// client, not billing-grade accounting.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// allow spends a token for key, reporting (false, seconds) when the
// bucket is empty.
func (l *rateLimiter) allow(key string, now time.Time) (bool, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		// Bound the map: before adding a client, drop entries whose
		// buckets have refilled completely — they carry no state a
		// fresh bucket wouldn't.
		if len(l.buckets) >= 4096 {
			for k, old := range l.buckets {
				if now.Sub(old.last).Seconds()*l.rate >= l.burst {
					delete(l.buckets, k)
				}
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		retry := int((1-b.tokens)/l.rate) + 1
		return false, retry
	}
	b.tokens--
	return true, 0
}

// clientKey identifies the client for rate limiting: the remote IP
// (not IP:port, so reconnecting doesn't reset the budget). Proxy
// headers are deliberately ignored — they are client-controlled and
// would let anyone mint fresh buckets.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// allowClient applies the limiter (when configured) to a job-creating
// request, writing the 429 itself on rejection.
func (s *Server) allowClient(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter == nil {
		return true
	}
	ok, retry := s.limiter.allow(clientKey(r), time.Now())
	if ok {
		return true
	}
	s.mu.Lock()
	s.stats.rateLimitedTotal++
	s.mu.Unlock()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, "rate_limited",
		"client %s over %g req/s (burst %g); retry in %ds", clientKey(r), s.limiter.rate, s.limiter.burst, retry)
	return false
}
