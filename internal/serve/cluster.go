package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/sim"
	"netsmith/internal/store"
)

// Cluster mode: a matrix or pareto job with shards > 1 does not
// execute in the coordinator's job runner. Instead the runner registers
// a clusterRun — one lease slot per Shard{i,n} slice — and waits.
// Worker processes (RunWorker) poll POST /v1/cluster/claim, execute
// their slice cache-first against the shared store, heartbeat to keep
// the lease alive, and POST /v1/cluster/complete. A lease whose
// heartbeats stop (killed worker) expires and is re-offered; because
// every finished unit is already content-addressed in the store
// (matrix cells, synthesis results), the new claimant re-simulates
// only what the dead worker never persisted. When all shards report,
// the runner performs an unsharded cache-first merge over the warm
// store — byte-identical to a single-process run.
//
// The protocol is deliberately coordinator-centric: workers keep no
// state but the lease in hand, so killing one at any instant loses at
// most its in-flight cells.

// shard lease states.
const (
	shardPending = iota
	shardLeased
	shardDone
)

// shardState tracks one lease slot; guarded by Server.mu.
type shardState struct {
	index   int
	state   int
	worker  string
	leaseID string
	expires time.Time
	created time.Time // when the slot became claimable (self-work grace anchor)
	done    int       // cells resolved per the last heartbeat/completion
}

func (ss *shardState) stateName(now time.Time) string {
	switch {
	case ss.state == shardDone:
		return "done"
	case ss.state == shardLeased && now.After(ss.expires):
		return "expired"
	case ss.state == shardLeased:
		return "leased"
	default:
		return "pending"
	}
}

// clusterRun is the coordinator-side record of one sharded job;
// guarded by Server.mu except for the immutable fields.
type clusterRun struct {
	jobID   string
	job     *job
	kind    string          // "matrix" | "pareto" (lease dispatch)
	reqJSON json.RawMessage // canonical kind-specific request for lease bodies
	cells   int             // total progress units (matrix cells, pareto sweep units)

	shards         []shardState
	doneN          int
	computed       int // Σ shard stats.Computed
	storeErrs      int
	pointsSynth    int // Σ shard pareto points synthesized
	busy           time.Duration
	synthAllCached bool
	failure        string

	finished chan struct{} // closed when all shards done, a shard fails, or the job dies
	closed   bool
}

func (cr *clusterRun) closeLocked() {
	if !cr.closed {
		cr.closed = true
		close(cr.finished)
	}
}

// activeLocked reports whether the run still accepts leases and
// reports.
func (cr *clusterRun) activeLocked() bool {
	return !cr.closed && cr.failure == "" && !cr.job.cancelled
}

// ---- lease wire types ----

// ClaimRequest is the POST /v1/cluster/claim body.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// Lease grants one job shard to a worker: execute Request with
// Shard{Index: Shard, Count: Of} against the shared store, heartbeat
// well inside TTLMS, then complete. Kind selects the request type —
// empty means "matrix", keeping pre-pareto workers and coordinators
// wire-compatible.
type Lease struct {
	LeaseID string          `json:"lease_id"`
	JobID   string          `json:"job_id"`
	Kind    string          `json:"kind,omitempty"` // "" | "matrix" | "pareto"
	Shard   int             `json:"shard"`
	Of      int             `json:"of"`
	TTLMS   int64           `json:"ttl_ms"`
	Request json.RawMessage `json:"request"` // MatrixRequest or ParetoRequest JSON
}

// HeartbeatRequest is the POST /v1/cluster/heartbeat body; Done is the
// worker's resolved-cell count so far (feeds job progress).
type HeartbeatRequest struct {
	JobID   string `json:"job_id"`
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
	Done    int    `json:"done"`
}

// CompleteRequest is the POST /v1/cluster/complete body. A non-empty
// Error fails the whole job (validation and store failures are
// deterministic — another worker would fail identically); crashes
// should simply stop heartbeating and let the lease expire instead.
type CompleteRequest struct {
	JobID       string          `json:"job_id"`
	LeaseID     string          `json:"lease_id"`
	Worker      string          `json:"worker"`
	Error       string          `json:"error,omitempty"`
	Stats       sim.MatrixStats `json:"stats"`
	SynthCached bool            `json:"synth_cached"`
	// PointsSynthesized counts pareto sweep points this shard actually
	// searched (0 for matrix shards and fully cached sweeps).
	PointsSynthesized int   `json:"points_synthesized,omitempty"`
	ElapsedMS         int64 `json:"elapsed_ms"`
}

// ---- claim/heartbeat/complete core (shared by HTTP handlers and
// coordinator self-work) ----

// claimFromLocked grants an eligible shard of cr: a pending slot older
// than minAge, or a leased slot whose heartbeats stopped a TTL ago.
// Caller holds s.mu.
func (s *Server) claimFromLocked(cr *clusterRun, worker string, now time.Time, minAge time.Duration) *Lease {
	if !cr.activeLocked() {
		return nil
	}
	for i := range cr.shards {
		ss := &cr.shards[i]
		eligible := (ss.state == shardPending && now.Sub(ss.created) >= minAge) ||
			(ss.state == shardLeased && now.After(ss.expires))
		if !eligible {
			continue
		}
		s.leaseSeq++
		ss.state = shardLeased
		ss.worker = worker
		ss.leaseID = fmt.Sprintf("L%06d", s.leaseSeq)
		ss.expires = now.Add(s.cfg.LeaseTTL)
		return &Lease{
			LeaseID: ss.leaseID, JobID: cr.jobID, Kind: cr.kind,
			Shard: ss.index, Of: len(cr.shards),
			TTLMS: s.cfg.LeaseTTL.Milliseconds(), Request: cr.reqJSON,
		}
	}
	return nil
}

// claimAnyLocked scans cluster runs in job-arrival order. Caller holds
// s.mu.
func (s *Server) claimAnyLocked(worker string, now time.Time, minAge time.Duration) *Lease {
	runs := make([]*clusterRun, 0, len(s.clusters))
	for _, cr := range s.clusters {
		runs = append(runs, cr)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].job.seq < runs[j].job.seq })
	for _, cr := range runs {
		if lease := s.claimFromLocked(cr, worker, now, minAge); lease != nil {
			return lease
		}
	}
	return nil
}

// leaseShardLocked resolves a (job, lease) pair to its shard slot if
// the lease is still the live one; a stolen or completed lease returns
// nil so the stale holder stands down.
func (s *Server) leaseShardLocked(jobID, leaseID string) (*clusterRun, *shardState) {
	cr, ok := s.clusters[jobID]
	if !ok || !cr.activeLocked() {
		return nil, nil
	}
	for i := range cr.shards {
		ss := &cr.shards[i]
		if ss.state == shardLeased && ss.leaseID == leaseID {
			return cr, ss
		}
	}
	return nil, nil
}

// heartbeatLease extends a lease and folds the worker's progress into
// the job envelope; false means the lease is gone (expired and
// re-stolen, job cancelled, or cluster finished) and the holder must
// abandon the shard.
func (s *Server) heartbeatLease(jobID, leaseID, worker string, done int) bool {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if worker != "" {
		s.workersSeen[worker] = now
	}
	cr, ss := s.leaseShardLocked(jobID, leaseID)
	if cr == nil {
		return false
	}
	ss.expires = now.Add(s.cfg.LeaseTTL)
	if done > ss.done {
		ss.done = done
	}
	s.clusterProgressLocked(cr)
	return true
}

// clusterProgressLocked refreshes the job's progress counter from the
// shard heartbeat/done tallies. Shard counts can overlap (a shard's
// merge attempt reads other shards' cells), so clamp. Caller holds
// s.mu.
func (s *Server) clusterProgressLocked(cr *clusterRun) {
	sum := 0
	for i := range cr.shards {
		sum += cr.shards[i].done
	}
	if sum > cr.cells {
		sum = cr.cells
	}
	if sum > cr.job.progressDone {
		cr.job.progressDone = sum
	}
	cr.job.progressTotal = cr.cells
}

// completeLease records a shard outcome; false means the lease was no
// longer live (the result is still fine — its cells are in the store —
// but the slot already moved on).
func (s *Server) completeLease(req CompleteRequest) bool {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Worker != "" {
		s.workersSeen[req.Worker] = now
	}
	cr, ss := s.leaseShardLocked(req.JobID, req.LeaseID)
	if cr == nil {
		return false
	}
	if req.Error != "" {
		cr.failure = fmt.Sprintf("shard %d/%d (worker %s): %s", ss.index, len(cr.shards), req.Worker, req.Error)
		cr.closeLocked()
		return true
	}
	ss.state = shardDone
	if cr.kind != "pareto" {
		// Matrix progress is cell-denominated, so the completion stats
		// are the exact tally. Pareto progress runs in sweep units —
		// keep the shard's last heartbeat tally and let the merge pass
		// drive the remainder.
		ss.done = req.Stats.Computed + req.Stats.CacheHits
	}
	cr.doneN++
	cr.computed += req.Stats.Computed
	cr.storeErrs += req.Stats.StoreErrors
	cr.pointsSynth += req.PointsSynthesized
	cr.busy += time.Duration(req.ElapsedMS) * time.Millisecond
	if !req.SynthCached {
		cr.synthAllCached = false
	}
	// Cache-hit cell accounting happens once at merge time (shard
	// CacheHits overlap across shards); computed cells are exact.
	s.stats.cellsComputed += int64(req.Stats.Computed)
	s.stats.busy += time.Duration(req.ElapsedMS) * time.Millisecond
	s.clusterProgressLocked(cr)
	if cr.doneN == len(cr.shards) {
		cr.closeLocked()
	}
	return true
}

// ---- HTTP handlers ----

func (s *Server) handleClusterClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad claim body: %v", err)
			return
		}
	}
	worker := defaultStr(req.Worker, clientKey(r))
	now := time.Now()
	s.mu.Lock()
	s.workersSeen[worker] = now
	lease := s.claimAnyLocked(worker, now, 0)
	s.mu.Unlock()
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if body, ok := readBody(w, r); !ok {
		return
	} else if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad heartbeat body: %v", err)
		return
	}
	if !s.heartbeatLease(req.JobID, req.LeaseID, req.Worker, req.Done) {
		writeError(w, http.StatusGone, "lease_gone", "lease %s on job %s is no longer live", req.LeaseID, req.JobID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleClusterComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if body, ok := readBody(w, r); !ok {
		return
	} else if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad completion body: %v", err)
		return
	}
	if !s.completeLease(req) {
		writeError(w, http.StatusGone, "lease_gone", "lease %s on job %s is no longer live", req.LeaseID, req.JobID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ---- the coordinator-side job runner ----

// shardReport is the successful outcome of one shard execution,
// kind-agnostic: matrix shards fill the cell stats; pareto shards also
// count the sweep points they synthesized.
type shardReport struct {
	stats       sim.MatrixStats
	pointsSynth int
	synthCached bool
}

// shardRunner executes one Shard{Index,Count} slice of a cluster job
// against a store, reporting resolved work units through progress. It
// classifies "my slice done, others pending" as success; a nil report
// with a live error means the shard genuinely failed.
type shardRunner func(ctx context.Context, st *store.Store, shard sim.Shard, progress func(done, total int)) (*shardReport, error)

// clusterAgg is the shard-phase tally handed to a cluster job's merge
// step once every shard has reported.
type clusterAgg struct {
	computed    int // Σ shard computed cells
	storeErrs   int
	pointsSynth int // Σ shard pareto points synthesized
	synthAll    bool
}

// clusterJobRun is the kind-agnostic coordinator runner for sharded
// jobs: post the lease slots, wait for workers (optionally picking up
// neglected shards itself via runShard), then hand the shard tallies
// to merge for the final unsharded cache-first pass.
func (s *Server) clusterJobRun(kind string, reqJSON []byte, units, shards int, runShard shardRunner,
	merge func(ctx context.Context, j *job, agg clusterAgg) (any, bool, error)) runFunc {
	return func(ctx context.Context, j *job) (any, bool, error) {
		now := time.Now()
		cr := &clusterRun{
			jobID: j.id, job: j, kind: kind, reqJSON: reqJSON, cells: units,
			shards:         make([]shardState, shards),
			synthAllCached: true,
			finished:       make(chan struct{}),
		}
		for i := range cr.shards {
			cr.shards[i] = shardState{index: i, created: now}
		}
		s.mu.Lock()
		s.clusters[j.id] = cr
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			cr.closeLocked()
			delete(s.clusters, j.id)
			s.mu.Unlock()
		}()

		// Self-work cadence: often enough to steal an expired lease
		// promptly, bounded so short test TTLs don't spin.
		tickEvery := s.cfg.LeaseTTL / 4
		if tickEvery < 10*time.Millisecond {
			tickEvery = 10 * time.Millisecond
		}
		tick := time.NewTicker(tickEvery)
		defer tick.Stop()
	wait:
		for {
			select {
			case <-ctx.Done():
				// Cancellation: close the run so in-flight workers'
				// next heartbeat answers 410 and they abandon the
				// shard mid-cell.
				s.mu.Lock()
				cr.failure = "job cancelled"
				cr.closeLocked()
				s.mu.Unlock()
				return nil, false, ctx.Err()
			case <-cr.finished:
				break wait
			case <-tick.C:
				if s.cfg.DisableSelfWork {
					continue
				}
				// External workers get a full lease TTL of first
				// refusal on virgin shards; expired leases are fair
				// game immediately.
				s.mu.Lock()
				lease := s.claimFromLocked(cr, "coordinator", time.Now(), s.cfg.LeaseTTL)
				s.mu.Unlock()
				if lease != nil {
					s.runLeasedShard(ctx, lease, runShard)
				}
			}
		}

		s.mu.Lock()
		failure := cr.failure
		agg := clusterAgg{
			computed: cr.computed, storeErrs: cr.storeErrs,
			pointsSynth: cr.pointsSynth, synthAll: cr.synthAllCached,
		}
		s.mu.Unlock()
		if failure != "" {
			return nil, false, errors.New(failure)
		}
		return merge(ctx, j, agg)
	}
}

// clusterMatrixRun returns the runFunc for a sharded matrix job.
func (s *Server) clusterMatrixRun(plan *matrixPlan, reqJSON []byte, shards int) runFunc {
	cells := plan.cellCount()
	merge := func(ctx context.Context, j *job, agg clusterAgg) (any, bool, error) {
		// Merge: an unsharded cache-first run over the now-warm store.
		// Deterministic cell keys make this byte-identical to a local
		// single-process run; it simulates nothing unless a worker's
		// store write failed.
		start := time.Now()
		res, mergeSynthCached, err := plan.run(ctx, s.cfg.Store, sim.Shard{}, func(done, total int) {
			s.setProgress(j, done, total)
		})
		if err != nil {
			return nil, false, err
		}
		totalComputed := agg.computed + res.Stats.Computed
		if totalComputed > cells {
			totalComputed = cells
		}
		stats := sim.MatrixStats{
			Cells:    cells,
			Computed: totalComputed, CacheHits: cells - totalComputed,
			StoreErrors: agg.storeErrs + res.Stats.StoreErrors,
		}
		// Shard completions already counted their computed cells; count
		// the effective cache hits (and any merge-time recomputation)
		// exactly once here.
		s.noteMatrix(sim.MatrixStats{Computed: res.Stats.Computed, CacheHits: stats.CacheHits}, time.Since(start))
		out := MatrixJobResult{
			Matrix: res, Stats: stats,
			SynthCacheHit: agg.synthAll && mergeSynthCached,
			Shards:        shards,
		}
		return out, totalComputed == 0 && agg.synthAll && mergeSynthCached, nil
	}
	return s.clusterJobRun("matrix", reqJSON, cells, shards, plan.shardRunner(), merge)
}

// clusterParetoRun returns the runFunc for a sharded pareto job: each
// shard synthesizes and measures its owned sweep points into the
// shared store, then the merge assembles the frontier unsharded over
// the warm store (recomputing nothing).
func (s *Server) clusterParetoRun(plan *paretoPlan, reqJSON []byte, shards int) runFunc {
	merge := func(ctx context.Context, j *job, agg clusterAgg) (any, bool, error) {
		start := time.Now()
		fr, err := plan.run(ctx, s.cfg.Store, sim.Shard{}, func(done, total int) {
			s.setProgress(j, done, total)
		})
		if err != nil {
			return nil, false, err
		}
		stats := fr.Stats
		if !stats.FrontierCached {
			// Fold the shards' work into cluster-wide truth: a point or
			// cell the merge pass found in the store is "cached" only if
			// no shard filled it this job.
			totalComputed := agg.computed + fr.Stats.CellsComputed
			if totalComputed > fr.Stats.Cells {
				totalComputed = fr.Stats.Cells
			}
			totalSynth := agg.pointsSynth + fr.Stats.Synthesized
			if totalSynth > stats.Points {
				totalSynth = stats.Points
			}
			stats.Synthesized = totalSynth
			stats.SynthCached = stats.Points - totalSynth
			stats.CellsComputed = totalComputed
			stats.CellsCached = fr.Stats.Cells - totalComputed
			stats.StoreErrors += agg.storeErrs
		}
		// Shard completions already counted their computed cells; charge
		// only the merge pass's own split here.
		s.notePareto(fr, exp.ParetoStats{
			CellsComputed: fr.Stats.CellsComputed, CellsCached: stats.CellsCached,
		}, time.Since(start))
		out := ParetoJobResult{Frontier: fr, Stats: stats, Shards: shards}
		hit := stats.FrontierCached || (stats.Synthesized == 0 && stats.CellsComputed == 0)
		return out, hit, nil
	}
	return s.clusterJobRun("pareto", reqJSON, plan.units(), shards, plan.shardRunner(), merge)
}

// runLeasedShard executes one shard in-process (coordinator
// self-work), with the same heartbeat discipline a remote worker
// keeps: if the lease is lost, the shard context dies and the slice is
// abandoned mid-cell.
func (s *Server) runLeasedShard(ctx context.Context, lease *Lease, runShard shardRunner) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var doneUnits atomic.Int64
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		t := time.NewTicker(time.Duration(lease.TTLMS) * time.Millisecond / 3)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				if !s.heartbeatLease(lease.JobID, lease.LeaseID, "coordinator", int(doneUnits.Load())) {
					cancel()
					return
				}
			}
		}
	}()
	start := time.Now()
	rep, err := runShard(shardCtx, s.cfg.Store, sim.Shard{Index: lease.Shard, Count: lease.Of},
		func(done, total int) { doneUnits.Store(int64(done)) })
	if rep == nil {
		if shardCtx.Err() != nil {
			return // lease lost or job cancelled: let the slot move on
		}
		s.completeLease(CompleteRequest{
			JobID: lease.JobID, LeaseID: lease.LeaseID, Worker: "coordinator",
			Error: err.Error(), ElapsedMS: time.Since(start).Milliseconds(),
		})
		return
	}
	s.completeLease(CompleteRequest{
		JobID: lease.JobID, LeaseID: lease.LeaseID, Worker: "coordinator",
		Stats: rep.stats, SynthCached: rep.synthCached, PointsSynthesized: rep.pointsSynth,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// shardOutcome classifies a sharded matrix run: sim.IncompleteError —
// "my slice is done, others pending" — IS success for a shard worker;
// a full result (possible when other shards finished first) is too.
func shardOutcome(res *sim.MatrixResult, err error) (sim.MatrixStats, bool) {
	if err == nil {
		return res.Stats, true
	}
	var inc *sim.IncompleteError
	if errors.As(err, &inc) {
		return sim.MatrixStats{Cells: inc.Cells, Computed: inc.Computed, CacheHits: inc.CacheHits}, true
	}
	return sim.MatrixStats{}, false
}

// paretoShardOutcome classifies a sharded sweep the same way:
// exp.ParetoIncompleteError IS success (the shard's points are in
// the store), as is a full frontier (the whole sweep was cached).
func paretoShardOutcome(fr *exp.Frontier, err error) (*shardReport, error) {
	if err == nil {
		st := fr.Stats
		return &shardReport{
			stats:       sim.MatrixStats{Cells: st.Cells, Computed: st.CellsComputed, CacheHits: st.CellsCached, StoreErrors: st.StoreErrors},
			pointsSynth: st.Synthesized,
			synthCached: st.Synthesized == 0,
		}, nil
	}
	var inc *exp.ParetoIncompleteError
	if errors.As(err, &inc) {
		return &shardReport{
			stats:       sim.MatrixStats{Cells: inc.Cells, Computed: inc.CellsComputed, CacheHits: inc.CellsCached},
			pointsSynth: inc.Synthesized,
			synthCached: inc.Synthesized == 0,
		}, nil
	}
	return nil, err
}
