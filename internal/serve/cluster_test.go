package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/sim"
	"netsmith/internal/store"
)

// newClusterServer starts a coordinator over a fresh shared store
// directory, returning the server, its test listener, and the store
// path (workers open their own handle on it, as separate processes
// would).
func newClusterServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, dir
}

// startWorker runs a RunWorker loop against the coordinator until the
// test ends.
func startWorker(t *testing.T, coordinator, storeDir, name string) {
	t.Helper()
	wst, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = RunWorker(ctx, WorkerConfig{
			Coordinator: coordinator, Store: wst, Name: name,
			Poll: 20 * time.Millisecond,
		})
	}()
	t.Cleanup(func() { cancel(); <-done })
}

// localReference runs the request in a single process over a fresh
// store and renders the matrix to CSV and JSON — the byte-identity
// baseline for cluster runs.
func localReference(t *testing.T, req MatrixRequest) (matrix *sim.MatrixResult, csv, js []byte) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ExecuteMatrix(context.Background(), st, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Matrix, renderCSV(t, res.Matrix), renderJSON(t, res.Matrix)
}

func renderCSV(t *testing.T, m *sim.MatrixResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := exp.MatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderJSON(t *testing.T, m *sim.MatrixResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := exp.MatrixJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func clusterJobResult(t *testing.T, v JobView) MatrixJobResult {
	t.Helper()
	if v.State != StateDone {
		t.Fatalf("cluster job state %q (error %q)", v.State, v.Error)
	}
	var r MatrixJobResult
	if err := json.Unmarshal(v.Result, &r); err != nil {
		t.Fatal(err)
	}
	return r
}

var clusterReqBody = `{"kind":"matrix","grid":"3x3","patterns":["uniform","tornado"],"rates":[0.02,0.05,0.08,0.11],"fidelity":"smoke","energy":true,"seed":31,"shards":2}`

func clusterMatrixRequest(t *testing.T) MatrixRequest {
	t.Helper()
	var req MatrixRequest
	if err := decodeStrict([]byte(strings.Replace(clusterReqBody, `"kind":"matrix",`, "", 1)), &req); err != nil {
		t.Fatal(err)
	}
	return req
}

// TestClusterSelfWork: with no workers attached, the coordinator picks
// up neglected shard leases itself after the grace period, and the
// merged result is byte-identical to a single-process run.
func TestClusterSelfWork(t *testing.T) {
	_, ts, _ := newClusterServer(t, Config{LeaseTTL: 100 * time.Millisecond})
	code, j := postReq(t, ts.URL+"/v1/jobs", clusterReqBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	r := clusterJobResult(t, pollDone(t, ts.URL, j.ID))
	if r.Shards != 2 {
		t.Errorf("result shards = %d, want 2", r.Shards)
	}
	if r.Stats.Cells != 8 || r.Stats.Computed+r.Stats.CacheHits != 8 {
		t.Errorf("cluster stats %+v, want 8 cells fully accounted", r.Stats)
	}
	_, wantCSV, wantJSON := localReference(t, clusterMatrixRequest(t))
	if !bytes.Equal(renderCSV(t, r.Matrix), wantCSV) {
		t.Error("self-worked cluster CSV differs from single-process run")
	}
	if !bytes.Equal(renderJSON(t, r.Matrix), wantJSON) {
		t.Error("self-worked cluster JSON differs from single-process run")
	}
}

// TestClusterWorkersExecute: two workers drain the shard leases (self
// work disabled, so they must), and the coordinator's merge is
// byte-identical to a single-process run.
func TestClusterWorkersExecute(t *testing.T) {
	s, ts, dir := newClusterServer(t, Config{LeaseTTL: 2 * time.Second, DisableSelfWork: true})
	startWorker(t, ts.URL, dir, "w1")
	startWorker(t, ts.URL, dir, "w2")

	code, j := postReq(t, ts.URL+"/v1/jobs", clusterReqBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	r := clusterJobResult(t, pollDone(t, ts.URL, j.ID))
	if r.Stats.Computed == 0 {
		t.Error("workers computed nothing — did self-work run?")
	}
	_, wantCSV, wantJSON := localReference(t, clusterMatrixRequest(t))
	if !bytes.Equal(renderCSV(t, r.Matrix), wantCSV) {
		t.Error("cluster CSV differs from single-process run")
	}
	if !bytes.Equal(renderJSON(t, r.Matrix), wantJSON) {
		t.Error("cluster JSON differs from single-process run")
	}

	// Liveness: both workers were seen by the coordinator.
	s.mu.Lock()
	_, saw1 := s.workersSeen["w1"]
	_, saw2 := s.workersSeen["w2"]
	s.mu.Unlock()
	if !saw1 || !saw2 {
		t.Errorf("worker liveness: w1=%v w2=%v", saw1, saw2)
	}
}

// TestClusterWorkerKilledMidShard is the acceptance scenario: a worker
// claims a shard, simulates part of it, and dies without completing or
// heartbeating. Its lease expires, a live worker re-steals the shard,
// resumes from the dead worker's persisted cells (content addressing
// makes the partial work durable), and the merged result is
// byte-identical to a single-process run.
func TestClusterWorkerKilledMidShard(t *testing.T) {
	_, ts, dir := newClusterServer(t, Config{LeaseTTL: 300 * time.Millisecond, DisableSelfWork: true})
	code, j := postReq(t, ts.URL+"/v1/jobs", clusterReqBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}

	// Act as the doomed worker: claim a lease over HTTP the way
	// RunWorker does...
	var lease Lease
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/cluster/claim", "application/json", strings.NewReader(`{"worker":"doomed"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("never got a lease (job not registered?)")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...execute PART of the shard (killed after the first cell: the
	// context dies, no heartbeat, no completion — exactly a crash as
	// the coordinator observes it)...
	wst, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var req MatrixRequest
	if err := json.Unmarshal(lease.Request, &req); err != nil {
		t.Fatal(err)
	}
	plan, err := req.plan()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, _, runErr := plan.run(ctx, wst, sim.Shard{Index: lease.Shard, Count: lease.Of},
		func(done, total int) { once.Do(cancel) })
	if runErr == nil {
		t.Fatal("partial shard run unexpectedly completed")
	}
	persisted, err := wst.Len()
	if err != nil {
		t.Fatal(err)
	}
	if persisted == 0 {
		t.Fatal("dead worker persisted nothing; the re-steal would resume from scratch")
	}

	// ...then bring up a live worker. It picks up the other shard at
	// once and the dead worker's shard after the lease expires.
	startWorker(t, ts.URL, dir, "rescuer")
	r := clusterJobResult(t, pollDone(t, ts.URL, j.ID))

	// The dead worker's persisted cells were reused, not re-simulated:
	// the cluster-wide computed count excludes them.
	if r.Stats.Cells != 8 || r.Stats.Computed+r.Stats.CacheHits != 8 {
		t.Errorf("cluster stats %+v, want 8 cells fully accounted", r.Stats)
	}
	if r.Stats.CacheHits < persisted {
		t.Errorf("cache hits %d < %d cells the dead worker persisted", r.Stats.CacheHits, persisted)
	}
	if r.Stats.Computed >= 8 {
		t.Errorf("re-steal re-simulated everything (%d computed): partial work lost", r.Stats.Computed)
	}

	_, wantCSV, wantJSON := localReference(t, clusterMatrixRequest(t))
	if !bytes.Equal(renderCSV(t, r.Matrix), wantCSV) {
		t.Error("re-stolen cluster CSV differs from single-process run")
	}
	if !bytes.Equal(renderJSON(t, r.Matrix), wantJSON) {
		t.Error("re-stolen cluster JSON differs from single-process run")
	}
}

// TestClusterCancelRevokesLeases: DELETE on a running cluster job
// flips it to cancelled, answers in-flight heartbeats with 410 Gone so
// workers abandon their shards, stops offering leases, and frees the
// coordinator's worker slot.
func TestClusterCancelRevokesLeases(t *testing.T) {
	s, ts, _ := newClusterServer(t, Config{Workers: 1, DisableSelfWork: true})
	code, j := postReq(t, ts.URL+"/v1/jobs", clusterReqBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	waitState(t, s, j.ID, StateRunning)

	// Hold a lease as a fake worker.
	var lease Lease
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/cluster/claim", "application/json", strings.NewReader(`{"worker":"w1"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("never got a lease")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if code, _, _ := doDelete(t, ts.URL+"/v1/jobs/"+j.ID); code != http.StatusOK {
		t.Fatalf("DELETE cluster job: status %d", code)
	}
	v := pollDone(t, ts.URL, j.ID)
	if v.State != StateCancelled {
		t.Fatalf("cancelled cluster job state %q", v.State)
	}

	// The held lease is revoked: heartbeats answer 410 and no new
	// leases are offered.
	hb, _ := json.Marshal(HeartbeatRequest{JobID: lease.JobID, LeaseID: lease.LeaseID, Worker: "w1", Done: 1})
	resp, err := http.Post(ts.URL+"/v1/cluster/heartbeat", "application/json", bytes.NewReader(hb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("heartbeat after cancel: status %d, want 410", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/cluster/claim", "application/json", strings.NewReader(`{"worker":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("claim after cancel: status %d, want 204", resp.StatusCode)
	}

	// The single worker slot is free again.
	j2, qerr := s.enqueue("noop", 0, noopRun)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if v := pollDone(t, ts.URL, j2.id); v.State != StateDone {
		t.Fatalf("job after cluster cancellation: %+v", v)
	}
}
