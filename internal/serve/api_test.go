package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netsmith/internal/store"
)

func doDelete(t *testing.T, url string) (int, JobView, ErrorEnvelope) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	var env ErrorEnvelope
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
	} else if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, v, env
}

// TestCancelQueuedJob: DELETE on a queued job flips it to cancelled
// immediately; a second DELETE answers 409 conflict.
func TestCancelQueuedJob(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	gate := make(chan struct{})
	defer close(gate)
	if _, qerr := s.enqueue("block", 0, gatedRun(gate)); qerr != nil {
		t.Fatal(qerr)
	}
	waitState(t, s, "j000001", StateRunning)
	j2, qerr := s.enqueue("noop", 0, noopRun)
	if qerr != nil {
		t.Fatal(qerr)
	}

	code, v, _ := doDelete(t, ts.URL+"/v1/jobs/"+j2.id)
	if code != http.StatusOK || v.State != StateCancelled {
		t.Fatalf("DELETE queued job: status %d state %q, want 200 cancelled", code, v.State)
	}
	code, _, env := doDelete(t, ts.URL+"/v1/jobs/"+j2.id)
	if code != http.StatusConflict || env.Error.Code != "conflict" {
		t.Fatalf("second DELETE: status %d code %q, want 409 conflict", code, env.Error.Code)
	}
	if code, _, env := doDelete(t, ts.URL+"/v1/jobs/j999999"); code != http.StatusNotFound || env.Error.Code != "not_found" {
		t.Fatalf("DELETE unknown job: status %d code %q", code, env.Error.Code)
	}
}

// TestCancelRunningJobFreesSlot: DELETE on a running job cancels its
// context, the job finishes cancelled, and the worker slot immediately
// takes the next job — the acceptance criterion for cancellation.
func TestCancelRunningJobFreesSlot(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// The gate never opens: only cancellation can finish this job.
	gate := make(chan struct{})
	j1, qerr := s.enqueue("block", 0, gatedRun(gate))
	if qerr != nil {
		t.Fatal(qerr)
	}
	waitState(t, s, j1.id, StateRunning)
	code, _, _ := doDelete(t, ts.URL+"/v1/jobs/"+j1.id)
	if code != http.StatusOK {
		t.Fatalf("DELETE running job: status %d", code)
	}
	waitState(t, s, j1.id, StateCancelled)

	// The freed slot must run the next job to completion.
	j2, qerr := s.enqueue("noop", 0, noopRun)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if v := pollDone(t, ts.URL, j2.id); v.State != StateDone {
		t.Fatalf("job after cancellation: %+v", v)
	}
}

// TestCancelRunningMatrixJob: a DELETE mid-matrix stops simulation
// (cell-granular, via the context plumbed through RunMatrix), reports
// the partial progress, and leaves the store consistent for a resume
// that completes from cache.
func TestCancelRunningMatrixJob(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	body := `{"kind":"matrix","grid":"3x3","patterns":["uniform","tornado"],"rates":[0.01,0.02,0.04,0.06,0.08,0.1],"fidelity":"fast","seed":13}`
	code, j := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	// Wait for the first resolved cell, then cancel.
	deadline := time.Now().Add(60 * time.Second)
	for {
		s.mu.Lock()
		done := s.jobs[j.ID].progressDone
		s.mu.Unlock()
		if done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("matrix job never resolved a cell")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _, _ := doDelete(t, ts.URL+"/v1/jobs/"+j.ID); code != http.StatusOK {
		t.Fatalf("DELETE running matrix: status %d", code)
	}
	v := pollDone(t, ts.URL, j.ID)
	if v.State != StateCancelled {
		t.Fatalf("cancelled matrix job state %q (error %q)", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "cancelled") {
		t.Errorf("cancelled job error %q", v.Error)
	}
	if v.Progress == nil || v.Progress.Done < 1 || v.Progress.Done >= v.Progress.Total {
		t.Errorf("cancelled matrix progress %+v, want partial", v.Progress)
	}

	// Resume: the identical request completes, serving the cancelled
	// run's persisted cells from the store.
	code, j2 := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("resume POST status %d", code)
	}
	v2 := pollDone(t, ts.URL, j2.ID)
	if v2.State != StateDone {
		t.Fatalf("resumed job: %+v", v2)
	}
	var r MatrixJobResult
	if err := json.Unmarshal(v2.Result, &r); err != nil {
		t.Fatal(err)
	}
	if r.Stats.CacheHits < 1 {
		t.Errorf("resumed run reused no cells: %+v", r.Stats)
	}
}

// TestJobsPaginationAndFilter: GET /v1/jobs pages with limit/after and
// filters by state.
func TestJobsPaginationAndFilter(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	for i := 0; i < 5; i++ {
		j, qerr := s.enqueue("noop", 0, noopRun)
		if qerr != nil {
			t.Fatal(qerr)
		}
		waitState(t, s, j.id, StateDone)
	}
	gate := make(chan struct{})
	defer close(gate)
	running, qerr := s.enqueue("block", 0, gatedRun(gate))
	if qerr != nil {
		t.Fatal(qerr)
	}
	waitState(t, s, running.id, StateRunning)

	list := func(query string) (views []JobView, nextAfter string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: status %d", query, resp.StatusCode)
		}
		var out struct {
			Jobs      []JobView `json:"jobs"`
			NextAfter string    `json:"next_after"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs, out.NextAfter
	}

	// Page through all six jobs two at a time.
	var ids []string
	after := ""
	for page := 0; page < 4; page++ {
		views, next := list("?limit=2" + after)
		for _, v := range views {
			ids = append(ids, v.ID)
		}
		if next == "" {
			break
		}
		after = "&after=" + next
	}
	if len(ids) != 6 {
		t.Fatalf("paged listing returned %d jobs: %v", len(ids), ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("listing out of creation order: %v", ids)
		}
	}

	if views, next := list("?state=done"); len(views) != 5 || next != "" {
		t.Errorf("state=done listed %d jobs (next %q), want 5", len(views), next)
	}
	if views, _ := list("?state=running"); len(views) != 1 || views[0].ID != running.id {
		t.Errorf("state=running listed %+v, want just %s", views, running.id)
	}
	if views, _ := list("?state=failed"); len(views) != 0 {
		t.Errorf("state=failed listed %d jobs, want 0", len(views))
	}

	for _, q := range []string{"?state=bogus", "?limit=0", "?limit=abc", "?after=xyz"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestPriorityOrdering: with one worker busy, a later high-priority job
// overtakes earlier normal-priority ones in the queue.
func TestPriorityOrdering(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	gate := make(chan struct{})
	blocker, qerr := s.enqueue("block", 0, gatedRun(gate))
	if qerr != nil {
		t.Fatal(qerr)
	}
	waitState(t, s, blocker.id, StateRunning)
	normal, qerr := s.enqueue("noop", 0, noopRun)
	if qerr != nil {
		t.Fatal(qerr)
	}
	urgent, qerr := s.enqueue("noop", 5, noopRun)
	if qerr != nil {
		t.Fatal(qerr)
	}
	close(gate)
	waitState(t, s, normal.id, StateDone)
	waitState(t, s, urgent.id, StateDone)
	s.mu.Lock()
	normalFin, urgentFin := normal.finSeq, urgent.finSeq
	s.mu.Unlock()
	if urgentFin >= normalFin {
		t.Errorf("priority 5 job finished #%d, after priority 0 job #%d", urgentFin, normalFin)
	}
}

// TestPriorityShedding: past the half-depth high-water mark,
// negative-priority jobs shed with 503 + Retry-After while
// normal-priority jobs still queue.
func TestPriorityShedding(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	gate := make(chan struct{})
	defer close(gate)
	blocker, qerr := s.enqueue("block", 0, gatedRun(gate))
	if qerr != nil {
		t.Fatal(qerr)
	}
	waitState(t, s, blocker.id, StateRunning)
	// Two queued jobs reach the high-water mark (ceil(4+1)/2 = 2).
	for i := 0; i < 2; i++ {
		if _, qerr := s.enqueue("block", 0, gatedRun(gate)); qerr != nil {
			t.Fatal(qerr)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"synth","grid":"4x5","iterations":1000,"restarts":1,"priority":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "shed_low_priority" {
		t.Fatalf("low-priority POST: status %d code %q, want 503 shed_low_priority", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	// A normal-priority job still gets in.
	if code, _ := postReq(t, ts.URL+"/v1/jobs", `{"kind":"synth","grid":"4x5","iterations":1000,"restarts":1}`); code != http.StatusAccepted {
		t.Errorf("normal-priority POST above high water: status %d, want 202", code)
	}
}

// TestRateLimit: the per-client token bucket rejects the POST that
// exceeds the burst with 429 + Retry-After; reads stay unthrottled.
func TestRateLimit(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 8, RatePerSec: 0.5, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	body := `{"kind":"synth","grid":"4x5","iterations":1000,"restarts":1}`
	for i := 0; i < 2; i++ {
		if code, _ := postReq(t, ts.URL+"/v1/jobs", body); code != http.StatusAccepted {
			t.Fatalf("POST %d within burst: status %d", i, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != "rate_limited" {
		t.Fatalf("over-burst POST: status %d code %q, want 429 rate_limited", resp.StatusCode, env.Error.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limited response missing Retry-After")
	}
	// Reads are never limited.
	for i := 0; i < 5; i++ {
		r, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET under rate limit: status %d", r.StatusCode)
		}
	}
}

// TestMetrics: /metrics speaks Prometheus text and reflects job and
// cell accounting after a matrix job.
func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	code, j := postReq(t, ts.URL+"/v1/jobs", `{"kind":"matrix","grid":"3x3","rates":[0.02],"fidelity":"smoke","seed":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	pollDone(t, ts.URL, j.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`netsmith_jobs{state="done"} 1`,
		`netsmith_jobs_accepted_total{kind="matrix"} 1`,
		`netsmith_matrix_cells_total{source="computed"} 1`,
		"netsmith_queue_depth 0",
		"netsmith_queue_capacity 8",
		"netsmith_cells_per_second",
		"netsmith_cache_hit_ratio",
		"netsmith_cluster_workers_live 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSSEJobEvents: the events stream emits the job envelope on every
// change and terminates with the terminal event.
func TestSSEJobEvents(t *testing.T) {
	_, ts := newTestServer(t)
	code, j := postReq(t, ts.URL+"/v1/jobs", `{"kind":"matrix","grid":"3x3","patterns":["uniform","tornado"],"rates":[0.02,0.1],"fidelity":"smoke","seed":21}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var events []JobView
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var v JobView
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, v)
	}
	// The stream must have closed itself (terminal event last), with
	// every event belonging to the job and progress monotone.
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	final := events[len(events)-1]
	if final.State != StateDone {
		t.Fatalf("final SSE event state %q: %+v", final.State, final)
	}
	if final.Progress == nil || final.Progress.Done != final.Progress.Total || final.Progress.Total != 4 {
		t.Errorf("final SSE progress %+v, want 4/4", final.Progress)
	}
	lastDone := -1
	for _, e := range events {
		if e.ID != j.ID {
			t.Errorf("SSE event for wrong job: %+v", e)
		}
		if e.Progress != nil {
			if e.Progress.Done < lastDone {
				t.Errorf("SSE progress went backwards: %d after %d", e.Progress.Done, lastDone)
			}
			lastDone = e.Progress.Done
		}
	}

	// Streaming an unknown job is a plain 404.
	r2, err := http.Get(ts.URL + "/v1/jobs/j999999/events")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: status %d", r2.StatusCode)
	}
}

// TestErrorEnvelopeShape pins the wire shape literally: every error is
// {"error":{"code","message"}} — no flat-string bodies anywhere.
func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs/j424242")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]map[string]string
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("error body is not a nested envelope: %s", body)
	}
	if raw["error"]["code"] == "" || raw["error"]["message"] == "" {
		t.Fatalf("error envelope incomplete: %s", body)
	}
}
