package serve

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"netsmith/internal/exp"
	"netsmith/internal/sim"
)

// serverStats accumulates the counters behind /metrics; guarded by
// Server.mu.
type serverStats struct {
	accepted         map[string]int64 // jobs accepted, by kind
	shedTotal        int64            // POSTs rejected by admission (full queue or priority shed)
	rateLimitedTotal int64
	cancelledTotal   int64

	cellsComputed int64 // matrix cells simulated (local + cluster shards)
	cellsCached   int64 // matrix cells served from the store
	busy          time.Duration
	synthRuns     int64
	synthCached   int64

	// Fleet-level energy accounting, accumulated over served frontiers.
	// The power/energy sums divide out at scrape time into the exported
	// idle/active shares and the mean energy per delivered flit.
	paretoSweeps  int64
	paretoKept    int64
	paretoPruned  int64
	fleetPowerMW  float64
	fleetIdleMW   float64
	fleetActiveMW float64
	fleetFlitPJ   float64 // Σ per-frontier mean energy per flit
}

func (s *Server) noteSynth(hit bool) {
	s.mu.Lock()
	s.stats.synthRuns++
	if hit {
		s.stats.synthCached++
	}
	s.mu.Unlock()
}

// noteMatrix folds one matrix (or shard) execution into the counters.
// elapsed is wall time spent executing — cells/busy-second is the
// cluster's aggregate simulation throughput.
func (s *Server) noteMatrix(stats sim.MatrixStats, elapsed time.Duration) {
	s.mu.Lock()
	s.stats.cellsComputed += int64(stats.Computed)
	s.stats.cellsCached += int64(stats.CacheHits)
	s.stats.busy += elapsed
	s.mu.Unlock()
}

// notePareto folds one completed sweep into the counters. stats
// carries only the cell work to charge here — cluster merges pass the
// merge-time split because shard completions already counted theirs.
func (s *Server) notePareto(fr *exp.Frontier, stats exp.ParetoStats, elapsed time.Duration) {
	s.mu.Lock()
	s.stats.paretoSweeps++
	s.stats.paretoKept += int64(len(fr.Points))
	s.stats.paretoPruned += int64(fr.Pruned)
	s.stats.fleetPowerMW += fr.Energy.AggregatePowerMW
	s.stats.fleetIdleMW += fr.Energy.IdlePowerMW
	s.stats.fleetActiveMW += fr.Energy.ActivePowerMW
	s.stats.fleetFlitPJ += fr.Energy.EnergyPerFlitPJ
	s.stats.cellsComputed += int64(stats.CellsComputed)
	s.stats.cellsCached += int64(stats.CellsCached)
	s.stats.busy += elapsed
	s.mu.Unlock()
}

// handleMetrics is GET /metrics: Prometheus text exposition, hand
// rolled (no client library dependency). Everything is a counter or
// gauge scraped from one lock acquisition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	byState := map[string]int{}
	for _, j := range s.jobs {
		byState[j.state]++
	}
	queued := s.queuedLocked()
	st := s.stats
	accepted := make(map[string]int64, len(st.accepted))
	for k, v := range st.accepted {
		accepted[k] = v
	}
	liveWorkers := 0
	for _, seen := range s.workersSeen {
		if now.Sub(seen) <= 2*s.cfg.LeaseTTL {
			liveWorkers++
		}
	}
	shardsByState := map[string]int{}
	for _, cr := range s.clusters {
		for i := range cr.shards {
			shardsByState[cr.shards[i].stateName(now)]++
		}
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP netsmith_jobs Jobs in the registry by state.\n# TYPE netsmith_jobs gauge\n")
	for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "netsmith_jobs{state=%q} %d\n", state, byState[state])
	}
	fmt.Fprintf(w, "# HELP netsmith_queue_depth Live queued jobs.\n# TYPE netsmith_queue_depth gauge\n")
	fmt.Fprintf(w, "netsmith_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# HELP netsmith_queue_capacity Configured queue bound.\n# TYPE netsmith_queue_capacity gauge\n")
	fmt.Fprintf(w, "netsmith_queue_capacity %d\n", s.cfg.QueueDepth)

	fmt.Fprintf(w, "# HELP netsmith_jobs_accepted_total Jobs accepted, by kind.\n# TYPE netsmith_jobs_accepted_total counter\n")
	kinds := make([]string, 0, len(accepted))
	for k := range accepted {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "netsmith_jobs_accepted_total{kind=%q} %d\n", k, accepted[k])
	}
	fmt.Fprintf(w, "# HELP netsmith_jobs_shed_total POSTs rejected by admission control.\n# TYPE netsmith_jobs_shed_total counter\n")
	fmt.Fprintf(w, "netsmith_jobs_shed_total %d\n", st.shedTotal)
	fmt.Fprintf(w, "# HELP netsmith_rate_limited_total POSTs rejected by the per-client rate limit.\n# TYPE netsmith_rate_limited_total counter\n")
	fmt.Fprintf(w, "netsmith_rate_limited_total %d\n", st.rateLimitedTotal)
	fmt.Fprintf(w, "# HELP netsmith_jobs_cancelled_total Jobs cancelled via DELETE.\n# TYPE netsmith_jobs_cancelled_total counter\n")
	fmt.Fprintf(w, "netsmith_jobs_cancelled_total %d\n", st.cancelledTotal)

	fmt.Fprintf(w, "# HELP netsmith_matrix_cells_total Matrix cells resolved, by source.\n# TYPE netsmith_matrix_cells_total counter\n")
	fmt.Fprintf(w, "netsmith_matrix_cells_total{source=\"computed\"} %d\n", st.cellsComputed)
	fmt.Fprintf(w, "netsmith_matrix_cells_total{source=\"cache\"} %d\n", st.cellsCached)
	total := st.cellsComputed + st.cellsCached
	ratio := 0.0
	if total > 0 {
		ratio = float64(st.cellsCached) / float64(total)
	}
	fmt.Fprintf(w, "# HELP netsmith_cache_hit_ratio Fraction of matrix cells served from the store.\n# TYPE netsmith_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "netsmith_cache_hit_ratio %g\n", ratio)
	cellsPerSec := 0.0
	if st.busy > 0 {
		cellsPerSec = float64(total) / st.busy.Seconds()
	}
	fmt.Fprintf(w, "# HELP netsmith_cells_per_second Matrix cells resolved per busy second.\n# TYPE netsmith_cells_per_second gauge\n")
	fmt.Fprintf(w, "netsmith_cells_per_second %g\n", cellsPerSec)

	fmt.Fprintf(w, "# HELP netsmith_synth_runs_total Synthesis executions (cached or searched).\n# TYPE netsmith_synth_runs_total counter\n")
	fmt.Fprintf(w, "netsmith_synth_runs_total %d\n", st.synthRuns)
	fmt.Fprintf(w, "netsmith_synth_cached_total %d\n", st.synthCached)

	fmt.Fprintf(w, "# HELP netsmith_pareto_sweeps_total Pareto sweeps served.\n# TYPE netsmith_pareto_sweeps_total counter\n")
	fmt.Fprintf(w, "netsmith_pareto_sweeps_total %d\n", st.paretoSweeps)
	fmt.Fprintf(w, "# HELP netsmith_pareto_points_total Sweep points by frontier outcome.\n# TYPE netsmith_pareto_points_total counter\n")
	fmt.Fprintf(w, "netsmith_pareto_points_total{result=\"kept\"} %d\n", st.paretoKept)
	fmt.Fprintf(w, "netsmith_pareto_points_total{result=\"pruned\"} %d\n", st.paretoPruned)
	fmt.Fprintf(w, "# HELP netsmith_fleet_power_mw Aggregate frontier power served, milliwatts.\n# TYPE netsmith_fleet_power_mw gauge\n")
	fmt.Fprintf(w, "netsmith_fleet_power_mw %g\n", st.fleetPowerMW)
	idleShare, activeShare := 0.0, 0.0
	if st.fleetPowerMW > 0 {
		idleShare = st.fleetIdleMW / st.fleetPowerMW
		activeShare = st.fleetActiveMW / st.fleetPowerMW
	}
	fmt.Fprintf(w, "# HELP netsmith_fleet_idle_power_share Idle (leakage) fraction of served frontier power.\n# TYPE netsmith_fleet_idle_power_share gauge\n")
	fmt.Fprintf(w, "netsmith_fleet_idle_power_share %g\n", idleShare)
	fmt.Fprintf(w, "# HELP netsmith_fleet_active_power_share Active (dynamic) fraction of served frontier power.\n# TYPE netsmith_fleet_active_power_share gauge\n")
	fmt.Fprintf(w, "netsmith_fleet_active_power_share %g\n", activeShare)
	flitPJ := 0.0
	if st.paretoSweeps > 0 {
		flitPJ = st.fleetFlitPJ / float64(st.paretoSweeps)
	}
	fmt.Fprintf(w, "# HELP netsmith_fleet_energy_per_flit_pj Mean energy per delivered flit across served frontiers, picojoules.\n# TYPE netsmith_fleet_energy_per_flit_pj gauge\n")
	fmt.Fprintf(w, "netsmith_fleet_energy_per_flit_pj %g\n", flitPJ)

	fmt.Fprintf(w, "# HELP netsmith_cluster_workers_live Workers seen within two lease TTLs.\n# TYPE netsmith_cluster_workers_live gauge\n")
	fmt.Fprintf(w, "netsmith_cluster_workers_live %d\n", liveWorkers)
	fmt.Fprintf(w, "# HELP netsmith_cluster_shards Active cluster shard leases by state.\n# TYPE netsmith_cluster_shards gauge\n")
	for _, state := range []string{"pending", "leased", "expired", "done"} {
		fmt.Fprintf(w, "netsmith_cluster_shards{state=%q} %d\n", state, shardsByState[state])
	}
}
