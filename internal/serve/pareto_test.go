package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"netsmith/internal/store"
)

// smokeParetoBody is the smallest served sweep exercising every stage:
// two energy weights, tiny synthesis budget, smoke cycle budgets.
const smokeParetoBody = `{"grid":"3x3","energy_weights":[0,1.5],"rates":[0.02,0.3],"fidelity":"smoke","seed":7,"synth_iterations":400}`

func decodePareto(t *testing.T, v JobView) ParetoJobResult {
	t.Helper()
	var r ParetoJobResult
	if err := json.Unmarshal(v.Result, &r); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestParetoJobLifecycle: POST /v1/pareto computes a frontier; the
// identical repeat (via the tagged /v1/jobs form) is a cache hit with a
// byte-identical frontier; and the served frontier matches the
// in-process ExecutePareto path bit for bit.
func TestParetoJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	code, j := postReq(t, ts.URL+"/v1/pareto", smokeParetoBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/pareto status %d", code)
	}
	if j.Kind != "pareto" {
		t.Errorf("job kind %q, want pareto", j.Kind)
	}
	v := pollDone(t, ts.URL, j.ID)
	if v.State != StateDone {
		t.Fatalf("pareto job: state %q error %q", v.State, v.Error)
	}
	if v.CacheHit {
		t.Error("cold sweep reported cache_hit")
	}
	if v.Progress == nil || v.Progress.Total != 4 || v.Progress.Done != 4 {
		t.Errorf("pareto progress %+v, want 4/4 (2 synth units + 2 measure units)", v.Progress)
	}
	r := decodePareto(t, v)
	if r.Frontier == nil || len(r.Frontier.Points) == 0 || r.Frontier.Swept != 2 {
		t.Fatalf("degenerate served frontier: %+v", r.Frontier)
	}
	if r.Stats.Synthesized != 2 || r.Stats.FrontierCached {
		t.Errorf("cold sweep stats %+v, want 2 synthesized, frontier not cached", r.Stats)
	}
	for _, p := range r.Frontier.Points {
		if p.AvgPowerMW <= 0 || p.EnergyPerFlitPJ <= 0 || p.IdleShare+p.ActiveShare == 0 {
			t.Errorf("served point lacks energy accounting: %+v", p)
		}
	}
	if r.Frontier.Energy.AggregatePowerMW <= 0 {
		t.Errorf("served frontier lacks fleet energy: %+v", r.Frontier.Energy)
	}
	frontierBytes, err := json.Marshal(r.Frontier)
	if err != nil {
		t.Fatal(err)
	}

	// The tagged /v1/jobs form is the same job; the warm store answers
	// it without recomputing, byte-identically.
	code, j2 := postReq(t, ts.URL+"/v1/jobs", `{"kind":"pareto",`+smokeParetoBody[1:])
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs kind=pareto status %d", code)
	}
	v2 := pollDone(t, ts.URL, j2.ID)
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("repeat sweep: state %q cache_hit %v, want done hit", v2.State, v2.CacheHit)
	}
	r2 := decodePareto(t, v2)
	if !r2.Stats.FrontierCached {
		t.Errorf("repeat sweep stats %+v, want frontier_cached", r2.Stats)
	}
	warmBytes, err := json.Marshal(r2.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frontierBytes, warmBytes) {
		t.Error("warm served frontier differs from cold served frontier")
	}

	// In-process path (the Client's local mode), cold store: identical
	// frontier bytes to the served runs.
	cold, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var req ParetoRequest
	if err := json.Unmarshal([]byte(smokeParetoBody), &req); err != nil {
		t.Fatal(err)
	}
	local, hit, err := ExecutePareto(context.Background(), cold, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("cold ExecutePareto reported a cache hit")
	}
	localBytes, err := json.Marshal(local.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frontierBytes, localBytes) {
		t.Errorf("in-process frontier differs from served frontier:\n%s\n----\n%s", localBytes, frontierBytes)
	}

	// Metrics reflect the sweeps and the fleet energy accounting.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`netsmith_jobs_accepted_total{kind="pareto"} 2`,
		"netsmith_pareto_sweeps_total 2",
		`netsmith_pareto_points_total{result="kept"}`,
		`netsmith_pareto_points_total{result="pruned"}`,
		"netsmith_fleet_power_mw",
		"netsmith_fleet_idle_power_share 0.",
		"netsmith_fleet_active_power_share 0.",
		"netsmith_fleet_energy_per_flit_pj",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, "netsmith_fleet_power_mw 0\n") {
		t.Error("fleet power gauge is zero after two sweeps")
	}
	if strings.Contains(text, "netsmith_fleet_energy_per_flit_pj 0\n") {
		t.Error("fleet energy-per-flit gauge is zero after two sweeps")
	}
	_ = s
}

// TestParetoSSEProgress: the events stream reports per-point sweep
// progress (total = 2 x points) and terminates on the terminal event.
func TestParetoSSEProgress(t *testing.T) {
	_, ts := newTestServer(t)
	code, j := postReq(t, ts.URL+"/v1/pareto", smokeParetoBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []JobView
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var v JobView
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, v)
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	final := events[len(events)-1]
	if final.State != StateDone {
		t.Fatalf("final SSE state %q (error %q)", final.State, final.Error)
	}
	if final.Progress == nil || final.Progress.Total != 4 || final.Progress.Done != 4 {
		t.Errorf("final SSE progress %+v, want 4/4", final.Progress)
	}
	lastDone := -1
	for _, e := range events {
		if e.Progress != nil {
			if e.Progress.Done < lastDone {
				t.Errorf("SSE progress went backwards: %d after %d", e.Progress.Done, lastDone)
			}
			lastDone = e.Progress.Done
		}
	}
}

// TestParetoCancelMidSweep: DELETE mid-sweep cancels between synthesis
// points; the job lands cancelled with partial progress, and a resumed
// identical POST completes reusing the cancelled run's persisted work.
func TestParetoCancelMidSweep(t *testing.T) {
	s, ts := newTestServer(t)
	// A wider, slower sweep so cancellation lands mid-run.
	body := `{"grid":"4x4","energy_weights":[0,0.5,1,1.5,2,2.5],"rates":[0.02,0.3],"fidelity":"smoke","seed":7,"synth_iterations":6000}`
	code, j := postReq(t, ts.URL+"/v1/pareto", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		s.mu.Lock()
		done := s.jobs[j.ID].progressDone
		s.mu.Unlock()
		if done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pareto job never resolved a point")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _, _ := doDelete(t, ts.URL+"/v1/jobs/"+j.ID); code != http.StatusOK {
		t.Fatalf("DELETE running pareto: status %d", code)
	}
	v := pollDone(t, ts.URL, j.ID)
	if v.State != StateCancelled {
		t.Fatalf("cancelled pareto job state %q (error %q)", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "cancel") {
		t.Errorf("cancelled job error %q", v.Error)
	}
	if v.Progress == nil || v.Progress.Done < 1 || v.Progress.Done >= v.Progress.Total {
		t.Errorf("cancelled pareto progress %+v, want partial", v.Progress)
	}

	// Resume: the identical request completes from the persisted points.
	code, j2 := postReq(t, ts.URL+"/v1/pareto", body)
	if code != http.StatusAccepted {
		t.Fatalf("resume POST status %d", code)
	}
	v2 := pollDone(t, ts.URL, j2.ID)
	if v2.State != StateDone {
		t.Fatalf("resumed pareto job: state %q error %q", v2.State, v2.Error)
	}
	r := decodePareto(t, v2)
	if r.Stats.SynthCached < 1 {
		t.Errorf("resumed sweep reused no synthesis results: %+v", r.Stats)
	}
}

// TestClusterParetoSweep: a pareto job fanned out across two cluster
// workers (self-work disabled, so they must execute the point leases)
// merges into a frontier byte-identical to a single-process sweep,
// with every point and cell accounted for exactly once.
func TestClusterParetoSweep(t *testing.T) {
	s, ts, dir := newClusterServer(t, Config{LeaseTTL: 2 * time.Second, DisableSelfWork: true})
	startWorker(t, ts.URL, dir, "pw1")
	startWorker(t, ts.URL, dir, "pw2")

	body := `{"kind":"pareto",` + smokeParetoBody[1:len(smokeParetoBody)-1] + `,"shards":2}`
	code, j := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	v := pollDone(t, ts.URL, j.ID)
	if v.State != StateDone {
		t.Fatalf("cluster pareto job state %q (error %q)", v.State, v.Error)
	}
	r := decodePareto(t, v)
	if r.Shards != 2 {
		t.Errorf("result shards = %d, want 2", r.Shards)
	}
	if r.Stats.Points != 2 || r.Stats.Synthesized+r.Stats.SynthCached != 2 {
		t.Errorf("cluster pareto stats %+v, want 2 points fully accounted", r.Stats)
	}
	if r.Stats.Synthesized == 0 {
		t.Error("workers synthesized nothing — did self-work run?")
	}
	if r.Stats.CellsComputed+r.Stats.CellsCached != r.Stats.Cells {
		t.Errorf("cluster pareto cell split inconsistent: %+v", r.Stats)
	}
	clusterBytes, err := json.Marshal(r.Frontier)
	if err != nil {
		t.Fatal(err)
	}

	// Single-process reference over a fresh store.
	cold, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var req ParetoRequest
	if err := json.Unmarshal([]byte(smokeParetoBody), &req); err != nil {
		t.Fatal(err)
	}
	local, _, err := ExecutePareto(context.Background(), cold, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := json.Marshal(local.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clusterBytes, localBytes) {
		t.Errorf("cluster frontier differs from single-process sweep:\n%s\n----\n%s", clusterBytes, localBytes)
	}

	// Both workers were seen; the repeat POST is a pure frontier hit.
	s.mu.Lock()
	_, saw1 := s.workersSeen["pw1"]
	_, saw2 := s.workersSeen["pw2"]
	s.mu.Unlock()
	if !saw1 || !saw2 {
		t.Errorf("worker liveness: pw1=%v pw2=%v", saw1, saw2)
	}
	code, j2 := postReq(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("repeat POST status %d", code)
	}
	v2 := pollDone(t, ts.URL, j2.ID)
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("repeat cluster sweep: state %q cache_hit %v, want done hit", v2.State, v2.CacheHit)
	}
	if r2 := decodePareto(t, v2); !r2.Stats.FrontierCached {
		t.Errorf("repeat cluster sweep stats %+v, want frontier_cached", r2.Stats)
	}
}

// TestParetoRequestValidation: statically invalid sweeps 400 at POST
// time instead of failing in the queue.
func TestParetoRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	// 65 distinct energy weights: one over the point cap.
	var wide strings.Builder
	wide.WriteString(`{"grid":"3x3","energy_weights":[0`)
	for i := 1; i <= 64; i++ {
		fmt.Fprintf(&wide, ",%d", i)
	}
	wide.WriteString(`]}`)
	for name, body := range map[string]string{
		"missing grid":      `{"energy_weights":[0,1]}`,
		"bad grid":          `{"grid":"0x9"}`,
		"bad class":         `{"grid":"3x3","class":"giant"}`,
		"duplicate weights": `{"grid":"3x3","energy_weights":[1,1]}`,
		"negative weight":   `{"grid":"3x3","energy_weights":[-1]}`,
		"unsorted rates":    `{"grid":"3x3","rates":[0.2,0.1]}`,
		"bad fidelity":      `{"grid":"3x3","fidelity":"warp"}`,
		"too many points":   wide.String(),
		"unknown field":     `{"grid":"3x3","bogus":1}`,
		"negative shards":   `{"grid":"3x3","shards":-1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/pareto", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
