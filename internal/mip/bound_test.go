package mip

import (
	"math"
	"testing"
)

// A radix-1 topology is a path: the k-th closest node is at distance k,
// so the per-source distance sum is 1+2+...+(n-1).
func TestDistanceLevelBoundPath(t *testing.T) {
	got, err := DistanceLevelBound(5, 1, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(1 + 2 + 3 + 4); math.Abs(got-want) > 1e-6 {
		t.Fatalf("radix-1 bound = %v, want %v", got, want)
	}
}

// With radix 2 and no reachability restriction the Moore levels are
// 2, 4, ...: for n=7 the optimum packs 2 nodes at distance 1 and 4 at
// distance 2 — 2*1 + 4*2 = 10.
func TestDistanceLevelBoundMoore(t *testing.T) {
	got, err := DistanceLevelBound(7, 2, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if want := 10.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("moore bound = %v, want %v", got, want)
	}
}

// The branching constraint must tighten the bound beyond independent
// per-level caps: with radix 4 but only one reachable neighbor at
// distance 1, level 2 is capped at 4*1 = 4 even though the full graph
// reaches 7 nodes within two hops. n=9: y = (1, 4, 3) -> 1 + 8 + 9 = 18,
// whereas per-level caps alone would allow (1, 6, 1) -> 16.
func TestDistanceLevelBoundBranchingTightens(t *testing.T) {
	got, err := DistanceLevelBound(9, 4, []int{1, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := 18.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("branching bound = %v, want %v", got, want)
	}
}

// Reachability horizons shorter than the eventual diameter must not make
// the LP infeasible: levels past the profile reuse the final capacity.
func TestDistanceLevelBoundExtendsHorizon(t *testing.T) {
	// radix 1 forces one node per level; the profile only describes two
	// hops but the path needs five levels.
	got, err := DistanceLevelBound(6, 1, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(1 + 2 + 3 + 4 + 5); math.Abs(got-want) > 1e-6 {
		t.Fatalf("extended-horizon bound = %v, want %v", got, want)
	}
}

func TestDistanceLevelBoundErrors(t *testing.T) {
	if _, err := DistanceLevelBound(1, 2, []int{1}); err == nil {
		t.Error("n < 2 should error")
	}
	if _, err := DistanceLevelBound(5, 0, []int{4}); err == nil {
		t.Error("radix < 1 should error")
	}
	if _, err := DistanceLevelBound(5, 2, nil); err == nil {
		t.Error("empty profile should error")
	}
	if _, err := DistanceLevelBound(5, 2, []int{3}); err == nil {
		t.Error("profile that never reaches n-1 should error")
	}
}
