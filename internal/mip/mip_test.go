package mip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLPSimple2D(t *testing.T) {
	// minimize -x - 2y s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0.
	// Optimum at (1, 3): obj -7.
	p := NewProblem()
	x := p.AddVar(0, 2, -1, "x")
	y := p.AddVar(0, 3, -2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, -7, 1e-6) {
		t.Errorf("obj = %v, want -7 (x=%v y=%v)", sol.Obj, sol.Value(x), sol.Value(y))
	}
}

func TestLPEqualityAndGE(t *testing.T) {
	// minimize x + y s.t. x + y = 10, x >= 3, y >= 2  ->  obj 10.
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1), 1, "x")
	y := p.AddVar(0, math.Inf(1), 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint([]Term{{x, 1}}, GE, 3)
	p.AddConstraint([]Term{{y, 1}}, GE, 2)
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, 10, 1e-6) {
		t.Errorf("obj = %v, want 10", sol.Obj)
	}
	if sol.Value(x) < 3-1e-6 || sol.Value(y) < 2-1e-6 {
		t.Errorf("bound constraints violated: x=%v y=%v", sol.Value(x), sol.Value(y))
	}
}

func TestLPInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 1, 1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	sol, err := p.SolveLP()
	if err == nil || sol.Status != Infeasible {
		t.Errorf("expected infeasible, got %v err=%v", sol.Status, err)
	}
}

func TestLPUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1), -1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 0)
	sol, err := p.SolveLP()
	if err == nil || sol.Status != Unbounded {
		t.Errorf("expected unbounded, got %v err=%v", sol.Status, err)
	}
}

func TestLPLowerBoundsShift(t *testing.T) {
	// Variables with nonzero lower bounds: minimize x + y, x in [2,5],
	// y in [1,4], x + y >= 5  ->  obj 5.
	p := NewProblem()
	x := p.AddVar(2, 5, 1, "x")
	y := p.AddVar(1, 4, 1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 5)
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, 5, 1e-6) {
		t.Errorf("obj = %v, want 5", sol.Obj)
	}
	if sol.Value(x) < 2-1e-9 || sol.Value(y) < 1-1e-9 {
		t.Error("lower bounds violated")
	}
}

func TestLPDegenerate(t *testing.T) {
	// A degenerate LP that cycles under naive Dantzig (Beale-like).
	p := NewProblem()
	x1 := p.AddVar(0, math.Inf(1), -0.75, "x1")
	x2 := p.AddVar(0, math.Inf(1), 150, "x2")
	x3 := p.AddVar(0, math.Inf(1), -0.02, "x3")
	x4 := p.AddVar(0, math.Inf(1), 6, "x4")
	p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint([]Term{{x3, 1}}, LE, 1)
	sol, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, -0.05, 1e-6) {
		t.Errorf("Beale optimum = %v, want -0.05", sol.Obj)
	}
}

func TestMIPKnapsack(t *testing.T) {
	// maximize 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
	// Optimal: a + c? values: a,c = 17 (weight 5); b,c = 20 (weight 6). Answer 20.
	p := NewProblem()
	a := p.AddBinaryVar(-10, "a")
	b := p.AddBinaryVar(-13, "b")
	c := p.AddBinaryVar(-7, "c")
	p.AddConstraint([]Term{{a, 3}, {b, 4}, {c, 2}}, LE, 6)
	sol, err := p.SolveMIP(MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !approx(sol.Obj, -20, 1e-6) {
		t.Errorf("knapsack obj = %v, want -20", sol.Obj)
	}
	if !approx(sol.Value(b), 1, 1e-6) || !approx(sol.Value(c), 1, 1e-6) {
		t.Errorf("solution = %v, want b=c=1", sol.X)
	}
}

func TestMIPIntegerRounding(t *testing.T) {
	// minimize x s.t. 2x >= 5, integer: x = 3 (LP gives 2.5).
	p := NewProblem()
	x := p.AddIntVar(0, 10, 1, "x")
	p.AddConstraint([]Term{{x, 2}}, GE, 5)
	sol, err := p.SolveMIP(MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value(x), 3, 1e-9) {
		t.Errorf("x = %v, want 3", sol.Value(x))
	}
}

func TestMIPInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddBinaryVar(1, "x")
	y := p.AddBinaryVar(1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 3)
	if _, err := p.SolveMIP(MIPOptions{}); err == nil {
		t.Error("expected infeasible")
	}
}

func TestMIPMinMaxPathSelection(t *testing.T) {
	// A miniature MCLB: 3 flows, each choosing between 2 paths; paths
	// share links. Minimize max link load z.
	// Flow i picks p_i0 or p_i1. Link L is used by p_00, p_10, p_20;
	// links A,B,C by the alternatives. Optimal z = 1 (spread out).
	p := NewProblem()
	z := p.AddVar(0, math.Inf(1), 1, "z")
	var pick [3][2]Var
	for i := 0; i < 3; i++ {
		pick[i][0] = p.AddBinaryVar(0, "p0")
		pick[i][1] = p.AddBinaryVar(0, "p1")
		p.AddConstraint([]Term{{pick[i][0], 1}, {pick[i][1], 1}}, EQ, 1)
	}
	// Shared link load: sum of first choices <= z.
	p.AddConstraint([]Term{{pick[0][0], 1}, {pick[1][0], 1}, {pick[2][0], 1}, {z, -1}}, LE, 0)
	// Each alternative has a private link: load pick[i][1] <= z.
	for i := 0; i < 3; i++ {
		p.AddConstraint([]Term{{pick[i][1], 1}, {z, -1}}, LE, 0)
	}
	sol, err := p.SolveMIP(MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Obj, 1, 1e-6) {
		t.Errorf("minmax load = %v, want 1", sol.Obj)
	}
}

func TestMIPNodeLimit(t *testing.T) {
	// A problem needing branching, with MaxNodes=1: should report
	// NodeLimit (with or without incumbent).
	p := NewProblem()
	x := p.AddIntVar(0, 10, 1, "x")
	y := p.AddIntVar(0, 10, 1, "y")
	p.AddConstraint([]Term{{x, 2}, {y, 2}}, GE, 7)
	sol, _ := p.SolveMIP(MIPOptions{MaxNodes: 1})
	if sol.Status != NodeLimit {
		t.Errorf("status = %v, want node-limit", sol.Status)
	}
}

// Property: LP relaxation is never worse (higher, for minimization) than
// the MIP optimum on random small knapsacks, and MIP solutions are
// integral and feasible.
func TestLPBoundsMIPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		n := 4 + rng.Intn(3)
		vars := make([]Var, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			vars[i] = p.AddBinaryVar(-(1 + float64(rng.Intn(20))), "v")
			weights[i] = 1 + float64(rng.Intn(10))
		}
		terms := make([]Term, n)
		cap := 1 + rng.Float64()*20
		for i := range vars {
			terms[i] = Term{vars[i], weights[i]}
		}
		p.AddConstraint(terms, LE, cap)
		lp, err1 := p.SolveLP()
		ip, err2 := p.SolveMIP(MIPOptions{})
		if err1 != nil || err2 != nil {
			return false // knapsack with empty selection is always feasible
		}
		if lp.Obj > ip.Obj+1e-6 {
			return false // relaxation must lower-bound
		}
		load := 0.0
		for i := range vars {
			v := ip.Value(vars[i])
			if !isIntegral(v) {
				return false
			}
			load += weights[i] * v
		}
		return load <= cap+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
