package mip

import "fmt"

// DistanceLevelBound computes a rigorous lower bound on the sum of
// shortest-path distances from one source to the n-1 other nodes of any
// feasible topology, by solving a small LP over distance-level counts.
//
// The model has one variable y_d per distance level d = 1..D (the number
// of nodes at exactly distance d from the source), minimizing
// sum(d * y_d) subject to:
//
//   - sum(y_d) = n-1: every node sits at some finite distance (any
//     feasible topology is strongly connected);
//   - y_1 <= radix: the source has at most radix out-links;
//   - y_{d+1} <= radix * y_d: each node at distance d contributes at
//     most radix out-links, so the next level cannot be more than radix
//     times larger (the Moore argument, level by level);
//   - sum(y_{d'} for d' <= d) <= cumReach[d-1]: no topology can reach
//     more nodes within d hops than the "full" graph containing every
//     valid candidate link does (adding links never increases
//     distances).
//
// cumReach[d-1] is that reachability capacity for level d; levels past
// len(cumReach) reuse the final entry (reachability saturates at the
// full graph's horizon) and D extends to n-1, the longest possible
// shortest path, so topologies with a larger diameter than the full
// graph remain feasible points of the relaxation.
//
// The LP relaxes true level vectors (integrality is dropped), so its
// optimum is a valid lower bound — and because the branching constraint
// couples consecutive levels, it dominates bounds that cap each level
// independently. An error is returned only for malformed inputs
// (n < 2, radix < 1, empty cumReach, or a final capacity below n-1,
// which means even the full graph cannot reach every node).
func DistanceLevelBound(n, radix int, cumReach []int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("mip: DistanceLevelBound needs n >= 2, got %d", n)
	}
	if radix < 1 {
		return 0, fmt.Errorf("mip: DistanceLevelBound needs radix >= 1, got %d", radix)
	}
	if len(cumReach) == 0 {
		return 0, fmt.Errorf("mip: DistanceLevelBound needs a reachability profile")
	}
	if last := cumReach[len(cumReach)-1]; last < n-1 {
		return 0, fmt.Errorf("mip: full-graph reachability %d < n-1 = %d (no feasible topology)", last, n-1)
	}
	maxD := n - 1
	p := NewProblem()
	ys := make([]Var, maxD)
	sum := make([]Term, 0, maxD)
	for d := 1; d <= maxD; d++ {
		cap := cumReach[len(cumReach)-1]
		if d-1 < len(cumReach) {
			cap = cumReach[d-1]
		}
		ys[d-1] = p.AddVar(0, float64(cap), float64(d), fmt.Sprintf("y%d", d))
		sum = append(sum, Term{Var: ys[d-1], Coeff: 1})
		// Cumulative reachability: levels 1..d together cannot exceed the
		// full graph's d-hop horizon.
		p.AddConstraint(append([]Term(nil), sum...), LE, float64(cap))
	}
	p.AddConstraint(sum, EQ, float64(n-1))
	p.AddConstraint([]Term{{Var: ys[0], Coeff: 1}}, LE, float64(radix))
	for d := 1; d < maxD; d++ {
		p.AddConstraint([]Term{
			{Var: ys[d], Coeff: 1},
			{Var: ys[d-1], Coeff: -float64(radix)},
		}, LE, 0)
	}
	sol, err := p.SolveLP()
	if err != nil {
		return 0, err
	}
	if sol.Status != Optimal {
		return 0, fmt.Errorf("mip: DistanceLevelBound LP ended %s", sol.Status)
	}
	return sol.Obj, nil
}
