package mip

import (
	"container/heap"
	"math"
)

// MIPOptions controls branch-and-bound.
type MIPOptions struct {
	// MaxNodes caps explored nodes (default 100000). When exceeded, the
	// best incumbent is returned with Status NodeLimit.
	MaxNodes int
}

// SolveMIP solves the problem with integrality enforced on integer
// variables, using best-first branch-and-bound over LP relaxations.
func (p *Problem) SolveMIP(opts MIPOptions) (*Solution, error) {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 100000
	}
	root := &bbNode{lb: make([]float64, len(p.vars)), ub: make([]float64, len(p.vars))}
	for j, v := range p.vars {
		root.lb[j] = v.lb
		root.ub[j] = v.ub
	}
	rootSol, err := p.solveWithBounds(root)
	if err != nil {
		return &Solution{Status: Infeasible}, ErrNoSolution
	}
	root.bound = rootSol.Obj
	root.relax = rootSol

	var incumbent *Solution
	pq := &nodeQueue{root}
	nodes := 0
	hitLimit := false
	for pq.Len() > 0 {
		if nodes >= opts.MaxNodes {
			hitLimit = true
			break
		}
		node := heap.Pop(pq).(*bbNode)
		nodes++
		if incumbent != nil && node.bound >= incumbent.Obj-1e-9 {
			continue // cannot improve
		}
		sol := node.relax
		if sol == nil {
			s, err := p.solveWithBounds(node)
			if err != nil {
				continue // infeasible branch
			}
			sol = s
			if incumbent != nil && sol.Obj >= incumbent.Obj-1e-9 {
				continue
			}
		}
		// Find the most fractional integer variable.
		branchVar := -1
		worst := 1e-6
		for j, v := range p.vars {
			if !v.integer {
				continue
			}
			frac := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if frac > worst {
				worst = frac
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integral: candidate incumbent.
			if incumbent == nil || sol.Obj < incumbent.Obj-1e-9 {
				rounded := *sol
				rounded.X = append([]float64(nil), sol.X...)
				for j, v := range p.vars {
					if v.integer {
						rounded.X[j] = math.Round(rounded.X[j])
					}
				}
				incumbent = &rounded
			}
			continue
		}
		val := sol.X[branchVar]
		down := node.child(branchVar, node.lb[branchVar], math.Floor(val))
		up := node.child(branchVar, math.Ceil(val), node.ub[branchVar])
		for _, ch := range []*bbNode{down, up} {
			if ch.lb[branchVar] > ch.ub[branchVar]+1e-9 {
				continue
			}
			s, err := p.solveWithBounds(ch)
			if err != nil {
				continue
			}
			ch.bound = s.Obj
			ch.relax = s
			if incumbent == nil || ch.bound < incumbent.Obj-1e-9 {
				heap.Push(pq, ch)
			}
		}
	}
	if incumbent == nil {
		if hitLimit {
			return &Solution{Status: NodeLimit}, ErrNoSolution
		}
		return &Solution{Status: Infeasible}, ErrNoSolution
	}
	if hitLimit {
		incumbent.Status = NodeLimit
	} else {
		incumbent.Status = Optimal
	}
	return incumbent, nil
}

// bbNode carries per-node variable bound overrides.
type bbNode struct {
	lb, ub []float64
	bound  float64
	relax  *Solution
}

func (n *bbNode) child(j int, lb, ub float64) *bbNode {
	c := &bbNode{
		lb: append([]float64(nil), n.lb...),
		ub: append([]float64(nil), n.ub...),
	}
	c.lb[j] = lb
	c.ub[j] = ub
	return c
}

// solveWithBounds solves the LP relaxation under node bounds by cloning
// the problem with tightened variable bounds.
func (p *Problem) solveWithBounds(n *bbNode) (*Solution, error) {
	q := &Problem{cons: p.cons, vars: make([]variable, len(p.vars))}
	copy(q.vars, p.vars)
	for j := range q.vars {
		q.vars[j].lb = n.lb[j]
		q.vars[j].ub = n.ub[j]
		if q.vars[j].lb > q.vars[j].ub {
			return nil, ErrNoSolution
		}
	}
	sol, err := q.SolveLP()
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// nodeQueue is a best-bound priority queue.
type nodeQueue []*bbNode

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*bbNode)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
