package mip

import (
	"math"
)

// SolveLP solves the linear relaxation of the problem (integrality is
// ignored) with a dense two-phase primal simplex.
func (p *Problem) SolveLP() (*Solution, error) {
	t := p.buildTableau()
	status := t.phase1()
	if status == Infeasible {
		return &Solution{Status: Infeasible}, ErrNoSolution
	}
	status = t.phase2()
	if status == Unbounded {
		return &Solution{Status: Unbounded}, ErrNoSolution
	}
	// extract un-shifts the variables (adds lower bounds back), so the
	// objective is evaluated directly in original space.
	x := t.extract(p)
	obj := 0.0
	for j, v := range p.vars {
		obj += v.obj * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj}, nil
}

// tableau is a dense simplex tableau over shifted variables y_j =
// x_j - lb_j >= 0. Columns: [0, nStruct) structural, [nStruct,
// nStruct+nSlack) slack/surplus, [artStart, artStart+nArt) artificial,
// last column the RHS.
type tableau struct {
	m, nStruct, nSlack, nArt int
	artStart                 int
	a                        [][]float64 // m rows x (cols+1)
	cost                     []float64   // phase-2 cost over structural columns
	basis                    []int
}

// buildTableau converts the problem to standard form over shifted
// variables y_j = x_j - lb_j >= 0.
func (p *Problem) buildTableau() *tableau {
	type row struct {
		coeffs []float64
		rel    Rel
		rhs    float64
	}
	nv := len(p.vars)
	var rows []row
	for _, c := range p.cons {
		r := row{coeffs: make([]float64, nv), rel: c.rel, rhs: c.rhs}
		for _, t := range c.terms {
			r.coeffs[t.Var] += t.Coeff
			r.rhs -= t.Coeff * p.vars[t.Var].lb
		}
		rows = append(rows, r)
	}
	// Finite upper bounds become y_j <= ub - lb rows.
	for j, v := range p.vars {
		if !math.IsInf(v.ub, 1) {
			r := row{coeffs: make([]float64, nv), rel: LE, rhs: v.ub - v.lb}
			r.coeffs[j] = 1
			rows = append(rows, r)
		}
	}
	// Normalize to rhs >= 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coeffs {
				rows[i].coeffs[j] = -rows[i].coeffs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
	}
	m := len(rows)
	nSlack, nArt := 0, 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	t := &tableau{m: m, nStruct: nv, nSlack: nSlack, nArt: nArt}
	t.artStart = nv + nSlack
	cols := nv + nSlack + nArt + 1
	t.a = make([][]float64, m)
	t.basis = make([]int, m)
	slackIdx, artIdx := 0, 0
	for i, r := range rows {
		t.a[i] = make([]float64, cols)
		copy(t.a[i], r.coeffs)
		t.a[i][cols-1] = r.rhs
		switch r.rel {
		case LE:
			col := nv + slackIdx
			t.a[i][col] = 1
			t.basis[i] = col
			slackIdx++
		case GE:
			t.a[i][nv+slackIdx] = -1
			slackIdx++
			col := t.artStart + artIdx
			t.a[i][col] = 1
			t.basis[i] = col
			artIdx++
		case EQ:
			col := t.artStart + artIdx
			t.a[i][col] = 1
			t.basis[i] = col
			artIdx++
		}
	}
	t.cost = make([]float64, nv)
	for j, v := range p.vars {
		t.cost[j] = v.obj
	}
	return t
}

// reducedCosts computes z_j - c_j style reduced costs for the given cost
// vector (length = total columns, artificial columns included).
func (t *tableau) reducedCosts(c []float64) []float64 {
	cols := len(t.a[0]) - 1
	red := make([]float64, cols)
	// y multipliers: for each row the basic cost.
	for j := 0; j < cols; j++ {
		sum := c[j]
		for i := 0; i < t.m; i++ {
			sum -= c[t.basis[i]] * t.a[i][j]
		}
		red[j] = sum
	}
	return red
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	cols := len(t.a[0])
	pv := t.a[row][col]
	inv := 1.0 / pv
	for j := 0; j < cols; j++ {
		t.a[row][j] *= inv
	}
	t.a[row][col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0 // exact
	}
	t.basis[row] = col
}

// iterate runs primal simplex iterations for cost vector c over the
// allowed columns (allowed[j] false forbids entering). Returns Optimal
// or Unbounded.
func (t *tableau) iterate(c []float64, allowed func(j int) bool) Status {
	cols := len(t.a[0]) - 1
	maxIter := 200 * (t.m + cols)
	for iter := 0; iter < maxIter; iter++ {
		red := t.reducedCosts(c)
		// Entering column: Dantzig for the first stretch, Bland after to
		// guarantee termination.
		useBland := iter > 50*(t.m+1)
		enter := -1
		best := -eps
		for j := 0; j < cols; j++ {
			if !allowed(j) || t.inBasis(j) {
				continue
			}
			if red[j] < -eps {
				if useBland {
					enter = j
					break
				}
				if red[j] < best {
					best = red[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		rhsCol := cols
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				ratio := t.a[i][rhsCol] / aij
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	// Iteration limit: treat as optimal-with-tolerance; callers verify
	// feasibility via extract.
	return Optimal
}

func (t *tableau) inBasis(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// phase1 minimizes the sum of artificial variables.
func (t *tableau) phase1() Status {
	if t.nArt == 0 {
		return Optimal
	}
	cols := len(t.a[0]) - 1
	c := make([]float64, cols)
	for j := t.artStart; j < t.artStart+t.nArt; j++ {
		c[j] = 1
	}
	t.iterate(c, func(j int) bool { return true })
	// Artificial objective value.
	sum := 0.0
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart {
			sum += t.a[i][cols]
		}
	}
	if sum > 1e-6 {
		return Infeasible
	}
	// Drive remaining artificials out of the basis where possible.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		_ = pivoted // degenerate all-zero row: harmless, stays basic at 0
	}
	return Optimal
}

// phase2 minimizes the original cost with artificial columns forbidden.
func (t *tableau) phase2() Status {
	cols := len(t.a[0]) - 1
	c := make([]float64, cols)
	copy(c, t.cost)
	return t.iterate(c, func(j int) bool { return j < t.artStart })
}

// extract reads the structural solution back in original (unshifted)
// variable space.
func (t *tableau) extract(p *Problem) []float64 {
	cols := len(t.a[0]) - 1
	x := make([]float64, len(p.vars))
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.nStruct {
			x[t.basis[i]] = t.a[i][cols]
		}
	}
	for j, v := range p.vars {
		x[j] += v.lb
		// Clamp numerical noise into bounds.
		if x[j] < v.lb {
			x[j] = v.lb
		}
		if !math.IsInf(v.ub, 1) && x[j] > v.ub {
			x[j] = v.ub
		}
	}
	return x
}
