// Package mip is a small, self-contained mixed-integer programming
// toolkit: a dense two-phase primal simplex for linear programs and a
// best-first branch-and-bound for integer variables. It is the
// hand-rolled substitute for the commercial MILP solver the paper uses
// (Gurobi): NetSmith's MCLB routing formulation (Table III) is solved
// exactly with it on small instances, and its LP relaxation provides
// rigorous lower bounds for the larger ones.
//
// The modelling surface is deliberately minimal: continuous or integer
// variables with [lower, upper] bounds, linear constraints with <=, = or
// >= senses, and a linear objective that is always minimized (negate
// coefficients to maximize).
package mip

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

const (
	// LE is "<=".
	LE Rel = iota
	// EQ is "=".
	EQ
	// GE is ">=".
	GE
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found (and proven, for MIP
	// solves that complete within the node budget).
	Optimal Status = iota
	// Infeasible means no feasible point exists.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// NodeLimit means branch-and-bound hit its node budget; the incumbent
	// (if any) is feasible but not proven optimal.
	NodeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Var identifies a variable in a Problem.
type Var int

// Term is one linear coefficient.
type Term struct {
	Var   Var
	Coeff float64
}

type variable struct {
	lb, ub  float64
	obj     float64
	integer bool
	name    string
}

type constraint struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a linear/mixed-integer model: minimize sum(obj_j * x_j)
// subject to linear constraints and variable bounds.
type Problem struct {
	vars []variable
	cons []constraint
}

// NewProblem returns an empty model.
func NewProblem() *Problem { return &Problem{} }

// AddVar adds a continuous variable with bounds [lb, ub] (ub may be
// +Inf) and objective coefficient obj.
func (p *Problem) AddVar(lb, ub, obj float64, name string) Var {
	if lb < 0 {
		panic("mip: negative lower bounds are not supported")
	}
	if ub < lb {
		panic(fmt.Sprintf("mip: variable %s has ub %v < lb %v", name, ub, lb))
	}
	p.vars = append(p.vars, variable{lb: lb, ub: ub, obj: obj, name: name})
	return Var(len(p.vars) - 1)
}

// AddIntVar adds an integer variable with bounds [lb, ub].
func (p *Problem) AddIntVar(lb, ub, obj float64, name string) Var {
	v := p.AddVar(lb, ub, obj, name)
	p.vars[v].integer = true
	return v
}

// AddBinaryVar adds a {0,1} variable.
func (p *Problem) AddBinaryVar(obj float64, name string) Var {
	return p.AddIntVar(0, 1, obj, name)
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.vars) }

// AddConstraint adds sum(terms) rel rhs. Terms with duplicate variables
// are accumulated.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	merged := make(map[Var]float64, len(terms))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(p.vars) {
			panic(fmt.Sprintf("mip: constraint references unknown var %d", t.Var))
		}
		merged[t.Var] += t.Coeff
	}
	c := constraint{rel: rel, rhs: rhs}
	for v := Var(0); int(v) < len(p.vars); v++ {
		if coeff, ok := merged[v]; ok && coeff != 0 {
			c.terms = append(c.terms, Term{Var: v, Coeff: coeff})
		}
	}
	p.cons = append(p.cons, c)
}

// Solution holds variable values and the objective of a solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

// ErrNoSolution is returned when a solve ends without a feasible point.
var ErrNoSolution = errors.New("mip: no feasible solution")

const eps = 1e-9

// isIntegral reports whether x is within tolerance of an integer.
func isIntegral(x float64) bool {
	return math.Abs(x-math.Round(x)) <= 1e-6
}
