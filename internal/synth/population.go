package synth

import (
	"encoding/binary"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netsmith/internal/bitgraph"
	"netsmith/internal/store"
)

// Population mode. Generate evolves a pool of Config.Population
// topologies for Config.Generations rounds: tournament-selected parents
// are crossed over (common-link backbone plus a shuffled draw from the
// symmetric difference), repaired to strong connectivity through the
// bitgraph.Eval journal, burst-annealed for Iterations steps, and
// merged elitistically with deterministic (score, index) tie-breaking.
//
// Everything stochastic derives from Config.Seed through fixed integer
// seed schedules, children are computed in parallel but keyed by index
// and merged sequentially, so evolution is a pure function of the
// Config at any GOMAXPROCS — the same contract fixed-restart mode
// already honors.
const (
	// popFamilySeed parameterizes the portfolio members' anneals. It is
	// a constant — deliberately NOT derived from Config.Seed — so every
	// population run over the same grid/class/radix/symmetry family
	// shares one member sequence, which is what lets the store cache
	// members across configs that differ only in weights, objective or
	// seed.
	popFamilySeed = 0x5eedfa11
	// popPlanBase offsets the per-generation plan RNG stream away from
	// the restart indices annealRestart consumes (restarts, plus the
	// 1000+/2000+ oracle rounds, stay far below it).
	popPlanBase = 9_000_000
	// popTournament is the tournament size for parent selection.
	popTournament = 3
	// popHopeless scales offspring pruning: a child whose bound gap
	// exceeds popHopeless times the worst elite's is discarded before
	// its anneal burst.
	popHopeless = 3.0
	// popBurstTemp scales the burst anneal's starting temperature. A
	// crossover child already inherits most of its parents' structure; a
	// full-temperature schedule would scramble it before cooling, so
	// bursts run as polish passes instead of fresh explorations.
	popBurstTemp = 0.25
)

// individual is one pool member: a canonical-order graph (so link
// indexing, and with it burst-anneal move sampling, is identical no
// matter how the graph was produced or reloaded) plus its scalarized
// score.
type individual struct {
	g     *bitgraph.Graph
	score float64
}

// runPopulation is population mode's search loop; run() falls through
// to the shared separation/fragility oracles and finish() afterwards.
func (a *annealer) runPopulation() {
	cfg := &a.cfg
	pop := a.initialPopulation()
	a.popOffer(pop[0])
	bound := a.pruneBound()
	for gen := 0; gen < cfg.Generations && !a.expired(); gen++ {
		// The breeding plan (parent pairs and child seeds) is drawn
		// sequentially up front so the parallel breeding below never
		// touches a shared RNG.
		planRNG := newFastRand(cfg.Seed*1000003 + popPlanBase + int64(gen))
		plan := breedingPlan(planRNG, len(pop), cfg.Population)
		children := make([]individual, len(plan))
		worst := pop[len(pop)-1].score
		popParallel(len(children), func(c int) {
			children[c] = a.breed(pop, plan[c], bound, worst)
		})
		pop = popMerge(pop, children, cfg.Population)
		a.popOffer(pop[0])
	}
}

// popPair is one planned breeding: two parent indices into the
// score-sorted pool and the child's private RNG seed.
type popPair struct {
	p1, p2 int
	seed   int64
}

// breedingPlan draws count breedings from rng. The pool is sorted by
// (score, index), so a tournament winner is simply the smallest of
// popTournament uniform index draws.
func breedingPlan(rng *fastRand, popLen, count int) []popPair {
	plan := make([]popPair, count)
	for c := range plan {
		plan[c] = popPair{
			p1:   tournamentPick(rng, popLen),
			p2:   tournamentPick(rng, popLen),
			seed: int64(rng.next() >> 1),
		}
	}
	return plan
}

func tournamentPick(rng *fastRand, n int) int {
	best := rng.Intn(n)
	for i := 1; i < popTournament; i++ {
		if c := rng.Intn(n); c < best {
			best = c
		}
	}
	return best
}

// breed produces one child: crossover, bound-based pruning, then an
// anneal burst. A zero individual (nil graph) means the child was
// discarded — repair failed or the bound proved it hopeless — and the
// elitist merge simply keeps more parents.
func (a *annealer) breed(pop []individual, pair popPair, bound, worst float64) individual {
	rng := newFastRand(pair.seed)
	child, ok := a.crossover(pop[pair.p1].g, pop[pair.p2].g, rng)
	if !ok {
		return individual{}
	}
	if a.hopeless(a.eval.fullScore(child), bound, worst) {
		return individual{}
	}
	res := a.annealFrom(rng, child, a.cfg.Iterations, popBurstTemp)
	g := res.snap.CanonicalClone()
	return individual{g: g, score: a.eval.fullScore(g)}
}

// crossover builds a child from two parents: the common-link backbone,
// plus links drawn from the parents' symmetric difference in rng order
// until the child reaches the parents' mean link count (the shortfall
// below full port saturation is deliberate slack for repair), then
// journaled connectivity repair. ok is false when repair cannot connect
// the child within one full candidate sweep per fix; the caller
// discards such children.
func (a *annealer) crossover(pa, pb *bitgraph.Graph, rng *fastRand) (*bitgraph.Graph, bool) {
	cfg := &a.cfg
	child := bitgraph.New(pa.N())
	for _, l := range pa.Links() {
		if pb.Has(l.A, l.B) {
			child.Add(l.A, l.B)
		}
	}
	var diff []bitgraph.Link
	for _, l := range pa.Links() {
		if !pb.Has(l.A, l.B) {
			diff = append(diff, l)
		}
	}
	for _, l := range pb.Links() {
		if !pa.Has(l.A, l.B) {
			diff = append(diff, l)
		}
	}
	target := (pa.NumLinks() + pb.NumLinks()) / 2
	for _, i := range rng.Perm(len(diff)) {
		if child.NumLinks() >= target {
			break
		}
		l := diff[i]
		if feasibleAdd(child, cfg, l.A, l.B) {
			child.Add(l.A, l.B)
			if cfg.Symmetric {
				child.Add(l.B, l.A)
			}
		}
	}
	ev := bitgraph.NewEval(child, nil)
	if !a.repairConnectivity(ev, rng) {
		return nil, false
	}
	return child, true
}

// repairConnectivity adds valid links until the evaluated graph is
// strongly connected. Each candidate is probed inside a Begin/Add
// journal and rolled back unless it strictly reduces the
// unreachable-pair count, so a failed probe costs exactly its dirty-row
// recompute and leaves the evaluator bit-identical to a fresh one
// (pinned by TestRepairRollbackLeavesEvalExact). Candidates are scanned
// in one rng-shuffled order per call; a full fruitless sweep means the
// child's remaining port budget cannot be connected, and the repair
// reports failure.
func (a *annealer) repairConnectivity(ev *bitgraph.Eval, rng *fastRand) bool {
	cfg := &a.cfg
	order := rng.Perm(len(a.valid))
	for ev.Unreachable() > 0 {
		progressed := false
		for _, i := range order {
			l := a.valid[i]
			if !feasibleAdd(ev.Graph(), cfg, l.From, l.To) {
				continue
			}
			before := ev.Unreachable()
			ev.Begin()
			ev.Add(l.From, l.To)
			if cfg.Symmetric {
				ev.Add(l.To, l.From)
			}
			if ev.Unreachable() < before {
				ev.Commit()
				progressed = true
				break
			}
			ev.Rollback()
		}
		if !progressed {
			return false
		}
	}
	return true
}

// pruneBound is the bound offspring pruning measures against: the
// LP-tightened MIP bound for LatOp, the combinatorial weighted bound
// for Weighted, none for SCOp (a maximization; its upper bound cannot
// witness that a low score is hopeless).
func (a *annealer) pruneBound() float64 {
	switch a.cfg.Objective {
	case LatOp:
		return mipLatOpBound(a.cfg)
	case Weighted:
		return latOpLowerBound(a.cfg)
	}
	return math.Inf(-1)
}

// hopeless reports whether a child's pre-burst score is so far above
// the bound, relative to the worst current elite, that its burst is not
// worth paying for. The rule reads only the child, the pre-generation
// pool and the static bound, so pruning is deterministic.
func (a *annealer) hopeless(score, bound, worst float64) bool {
	if math.IsInf(bound, -1) || worst <= bound {
		return false
	}
	return score-bound > popHopeless*(worst-bound)
}

// popMerge is the elitist merge: parents then children, stably sorted
// by score — ties resolve to the lower (parent-first) index — with
// duplicate link sets collapsed so the pool keeps genuinely distinct
// topologies. The merge is sequential, making each generation's pool a
// pure function of the previous one.
func popMerge(parents, children []individual, size int) []individual {
	all := make([]individual, 0, len(parents)+len(children))
	all = append(all, parents...)
	for _, c := range children {
		if c.g != nil {
			all = append(all, c)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].score < all[j].score })
	seen := make(map[string]bool, len(all))
	out := make([]individual, 0, size)
	for _, ind := range all {
		k := linkKey(ind.g)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, ind)
		if len(out) == size {
			break
		}
	}
	return out
}

// linkKey fingerprints a canonical-order link list for pool dedup.
func linkKey(g *bitgraph.Graph) string {
	b := make([]byte, 0, 4*g.NumLinks())
	for _, l := range g.Links() {
		b = binary.AppendUvarint(b, uint64(l.A))
		b = binary.AppendUvarint(b, uint64(l.B))
	}
	return string(b)
}

// popOffer installs the pool's best as the incumbent if it strictly
// improves, appending a progress point exactly like the fixed-restart
// replay does (Elapsed is wall-clock and outside the determinism
// contract; everything else is deterministic).
func (a *annealer) popOffer(best individual) {
	if best.g == nil || best.score >= a.bestScore {
		return
	}
	a.setBest(best.g, best.score)
	incumbent, feasible := a.rawObjective(best.g)
	if !feasible {
		return
	}
	pt := ProgressPoint{
		Elapsed:   time.Since(a.start),
		Incumbent: incumbent,
		Bound:     a.bound,
		Gap:       a.gapOf(incumbent),
	}
	a.trace = append(a.trace, pt)
	if a.cfg.Progress != nil {
		a.cfg.Progress(pt)
	}
}

// rawObjective extracts the raw objective and feasibility of a graph
// with a from-scratch recompute (merges are per-generation, so the full
// evaluation cost is irrelevant).
func (a *annealer) rawObjective(g *bitgraph.Graph) (float64, bool) {
	total, unreachable, diam := g.HopStats()
	if unreachable > 0 {
		return 0, false
	}
	if a.cfg.MaxDiameter > 0 && diam > a.cfg.MaxDiameter {
		return 0, false
	}
	switch a.cfg.Objective {
	case LatOp:
		return float64(total), true
	case SCOp:
		return g.PoolMin(a.eval.cutPool), true
	case Weighted:
		wt, wUnreach := g.WeightedHops(a.cfg.Weights)
		return wt, wUnreach == 0
	}
	return 0, false
}

// initialPopulation computes (or store-loads) the portfolio members,
// scores them under the run's own objective, and returns the deduped,
// score-sorted pool.
func (a *annealer) initialPopulation() []individual {
	fam := newAnnealer(a.familyConfig())
	members := make([]*bitgraph.Graph, a.cfg.Population)
	popParallel(len(members), func(i int) {
		members[i] = a.portfolioMember(fam, i)
	})
	pop := make([]individual, len(members))
	for i, g := range members {
		pop[i] = individual{g: g, score: a.eval.fullScore(g)}
	}
	return popMerge(pop, nil, a.cfg.Population)
}

// familyConfig is the weight- and seed-agnostic config that defines the
// portfolio members: fixed-budget LatOp anneals over the run's grid,
// class, radix and symmetry. Every population run over this family —
// regardless of objective, weights or seed — derives its initial pool
// from the same member sequence, which is what makes store-cached
// members shareable across nearby configs.
func (a *annealer) familyConfig() Config {
	return Config{
		Grid: a.cfg.Grid, Class: a.cfg.Class, Radix: a.cfg.Radix,
		Symmetric: a.cfg.Symmetric, Objective: LatOp,
		Seed: popFamilySeed, Iterations: a.cfg.Iterations, Restarts: 1,
	}
}

// portfolioMember returns family member i: a store hit reloads the
// canonical link list, a miss anneals it fresh and persists it. Both
// paths yield bit-identical graphs — the store is purely a cache of a
// pure computation — so warm and cold runs evolve identically.
func (a *annealer) portfolioMember(fam *annealer, i int) *bitgraph.Graph {
	st := a.cfg.Store
	key := popMemberKey(&fam.cfg, i)
	if st != nil {
		var blob popMemberBlob
		if hit, err := st.Get(key, &blob); err == nil && hit {
			if g, ok := a.loadMember(blob.Links); ok {
				return g
			}
		}
	}
	res := fam.annealRestart(int64(i), fam.cfg.Iterations)
	g := res.snap.CanonicalClone()
	if st != nil {
		links := make([][2]int, 0, g.NumLinks())
		for _, l := range g.Links() {
			links = append(links, [2]int{l.A, l.B})
		}
		// Best-effort, like CachedGenerate: a write failure only costs
		// the next run a recompute.
		_ = st.Put(key, popMemberBlob{Links: links})
	}
	return g
}

// popMemberPayload is hashed into a member's store key: exactly the
// family fields plus the member index. Weights, objective and seed are
// deliberately absent — that is the "nearby-config" sharing scheme.
type popMemberPayload struct {
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	PitchMM    float64 `json:"pitch_mm"`
	Class      string  `json:"class"`
	Radix      int     `json:"radix"`
	Symmetric  bool    `json:"symmetric"`
	Iterations int     `json:"iterations"`
	Index      int     `json:"index"`
}

// popMemberBlob is a member's stored form: its canonical link list.
type popMemberBlob struct {
	Links [][2]int `json:"links"`
}

func popMemberKey(cfg *Config, index int) store.Key {
	return store.NewKey("synth-member", popMemberPayload{
		Rows: cfg.Grid.Rows, Cols: cfg.Grid.Cols, PitchMM: cfg.Grid.PitchMM,
		Class: cfg.Class.String(), Radix: cfg.Radix, Symmetric: cfg.Symmetric,
		Iterations: cfg.Iterations, Index: index,
	})
}

// loadMember rebuilds a stored member, validating every link against
// the candidate set, radix budget, symmetry, canonical order and strong
// connectivity; any violation (stale schema, corrupt blob) reports
// false and the member is recomputed. The stored order is the canonical
// order Put wrote, so a valid reload is bit-identical — link list
// included — to the cold recomputation it caches.
func (a *annealer) loadMember(links [][2]int) (*bitgraph.Graph, bool) {
	n := a.cfg.Grid.N()
	g := bitgraph.New(n)
	prev := [2]int{-1, -1}
	for _, l := range links {
		from, to := l[0], l[1]
		if from < prev[0] || (from == prev[0] && to <= prev[1]) {
			return nil, false
		}
		prev = l
		if from < 0 || from >= n || to < 0 || to >= n || from == to || !a.validLink(from, to) {
			return nil, false
		}
		if g.OutDeg[from] >= a.cfg.Radix || g.InDeg[to] >= a.cfg.Radix {
			return nil, false
		}
		g.Add(from, to)
	}
	if a.cfg.Symmetric {
		for _, l := range g.Links() {
			if !g.Has(l.B, l.A) {
				return nil, false
			}
		}
	}
	if _, unreachable, _ := g.HopStats(); unreachable > 0 {
		return nil, false
	}
	return g, true
}

// validLink reports whether from->to is in the candidate set L.
func (a *annealer) validLink(from, to int) bool {
	for _, l := range a.byFrom[from] {
		if l.To == to {
			return true
		}
	}
	return false
}

// popParallel runs fn(i) for i in [0, n) across min(GOMAXPROCS, 8)
// workers. Each item's computation depends only on its index and
// read-only shared state, so scheduling cannot affect results.
func popParallel(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var next int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}
