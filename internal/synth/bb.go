package synth

import (
	"errors"
	"math"

	"netsmith/internal/bitgraph"
)

// ExactLatOp solves the LatOp objective exactly by branch-and-bound over
// the candidate link set, for small instances. It decides link inclusion
// in depth-first order; the bound at each node is the total hop count of
// the optimistic graph containing all included plus all undecided links
// (adding links never increases distances, so this is a valid lower bound
// on every completion). nodeBudget caps the number of search-tree nodes;
// when exceeded, the best incumbent is returned with Optimal=false.
//
// This is the hand-rolled analogue of the paper's Gurobi MILP solve and is
// used to certify the annealer's solutions on small grids.
func ExactLatOp(c Config, nodeBudget int64) (*Result, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Objective != LatOp {
		return nil, errors.New("synth: ExactLatOp requires Objective == LatOp")
	}
	if cfg.Grid.N() > 16 {
		return nil, errors.New("synth: ExactLatOp is intended for <= 16 routers")
	}
	if nodeBudget <= 0 {
		nodeBudget = 50_000_000
	}

	// Candidate decisions: directed links for asymmetric search,
	// canonical (a<b) pairs for symmetric search.
	type decision struct{ a, b int }
	var decisions []decision
	for _, l := range cfg.Grid.ValidLinks(cfg.Class) {
		if cfg.Symmetric && l.From > l.To {
			continue
		}
		decisions = append(decisions, decision{l.From, l.To})
	}

	n := cfg.Grid.N()
	bb := &bbState{
		cfg:    cfg,
		s:      bitgraph.New(n),
		budget: nodeBudget,
		best:   math.Inf(1),
	}
	// Warm start from the annealer to tighten pruning.
	warmCfg := cfg
	warmCfg.Iterations = 8000
	warmCfg.Restarts = 2
	warmCfg.Progress = nil
	if warm, err := Generate(warmCfg); err == nil {
		if total, ok := warm.Topology.TotalHops(); ok {
			bb.best = float64(total)
			bb.bestState = stateFromTopology(warm.Topology)
		}
	}

	// undecided[i] holds masks of links not yet decided at depth >= i; we
	// maintain an "optimistic" graph = included + undecided via
	// incremental removal as we exclude links.
	opt := bitgraph.New(n)
	for _, d := range decisions {
		opt.Add(d.a, d.b)
		if cfg.Symmetric {
			opt.Add(d.b, d.a)
		}
	}

	var dfs func(idx int)
	dfs = func(idx int) {
		if bb.nodes >= bb.budget {
			bb.truncated = true
			return
		}
		bb.nodes++
		// Bound from the optimistic graph.
		total, unreachable, diam := opt.HopStats()
		if unreachable > 0 {
			return // even with every remaining link, disconnected
		}
		if cfg.MaxDiameter > 0 && diam > cfg.MaxDiameter {
			return
		}
		if float64(total) >= bb.best {
			return
		}
		if idx == len(decisions) {
			// All decided: opt now equals the included set exactly.
			cur, curUnreach, curDiam := bb.s.HopStats()
			if curUnreach > 0 {
				return
			}
			if cfg.MaxDiameter > 0 && curDiam > cfg.MaxDiameter {
				return
			}
			if float64(cur) < bb.best {
				bb.best = float64(cur)
				bb.bestState = bb.s.Clone()
			}
			return
		}
		d := decisions[idx]
		// Branch 1: include (if radix allows).
		canInclude := bb.s.OutDeg[d.a] < cfg.Radix && bb.s.InDeg[d.b] < cfg.Radix
		if cfg.Symmetric {
			canInclude = canInclude && bb.s.OutDeg[d.b] < cfg.Radix && bb.s.InDeg[d.a] < cfg.Radix
		}
		if canInclude {
			bb.s.Add(d.a, d.b)
			if cfg.Symmetric {
				bb.s.Add(d.b, d.a)
			}
			dfs(idx + 1)
			bb.s.Remove(d.a, d.b)
			if cfg.Symmetric {
				bb.s.Remove(d.b, d.a)
			}
		}
		// Branch 2: exclude — remove from the optimistic graph.
		opt.Remove(d.a, d.b)
		if cfg.Symmetric {
			opt.Remove(d.b, d.a)
		}
		dfs(idx + 1)
		opt.Add(d.a, d.b)
		if cfg.Symmetric {
			opt.Add(d.b, d.a)
		}
	}
	dfs(0)

	if bb.bestState == nil {
		return nil, errors.New("synth: branch-and-bound found no feasible topology")
	}
	a := newAnnealer(cfg)
	t := a.toTopology(bb.bestState)
	res := &Result{
		Topology:  t,
		Objective: bb.best,
		Bound:     latOpLowerBound(cfg),
		Optimal:   !bb.truncated,
	}
	if res.Objective > 0 {
		res.Gap = math.Max(0, (res.Objective-res.Bound)/res.Objective)
	}
	return res, nil
}

type bbState struct {
	cfg       Config
	s         *bitgraph.Graph
	best      float64
	bestState *bitgraph.Graph
	nodes     int64
	budget    int64
	truncated bool
}
