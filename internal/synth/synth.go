// Package synth implements NetSmith's topology generation: the paper's
// primary contribution. Given a physical router layout, a link-length
// class and a router radix, it searches the space of directed topologies
// for ones that minimize average hop count (LatOp), maximize sparsest-cut
// bandwidth (SCOp), or minimize traffic-weighted hops (pattern-optimized,
// e.g. ShufOpt), subject to the constraint set of the paper's Table I:
//
//	C1 no self links            C2 in/out radix
//	C3 link-length set L        C4/C5 shortest-path distances
//	C6/C7 sparsest-cut bound    C8 optional diameter bound
//	C9 optional link symmetry
//
// The paper solves a MILP with Gurobi. This implementation substitutes a
// specialized optimizer (documented in DESIGN.md): simulated annealing
// over feasible link sets with exact incremental metric evaluation, lazy
// sparsest-cut constraint generation for the SCOp objective (the
// row-generation idea from MILP practice), and an exact branch-and-bound
// for small instances that certifies optimality. Solver progress is
// reported as an objective-bounds gap against rigorous lower bounds,
// mirroring the paper's Figure 5.
package synth

import (
	"errors"
	"fmt"
	"time"

	"netsmith/internal/layout"
	"netsmith/internal/store"
	"netsmith/internal/topo"
)

// Objective selects what Generate optimizes.
type Objective int

const (
	// LatOp minimizes total (equivalently average) shortest-path hop
	// count under uniform all-to-all traffic (objective O1).
	LatOp Objective = iota
	// SCOp maximizes the sparsest-cut bandwidth (objective O2), breaking
	// ties toward lower average hops.
	SCOp
	// Weighted minimizes the traffic-matrix-weighted total hop count;
	// used for pattern-optimized topologies such as NS-ShufOpt.
	Weighted
)

// String names the objective as used in the paper ("LatOp", "SCOp").
func (o Objective) String() string {
	switch o {
	case LatOp:
		return "LatOp"
	case SCOp:
		return "SCOp"
	case Weighted:
		return "Weighted"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Config parameterizes a synthesis run. Zero values select paper defaults
// where meaningful.
type Config struct {
	Grid  *layout.Grid
	Class layout.Class

	// Radix caps both the in-degree and out-degree of every router
	// (constraint C2). Default 4, the NoI-facing radix in the paper's
	// 4x5 configuration.
	Radix int

	// Objective selects LatOp, SCOp or Weighted.
	Objective Objective

	// Weights is the traffic demand matrix for the Weighted objective
	// (ignored otherwise). Weights[s][d] >= 0.
	Weights [][]float64

	// Symmetric forces every link to be paired with its reverse
	// (constraint C9). The paper found asymmetric links gain ~3%
	// throughput; default false (asymmetric allowed).
	Symmetric bool

	// MaxDiameter, when positive, rejects topologies whose diameter
	// exceeds it (constraint C8).
	MaxDiameter int

	// MinCutBW, when positive, requires the sparsest-cut bandwidth to be
	// at least this value (constraint C7). Applies to any objective.
	MinCutBW float64

	// EnergyWeight, when positive, adds an energy proxy to the scalarized
	// score: per candidate link, wire dynamic energy (pJ/flit, length
	// times the 22nm wire constant) plus a per-port leakage proxy (one
	// output plus one input port per link). The proxy is linear in the
	// link set, so the annealer maintains it incrementally through
	// bitgraph.Eval Add/Remove; costs are pre-scaled to integer
	// milli-units, keeping incremental and recomputed scores
	// bit-identical. Weight 1 trades one hop of total path length against
	// one proxy unit; Result.Objective still reports the raw objective
	// while Result.EnergyProxy reports the proxy of the chosen topology.
	EnergyWeight float64

	// RobustWeight, when positive, adds a fragility term to the
	// scalarized score: per-router degree slack (out- and in-degrees
	// below 2 each count their shortfall — a router with a single exit
	// dies with that link) plus the pool min-cut slack (registered cuts
	// crossed by fewer than 2 links in either direction). The term is a
	// small integer, monotone non-worsening under link additions, and
	// maintained through the same transactional evaluator as the other
	// components, so incremental and recomputed scores stay
	// bit-identical. After annealing, an exact single-link-failure
	// oracle probes every incumbent link; each critical link (one whose
	// loss disconnects a pair) certifies a 1-crossing cut that is added
	// to the pool before re-annealing, so the final topology prices its
	// true worst-case failure, not just the seeded geometric cuts.
	// Result.CriticalLinks and Result.Fragility report what remains.
	RobustWeight float64

	// Seed makes runs reproducible. Iterations is the annealing step
	// count per restart; Restarts the number of independent restarts.
	// Defaults: Iterations 60000, Restarts 4.
	Seed       int64
	Iterations int
	Restarts   int

	// Population, when >= 2, switches Generate to population mode: a
	// pool of Population topologies evolved for Generations rounds of
	// tournament selection, link-subset crossover with journaled
	// connectivity repair, and short anneal bursts of Iterations steps
	// each (Restarts is ignored). Evolution is a pure function of the
	// Config: same seed, same topology, at any GOMAXPROCS. The total
	// search budget is Population * (1 + Generations) * Iterations
	// annealing steps (initial portfolio plus one burst per child).
	Population int
	// Generations is the number of evolution rounds in population mode
	// (default 8 when Population > 0, ignored otherwise).
	Generations int

	// Store, when non-nil, caches the deterministic initial-population
	// portfolio members under family keys (grid, class, radix, symmetry
	// and budget — but not weights, objective or seed), so past
	// population runs warm-start nearby configs. The store is purely a
	// cache of pure computations: results are bit-identical with or
	// without it. CachedGenerate wires it automatically.
	Store *store.Store

	// TimeBudget, when positive, stops the search after this duration
	// even if iterations remain.
	TimeBudget time.Duration

	// Progress, when non-nil, receives solver progress points (elapsed
	// time, incumbent objective, bound, gap) as the incumbent improves.
	Progress func(ProgressPoint)
}

// ProgressPoint is one sample of solver progress, used to reproduce the
// paper's Figure 5 (objective bounds gap vs. time).
//
// Gap is the relative objective-bounds gap, clamped to [0, 1], with a
// per-objective formula matching the optimization direction:
//
//   - LatOp / Weighted (minimization, lower bound):
//     (incumbent - bound) / incumbent, or 0 when incumbent <= 0;
//   - SCOp (maximization, upper bound):
//     (bound - incumbent) / bound, or 0 when bound <= 0.
type ProgressPoint struct {
	Elapsed   time.Duration
	Incumbent float64 // current best objective (total hops for LatOp)
	Bound     float64 // best known bound (lower for LatOp, upper for SCOp)
	Gap       float64 // relative objective-bounds gap; see above
}

// Result is the outcome of a synthesis run.
type Result struct {
	Topology *topo.Topology
	// Objective is the achieved objective value: total hops (LatOp),
	// sparsest-cut bandwidth (SCOp) or weighted total hops (Weighted).
	Objective float64
	// Bound is the rigorous bound on the optimum (lower bound for
	// minimization, upper for SCOp); Gap the resulting bounds gap.
	Bound float64
	Gap   float64
	// Optimal is true when the search proved the result optimal (bound
	// met, or exact branch-and-bound completed).
	Optimal bool
	// EnergyProxy is the topology's energy-proxy value (wire dynamic +
	// per-port leakage proxies summed over links, in the proxy's native
	// units); filled whenever EnergyWeight > 0.
	EnergyProxy float64
	// CriticalLinks counts the links whose single failure disconnects at
	// least one ordered pair, and Fragility the chosen topology's
	// fragility term (degree slack + pool cut slack); both are filled
	// whenever RobustWeight > 0. A topology with CriticalLinks == 0
	// survives any one link loss with full reachability.
	CriticalLinks int
	Fragility     int
	// Trace holds solver-progress samples.
	Trace []ProgressPoint
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.Grid == nil {
		return cfg, errors.New("synth: Config.Grid is required")
	}
	if cfg.Radix == 0 {
		cfg.Radix = 4
	}
	if cfg.Radix < 1 {
		return cfg, fmt.Errorf("synth: invalid radix %d", cfg.Radix)
	}
	if cfg.EnergyWeight < 0 {
		return cfg, fmt.Errorf("synth: negative energy weight %v", cfg.EnergyWeight)
	}
	if cfg.RobustWeight < 0 {
		return cfg, fmt.Errorf("synth: negative robust weight %v", cfg.RobustWeight)
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 60000
	}
	if cfg.Restarts == 0 {
		cfg.Restarts = 4
	}
	if cfg.Population < 0 || cfg.Population == 1 {
		return cfg, fmt.Errorf("synth: population must be 0 (off) or >= 2, got %d", cfg.Population)
	}
	if cfg.Generations < 0 {
		return cfg, fmt.Errorf("synth: negative generations %d", cfg.Generations)
	}
	if cfg.Generations > 0 && cfg.Population == 0 {
		return cfg, errors.New("synth: Generations requires Population >= 2")
	}
	if cfg.Population > 0 && cfg.Generations == 0 {
		cfg.Generations = 8
	}
	if cfg.Objective == Weighted {
		n := cfg.Grid.N()
		if len(cfg.Weights) != n {
			return cfg, fmt.Errorf("synth: Weighted objective needs %dx%d weight matrix", n, n)
		}
		for _, row := range cfg.Weights {
			if len(row) != n {
				return cfg, fmt.Errorf("synth: Weighted objective needs %dx%d weight matrix", n, n)
			}
		}
	}
	return cfg, nil
}

// Generate runs NetSmith topology synthesis and returns the best topology
// found, with bound and gap information.
func Generate(c Config) (*Result, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	ann := newAnnealer(cfg)
	return ann.run()
}

// nameFor produces the paper-style topology name, e.g.
// "NS-LatOp-medium".
func nameFor(cfg Config) string {
	base := "NS-" + cfg.Objective.String()
	if cfg.Objective == Weighted {
		base = "NS-PatternOpt"
	}
	return fmt.Sprintf("%s-%s", base, cfg.Class)
}

// seedTopology builds a feasible strongly connected starting topology: a
// boustrophedon directed cycle through the grid (unit-length links, valid
// in every class), optionally symmetrized.
func seedTopology(cfg Config) *topo.Topology {
	g := cfg.Grid
	t := topo.New(nameFor(cfg), g, cfg.Class)
	n := g.N()
	order := make([]int, 0, n)
	for row := 0; row < g.Rows; row++ {
		if row%2 == 0 {
			for col := 0; col < g.Cols; col++ {
				order = append(order, g.Router(row, col))
			}
		} else {
			for col := g.Cols - 1; col >= 0; col-- {
				order = append(order, g.Router(row, col))
			}
		}
	}
	// Forward along the snake.
	for i := 0; i+1 < n; i++ {
		t.AddLink(order[i], order[i+1])
	}
	// Return path up the first column (last snake router is in column 0
	// or Cols-1 depending on row parity; walk back via its column).
	last := order[n-1]
	_, lastCol := g.Pos(last)
	for row := g.Rows - 1; row > 0; row-- {
		t.AddLink(g.Router(row, lastCol), g.Router(row-1, lastCol))
	}
	// Close the loop along row 0 back to router order[0].
	_, firstCol := g.Pos(order[0])
	if lastCol > firstCol {
		for col := lastCol; col > firstCol; col-- {
			t.AddLink(g.Router(0, col), g.Router(0, col-1))
		}
	} else {
		for col := lastCol; col < firstCol; col++ {
			t.AddLink(g.Router(0, col), g.Router(0, col+1))
		}
	}
	if cfg.Symmetric {
		for _, l := range t.Links() {
			t.AddLink(l.To, l.From)
		}
	}
	return t
}
