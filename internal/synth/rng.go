package synth

import "math/bits"

// fastRand is a small deterministic PRNG (splitmix64 with Lemire bounded
// sampling) for the annealing hot loop. After the evaluator became
// incremental, math/rand's modulo-rejection Int31n was a measurable
// fraction of an iteration; splitmix64 passes BigCrush and costs a few
// arithmetic ops per draw. Sequences depend only on the seed, preserving
// run-to-run determinism.
type fastRand struct{ s uint64 }

func newFastRand(seed int64) *fastRand {
	r := &fastRand{s: uint64(seed)}
	r.next() // decorrelate adjacent seeds
	return r
}

func (r *fastRand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n) via Lemire's multiply-shift.
func (r *fastRand) Intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *fastRand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *fastRand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
