package synth

import (
	"testing"

	"netsmith/internal/layout"
	"netsmith/internal/store"
)

func smallCfg() Config {
	return Config{
		Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		Seed: 5, Iterations: 1500, Restarts: 1,
	}
}

// TestCachedGenerateRoundTrip: the cached result must carry the exact
// topology and metrics of the run that populated it.
func TestCachedGenerateRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fresh, hit, err := CachedGenerate(st, smallCfg())
	if err != nil || hit {
		t.Fatalf("cold generate: hit=%v err=%v", hit, err)
	}
	cached, hit, err := CachedGenerate(st, smallCfg())
	if err != nil || !hit {
		t.Fatalf("warm generate: hit=%v err=%v", hit, err)
	}
	if got, want := cached.Topology.CanonicalLinkList(), fresh.Topology.CanonicalLinkList(); got != want {
		t.Errorf("cached topology differs:\n%s\nvs\n%s", got, want)
	}
	if cached.Topology.Name != fresh.Topology.Name {
		t.Errorf("cached name %q != %q", cached.Topology.Name, fresh.Topology.Name)
	}
	if cached.Objective != fresh.Objective || cached.Bound != fresh.Bound ||
		cached.Gap != fresh.Gap || cached.Optimal != fresh.Optimal ||
		cached.EnergyProxy != fresh.EnergyProxy {
		t.Errorf("cached metrics differ: %+v vs %+v", cached, fresh)
	}
	if len(cached.Trace) != 0 {
		t.Error("cached result invented a solver trace")
	}
	// The cached topology must survive the full downstream pipeline
	// (metrics recomputed from the deserialized adjacency).
	if cached.Topology.Diameter() != fresh.Topology.Diameter() ||
		cached.Topology.AverageHops() != fresh.Topology.AverageHops() {
		t.Error("cached topology metrics diverge from fresh")
	}
}

// TestCachedGenerateKeySensitivity: different configs may not collide.
func TestCachedGenerateKeySensitivity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := CachedGenerate(st, smallCfg()); err != nil || hit {
		t.Fatalf("populate: hit=%v err=%v", hit, err)
	}
	cfg := smallCfg()
	cfg.Seed = 6
	if _, hit, err := CachedGenerate(st, cfg); err != nil || hit {
		t.Fatalf("different seed hit the cache: hit=%v err=%v", hit, err)
	}
	cfg = smallCfg()
	cfg.Objective = SCOp
	if _, hit, err := CachedGenerate(st, cfg); err != nil || hit {
		t.Fatalf("different objective hit the cache: hit=%v err=%v", hit, err)
	}
}

// Population-mode keys: each population knob (and the seed) must miss
// against the others' entries, an unrelated knob (Progress) must still
// hit, and a classic restart config must never collide with a
// population one.
func TestCachedGeneratePopulationKeySensitivity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	popCfg := func() Config {
		cfg := smallCfg()
		cfg.Population = 2
		cfg.Generations = 1
		return cfg
	}
	if _, hit, err := CachedGenerate(st, popCfg()); err != nil || hit {
		t.Fatalf("populate: hit=%v err=%v", hit, err)
	}
	if _, hit, err := CachedGenerate(st, popCfg()); err != nil || !hit {
		t.Fatalf("identical population config missed: hit=%v err=%v", hit, err)
	}
	for name, mutate := range map[string]func(*Config){
		"population":  func(c *Config) { c.Population = 3 },
		"generations": func(c *Config) { c.Generations = 2 },
		"seed":        func(c *Config) { c.Seed++ },
		"classic":     func(c *Config) { c.Population = 0; c.Generations = 0 },
	} {
		cfg := popCfg()
		mutate(&cfg)
		if _, hit, err := CachedGenerate(st, cfg); err != nil || hit {
			t.Fatalf("%s change hit the population entry: hit=%v err=%v", name, hit, err)
		}
	}
	cfg := popCfg()
	cfg.Progress = func(ProgressPoint) {}
	if _, hit, err := CachedGenerate(st, cfg); err != nil || !hit {
		t.Fatalf("unrelated knob (Progress) missed: hit=%v err=%v", hit, err)
	}
}

// Population configs are uncacheable under a time budget by the same
// construction as classic ones: cacheKey refuses any TimeBudget > 0
// before the population fields are even considered.
func TestPopulationTimeBudgetUncacheable(t *testing.T) {
	cfg := smallCfg()
	cfg.Population = 2
	cfg.Generations = 1
	if _, ok := cfg.cacheKey(); !ok {
		t.Fatal("fixed-budget population config reported uncacheable")
	}
	cfg.TimeBudget = 1
	if _, ok := cfg.cacheKey(); ok {
		t.Fatal("time-budgeted population config reported cacheable")
	}
}

// TestCachedGenerateTimeBudgetUncacheable: wall-clock-bounded runs must
// never populate or hit the cache.
func TestCachedGenerateTimeBudgetUncacheable(t *testing.T) {
	cfg := smallCfg()
	if _, ok := cfg.cacheKey(); !ok {
		t.Fatal("fixed-budget config reported uncacheable")
	}
	cfg.TimeBudget = 1 // any positive budget
	if _, ok := cfg.cacheKey(); ok {
		t.Fatal("time-budgeted config reported cacheable")
	}
}
