package synth

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
	"netsmith/internal/topo"
)

func quickCfg(g *layout.Grid, c layout.Class, obj Objective) Config {
	return Config{
		Grid: g, Class: c, Objective: obj,
		Radix: 4, Seed: 1, Iterations: 12000, Restarts: 2,
	}
}

func TestSeedTopologyConnectivity(t *testing.T) {
	for _, g := range []*layout.Grid{layout.Grid4x5, layout.Grid6x5, layout.Grid8x6, layout.NewGrid(1, 5), layout.NewGrid(5, 1), layout.NewGrid(3, 3)} {
		for _, c := range layout.Classes() {
			cfg, err := (&Config{Grid: g, Class: c}).withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			seed := seedTopology(cfg)
			if !seed.IsConnected() {
				t.Errorf("seed topology for %v/%v is not strongly connected", g, c)
			}
			if !seed.RespectsLinkLengths() {
				t.Errorf("seed topology for %v/%v violates link lengths", g, c)
			}
		}
	}
}

func TestSeedTopologySymmetric(t *testing.T) {
	cfg, _ := (&Config{Grid: layout.Grid4x5, Class: layout.Small, Symmetric: true}).withDefaults()
	seed := seedTopology(cfg)
	if !seed.IsSymmetric() {
		t.Fatal("symmetric seed must be symmetric")
	}
}

func TestGraphStateIncremental(t *testing.T) {
	s := bitgraph.New(5)
	s.Add(0, 1)
	s.Add(1, 2)
	s.Add(0, 1) // idempotent
	if s.NumLinks() != 2 || s.OutDeg[0] != 1 || s.InDeg[1] != 1 {
		t.Fatalf("state after adds: links=%d outDeg0=%d inDeg1=%d", s.NumLinks(), s.OutDeg[0], s.InDeg[1])
	}
	s.Remove(0, 1)
	s.Remove(0, 1) // idempotent
	if s.NumLinks() != 1 || s.Has(0, 1) || !s.Has(1, 2) {
		t.Fatal("remove broke state")
	}
	c := s.Clone()
	c.Add(2, 3)
	if s.Has(2, 3) {
		t.Fatal("clone leaked")
	}
}

func TestHopStatsMatchesTopo(t *testing.T) {
	// Bitmask BFS must agree with the reference implementation in topo.
	g := layout.Grid4x5
	tp := topo.New("ref", g, layout.Large)
	// Irregular connected topology.
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 9}, {9, 8}, {8, 7}, {7, 6}, {6, 5},
		{5, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14}, {14, 19}, {19, 18}, {18, 17},
		{17, 16}, {16, 15}, {15, 10}, {5, 0}, {2, 7}, {12, 17}, {9, 14}}
	for _, p := range pairs {
		tp.AddLink(p[0], p[1])
		tp.AddLink(p[1], p[0])
	}
	s := stateFromTopology(tp)
	total, unreachable, diam := s.HopStats()
	wantTotal, ok := tp.TotalHops()
	if !ok {
		t.Fatal("reference disconnected")
	}
	if unreachable != 0 || int(total) != wantTotal || diam != tp.Diameter() {
		t.Errorf("hopStats = (%d,%d,%d), want (%d,0,%d)", total, unreachable, diam, wantTotal, tp.Diameter())
	}
}

func TestWeightedHopsMatchesTopo(t *testing.T) {
	g := layout.NewGrid(2, 3)
	tp := topo.New("ref", g, layout.Large)
	for i := 0; i < 6; i++ {
		tp.AddLink(i, (i+1)%6)
	}
	w := make([][]float64, 6)
	for i := range w {
		w[i] = make([]float64, 6)
		for j := range w[i] {
			if i != j {
				w[i][j] = float64(i + 2*j + 1)
			}
		}
	}
	s := stateFromTopology(tp)
	got, unreach := s.WeightedHops(w)
	if unreach != 0 {
		t.Fatal("ring is connected")
	}
	dist := tp.ShortestPaths()
	want := 0.0
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j {
				want += w[i][j] * float64(dist[i][j])
			}
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("weightedHops = %v, want %v", got, want)
	}
}

func TestGenerateLatOpSmall4x5(t *testing.T) {
	res, err := Generate(quickCfg(layout.Grid4x5, layout.Small, LatOp))
	if err != nil {
		t.Fatal(err)
	}
	tp := res.Topology
	if !tp.IsConnected() {
		t.Fatal("generated topology disconnected")
	}
	if !tp.RespectsRadix(4) {
		t.Fatal("generated topology violates radix")
	}
	if !tp.RespectsLinkLengths() {
		t.Fatal("generated topology violates link lengths")
	}
	// Must beat the 4x5 mesh (avg 3.0) comfortably; the paper's small
	// LatOp reaches 2.34, and even a fast run should be below 2.6.
	if avg := tp.AverageHops(); avg > 2.6 {
		t.Errorf("LatOp small avg hops = %v, want < 2.6", avg)
	}
	if res.Bound <= 0 || res.Gap < 0 {
		t.Errorf("bound/gap not populated: bound=%v gap=%v", res.Bound, res.Gap)
	}
	if float64(mustTotalHops(t, tp)) < res.Bound {
		t.Errorf("objective %v below lower bound %v", mustTotalHops(t, tp), res.Bound)
	}
}

func mustTotalHops(t *testing.T, tp *topo.Topology) int {
	t.Helper()
	total, ok := tp.TotalHops()
	if !ok {
		t.Fatal("disconnected")
	}
	return total
}

func TestGenerateSCOp(t *testing.T) {
	cfg := quickCfg(layout.Grid4x5, layout.Medium, SCOp)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp := res.Topology
	if !tp.IsConnected() || !tp.RespectsRadix(4) || !tp.RespectsLinkLengths() {
		t.Fatal("SCOp topology violates constraints")
	}
	// The mesh's sparsest cut on 4x5 is about 4/(10*10); SCOp should find
	// considerably more (paper: bisection 11 vs mesh ~5).
	meshLike := 5.0 / 100.0
	if res.Objective <= meshLike {
		t.Errorf("SCOp sparsest cut %v not better than mesh-like %v", res.Objective, meshLike)
	}
	// Exact value reported must match a fresh evaluation.
	if got := tp.SparsestCut().Bandwidth; math.Abs(got-res.Objective) > 1e-12 {
		t.Errorf("reported objective %v != recomputed %v", res.Objective, got)
	}
	if res.Objective > res.Bound+1e-12 {
		t.Errorf("SCOp objective %v exceeds upper bound %v", res.Objective, res.Bound)
	}
}

func TestGenerateSymmetricConstraint(t *testing.T) {
	cfg := quickCfg(layout.Grid4x5, layout.Medium, LatOp)
	cfg.Symmetric = true
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Topology.IsSymmetric() {
		t.Fatal("Symmetric=true must yield a symmetric topology")
	}
	if !res.Topology.RespectsRadix(4) {
		t.Fatal("radix violated")
	}
}

func TestGenerateDiameterConstraint(t *testing.T) {
	cfg := quickCfg(layout.Grid4x5, layout.Large, LatOp)
	cfg.MaxDiameter = 4
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Topology.Diameter(); d > 4 {
		t.Errorf("diameter %d exceeds bound 4", d)
	}
}

func TestGenerateMinCutConstraint(t *testing.T) {
	cfg := quickCfg(layout.Grid4x5, layout.Medium, LatOp)
	cfg.MinCutBW = 8.0 / 100.0
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Topology.SparsestCut().Bandwidth; got < cfg.MinCutBW-1e-9 {
		t.Errorf("sparsest cut %v below C7 minimum %v", got, cfg.MinCutBW)
	}
}

func TestGenerateWeightedNeedsMatrix(t *testing.T) {
	cfg := quickCfg(layout.Grid4x5, layout.Small, Weighted)
	if _, err := Generate(cfg); err == nil {
		t.Fatal("Weighted without matrix must error")
	}
	cfg.Weights = [][]float64{{0}}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("wrong-size matrix must error")
	}
}

func TestGenerateWeightedShuffle(t *testing.T) {
	// Weight only the shuffle permutation pairs; the optimizer should
	// bring those pairs close to distance ~1 on a large-class 4x5.
	g := layout.Grid4x5
	n := g.N()
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for src := 0; src < n; src++ {
		var dst int
		if src < n/2 {
			dst = 2 * src
		} else {
			dst = (2*src + 1) % n
		}
		if dst != src {
			w[src][dst] = 1
		}
	}
	cfg := quickCfg(g, layout.Large, Weighted)
	cfg.Weights = w
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Topology.WeightedAverageHops(w)
	uni := quickCfg(g, layout.Large, LatOp)
	uniRes, err := Generate(uni)
	if err != nil {
		t.Fatal(err)
	}
	uniHops := uniRes.Topology.WeightedAverageHops(w)
	if got > uniHops+1e-9 {
		t.Errorf("pattern-optimized weighted hops %v worse than uniform-optimized %v", got, uniHops)
	}
}

func TestLowerBoundSanity(t *testing.T) {
	cfg, _ := (&Config{Grid: layout.Grid4x5, Class: layout.Large, Radix: 4, Objective: LatOp}).withDefaults()
	lb := latOpLowerBound(cfg)
	// 20 routers, radix 4: per source the Moore bound gives
	// 4*1 + 15*2 = 34, so total >= 680.
	if lb < 680-1e-9 {
		t.Errorf("lower bound %v below Moore floor 680", lb)
	}
	// Bound must not exceed what an actual topology achieves.
	res, err := Generate(quickCfg(layout.Grid4x5, layout.Large, LatOp))
	if err != nil {
		t.Fatal(err)
	}
	total := mustTotalHops(t, res.Topology)
	if lb > float64(total)+1e-9 {
		t.Errorf("lower bound %v exceeds achieved %d", lb, total)
	}
}

func TestMooreDistances(t *testing.T) {
	m := mooreDistances(20, 4)
	// First 4 nodes at distance >= 1, next 16 at >= 2.
	for k := 0; k < 4; k++ {
		if m[k] != 1 {
			t.Errorf("moore[%d] = %d, want 1", k, m[k])
		}
	}
	for k := 4; k < 19; k++ {
		if m[k] != 2 {
			t.Errorf("moore[%d] = %d, want 2", k, m[k])
		}
	}
	m1 := mooreDistances(5, 1)
	want := []int{1, 2, 3, 4}
	for k := range want {
		if m1[k] != want[k] {
			t.Errorf("radix-1 moore[%d] = %d, want %d", k, m1[k], want[k])
		}
	}
}

func TestExactLatOpTiny(t *testing.T) {
	// 1x4 line, large class: links may span up to 2 columns. Radix 2.
	// Exact B&B must complete and the annealer must match its optimum.
	cfg := Config{Grid: layout.NewGrid(1, 4), Class: layout.Large, Radix: 2,
		Objective: LatOp, Seed: 3, Iterations: 4000, Restarts: 2}
	exact, err := ExactLatOp(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Optimal {
		t.Fatal("tiny instance should be solved to optimality")
	}
	ann, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	annTotal := mustTotalHops(t, ann.Topology)
	if float64(annTotal) < exact.Objective-1e-9 {
		t.Fatalf("annealer total %d beats 'exact' optimum %v: B&B is wrong", annTotal, exact.Objective)
	}
	if float64(annTotal) > exact.Objective+1e-9 {
		t.Logf("annealer %d vs optimum %v (allowed, but unexpected on tiny instance)", annTotal, exact.Objective)
	}
}

func TestExactLatOpRespectsConstraints(t *testing.T) {
	cfg := Config{Grid: layout.NewGrid(2, 3), Class: layout.Small, Radix: 2,
		Objective: LatOp, Seed: 5, Iterations: 3000, Restarts: 1}
	res, err := ExactLatOp(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Topology.IsConnected() || !res.Topology.RespectsRadix(2) || !res.Topology.RespectsLinkLengths() {
		t.Fatal("B&B result violates constraints")
	}
	if res.Objective < res.Bound-1e-9 {
		t.Errorf("optimum %v below lower bound %v", res.Objective, res.Bound)
	}
}

func TestProgressTraceMonotone(t *testing.T) {
	var points []ProgressPoint
	cfg := quickCfg(layout.Grid4x5, layout.Medium, LatOp)
	cfg.Progress = func(p ProgressPoint) { points = append(points, p) }
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || len(res.Trace) == 0 {
		t.Fatal("no progress points emitted")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Incumbent > points[i-1].Incumbent+1e-9 {
			t.Errorf("LatOp incumbent must be non-increasing: %v -> %v",
				points[i-1].Incumbent, points[i].Incumbent)
		}
		if points[i].Elapsed < points[i-1].Elapsed {
			t.Error("elapsed time must be monotone")
		}
	}
	for _, p := range points {
		if p.Gap < 0 || p.Gap > 1 {
			t.Errorf("gap %v out of [0,1]", p.Gap)
		}
	}
}

func TestTimeBudgetRespected(t *testing.T) {
	cfg := quickCfg(layout.Grid8x6, layout.Large, LatOp)
	cfg.Iterations = 10_000_000 // absurd; budget must cut it off
	cfg.Restarts = 100
	cfg.TimeBudget = 300 * time.Millisecond
	start := time.Now()
	if _, err := Generate(cfg); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("time budget ignored: ran %v", elapsed)
	}
}

func TestObjectiveString(t *testing.T) {
	if LatOp.String() != "LatOp" || SCOp.String() != "SCOp" || Weighted.String() != "Weighted" {
		t.Error("objective names changed; paper-style names expected")
	}
}

// Property: generated topologies always satisfy C1-C3 regardless of seed.
func TestGenerateConstraintProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{Grid: layout.NewGrid(3, 3), Class: layout.Medium, Radix: 3,
			Objective: LatOp, Seed: seed, Iterations: 1500, Restarts: 1}
		res, err := Generate(cfg)
		if err != nil {
			return false
		}
		tp := res.Topology
		return tp.IsConnected() && tp.RespectsRadix(3) && tp.RespectsLinkLengths()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
