package synth

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
	"netsmith/internal/topo"
)

// annealer drives the simulated-annealing search with lazy sparsest-cut
// separation for SCOp.
type annealer struct {
	cfg   Config
	eval  *evaluator
	valid []layout.Link // candidate directed links (set L)
	start time.Time
	trace []ProgressPoint
	// mu guards the incumbent during parallel time-bounded restarts.
	mu sync.Mutex
	// best incumbent across restarts
	best      *bitgraph.Graph
	bestScore float64
	bound     float64 // lower bound (LatOp/Weighted) or upper bound (SCOp)
}

func newAnnealer(cfg Config) *annealer {
	return &annealer{
		cfg:   cfg,
		eval:  newEvaluator(cfg),
		valid: cfg.Grid.ValidLinks(cfg.Class),
	}
}

func (a *annealer) run() (*Result, error) {
	a.start = time.Now()
	switch a.cfg.Objective {
	case LatOp, Weighted:
		a.bound = latOpLowerBound(a.cfg)
	case SCOp:
		a.bound = scOpUpperBound(a.cfg)
	}
	a.bestScore = math.Inf(1)
	if a.cfg.TimeBudget > 0 {
		// Time-bounded mode: workers run complete annealing schedules
		// (bounded per-restart iteration count so the cooling schedule
		// stays meaningful) until the budget expires. Later restarts
		// keep improving the incumbent, producing the paper's Figure 5
		// gap-narrows-over-time behaviour.
		perRestart := a.cfg.Iterations
		if perRestart > 60000 {
			perRestart = 60000
		}
		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !a.expired() {
					r := atomic.AddInt64(&next, 1) - 1
					a.annealRestart(r, perRestart)
				}
			}()
		}
		wg.Wait()
	} else {
		// Fixed-restart mode runs sequentially: results are then exactly
		// reproducible for a given seed regardless of GOMAXPROCS.
		for r := 0; r < a.cfg.Restarts; r++ {
			if a.expired() {
				break
			}
			a.annealRestart(int64(r), a.cfg.Iterations)
		}
	}
	if a.best == nil {
		// Degenerate budget: fall back to the deterministic seed.
		s := stateFromTopology(seedTopology(a.cfg))
		a.best = s
		a.bestScore = a.eval.score(s)
	}
	// For SCOp, close the loop with the exact separation oracle: find the
	// true sparsest cut of the incumbent; if it is sparser than the pool
	// estimate, add it and re-anneal until the pool is exact on the
	// incumbent (cut/row generation).
	if a.cfg.Objective == SCOp {
		for round := 0; round < 12 && !a.expired(); round++ {
			t := a.toTopology(a.best)
			exact := t.SparsestCut()
			poolBW := a.best.PoolMin(a.eval.cutPool)
			if exact.Bandwidth >= poolBW-1e-12 {
				break // pool is tight on the incumbent
			}
			a.eval.addCut(exact.UMask)
			a.bestScore = a.eval.score(a.best)
			a.annealRestart(int64(1000+round), min(a.cfg.Iterations, 60000))
		}
	}
	return a.finish()
}

// snapshotBest reads the incumbent score under the lock.
func (a *annealer) snapshotBest() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bestScore
}

func (a *annealer) expired() bool {
	return a.cfg.TimeBudget > 0 && time.Since(a.start) >= a.cfg.TimeBudget
}

func stateFromTopology(t *topo.Topology) *bitgraph.Graph {
	s := bitgraph.New(t.N())
	for _, l := range t.Links() {
		s.Add(l.From, l.To)
	}
	return s
}

func (a *annealer) toTopology(s *bitgraph.Graph) *topo.Topology {
	t := topo.New(nameFor(a.cfg), a.cfg.Grid, a.cfg.Class)
	for _, l := range s.Links() {
		t.AddLink(l.A, l.B)
	}
	return t
}

// annealRestart runs one complete annealing schedule of iters steps.
func (a *annealer) annealRestart(restart int64, iters int) {
	cfg := a.cfg
	rng := rand.New(rand.NewSource(cfg.Seed*1000003 + restart))
	seed := seedTopology(cfg)
	fillRandomState := stateFromTopology(seed)
	a.fillRandom(fillRandomState, rng)
	cur := fillRandomState
	curScore := a.eval.score(cur)
	a.record(cur, curScore)

	// Geometric cooling scaled to the initial score magnitude.
	t0 := math.Max(1, 0.02*math.Abs(curScore))
	tEnd := math.Max(1e-6, 1e-4*t0)
	cooling := math.Pow(tEnd/t0, 1/float64(max(1, iters)))
	temp := t0

	checkEvery := 1024
	for i := 0; i < iters; i++ {
		if i%checkEvery == 0 && a.expired() {
			return
		}
		undo, ok := a.mutate(cur, rng)
		if !ok {
			continue
		}
		newScore := a.eval.score(cur)
		delta := newScore - curScore
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			curScore = newScore
			if curScore < a.snapshotBest()-1e-12 {
				a.record(cur, curScore)
			}
		} else {
			undo()
		}
		temp *= cooling
	}
}

// record snapshots a new incumbent and emits a progress point. It is
// safe for concurrent use by parallel restarts.
func (a *annealer) record(s *bitgraph.Graph, score float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if score >= a.bestScore {
		return
	}
	a.best = s.Clone()
	a.bestScore = score
	incumbent, feasible := a.incumbentObjective(s)
	if !feasible {
		return
	}
	gap := a.gapOf(incumbent)
	p := ProgressPoint{
		Elapsed:   time.Since(a.start),
		Incumbent: incumbent,
		Bound:     a.bound,
		Gap:       gap,
	}
	a.trace = append(a.trace, p)
	if a.cfg.Progress != nil {
		a.cfg.Progress(p)
	}
}

// incumbentObjective extracts the raw objective (not the penalized score)
// and whether the state is feasible.
func (a *annealer) incumbentObjective(s *bitgraph.Graph) (float64, bool) {
	total, unreachable, diam := s.HopStats()
	if unreachable > 0 {
		return 0, false
	}
	if a.cfg.MaxDiameter > 0 && diam > a.cfg.MaxDiameter {
		return 0, false
	}
	switch a.cfg.Objective {
	case LatOp:
		return float64(total), true
	case SCOp:
		return s.PoolMin(a.eval.cutPool), true
	case Weighted:
		wt, wu := s.WeightedHops(a.cfg.Weights)
		return wt, wu == 0
	}
	return 0, false
}

func (a *annealer) gapOf(incumbent float64) float64 {
	switch a.cfg.Objective {
	case LatOp, Weighted:
		if incumbent <= 0 {
			return 0
		}
		return math.Max(0, (incumbent-a.bound)/incumbent)
	case SCOp:
		if a.bound <= 0 {
			return 0
		}
		return math.Max(0, (a.bound-incumbent)/a.bound)
	}
	return 0
}

// mutate applies one random feasible move and returns an undo closure.
func (a *annealer) mutate(s *bitgraph.Graph, rng *rand.Rand) (func(), bool) {
	for attempt := 0; attempt < 16; attempt++ {
		switch rng.Intn(3) {
		case 0: // add a random valid link
			l := a.valid[rng.Intn(len(a.valid))]
			if a.canAdd(s, l.From, l.To) {
				a.doAdd(s, l.From, l.To)
				return func() { a.doRemove(s, l.From, l.To) }, true
			}
		case 1: // remove a random existing link
			if s.NumLinks() == 0 {
				continue
			}
			l := s.LinkAt(rng.Intn(s.NumLinks()))
			if a.cfg.Symmetric && !s.Has(l.B, l.A) {
				continue
			}
			a.doRemove(s, l.A, l.B)
			la, lb := l.A, l.B
			return func() { a.doAdd(s, la, lb) }, true
		default: // swap: remove one, add another
			if s.NumLinks() == 0 {
				continue
			}
			old := s.LinkAt(rng.Intn(s.NumLinks()))
			nl := a.valid[rng.Intn(len(a.valid))]
			if old.A == nl.From && old.B == nl.To {
				continue
			}
			a.doRemove(s, old.A, old.B)
			if a.canAdd(s, nl.From, nl.To) {
				a.doAdd(s, nl.From, nl.To)
				oa, ob := old.A, old.B
				return func() {
					a.doRemove(s, nl.From, nl.To)
					a.doAdd(s, oa, ob)
				}, true
			}
			a.doAdd(s, old.A, old.B) // restore
		}
	}
	return nil, false
}

func (a *annealer) canAdd(s *bitgraph.Graph, from, to int) bool {
	if s.Has(from, to) {
		return false
	}
	if s.OutDeg[from] >= a.cfg.Radix || s.InDeg[to] >= a.cfg.Radix {
		return false
	}
	if a.cfg.Symmetric {
		if s.Has(to, from) {
			return false
		}
		if s.OutDeg[to] >= a.cfg.Radix || s.InDeg[from] >= a.cfg.Radix {
			return false
		}
	}
	return true
}

func (a *annealer) doAdd(s *bitgraph.Graph, from, to int) {
	s.Add(from, to)
	if a.cfg.Symmetric {
		s.Add(to, from)
	}
}

func (a *annealer) doRemove(s *bitgraph.Graph, from, to int) {
	s.Remove(from, to)
	if a.cfg.Symmetric {
		s.Remove(to, from)
	}
}

// fillRandom saturates remaining port budget with random valid links.
func (a *annealer) fillRandom(s *bitgraph.Graph, rng *rand.Rand) {
	perm := rng.Perm(len(a.valid))
	for _, idx := range perm {
		l := a.valid[idx]
		if a.canAdd(s, l.From, l.To) {
			a.doAdd(s, l.From, l.To)
		}
	}
}

// finish converts the incumbent into a Result with exact (not pool-based)
// objective values.
func (a *annealer) finish() (*Result, error) {
	t := a.toTopology(a.best)
	res := &Result{Topology: t, Trace: a.trace, Bound: a.bound}
	switch a.cfg.Objective {
	case LatOp:
		total, _ := t.TotalHops()
		res.Objective = float64(total)
	case SCOp:
		res.Objective = t.SparsestCut().Bandwidth
	case Weighted:
		wt, _ := a.best.WeightedHops(a.cfg.Weights)
		res.Objective = wt
	}
	res.Gap = a.gapOf(res.Objective)
	res.Optimal = res.Gap <= 1e-9
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
