package synth

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
	"netsmith/internal/topo"
)

// annealer drives the simulated-annealing search with lazy sparsest-cut
// separation for SCOp. Restarts run in per-worker search contexts
// (searchCtx) holding an incremental bitgraph.Eval each, so the hot loop
// never pays a full-evaluation rescan and restarts share nothing but the
// read-only candidate set and the incumbent.
type annealer struct {
	cfg    Config
	eval   *evaluator
	valid  []layout.Link   // candidate directed links (set L)
	byFrom [][]layout.Link // valid indexed by source endpoint
	start  time.Time
	trace  []ProgressPoint
	// mu guards the incumbent and trace; bestBits mirrors bestScore so
	// the hot loop can reject non-improving snapshots without the lock.
	mu        sync.Mutex
	best      *bitgraph.Graph
	bestScore float64
	bestBits  atomic.Uint64
	bound     float64 // lower bound (LatOp/Weighted) or upper bound (SCOp)
	// traceLive selects streaming trace/Progress emission from record()
	// (time-budget mode); fixed-restart mode instead rebuilds the trace
	// deterministically in offerResult.
	traceLive bool
}

func newAnnealer(cfg Config) *annealer {
	valid := cfg.Grid.ValidLinks(cfg.Class)
	byFrom := make([][]layout.Link, cfg.Grid.N())
	for _, l := range valid {
		byFrom[l.From] = append(byFrom[l.From], l)
	}
	return &annealer{
		cfg:    cfg,
		eval:   newEvaluator(cfg),
		valid:  valid,
		byFrom: byFrom,
	}
}

// localPoint is one local-best improvement inside a restart, kept so
// fixed-restart mode can rebuild a deterministic progress trace after
// the merge (the live record() path is scheduling-dependent).
type localPoint struct {
	score     float64
	incumbent float64
	feasible  bool
	at        time.Duration
}

// restartResult is one restart's locally best state and improvement
// history, used for the deterministic merge in fixed-restart mode.
type restartResult struct {
	score float64
	snap  *bitgraph.Graph
	local []localPoint
}

func (a *annealer) run() (*Result, error) {
	a.start = time.Now()
	switch a.cfg.Objective {
	case LatOp, Weighted:
		a.bound = latOpLowerBound(a.cfg)
	case SCOp:
		a.bound = scOpUpperBound(a.cfg)
	}
	a.setBest(nil, math.Inf(1))
	if a.cfg.Population > 0 {
		// Population mode: evolve a pool of topologies. Children are
		// computed in parallel but merged sequentially with (score,
		// index) tie-breaking, so the trace and incumbent are rebuilt
		// deterministically, like fixed-restart mode.
		a.runPopulation()
	} else if a.cfg.TimeBudget > 0 {
		// Time-bounded runs are inherently timing-dependent; the trace
		// and Progress callbacks stream live from record().
		a.traceLive = true
		// Time-bounded mode: workers run complete annealing schedules
		// (bounded per-restart iteration count so the cooling schedule
		// stays meaningful) until the budget expires. Later restarts
		// keep improving the incumbent, producing the paper's Figure 5
		// gap-narrows-over-time behaviour.
		perRestart := a.cfg.Iterations
		if perRestart > 60000 {
			perRestart = 60000
		}
		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !a.expired() {
					r := atomic.AddInt64(&next, 1) - 1
					res := a.annealRestart(r, perRestart)
					a.offerResult(res)
				}
			}()
		}
		wg.Wait()
	} else {
		// Fixed-restart mode: restarts are mutually independent (each
		// derives its RNG from Seed and the restart index alone), so they
		// run in parallel and merge deterministically afterwards — the
		// lowest (score, restart index) wins, making the outcome
		// identical for a given seed regardless of GOMAXPROCS.
		restarts := a.cfg.Restarts
		results := make([]restartResult, restarts)
		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		if workers > restarts {
			workers = restarts
		}
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					r := atomic.AddInt64(&next, 1) - 1
					if r >= int64(restarts) || a.expired() {
						return
					}
					results[r] = a.annealRestart(r, a.cfg.Iterations)
				}
			}()
		}
		wg.Wait()
		// Deterministic merge: strict improvement in ascending restart
		// order means ties resolve to the lowest restart index. The
		// progress trace is rebuilt from the per-restart improvement
		// histories in the same order, so Result.Trace is as
		// reproducible as the topology (record() ran concurrently and
		// only served the incumbent fast path during the race).
		a.setBest(nil, math.Inf(1))
		a.trace = a.trace[:0]
		for _, res := range results {
			a.offerResult(res)
		}
	}
	if a.best == nil {
		// Degenerate budget: fall back to the deterministic seed.
		s := stateFromTopology(seedTopology(a.cfg))
		a.setBest(s, a.eval.fullScore(s))
	}
	// Close the loop with the exact separation oracle for objectives that
	// score through the cut pool: find the true sparsest cut of the
	// incumbent; if the pool misses it, add it and re-anneal until the
	// pool is exact on the incumbent (cut/row generation). For SCOp this
	// tightens the reported objective; for a C7 minimum-cut constraint it
	// catches incumbents whose true sparsest cut violates the bound even
	// though every pooled cut satisfies it.
	if a.cfg.Objective == SCOp || a.cfg.MinCutBW > 0 {
		for round := 0; round < 12 && !a.expired(); round++ {
			t := a.toTopology(a.best)
			exact := t.SparsestCut()
			if a.cfg.Objective != SCOp && exact.Bandwidth >= a.cfg.MinCutBW-1e-12 {
				break // C7 satisfied exactly
			}
			poolBW := a.best.PoolMin(a.eval.cutPool)
			if exact.Bandwidth >= poolBW-1e-12 {
				break // pool is tight on the incumbent
			}
			a.eval.addCut(exact.U)
			a.setBest(a.best, a.eval.fullScore(a.best))
			res := a.annealRestart(int64(1000+round), min(a.cfg.Iterations, 60000))
			a.offerResult(res)
		}
	}
	// Fragility oracle: the pool prices only the cuts it knows about, so
	// an incumbent can still hide a critical link behind an unpooled
	// 1-crossing cut. Probe every link exactly; each critical one
	// certifies such a cut — pool it, re-score and re-anneal until no
	// probe finds a cut the pool lacks (the C7 row-generation idea turned
	// on single-failure reachability).
	if a.cfg.RobustWeight > 0 {
		for round := 0; round < 12 && !a.expired(); round++ {
			cuts, _ := criticalCuts(a.best)
			grew := false
			for _, u := range cuts {
				if a.eval.addCut(u) {
					grew = true
				}
			}
			if !grew {
				break
			}
			a.setBest(a.best, a.eval.fullScore(a.best))
			res := a.annealRestart(int64(2000+round), min(a.cfg.Iterations, 60000))
			a.offerResult(res)
		}
	}
	return a.finish()
}

// setBest replaces the incumbent unconditionally (single-threaded phases
// only).
func (a *annealer) setBest(s *bitgraph.Graph, score float64) {
	a.best = s
	a.bestScore = score
	a.bestBits.Store(math.Float64bits(score))
}

// offerResult installs a restart result if it strictly improves on the
// incumbent. Outside live-trace mode it first replays the restart's
// improvement history against the current incumbent, emitting the
// progress points a sequential run of the restarts would have produced
// (each restart's history is strictly improving, so every point below
// the incumbent is a global improvement in replay order).
func (a *annealer) offerResult(res restartResult) {
	if res.snap == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.traceLive {
		for _, p := range res.local {
			if p.score >= a.bestScore || !p.feasible {
				continue
			}
			pt := ProgressPoint{
				Elapsed:   p.at,
				Incumbent: p.incumbent,
				Bound:     a.bound,
				Gap:       a.gapOf(p.incumbent),
			}
			a.trace = append(a.trace, pt)
			if a.cfg.Progress != nil {
				a.cfg.Progress(pt)
			}
		}
	}
	if res.score < a.bestScore {
		a.best = res.snap
		a.bestScore = res.score
		a.bestBits.Store(math.Float64bits(res.score))
	}
}

// loadBest reads the incumbent score without the lock.
func (a *annealer) loadBest() float64 {
	return math.Float64frombits(a.bestBits.Load())
}

func (a *annealer) expired() bool {
	return a.cfg.TimeBudget > 0 && time.Since(a.start) >= a.cfg.TimeBudget
}

func stateFromTopology(t *topo.Topology) *bitgraph.Graph {
	s := bitgraph.New(t.N())
	for _, l := range t.Links() {
		s.Add(l.From, l.To)
	}
	return s
}

func (a *annealer) toTopology(s *bitgraph.Graph) *topo.Topology {
	t := topo.New(nameFor(a.cfg), a.cfg.Grid, a.cfg.Class)
	for _, l := range s.Links() {
		t.AddLink(l.A, l.B)
	}
	return t
}

// searchCtx is one restart's private search state: an incremental
// evaluator over the working graph plus the endpoint-indexed move
// sampler (openOut lists the routers with spare out-radix, so add moves
// sample feasible sources in O(1) instead of rejection-sampling the
// whole candidate set).
type searchCtx struct {
	a       *annealer
	ev      *bitgraph.Eval
	openOut []int32
	openPos []int32
	touched []int32
}

func (a *annealer) newSearchCtx(g *bitgraph.Graph) *searchCtx {
	var weights [][]float64
	if a.cfg.Objective == Weighted {
		weights = a.cfg.Weights
	}
	ev := bitgraph.NewEval(g, weights)
	if a.cfg.MaxDiameter > 0 {
		ev.TrackDiameter()
	}
	if a.eval.linkCostMilli != nil {
		ev.SetLinkCost(a.eval.linkCostMilli)
	}
	if a.cfg.Objective == SCOp || a.cfg.MinCutBW > 0 || a.cfg.RobustWeight > 0 {
		for _, m := range a.eval.cutPool {
			ev.AddCut(m)
		}
	}
	n := g.N()
	c := &searchCtx{a: a, ev: ev, openPos: make([]int32, n)}
	for i := range c.openPos {
		c.openPos[i] = -1
	}
	for x := 0; x < n; x++ {
		c.noteDeg(x)
	}
	return c
}

// noteDeg reconciles router x's membership in the spare-out-radix index
// with its current out-degree.
func (c *searchCtx) noteDeg(x int) {
	g := c.ev.Graph()
	open := g.OutDeg[x] < c.a.cfg.Radix && len(c.a.byFrom[x]) > 0
	cur := c.openPos[x] >= 0
	if open == cur {
		return
	}
	if open {
		c.openPos[x] = int32(len(c.openOut))
		c.openOut = append(c.openOut, int32(x))
	} else {
		i := c.openPos[x]
		last := c.openOut[len(c.openOut)-1]
		c.openOut[i] = last
		c.openPos[last] = i
		c.openOut = c.openOut[:len(c.openOut)-1]
		c.openPos[x] = -1
	}
}

func (c *searchCtx) begin() {
	c.ev.Begin()
	c.touched = c.touched[:0]
}

func (c *searchCtx) commit() { c.ev.Commit() }

func (c *searchCtx) rollback() {
	c.ev.Rollback()
	for _, x := range c.touched {
		c.noteDeg(int(x))
	}
}

func (c *searchCtx) doAdd(from, to int) {
	c.ev.Add(from, to)
	c.touch(from)
	if c.a.cfg.Symmetric {
		c.ev.Add(to, from)
		c.touch(to)
	}
}

func (c *searchCtx) doRemove(from, to int) {
	c.ev.Remove(from, to)
	c.touch(from)
	if c.a.cfg.Symmetric {
		c.ev.Remove(to, from)
		c.touch(to)
	}
}

// touch records an endpoint whose out-degree changed so the spare-radix
// index stays reconciled (and can be re-reconciled after a rollback).
func (c *searchCtx) touch(x int) {
	c.touched = append(c.touched, int32(x))
	c.noteDeg(x)
}

func (c *searchCtx) canAdd(from, to int) bool {
	return feasibleAdd(c.ev.Graph(), &c.a.cfg, from, to)
}

func feasibleAdd(s *bitgraph.Graph, cfg *Config, from, to int) bool {
	if s.Has(from, to) {
		return false
	}
	if s.OutDeg[from] >= cfg.Radix || s.InDeg[to] >= cfg.Radix {
		return false
	}
	if cfg.Symmetric {
		if s.Has(to, from) {
			return false
		}
		if s.OutDeg[to] >= cfg.Radix || s.InDeg[from] >= cfg.Radix {
			return false
		}
	}
	return true
}

// canAddAfterRemove reports whether nl would be feasible once the link
// (oa, ob) — plus its reverse in symmetric mode — is removed, by
// checking degrees with the removal's adjustment applied. This lets
// swap moves validate before touching the evaluator.
func (c *searchCtx) canAddAfterRemove(nl layout.Link, oa, ob int) bool {
	g := c.ev.Graph()
	if nl.From == oa && nl.To == ob {
		return false
	}
	if g.Has(nl.From, nl.To) {
		return false
	}
	sym := c.a.cfg.Symmetric
	radix := c.a.cfg.Radix
	if adjOutDeg(g, nl.From, oa, ob, sym) >= radix || adjInDeg(g, nl.To, oa, ob, sym) >= radix {
		return false
	}
	if sym {
		if g.Has(nl.To, nl.From) && !(nl.To == oa && nl.From == ob) {
			return false
		}
		if adjOutDeg(g, nl.To, oa, ob, sym) >= radix || adjInDeg(g, nl.From, oa, ob, sym) >= radix {
			return false
		}
	}
	return true
}

// adjOutDeg returns x's out-degree as it will be once link (oa, ob) —
// plus its reverse in symmetric mode — is removed.
func adjOutDeg(g *bitgraph.Graph, x, oa, ob int, sym bool) int {
	d := g.OutDeg[x]
	if x == oa {
		d--
	}
	if sym && x == ob {
		d--
	}
	return d
}

// adjInDeg is adjOutDeg for the in-degree.
func adjInDeg(g *bitgraph.Graph, x, oa, ob int, sym bool) int {
	d := g.InDeg[x]
	if x == ob {
		d--
	}
	if sym && x == oa {
		d--
	}
	return d
}

// move is a selected (not yet applied) mutation.
type move struct {
	kind           moveKind
	rf, rt, af, at int // remove from/to, add from/to
}

type moveKind int

const (
	moveAdd moveKind = iota
	moveRemove
	moveSwap
)

// propose selects one random feasible move without touching the
// evaluator; application and acceptance are the caller's business.
func (c *searchCtx) propose(rng *fastRand) (move, bool) {
	g := c.ev.Graph()
	sym := c.a.cfg.Symmetric
	for attempt := 0; attempt < 16; attempt++ {
		switch rng.Intn(3) {
		case 0: // add a valid link from a router with spare out-radix
			if len(c.openOut) == 0 {
				continue
			}
			src := int(c.openOut[rng.Intn(len(c.openOut))])
			cands := c.a.byFrom[src]
			l := cands[rng.Intn(len(cands))]
			if c.canAdd(l.From, l.To) {
				return move{kind: moveAdd, af: l.From, at: l.To}, true
			}
		case 1: // remove a random existing link
			if g.NumLinks() == 0 {
				continue
			}
			l := g.LinkAt(rng.Intn(g.NumLinks()))
			if sym && !g.Has(l.B, l.A) {
				continue
			}
			return move{kind: moveRemove, rf: l.A, rt: l.B}, true
		default: // swap: remove one, add another
			if g.NumLinks() == 0 {
				continue
			}
			old := g.LinkAt(rng.Intn(g.NumLinks()))
			if sym && !g.Has(old.B, old.A) {
				continue
			}
			nl := c.a.valid[rng.Intn(len(c.a.valid))]
			if c.canAddAfterRemove(nl, old.A, old.B) {
				return move{kind: moveSwap, rf: old.A, rt: old.B, af: nl.From, at: nl.To}, true
			}
		}
	}
	return move{}, false
}

// poolInScore reports whether the scalarized score has components
// beyond distances — cut-pool terms, or the fragility term's degree
// slack — in which case no link removal is score-neutral even when it
// dirties no distance row.
func (c *searchCtx) poolInScore() bool {
	return c.a.cfg.Objective == SCOp || c.a.cfg.MinCutBW > 0 || c.a.cfg.RobustWeight > 0
}

// incumbentObjective extracts the raw objective (not the penalized
// score) and whether the state is feasible, from the maintained
// aggregates.
func (c *searchCtx) incumbentObjective() (float64, bool) {
	cfg := &c.a.cfg
	if c.ev.Unreachable() > 0 {
		return 0, false
	}
	if cfg.MaxDiameter > 0 && c.ev.Diameter() > cfg.MaxDiameter {
		return 0, false
	}
	switch cfg.Objective {
	case LatOp:
		return float64(c.ev.Total()), true
	case SCOp:
		return c.ev.PoolMin(), true
	case Weighted:
		wt, wUnreach := c.ev.WeightedTotal()
		return wt, wUnreach == 0
	}
	return 0, false
}

// annealRestart runs one complete annealing schedule of iters steps and
// returns the restart's local best. The trajectory depends only on
// (Seed, restart), never on other restarts, which is what makes the
// fixed-restart merge deterministic.
func (a *annealer) annealRestart(restart int64, iters int) restartResult {
	cfg := a.cfg
	rng := newFastRand(cfg.Seed*1000003 + restart)
	state := stateFromTopology(seedTopology(cfg))
	a.fillRandom(state, rng)
	return a.annealFrom(rng, state, iters, 1)
}

// annealFrom runs one annealing schedule of iters steps starting from
// state (mutated in place) and returns the local best found. The
// trajectory is a pure function of (rng state, state, iters, tempScale),
// which lets population mode reuse the annealer as its mutation
// operator: crossover children are burst-annealed from their repaired
// link sets with child-derived RNGs, preserving the determinism
// contract. tempScale scales the starting temperature: restarts explore
// from scratch at 1; population bursts polish an already-good child at
// popBurstTemp, cool enough not to scramble the inherited structure.
func (a *annealer) annealFrom(rng *fastRand, state *bitgraph.Graph, iters int, tempScale float64) restartResult {
	cfg := a.cfg
	ctx := a.newSearchCtx(state)
	curScore := ctx.score()
	curValid := true
	localBest := curScore
	snapshot := state.Clone()
	var local []localPoint
	// note logs a local-best improvement (for the deterministic trace
	// replay) and offers it to the live incumbent.
	note := func(score float64, snap *bitgraph.Graph) {
		incumbent, feasible := ctx.incumbentObjective()
		local = append(local, localPoint{
			score: score, incumbent: incumbent, feasible: feasible,
			at: time.Since(a.start),
		})
		a.record(snap, score, ctx)
	}
	note(curScore, snapshot)

	// refresh settles any lazily accepted moves: it flushes the pending
	// recomputes, re-reads the score and checkpoints the local best.
	// Chains of free moves are monotone non-worsening, so checkpointing
	// at the chain end never misses a better intermediate state.
	refresh := func() {
		if curValid {
			return
		}
		curScore = ctx.score()
		curValid = true
		if curScore < localBest-1e-12 {
			localBest = curScore
			snapshot = ctx.ev.Graph().Clone()
			note(curScore, snapshot)
		}
	}

	// settle finishes a scored move: commit on accept (checkpointing a
	// local-best improvement) or roll the transaction back.
	settle := func(accept bool, newScore float64) {
		if !accept {
			ctx.rollback()
			return
		}
		ctx.commit()
		curScore = newScore
		if curScore < localBest-1e-12 {
			localBest = curScore
			snapshot = ctx.ev.Graph().Clone()
			note(curScore, snapshot)
		}
	}

	// Geometric cooling scaled to the initial score magnitude.
	t0 := tempScale * math.Max(1, 0.02*math.Abs(curScore))
	tEnd := math.Max(1e-6, 1e-4*t0)
	cooling := math.Pow(tEnd/t0, 1/float64(max(1, iters)))
	temp := t0

	// The monotonicity fast paths below assume additions never worsen and
	// removals never improve any score component. A positive EnergyWeight
	// breaks both directions (adds pay energy, removals recoup it), so
	// energy-aware runs route every move through the exact transactional
	// Metropolis path.
	mono := a.eval.linkCostMilli == nil

	const checkEvery = 1024
	for i := 0; i < iters; i++ {
		if i%checkEvery == 0 && a.expired() {
			refresh()
			return restartResult{localBest, snapshot, local}
		}
		mv, ok := ctx.propose(rng)
		if !ok {
			continue
		}
		if mv.kind == moveAdd && mono {
			// Every score component is monotone non-worsening under a
			// link addition (distances and unreachable pairs shrink, cut
			// crossings grow), so the Metropolis test always accepts:
			// apply without a transaction and defer the evaluation.
			ctx.doAdd(mv.af, mv.at)
			curValid = false
			temp *= cooling
			continue
		}
		refresh()
		temp *= cooling // cooling applies to every applied move below
		if mono && mv.kind == moveRemove && !cfg.Symmetric && cfg.Objective != Weighted {
			// Peek-first removal: detection without mutation. A removal
			// the bound already rejects costs nothing but the peek — no
			// transaction, no graph churn, no rollback. (Symmetric
			// removals drop two links whose combined dirty set the peek
			// of one direction does not bound; they take the
			// transactional path below.)
			pending := ctx.ev.PeekRemove(mv.rf, mv.rt)
			if pending == 0 {
				if !ctx.poolInScore() {
					// Score-neutral: apply outside any transaction, like
					// a free add.
					ctx.doRemove(mv.rf, mv.rt)
					continue
				}
			} else {
				if float64(pending) >= 30*temp {
					continue // rejected, nothing was mutated
				}
				u := rng.Float64()
				if !metropolisAccept(u, float64(pending)/temp) {
					continue // delta >= pending already rejects this draw
				}
				// Plausible accept: now apply for real and settle the
				// exact delta against the same draw.
				ctx.begin()
				ctx.doRemove(mv.rf, mv.rt)
				newScore := ctx.score()
				settle(metropolisAccept(u, (newScore-curScore)/temp), newScore)
				continue
			}
		}
		ctx.begin()
		if mv.kind == moveSwap || mv.kind == moveAdd {
			// A swap keeps the union semantics: the add and remove halves
			// often dirty the same sources near the touched endpoints,
			// and the lazy queue recomputes each exactly once against
			// the final graph. (A bare add only reaches this path in
			// energy mode, where it needs the exact test.)
			ctx.doAdd(mv.af, mv.at)
		}
		if mv.kind != moveAdd {
			ctx.doRemove(mv.rf, mv.rt)
		}
		pending := ctx.ev.Pending()
		if mono && pending == 0 && !ctx.poolInScore() {
			// The removal changed no distance row and the pool is not
			// scored, so the delta is the add half's (non-positive)
			// contribution: provably accepted with no extra BFS. For a
			// swap the add half may have improved the score already —
			// in fast mode its repair ran eagerly and leaves nothing
			// pending — so the cached score must be refreshed before
			// the next exact comparison.
			ctx.commit()
			if mv.kind == moveSwap {
				curValid = false
			}
			continue
		}
		// Removal bound: every score term is monotone non-worsening
		// under a removal and each dirty source raises the raw hop
		// total — which every objective except Weighted scores directly
		// — by at least 1, so a plain removal's delta >= pending. (No
		// such bound for swaps, whose add half can improve the score,
		// or for Weighted, whose demands can be zero on the affected
		// pairs.)
		bound := float64(pending)
		if mono && mv.kind == moveRemove && cfg.Objective != Weighted {
			if bound >= 30*temp {
				// exp(-30) < 1e-13 is below any realistic uniform draw:
				// reject without even drawing.
				ctx.rollback()
				continue
			}
			// Draw the Metropolis uniform first: since the true delta is
			// at least bound, a draw the bound already rejects would
			// reject the exact delta too — no BFS needed. The exact path
			// below reuses the same draw, so the overall test is still
			// exact Metropolis.
			u := rng.Float64()
			if !metropolisAccept(u, bound/temp) {
				ctx.rollback()
				continue
			}
			newScore := ctx.score()
			settle(metropolisAccept(u, (newScore-curScore)/temp), newScore)
			continue
		}
		newScore := ctx.score()
		delta := newScore - curScore
		settle(delta <= 0 || metropolisAccept(rng.Float64(), delta/temp), newScore)
	}
	refresh()
	return restartResult{localBest, snapshot, local}
}

// record offers a new incumbent snapshot and emits a progress point on
// improvement (time-budget mode only). It is safe for concurrent use by
// parallel restarts; the lock-free bestBits read rejects non-improving
// snapshots cheaply. In fixed-restart mode it is a no-op: offerResult
// is the sole incumbent and trace writer there, so the deterministic
// replay filter never races against mid-restart updates.
func (a *annealer) record(s *bitgraph.Graph, score float64, ctx *searchCtx) {
	if !a.traceLive {
		return
	}
	if score >= a.loadBest()-1e-12 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if score >= a.bestScore {
		return
	}
	a.best = s
	a.bestScore = score
	a.bestBits.Store(math.Float64bits(score))
	incumbent, feasible := ctx.incumbentObjective()
	if !feasible {
		return
	}
	gap := a.gapOf(incumbent)
	p := ProgressPoint{
		Elapsed:   time.Since(a.start),
		Incumbent: incumbent,
		Bound:     a.bound,
		Gap:       gap,
	}
	a.trace = append(a.trace, p)
	if a.cfg.Progress != nil {
		a.cfg.Progress(p)
	}
}

// gapOf computes the objective-bounds gap; see ProgressPoint.Gap for the
// per-objective formulas.
func (a *annealer) gapOf(incumbent float64) float64 {
	switch a.cfg.Objective {
	case LatOp, Weighted:
		if incumbent <= 0 {
			return 0
		}
		return math.Max(0, (incumbent-a.bound)/incumbent)
	case SCOp:
		if a.bound <= 0 {
			return 0
		}
		return math.Max(0, (a.bound-incumbent)/a.bound)
	}
	return 0
}

// fillRandom saturates remaining port budget with random valid links.
// It runs on the bare graph before the evaluator attaches, so the bulk
// build costs one full evaluation instead of one delta per link.
func (a *annealer) fillRandom(s *bitgraph.Graph, rng *fastRand) {
	perm := rng.Perm(len(a.valid))
	for _, idx := range perm {
		l := a.valid[idx]
		if feasibleAdd(s, &a.cfg, l.From, l.To) {
			s.Add(l.From, l.To)
			if a.cfg.Symmetric {
				s.Add(l.To, l.From)
			}
		}
	}
}

// finish converts the incumbent into a Result with exact (not pool-based)
// objective values.
func (a *annealer) finish() (*Result, error) {
	t := a.toTopology(a.best)
	res := &Result{Topology: t, Trace: a.trace, Bound: a.bound}
	switch a.cfg.Objective {
	case LatOp:
		total, _, _ := a.best.HopStats()
		res.Objective = float64(total)
	case SCOp:
		res.Objective = t.SparsestCut().Bandwidth
	case Weighted:
		wt, _ := a.best.WeightedHops(a.cfg.Weights)
		res.Objective = wt
	}
	if a.eval.linkCostMilli != nil {
		res.EnergyProxy = energyProxyOf(a.eval.energyProxySum(a.best))
	}
	if a.cfg.RobustWeight > 0 {
		_, res.CriticalLinks = criticalCuts(a.best)
		res.Fragility = robustFragility(a.best.OutDeg, a.best.InDeg,
			a.best.PoolMinCross(a.eval.cutPool))
	}
	res.Gap = a.gapOf(res.Objective)
	res.Optimal = res.Gap <= 1e-9
	return res, nil
}

// metropolisAccept reports u < exp(-x) for x >= 0: the Metropolis
// acceptance test for a worsening move with normalized delta x. The
// exp(-x) >= 1-x and exp(-x) <= 1/(1+x) sandwiches settle most draws
// without paying for the transcendental.
func metropolisAccept(u, x float64) bool {
	if u < 1-x {
		return true
	}
	if u*(1+x) >= 1 {
		return false
	}
	return u < math.Exp(-x)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
