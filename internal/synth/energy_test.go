package synth

import (
	"testing"

	"netsmith/internal/layout"
	"netsmith/internal/power"
)

// The proxy constants are duplicated from power.Default22nm (synth must
// not import power outside tests; see objective.go). This pin keeps the
// copies from drifting.
func TestEnergyProxyConstantsMatchPowerModel(t *testing.T) {
	m := power.Default22nm()
	if energyWirePJPerFlitMM != m.WireDynPJPerFlitMM {
		t.Errorf("energyWirePJPerFlitMM = %v, power model has %v", energyWirePJPerFlitMM, m.WireDynPJPerFlitMM)
	}
	if energyPortLeakMW != m.RouterLeakMWPerPort {
		t.Errorf("energyPortLeakMW = %v, power model has %v", energyPortLeakMW, m.RouterLeakMWPerPort)
	}
}

// TestEnergyWeightPrunesLinks checks the objective actually trades
// connectivity richness for energy: at a meaningful weight the chosen
// topology uses fewer, shorter links than the unweighted optimum while
// staying feasible, and the reported proxy reflects the saving.
func TestEnergyWeightPrunesLinks(t *testing.T) {
	base := Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		Seed: 4, Iterations: 8000, Restarts: 2}
	plain, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.EnergyProxy != 0 {
		t.Errorf("EnergyProxy %v reported without EnergyWeight", plain.EnergyProxy)
	}

	weighted := base
	weighted.EnergyWeight = 30
	green, err := Generate(weighted)
	if err != nil {
		t.Fatal(err)
	}
	if !green.Topology.IsConnected() {
		t.Fatal("energy-weighted topology disconnected")
	}
	if !green.Topology.RespectsRadix(4) || !green.Topology.RespectsLinkLengths() {
		t.Fatal("energy-weighted topology violates constraints")
	}
	if green.EnergyProxy <= 0 {
		t.Fatalf("EnergyProxy = %v, want > 0", green.EnergyProxy)
	}
	if gl, pl := green.Topology.NumLinks(), plain.Topology.NumLinks(); gl >= pl {
		t.Errorf("energy weight kept %d links, unweighted uses %d — no pruning", gl, pl)
	}
	if gw, pw := green.Topology.TotalWireLengthMM(), plain.Topology.TotalWireLengthMM(); gw >= pw {
		t.Errorf("energy weight kept %.1f mm of wire, unweighted uses %.1f mm", gw, pw)
	}
	// Cross-check the reported proxy against a from-scratch pricing of
	// the returned topology.
	cfg, err := (&weighted).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	ev := newEvaluator(cfg)
	if want := energyProxyOf(ev.energyProxySum(stateFromTopology(green.Topology))); green.EnergyProxy != want {
		t.Errorf("EnergyProxy %v != recomputed %v", green.EnergyProxy, want)
	}
}

// TestEnergyWeightDeterministic extends the determinism contract to
// energy-aware runs (which bypass the monotone fast paths and take the
// exact transactional route for every move).
func TestEnergyWeightDeterministic(t *testing.T) {
	cfg := Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		EnergyWeight: 10, Seed: 9, Iterations: 4000, Restarts: 2}
	first, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Topology.CanonicalLinkList() != again.Topology.CanonicalLinkList() {
		t.Fatal("energy-weighted Generate not deterministic")
	}
	if first.EnergyProxy != again.EnergyProxy {
		t.Fatalf("EnergyProxy differs across runs: %v vs %v", first.EnergyProxy, again.EnergyProxy)
	}
}
