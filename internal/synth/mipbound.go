package synth

import (
	"sync"

	"netsmith/internal/mip"
)

var mipBoundMemo sync.Map // boundKey -> float64

// mipLatOpBound is latOpLowerBound tightened by the LP relaxation in
// internal/mip: per source, mip.DistanceLevelBound couples consecutive
// distance levels through the radix branching constraint, so a source
// whose reachable neighborhood is thin (few valid links) caps every
// later level too — something the element-wise max of the reachability
// and Moore sequences cannot express. The result is still a rigorous
// lower bound on total hops (each per-source LP relaxes every feasible
// topology's true level vector), and it dominates the combinatorial
// bound, which it falls back to if any per-source LP is unavailable.
// Population mode uses it to prune hopeless offspring.
func mipLatOpBound(cfg Config) float64 {
	key := boundKey{cfg.Grid.Rows, cfg.Grid.Cols, cfg.Class, cfg.Radix, false}
	if v, ok := mipBoundMemo.Load(key); ok {
		return v.(float64)
	}
	v := mipLatOpBoundCompute(cfg)
	mipBoundMemo.Store(key, v)
	return v
}

func mipLatOpBoundCompute(cfg Config) float64 {
	comb := latOpLowerBound(cfg)
	n := cfg.Grid.N()
	if n < 2 {
		return comb
	}
	g := validGraph(cfg)
	dist := make([]int16, n)
	var total float64
	for s := 0; s < n; s++ {
		g.BFSRow(s, dist)
		maxD := 0
		for v, d := range dist {
			if v != s && d < 0 {
				// Even the full valid graph cannot reach every node: no
				// feasible topology exists and the LP has no feasible
				// point; keep the combinatorial bound's behaviour.
				return comb
			}
			if int(d) > maxD {
				maxD = int(d)
			}
		}
		cum := make([]int, maxD)
		for v, d := range dist {
			if v != s && d > 0 {
				cum[d-1]++
			}
		}
		for i := 1; i < maxD; i++ {
			cum[i] += cum[i-1]
		}
		b, err := mip.DistanceLevelBound(n, cfg.Radix, cum)
		if err != nil {
			return comb
		}
		total += b
	}
	if comb > total {
		return comb
	}
	return total
}
