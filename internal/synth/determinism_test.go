package synth

import (
	"fmt"
	"runtime"
	"testing"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
	"netsmith/internal/store"
)

// traceValues renders the scheduling-independent part of a progress
// trace (Elapsed is wall-clock and excluded).
func traceValues(res *Result) string {
	out := ""
	for _, p := range res.Trace {
		out += fmt.Sprintf("%.17g/%.17g/%.17g;", p.Incumbent, p.Bound, p.Gap)
	}
	return out
}

// Fixed-restart Generate must be a pure function of its Config: the
// parallel restarts derive their RNG streams from (Seed, restart index)
// alone and merge by (score, restart index), so the topology is
// identical across runs and across GOMAXPROCS settings.
func TestGenerateDeterministicAcrossRuns(t *testing.T) {
	for _, obj := range []Objective{LatOp, SCOp} {
		cfg := quickCfg(layout.Grid4x5, layout.Medium, obj)
		cfg.Iterations = 4000
		cfg.Restarts = 3
		first, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			again, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := again.Topology.CanonicalLinkList(), first.Topology.CanonicalLinkList(); got != want {
				t.Fatalf("%v: run %d produced a different topology", obj, run)
			}
			if again.Objective != first.Objective {
				t.Fatalf("%v: objective %v != %v across runs", obj, again.Objective, first.Objective)
			}
			if got, want := traceValues(again), traceValues(first); got != want {
				t.Fatalf("%v: run %d produced a different progress trace:\n%s\nvs\n%s", obj, run, got, want)
			}
		}
	}
}

func TestGenerateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, obj := range []Objective{LatOp, SCOp} {
		cfg := quickCfg(layout.Grid4x5, layout.Medium, obj)
		cfg.Iterations = 4000
		cfg.Restarts = 4
		var want, wantTrace string
		for _, procs := range []int{1, 4, 2} {
			runtime.GOMAXPROCS(procs)
			res, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			canon := res.Topology.CanonicalLinkList()
			trace := traceValues(res)
			if want == "" {
				want, wantTrace = canon, trace
			} else if canon != want {
				t.Fatalf("%v: GOMAXPROCS=%d produced a different topology", obj, procs)
			} else if trace != wantTrace {
				t.Fatalf("%v: GOMAXPROCS=%d produced a different progress trace", obj, procs)
			}
		}
	}
}

// Population mode must honor the same purity contract as fixed-restart
// mode: the breeding plan is drawn sequentially, children are keyed by
// index and the elitist merge is sequential, so evolution is a pure
// function of the Config at any GOMAXPROCS.
func TestPopulationDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, obj := range []Objective{LatOp, SCOp} {
		cfg := quickCfg(layout.Grid4x5, layout.Medium, obj)
		cfg.Iterations = 1200
		cfg.Restarts = 1
		cfg.Population = 4
		cfg.Generations = 2
		var want, wantTrace string
		var wantObj, wantBound float64
		for _, procs := range []int{1, 4, 8} {
			runtime.GOMAXPROCS(procs)
			res, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			canon := res.Topology.CanonicalLinkList()
			trace := traceValues(res)
			if want == "" {
				want, wantTrace = canon, trace
				wantObj, wantBound = res.Objective, res.Bound
			} else if canon != want {
				t.Fatalf("%v: GOMAXPROCS=%d produced a different topology", obj, procs)
			} else if trace != wantTrace {
				t.Fatalf("%v: GOMAXPROCS=%d produced a different progress trace", obj, procs)
			} else if res.Objective != wantObj || res.Bound != wantBound {
				t.Fatalf("%v: GOMAXPROCS=%d produced different metrics", obj, procs)
			}
		}
	}
}

// The member store is a bit-exact cache of a pure computation: a cold
// run (computing and persisting members), a warm run (reloading them)
// and a store-less run must evolve identically, topology, metrics and
// trace included.
func TestPopulationDeterministicWarmStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(layout.Grid4x5, layout.Medium, LatOp)
	cfg.Iterations = 1200
	cfg.Restarts = 1
	cfg.Population = 4
	cfg.Generations = 2
	cfg.Store = st
	cold, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = nil
	bare, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Topology.CanonicalLinkList()
	for name, res := range map[string]*Result{"warm": warm, "store-less": bare} {
		if got := res.Topology.CanonicalLinkList(); got != want {
			t.Errorf("%s run produced a different topology", name)
		}
		if res.Objective != cold.Objective || res.Bound != cold.Bound {
			t.Errorf("%s run produced different metrics", name)
		}
		if got, wantT := traceValues(res), traceValues(cold); got != wantT {
			t.Errorf("%s run produced a different progress trace", name)
		}
	}
	// Weight-agnostic member keys: a config differing only in seed (and
	// thus evolving differently) still reloads the same stored members.
	// Observable here as the store growing no new member blobs.
	before := storeEntryCount(t, st)
	cfg.Store = st
	cfg.Seed += 17
	if _, err := Generate(cfg); err != nil {
		t.Fatal(err)
	}
	if after := storeEntryCount(t, st); after != before {
		t.Errorf("nearby-config run wrote %d new member blobs, want full reuse", after-before)
	}
}

func storeEntryCount(t *testing.T, st *store.Store) int {
	t.Helper()
	n, err := st.Len()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// The incremental score must be bit-identical to a from-scratch
// recomputation at any point of a randomized mutate/commit/rollback
// sequence, for every objective and constraint combination — this is
// what lets the annealer trust delta queries outright.
func TestIncrementalScoreMatchesRecompute(t *testing.T) {
	n4x5 := layout.Grid4x5.N()
	shuffle := make([][]float64, n4x5)
	for i := range shuffle {
		shuffle[i] = make([]float64, n4x5)
		shuffle[i][(2*i+3)%n4x5] = 1.5
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"latop", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp, Radix: 4}},
		{"scop", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: SCOp, Radix: 4}},
		{"diameter", Config{Grid: layout.NewGrid(3, 4), Class: layout.Large, Objective: LatOp, Radix: 3, MaxDiameter: 5}},
		{"mincut", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp, Radix: 4, MinCutBW: 0.06}},
		{"weighted", Config{Grid: layout.Grid4x5, Class: layout.Large, Objective: Weighted, Radix: 4, Weights: shuffle}},
		{"symmetric", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp, Radix: 4, Symmetric: true}},
		{"multiword", Config{Grid: layout.NewGrid(9, 9), Class: layout.Medium, Objective: LatOp, Radix: 4}},
		// Energy term: integer milli-unit link costs keep the maintained
		// sum exact, so bit-identity must hold here too.
		{"energy", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp, Radix: 4, EnergyWeight: 2.5}},
		{"energy-scop", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: SCOp, Radix: 4, EnergyWeight: 1.25}},
		// Fragility term: integer slack over degrees and pooled cut
		// crossings; must stay bit-identical like every other component.
		{"robust", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp, Radix: 4, RobustWeight: 3}},
		{"robust-energy", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp, Radix: 4, RobustWeight: 2, EnergyWeight: 1.5}},
		{"robust-scop", Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: SCOp, Radix: 4, RobustWeight: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := (&tc.cfg).withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			a := newAnnealer(cfg)
			rng := newFastRand(7)
			state := stateFromTopology(seedTopology(cfg))
			a.fillRandom(state, rng)
			ctx := a.newSearchCtx(state)
			steps := 400
			if cfg.Grid.N() > 64 {
				steps = 120
			}
			for i := 0; i < steps; i++ {
				mv, ok := ctx.propose(rng)
				if !ok {
					continue
				}
				if mv.kind == moveAdd {
					ctx.doAdd(mv.af, mv.at)
				} else {
					ctx.begin()
					if mv.kind == moveSwap {
						ctx.doAdd(mv.af, mv.at)
					}
					ctx.doRemove(mv.rf, mv.rt)
					if rng.Float64() < 0.5 {
						ctx.commit()
					} else {
						ctx.rollback()
					}
				}
				if i%20 != 0 {
					continue
				}
				got := ctx.score()
				want := a.eval.fullScore(ctx.ev.Graph())
				if got != want {
					t.Fatalf("step %d: incremental score %v != recomputed %v", i, got, want)
				}
				if err := ctx.ev.CheckConsistency(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		})
	}
}

// Regression for the complement-dedup bug: addCut used to compare a
// candidate against ^mask over all 64 bits instead of the complement
// within the n-node universe, so complementary cuts were never
// deduplicated.
func TestAddCutComplementDedup(t *testing.T) {
	cfg, err := (&Config{Grid: layout.Grid4x5, Class: layout.Medium}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e := newEvaluator(cfg)
	n0 := len(e.cutPool)
	if n0 == 0 {
		t.Fatal("geometric cut pool is empty")
	}
	m := e.cutPool[0]
	if e.addCut(m) {
		t.Error("identical cut must not grow the pool")
	}
	comp := m.ComplementWithin(bitgraph.FullSet(cfg.Grid.N()))
	if e.addCut(comp) {
		t.Error("complement-within-n cut describes the same partition and must be deduplicated")
	}
	if len(e.cutPool) != n0 {
		t.Fatalf("pool grew from %d to %d", n0, len(e.cutPool))
	}
	fresh := bitgraph.SetOf(cfg.Grid.N(), 0, 7, 13)
	if !e.addCut(fresh) {
		t.Error("genuinely new cut must grow the pool")
	}
}

// A 100-router grid must synthesize end to end through Generate: the
// multi-word bitset path has no 64-router cap.
func TestGenerate100RoutersEndToEnd(t *testing.T) {
	cfg := Config{Grid: layout.Grid10x10, Class: layout.Medium, Objective: LatOp,
		Radix: 4, Seed: 2, Iterations: 2500, Restarts: 1}
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp := res.Topology
	if tp.N() != 100 {
		t.Fatalf("expected 100 routers, got %d", tp.N())
	}
	if !tp.IsConnected() {
		t.Fatal("100-router topology disconnected")
	}
	if !tp.RespectsRadix(4) || !tp.RespectsLinkLengths() {
		t.Fatal("100-router topology violates constraints")
	}
	// Even a quick run must beat the 10x10 mesh (avg 6.67).
	if avg := tp.AverageHops(); avg >= 6.0 {
		t.Errorf("100-router avg hops %.3f not better than mesh-like 6.0", avg)
	}
	if res.Bound <= 0 || res.Gap < 0 || res.Gap > 1 {
		t.Errorf("bound/gap not sane: bound=%v gap=%v", res.Bound, res.Gap)
	}
}
