package synth

import "netsmith/internal/bitgraph"

// Single-link-failure analysis for fragility-priced synthesis. A link
// x->y is critical iff y is unreachable from x once the link is removed
// (any other use of the link reroutes through the surviving x~>y path,
// so non-critical links never change reachability). For a critical
// link, the set U of vertices x still reaches in the damaged graph
// contains x but not y, and x->y is the ONLY U->V link of the intact
// graph — any other crossing link would extend x's reach. U therefore
// certifies a 1-crossing cut: exactly the witness the fragility term's
// pool needs to price the exposure.

// criticalCuts probes every link of s and returns the certifying cuts
// of the critical ones plus their count. s is not mutated (the probe
// works on a clone, keeping the incumbent's link order — and with it
// the deterministic downstream topology emission — intact). Cuts may
// repeat as partitions; the caller's pool dedup handles that.
func criticalCuts(s *bitgraph.Graph) (cuts []bitgraph.Set, critical int) {
	g := s.Clone()
	n := g.N()
	dist := make([]int16, n)
	links := append([]bitgraph.Link(nil), g.Links()...)
	for _, l := range links {
		g.Remove(l.A, l.B)
		g.BFSRow(l.A, dist)
		if dist[l.B] < 0 {
			critical++
			u := bitgraph.NewSet(n)
			for v := 0; v < n; v++ {
				if dist[v] >= 0 {
					u.Add(v)
				}
			}
			cuts = append(cuts, u)
		}
		g.Add(l.A, l.B)
	}
	return cuts, critical
}
