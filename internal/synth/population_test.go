package synth

import (
	"fmt"
	"math"
	"testing"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
)

// popTestAnnealer builds a ready annealer for operator-level tests.
func popTestAnnealer(t testing.TB, raw Config) *annealer {
	t.Helper()
	cfg, err := (&raw).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return newAnnealer(cfg)
}

// checkChildInvariants asserts the crossover/repair output contract:
// every link comes from the candidate set, port budgets hold, symmetry
// (when configured) holds, and the child is strongly connected.
func checkChildInvariants(t testing.TB, a *annealer, g *bitgraph.Graph) {
	t.Helper()
	for _, l := range g.Links() {
		if !a.validLink(l.A, l.B) {
			t.Fatalf("child uses link %d->%d outside the candidate set", l.A, l.B)
		}
		if a.cfg.Symmetric && !g.Has(l.B, l.A) {
			t.Fatalf("symmetric child misses reverse of %d->%d", l.A, l.B)
		}
	}
	for v := 0; v < g.N(); v++ {
		if g.OutDeg[v] > a.cfg.Radix || g.InDeg[v] > a.cfg.Radix {
			t.Fatalf("node %d degree (%d out / %d in) exceeds radix %d",
				v, g.OutDeg[v], g.InDeg[v], a.cfg.Radix)
		}
	}
	if _, unreachable, _ := g.HopStats(); unreachable > 0 {
		t.Fatalf("child not strongly connected: %d unreachable pairs", unreachable)
	}
}

// Crossover is a constrained operator, not a best-effort one: every
// child it reports ok must already satisfy the full constraint set.
func TestCrossoverChildrenFeasible(t *testing.T) {
	for _, symmetric := range []bool{false, true} {
		t.Run(fmt.Sprintf("symmetric=%v", symmetric), func(t *testing.T) {
			a := popTestAnnealer(t, Config{
				Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
				Radix: 4, Symmetric: symmetric, Seed: 3, Iterations: 800, Restarts: 1,
			})
			pa := a.annealRestart(0, 800).snap.CanonicalClone()
			pb := a.annealRestart(1, 800).snap.CanonicalClone()
			ok := 0
			for seed := int64(0); seed < 24; seed++ {
				child, fine := a.crossover(pa, pb, newFastRand(seed))
				if !fine {
					continue
				}
				ok++
				checkChildInvariants(t, a, child)
			}
			if ok == 0 {
				t.Fatal("no crossover succeeded; property test is vacuous")
			}
		})
	}
}

// evalFingerprint renders every externally observable distance of an
// Eval; two Evals with equal fingerprints answer all queries alike.
func evalFingerprint(ev *bitgraph.Eval) string {
	n := ev.Graph().N()
	out := fmt.Sprintf("total=%d unreachable=%d;", ev.Total(), ev.Unreachable())
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			out += fmt.Sprintf("%d,", ev.Dist(s, d))
		}
	}
	return out
}

// Journaled repair must be free when it fails: every probe that does
// not reduce the unreachable count is rolled back, and afterwards —
// whether repair succeeded or gave up — the evaluator is bit-identical
// to a fresh recompute over its final graph.
func TestRepairRollbackLeavesEvalExact(t *testing.T) {
	a := popTestAnnealer(t, Config{
		Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		Radix: 4, Seed: 1, Iterations: 100, Restarts: 1,
	})

	// A sparse fragment: the first few candidate links only, far from
	// connected, so repair both commits and rolls back many probes.
	frag := bitgraph.New(a.cfg.Grid.N())
	for _, l := range a.valid[:6] {
		if feasibleAdd(frag, &a.cfg, l.From, l.To) {
			frag.Add(l.From, l.To)
		}
	}
	ev := bitgraph.NewEval(frag, nil)
	if !a.repairConnectivity(ev, newFastRand(11)) {
		t.Fatal("repair failed on a repairable fragment")
	}
	if err := ev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	fresh := bitgraph.NewEval(ev.Graph().Clone(), nil)
	if got, want := evalFingerprint(ev), evalFingerprint(fresh); got != want {
		t.Fatal("repaired Eval differs from a fresh recompute of the same graph")
	}

	// An unrepairable child: radix 1, nodes 0 and 1 saturated into a
	// private 2-cycle. No feasible add can ever reconnect them, so
	// repair must sweep, roll back its failed probes and report false
	// — leaving the Eval exactly as a fresh recompute.
	b := popTestAnnealer(t, Config{
		Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		Radix: 1, Seed: 1, Iterations: 100, Restarts: 1,
	})
	if !b.validLink(0, 1) || !b.validLink(1, 0) {
		t.Skip("grid class lacks the 0<->1 candidate pair")
	}
	dead := bitgraph.New(b.cfg.Grid.N())
	dead.Add(0, 1)
	dead.Add(1, 0)
	ev = bitgraph.NewEval(dead, nil)
	if b.repairConnectivity(ev, newFastRand(5)) {
		t.Fatal("repair claimed success on a saturated, disconnected child")
	}
	if err := ev.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	fresh = bitgraph.NewEval(ev.Graph().Clone(), nil)
	if got, want := evalFingerprint(ev), evalFingerprint(fresh); got != want {
		t.Fatal("failed repair left the Eval different from a fresh recompute")
	}
}

// popMerge semantics: ascending score, ties keep the earlier (parent)
// entry, duplicate link sets collapse, pool is capped at size.
func TestPopMergeElitistDedup(t *testing.T) {
	g := func(links ...[2]int) *bitgraph.Graph {
		gr := bitgraph.New(4)
		for _, l := range links {
			gr.Add(l[0], l[1])
		}
		return gr
	}
	ring := g([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0})
	chord := g([2]int{0, 1}, [2]int{1, 3}, [2]int{3, 0})
	star := g([2]int{0, 1}, [2]int{0, 2}, [2]int{0, 3})
	parents := []individual{{ring, 1.0}, {chord, 3.0}}
	children := []individual{
		{star, 1.0},                  // ties parent ring: parent must stay first
		{ring.CanonicalClone(), 0.5}, // better score but duplicate link set of ring
		{},                           // discarded child (nil graph)
	}
	out := popMerge(parents, children, 2)
	if len(out) != 2 {
		t.Fatalf("merge kept %d individuals, want 2", len(out))
	}
	// The duplicate ring at 0.5 wins slot 0 (deduped against the 1.0
	// parent copy which sorts later), then the 1.0 tie resolves
	// parent-first — but ring IS the parent's link set, so slot 1 is
	// the tied child star.
	if linkKey(out[0].g) != linkKey(ring) || out[0].score != 0.5 {
		t.Fatalf("slot 0 = %v, want ring at 0.5", out[0].score)
	}
	if linkKey(out[1].g) != linkKey(star) || out[1].score != 1.0 {
		t.Fatalf("slot 1 = %v, want star at 1.0", out[1].score)
	}
}

func TestHopelessPruning(t *testing.T) {
	a := popTestAnnealer(t, Config{
		Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		Radix: 4, Seed: 1, Iterations: 100, Restarts: 1,
	})
	bound, worst := 100.0, 110.0
	if a.hopeless(105, bound, worst) {
		t.Error("child inside the elite band pruned")
	}
	if !a.hopeless(140, bound, worst) {
		t.Error("child beyond popHopeless*(worst-bound) kept")
	}
	if a.hopeless(1e9, math.Inf(-1), worst) {
		t.Error("pruning fired without a finite bound")
	}
	if a.hopeless(1e9, bound, bound) {
		t.Error("pruning fired with a degenerate (worst <= bound) band")
	}
}

// The LP-tightened bound must stay a bound (below every achievable
// LatOp objective) while dominating the combinatorial one.
func TestMipLatOpBoundDominatesAndValid(t *testing.T) {
	for _, raw := range []Config{
		{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp, Radix: 4, Seed: 2, Iterations: 2500, Restarts: 2},
		{Grid: layout.NewGrid(3, 4), Class: layout.Large, Objective: LatOp, Radix: 3, Seed: 2, Iterations: 2500, Restarts: 2},
	} {
		cfg, err := (&raw).withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		comb := latOpLowerBound(cfg)
		mipB := mipLatOpBound(cfg)
		if mipB < comb {
			t.Errorf("%v: LP bound %v below combinatorial bound %v", cfg.Grid, mipB, comb)
		}
		res, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if mipB > res.Objective+1e-9 {
			t.Errorf("%v: LP bound %v exceeds achieved objective %v — not a lower bound",
				cfg.Grid, mipB, res.Objective)
		}
	}
}

// shuffleWeights is the classic shuffle permutation (rotate-left of the
// node index in log2(n) bits) as a traffic matrix.
func shuffleWeights(n int) [][]float64 {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	w := make([][]float64, n)
	for s := range w {
		w[s] = make([]float64, n)
		d := ((s << 1) | (s >> (bits - 1))) & (n - 1)
		if d != s {
			w[s][d] = 1
		}
	}
	return w
}

// The acceptance pin from the issue: on the 8x8 shuffle optimization,
// population mode at an equal evaluation budget must match or beat the
// parallel-restart annealer. Budgets: 6 restarts x 6000 iterations =
// 36000 steps vs population 4 x (1 init + 5 generations) x 1500 = 36000.
func TestPopulationBeatsRestartsEqualBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("equal-budget comparison is a long test")
	}
	w := shuffleWeights(64)
	base := Config{
		Grid: layout.NewGrid(8, 8), Class: layout.Medium, Objective: Weighted,
		Weights: w, Radix: 4, Seed: 9,
	}
	annealCfg := base
	annealCfg.Iterations, annealCfg.Restarts = 6000, 6
	popCfg := base
	popCfg.Iterations, popCfg.Restarts = 1500, 1
	popCfg.Population, popCfg.Generations = 4, 5

	annealRes, err := Generate(annealCfg)
	if err != nil {
		t.Fatal(err)
	}
	popRes, err := Generate(popCfg)
	if err != nil {
		t.Fatal(err)
	}
	if popRes.Objective > annealRes.Objective {
		t.Fatalf("population objective %v worse than restart annealer %v at equal budget",
			popRes.Objective, annealRes.Objective)
	}
}

// Config validation around the new knobs.
func TestPopulationConfigValidation(t *testing.T) {
	bad := Config{Grid: layout.Grid4x5, Class: layout.Medium, Population: 1}
	if _, err := (&bad).withDefaults(); err == nil {
		t.Error("population 1 accepted")
	}
	bad = Config{Grid: layout.Grid4x5, Class: layout.Medium, Generations: 2}
	if _, err := (&bad).withDefaults(); err == nil {
		t.Error("generations without population accepted")
	}
	good := Config{Grid: layout.Grid4x5, Class: layout.Medium, Population: 4}
	cfg, err := (&good).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Generations != 8 {
		t.Errorf("generations defaulted to %d, want 8", cfg.Generations)
	}
}

// FuzzCrossoverRepair drives crossover + journaled repair with random
// feasible parents (random fill, then random link drops, so parents are
// frequently disconnected) and a random operator stream: no panics, and
// every child reported ok satisfies the full constraint set.
func FuzzCrossoverRepair(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3))
	f.Add(int64(-7), int64(0), int64(42))
	f.Add(int64(1<<40), int64(-1), int64(5))
	a := popTestAnnealer(f, Config{
		Grid: layout.NewGrid(3, 4), Class: layout.Medium, Objective: LatOp,
		Radix: 3, Seed: 1, Iterations: 100, Restarts: 1,
	})
	parent := func(seed int64) *bitgraph.Graph {
		rng := newFastRand(seed)
		g := bitgraph.New(a.cfg.Grid.N())
		a.fillRandom(g, rng)
		for _, l := range g.Links() {
			if rng.Float64() < 0.35 {
				g.Remove(l.A, l.B)
			}
		}
		return g.CanonicalClone()
	}
	f.Fuzz(func(t *testing.T, sa, sb, sc int64) {
		pa, pb := parent(sa), parent(sb)
		child, ok := a.crossover(pa, pb, newFastRand(sc))
		if !ok {
			return
		}
		checkChildInvariants(t, a, child)
	})
}
