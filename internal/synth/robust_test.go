package synth

import (
	"testing"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
)

// TestCriticalCutsRing: in a directed ring every link is the only path
// between its endpoints, so every link is critical and each certifying
// cut is crossed exactly once in the U->V direction.
func TestCriticalCutsRing(t *testing.T) {
	n := 6
	g := bitgraph.New(n)
	for i := 0; i < n; i++ {
		g.Add(i, (i+1)%n)
	}
	cuts, critical := criticalCuts(g)
	if critical != n || len(cuts) != n {
		t.Fatalf("ring: %d critical links, %d cuts; want %d each", critical, len(cuts), n)
	}
	for i, u := range cuts {
		uv, _ := g.Cross(u)
		if uv != 1 {
			t.Errorf("cut %d: crossUV = %d, want 1 (a certifying cut is crossed once)", i, uv)
		}
	}
	// The probe must not have disturbed the graph.
	if g.NumLinks() != n {
		t.Fatalf("probe changed the graph: %d links", g.NumLinks())
	}
}

// TestCriticalCutsBidirRing: paired reverse links mean any single loss
// reroutes the long way round — no critical links.
func TestCriticalCutsBidirRing(t *testing.T) {
	n := 6
	g := bitgraph.New(n)
	for i := 0; i < n; i++ {
		g.Add(i, (i+1)%n)
		g.Add((i+1)%n, i)
	}
	if cuts, critical := criticalCuts(g); critical != 0 || len(cuts) != 0 {
		t.Fatalf("bidirectional ring: %d critical links, %d cuts; want none", critical, len(cuts))
	}
}

// TestRobustWeightEliminatesCriticalLinks: energy-priced synthesis
// prunes toward sparse, fragile link sets; adding the fragility term
// must yield a topology that survives any single link failure, while
// still meeting the hard constraints.
func TestRobustWeightEliminatesCriticalLinks(t *testing.T) {
	base := Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		EnergyWeight: 30, Seed: 4, Iterations: 8000, Restarts: 2}
	fragile, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	if fragile.CriticalLinks != 0 || fragile.Fragility != 0 {
		t.Errorf("robustness fields filled without RobustWeight: %+v", fragile)
	}
	_, fragileCritical := criticalCuts(stateFromTopology(fragile.Topology))

	robust := base
	robust.RobustWeight = 50
	hard, err := Generate(robust)
	if err != nil {
		t.Fatal(err)
	}
	if !hard.Topology.IsConnected() {
		t.Fatal("robust topology disconnected")
	}
	if !hard.Topology.RespectsRadix(4) || !hard.Topology.RespectsLinkLengths() {
		t.Fatal("robust topology violates constraints")
	}
	if hard.CriticalLinks != 0 {
		t.Errorf("RobustWeight left %d critical links (fragility %d); energy-only baseline has %d",
			hard.CriticalLinks, hard.Fragility, fragileCritical)
	}
	if fragileCritical <= hard.CriticalLinks {
		t.Errorf("fragility pricing bought nothing: baseline %d critical links, robust %d",
			fragileCritical, hard.CriticalLinks)
	}
	// Cross-check the reported count against a from-scratch probe of the
	// returned topology.
	if _, want := criticalCuts(stateFromTopology(hard.Topology)); want != hard.CriticalLinks {
		t.Errorf("CriticalLinks %d != recomputed %d", hard.CriticalLinks, want)
	}
}

// TestRobustWeightDeterministic extends the determinism contract to
// fragility-priced runs, including the post-anneal critical-link oracle
// rounds.
func TestRobustWeightDeterministic(t *testing.T) {
	cfg := Config{Grid: layout.Grid4x5, Class: layout.Medium, Objective: LatOp,
		RobustWeight: 25, EnergyWeight: 10, Seed: 9, Iterations: 4000, Restarts: 2}
	first, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Topology.CanonicalLinkList() != again.Topology.CanonicalLinkList() {
		t.Fatal("fragility-priced Generate not deterministic")
	}
	if first.CriticalLinks != again.CriticalLinks || first.Fragility != again.Fragility {
		t.Fatalf("robustness fields differ across runs: %d/%d vs %d/%d",
			first.CriticalLinks, first.Fragility, again.CriticalLinks, again.Fragility)
	}
}
