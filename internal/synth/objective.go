package synth

import (
	"math"

	"netsmith/internal/bitgraph"
)

// Penalty weights for constraint violations in the scalarized score.
// Violations dominate any legitimate objective difference so the search
// always returns to the feasible region.
const (
	penaltyDisconnected = 1e7 // per unreachable ordered pair
	penaltyDiameter     = 1e6 // per hop of diameter excess
	penaltyMinCut       = 1e9 // per unit of C7 shortfall
	scopeCutScale       = 1e6 // SCOp: bandwidth dominates hop tiebreak
)

// evaluator bundles the config with the lazy cut pool. It is shared
// read-only by concurrent restarts; the pool only grows between
// annealing phases (SCOp row generation).
type evaluator struct {
	cfg     Config
	full    bitgraph.Set
	cutPool []bitgraph.Set
	// linkCostMilli prices a directed link in integer milli-units of the
	// energy proxy (non-nil iff EnergyWeight > 0). Integer costs keep the
	// incrementally maintained sum exact and order-independent, so the
	// incremental score stays bit-identical to fullScore.
	linkCostMilli func(a, b int) int64
}

// Energy-proxy constants. These mirror power.Default22nm()'s
// WireDynPJPerFlitMM and RouterLeakMWPerPort; synth cannot import power
// (power's analytic model imports route, and expert's calibration
// imports synth, which would close an import cycle through the route
// and power test binaries), so the two constants are duplicated here
// and pinned equal by TestEnergyProxyConstantsMatchPowerModel.
const (
	energyWirePJPerFlitMM = 0.18
	energyPortLeakMW      = 0.25
)

// energyCostMilli builds the per-link energy-proxy pricer: wire dynamic
// energy per flit-crossing (22nm wire constant times the link's physical
// length) plus a per-port leakage proxy (each directed link occupies one
// output and one input port), scaled by 1000 and rounded to an integer.
func energyCostMilli(cfg *Config) func(a, b int) int64 {
	g := cfg.Grid
	return func(a, b int) int64 {
		wire := energyWirePJPerFlitMM * g.LengthMM(a, b)
		return int64(math.Round(1000 * (wire + energyPortLeakMW)))
	}
}

// energyProxyOf converts the maintained milli-unit sum back to proxy
// units for scoring and reporting.
func energyProxyOf(sumMilli int64) float64 { return float64(sumMilli) / 1000 }

// energyProxySum prices a whole link set (the from-scratch counterpart
// of Eval.LinkCost; integer additions commute, so any iteration order
// yields the same sum).
func (e *evaluator) energyProxySum(s *bitgraph.Graph) int64 {
	var sum int64
	for _, l := range s.Links() {
		sum += e.linkCostMilli(l.A, l.B)
	}
	return sum
}

// newEvaluator seeds the cut pool with geometric cuts (row and column
// prefixes): these are the bottleneck candidates on grid layouts, and the
// pool grows lazily as the exact separation oracle finds sparser cuts.
func newEvaluator(cfg Config) *evaluator {
	e := &evaluator{
		cfg:     cfg,
		full:    bitgraph.FullSet(cfg.Grid.N()),
		cutPool: GeometricCuts(cfg.Grid),
	}
	if cfg.EnergyWeight > 0 {
		e.linkCostMilli = energyCostMilli(&e.cfg)
	}
	return e
}

// addCut registers a new separating cut if not already present. A cut
// equals an existing pool entry when the partition sets match or when
// one is the other's complement within the n-node universe (both
// describe the same two-way partition; bitgraph.SamePartition is the
// shared definition). Returns true if the pool grew.
func (e *evaluator) addCut(mask bitgraph.Set) bool {
	for _, m := range e.cutPool {
		if bitgraph.SamePartition(m, mask, e.full) {
			return false
		}
	}
	e.cutPool = append(e.cutPool, mask.Clone())
	return true
}

// fullScore scalarizes the objective plus constraint penalties with a
// from-scratch recompute; lower is better for every objective. The
// annealing hot path uses searchCtx.score (the incremental equivalent);
// fullScore re-scores incumbents after pool growth and anchors the
// incremental/recompute cross-check tests.
func (e *evaluator) fullScore(s *bitgraph.Graph) float64 {
	total, unreachable, diam := s.HopStats()
	v := float64(unreachable) * penaltyDisconnected
	if e.cfg.MaxDiameter > 0 && diam > e.cfg.MaxDiameter && unreachable == 0 {
		v += float64(diam-e.cfg.MaxDiameter) * penaltyDiameter
	}
	poolBW := math.Inf(1)
	if e.cfg.Objective == SCOp || e.cfg.MinCutBW > 0 {
		poolBW = s.PoolMin(e.cutPool)
	}
	if e.cfg.MinCutBW > 0 && poolBW < e.cfg.MinCutBW {
		v += (e.cfg.MinCutBW - poolBW) * penaltyMinCut
	}
	switch e.cfg.Objective {
	case LatOp:
		v += float64(total)
	case SCOp:
		v += -poolBW*scopeCutScale + float64(total)
	case Weighted:
		wt, wUnreach := s.WeightedHops(e.cfg.Weights)
		v += wt + float64(wUnreach)*penaltyDisconnected
	}
	if e.linkCostMilli != nil {
		v += e.cfg.EnergyWeight * energyProxyOf(e.energyProxySum(s))
	}
	if e.cfg.RobustWeight > 0 {
		v += e.cfg.RobustWeight * float64(robustFragility(s.OutDeg, s.InDeg, s.PoolMinCross(e.cutPool)))
	}
	return v
}

// Fragility thresholds: a robust topology gives every router at least
// two exits and two entries, and crosses every pooled cut with at least
// two links per direction — any single link failure then leaves both
// the router and the cut connected.
const (
	robustMinDeg   = 2
	robustMinCross = 2
)

// robustFragility is the integer fragility of a link set: per-router
// degree shortfall below robustMinDeg plus the pool's min-crossing
// shortfall below robustMinCross. Each unit is one structural
// single-point-of-failure exposure. Additions can only shrink it and
// removals only grow it (degrees and crossings are monotone in the link
// set), which keeps the annealer's monotonicity fast paths valid with
// RobustWeight enabled.
func robustFragility(outDeg, inDeg []int, poolMinCross int) int {
	f := 0
	for _, d := range outDeg {
		if d < robustMinDeg {
			f += robustMinDeg - d
		}
	}
	for _, d := range inDeg {
		if d < robustMinDeg {
			f += robustMinDeg - d
		}
	}
	if poolMinCross < robustMinCross {
		f += robustMinCross - poolMinCross
	}
	return f
}

// score is the incremental counterpart of evaluator.fullScore, reading
// the aggregates maintained by the search context's bitgraph.Eval. It
// must stay bit-identical to fullScore on the same state (pinned by
// TestIncrementalScoreMatchesRecompute).
func (c *searchCtx) score() float64 {
	cfg := &c.a.cfg
	ev := c.ev
	unreachable := ev.Unreachable()
	v := float64(unreachable) * penaltyDisconnected
	if cfg.MaxDiameter > 0 && unreachable == 0 {
		if diam := ev.Diameter(); diam > cfg.MaxDiameter {
			v += float64(diam-cfg.MaxDiameter) * penaltyDiameter
		}
	}
	poolBW := math.Inf(1)
	if cfg.Objective == SCOp || cfg.MinCutBW > 0 {
		poolBW = ev.PoolMin()
	}
	if cfg.MinCutBW > 0 && poolBW < cfg.MinCutBW {
		v += (cfg.MinCutBW - poolBW) * penaltyMinCut
	}
	switch cfg.Objective {
	case LatOp:
		v += float64(ev.Total())
	case SCOp:
		v += -poolBW*scopeCutScale + float64(ev.Total())
	case Weighted:
		wt, wUnreach := ev.WeightedTotal()
		v += wt + float64(wUnreach)*penaltyDisconnected
	}
	if c.a.eval.linkCostMilli != nil {
		v += cfg.EnergyWeight * energyProxyOf(ev.LinkCost())
	}
	if cfg.RobustWeight > 0 {
		g := ev.Graph()
		v += cfg.RobustWeight * float64(robustFragility(g.OutDeg, g.InDeg, ev.PoolMinCross()))
	}
	return v
}
