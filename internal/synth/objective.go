package synth

import (
	"math"

	"netsmith/internal/bitgraph"
)

// Penalty weights for constraint violations in the scalarized score.
// Violations dominate any legitimate objective difference so the search
// always returns to the feasible region.
const (
	penaltyDisconnected = 1e7 // per unreachable ordered pair
	penaltyDiameter     = 1e6 // per hop of diameter excess
	penaltyMinCut       = 1e9 // per unit of C7 shortfall
	scopeCutScale       = 1e6 // SCOp: bandwidth dominates hop tiebreak
)

// score scalarizes the objective plus constraint penalties; lower is
// better for every objective.
func (e *evaluator) score(s *bitgraph.Graph) float64 {
	total, unreachable, diam := s.HopStats()
	v := float64(unreachable) * penaltyDisconnected
	if e.cfg.MaxDiameter > 0 && diam > e.cfg.MaxDiameter && unreachable == 0 {
		v += float64(diam-e.cfg.MaxDiameter) * penaltyDiameter
	}
	poolBW := math.Inf(1)
	if e.cfg.Objective == SCOp || e.cfg.MinCutBW > 0 {
		poolBW = s.PoolMin(e.cutPool)
	}
	if e.cfg.MinCutBW > 0 && poolBW < e.cfg.MinCutBW {
		v += (e.cfg.MinCutBW - poolBW) * penaltyMinCut
	}
	switch e.cfg.Objective {
	case LatOp:
		v += float64(total)
	case SCOp:
		v += -poolBW*scopeCutScale + float64(total)
	case Weighted:
		wt, wUnreach := s.WeightedHops(e.cfg.Weights)
		v += wt + float64(wUnreach)*penaltyDisconnected
	}
	return v
}

// evaluator bundles the config with the lazy cut pool.
type evaluator struct {
	cfg     Config
	cutPool []uint64
}

// newEvaluator seeds the cut pool with geometric cuts (row and column
// prefixes): these are the bottleneck candidates on grid layouts, and the
// pool grows lazily as the exact separation oracle finds sparser cuts.
func newEvaluator(cfg Config) *evaluator {
	e := &evaluator{cfg: cfg}
	e.cutPool = GeometricCuts(cfg.Grid)
	return e
}

// addCut registers a new separating cut if not already present. Returns
// true if the pool grew.
func (e *evaluator) addCut(mask uint64) bool {
	for _, m := range e.cutPool {
		if m == mask || m == (^mask) {
			return false
		}
	}
	e.cutPool = append(e.cutPool, mask)
	return true
}
