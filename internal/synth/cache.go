package synth

import (
	"encoding/json"

	"netsmith/internal/layout"
	"netsmith/internal/store"
	"netsmith/internal/topo"
)

// Synthesis caching. Fixed-budget Generate is deterministic — same
// Config, same topology, bit for bit, at any GOMAXPROCS (pinned by the
// determinism tests) — so a (config, seed) pair content-addresses its
// Result. Time-budgeted runs are NOT deterministic (the wall clock
// decides how far the search gets) and are never cached.

// synthPayload is the canonical request description hashed into a
// synthesis cache key: every Config field that influences the chosen
// topology. Weights are included verbatim (row-major JSON); Progress
// and TimeBudget are excluded — the former cannot affect the result,
// the latter makes a run uncacheable.
type synthPayload struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// PitchMM scales every wire length, and with it the energy-proxy
	// objective — two grids differing only in pitch synthesize
	// different topologies under EnergyWeight.
	PitchMM      float64     `json:"pitch_mm"`
	Class        string      `json:"class"`
	Objective    string      `json:"objective"`
	Radix        int         `json:"radix"`
	Symmetric    bool        `json:"symmetric"`
	MaxDiameter  int         `json:"max_diameter"`
	MinCutBW     float64     `json:"min_cut_bw"`
	Weights      [][]float64 `json:"weights,omitempty"`
	EnergyWeight float64     `json:"energy_weight"`
	RobustWeight float64     `json:"robust_weight"`
	Seed         int64       `json:"seed"`
	Iterations   int         `json:"iterations"`
	Restarts     int         `json:"restarts"`
	// Population/Generations select population mode; omitempty keeps
	// every pre-population cache key byte-identical. Config.Store is
	// deliberately absent: it is a mechanism, not an input — results
	// are bit-identical with or without it.
	Population  int `json:"population,omitempty"`
	Generations int `json:"generations,omitempty"`
}

// payload canonicalizes the config into its cache-key description. ok
// is false when the run is not cacheable (time-budgeted searches stop
// on the wall clock, so their outcome is not a function of the config).
// The pareto sweep (exp.ParetoSweep) embeds the same payload — with the
// swept weights zeroed — inside its own frontier key via CachePayload,
// so the two key families cannot drift on what "the same base config"
// means.
func (c Config) payload() (synthPayload, bool) {
	cfg, err := c.withDefaults()
	if err != nil || cfg.TimeBudget > 0 {
		return synthPayload{}, false
	}
	return synthPayload{
		Rows: cfg.Grid.Rows, Cols: cfg.Grid.Cols, PitchMM: cfg.Grid.PitchMM,
		Class:     cfg.Class.String(),
		Objective: cfg.Objective.String(),
		Radix:     cfg.Radix, Symmetric: cfg.Symmetric,
		MaxDiameter: cfg.MaxDiameter, MinCutBW: cfg.MinCutBW,
		Weights: cfg.Weights, EnergyWeight: cfg.EnergyWeight,
		RobustWeight: cfg.RobustWeight,
		Seed:         cfg.Seed, Iterations: cfg.Iterations, Restarts: cfg.Restarts,
		Population: cfg.Population, Generations: cfg.Generations,
	}, true
}

// cacheKey canonicalizes the config into its store key; ok is false
// for uncacheable (time-budgeted) runs.
func (c Config) cacheKey() (store.Key, bool) {
	p, ok := c.payload()
	if !ok {
		return store.Key{}, false
	}
	return store.NewKey("synth", p), true
}

// cachedResult is the stored form of a Result. Trace is deliberately
// dropped: its Elapsed stamps are wall-clock measurements, the one
// non-deterministic part of a fixed-budget run.
type cachedResult struct {
	Topology      *topo.Topology `json:"topology"`
	Objective     float64        `json:"objective"`
	Bound         float64        `json:"bound"`
	Gap           float64        `json:"gap"`
	Optimal       bool           `json:"optimal"`
	EnergyProxy   float64        `json:"energy_proxy"`
	CriticalLinks int            `json:"critical_links"`
	Fragility     int            `json:"fragility"`
}

// result rehydrates the stored form into a caller-facing Result (no
// Trace: cached runs searched nothing).
func (cr cachedResult) result() *Result {
	return &Result{
		Topology:  cr.Topology,
		Objective: cr.Objective,
		Bound:     cr.Bound,
		Gap:       cr.Gap,
		Optimal:   cr.Optimal, EnergyProxy: cr.EnergyProxy,
		CriticalLinks: cr.CriticalLinks, Fragility: cr.Fragility,
	}
}

// Normalized returns the config with package defaults applied — the
// exact form the cache key hashes and Generate executes. Orchestrators
// building derived artifacts (exp's pareto sweep) use it to read the
// defaulted grid/class/objective/seed without re-deriving defaults.
func (c Config) Normalized() (Config, error) {
	return c.withDefaults()
}

// CachePayload returns the canonical cache-key description of the
// config as marshaled JSON, for embedding in higher-level store keys
// (the pareto frontier key wraps it). ok is false for uncacheable
// (time-budgeted or invalid) configs.
func (c Config) CachePayload() (json.RawMessage, bool) {
	p, ok := c.payload()
	if !ok {
		return nil, false
	}
	b, err := json.Marshal(p)
	if err != nil {
		return nil, false
	}
	return b, true
}

// Probe checks the store for an already-synthesized result without
// ever searching. The pareto sweep uses it for sweep points owned by
// other shards: present means that shard (or a prior run) finished the
// point, absent means the frontier cannot be assembled yet.
func Probe(st *store.Store, c Config) (*Result, bool) {
	if st == nil {
		return nil, false
	}
	key, ok := c.cacheKey()
	if !ok {
		return nil, false
	}
	var cached cachedResult
	if hit, err := st.Get(key, &cached); err == nil && hit {
		return cached.result(), true
	}
	return nil, false
}

// MatrixNSConfig is the fixed-budget LatOp config the matrix front
// ends (netbench -matrix, netsmith serve) use for the synthesized
// "ns" topology. It is shared for the same reason as sim's fidelity
// presets: the config determines the topology, the topology fingerprint
// anchors every cell cache key, so front ends sharing a store must
// build the exact same config or cache-sharing silently breaks.
func MatrixNSConfig(g *layout.Grid, cl layout.Class, energyWeight, robustWeight float64, seed int64, iterations, population, generations int) Config {
	return Config{
		Grid: g, Class: cl, Objective: LatOp,
		EnergyWeight: energyWeight, RobustWeight: robustWeight,
		Seed: seed, Iterations: iterations, Restarts: 4,
		Population: population, Generations: generations,
	}
}

// CachedGenerate is Generate behind the content-addressed store: a hit
// returns the previously synthesized topology without searching, a
// miss runs Generate and persists the outcome. The returned bool
// reports whether the result came from the cache. Cached results carry
// no Trace and fire no Progress callbacks (nothing was searched); a
// nil store or an uncacheable config (TimeBudget > 0) falls through to
// a plain Generate.
func CachedGenerate(st *store.Store, c Config) (*Result, bool, error) {
	if st == nil {
		res, err := Generate(c)
		return res, false, err
	}
	// Population mode additionally caches its portfolio members through
	// Config.Store, even when the final result itself is uncacheable
	// (TimeBudget runs still reuse deterministic members).
	c.Store = st
	key, ok := c.cacheKey()
	if !ok {
		res, err := Generate(c)
		return res, false, err
	}
	var cached cachedResult
	if hit, err := st.Get(key, &cached); err == nil && hit {
		return cached.result(), true, nil
	}
	res, err := Generate(c)
	if err != nil {
		return nil, false, err
	}
	// Persistence is best-effort: a full or read-only store must not
	// discard a completed search (Get already treats unreadable blobs
	// as misses; write failures degrade the same way).
	_ = st.Put(key, cachedResult{
		Topology:  res.Topology,
		Objective: res.Objective,
		Bound:     res.Bound,
		Gap:       res.Gap,
		Optimal:   res.Optimal, EnergyProxy: res.EnergyProxy,
		CriticalLinks: res.CriticalLinks, Fragility: res.Fragility,
	})
	return res, false, nil
}
