package synth

import (
	"math"
	"sort"
	"sync"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
)

// boundKey identifies a bound computation; bounds are pure functions of
// the grid shape, link class and radix, and synthesis sweeps evaluate
// the same configuration many times, so results are memoized globally.
type boundKey struct {
	rows, cols int
	class      layout.Class
	radix      int
	scop       bool
}

var boundMemo sync.Map // boundKey -> float64

// latOpLowerBound computes a rigorous lower bound on the total hop count
// achievable under the config's constraints, combining two arguments:
//
//  1. Reachability bound: the distance between i and j in any feasible
//     topology is at least their distance in the "full" graph containing
//     every valid link (adding links never increases distances).
//  2. Moore bound: with out-radix r, at most r nodes can be at distance 1
//     from any source, r^2 more at distance 2, and so on; so the k-th
//     closest node is at distance >= mooreDist(k).
//
// Since both per-source distance sequences are sorted ascending, the k-th
// smallest true distance must dominate both, and the element-wise max is a
// valid per-source bound.
func latOpLowerBound(cfg Config) float64 {
	if cfg.Objective != Weighted {
		// The weighted variant depends on the demand matrix and is not
		// memoized.
		key := boundKey{cfg.Grid.Rows, cfg.Grid.Cols, cfg.Class, cfg.Radix, false}
		if v, ok := boundMemo.Load(key); ok {
			return v.(float64)
		}
		v := latOpLowerBoundCompute(cfg)
		boundMemo.Store(key, v)
		return v
	}
	return latOpLowerBoundCompute(cfg)
}

func latOpLowerBoundCompute(cfg Config) float64 {
	n := cfg.Grid.N()
	dFull := fullValidDistances(cfg)
	moore := mooreDistances(n, cfg.Radix)
	var total float64
	for i := 0; i < n; i++ {
		ds := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if i != j {
				ds = append(ds, dFull[i][j])
			}
		}
		sort.Ints(ds)
		for k, d := range ds {
			lb := d
			if moore[k] > lb {
				lb = moore[k]
			}
			total += float64(lb)
		}
	}
	if cfg.Objective == Weighted {
		// For weighted objectives use the reachability bound only, scaled
		// by weights (the Moore argument does not directly compose with
		// arbitrary weights; this remains a valid, if looser, bound).
		var wtotal float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && cfg.Weights[i][j] > 0 {
					wtotal += cfg.Weights[i][j] * float64(dFull[i][j])
				}
			}
		}
		return wtotal
	}
	return total
}

// mooreDistances[k] is the minimum possible distance of the (k+1)-th
// closest node from any source, given an out-radix r: cumulative capacity
// within distance d is r + r^2 + ... + r^d.
func mooreDistances(n, radix int) []int {
	out := make([]int, n-1)
	capacity := 0
	d := 0
	levelSize := 1
	for k := 0; k < n-1; k++ {
		for capacity <= k {
			d++
			levelSize *= radix
			if levelSize > n { // avoid overflow; capacity saturates
				levelSize = n
			}
			capacity += levelSize
		}
		out[k] = d
	}
	return out
}

// validGraph builds the graph containing every candidate link in the
// class's valid set L.
func validGraph(cfg Config) *bitgraph.Graph {
	g := bitgraph.New(cfg.Grid.N())
	for _, l := range cfg.Grid.ValidLinks(cfg.Class) {
		g.Add(l.From, l.To)
	}
	return g
}

// fullValidDistances runs APSP over the graph containing every candidate
// link in the class's valid set L. Unreachable pairs get MaxInt32.
func fullValidDistances(cfg Config) [][]int {
	n := cfg.Grid.N()
	g := validGraph(cfg)
	row16 := make([]int16, n)
	dist := make([][]int, n)
	for s := 0; s < n; s++ {
		g.BFSRow(s, row16)
		row := make([]int, n)
		for i, d := range row16 {
			if d < 0 {
				row[i] = math.MaxInt32
			} else {
				row[i] = int(d)
			}
		}
		dist[s] = row
	}
	return dist
}

// scOpUpperBound bounds the best achievable sparsest-cut bandwidth from
// above: for any partition, the U->V crossing count is at most
// sum_{a in U} min(radix, |validTargets(a) in V|) and symmetrically at
// most sum_{b in V} min(radix, |validSources(b) in U|); B(U,V) uses the
// minimum direction, and the sparsest cut is at most the bound of any
// single partition. Geometric cuts (row/column prefixes, quadrant) are
// evaluated — they are the structural bottlenecks of grid layouts.
func scOpUpperBound(cfg Config) float64 {
	key := boundKey{cfg.Grid.Rows, cfg.Grid.Cols, cfg.Class, cfg.Radix, true}
	if v, ok := boundMemo.Load(key); ok {
		return v.(float64)
	}
	v := scOpUpperBoundCompute(cfg)
	boundMemo.Store(key, v)
	return v
}

func scOpUpperBoundCompute(cfg Config) float64 {
	n := cfg.Grid.N()
	valid := validGraph(cfg)
	e := newEvaluator(cfg)
	best := math.Inf(1)
	for _, uMask := range e.cutPool {
		vMask := uMask.ComplementWithin(valid.Full())
		sizeU := uMask.Count()
		sizeV := n - sizeU
		if sizeU == 0 || sizeV == 0 {
			continue
		}
		maxUV := dirCapacity(uMask, vMask, valid, cfg.Radix)
		maxVU := dirCapacity(vMask, uMask, valid, cfg.Radix)
		m := maxUV
		if maxVU < m {
			m = maxVU
		}
		bw := float64(m) / float64(sizeU*sizeV)
		if bw < best {
			best = bw
		}
	}
	return best
}

// dirCapacity bounds the number of links that can cross from partition u
// to partition v given per-router radix and the valid link set.
func dirCapacity(u, v bitgraph.Set, valid *bitgraph.Graph, radix int) int {
	fromSide := 0
	u.ForEach(func(a int) {
		c := bitgraph.AndCount(valid.OutRow(a), v)
		if c > radix {
			c = radix
		}
		fromSide += c
	})
	toSide := 0
	v.ForEach(func(b int) {
		c := bitgraph.AndCount(valid.InRow(b), u)
		if c > radix {
			c = radix
		}
		toSide += c
	})
	if toSide < fromSide {
		return toSide
	}
	return fromSide
}
