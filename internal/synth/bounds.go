package synth

import (
	"math"
	"math/bits"
	"sort"
)

// latOpLowerBound computes a rigorous lower bound on the total hop count
// achievable under the config's constraints, combining two arguments:
//
//  1. Reachability bound: the distance between i and j in any feasible
//     topology is at least their distance in the "full" graph containing
//     every valid link (adding links never increases distances).
//  2. Moore bound: with out-radix r, at most r nodes can be at distance 1
//     from any source, r^2 more at distance 2, and so on; so the k-th
//     closest node is at distance >= mooreDist(k).
//
// Since both per-source distance sequences are sorted ascending, the k-th
// smallest true distance must dominate both, and the element-wise max is a
// valid per-source bound.
func latOpLowerBound(cfg Config) float64 {
	n := cfg.Grid.N()
	dFull := fullValidDistances(cfg)
	moore := mooreDistances(n, cfg.Radix)
	var total float64
	for i := 0; i < n; i++ {
		ds := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if i != j {
				ds = append(ds, dFull[i][j])
			}
		}
		sort.Ints(ds)
		for k, d := range ds {
			lb := d
			if moore[k] > lb {
				lb = moore[k]
			}
			total += float64(lb)
		}
	}
	if cfg.Objective == Weighted {
		// For weighted objectives use the reachability bound only, scaled
		// by weights (the Moore argument does not directly compose with
		// arbitrary weights; this remains a valid, if looser, bound).
		var wtotal float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && cfg.Weights[i][j] > 0 {
					wtotal += cfg.Weights[i][j] * float64(dFull[i][j])
				}
			}
		}
		return wtotal
	}
	return total
}

// mooreDistances[k] is the minimum possible distance of the (k+1)-th
// closest node from any source, given an out-radix r: cumulative capacity
// within distance d is r + r^2 + ... + r^d.
func mooreDistances(n, radix int) []int {
	out := make([]int, n-1)
	capacity := 0
	d := 0
	levelSize := 1
	for k := 0; k < n-1; k++ {
		for capacity <= k {
			d++
			levelSize *= radix
			if levelSize > n { // avoid overflow; capacity saturates
				levelSize = n
			}
			capacity += levelSize
		}
		out[k] = d
	}
	return out
}

// fullValidDistances runs APSP over the graph containing every candidate
// link in the class's valid set L.
func fullValidDistances(cfg Config) [][]int {
	n := cfg.Grid.N()
	out := make([]uint64, n)
	for _, l := range cfg.Grid.ValidLinks(cfg.Class) {
		out[l.From] |= 1 << uint(l.To)
	}
	dist := make([][]int, n)
	for s := 0; s < n; s++ {
		row := make([]int, n)
		for i := range row {
			row[i] = math.MaxInt32
		}
		row[s] = 0
		visited := uint64(1) << uint(s)
		frontier := visited
		d := 0
		for frontier != 0 {
			var next uint64
			f := frontier
			for f != 0 {
				u := bits.TrailingZeros64(f)
				f &= f - 1
				next |= out[u]
			}
			next &^= visited
			if next == 0 {
				break
			}
			d++
			nf := next
			for nf != 0 {
				v := bits.TrailingZeros64(nf)
				nf &= nf - 1
				row[v] = d
			}
			visited |= next
			frontier = next
		}
		dist[s] = row
	}
	return dist
}

// scOpUpperBound bounds the best achievable sparsest-cut bandwidth from
// above: for any partition, the U->V crossing count is at most
// sum_{a in U} min(radix, |validTargets(a) in V|) and symmetrically at
// most sum_{b in V} min(radix, |validSources(b) in U|); B(U,V) uses the
// minimum direction, and the sparsest cut is at most the bound of any
// single partition. Geometric cuts (row/column prefixes, quadrant) are
// evaluated — they are the structural bottlenecks of grid layouts.
func scOpUpperBound(cfg Config) float64 {
	n := cfg.Grid.N()
	validOut := make([]uint64, n)
	validIn := make([]uint64, n)
	for _, l := range cfg.Grid.ValidLinks(cfg.Class) {
		validOut[l.From] |= 1 << uint(l.To)
		validIn[l.To] |= 1 << uint(l.From)
	}
	full := uint64(1)<<uint(n) - 1
	e := newEvaluator(cfg)
	best := math.Inf(1)
	for _, uMask := range e.cutPool {
		uMask &= full
		vMask := full &^ uMask
		sizeU := bits.OnesCount64(uMask)
		sizeV := n - sizeU
		if sizeU == 0 || sizeV == 0 {
			continue
		}
		maxUV := dirCapacity(uMask, vMask, validOut, validIn, cfg.Radix)
		maxVU := dirCapacity(vMask, uMask, validOut, validIn, cfg.Radix)
		m := maxUV
		if maxVU < m {
			m = maxVU
		}
		bw := float64(m) / float64(sizeU*sizeV)
		if bw < best {
			best = bw
		}
	}
	return best
}

// dirCapacity bounds the number of links that can cross from partition u
// to partition v given per-router radix and the valid link set.
func dirCapacity(uMask, vMask uint64, validOut, validIn []uint64, radix int) int {
	fromSide := 0
	rem := uMask
	for rem != 0 {
		a := bits.TrailingZeros64(rem)
		rem &= rem - 1
		c := bits.OnesCount64(validOut[a] & vMask)
		if c > radix {
			c = radix
		}
		fromSide += c
	}
	toSide := 0
	rem = vMask
	for rem != 0 {
		b := bits.TrailingZeros64(rem)
		rem &= rem - 1
		c := bits.OnesCount64(validIn[b] & uMask)
		if c > radix {
			c = radix
		}
		toSide += c
	}
	if toSide < fromSide {
		return toSide
	}
	return fromSide
}
