package synth

import (
	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
)

// GeometricCuts returns the structural bottleneck partitions of a grid
// layout: column prefixes, row prefixes and one quadrant cut. These seed
// the lazy cut pool for SCOp synthesis and serve as the balanced-cut
// candidates for baseline calibration.
func GeometricCuts(g *layout.Grid) []bitgraph.Set {
	n := g.N()
	var pool []bitgraph.Set
	for c := 0; c < g.Cols-1; c++ {
		m := bitgraph.NewSet(n)
		for row := 0; row < g.Rows; row++ {
			for col := 0; col <= c; col++ {
				m.Add(g.Router(row, col))
			}
		}
		pool = append(pool, m)
	}
	for r := 0; r < g.Rows-1; r++ {
		m := bitgraph.NewSet(n)
		for row := 0; row <= r; row++ {
			for col := 0; col < g.Cols; col++ {
				m.Add(g.Router(row, col))
			}
		}
		pool = append(pool, m)
	}
	quad := bitgraph.NewSet(n)
	for row := 0; row < (g.Rows+1)/2; row++ {
		for col := 0; col < (g.Cols+1)/2; col++ {
			quad.Add(g.Router(row, col))
		}
	}
	pool = append(pool, quad)
	return pool
}
