package synth

import "netsmith/internal/layout"

// GeometricCuts returns the structural bottleneck partitions of a grid
// layout: column prefixes, row prefixes and one quadrant cut. These seed
// the lazy cut pool for SCOp synthesis and serve as the balanced-cut
// candidates for baseline calibration.
func GeometricCuts(g *layout.Grid) []uint64 {
	var pool []uint64
	for c := 0; c < g.Cols-1; c++ {
		var m uint64
		for row := 0; row < g.Rows; row++ {
			for col := 0; col <= c; col++ {
				m |= 1 << uint(g.Router(row, col))
			}
		}
		pool = append(pool, m)
	}
	for r := 0; r < g.Rows-1; r++ {
		var m uint64
		for row := 0; row <= r; row++ {
			for col := 0; col < g.Cols; col++ {
				m |= 1 << uint(g.Router(row, col))
			}
		}
		pool = append(pool, m)
	}
	var quad uint64
	for row := 0; row < (g.Rows+1)/2; row++ {
		for col := 0; col < (g.Cols+1)/2; col++ {
			quad |= 1 << uint(g.Router(row, col))
		}
	}
	pool = append(pool, quad)
	return pool
}
