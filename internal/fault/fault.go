// Package fault defines deterministic, seedable fault schedules for the
// flit engine: link and router failures, transient (fail at cycle c0,
// recover at c1) or permanent, expressed as (kind, element, start, end)
// events. Schedules are registered and parsed exactly like traffic
// patterns — "name:key=val:..." arguments, a self-describing registry,
// and canonical keys for content-addressed caching — so the scenario
// matrix can grow a fault axis without new plumbing idioms.
//
// Determinism contract: building the same schedule spec against the same
// topology always yields the same event list (seeded permutations draw
// from the topology's dense link-ID order), and the engine replays a
// given schedule bit-identically at any GOMAXPROCS.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"netsmith/internal/topo"
)

// Kind distinguishes what kind of element an event kills.
type Kind int

const (
	// Link kills the directed link From->To.
	Link Kind = iota
	// Router kills router Router: all its links, plus injection and
	// ejection at that node.
	Router
)

// String names the kind as used in the "list" schedule syntax.
func (k Kind) String() string {
	switch k {
	case Link:
		return "link"
	case Router:
		return "router"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one failure: the element is dead for cycles in [Start, End),
// with End == 0 meaning permanent (never recovers).
type Event struct {
	Kind     Kind
	From, To int   // directed link endpoints (Kind == Link)
	Router   int   // router id (Kind == Router)
	Start    int64 // first cycle the element is dead
	End      int64 // first cycle alive again; 0 = permanent
}

// String renders the event in the "list" schedule syntax
// (e.g. "link=0>1@100-200", "router=3@500").
func (e Event) String() string {
	var el string
	if e.Kind == Link {
		el = fmt.Sprintf("link=%d>%d", e.From, e.To)
	} else {
		el = fmt.Sprintf("router=%d", e.Router)
	}
	if e.End == 0 {
		return fmt.Sprintf("%s@%d", el, e.Start)
	}
	return fmt.Sprintf("%s@%d-%d", el, e.Start, e.End)
}

// Schedule is a validated, deterministically ordered set of fault events
// built for one concrete topology. Key is the canonical schedule key
// (CanonicalScheduleKey of the spec that built it; "" for no faults) and
// is the fault component of content-addressed cache keys.
type Schedule struct {
	Key    string
	Events []Event
}

// Empty reports whether the schedule contains no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Boundaries returns the sorted, de-duplicated cycles in [0, horizon) at
// which the set of dead elements may change: every event start and every
// transient event end. Events entirely past the horizon contribute
// nothing (they can never fire).
func (s *Schedule) Boundaries(horizon int64) []int64 {
	if s.Empty() {
		return nil
	}
	seen := make(map[int64]bool)
	var out []int64
	add := func(c int64) {
		if c >= 0 && c < horizon && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, e := range s.Events {
		add(e.Start)
		if e.End > 0 {
			add(e.End)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeadAt returns the elements dead at the given cycle: directed links as
// {from, to} pairs and router ids, both sorted and de-duplicated. Links
// of dead routers are not expanded here; the engine treats a dead router
// as killing all its ports.
func (s *Schedule) DeadAt(cycle int64) (links [][2]int, routers []int) {
	if s.Empty() {
		return nil, nil
	}
	linkSet := make(map[[2]int]bool)
	routerSet := make(map[int]bool)
	for _, e := range s.Events {
		if cycle < e.Start || (e.End > 0 && cycle >= e.End) {
			continue
		}
		if e.Kind == Link {
			linkSet[[2]int{e.From, e.To}] = true
		} else {
			routerSet[e.Router] = true
		}
	}
	for l := range linkSet {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for r := range routerSet {
		routers = append(routers, r)
	}
	sort.Ints(routers)
	return links, routers
}

// Params carries per-schedule options as string key/values, mirroring
// traffic.Params.
type Params map[string]string

// ParamSpec documents one schedule parameter.
type ParamSpec struct {
	Name    string
	Default string
	Doc     string
}

// Builder constructs the event list of a schedule for a topology.
type Builder func(t *topo.Topology, p Params) ([]Event, error)

// Entry is one registered schedule family.
type Entry struct {
	Name   string
	Doc    string
	Params []ParamSpec
	Build  Builder
}

// Registry maps schedule names to constructors.
type Registry struct {
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]Entry{}} }

// Register adds an entry; duplicate names are an error.
func (r *Registry) Register(e Entry) error {
	if e.Name == "" || e.Build == nil {
		return fmt.Errorf("fault: registry entry needs a name and builder")
	}
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("fault: schedule %q already registered", e.Name)
	}
	r.entries[e.Name] = e
	return nil
}

// Names lists registered schedules in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the entry for name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// Build constructs the named schedule against a topology, validating
// that every supplied parameter is declared and every produced event
// names an element that exists. The returned schedule's Key is the
// canonical key of (name, params) and its events are deterministically
// ordered.
func (r *Registry) Build(name string, t *topo.Topology, params Params) (*Schedule, error) {
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown schedule %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	for k := range params {
		known := false
		for _, s := range e.Params {
			if s.Name == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("fault: schedule %q has no parameter %q", name, k)
		}
	}
	events, err := e.Build(t, params)
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		if ev.Start < 0 {
			return nil, fmt.Errorf("fault: event %s has negative start", ev)
		}
		if ev.End != 0 && ev.End <= ev.Start {
			return nil, fmt.Errorf("fault: event %s ends before it starts", ev)
		}
		switch ev.Kind {
		case Link:
			if ev.From < 0 || ev.From >= t.N() || ev.To < 0 || ev.To >= t.N() || !t.Has(ev.From, ev.To) {
				return nil, fmt.Errorf("fault: event %s names a link not in topology %s", ev, t.Name)
			}
		case Router:
			if ev.Router < 0 || ev.Router >= t.N() {
				return nil, fmt.Errorf("fault: event %s names a router outside [0,%d)", ev, t.N())
			}
		default:
			return nil, fmt.Errorf("fault: event has invalid kind %d", ev.Kind)
		}
	}
	sortEvents(events)
	key := ""
	if !(name == "none" && len(params) == 0) {
		key = CanonicalScheduleKey(name, params)
	}
	return &Schedule{Key: key, Events: events}, nil
}

// sortEvents orders events deterministically and drops exact duplicates.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Router < b.Router
	})
}

// param returns the supplied value or the spec default.
func param(p Params, name, def string) string {
	if v, ok := p[name]; ok && v != "" {
		return v
	}
	return def
}

func intParam(p Params, name, def string) (int, error) {
	v, err := strconv.Atoi(param(p, name, def))
	if err != nil {
		return 0, fmt.Errorf("fault: parameter %s: %v", name, err)
	}
	return v, nil
}

func int64Param(p Params, name, def string) (int64, error) {
	v, err := strconv.ParseInt(param(p, name, def), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("fault: parameter %s: %v", name, err)
	}
	return v, nil
}

func floatParam(p Params, name, def string) (float64, error) {
	v, err := strconv.ParseFloat(param(p, name, def), 64)
	if err != nil {
		return 0, fmt.Errorf("fault: parameter %s: %v", name, err)
	}
	return v, nil
}

// window parses the shared at/until parameters (fault onset cycle and
// recovery cycle, until=0 meaning permanent).
func window(p Params) (start, end int64, err error) {
	start, err = int64Param(p, "at", "2000")
	if err != nil {
		return 0, 0, err
	}
	end, err = int64Param(p, "until", "0")
	if err != nil {
		return 0, 0, err
	}
	if start < 0 {
		return 0, 0, fmt.Errorf("fault: parameter at must be >= 0, got %d", start)
	}
	if end != 0 && end <= start {
		return 0, 0, fmt.Errorf("fault: parameter until (%d) must be 0 or > at (%d)", end, start)
	}
	return start, end, nil
}

// Default returns the registry of built-in schedules. The returned
// registry is freshly populated on each call, so callers may extend it
// without affecting others.
func Default() *Registry {
	r := NewRegistry()
	must := func(e Entry) {
		if err := r.Register(e); err != nil {
			panic(err)
		}
	}
	windowSpecs := []ParamSpec{
		{Name: "at", Default: "2000", Doc: "cycle the faults set in"},
		{Name: "until", Default: "0", Doc: "cycle the faults recover (0 = permanent)"},
	}
	must(Entry{
		Name: "none",
		Doc:  "no faults (the healthy-network baseline)",
		Build: func(t *topo.Topology, p Params) ([]Event, error) {
			return nil, nil
		},
	})
	must(Entry{
		Name: "klinks",
		Doc:  "k seeded-random directed link failures",
		Params: append([]ParamSpec{
			{Name: "k", Default: "1", Doc: "number of distinct links to kill"},
			{Name: "seed", Default: "1", Doc: "selection seed (links drawn from dense link-ID order)"},
		}, windowSpecs...),
		Build: func(t *topo.Topology, p Params) ([]Event, error) {
			k, err := intParam(p, "k", "1")
			if err != nil {
				return nil, err
			}
			seed, err := int64Param(p, "seed", "1")
			if err != nil {
				return nil, err
			}
			start, end, err := window(p)
			if err != nil {
				return nil, err
			}
			links := t.Links()
			if k < 0 || k > len(links) {
				return nil, fmt.Errorf("fault: klinks k=%d out of range (topology has %d directed links)", k, len(links))
			}
			perm := rand.New(rand.NewSource(seed)).Perm(len(links))
			events := make([]Event, 0, k)
			for _, idx := range perm[:k] {
				l := links[idx]
				events = append(events, Event{Kind: Link, From: l.From, To: l.To, Start: start, End: end})
			}
			return events, nil
		},
	})
	must(Entry{
		Name: "krouters",
		Doc:  "k seeded-random router failures (all ports plus local inject/eject)",
		Params: append([]ParamSpec{
			{Name: "k", Default: "1", Doc: "number of distinct routers to kill"},
			{Name: "seed", Default: "1", Doc: "selection seed"},
		}, windowSpecs...),
		Build: func(t *topo.Topology, p Params) ([]Event, error) {
			k, err := intParam(p, "k", "1")
			if err != nil {
				return nil, err
			}
			seed, err := int64Param(p, "seed", "1")
			if err != nil {
				return nil, err
			}
			start, end, err := window(p)
			if err != nil {
				return nil, err
			}
			if k < 0 || k > t.N() {
				return nil, fmt.Errorf("fault: krouters k=%d out of range (topology has %d routers)", k, t.N())
			}
			perm := rand.New(rand.NewSource(seed)).Perm(t.N())
			events := make([]Event, 0, k)
			for _, rtr := range perm[:k] {
				events = append(events, Event{Kind: Router, Router: rtr, Start: start, End: end})
			}
			return events, nil
		},
	})
	must(Entry{
		Name: "randlinks",
		Doc:  "every directed link fails independently with probability rate",
		Params: append([]ParamSpec{
			{Name: "rate", Default: "0.05", Doc: "per-link failure probability in [0,1]"},
			{Name: "seed", Default: "1", Doc: "selection seed (links drawn in dense link-ID order)"},
		}, windowSpecs...),
		Build: func(t *topo.Topology, p Params) ([]Event, error) {
			rate, err := floatParam(p, "rate", "0.05")
			if err != nil {
				return nil, err
			}
			if rate < 0 || rate > 1 {
				return nil, fmt.Errorf("fault: randlinks rate=%v outside [0,1]", rate)
			}
			seed, err := int64Param(p, "seed", "1")
			if err != nil {
				return nil, err
			}
			start, end, err := window(p)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			var events []Event
			for _, l := range t.Links() {
				if rng.Float64() < rate {
					events = append(events, Event{Kind: Link, From: l.From, To: l.To, Start: start, End: end})
				}
			}
			return events, nil
		},
	})
	must(Entry{
		Name: "list",
		Doc:  "explicit event list, e.g. list:events=link=0>1@100-200+router=3@500",
		Params: []ParamSpec{
			{Name: "events", Default: "", Doc: "'+'-separated events: link=A>B@start[-end] or router=R@start[-end] (required)"},
		},
		Build: func(t *topo.Topology, p Params) ([]Event, error) {
			raw := param(p, "events", "")
			if raw == "" {
				return nil, fmt.Errorf("fault: list schedule requires the events parameter")
			}
			var events []Event
			for _, item := range strings.Split(raw, "+") {
				ev, err := parseEvent(strings.TrimSpace(item))
				if err != nil {
					return nil, err
				}
				events = append(events, ev)
			}
			return events, nil
		},
	})
	return r
}

// parseEvent parses one "list" event item: "link=A>B@start[-end]" or
// "router=R@start[-end]".
func parseEvent(item string) (Event, error) {
	kindStr, rest, found := strings.Cut(item, "=")
	if !found {
		return Event{}, fmt.Errorf("fault: bad event %q (want link=A>B@start[-end] or router=R@start[-end])", item)
	}
	el, when, found := strings.Cut(rest, "@")
	if !found {
		return Event{}, fmt.Errorf("fault: event %q is missing its @start[-end] window", item)
	}
	var ev Event
	switch kindStr {
	case "link":
		fromStr, toStr, found := strings.Cut(el, ">")
		if !found {
			return Event{}, fmt.Errorf("fault: bad link %q in event %q (want A>B)", el, item)
		}
		from, err := strconv.Atoi(fromStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad link source in event %q: %v", item, err)
		}
		to, err := strconv.Atoi(toStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad link destination in event %q: %v", item, err)
		}
		ev = Event{Kind: Link, From: from, To: to}
	case "router":
		rtr, err := strconv.Atoi(el)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad router id in event %q: %v", item, err)
		}
		ev = Event{Kind: Router, Router: rtr}
	default:
		return Event{}, fmt.Errorf("fault: unknown element kind %q in event %q", kindStr, item)
	}
	startStr, endStr, ranged := strings.Cut(when, "-")
	start, err := strconv.ParseInt(startStr, 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("fault: bad start cycle in event %q: %v", item, err)
	}
	ev.Start = start
	if ranged {
		end, err := strconv.ParseInt(endStr, 10, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad end cycle in event %q: %v", item, err)
		}
		ev.End = end
	}
	return ev, nil
}

// scheduleKeyEscaper keeps CanonicalScheduleKey injective, mirroring the
// traffic pattern-key escaping: values containing ':' or '=' must not
// render the same bytes as a differently-split parameter set.
var scheduleKeyEscaper = strings.NewReplacer("%", "%25", ":", "%3A", "=", "%3D")

// CanonicalScheduleKey renders a (name, params) pair as the canonical
// "name:key=val:..." string with parameters in sorted key order (':',
// '=' and '%' percent-escaped). It is the fault component of
// content-addressed cache keys; the no-fault schedule uses the empty
// string so healthy-network cell payloads are unchanged.
func CanonicalScheduleKey(name string, p Params) string {
	if len(p) == 0 {
		return name
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := name
	for _, k := range keys {
		out += ":" + scheduleKeyEscaper.Replace(k) + "=" + scheduleKeyEscaper.Replace(p[k])
	}
	return out
}

// ParseScheduleArg splits a command-line fault-schedule argument of the
// form "name" or "name:key=val:key=val" (e.g. "klinks:k=2:seed=9",
// "list:events=link=0>1@100-200+router=3@500").
func ParseScheduleArg(arg string) (name string, params Params, err error) {
	parts := strings.Split(arg, ":")
	name = strings.TrimSpace(parts[0])
	if name == "" {
		return "", nil, fmt.Errorf("fault: empty schedule name in %q", arg)
	}
	if len(parts) == 1 {
		return name, nil, nil
	}
	params = Params{}
	for _, kv := range parts[1:] {
		k, v, found := strings.Cut(kv, "=")
		if !found || k == "" {
			return "", nil, fmt.Errorf("fault: bad schedule parameter %q in %q (want key=val)", kv, arg)
		}
		params[k] = v
	}
	return name, params, nil
}
