package fault

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
)

// FuzzParseFaultSchedule hardens the schedule CLI syntax ("name" or
// "name:key=val:key=val"): parsing must never panic, a successful parse
// must yield a non-empty name, and rebuilding the canonical argument
// from the parsed pieces must round-trip to the same name and params.
// Accepted arguments are additionally pushed through Registry.Build
// against a mesh topology to shake out builder panics on hostile
// parameter values — builders must return errors, never crash.
func FuzzParseFaultSchedule(f *testing.F) {
	for _, seed := range []string{
		"none",
		"klinks",
		"klinks:k=2:seed=9",
		"klinks:k=-1",
		"klinks:k=99999:at=0",
		"krouters:k=3:at=0:until=100",
		"randlinks:rate=0.25:seed=7",
		"randlinks:rate=nan",
		"list:events=link=0>1@100-200+router=3@500",
		"list:events=link=0>1@200-100",
		"list:events=router=-1@0",
		"list:events=",
		"  spaced  :  k = v ",
		":",
		"name:noequals",
		"name:k=v:k=w",
		"a=b:k=v",
		"name:k=v=w",
	} {
		f.Add(seed)
	}
	tp := expert.Mesh(layout.NewGrid(4, 5))
	reg := Default()
	f.Fuzz(func(t *testing.T, arg string) {
		name, params, err := ParseScheduleArg(arg)
		if err != nil {
			return
		}
		if name == "" {
			t.Fatalf("ParseScheduleArg(%q) accepted an empty name", arg)
		}
		// Canonical rebuild: the split runs on ":" before "=", so parsed
		// values can never contain ":" and re-parsing must reproduce the
		// exact name/params pair.
		rebuilt := name
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rebuilt += ":" + k + "=" + params[k]
		}
		name2, params2, err2 := ParseScheduleArg(rebuilt)
		if err2 != nil {
			t.Fatalf("round-trip %q -> %q failed to parse: %v", arg, rebuilt, err2)
		}
		if name2 != strings.TrimSpace(name) {
			t.Fatalf("round-trip name %q != %q (arg %q)", name2, name, arg)
		}
		if len(params) > 0 && !reflect.DeepEqual(params, params2) {
			t.Fatalf("round-trip params %v != %v (arg %q)", params2, params, arg)
		}
		if sched, err := reg.Build(name, tp, params); err == nil {
			// Canonical keys of accepted schedules are stable under
			// re-keying with the same params.
			if sched.Key != "" && sched.Key != CanonicalScheduleKey(name, params) {
				t.Fatalf("schedule key %q != canonical %q", sched.Key, CanonicalScheduleKey(name, params))
			}
		}
	})
}
