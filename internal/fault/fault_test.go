package fault

import (
	"reflect"
	"strings"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/topo"
)

func meshTopo(t *testing.T) *topo.Topology {
	t.Helper()
	return expert.Mesh(layout.NewGrid(4, 5))
}

func TestBuildKLinksDeterministic(t *testing.T) {
	tp := meshTopo(t)
	reg := Default()
	p := Params{"k": "3", "seed": "9", "at": "500"}
	a, err := reg.Build("klinks", tp, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := reg.Build("klinks", tp, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("klinks not deterministic:\n%v\nvs\n%v", a.Events, b.Events)
	}
	if len(a.Events) != 3 {
		t.Fatalf("klinks k=3 produced %d events", len(a.Events))
	}
	seen := map[[2]int]bool{}
	for _, e := range a.Events {
		if e.Kind != Link || e.Start != 500 || e.End != 0 {
			t.Fatalf("unexpected event %v", e)
		}
		if !tp.Has(e.From, e.To) {
			t.Fatalf("event %v names a missing link", e)
		}
		if seen[[2]int{e.From, e.To}] {
			t.Fatalf("duplicate link in %v", a.Events)
		}
		seen[[2]int{e.From, e.To}] = true
	}
	if a.Key != "klinks:at=500:k=3:seed=9" {
		t.Fatalf("canonical key = %q", a.Key)
	}
	// A different seed picks a different link set (true for the mesh's
	// 62 directed links with these two seeds).
	c, err := reg.Build("klinks", tp, Params{"k": "3", "seed": "10", "at": "500"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("seeds 9 and 10 picked identical links: %v", a.Events)
	}
}

func TestBuildKRouters(t *testing.T) {
	tp := meshTopo(t)
	s, err := Default().Build("krouters", tp, Params{"k": "2", "seed": "4", "at": "100", "until": "300"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(s.Events) != 2 {
		t.Fatalf("krouters k=2 produced %d events", len(s.Events))
	}
	for _, e := range s.Events {
		if e.Kind != Router || e.Start != 100 || e.End != 300 {
			t.Fatalf("unexpected event %v", e)
		}
	}
}

func TestBuildRandLinksRateBounds(t *testing.T) {
	tp := meshTopo(t)
	reg := Default()
	if _, err := reg.Build("randlinks", tp, Params{"rate": "1.5"}); err == nil {
		t.Fatal("rate=1.5 accepted")
	}
	zero, err := reg.Build("randlinks", tp, Params{"rate": "0"})
	if err != nil {
		t.Fatalf("rate=0: %v", err)
	}
	if !zero.Empty() {
		t.Fatalf("rate=0 produced events: %v", zero.Events)
	}
	all, err := reg.Build("randlinks", tp, Params{"rate": "1"})
	if err != nil {
		t.Fatalf("rate=1: %v", err)
	}
	if len(all.Events) != tp.NumDirectedLinks() {
		t.Fatalf("rate=1 produced %d events, want %d", len(all.Events), tp.NumDirectedLinks())
	}
}

func TestBuildList(t *testing.T) {
	tp := meshTopo(t)
	s, err := Default().Build("list", tp, Params{"events": "link=0>1@100-200+router=3@500"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := []Event{
		{Kind: Link, From: 0, To: 1, Start: 100, End: 200},
		{Kind: Router, Router: 3, Start: 500},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("events = %v, want %v", s.Events, want)
	}
	// Round-trip through Event.String and the list syntax.
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	s2, err := Default().Build("list", tp, Params{"events": strings.Join(parts, "+")})
	if err != nil {
		t.Fatalf("re-Build: %v", err)
	}
	if !reflect.DeepEqual(s.Events, s2.Events) {
		t.Fatalf("list round-trip mismatch: %v vs %v", s.Events, s2.Events)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	tp := meshTopo(t)
	reg := Default()
	cases := []struct {
		name string
		p    Params
	}{
		{"list", Params{"events": "link=0>7@100"}},     // 0->7 not a mesh link
		{"list", Params{"events": "link=0>99@100"}},    // out of range
		{"list", Params{"events": "router=99@100"}},    // out of range
		{"list", Params{"events": "link=0>1@200-100"}}, // ends before start
		{"list", Params{"events": "link=0>1@-5"}},      // negative start
		{"list", Params{"events": "gizmo=1@5"}},        // unknown kind
		{"list", Params{"events": "link=0>1"}},         // no window
		{"list", Params{}},                             // events required
		{"klinks", Params{"k": "9999"}},                // more than links
		{"klinks", Params{"k": "1", "bogus": "1"}},     // unknown param
		{"klinks", Params{"k": "1", "until": "10"}},    // until <= default at
		{"nosuch", nil}, // unknown schedule
	}
	for _, c := range cases {
		if _, err := reg.Build(c.name, tp, c.p); err == nil {
			t.Errorf("Build(%q, %v) accepted", c.name, c.p)
		}
	}
}

func TestScheduleBoundariesAndDeadAt(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Link, From: 0, To: 1, Start: 100, End: 200},
		{Kind: Link, From: 1, To: 2, Start: 100},
		{Kind: Router, Router: 3, Start: 0, End: 50},
		{Kind: Router, Router: 4, Start: 9000},
	}}
	got := s.Boundaries(1000)
	want := []int64{0, 50, 100, 200}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Boundaries = %v, want %v", got, want)
	}
	links, routers := s.DeadAt(150)
	if !reflect.DeepEqual(links, [][2]int{{0, 1}, {1, 2}}) || len(routers) != 0 {
		t.Fatalf("DeadAt(150) = %v, %v", links, routers)
	}
	links, routers = s.DeadAt(10)
	if len(links) != 0 || !reflect.DeepEqual(routers, []int{3}) {
		t.Fatalf("DeadAt(10) = %v, %v", links, routers)
	}
	links, routers = s.DeadAt(500)
	if !reflect.DeepEqual(links, [][2]int{{1, 2}}) || len(routers) != 0 {
		t.Fatalf("DeadAt(500) = %v, %v", links, routers)
	}
	if (&Schedule{}).Boundaries(1000) != nil {
		t.Fatal("empty schedule has boundaries")
	}
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Fatal("nil schedule not Empty")
	}
}

func TestNoneHasEmptyKey(t *testing.T) {
	s, err := Default().Build("none", meshTopo(t), nil)
	if err != nil {
		t.Fatalf("Build(none): %v", err)
	}
	if s.Key != "" || !s.Empty() {
		t.Fatalf("none schedule: key %q, %d events", s.Key, len(s.Events))
	}
}

func TestCanonicalScheduleKey(t *testing.T) {
	k1 := CanonicalScheduleKey("klinks", Params{"seed": "9", "k": "2"})
	k2 := CanonicalScheduleKey("klinks", Params{"k": "2", "seed": "9"})
	if k1 != k2 || k1 != "klinks:k=2:seed=9" {
		t.Fatalf("canonical keys %q / %q", k1, k2)
	}
	// Escaping keeps the key injective for hostile values.
	esc := CanonicalScheduleKey("list", Params{"events": "link=0>1@5"})
	if esc != "list:events=link%3D0>1@5" {
		t.Fatalf("escaped key = %q", esc)
	}
}

func TestParseScheduleArg(t *testing.T) {
	name, p, err := ParseScheduleArg("klinks:k=2:seed=9")
	if err != nil || name != "klinks" || !reflect.DeepEqual(p, Params{"k": "2", "seed": "9"}) {
		t.Fatalf("ParseScheduleArg = %q %v %v", name, p, err)
	}
	name, p, err = ParseScheduleArg("list:events=link=0>1@100-200+router=3@500")
	if err != nil || name != "list" || p["events"] != "link=0>1@100-200+router=3@500" {
		t.Fatalf("ParseScheduleArg(list) = %q %v %v", name, p, err)
	}
	if _, _, err := ParseScheduleArg(""); err == nil {
		t.Fatal("empty arg accepted")
	}
	if _, _, err := ParseScheduleArg("name:noequals"); err == nil {
		t.Fatal("parameter without '=' accepted")
	}
}
