package power

import (
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/route"
	"netsmith/internal/topo"
)

func analyzed(t *testing.T, tp *topo.Topology, rate float64) Report {
	t.Helper()
	r, err := route.MCLB(tp, route.MCLBOptions{Seed: 1, Restarts: 2, Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(tp, r, rate, Default22nm())
}

func TestAnalyzeMeshBasics(t *testing.T) {
	mesh := expert.Mesh(layout.Grid4x5)
	rep := analyzed(t, mesh, 0.10)
	if rep.DynamicMW <= 0 || rep.LeakageMW <= 0 {
		t.Fatalf("power components must be positive: %+v", rep)
	}
	if rep.TotalMW != rep.DynamicMW+rep.LeakageMW {
		t.Error("total must equal dynamic + leakage")
	}
	// Paper: leakage comparable to dynamic power at moderate load.
	ratio := rep.LeakageMW / rep.DynamicMW
	if ratio < 0.3 || ratio > 3.0 {
		t.Errorf("leakage/dynamic ratio %v implausible", ratio)
	}
	// Wire area dominates router area (paper Fig. 9 discussion).
	if rep.WireArea <= rep.RouterArea {
		t.Errorf("wire area %v must dominate router area %v", rep.WireArea, rep.RouterArea)
	}
}

func TestDynamicScalesWithLoad(t *testing.T) {
	mesh := expert.Mesh(layout.Grid4x5)
	low := analyzed(t, mesh, 0.02)
	high := analyzed(t, mesh, 0.20)
	if high.DynamicMW <= low.DynamicMW {
		t.Error("dynamic power must grow with load")
	}
	if high.LeakageMW != low.LeakageMW {
		t.Error("leakage must be load independent")
	}
}

func TestLeakageComparableAcrossTopologies(t *testing.T) {
	// Paper: leakage is more or less the same across the 20-router
	// topologies (same routers, similar link counts).
	mesh := analyzed(t, expert.Mesh(layout.Grid4x5), 0.10)
	kite, err := expert.Get(expert.NameKiteMedium, layout.Grid4x5)
	if err != nil {
		t.Fatal(err)
	}
	kiteRep := analyzed(t, kite, 0.10)
	rel := kiteRep.RelativeTo(mesh)
	if rel.Leakage < 0.8 || rel.Leakage > 1.6 {
		t.Errorf("kite leakage %vx mesh, expected near 1x", rel.Leakage)
	}
}

func TestSlowerClockLowersDynamic(t *testing.T) {
	// Same link structure, slower clock => lower dynamic power. Compare
	// the same mesh labeled medium (3.0GHz) vs small (3.6GHz).
	meshSmall := expert.Mesh(layout.Grid4x5)
	meshSlow := meshSmall.Clone()
	meshSlow.Class = layout.Large
	fast := analyzed(t, meshSmall, 0.10)
	slow := analyzed(t, meshSlow, 0.10)
	want := layout.Large.ClockGHz() / layout.Small.ClockGHz()
	got := slow.DynamicMW / fast.DynamicMW
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("dynamic ratio %v, want clock ratio %v", got, want)
	}
}

func TestRelativeToSelfIsUnity(t *testing.T) {
	mesh := analyzed(t, expert.Mesh(layout.Grid4x5), 0.10)
	rel := mesh.RelativeTo(mesh)
	for name, v := range map[string]float64{
		"dynamic": rel.Dynamic, "leakage": rel.Leakage, "total": rel.Total,
		"routerArea": rel.RouterAreaR, "wireArea": rel.WireAreaR, "totalArea": rel.TotalAreaR,
	} {
		if v < 0.999 || v > 1.001 {
			t.Errorf("%s self-relative = %v, want 1", name, v)
		}
	}
}
