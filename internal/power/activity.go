package power

import (
	"fmt"

	"netsmith/internal/topo"
)

// Activity is the raw counter set a cycle-accurate simulation measures
// (see sim.EnergyReport for the producer). Counters cover the whole run;
// energy conversion multiplies them by the Model constants, so the
// measured report is cross-checkable against the analytic Analyze
// estimate at the same offered load (Figure 9's fidelity claim).
type Activity struct {
	// Cycles is the simulated cycle count; ClockGHz converts it to time.
	Cycles   int64
	ClockGHz float64
	// RouterFlits counts switch traversals per router (each flit pops out
	// of a VC buffer once per router it visits, including the final
	// ejection pop — hops+1 traversals per flit).
	RouterFlits []uint64
	// LinkFlits counts flit crossings per dense directed-link ID
	// (topo.LinkID order).
	LinkFlits []uint64
}

// ActivityReport is measured energy: dynamic picojoules by component,
// leakage energy over the run, and per-router/per-link breakdowns. The
// component sums are computed from the breakdown arrays in index order,
// so SumPJ conservation (per-router + per-link == dynamic) is exact.
type ActivityReport struct {
	Topology   string
	Cycles     int64
	DurationNs float64

	// Dynamic energy split by component: router switch/buffer traversals
	// and wire (link) crossings.
	RouterDynPJ float64
	WireDynPJ   float64
	DynamicPJ   float64
	// LeakagePJ is the load-independent leakage power integrated over the
	// run duration; TotalPJ = DynamicPJ + LeakagePJ.
	LeakagePJ float64
	TotalPJ   float64

	// Average power over the run (pJ/ns == mW), comparable to the
	// analytic Report's DynamicMW/TotalMW at the same offered load.
	AvgDynamicMW float64
	AvgTotalMW   float64

	// PerRouterPJ[r] is router r's dynamic traversal energy; PerLinkPJ[id]
	// the wire energy of dense link id.
	PerRouterPJ []float64
	PerLinkPJ   []float64
}

// ActivityReport converts measured counters into energy with the model
// constants. The topology supplies link lengths (wire energy) and port
// counts (leakage), mirroring Analyze so measured and analytic reports
// share every constant.
func (m Model) ActivityReport(t *topo.Topology, a Activity) (*ActivityReport, error) {
	n := t.N()
	if len(a.RouterFlits) != n {
		return nil, fmt.Errorf("power: %d router counters for %d routers", len(a.RouterFlits), n)
	}
	if len(a.LinkFlits) != t.NumDirectedLinks() {
		return nil, fmt.Errorf("power: %d link counters for %d links", len(a.LinkFlits), t.NumDirectedLinks())
	}
	if a.ClockGHz <= 0 {
		return nil, fmt.Errorf("power: non-positive clock %v", a.ClockGHz)
	}
	r := &ActivityReport{
		Topology:    t.Name,
		Cycles:      a.Cycles,
		DurationNs:  float64(a.Cycles) / a.ClockGHz,
		PerRouterPJ: make([]float64, n),
		PerLinkPJ:   make([]float64, len(a.LinkFlits)),
	}
	for v := 0; v < n; v++ {
		r.PerRouterPJ[v] = m.RouterDynPJPerFlit * float64(a.RouterFlits[v])
		r.RouterDynPJ += r.PerRouterPJ[v]
	}
	for id := range a.LinkFlits {
		l := t.LinkByID(id)
		r.PerLinkPJ[id] = m.WireDynPJPerFlitMM * t.Grid.LengthMM(l.From, l.To) * float64(a.LinkFlits[id])
		r.WireDynPJ += r.PerLinkPJ[id]
	}
	r.DynamicPJ = r.RouterDynPJ + r.WireDynPJ
	r.LeakagePJ = m.LeakageMW(t) * r.DurationNs
	r.TotalPJ = r.DynamicPJ + r.LeakagePJ
	if r.DurationNs > 0 {
		r.AvgDynamicMW = r.DynamicPJ / r.DurationNs
		r.AvgTotalMW = r.TotalPJ / r.DurationNs
	}
	return r, nil
}

// LeakageMW is the topology's load-independent leakage power: per-port
// router leakage plus wire repeater leakage (the leak term of Analyze,
// shared so measured and analytic reports agree by construction).
func (m Model) LeakageMW(t *topo.Topology) float64 {
	ports := 0
	for v := 0; v < t.N(); v++ {
		ports += t.OutDegree(v) + t.InDegree(v) + m.LocalPorts
	}
	return m.RouterLeakMWPerPort*float64(ports)/2 + m.WireLeakMWPerMM*t.TotalWireLengthMM()
}
