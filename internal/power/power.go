// Package power is an analytic area/power model for interposer networks,
// substituting for DSENT's 22nm bulk LVT technology model. It encodes
// the three effects the paper's Figure 9 depends on: (1) leakage is
// roughly constant across same-router-count topologies, (2) dynamic
// power scales with clock frequency and aggregate wire length times
// activity, and (3) wire area dominates router area. Absolute numbers
// are calibrated to be plausible for 22nm but only mesh-relative values
// are reported.
package power

import (
	"netsmith/internal/route"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// Model holds technology constants (22nm bulk LVT flavored).
type Model struct {
	// RouterDynPJPerFlit is the energy per flit per router traversal.
	RouterDynPJPerFlit float64
	// WireDynPJPerFlitMM is the wire energy per flit per millimetre.
	WireDynPJPerFlitMM float64
	// RouterLeakMWPerPort is leakage per router port (buffers + switch).
	RouterLeakMWPerPort float64
	// WireLeakMWPerMM is repeater leakage per wire millimetre.
	WireLeakMWPerMM float64
	// RouterAreaMM2PerPort approximates router area per port.
	RouterAreaMM2PerPort float64
	// WireAreaMM2PerMM is link footprint per millimetre (64 data wires
	// plus control at interposer metal pitch).
	WireAreaMM2PerMM float64
	// LocalPorts counts the non-network ports per router (cores/MCs +
	// injection/ejection), included in leakage and area.
	LocalPorts int
}

// Default22nm returns the calibrated constants.
func Default22nm() Model {
	return Model{
		RouterDynPJPerFlit:   0.60,
		WireDynPJPerFlitMM:   0.18,
		RouterLeakMWPerPort:  0.25,
		WireLeakMWPerMM:      0.15,
		RouterAreaMM2PerPort: 0.0125,
		WireAreaMM2PerMM:     0.013,
		LocalPorts:           4,
	}
}

// Report is the absolute power/area estimate for one topology.
type Report struct {
	Topology   string
	DynamicMW  float64
	LeakageMW  float64
	TotalMW    float64
	RouterArea float64 // mm^2
	WireArea   float64 // mm^2
	TotalArea  float64 // mm^2
}

// Analyze estimates power at a uniform offered load of rate packets per
// node per cycle, with activity derived from the routing's exact channel
// loads.
func Analyze(t *topo.Topology, r *route.Routing, rate float64, m Model) Report {
	n := float64(t.N())
	clock := t.Class.ClockGHz()
	// Per-flow packet rate: each node spreads `rate` over n-1 flows.
	flowRate := rate / (n - 1)
	flitsPerPkt := traffic.AvgFlitsPerPacket

	var routerDyn, wireDyn float64
	loads := r.ChannelLoads()
	for link, load := range loads {
		// flits per cycle crossing this link.
		flitRate := float64(load) * flowRate * flitsPerPkt
		lengthMM := t.Grid.LengthMM(link[0], link[1])
		// pJ/flit * flits/cycle * Gcycles/s = mW.
		routerDyn += m.RouterDynPJPerFlit * flitRate * clock
		wireDyn += m.WireDynPJPerFlitMM * lengthMM * flitRate * clock
	}
	// Injection/ejection traversals add one router pass each.
	injFlits := rate * flitsPerPkt * n
	routerDyn += 2 * m.RouterDynPJPerFlit * injFlits * clock / 2

	wireMM := t.TotalWireLengthMM()
	ports := 0
	for v := 0; v < t.N(); v++ {
		ports += t.OutDegree(v) + t.InDegree(v) + m.LocalPorts
	}
	leak := m.LeakageMW(t)

	routerArea := m.RouterAreaMM2PerPort * float64(ports) / 2
	wireArea := m.WireAreaMM2PerMM * wireMM
	return Report{
		Topology:   t.Name,
		DynamicMW:  routerDyn + wireDyn,
		LeakageMW:  leak,
		TotalMW:    routerDyn + wireDyn + leak,
		RouterArea: routerArea,
		WireArea:   wireArea,
		TotalArea:  routerArea + wireArea,
	}
}

// Relative is a mesh-normalized report (the paper's Figure 9 axes;
// lower is better).
type Relative struct {
	Topology    string
	Dynamic     float64
	Leakage     float64
	Total       float64
	RouterAreaR float64
	WireAreaR   float64
	TotalAreaR  float64
}

// RelativeTo normalizes a report against a baseline (typically mesh).
func (r Report) RelativeTo(base Report) Relative {
	return Relative{
		Topology:    r.Topology,
		Dynamic:     r.DynamicMW / base.DynamicMW,
		Leakage:     r.LeakageMW / base.LeakageMW,
		Total:       r.TotalMW / base.TotalMW,
		RouterAreaR: r.RouterArea / base.RouterArea,
		WireAreaR:   r.WireArea / base.WireArea,
		TotalAreaR:  r.TotalArea / base.TotalArea,
	}
}
