package power_test

// External test package: the cross-check drives the cycle-accurate
// simulator (internal/sim), which itself imports power for the energy
// conversion — an in-package test would close an import cycle.

import (
	"math"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/power"
	"netsmith/internal/sim"
	"netsmith/internal/traffic"
)

// TestActivityReportMatchesAnalytic pins the Figure-9 fidelity claim:
// the measured-energy report of a uniform-traffic run must agree with
// the analytic estimate at the same offered load. The analytic model
// predicts average dynamic power from the routing's exact channel loads
// and the Bernoulli injection process; the measured report integrates
// the same constants over the engine's actual activity counters, so the
// two may differ only through edge effects (warm-up fill, drain tail)
// and the stochastic flit mix — well under the 20% tolerance at the
// chosen window sizes.
func TestActivityReportMatchesAnalytic(t *testing.T) {
	s, err := sim.Prepare(expert.Mesh(layout.Grid4x5), sim.UseMCLB, 1)
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.08
	res, err := sim.Run(sim.Config{
		Topo: s.Topo, Routing: s.Routing, VC: s.VC,
		Pattern: traffic.Uniform{N: 20}, InjectionRate: rate,
		WarmupCycles: 2000, MeasureCycles: 20000, DrainCycles: 20000,
		CollectEnergy: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Energy == nil {
		t.Fatalf("bad run: stalled=%v energy=%v", res.Stalled, res.Energy != nil)
	}
	analytic := power.Analyze(s.Topo, s.Routing, rate, power.Default22nm())
	measured := res.Energy

	const tol = 0.20
	checkRatio := func(name string, got, want float64) {
		t.Helper()
		if want <= 0 || got <= 0 {
			t.Fatalf("%s: non-positive (measured %v, analytic %v)", name, got, want)
		}
		if r := got / want; r < 1-tol || r > 1+tol {
			t.Errorf("%s: measured %v vs analytic %v (ratio %.3f outside [%.2f, %.2f])",
				name, got, want, r, 1-tol, 1+tol)
		}
	}
	checkRatio("dynamic mW", measured.AvgDynamicMW, analytic.DynamicMW)
	checkRatio("total mW", measured.AvgTotalMW, analytic.TotalMW)

	// Leakage shares the exact same formula on both sides; the only
	// freedom is the run duration, so the measured leakage power must
	// equal the analytic leakage exactly.
	leakMW := measured.LeakagePJ / measured.DurationNs
	if math.Abs(leakMW-analytic.LeakageMW) > 1e-9*(1+analytic.LeakageMW) {
		t.Errorf("leakage %v mW != analytic %v mW", leakMW, analytic.LeakageMW)
	}
}

// TestActivityReportScalesWithLoad checks the measured counterpart of
// TestDynamicScalesWithLoad: doubling the offered rate roughly doubles
// measured dynamic power while leakage power stays fixed.
func TestActivityReportScalesWithLoad(t *testing.T) {
	s, err := sim.Prepare(expert.Mesh(layout.Grid4x5), sim.UseMCLB, 1)
	if err != nil {
		t.Fatal(err)
	}
	runAt := func(rate float64) *sim.EnergyReport {
		t.Helper()
		res, err := sim.Run(sim.Config{
			Topo: s.Topo, Routing: s.Routing, VC: s.VC,
			Pattern: traffic.Uniform{N: 20}, InjectionRate: rate,
			WarmupCycles: 1000, MeasureCycles: 8000, DrainCycles: 12000,
			CollectEnergy: true, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	low, high := runAt(0.04), runAt(0.08)
	ratio := high.AvgDynamicMW / low.AvgDynamicMW
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("dynamic power ratio %.3f at 2x load, want ~2", ratio)
	}
	lowLeak := low.LeakagePJ / low.DurationNs
	highLeak := high.LeakagePJ / high.DurationNs
	if math.Abs(lowLeak-highLeak) > 1e-9*(1+lowLeak) {
		t.Errorf("leakage power load-dependent: %v vs %v mW", lowLeak, highLeak)
	}
}

// TestActivityReportValidates covers the conversion's input validation.
func TestActivityReportValidates(t *testing.T) {
	mesh := expert.Mesh(layout.Grid4x5)
	m := power.Default22nm()
	if _, err := m.ActivityReport(mesh, power.Activity{Cycles: 10, ClockGHz: 1}); err == nil {
		t.Error("mismatched counter lengths accepted")
	}
	act := power.Activity{
		Cycles:      10,
		RouterFlits: make([]uint64, mesh.N()),
		LinkFlits:   make([]uint64, mesh.NumDirectedLinks()),
	}
	if _, err := m.ActivityReport(mesh, act); err == nil {
		t.Error("zero clock accepted")
	}
	act.ClockGHz = 3.0
	rep, err := m.ActivityReport(mesh, act)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DynamicPJ != 0 || rep.LeakagePJ <= 0 {
		t.Errorf("idle activity: dynamic %v (want 0), leakage %v (want > 0)", rep.DynamicPJ, rep.LeakagePJ)
	}
}
