// Package fullsys models the paper's full-system configuration (Table
// IV): 64 out-of-order cores on four chiplets, each chiplet with a 4x4
// mesh NoC at 3.8 GHz, stacked over a 20-router NoI whose topology is
// under evaluation, connected through clock-domain crossings (CDCs).
// Memory controllers attach to the NoI edge-column routers.
//
// PARSEC workloads are modelled as trace-parameterized traffic (see
// parsec.go): per-benchmark L2 miss intensity and coherence/memory mix
// drive injection into the simulated hierarchical network, and execution
// time follows a CPI model in which the exposed network latency of
// misses adds to a base CPI. This is the documented substitution for
// gem5 full-system simulation (DESIGN.md).
package fullsys

import (
	"fmt"

	"netsmith/internal/layout"
	"netsmith/internal/route"
	"netsmith/internal/sim"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
	"netsmith/internal/vc"
)

// System is a combined NoC+NoI network ready for simulation.
type System struct {
	// Net is the combined 84-router network: routers [0, 20) are the NoI
	// (in the NoI topology's own numbering), routers [20, 84) are NoC
	// mesh routers, one per core.
	Net *topo.Topology
	// NoI is the interposer topology under evaluation.
	NoI *topo.Topology
	// CoreRouters lists the 64 NoC router ids; MCRouters the NoI routers
	// hosting memory controllers.
	CoreRouters []int
	MCRouters   []int
	// NodeRate scales router service rates: NoC routers run at the base
	// 3.8 GHz, NoI routers at their class clock.
	NodeRate []float64
	// ExtraLinkLatency holds the CDC penalty on NoC<->NoI links.
	ExtraLinkLatency map[[2]int]int

	Routing *route.Routing
	VC      *vc.Assignment
}

// NoCClockGHz is the chiplet NoC and core clock (Table IV).
const NoCClockGHz = 3.8

// CDCLatencyCycles is the clock-domain-crossing penalty per traversal
// (Table IV: 2-cycle CDC latency).
const CDCLatencyCycles = 2

const (
	noiCount  = 20
	coreCount = 64
	coreBase  = noiCount // first NoC router id
)

// coreID returns the combined-network id of the core at global core-grid
// position (row, col) in the 8x8 arrangement (4 chiplets of 4x4).
func coreID(row, col int) int { return coreBase + row*8 + col }

// noiColumnsToCoreCols maps a NoI column to the core-grid columns it
// serves: edge NoI columns serve one core column (plus two MCs), middle
// columns serve two.
func noiColumnsToCoreCols(c int) []int {
	switch c {
	case 0:
		return []int{0}
	case 1:
		return []int{1, 2}
	case 2:
		return []int{3, 4}
	case 3:
		return []int{5, 6}
	case 4:
		return []int{7}
	default:
		panic("fullsys: NoI column out of range")
	}
}

// Build assembles the full system around a 20-router (4x5) NoI topology
// and prepares MCLB routing (with the CDC double-back filter) and a
// verified deadlock-free VC assignment. NetSmith topologies use MCLB;
// use BuildExpert for the baseline heuristic.
func Build(noi *topo.Topology, seed int64) (*System, error) {
	return build(noi, seed, false)
}

// BuildExpert is Build with the expert-topology routing heuristic:
// random selection among CDC-filtered shortest paths whose NoI segment
// obeys the no-double-back-turns rule.
func BuildExpert(noi *topo.Topology, seed int64) (*System, error) {
	return build(noi, seed, true)
}

func build(noi *topo.Topology, seed int64, expertHeuristic bool) (*System, error) {
	if noi.Grid.Rows != 4 || noi.Grid.Cols != 5 {
		return nil, fmt.Errorf("fullsys: NoI must be 4x5, got %s", noi.Grid)
	}
	// The combined network lives on a synthetic grid (positions are not
	// meaningful; link-length constraints do not apply here).
	g := layout.NewGrid(7, 12)
	net := topo.New(noi.Name+"+fullsys", g, layout.Large)

	// NoI links carry over with the same ids.
	for _, l := range noi.Links() {
		net.AddLink(l.From, l.To)
	}
	// Four chiplets of 4x4 mesh over the 8x8 core grid. Chiplet
	// boundaries fall between rows 3/4 and cols 3/4: mesh links do not
	// cross them (chiplets are separate dies).
	for row := 0; row < 8; row++ {
		for col := 0; col < 8; col++ {
			if col+1 < 8 && col != 3 {
				net.AddLink(coreID(row, col), coreID(row, col+1))
				net.AddLink(coreID(row, col+1), coreID(row, col))
			}
			if row+1 < 8 && row != 3 {
				net.AddLink(coreID(row, col), coreID(row+1, col))
				net.AddLink(coreID(row+1, col), coreID(row, col))
			}
		}
	}
	sys := &System{
		NoI:              noi,
		Net:              net,
		NodeRate:         make([]float64, noiCount+coreCount),
		ExtraLinkLatency: map[[2]int]int{},
	}
	// CDC links: each core's NoC router connects to its NoI router.
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			noiRouter := noi.Grid.Router(r, c)
			for _, coreCol := range noiColumnsToCoreCols(c) {
				for _, coreRow := range []int{2 * r, 2*r + 1} {
					core := coreID(coreRow, coreCol)
					net.AddLink(core, noiRouter)
					net.AddLink(noiRouter, core)
					sys.ExtraLinkLatency[[2]int{core, noiRouter}] = CDCLatencyCycles
					sys.ExtraLinkLatency[[2]int{noiRouter, core}] = CDCLatencyCycles
				}
			}
		}
	}
	for i := 0; i < noiCount; i++ {
		sys.NodeRate[i] = noi.Class.ClockGHz() / NoCClockGHz
	}
	for i := coreBase; i < coreBase+coreCount; i++ {
		sys.NodeRate[i] = 1.0
		sys.CoreRouters = append(sys.CoreRouters, i)
	}
	sys.MCRouters = noi.Grid.MemoryControllerRouters()

	// Routing: shortest paths filtered to those that do not double back
	// between NoC and NoI (minimizing CDC crossings), then MCLB.
	ps, err := route.AllShortestPaths(net, 0)
	if err != nil {
		return nil, err
	}
	filtered, _ := ps.Filter(noCDCDoubleBack)
	if expertHeuristic {
		// Expert baselines: NDBT on the NoI segment, random choice among
		// the remaining shortest paths (the paper's baseline routing).
		ndbtFiltered, _ := filtered.Filter(func(p route.Path) bool {
			return noiSegmentMonotoneX(noi, p)
		})
		sys.Routing = route.RandomSelection("NDBT", ndbtFiltered, seed)
	} else {
		sys.Routing = route.MCLBOnPaths(filtered, route.MCLBOptions{Seed: seed, Restarts: 2, Sweeps: 10})
	}
	if err := sys.Routing.Validate(net); err != nil {
		return nil, err
	}
	sys.VC, err = vc.Assign(sys.Routing, vc.Options{Seed: seed, Tries: 2})
	if err != nil {
		return nil, err
	}
	if err := sys.VC.Verify(sys.Routing); err != nil {
		return nil, err
	}
	return sys, nil
}

// noCDCDoubleBack rejects paths that cross between the NoC and NoI
// domains more than twice (enter + leave), the paper's full-system path
// constraint.
func noCDCDoubleBack(p route.Path) bool {
	transitions := 0
	for i := 0; i+1 < len(p); i++ {
		if isNoI(p[i]) != isNoI(p[i+1]) {
			transitions++
		}
	}
	return transitions <= 2
}

func isNoI(r int) bool { return r < noiCount }

// noiSegmentMonotoneX reports whether the NoI portion of a combined-
// network path never reverses its horizontal direction (the expert
// no-double-back-turns rule applied to interposer hops only).
func noiSegmentMonotoneX(noi *topo.Topology, p route.Path) bool {
	dir := 0
	for i := 0; i+1 < len(p); i++ {
		if !isNoI(p[i]) || !isNoI(p[i+1]) {
			continue
		}
		_, c0 := noi.Grid.Pos(p[i])
		_, c1 := noi.Grid.Pos(p[i+1])
		switch {
		case c1 > c0:
			if dir < 0 {
				return false
			}
			dir = 1
		case c1 < c0:
			if dir > 0 {
				return false
			}
			dir = -1
		}
	}
	return true
}

// SimConfig builds a simulator configuration for this system.
func (s *System) SimConfig(pattern traffic.Pattern, rate float64, seed int64) sim.Config {
	return sim.Config{
		Topo:             s.Net,
		Routing:          s.Routing,
		VC:               s.VC,
		NumVCs:           10, // MESI two-level: 10 total VCs (Table IV)
		Pattern:          pattern,
		InjectionRate:    rate,
		ClockGHz:         NoCClockGHz,
		NodeRate:         s.NodeRate,
		ExtraLinkLatency: s.ExtraLinkLatency,
		Seed:             seed,
	}
}
