package fullsys

import (
	"math/rand"
	"sort"

	"netsmith/internal/sim"
	"netsmith/internal/traffic"
)

// Benchmark is a trace-parameterized PARSEC workload. The parameters are
// synthetic equivalents distilled from the PARSEC characterization
// (Bienia et al., PACT 2008) at 64 threads with multi-megabyte last-level
// caches: L2MPKI is the L2 miss intensity (misses per kilo-instruction,
// which scales network load), CoherenceFrac the fraction of network
// traffic that is core-to-core coherence rather than memory
// request/reply, and IPC the cores' base instructions per cycle when the
// network is ideal.
type Benchmark struct {
	Name          string
	L2MPKI        float64
	CoherenceFrac float64
	IPC           float64
}

// Benchmarks returns the 12 PARSEC workloads the paper simulates (all
// except vips), in increasing order of L2 misses per instruction — the
// X-axis order of Figure 8.
func Benchmarks() []Benchmark {
	b := []Benchmark{
		{Name: "swaptions", L2MPKI: 0.4, CoherenceFrac: 0.30, IPC: 1.6},
		{Name: "blackscholes", L2MPKI: 0.7, CoherenceFrac: 0.25, IPC: 1.5},
		{Name: "bodytrack", L2MPKI: 1.5, CoherenceFrac: 0.40, IPC: 1.3},
		{Name: "freqmine", L2MPKI: 2.2, CoherenceFrac: 0.35, IPC: 1.2},
		{Name: "raytrace", L2MPKI: 2.8, CoherenceFrac: 0.30, IPC: 1.2},
		{Name: "x264", L2MPKI: 3.6, CoherenceFrac: 0.45, IPC: 1.1},
		{Name: "fluidanimate", L2MPKI: 4.5, CoherenceFrac: 0.50, IPC: 1.0},
		{Name: "ferret", L2MPKI: 5.5, CoherenceFrac: 0.40, IPC: 1.0},
		{Name: "dedup", L2MPKI: 7.0, CoherenceFrac: 0.45, IPC: 0.9},
		{Name: "facesim", L2MPKI: 8.5, CoherenceFrac: 0.40, IPC: 0.9},
		{Name: "streamcluster", L2MPKI: 11.0, CoherenceFrac: 0.55, IPC: 0.8},
		{Name: "canneal", L2MPKI: 15.0, CoherenceFrac: 0.50, IPC: 0.7},
	}
	sort.Slice(b, func(i, j int) bool { return b[i].L2MPKI < b[j].L2MPKI })
	return b
}

// workloadPattern mixes coherence (core-to-core) and memory
// (core-to-MC request/reply) traffic per the benchmark's split.
type workloadPattern struct {
	bench Benchmark
	cores []int
	mcs   []int
	isMC  map[int]bool
}

// NewWorkload builds the benchmark's traffic pattern for a system.
func (s *System) NewWorkload(b Benchmark) traffic.Pattern {
	isMC := make(map[int]bool, len(s.MCRouters))
	for _, m := range s.MCRouters {
		isMC[m] = true
	}
	return &workloadPattern{bench: b, cores: s.CoreRouters, mcs: s.MCRouters, isMC: isMC}
}

// Name implements traffic.Pattern.
func (w *workloadPattern) Name() string { return "parsec/" + w.bench.Name }

// Inject implements traffic.Pattern: only cores inject; a coin weighted
// by CoherenceFrac picks coherence (uniform core target, mixed size) or a
// memory read request (control packet to a uniform MC). Coherence
// targets exclude src itself so an originating core injects on every
// opportunity (the Pattern contract: ok=false is reserved for sources
// that inject nothing, not a random drop).
func (w *workloadPattern) Inject(src int, rng *rand.Rand) (int, int, bool) {
	if !w.Originates(src) {
		return 0, 0, false
	}
	if rng.Float64() < w.bench.CoherenceFrac {
		for i := range w.cores {
			if w.cores[i] == src {
				j := rng.Intn(len(w.cores) - 1)
				if j >= i {
					j++
				}
				flits := traffic.ControlFlits
				if rng.Intn(2) == 0 {
					flits = traffic.DataFlits
				}
				return w.cores[j], flits, true
			}
		}
	}
	return w.mcs[rng.Intn(len(w.mcs))], traffic.ControlFlits, true
}

// Originates implements traffic.Originator: cores originate, MC and NoI
// routers only forward or reply.
func (w *workloadPattern) Originates(src int) bool {
	return src >= coreBase && !w.isMC[src] && len(w.cores) > 1 && len(w.mcs) > 0
}

// OnDeliver implements traffic.Pattern: MC routers answer requests with
// data replies.
func (w *workloadPattern) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) {
	if w.isMC[dst] {
		return src, traffic.DataFlits, true
	}
	return 0, 0, false
}

// RecordTrace samples the benchmark's workload model into a replayable
// (cycle, src, dst, flits) trace of the given length: each cycle every
// core draws the same Bernoulli injection coin the simulator uses at the
// benchmark's injection rate. The result feeds traffic.NewReplay (or
// traffic.WriteTrace for the on-disk form consumed by the registry's
// "trace" pattern).
func (s *System) RecordTrace(b Benchmark, cycles int, seed int64) []traffic.TraceRecord {
	pat := s.NewWorkload(b)
	rng := rand.New(rand.NewSource(seed))
	rate := b.InjectionRate()
	var recs []traffic.TraceRecord
	for cycle := 0; cycle < cycles; cycle++ {
		for _, src := range s.CoreRouters {
			if rng.Float64() >= rate {
				continue
			}
			if dst, flits, ok := pat.Inject(src, rng); ok {
				recs = append(recs, traffic.TraceRecord{Cycle: int64(cycle), Src: src, Dst: dst, Flits: flits})
			}
		}
	}
	return recs
}

// ExecModel converts measured network latency into execution-time terms.
type ExecModel struct {
	// BaseCPI is the core CPI with an ideal (zero-latency) network.
	BaseCPI float64
	// Exposure is the fraction of miss latency that stalls the core
	// (the rest overlaps via memory-level parallelism).
	Exposure float64
	// MemLatencyCycles is the DRAM access time added to network latency
	// on memory misses (in core cycles).
	MemLatencyCycles float64
}

// DefaultExecModel matches a 4-wide OoO core with moderate MLP.
func DefaultExecModel() ExecModel {
	return ExecModel{BaseCPI: 0.55, Exposure: 0.70, MemLatencyCycles: 110}
}

// WorkloadResult is one benchmark x topology measurement.
type WorkloadResult struct {
	Benchmark   Benchmark
	Topology    string
	AvgPacketNs float64
	// CPI is the modelled cycles per instruction; Speedup and
	// LatencyReduction are filled in relative to a baseline (mesh).
	CPI              float64
	Speedup          float64
	LatencyReduction float64
	// NetPowerMW is the combined network's measured average power over
	// the run (dynamic + leakage) and NetEnergyPerFlitPJ the dynamic
	// energy per delivered flit, from the engine's activity counters.
	NetPowerMW         float64
	NetEnergyPerFlitPJ float64
}

// InjectionRate converts the benchmark's miss intensity into offered
// packets per core per cycle: misses/instr x instr/cycle x ~2 packets
// per miss transaction (request + reply or coherence round trip).
func (b Benchmark) InjectionRate() float64 {
	return b.L2MPKI / 1000 * b.IPC * 2
}

// RunWorkload simulates the benchmark on this system and applies the
// execution model.
func (s *System) RunWorkload(b Benchmark, m ExecModel, seed int64, fast bool) (*WorkloadResult, error) {
	cfg := s.SimConfig(s.NewWorkload(b), b.InjectionRate(), seed)
	cfg.CollectEnergy = true
	if fast {
		cfg.WarmupCycles = 1500
		cfg.MeasureCycles = 4000
		cfg.DrainCycles = 8000
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	netCycles := res.AvgLatencyNs * NoCClockGHz // core cycles per packet
	// A miss transaction crosses the network twice (request + reply);
	// memory misses additionally pay DRAM latency. Coherence misses are
	// served by a remote core's cache.
	memFrac := 1 - b.CoherenceFrac
	missLatency := 2*netCycles + memFrac*m.MemLatencyCycles
	cpi := b.IPCtoCPI() + b.L2MPKI/1000*m.Exposure*missLatency
	out := &WorkloadResult{
		Benchmark:   b,
		Topology:    s.NoI.Name,
		AvgPacketNs: res.AvgLatencyNs,
		CPI:         cpi,
	}
	if res.Energy != nil {
		out.NetPowerMW = res.Energy.AvgTotalMW
		out.NetEnergyPerFlitPJ = res.Energy.PerFlitPJ()
	}
	return out, nil
}

// IPCtoCPI returns the benchmark's ideal-network CPI.
func (b Benchmark) IPCtoCPI() float64 { return 1 / b.IPC }
