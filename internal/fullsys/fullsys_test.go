package fullsys

import (
	"math/rand"
	"sync"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/traffic"
)

var (
	meshSysOnce sync.Once
	meshSys     *System
	meshSysErr  error
)

// buildMeshSystem builds the 84-router mesh system once and shares it
// across tests (construction involves 84-node path enumeration + MCLB).
func buildMeshSystem(t *testing.T) *System {
	t.Helper()
	meshSysOnce.Do(func() {
		meshSys, meshSysErr = Build(expert.Mesh(layout.Grid4x5), 1)
	})
	if meshSysErr != nil {
		t.Fatal(meshSysErr)
	}
	return meshSys
}

func TestBuildStructure(t *testing.T) {
	sys := buildMeshSystem(t)
	if sys.Net.N() != 84 {
		t.Fatalf("full system has %d routers, want 84", sys.Net.N())
	}
	if len(sys.CoreRouters) != 64 {
		t.Errorf("cores = %d, want 64", len(sys.CoreRouters))
	}
	if len(sys.MCRouters) != 8 {
		t.Errorf("MC routers = %d, want 8", len(sys.MCRouters))
	}
	if !sys.Net.IsConnected() {
		t.Fatal("combined network must be strongly connected")
	}
	// Every core has exactly one CDC link to the NoI.
	for _, core := range sys.CoreRouters {
		cdc := 0
		for _, v := range sys.Net.Out(core) {
			if v < 20 {
				cdc++
			}
		}
		if cdc != 1 {
			t.Errorf("core %d has %d CDC links, want 1", core, cdc)
		}
	}
	// NoI router core counts: middle columns 4, edge columns 2.
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			noi := layout.Grid4x5.Router(r, c)
			cores := 0
			for _, v := range sys.Net.Out(noi) {
				if v >= 20 {
					cores++
				}
			}
			want := 4
			if c == 0 || c == 4 {
				want = 2
			}
			if cores != want {
				t.Errorf("NoI router (%d,%d) serves %d cores, want %d", r, c, cores, want)
			}
		}
	}
	// Chiplet isolation: no mesh link crosses the chiplet boundary.
	if sys.Net.Has(coreID(0, 3), coreID(0, 4)) || sys.Net.Has(coreID(3, 0), coreID(4, 0)) {
		t.Error("NoC mesh links must not cross chiplet boundaries")
	}
}

func TestBuildRejectsWrongGrid(t *testing.T) {
	if _, err := Build(expert.Mesh(layout.Grid6x5), 1); err == nil {
		t.Error("non-4x5 NoI must be rejected")
	}
}

func TestNodeRatesAndCDC(t *testing.T) {
	sys := buildMeshSystem(t)
	for i := 0; i < 20; i++ {
		want := layout.Small.ClockGHz() / NoCClockGHz // mesh is small class
		if sys.NodeRate[i] != want {
			t.Fatalf("NoI rate %v, want %v", sys.NodeRate[i], want)
		}
	}
	for i := 20; i < 84; i++ {
		if sys.NodeRate[i] != 1.0 {
			t.Fatal("NoC routers run at base clock")
		}
	}
	if len(sys.ExtraLinkLatency) != 2*64 {
		t.Errorf("CDC latency entries = %d, want 128", len(sys.ExtraLinkLatency))
	}
}

func TestRoutingAvoidsCDCZigzag(t *testing.T) {
	sys := buildMeshSystem(t)
	for s := 0; s < 84; s++ {
		for d := 0; d < 84; d++ {
			if s == d {
				continue
			}
			p := sys.Routing.PathFor(s, d)
			transitions := 0
			for i := 0; i+1 < len(p); i++ {
				if isNoI(p[i]) != isNoI(p[i+1]) {
					transitions++
				}
			}
			if transitions > 2 {
				t.Fatalf("path (%d,%d) zigzags across CDC %d times: %v", s, d, transitions, p)
			}
		}
	}
}

func TestWorkloadPattern(t *testing.T) {
	sys := buildMeshSystem(t)
	b := Benchmarks()[0]
	w := sys.NewWorkload(b)
	rng := rand.New(rand.NewSource(1))
	coh, mem := 0, 0
	for i := 0; i < 4000; i++ {
		src := sys.CoreRouters[rng.Intn(64)]
		dst, flits, ok := w.Inject(src, rng)
		if !ok {
			continue
		}
		if dst < 20 {
			mem++
			if flits != 1 {
				t.Fatal("memory requests are control packets")
			}
		} else {
			coh++
		}
	}
	frac := float64(coh) / float64(coh+mem)
	if frac < b.CoherenceFrac-0.1 || frac > b.CoherenceFrac+0.1 {
		t.Errorf("coherence fraction %v far from %v", frac, b.CoherenceFrac)
	}
	// NoI routers do not inject.
	if _, _, ok := w.Inject(5, rng); ok {
		t.Error("NoI routers must not originate workload traffic")
	}
	// MC delivery generates a data reply.
	if dst, flits, ok := w.OnDeliver(30, sys.MCRouters[0], rng); !ok || dst != 30 || flits != 9 {
		t.Error("MC must reply with a 9-flit data packet")
	}
}

// TestWorkloadInjectContract is the regression test for the
// Inject-contract fix: an originating core must inject on EVERY
// opportunity (the old code randomly returned ok=false when the
// coherence draw picked the source itself, which dropped offered load
// and miscounted injecting nodes), and the static Originator answer
// must partition cores from MC/NoI routers exactly.
func TestWorkloadInjectContract(t *testing.T) {
	sys := buildMeshSystem(t)
	b := Benchmarks()[5] // mid-range coherence fraction
	w := sys.NewWorkload(b)
	o, ok := w.(traffic.Originator)
	if !ok {
		t.Fatal("workload pattern must implement traffic.Originator")
	}
	isCore := map[int]bool{}
	for _, c := range sys.CoreRouters {
		isCore[c] = true
	}
	rng := rand.New(rand.NewSource(9))
	for src := 0; src < sys.Net.N(); src++ {
		if o.Originates(src) != isCore[src] {
			t.Errorf("Originates(%d) = %v, want %v", src, o.Originates(src), isCore[src])
		}
	}
	for _, src := range sys.CoreRouters {
		for i := 0; i < 500; i++ {
			dst, flits, ok := w.Inject(src, rng)
			if !ok {
				t.Fatalf("core %d dropped injection opportunity %d", src, i)
			}
			if dst == src || flits < 1 {
				t.Fatalf("core %d: Inject = (%d, %d)", src, dst, flits)
			}
		}
	}
}

func TestRecordTraceReplays(t *testing.T) {
	sys := buildMeshSystem(t)
	b := Benchmarks()[len(Benchmarks())-1] // highest injection rate
	recs := sys.RecordTrace(b, 2000, 7)
	if len(recs) == 0 {
		t.Fatal("trace recorded no packets")
	}
	for _, r := range recs {
		if r.Cycle < 0 || r.Cycle >= 2000 || r.Flits < 1 || r.Src == r.Dst {
			t.Fatalf("bad record %+v", r)
		}
	}
	// Deterministic for a seed.
	again := sys.RecordTrace(b, 2000, 7)
	if len(again) != len(recs) || again[0] != recs[0] || again[len(again)-1] != recs[len(recs)-1] {
		t.Error("RecordTrace is not deterministic")
	}
	// The trace feeds straight into the replay pattern.
	rp, err := traffic.NewReplay("parsec", sys.Net.N(), recs, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	replayed := 0
	for _, src := range sys.CoreRouters {
		if !rp.Originates(src) {
			continue
		}
		if _, _, ok := rp.Inject(src, rng); ok {
			replayed++
		}
	}
	if replayed == 0 {
		t.Error("no core replayed a recorded packet")
	}
}

func TestBenchmarksOrdered(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("12 PARSEC benchmarks expected (vips excluded), got %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].L2MPKI < bs[i-1].L2MPKI {
			t.Fatal("benchmarks must be ordered by L2 miss intensity")
		}
	}
	for _, b := range bs {
		if b.InjectionRate() <= 0 || b.InjectionRate() > 0.05 {
			t.Errorf("%s: implausible injection rate %v", b.Name, b.InjectionRate())
		}
	}
}

func TestRunWorkloadProducesLatency(t *testing.T) {
	sys := buildMeshSystem(t)
	b := Benchmarks()[len(Benchmarks())-1] // canneal: heaviest
	res, err := sys.RunWorkload(b, DefaultExecModel(), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPacketNs <= 0 {
		t.Fatal("no packet latency measured")
	}
	if res.CPI <= b.IPCtoCPI() {
		t.Error("network latency must add to base CPI")
	}
	// Per-workload energy: the combined NoC+NoI run always collects
	// activity counters, so each PARSEC measurement carries measured
	// network power and per-flit energy.
	if res.NetPowerMW <= 0 || res.NetEnergyPerFlitPJ <= 0 {
		t.Errorf("workload energy not measured: power %v mW, %v pJ/flit",
			res.NetPowerMW, res.NetEnergyPerFlitPJ)
	}
}

func TestFullSystemSimulates(t *testing.T) {
	sys := buildMeshSystem(t)
	cfg := sys.SimConfig(sys.NewWorkload(Benchmarks()[5]), 0.005, 7)
	cfg.WarmupCycles = 800
	cfg.MeasureCycles = 2000
	cfg.DrainCycles = 5000
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("full system stalled")
	}
	if res.Measured == 0 {
		t.Fatal("nothing measured")
	}
}
