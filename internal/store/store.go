// Package store is a content-addressed on-disk result cache for the
// deterministic cores of the system. A cached artifact is addressed by
// the SHA-256 hash of a canonical JSON encoding of its request — the
// full set of inputs that determine the result bit-for-bit (topology or
// synthesis config+seed, pattern name+params, offered rate, simulator
// knobs) plus the store schema version. Because matrix cells and
// fixed-budget synthesis runs are bit-identical across reruns and
// GOMAXPROCS (the determinism contract pinned since PR 2/3), a cache
// hit IS the result: callers get back exactly the bytes a fresh run
// would produce.
//
// Layout on disk:
//
//	<dir>/objects/<hh>/<hash>.json   one self-describing JSON blob per
//	                                 artifact ({"key": ..., "value": ...})
//	<dir>/index.jsonl                best-effort append-only catalog
//	                                 (one JSON line per first Put)
//
// Blob writes are atomic (temp file + rename) and content-addressed, so
// concurrent writers — goroutines of one process or separate shard
// processes sharing a directory — can only ever race to write identical
// bytes. Get never consults the index; the index is a convenience
// catalog appended best-effort on Put (O(1), deduplicated on read) and
// can always be reconstructed from the objects tree.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// SchemaVersion is baked into every cache key. Bump it whenever the
// encoding of stored values or the meaning of key payloads changes;
// old entries then simply stop matching (no migration, no stale hits).
// v2: sim.Result gained robustness fields (delivered fraction, drop and
// reroute counters, per-phase latency) and cell payloads a fault key.
const SchemaVersion = 2

// Key identifies a cached artifact: a kind namespace, the schema
// version, and a canonical request payload. The payload must marshal
// deterministically — structs with fixed field order, maps (encoding/json
// sorts keys), numbers and strings — and must include every input that
// influences the cached value.
type Key struct {
	Kind    string `json:"kind"`
	Schema  int    `json:"schema"`
	Payload any    `json:"payload"`
}

// NewKey returns a Key for the payload under the current SchemaVersion.
func NewKey(kind string, payload any) Key {
	return Key{Kind: kind, Schema: SchemaVersion, Payload: payload}
}

// Hash returns the hex SHA-256 of the key's canonical JSON encoding.
func (k Key) Hash() (string, error) {
	b, err := json.Marshal(k)
	if err != nil {
		return "", fmt.Errorf("store: marshal key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Store is a content-addressed cache rooted at a directory. It is safe
// for concurrent use by multiple goroutines; separate processes may
// share a directory (writes are atomic renames, the index is
// append-only).
type Store struct {
	dir string
	mu  sync.Mutex      // guards indexed and index appends in this process
	idx map[string]bool // hashes already cataloged by this process
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, idx: map[string]bool{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entry is the on-disk blob format: the full key is stored alongside
// the value so blobs are self-describing and auditable.
type entry struct {
	Key   Key             `json:"key"`
	Value json.RawMessage `json:"value"`
}

func (s *Store) objectPath(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash+".json")
}

// Get looks the key up and, on a hit, unmarshals the stored value into
// out (a pointer). A missing or unreadable blob is a miss, not an
// error: the caller recomputes and overwrites.
func (s *Store) Get(k Key, out any) (bool, error) {
	hash, err := k.Hash()
	if err != nil {
		return false, err
	}
	b, err := os.ReadFile(s.objectPath(hash))
	if err != nil {
		return false, nil // miss (not found, or unreadable: recompute)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return false, nil // corrupt blob: treat as miss, Put will rewrite
	}
	if e.Key.Kind != k.Kind || e.Key.Schema != k.Schema {
		return false, nil
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		return false, nil
	}
	return true, nil
}

// Put stores the value under the key, atomically. Re-putting an
// existing key is a no-op rewrite of identical bytes (content
// addressing: same key, same deterministic value).
func (s *Store) Put(k Key, v any) error {
	hash, err := k.Hash()
	if err != nil {
		return err
	}
	val, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal value: %w", err)
	}
	blob, err := json.Marshal(entry{Key: k, Value: val})
	if err != nil {
		return fmt.Errorf("store: marshal entry: %w", err)
	}
	path := s.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(path, blob); err != nil {
		return err
	}
	s.indexAdd(hash, k.Kind)
	return nil
}

// atomicWrite writes data to path via a temp file + rename, so readers
// never observe a partial blob. The blob is made world-readable
// (CreateTemp defaults to 0600, which would silently turn a store
// directory shared between users — shard processes on a network
// filesystem — into all-miss EACCES reads for everyone but the
// writer).
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Chmod(0o644)
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("store: %w", werr)
		}
		return fmt.Errorf("store: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// IndexEntry catalogs one stored object (one line of index.jsonl).
type IndexEntry struct {
	Hash    string `json:"hash"`
	Kind    string `json:"kind"`
	Created string `json:"created"` // RFC 3339, time of first Put in this catalog
}

// indexAdd appends one catalog line to index.jsonl — O(1) per Put, no
// read-rewrite of a growing file on the matrix workers' hot path. The
// index is advisory: Get never reads it, duplicate lines from
// cross-process races are deduplicated on read, and a lost append
// loses nothing but catalog cosmetics.
func (s *Store) indexAdd(hash, kind string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx[hash] {
		return
	}
	line, err := json.Marshal(IndexEntry{
		Hash: hash, Kind: kind,
		Created: time.Now().UTC().Format(time.RFC3339),
	})
	if err != nil {
		return
	}
	f, err := os.OpenFile(filepath.Join(s.dir, "index.jsonl"),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	_, werr := f.Write(append(line, '\n'))
	if f.Close() == nil && werr == nil {
		s.idx[hash] = true
	}
}

// Index returns the catalog of stored objects, keyed by content hash
// (lines deduplicated, first Put wins; malformed lines skipped).
func (s *Store) Index() map[string]IndexEntry {
	idx := map[string]IndexEntry{}
	b, err := os.ReadFile(filepath.Join(s.dir, "index.jsonl"))
	if err != nil {
		return idx
	}
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		var e IndexEntry
		if json.Unmarshal([]byte(line), &e) == nil && e.Hash != "" {
			if _, ok := idx[e.Hash]; !ok {
				idx[e.Hash] = e
			}
		}
	}
	return idx
}

// Len counts objects actually on disk (the ground truth, not the
// advisory index).
func (s *Store) Len() (int, error) {
	count := 0
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			count++
		}
		return nil
	})
	return count, err
}

// Hashes lists the content hashes of all objects on disk, sorted.
func (s *Store) Hashes() ([]string, error) {
	var out []string
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			base := filepath.Base(path)
			out = append(out, base[:len(base)-len(".json")])
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
