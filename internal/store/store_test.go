package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

type payload struct {
	Name string  `json:"name"`
	Rate float64 `json:"rate"`
	Seed int64   `json:"seed"`
}

type value struct {
	Latency float64   `json:"latency"`
	Counts  []uint64  `json:"counts"`
	Curve   []float64 `json:"curve"`
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("test-cell", payload{Name: "uniform", Rate: 0.08, Seed: 42})
	var got value
	if hit, err := s.Get(k, &got); err != nil || hit {
		t.Fatalf("empty store: hit=%v err=%v", hit, err)
	}
	want := value{Latency: 3.2894871293, Counts: []uint64{1, 2, 1 << 62}, Curve: []float64{0.1, 0.2}}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	if hit, err := s.Get(k, &got); err != nil || !hit {
		t.Fatalf("after put: hit=%v err=%v", hit, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := NewKey("cell", payload{Name: "uniform", Rate: 0.08, Seed: 42})
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Identical key, independently constructed, must hash identically.
	if h1, _ := NewKey("cell", payload{Name: "uniform", Rate: 0.08, Seed: 42}).Hash(); h1 != h0 {
		t.Fatalf("equal keys hash differently: %s vs %s", h0, h1)
	}
	// Any input change must change the hash.
	variants := []Key{
		NewKey("cell2", payload{Name: "uniform", Rate: 0.08, Seed: 42}),
		NewKey("cell", payload{Name: "shuffle", Rate: 0.08, Seed: 42}),
		NewKey("cell", payload{Name: "uniform", Rate: 0.081, Seed: 42}),
		NewKey("cell", payload{Name: "uniform", Rate: 0.08, Seed: 43}),
		{Kind: "cell", Schema: SchemaVersion + 1, Payload: payload{Name: "uniform", Rate: 0.08, Seed: 42}},
	}
	for i, v := range variants {
		h, err := v.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h == h0 {
			t.Fatalf("variant %d hashes like the base key", i)
		}
	}
}

func TestSchemaMismatchIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("cell", payload{Name: "uniform"})
	if err := s.Put(k, value{Latency: 1}); err != nil {
		t.Fatal(err)
	}
	// Same payload under a different schema version misses.
	k2 := Key{Kind: "cell", Schema: SchemaVersion + 1, Payload: payload{Name: "uniform"}}
	var got value
	if hit, err := s.Get(k2, &got); err != nil || hit {
		t.Fatalf("bumped schema must miss: hit=%v err=%v", hit, err)
	}
}

func TestCorruptBlobIsMissAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("cell", payload{Name: "uniform"})
	if err := s.Put(k, value{Latency: 7}); err != nil {
		t.Fatal(err)
	}
	hash, _ := k.Hash()
	path := filepath.Join(dir, "objects", hash[:2], hash+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got value
	if hit, _ := s.Get(k, &got); hit {
		t.Fatal("corrupt blob must read as a miss")
	}
	// A fresh Put repairs it.
	if err := s.Put(k, value{Latency: 7}); err != nil {
		t.Fatal(err)
	}
	if hit, _ := s.Get(k, &got); !hit || got.Latency != 7 {
		t.Fatalf("after repair: hit=%v got=%+v", hit, got)
	}
}

// TestConcurrentAccess hammers one store from many goroutines mixing
// hits, misses and overlapping puts of identical content; run under
// -race (the CI race leg covers internal/store).
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, keys = 8, 24
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := 0; i < keys; i++ {
					k := NewKey("cell", payload{Name: fmt.Sprintf("p%d", i), Seed: int64(i)})
					want := value{Latency: float64(i), Counts: []uint64{uint64(i)}}
					var got value
					hit, err := s.Get(k, &got)
					if err != nil {
						errs <- err
						return
					}
					if hit && got.Latency != want.Latency {
						errs <- fmt.Errorf("key %d: got latency %v want %v", i, got.Latency, want.Latency)
						return
					}
					if !hit {
						if err := s.Put(k, want); err != nil {
							errs <- err
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != keys {
		t.Fatalf("object count: %d (err %v), want %d", n, err, keys)
	}
	hashes, err := s.Hashes()
	if err != nil || len(hashes) != keys {
		t.Fatalf("hashes: %d (err %v), want %d", len(hashes), err, keys)
	}
}

func TestIndexIsAdvisory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("synth", payload{Name: "ns"})
	if err := s.Put(k, value{Latency: 1}); err != nil {
		t.Fatal(err)
	}
	hash, _ := k.Hash()
	if idx := s.Index(); len(idx) != 1 || idx[hash].Kind != "synth" {
		t.Fatalf("index entries: %v, want one %q entry", idx, hash)
	}
	// Re-putting must not append a duplicate catalog line.
	if err := s.Put(k, value{Latency: 1}); err != nil {
		t.Fatal(err)
	}
	if idx := s.Index(); len(idx) != 1 {
		t.Fatalf("index entries after re-put: %d, want 1", len(idx))
	}
	// Deleting the index must not affect lookups.
	if err := os.Remove(filepath.Join(dir, "index.jsonl")); err != nil {
		t.Fatal(err)
	}
	var got value
	if hit, err := s.Get(k, &got); err != nil || !hit {
		t.Fatalf("get without index: hit=%v err=%v", hit, err)
	}
}
