package route

import (
	"strings"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
)

func TestNextHopTablesConsistent(t *testing.T) {
	m := mesh4x5()
	r, err := MCLB(m, MCLBOptions{Seed: 1, Restarts: 2, Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	tables := r.NextHopTables()
	// Walking the tables from any source must reproduce the selected
	// path exactly.
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s == d {
				continue
			}
			want := r.Table[s][d]
			at := s
			var got Path
			got = append(got, s)
			for at != d {
				next := tables[at][s][d]
				if next < 0 {
					t.Fatalf("table walk (%d,%d) stuck at %d", s, d, at)
				}
				got = append(got, next)
				at = next
				if len(got) > 20 {
					t.Fatalf("table walk (%d,%d) loops", s, d)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("table walk (%d,%d) = %v, want %v", s, d, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("table walk (%d,%d) = %v, want %v", s, d, got, want)
				}
			}
		}
	}
}

func TestDestinationTables(t *testing.T) {
	kite, err := expert.Get(expert.NameKiteSmall, layout.Grid4x5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MCLB(kite, MCLBOptions{Seed: 2, Restarts: 2, Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	tables, ok := r.DestinationTables()
	if !ok {
		// Source-dependent routing is legal; the full tables must then
		// be used. Nothing further to assert.
		t.Log("routing is source dependent; destination tables inapplicable")
		return
	}
	// If consistent, walking destination tables reaches every target.
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s == d {
				continue
			}
			at, hops := s, 0
			for at != d {
				at = tables[at][d]
				hops++
				if at < 0 || hops > 20 {
					t.Fatalf("destination table walk (%d,%d) failed", s, d)
				}
			}
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(3, []int{-1, 4, -1, -1, 4})
	if !strings.Contains(out, "router 3:") || !strings.Contains(out, "1->4") {
		t.Errorf("format output %q", out)
	}
	if strings.Contains(out, "0->") {
		t.Error("unreachable destinations must be omitted")
	}
}
