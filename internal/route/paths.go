// Package route implements routing for NetSmith topologies: enumeration
// of all shortest paths per flow (the static input to the MCLB
// formulation of the paper's Table III), the expert-topology heuristic
// "no double-back turns" (NDBT) routing, and MCLB — minimum maximum
// channel load path selection — solved by multi-restart local search,
// certified by the hand-rolled MIP solver on small instances and
// lower-bounded by its LP relaxation.
package route

import (
	"fmt"
	"math/rand"

	"netsmith/internal/topo"
)

// Path is a router sequence from source to destination (inclusive).
type Path []int

// Hops returns the number of links traversed.
func (p Path) Hops() int { return len(p) - 1 }

// Links yields the directed links along the path.
func (p Path) Links() [][2]int {
	out := make([][2]int, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		out = append(out, [2]int{p[i], p[i+1]})
	}
	return out
}

// clone deep-copies the path.
func (p Path) clone() Path { return append(Path(nil), p...) }

// PathSet holds, for every ordered flow (s, d), the candidate shortest
// paths P[s][d] (the set P of the MCLB formulation).
type PathSet struct {
	N     int
	Paths [][][]Path // [src][dst] -> candidate shortest paths
}

// MaxPathsPerFlow caps enumeration per flow; topologies with massive
// path diversity keep a deterministic sample.
const MaxPathsPerFlow = 24

// AllShortestPaths enumerates all shortest paths for every ordered pair
// by building each source's BFS DAG and walking it depth-first. Flows
// with more than maxPerFlow shortest paths keep a deterministic subset
// (maxPerFlow <= 0 selects MaxPathsPerFlow).
func AllShortestPaths(t *topo.Topology, maxPerFlow int) (*PathSet, error) {
	if maxPerFlow <= 0 {
		maxPerFlow = MaxPathsPerFlow
	}
	n := t.N()
	if !t.IsConnected() {
		return nil, fmt.Errorf("route: topology %s is not strongly connected", t.Name)
	}
	dist := t.ShortestPaths()
	ps := &PathSet{N: n, Paths: make([][][]Path, n)}
	for s := 0; s < n; s++ {
		ps.Paths[s] = make([][]Path, n)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			ps.Paths[s][d] = enumerate(t, dist, s, d, maxPerFlow)
		}
	}
	return ps, nil
}

// enumerate walks the shortest-path DAG from s to d: a hop u->v is on a
// shortest path iff dist[s][u] + 1 + dist[v][d] == dist[s][d].
func enumerate(t *topo.Topology, dist [][]int, s, d, cap int) []Path {
	total := dist[s][d]
	var out []Path
	cur := Path{s}
	var dfs func(u int)
	dfs = func(u int) {
		if len(out) >= cap {
			return
		}
		if u == d {
			out = append(out, cur.clone())
			return
		}
		du := dist[s][u]
		for _, v := range t.Out(u) {
			if du+1+dist[v][d] == total {
				cur = append(cur, v)
				dfs(v)
				cur = cur[:len(cur)-1]
			}
		}
	}
	dfs(s)
	return out
}

// Routing is a single selected path per ordered flow.
type Routing struct {
	Name  string
	N     int
	Table [][]Path // [src][dst]; nil on the diagonal
}

// PathFor returns the selected path for flow (s, d).
func (r *Routing) PathFor(s, d int) Path { return r.Table[s][d] }

// ChannelLoads counts, for every directed link, the number of flows
// routed across it (uniform unit demand per flow, C1 of Table III).
func (r *Routing) ChannelLoads() map[[2]int]int {
	loads := make(map[[2]int]int)
	for s := range r.Table {
		for d := range r.Table[s] {
			if s == d || r.Table[s][d] == nil {
				continue
			}
			for _, l := range r.Table[s][d].Links() {
				loads[l]++
			}
		}
	}
	return loads
}

// MaxChannelLoad returns the maximum channel load (the MCLB objective,
// O1 of Table III).
func (r *Routing) MaxChannelLoad() int {
	max := 0
	for _, v := range r.ChannelLoads() {
		if v > max {
			max = v
		}
	}
	return max
}

// AverageHops returns the mean hop count over all routed flows.
func (r *Routing) AverageHops() float64 {
	total, flows := 0, 0
	for s := range r.Table {
		for d := range r.Table[s] {
			if s == d || r.Table[s][d] == nil {
				continue
			}
			total += r.Table[s][d].Hops()
			flows++
		}
	}
	if flows == 0 {
		return 0
	}
	return float64(total) / float64(flows)
}

// Validate checks that every off-diagonal flow has a path, that paths
// start/end correctly and only use existing links.
func (r *Routing) Validate(t *topo.Topology) error {
	for s := range r.Table {
		for d := range r.Table[s] {
			if s == d {
				continue
			}
			p := r.Table[s][d]
			if p == nil {
				return fmt.Errorf("route: flow (%d,%d) has no path", s, d)
			}
			if p[0] != s || p[len(p)-1] != d {
				return fmt.Errorf("route: flow (%d,%d) path endpoints %v", s, d, p)
			}
			for _, l := range p.Links() {
				if !t.Has(l[0], l[1]) {
					return fmt.Errorf("route: flow (%d,%d) uses missing link %v", s, d, l)
				}
			}
		}
	}
	return nil
}

// SurvivorRouting builds a shortest-path routing over the surviving
// subgraph of a degraded topology: routers for which aliveRouter is
// false and directed links for which aliveLink is false are excluded.
// Flows with no surviving path — including any flow whose endpoint is a
// dead router — get a nil table entry, which the simulator reports as an
// unreachable pair; the result therefore deliberately does NOT satisfy
// Validate, which demands total routings.
//
// Paths are deterministic: a per-source BFS scans out-neighbors in
// ascending router order (the topo.Out contract), so the same topology,
// liveness and flow always yield the same path at any GOMAXPROCS. Either
// predicate may be nil, meaning "everything alive".
func SurvivorRouting(name string, t *topo.Topology, aliveRouter func(r int) bool, aliveLink func(a, b int) bool) *Routing {
	n := t.N()
	routerOK := func(r int) bool { return aliveRouter == nil || aliveRouter(r) }
	linkOK := func(a, b int) bool { return aliveLink == nil || aliveLink(a, b) }
	r := &Routing{Name: name, N: n, Table: make([][]Path, n)}
	parent := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		r.Table[s] = make([]Path, n)
		if !routerOK(s) {
			continue
		}
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.Out(u) {
				if parent[v] >= 0 || !routerOK(v) || !linkOK(u, v) {
					continue
				}
				parent[v] = u
				queue = append(queue, v)
			}
		}
		for d := 0; d < n; d++ {
			if d == s || parent[d] < 0 {
				continue
			}
			var rev Path
			for v := d; v != s; v = parent[v] {
				rev = append(rev, v)
			}
			p := make(Path, 0, len(rev)+1)
			p = append(p, s)
			for i := len(rev) - 1; i >= 0; i-- {
				p = append(p, rev[i])
			}
			r.Table[s][d] = p
		}
	}
	return r
}

// RandomSelection picks one path per flow uniformly at random — the
// "random selection of paths amongst the valid choices" used with
// expert-topology routing.
func RandomSelection(name string, ps *PathSet, seed int64) *Routing {
	rng := rand.New(rand.NewSource(seed))
	r := &Routing{Name: name, N: ps.N, Table: make([][]Path, ps.N)}
	for s := 0; s < ps.N; s++ {
		r.Table[s] = make([]Path, ps.N)
		for d := 0; d < ps.N; d++ {
			if s == d {
				continue
			}
			cands := ps.Paths[s][d]
			r.Table[s][d] = cands[rng.Intn(len(cands))]
		}
	}
	return r
}

// Filter returns a new PathSet keeping only paths accepted by keep;
// flows whose candidates are all rejected fall back to their full
// candidate list (counted in fallbacks), so the result is always
// routable.
func (ps *PathSet) Filter(keep func(Path) bool) (*PathSet, int) {
	out := &PathSet{N: ps.N, Paths: make([][][]Path, ps.N)}
	fallbacks := 0
	for s := 0; s < ps.N; s++ {
		out.Paths[s] = make([][]Path, ps.N)
		for d := 0; d < ps.N; d++ {
			if s == d {
				continue
			}
			var kept []Path
			for _, p := range ps.Paths[s][d] {
				if keep(p) {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				kept = ps.Paths[s][d]
				fallbacks++
			}
			out.Paths[s][d] = kept
		}
	}
	return out, fallbacks
}
