package route

import (
	"reflect"
	"testing"
)

func TestSurvivorRoutingHealthyMatchesShortest(t *testing.T) {
	m := mesh4x5()
	r := SurvivorRouting("survivor", m, nil, nil)
	if err := r.Validate(m); err != nil {
		t.Fatalf("healthy survivor routing invalid: %v", err)
	}
	dist := m.ShortestPaths()
	for s := 0; s < m.N(); s++ {
		for d := 0; d < m.N(); d++ {
			if s == d {
				continue
			}
			if got := r.Table[s][d].Hops(); got != dist[s][d] {
				t.Fatalf("flow (%d,%d): %d hops, shortest %d", s, d, got, dist[s][d])
			}
		}
	}
}

func TestSurvivorRoutingDeadLink(t *testing.T) {
	ring := smallRing()
	// Kill 0->1; paths from 0 must detour the long way, everything stays
	// reachable over the remaining ring links.
	dead := [2]int{0, 1}
	r := SurvivorRouting("survivor", ring, nil, func(a, b int) bool {
		return [2]int{a, b} != dead
	})
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			p := r.Table[s][d]
			if p == nil {
				t.Fatalf("flow (%d,%d) unreachable after one ring link loss", s, d)
			}
			for _, l := range p.Links() {
				if l == dead {
					t.Fatalf("flow (%d,%d) path %v uses the dead link", s, d, p)
				}
			}
		}
	}
	if got := r.Table[0][1]; got.Hops() != 3 {
		t.Fatalf("0->1 detour = %v, want 3 hops", got)
	}
}

func TestSurvivorRoutingDeadRouter(t *testing.T) {
	ring := smallRing()
	r := SurvivorRouting("survivor", ring, func(rtr int) bool { return rtr != 2 }, nil)
	for d := 1; d < 4; d++ {
		p := r.Table[0][d]
		if d == 2 {
			if p != nil {
				t.Fatalf("path to dead router: %v", p)
			}
			continue
		}
		if p == nil {
			t.Fatalf("flow (0,%d) unreachable", d)
		}
		for _, hop := range p {
			if hop == 2 {
				t.Fatalf("flow (0,%d) path %v crosses dead router", d, p)
			}
		}
	}
	if r.Table[2][0] != nil || r.Table[2][1] != nil {
		t.Fatal("dead router has outgoing paths")
	}
}

func TestSurvivorRoutingDeterministic(t *testing.T) {
	m := mesh4x5()
	alive := func(a, b int) bool { return !(a == 5 && b == 6) }
	r1 := SurvivorRouting("survivor", m, nil, alive)
	r2 := SurvivorRouting("survivor", m, nil, alive)
	if !reflect.DeepEqual(r1.Table, r2.Table) {
		t.Fatal("survivor routing is not deterministic")
	}
}
