package route

import (
	"math"
	"math/rand"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
)

func TestMCLBFractionalOnSmallMesh(t *testing.T) {
	g := layout.NewGrid(2, 3)
	m := expert.Mesh(g)
	ps, err := AllShortestPaths(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := MCLBFractional(ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := frac.Validate(); err != nil {
		t.Fatal(err)
	}
	fracMax := frac.MaxExpectedChannelLoad()
	// Fractional optimum must lower-bound the exact single-path optimum.
	_, exact, err := MCLBExact(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fracMax > float64(exact)+1e-6 {
		t.Errorf("fractional %v exceeds single-path optimum %d", fracMax, exact)
	}
	// And it must agree with the dedicated LP bound helper.
	lb, err := MCLBLowerBoundLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fracMax-lb) > 1e-6 {
		t.Errorf("fractional max %v != LP bound %v", fracMax, lb)
	}
}

func TestMultiRoutingSampling(t *testing.T) {
	g := layout.NewGrid(2, 3)
	m := expert.Mesh(g)
	ps, _ := AllShortestPaths(m, 0)
	frac, err := MCLBFractional(ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Sampling returns valid shortest paths with the right endpoints.
	dist := m.ShortestPaths()
	for trial := 0; trial < 500; trial++ {
		s := rng.Intn(6)
		d := rng.Intn(6)
		if s == d {
			continue
		}
		p := frac.PathFor(s, d, rng)
		if p[0] != s || p[len(p)-1] != d {
			t.Fatalf("sampled path endpoints wrong: %v", p)
		}
		if p.Hops() != dist[s][d] {
			t.Fatalf("sampled path not shortest: %v", p)
		}
	}
	// Sampling frequencies track the weights for a diverse flow.
	var diverse [2]int
	found := false
	for s := 0; s < 6 && !found; s++ {
		for d := 0; d < 6 && !found; d++ {
			if s != d && len(frac.Paths[s][d]) >= 2 && frac.Weights[s][d][0] > 0.2 && frac.Weights[s][d][0] < 0.8 {
				diverse = [2]int{s, d}
				found = true
			}
		}
	}
	if found {
		s, d := diverse[0], diverse[1]
		count := 0
		const trials = 4000
		first := frac.Paths[s][d][0]
		for i := 0; i < trials; i++ {
			p := frac.PathFor(s, d, rng)
			if len(p) == len(first) {
				same := true
				for j := range p {
					if p[j] != first[j] {
						same = false
						break
					}
				}
				if same {
					count++
				}
			}
		}
		got := float64(count) / trials
		want := frac.Weights[s][d][0]
		if math.Abs(got-want) > 0.08 {
			t.Errorf("sampling frequency %v far from weight %v", got, want)
		}
	}
}

func TestSinglePathRounding(t *testing.T) {
	g := layout.NewGrid(2, 3)
	m := expert.Mesh(g)
	ps, _ := AllShortestPaths(m, 0)
	frac, err := MCLBFractional(ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	rounded := frac.SinglePathFrom()
	if err := rounded.Validate(m); err != nil {
		t.Fatal(err)
	}
	// Rounded max load is an integer >= the fractional optimum.
	if float64(rounded.MaxChannelLoad()) < frac.MaxExpectedChannelLoad()-1e-9 {
		t.Error("rounded load below fractional optimum: impossible")
	}
}

func TestMultiRoutingValidateCatchesBadWeights(t *testing.T) {
	bad := &MultiRouting{N: 2,
		Paths:   [][][]Path{{nil, {Path{0, 1}}}, {{Path{1, 0}}, nil}},
		Weights: [][][]float64{{nil, {0.5}}, {{1.0}, nil}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("weights summing to 0.5 must fail validation")
	}
}
