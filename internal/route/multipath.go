package route

import (
	"fmt"
	"math"
	"math/rand"

	"netsmith/internal/mip"
)

// MultiRouting generalizes Routing to weighted multi-path selection: the
// paper's Table III notes that the single-path criterion C4 "can be
// modified to accommodate fractional or multi-path routing". Each flow
// carries a set of shortest paths with selection probabilities; traffic
// is split across them, lowering the maximum channel load below the best
// single-path selection on topologies with path diversity.
type MultiRouting struct {
	Name    string
	N       int
	Paths   [][][]Path    // [src][dst] -> candidate paths
	Weights [][][]float64 // matching selection probabilities (sum 1)
}

// PathFor samples a path for flow (s, d) according to the weights.
func (m *MultiRouting) PathFor(s, d int, rng *rand.Rand) Path {
	cands := m.Paths[s][d]
	if len(cands) == 1 {
		return cands[0]
	}
	x := rng.Float64()
	acc := 0.0
	for i, w := range m.Weights[s][d] {
		acc += w
		if x < acc {
			return cands[i]
		}
	}
	return cands[len(cands)-1]
}

// ExpectedChannelLoads returns the fractional load per directed link
// under unit demand per flow.
func (m *MultiRouting) ExpectedChannelLoads() map[[2]int]float64 {
	loads := make(map[[2]int]float64)
	for s := range m.Paths {
		for d := range m.Paths[s] {
			for i, p := range m.Paths[s][d] {
				w := m.Weights[s][d][i]
				if w == 0 {
					continue
				}
				for _, l := range p.Links() {
					loads[l] += w
				}
			}
		}
	}
	return loads
}

// MaxExpectedChannelLoad is the fractional MCLB objective value.
func (m *MultiRouting) MaxExpectedChannelLoad() float64 {
	max := 0.0
	for _, v := range m.ExpectedChannelLoads() {
		if v > max {
			max = v
		}
	}
	return max
}

// Validate checks weights are a probability distribution per flow.
func (m *MultiRouting) Validate() error {
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			if s == d {
				continue
			}
			if len(m.Paths[s][d]) == 0 {
				return fmt.Errorf("route: flow (%d,%d) has no paths", s, d)
			}
			if len(m.Paths[s][d]) != len(m.Weights[s][d]) {
				return fmt.Errorf("route: flow (%d,%d) weight/path mismatch", s, d)
			}
			sum := 0.0
			for _, w := range m.Weights[s][d] {
				if w < -1e-9 {
					return fmt.Errorf("route: flow (%d,%d) negative weight", s, d)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("route: flow (%d,%d) weights sum to %v", s, d, sum)
			}
		}
	}
	return nil
}

// MCLBFractional solves the fractional multi-path MCLB exactly as a
// linear program: per-flow path fractions minimizing the maximum
// expected channel load. The optimum is a lower bound on (and typically
// strictly better than) the best single-path selection.
func MCLBFractional(ps *PathSet, maxPathsPerFlow int) (*MultiRouting, error) {
	if maxPathsPerFlow <= 0 {
		maxPathsPerFlow = 8
	}
	n := ps.N
	p := mip.NewProblem()
	z := p.AddVar(0, math.Inf(1), 1, "z")
	type ref struct{ s, d, idx int }
	var vars []ref
	varOf := map[ref]mip.Var{}
	linkTerms := make(map[[2]int][]mip.Term)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			cands := ps.Paths[s][d]
			if len(cands) > maxPathsPerFlow {
				cands = cands[:maxPathsPerFlow]
			}
			var one []mip.Term
			for idx, path := range cands {
				v := p.AddVar(0, 1, 0, "f")
				r := ref{s, d, idx}
				vars = append(vars, r)
				varOf[r] = v
				one = append(one, mip.Term{Var: v, Coeff: 1})
				for _, l := range path.Links() {
					linkTerms[l] = append(linkTerms[l], mip.Term{Var: v, Coeff: 1})
				}
			}
			p.AddConstraint(one, mip.EQ, 1)
		}
	}
	for _, terms := range linkTerms {
		row := append(append([]mip.Term(nil), terms...), mip.Term{Var: z, Coeff: -1})
		p.AddConstraint(row, mip.LE, 0)
	}
	sol, err := p.SolveLP()
	if err != nil {
		return nil, err
	}
	m := &MultiRouting{Name: "MCLB-fractional", N: n,
		Paths: make([][][]Path, n), Weights: make([][][]float64, n)}
	for s := 0; s < n; s++ {
		m.Paths[s] = make([][]Path, n)
		m.Weights[s] = make([][]float64, n)
	}
	for _, r := range vars {
		w := sol.Value(varOf[r])
		if w < 1e-9 {
			w = 0
		}
		m.Paths[r.s][r.d] = append(m.Paths[r.s][r.d], ps.Paths[r.s][r.d][r.idx])
		m.Weights[r.s][r.d] = append(m.Weights[r.s][r.d], w)
	}
	// Renormalize against numerical noise.
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			sum := 0.0
			for _, w := range m.Weights[s][d] {
				sum += w
			}
			if sum <= 0 {
				// Degenerate LP corner: fall back to the first path.
				m.Weights[s][d][0] = 1
				sum = 1
			}
			for i := range m.Weights[s][d] {
				m.Weights[s][d][i] /= sum
			}
		}
	}
	return m, nil
}

// SinglePathFrom rounds a fractional routing to a single-path Routing by
// keeping each flow's heaviest path (a cheap 2-approximation in
// practice; MCLB local search remains the production single-path
// selector).
func (m *MultiRouting) SinglePathFrom() *Routing {
	r := &Routing{Name: m.Name + "-rounded", N: m.N, Table: make([][]Path, m.N)}
	for s := 0; s < m.N; s++ {
		r.Table[s] = make([]Path, m.N)
		for d := 0; d < m.N; d++ {
			if s == d || len(m.Paths[s][d]) == 0 {
				continue
			}
			best, bestW := 0, -1.0
			for i, w := range m.Weights[s][d] {
				if w > bestW {
					best, bestW = i, w
				}
			}
			r.Table[s][d] = m.Paths[s][d][best]
		}
	}
	return r
}
