package route

import "fmt"

// NextHopTables compiles the routing into the deployable table-based
// form the paper assumes: for every router r, a table mapping (source,
// destination) to the output link to take. With single-path routing the
// per-router table only needs the destination for flows passing through
// r on their unique path, but source-indexed tables are emitted for
// generality (distinct flows may cross r toward the same destination via
// different next hops when their paths diverge earlier).
//
// tables[r][s][d] = next router after r for flow (s, d), or -1 when the
// flow does not traverse r (or terminates at r).
func (r *Routing) NextHopTables() [][][]int {
	n := r.N
	tables := make([][][]int, n)
	for router := 0; router < n; router++ {
		tables[router] = make([][]int, n)
		for s := 0; s < n; s++ {
			tables[router][s] = make([]int, n)
			for d := range tables[router][s] {
				tables[router][s][d] = -1
			}
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || r.Table[s][d] == nil {
				continue
			}
			p := r.Table[s][d]
			for i := 0; i+1 < len(p); i++ {
				tables[p[i]][s][d] = p[i+1]
			}
		}
	}
	return tables
}

// DestinationTables compresses the next-hop tables to per-destination
// form where possible. Returns (tables, ok): tables[r][d] is the single
// next hop at router r toward destination d; ok is false if any router
// needs source-dependent routing (two flows to the same destination
// leaving r on different links), in which case the full NextHopTables
// must be used.
func (r *Routing) DestinationTables() ([][]int, bool) {
	n := r.N
	tables := make([][]int, n)
	for router := range tables {
		tables[router] = make([]int, n)
		for d := range tables[router] {
			tables[router][d] = -1
		}
	}
	consistent := true
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d || r.Table[s][d] == nil {
				continue
			}
			p := r.Table[s][d]
			for i := 0; i+1 < len(p); i++ {
				at, next := p[i], p[i+1]
				switch tables[at][d] {
				case -1:
					tables[at][d] = next
				case next:
				default:
					consistent = false
				}
			}
		}
	}
	return tables, consistent
}

// FormatTable renders one router's destination table for inspection.
func FormatTable(router int, destTable []int) string {
	out := fmt.Sprintf("router %d:", router)
	for d, next := range destTable {
		if next >= 0 {
			out += fmt.Sprintf(" %d->%d", d, next)
		}
	}
	return out
}
