package route

import (
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/topo"
)

func mesh4x5() *topo.Topology { return expert.Mesh(layout.Grid4x5) }

func smallRing() *topo.Topology {
	g := layout.NewGrid(1, 4)
	t := topo.New("ring", g, layout.Large)
	for i := 0; i < 4; i++ {
		t.AddLink(i, (i+1)%4)
		t.AddLink((i+1)%4, i)
	}
	return t
}

func TestAllShortestPathsMesh(t *testing.T) {
	m := mesh4x5()
	ps, err := AllShortestPaths(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist := m.ShortestPaths()
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s == d {
				if ps.Paths[s][d] != nil {
					t.Fatal("diagonal must be empty")
				}
				continue
			}
			if len(ps.Paths[s][d]) == 0 {
				t.Fatalf("no path for (%d,%d)", s, d)
			}
			for _, p := range ps.Paths[s][d] {
				if p.Hops() != dist[s][d] {
					t.Fatalf("path %v is not shortest (%d vs %d)", p, p.Hops(), dist[s][d])
				}
				if p[0] != s || p[len(p)-1] != d {
					t.Fatalf("endpoints wrong: %v", p)
				}
				for _, l := range p.Links() {
					if !m.Has(l[0], l[1]) {
						t.Fatalf("path uses missing link %v", l)
					}
				}
			}
		}
	}
	// Mesh path diversity: (0,0) -> (1,1): 2 shortest paths.
	if got := len(ps.Paths[0][6]); got != 2 {
		t.Errorf("mesh (0->6) has %d shortest paths, want 2", got)
	}
	// Straight-line flows have exactly one.
	if got := len(ps.Paths[0][4]); got != 1 {
		t.Errorf("mesh (0->4) has %d shortest paths, want 1", got)
	}
}

func TestAllShortestPathsCap(t *testing.T) {
	m := mesh4x5()
	ps, err := AllShortestPaths(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s != d && len(ps.Paths[s][d]) > 3 {
				t.Fatalf("cap violated: %d paths", len(ps.Paths[s][d]))
			}
		}
	}
}

func TestAllShortestPathsDisconnected(t *testing.T) {
	g := layout.NewGrid(1, 3)
	tp := topo.New("line", g, layout.Small)
	tp.AddLink(0, 1)
	tp.AddLink(1, 2) // no way back: not strongly connected
	if _, err := AllShortestPaths(tp, 0); err == nil {
		t.Error("disconnected topology must error")
	}
}

func TestRandomSelectionValidates(t *testing.T) {
	m := mesh4x5()
	ps, _ := AllShortestPaths(m, 0)
	r := RandomSelection("rand", ps, 1)
	if err := r.Validate(m); err != nil {
		t.Fatal(err)
	}
	if r.AverageHops() != m.AverageHops() {
		t.Errorf("shortest-path routing avg hops %v != topology %v", r.AverageHops(), m.AverageHops())
	}
}

func TestNDBTMesh(t *testing.T) {
	m := mesh4x5()
	r, err := NDBT(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(m); err != nil {
		t.Fatal(err)
	}
	// Every selected path must satisfy the no-double-back rule on a mesh
	// (where XY-monotone shortest paths always exist).
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s == d {
				continue
			}
			if !noDoubleBackX(m, r.Table[s][d]) {
				t.Fatalf("NDBT path for (%d,%d) doubles back: %v", s, d, r.Table[s][d])
			}
		}
	}
}

func TestNoDoubleBackX(t *testing.T) {
	m := mesh4x5()
	// Path going right then left: 0 -> 1 -> 0 is not shortest but tests
	// the predicate directly.
	if noDoubleBackX(m, Path{0, 1, 0}) {
		t.Error("right-then-left must be rejected")
	}
	if !noDoubleBackX(m, Path{0, 1, 2}) {
		t.Error("monotone right must be accepted")
	}
	// Vertical moves don't set direction: 0 -> 5 -> 6 -> 11 ok.
	if !noDoubleBackX(m, Path{0, 5, 6, 11}) {
		t.Error("vertical + right must be accepted")
	}
}

func TestMCLBRingOptimal(t *testing.T) {
	// Bidirectional 4-ring: every flow has a unique shortest path except
	// opposite pairs (2 hops each way). Optimal max load is 2.
	r4 := smallRing()
	routing, err := MCLB(r4, MCLBOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.Validate(r4); err != nil {
		t.Fatal(err)
	}
	exact, exactLoad, err := MCLBExact(r4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Validate(r4); err != nil {
		t.Fatal(err)
	}
	if got := routing.MaxChannelLoad(); got != exactLoad {
		t.Errorf("local search max load %d != exact %d", got, exactLoad)
	}
}

func TestMCLBMatchesExactOn2x3Mesh(t *testing.T) {
	g := layout.NewGrid(2, 3)
	m := expert.Mesh(g)
	heur, err := MCLB(m, MCLBOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, exactLoad, err := MCLBExact(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Validate(m); err != nil {
		t.Fatal(err)
	}
	if heur.MaxChannelLoad() != exactLoad {
		t.Errorf("heuristic MCLB %d != exact %d", heur.MaxChannelLoad(), exactLoad)
	}
	lb, err := MCLBLowerBoundLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if float64(exactLoad) < lb-1e-6 {
		t.Errorf("exact %d below LP bound %v", exactLoad, lb)
	}
}

func TestMCLBBeatsRandomOnMesh(t *testing.T) {
	m := mesh4x5()
	mclb, err := MCLB(m, MCLBOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := mclb.Validate(m); err != nil {
		t.Fatal(err)
	}
	ps, _ := AllShortestPaths(m, 0)
	randomSel := RandomSelection("rand", ps, 5)
	if mclb.MaxChannelLoad() > randomSel.MaxChannelLoad() {
		t.Errorf("MCLB max load %d worse than random %d", mclb.MaxChannelLoad(), randomSel.MaxChannelLoad())
	}
	// MCLB preserves shortest-path hop counts.
	if mclb.AverageHops() != m.AverageHops() {
		t.Errorf("MCLB avg hops %v != topology %v", mclb.AverageHops(), m.AverageHops())
	}
}

func TestMCLBOnKite(t *testing.T) {
	kite, err := expert.Get(expert.NameKiteSmall, layout.Grid4x5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MCLB(kite, MCLBOptions{Seed: 9, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(kite); err != nil {
		t.Fatal(err)
	}
	ndbt, err := NDBT(kite, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: MCLB achieves no worse max channel load than
	// the NDBT heuristic on the same topology (Fig. 7).
	if r.MaxChannelLoad() > ndbt.MaxChannelLoad() {
		t.Errorf("MCLB %d worse than NDBT %d on Kite-Small", r.MaxChannelLoad(), ndbt.MaxChannelLoad())
	}
}

func TestChannelLoadsSumToLinkOccupancy(t *testing.T) {
	// Sum of channel loads equals sum of hops over all flows (each hop
	// occupies one link).
	m := mesh4x5()
	r, _ := MCLB(m, MCLBOptions{Seed: 2, Restarts: 2, Sweeps: 5})
	loads := r.ChannelLoads()
	sumLoads := 0
	for _, v := range loads {
		sumLoads += v
	}
	sumHops := 0
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s != d {
				sumHops += r.Table[s][d].Hops()
			}
		}
	}
	if sumLoads != sumHops {
		t.Errorf("channel load sum %d != hop sum %d", sumLoads, sumHops)
	}
}

func TestPathSetFilterFallback(t *testing.T) {
	m := mesh4x5()
	ps, _ := AllShortestPaths(m, 0)
	// Reject everything: every flow must fall back.
	filtered, fallbacks := ps.Filter(func(Path) bool { return false })
	if fallbacks != 20*19 {
		t.Errorf("fallbacks = %d, want %d", fallbacks, 20*19)
	}
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s != d && len(filtered.Paths[s][d]) == 0 {
				t.Fatal("fallback left a flow unroutable")
			}
		}
	}
}
