package route

import (
	"netsmith/internal/topo"
)

// NDBT implements the expert-topology routing scheme: shortest-path
// routing restricted by the turn-based deadlock-avoidance rule that no
// route may "double back" along the horizontal axis (once a path has
// moved in one X direction it may not later move in the other), with
// random selection among the remaining valid choices. Flows for which no
// shortest path satisfies the rule fall back to unrestricted shortest
// paths (this matches practice: the rule is defined for the semi-regular
// expert topologies, where such flows do not arise).
func NDBT(t *topo.Topology, seed int64) (*Routing, error) {
	ps, err := AllShortestPaths(t, 0)
	if err != nil {
		return nil, err
	}
	filtered, _ := ps.Filter(func(p Path) bool { return noDoubleBackX(t, p) })
	r := RandomSelection("NDBT", filtered, seed)
	return r, nil
}

// noDoubleBackX reports whether the path never reverses its horizontal
// direction of travel.
func noDoubleBackX(t *topo.Topology, p Path) bool {
	dir := 0 // 0 = undecided, +1 = rightward, -1 = leftward
	for i := 0; i+1 < len(p); i++ {
		_, c0 := t.Grid.Pos(p[i])
		_, c1 := t.Grid.Pos(p[i+1])
		switch {
		case c1 > c0:
			if dir < 0 {
				return false
			}
			dir = 1
		case c1 < c0:
			if dir > 0 {
				return false
			}
			dir = -1
		}
	}
	return true
}
