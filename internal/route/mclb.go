package route

import (
	"math"
	"math/rand"

	"netsmith/internal/mip"
	"netsmith/internal/topo"
)

// MCLBOptions controls MCLB path selection.
type MCLBOptions struct {
	Seed     int64
	Restarts int // local-search restarts (default 8)
	Sweeps   int // improvement sweeps per restart (default 40)
}

// MCLB selects one shortest path per flow minimizing the maximum channel
// load (the paper's Table III formulation) by greedy construction plus
// multi-restart local search. The search is exact in the sense that a
// selection's loads are evaluated exactly; optimality on small instances
// is certified against MCLBExact in tests.
func MCLB(t *topo.Topology, opts MCLBOptions) (*Routing, error) {
	ps, err := AllShortestPaths(t, 0)
	if err != nil {
		return nil, err
	}
	return MCLBOnPaths(ps, opts), nil
}

// MCLBOnPaths runs MCLB path selection over a prepared candidate set
// (use this to pre-filter paths, e.g. the full-system CDC constraint).
func MCLBOnPaths(ps *PathSet, opts MCLBOptions) *Routing {
	if opts.Restarts == 0 {
		opts.Restarts = 8
	}
	if opts.Sweeps == 0 {
		opts.Sweeps = 40
	}
	n := ps.N
	type flow struct{ s, d int }
	var flows []flow
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				flows = append(flows, flow{s, d})
			}
		}
	}

	// Dense link-load matrix with an incremental load histogram so the
	// global maximum and sum-of-squares update in O(path length) per
	// move — required for the 84-router full-system instance.
	loads := make([][]int, n)
	for i := range loads {
		loads[i] = make([]int, n)
	}
	hist := make([]int64, 8) // hist[v] = number of links at load v
	hist[0] = int64(n) * int64(n)
	curMax := 0
	var curSq int64
	choice := make([]int, len(flows))

	bump := func(a, b, delta int) {
		old := loads[a][b]
		nw := old + delta
		loads[a][b] = nw
		for nw >= len(hist) {
			hist = append(hist, 0)
		}
		hist[old]--
		hist[nw]++
		curSq += int64(nw)*int64(nw) - int64(old)*int64(old)
		if nw > curMax {
			curMax = nw
		}
		for curMax > 0 && hist[curMax] == 0 {
			curMax--
		}
	}
	apply := func(f int, idx int, delta int) {
		p := ps.Paths[flows[f].s][flows[f].d][idx]
		for i := 0; i+1 < len(p); i++ {
			bump(p[i], p[i+1], delta)
		}
	}
	maxAndSq := func() (int, int64) { return curMax, curSq }
	reset := func() {
		for i := range loads {
			for j := range loads[i] {
				loads[i][j] = 0
			}
		}
		hist = hist[:8]
		for i := range hist {
			hist[i] = 0
		}
		hist[0] = int64(n) * int64(n)
		curMax = 0
		curSq = 0
	}

	bestMax, bestSq := math.MaxInt32, int64(math.MaxInt64)
	var bestChoice []int
	rng := rand.New(rand.NewSource(opts.Seed))

	for restart := 0; restart < opts.Restarts; restart++ {
		reset()
		// Greedy construction in random flow order: pick the candidate
		// whose bottleneck (then total squared load) is smallest.
		order := rng.Perm(len(flows))
		for _, f := range order {
			cands := ps.Paths[flows[f].s][flows[f].d]
			bestIdx, bestPeak, bestSum := 0, math.MaxInt32, math.MaxInt32
			for idx, p := range cands {
				peak, sum := 0, 0
				for i := 0; i+1 < len(p); i++ {
					v := loads[p[i]][p[i+1]] + 1
					if v > peak {
						peak = v
					}
					sum += v
				}
				if peak < bestPeak || (peak == bestPeak && sum < bestSum) {
					bestIdx, bestPeak, bestSum = idx, peak, sum
				}
			}
			choice[f] = bestIdx
			apply(f, bestIdx, +1)
		}
		// Local search: move flows off bottleneck links while (max, sq)
		// lexicographically improves.
		for sweep := 0; sweep < opts.Sweeps; sweep++ {
			curMax, curSq := maxAndSq()
			improved := false
			for f := range flows {
				cands := ps.Paths[flows[f].s][flows[f].d]
				if len(cands) < 2 {
					continue
				}
				// Only bother if the flow touches a bottleneck-ish link.
				touches := false
				p := cands[choice[f]]
				for i := 0; i+1 < len(p); i++ {
					if loads[p[i]][p[i+1]] >= curMax-1 {
						touches = true
						break
					}
				}
				if !touches {
					continue
				}
				apply(f, choice[f], -1)
				bestIdx := choice[f]
				bestPeakSq := curSq
				bestPeakMax := curMax
				for idx := range cands {
					apply(f, idx, +1)
					m, sq := maxAndSq()
					if m < bestPeakMax || (m == bestPeakMax && sq < bestPeakSq) {
						bestPeakMax, bestPeakSq, bestIdx = m, sq, idx
					}
					apply(f, idx, -1)
				}
				if bestIdx != choice[f] {
					improved = true
				}
				choice[f] = bestIdx
				apply(f, bestIdx, +1)
				curMax, curSq = bestPeakMax, bestPeakSq
			}
			if !improved {
				break
			}
		}
		m, sq := maxAndSq()
		if m < bestMax || (m == bestMax && sq < bestSq) {
			bestMax, bestSq = m, sq
			bestChoice = append([]int(nil), choice...)
		}
	}

	r := &Routing{Name: "MCLB", N: n, Table: make([][]Path, n)}
	for s := 0; s < n; s++ {
		r.Table[s] = make([]Path, n)
	}
	for f, fl := range flows {
		r.Table[fl.s][fl.d] = ps.Paths[fl.s][fl.d][bestChoice[f]]
	}
	return r
}

// MCLBExact solves the Table III formulation exactly with the internal
// MIP solver: binary path_used variables, single-path constraints (C4),
// channel loads (C1/C2/C3, substituted directly since paths are given)
// and the minmax objective (O1). Intended for small instances; larger
// ones should use MCLB and the LP bound.
func MCLBExact(t *topo.Topology, maxNodes int) (*Routing, int, error) {
	ps, err := AllShortestPaths(t, 0)
	if err != nil {
		return nil, 0, err
	}
	n := ps.N
	p := mip.NewProblem()
	z := p.AddVar(0, math.Inf(1), 1, "z")
	type flowPath struct {
		s, d, idx int
		v         mip.Var
	}
	var fps []flowPath
	linkTerms := make(map[[2]int][]mip.Term)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			var one []mip.Term
			for idx, path := range ps.Paths[s][d] {
				v := p.AddBinaryVar(0, "p")
				fps = append(fps, flowPath{s, d, idx, v})
				one = append(one, mip.Term{Var: v, Coeff: 1})
				for _, l := range path.Links() {
					linkTerms[l] = append(linkTerms[l], mip.Term{Var: v, Coeff: 1})
				}
			}
			p.AddConstraint(one, mip.EQ, 1) // C4: exactly one path per flow
		}
	}
	for _, terms := range linkTerms {
		// C1: cload(link) = sum of flows using it; cload <= z.
		row := append(append([]mip.Term(nil), terms...), mip.Term{Var: z, Coeff: -1})
		p.AddConstraint(row, mip.LE, 0)
	}
	sol, err := p.SolveMIP(mip.MIPOptions{MaxNodes: maxNodes})
	if err != nil {
		return nil, 0, err
	}
	r := &Routing{Name: "MCLB-exact", N: n, Table: make([][]Path, n)}
	for s := 0; s < n; s++ {
		r.Table[s] = make([]Path, n)
	}
	for _, fp := range fps {
		if sol.Value(fp.v) > 0.5 {
			r.Table[fp.s][fp.d] = ps.Paths[fp.s][fp.d][fp.idx]
		}
	}
	return r, int(math.Round(sol.Obj)), nil
}

// MCLBLowerBoundLP returns the LP-relaxation lower bound on the maximum
// channel load: fractional path selection, one unit split per flow.
func MCLBLowerBoundLP(t *topo.Topology) (float64, error) {
	ps, err := AllShortestPaths(t, 8)
	if err != nil {
		return 0, err
	}
	n := ps.N
	p := mip.NewProblem()
	z := p.AddVar(0, math.Inf(1), 1, "z")
	linkTerms := make(map[[2]int][]mip.Term)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			var one []mip.Term
			for _, path := range ps.Paths[s][d] {
				v := p.AddVar(0, 1, 0, "f")
				one = append(one, mip.Term{Var: v, Coeff: 1})
				for _, l := range path.Links() {
					linkTerms[l] = append(linkTerms[l], mip.Term{Var: v, Coeff: 1})
				}
			}
			p.AddConstraint(one, mip.EQ, 1)
		}
	}
	for _, terms := range linkTerms {
		row := append(append([]mip.Term(nil), terms...), mip.Term{Var: z, Coeff: -1})
		p.AddConstraint(row, mip.LE, 0)
	}
	sol, err := p.SolveLP()
	if err != nil {
		return 0, err
	}
	return sol.Obj, nil
}
