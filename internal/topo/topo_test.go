package topo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netsmith/internal/layout"
)

// ring builds a unidirectional ring topology over an n-router 1xN grid.
func ring(n int) *Topology {
	g := layout.NewGrid(1, n)
	t := New("ring", g, layout.Large)
	for i := 0; i < n; i++ {
		t.AddLink(i, (i+1)%n)
	}
	return t
}

// mesh4x5 builds a bidirectional 4x5 mesh.
func mesh4x5() *Topology {
	g := layout.Grid4x5
	t := New("mesh", g, layout.Small)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if c+1 < g.Cols {
				t.AddLink(g.Router(r, c), g.Router(r, c+1))
				t.AddLink(g.Router(r, c+1), g.Router(r, c))
			}
			if r+1 < g.Rows {
				t.AddLink(g.Router(r, c), g.Router(r+1, c))
				t.AddLink(g.Router(r+1, c), g.Router(r, c))
			}
		}
	}
	return t
}

func TestAddRemoveLinks(t *testing.T) {
	g := layout.NewGrid(2, 2)
	tp := New("t", g, layout.Small)
	if tp.Has(0, 1) {
		t.Fatal("empty topology has a link")
	}
	tp.AddLink(0, 1)
	tp.AddLink(0, 1) // idempotent
	if !tp.Has(0, 1) || tp.Has(1, 0) {
		t.Fatal("directed link semantics broken")
	}
	if tp.NumDirectedLinks() != 1 || tp.NumLinks() != 1 {
		t.Fatalf("link counts: directed=%d links=%d", tp.NumDirectedLinks(), tp.NumLinks())
	}
	tp.AddLink(1, 0)
	if tp.NumDirectedLinks() != 2 || tp.NumLinks() != 1 {
		t.Fatalf("bidirectional pair should count as one link: directed=%d links=%d",
			tp.NumDirectedLinks(), tp.NumLinks())
	}
	tp.RemoveLink(0, 1)
	if tp.Has(0, 1) || !tp.Has(1, 0) {
		t.Fatal("remove broke wrong direction")
	}
}

func TestSelfLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddLink(i,i) must panic")
		}
	}()
	New("t", layout.NewGrid(2, 2), layout.Small).AddLink(1, 1)
}

func TestRingMetrics(t *testing.T) {
	n := 8
	tp := ring(n)
	if !tp.IsConnected() {
		t.Fatal("ring must be strongly connected")
	}
	if d := tp.Diameter(); d != n-1 {
		t.Errorf("unidirectional ring diameter = %d, want %d", d, n-1)
	}
	// Average hops of a unidirectional ring: mean of 1..n-1 = n/2.
	want := float64(n) / 2
	if got := tp.AverageHops(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ring avg hops = %v, want %v", got, want)
	}
	if tp.IsSymmetric() {
		t.Error("unidirectional ring must not be symmetric")
	}
}

func TestMeshMetrics(t *testing.T) {
	tp := mesh4x5()
	if !tp.IsConnected() {
		t.Fatal("mesh must be connected")
	}
	if !tp.IsSymmetric() {
		t.Error("mesh must be symmetric")
	}
	if d := tp.Diameter(); d != 3+4 {
		t.Errorf("4x5 mesh diameter = %d, want 7", d)
	}
	if got := tp.NumLinks(); got != 31 {
		t.Errorf("4x5 mesh links = %d, want 31", got)
	}
	// Mesh average hops = E[|dx|] + E[|dy|] over uniform pairs.
	got := tp.AverageHops()
	var sum, pairs float64
	for a := 0; a < 20; a++ {
		for b := 0; b < 20; b++ {
			if a == b {
				continue
			}
			ra, ca := tp.Grid.Pos(a)
			rb, cb := tp.Grid.Pos(b)
			sum += math.Abs(float64(ra-rb)) + math.Abs(float64(ca-cb))
			pairs++
		}
	}
	if want := sum / pairs; math.Abs(got-want) > 1e-12 {
		t.Errorf("mesh avg hops = %v, want %v", got, want)
	}
	if !tp.RespectsRadix(4) {
		t.Error("mesh should respect radix 4")
	}
	if !tp.RespectsLinkLengths() {
		t.Error("mesh links are all (1,0)/(0,1), within small budget")
	}
}

func TestDisconnected(t *testing.T) {
	tp := New("disc", layout.NewGrid(1, 4), layout.Large)
	tp.AddLink(0, 1)
	tp.AddLink(1, 0)
	tp.AddLink(2, 3)
	tp.AddLink(3, 2)
	if tp.IsConnected() {
		t.Fatal("should be disconnected")
	}
	if _, ok := tp.TotalHops(); ok {
		t.Error("TotalHops must report disconnection")
	}
	if !math.IsInf(tp.AverageHops(), 1) {
		t.Error("AverageHops must be +Inf when disconnected")
	}
	if tp.Diameter() != Unreachable {
		t.Error("Diameter must be Unreachable when disconnected")
	}
}

func TestCloneIndependence(t *testing.T) {
	tp := mesh4x5()
	c := tp.Clone()
	c.RemoveLink(0, 1)
	if !tp.Has(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.CanonicalLinkList() == tp.CanonicalLinkList() {
		t.Fatal("canonical lists should differ after mutation")
	}
}

func TestHopHistogramSumsToPairs(t *testing.T) {
	tp := mesh4x5()
	hist := tp.HopHistogram()
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != 20*19 {
		t.Errorf("histogram covers %d pairs, want %d", total, 20*19)
	}
	if hist[0] != 0 {
		t.Errorf("no pair has distance 0; got %d", hist[0])
	}
	// Mean from histogram equals AverageHops.
	sum := 0
	for h, c := range hist {
		sum += h * c
	}
	if got, want := float64(sum)/float64(20*19), tp.AverageHops(); math.Abs(got-want) > 1e-12 {
		t.Errorf("histogram mean %v != AverageHops %v", got, want)
	}
}

func TestWeightedAverageHops(t *testing.T) {
	tp := mesh4x5()
	n := tp.N()
	uniform := make([][]float64, n)
	for i := range uniform {
		uniform[i] = make([]float64, n)
		for j := range uniform[i] {
			if i != j {
				uniform[i][j] = 1
			}
		}
	}
	if got, want := tp.WeightedAverageHops(uniform), tp.AverageHops(); math.Abs(got-want) > 1e-12 {
		t.Errorf("uniform weighted avg %v != avg %v", got, want)
	}
	// Weight only one adjacent pair: expect exactly 1 hop.
	single := make([][]float64, n)
	for i := range single {
		single[i] = make([]float64, n)
	}
	single[0][1] = 5
	if got := tp.WeightedAverageHops(single); got != 1 {
		t.Errorf("single-pair weighted avg = %v, want 1", got)
	}
}

func TestEvaluateCutMesh(t *testing.T) {
	tp := mesh4x5()
	// Vertical bisection: columns 0-1 (plus half of col 2? no: cols 0,1)
	// vs 2,3,4 is unbalanced; use left 10 routers = cols 0,1 of each row
	// ... build col<2.5 split: cols {0,1} has 8 routers. For bisection use
	// columns {0,1} + two of col 2.
	var mask uint64
	for r := 0; r < 4; r++ {
		for c := 0; c < 2; c++ {
			mask |= 1 << uint(tp.Grid.Router(r, c))
		}
	}
	cut := tp.EvaluateCutMask(mask)
	// Links crossing col1-col2 boundary: 4 horizontal pairs each way.
	if cut.CrossUV != 4 || cut.CrossVU != 4 {
		t.Errorf("mesh column cut crossings = (%d,%d), want (4,4)", cut.CrossUV, cut.CrossVU)
	}
	if want := 4.0 / float64(8*12); math.Abs(cut.Bandwidth-want) > 1e-12 {
		t.Errorf("cut bandwidth = %v, want %v", cut.Bandwidth, want)
	}
}

func TestBisectionBandwidthMesh(t *testing.T) {
	tp := mesh4x5()
	// 4x5 mesh balanced (10/10) min cut: a horizontal cut between rows 1
	// and 2 crosses the 5 vertical links of each column; a staggered
	// vertical cut also needs 5. Exhaustive enumeration confirms 5.
	got := tp.BisectionBandwidth()
	if got != 5 {
		t.Errorf("4x5 mesh bisection = %d, want 5", got)
	}
}

func TestSparsestCutRing(t *testing.T) {
	// Bidirectional ring of 8: sparsest cut splits into two arcs of 4,
	// crossing 2 links each way; B = 2/(4*4) = 0.125.
	g := layout.NewGrid(1, 8)
	tp := New("biring", g, layout.Large)
	for i := 0; i < 8; i++ {
		tp.AddLink(i, (i+1)%8)
		tp.AddLink((i+1)%8, i)
	}
	cut := tp.SparsestCut()
	if want := 2.0 / 16.0; math.Abs(cut.Bandwidth-want) > 1e-12 {
		t.Errorf("ring sparsest cut = %v, want %v", cut.Bandwidth, want)
	}
}

func TestSparsestCutAsymmetric(t *testing.T) {
	// A graph with many U->V links but only one V->U link: the sparsest
	// cut must use the min direction.
	g := layout.NewGrid(1, 4)
	tp := New("asym", g, layout.Large)
	// Strongly connected: 0->1->2->3->0 plus extra forward links.
	for i := 0; i < 4; i++ {
		tp.AddLink(i, (i+1)%4)
	}
	tp.AddLink(0, 2)
	cut := tp.SparsestCut()
	if cut.Bandwidth > 1.0/3.0+1e-12 {
		t.Errorf("asymmetric sparsest cut = %v, want <= 1/3", cut.Bandwidth)
	}
}

func TestHeuristicCutNeverBelowExact(t *testing.T) {
	// On small graphs the heuristic must never report a cut sparser than
	// the exhaustive optimum (it samples a subset of partitions).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		g := layout.NewGrid(3, 4)
		tp := New("rand", g, layout.Large)
		for a := 0; a < 12; a++ {
			for b := 0; b < 12; b++ {
				if a != b && rng.Float64() < 0.3 {
					tp.AddLink(a, b)
				}
			}
		}
		if !tp.IsConnected() {
			continue
		}
		exact := tp.exactSparsestCut()
		heur := tp.HeuristicSparsestCut(16, rng)
		if heur.Bandwidth < exact.Bandwidth-1e-12 {
			t.Fatalf("heuristic %v beat exact %v", heur.Bandwidth, exact.Bandwidth)
		}
	}
}

func TestLinkSpanHistogram(t *testing.T) {
	tp := mesh4x5()
	hist := tp.LinkSpanHistogram()
	if hist["(1,0)"] != 31 {
		t.Errorf("mesh span histogram: %v, want 31 x (1,0)", hist)
	}
}

func TestTotalWireLength(t *testing.T) {
	tp := mesh4x5()
	// 62 directed links each pitch long.
	want := 62 * tp.Grid.PitchMM
	if got := tp.TotalWireLengthMM(); math.Abs(got-want) > 1e-9 {
		t.Errorf("wire length = %v, want %v", got, want)
	}
}

// Property: for random connected topologies, avg hops >= 1, diameter >=
// avg hops, and the sparsest cut is no larger than any sampled cut.
func TestCutAndHopProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := layout.NewGrid(2, 5)
		tp := New("prop", g, layout.Large)
		for a := 0; a < 10; a++ {
			for b := 0; b < 10; b++ {
				if a != b && rng.Float64() < 0.35 {
					tp.AddLink(a, b)
				}
			}
		}
		if !tp.IsConnected() {
			return true // vacuous
		}
		avg := tp.AverageHops()
		if avg < 1 {
			return false
		}
		if float64(tp.Diameter()) < avg {
			return false
		}
		sc := tp.SparsestCut()
		for i := 0; i < 20; i++ {
			mask := uint64(rng.Intn(1022) + 1) // non-trivial partitions of 10 nodes
			if tp.EvaluateCutMask(mask).Bandwidth < sc.Bandwidth-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDenseLinkIDs verifies the dense directed-link numbering: IDs are
// contiguous, enumerate links in Links() order, survive round-trips
// through LinkByID, and stay consistent across mutations.
func TestDenseLinkIDs(t *testing.T) {
	tp := mesh4x5()
	links := tp.Links()
	if len(links) != tp.NumDirectedLinks() {
		t.Fatalf("Links() len %d != NumDirectedLinks %d", len(links), tp.NumDirectedLinks())
	}
	for id, l := range links {
		if got := tp.LinkID(l.From, l.To); got != id {
			t.Fatalf("LinkID(%d,%d) = %d, want %d", l.From, l.To, got, id)
		}
		if got := tp.LinkByID(id); got != l {
			t.Fatalf("LinkByID(%d) = %v, want %v", id, got, l)
		}
	}
	if tp.LinkID(0, 19) != -1 {
		t.Error("absent link must have ID -1")
	}
	// Mutation invalidates and renumbers.
	before := tp.NumDirectedLinks()
	tp.RemoveLink(links[0].From, links[0].To)
	if tp.NumDirectedLinks() != before-1 {
		t.Fatalf("link count after removal: %d", tp.NumDirectedLinks())
	}
	if tp.LinkID(links[0].From, links[0].To) != -1 {
		t.Error("removed link still has an ID")
	}
	for id, l := range tp.Links() {
		if tp.LinkID(l.From, l.To) != id {
			t.Fatalf("IDs not contiguous after mutation")
		}
	}
	tp.AddLink(links[0].From, links[0].To)
	if tp.LinkID(links[0].From, links[0].To) == -1 {
		t.Error("re-added link has no ID")
	}
}
