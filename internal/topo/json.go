package topo

import (
	"encoding/json"
	"fmt"

	"netsmith/internal/layout"
)

// jsonTopology is the serialized form: enough to reconstruct the
// topology and re-derive every metric. PitchMM matters: wire lengths
// (and with them analytic power, measured wire energy and the synth
// energy proxy) scale with the grid pitch, so dropping it would both
// reset custom-pitch topologies on round-trip and blind the
// content-addressed store's fingerprints to a result-changing input.
type jsonTopology struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Cols    int      `json:"cols"`
	PitchMM float64  `json:"pitch_mm,omitempty"` // absent = NewGrid default
	Class   string   `json:"class"`
	Links   [][2]int `json:"links"` // directed
}

// MarshalJSON implements json.Marshaler.
func (t *Topology) MarshalJSON() ([]byte, error) {
	j := jsonTopology{
		Name:    t.Name,
		Rows:    t.Grid.Rows,
		Cols:    t.Grid.Cols,
		PitchMM: t.Grid.PitchMM,
		Class:   t.Class.String(),
	}
	for _, l := range t.Links() {
		j.Links = append(j.Links, [2]int{l.From, l.To})
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var j jsonTopology
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	class, err := layout.ParseClass(j.Class)
	if err != nil {
		return err
	}
	if j.Rows <= 0 || j.Cols <= 0 {
		return fmt.Errorf("topo: invalid grid %dx%d", j.Rows, j.Cols)
	}
	if j.PitchMM < 0 {
		return fmt.Errorf("topo: invalid pitch %v", j.PitchMM)
	}
	g := layout.NewGrid(j.Rows, j.Cols)
	if j.PitchMM > 0 {
		g.PitchMM = j.PitchMM
	}
	*t = *New(j.Name, g, class)
	n := t.N()
	for _, l := range j.Links {
		if l[0] < 0 || l[0] >= n || l[1] < 0 || l[1] >= n || l[0] == l[1] {
			return fmt.Errorf("topo: invalid link %v", l)
		}
		t.AddLink(l[0], l[1])
	}
	return nil
}

// DOT renders the topology in Graphviz format (bidirectional pairs as
// one undirected edge, unidirectional links as directed edges), with
// routers laid out at their physical grid positions.
func (t *Topology) DOT() string {
	out := fmt.Sprintf("digraph %q {\n", t.Name)
	out += "  layout=neato;\n  node [shape=circle];\n"
	for r := 0; r < t.n; r++ {
		row, col := t.Grid.Pos(r)
		out += fmt.Sprintf("  %d [pos=\"%d,%d!\"];\n", r, col, -row)
	}
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if !t.adj[a][b] {
				continue
			}
			if t.adj[b][a] {
				if a < b {
					out += fmt.Sprintf("  %d -> %d [dir=both];\n", a, b)
				}
			} else {
				out += fmt.Sprintf("  %d -> %d [style=dashed];\n", a, b)
			}
		}
	}
	return out + "}\n"
}
