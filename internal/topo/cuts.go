package topo

import (
	"math"
	"math/bits"
	"math/rand"
)

// ExactCutLimit is the largest router count for which cut metrics are
// computed by exhaustive partition enumeration (2^(n-1) subsets). Beyond
// this, Kernighan–Lin style local search seeded by a Fiedler-vector sweep
// is used; the heuristic value is an upper bound on the true minimum.
const ExactCutLimit = 24

// Cut describes a two-way partition of the routers and its bandwidth.
type Cut struct {
	// UMask has bit r set when router r is in partition U; V is the
	// complement.
	UMask uint64
	// CrossUV and CrossVU count directed links from U to V and V to U.
	CrossUV, CrossVU int
	// Bandwidth is the paper's B(U,V): min-direction crossings divided by
	// |U|*|V| (the minimum of the two directions is the true bottleneck
	// for asymmetric links).
	Bandwidth float64
}

// Size returns |U| for an n-router topology.
func (c Cut) Size(n int) int { return bits.OnesCount64(c.UMask & ((1 << uint(n)) - 1)) }

// outMasks returns, for each router, the bitmask of its out-neighbors.
func (t *Topology) outMasks() []uint64 {
	t.refresh()
	masks := make([]uint64, t.n)
	for a := 0; a < t.n; a++ {
		var m uint64
		for _, b := range t.out[a] {
			m |= 1 << uint(b)
		}
		masks[a] = m
	}
	return masks
}

// inMasks returns, for each router, the bitmask of its in-neighbors.
func (t *Topology) inMasks() []uint64 {
	t.refresh()
	masks := make([]uint64, t.n)
	for a := 0; a < t.n; a++ {
		var m uint64
		for _, b := range t.in[a] {
			m |= 1 << uint(b)
		}
		masks[a] = m
	}
	return masks
}

// EvaluateCut computes the cut defined by uMask (partition U) against its
// complement.
func (t *Topology) EvaluateCut(uMask uint64) Cut {
	n := t.n
	full := uint64(1)<<uint(n) - 1
	uMask &= full
	vMask := full &^ uMask
	out := t.outMasks()
	crossUV, crossVU := 0, 0
	for a := 0; a < n; a++ {
		bit := uint64(1) << uint(a)
		if uMask&bit != 0 {
			crossUV += bits.OnesCount64(out[a] & vMask)
		} else {
			crossVU += bits.OnesCount64(out[a] & uMask)
		}
	}
	sizeU := bits.OnesCount64(uMask)
	sizeV := n - sizeU
	bw := math.Inf(1)
	if sizeU > 0 && sizeV > 0 {
		minCross := crossUV
		if crossVU < minCross {
			minCross = crossVU
		}
		bw = float64(minCross) / float64(sizeU*sizeV)
	}
	return Cut{UMask: uMask, CrossUV: crossUV, CrossVU: crossVU, Bandwidth: bw}
}

// SparsestCut returns the cut minimizing B(U,V) = minCross/(|U||V|) over
// all two-way partitions (constraint C6 of Table I). For n <= ExactCutLimit
// the search is exhaustive (router 0 pinned to U, halving the space); for
// larger networks a heuristic (see HeuristicSparsestCut) is used and the
// result is an upper bound on the true minimum.
func (t *Topology) SparsestCut() Cut {
	if t.n <= ExactCutLimit {
		return t.exactSparsestCut()
	}
	return t.HeuristicSparsestCut(64, rand.New(rand.NewSource(1)))
}

func (t *Topology) exactSparsestCut() Cut {
	n := t.n
	out := t.outMasks()
	in := t.inMasks()
	full := uint64(1)<<uint(n) - 1
	best := Cut{Bandwidth: math.Inf(1)}
	// Enumerate subsets S of routers {1..n-1}; U = S | {0}.
	limit := uint64(1) << uint(n-1)
	for s := uint64(0); s < limit; s++ {
		uMask := (s << 1) | 1
		vMask := full &^ uMask
		if vMask == 0 {
			continue
		}
		sizeU := bits.OnesCount64(uMask)
		sizeV := n - sizeU
		crossUV, crossVU := 0, 0
		rem := uMask
		for rem != 0 {
			a := bits.TrailingZeros64(rem)
			rem &= rem - 1
			crossUV += bits.OnesCount64(out[a] & vMask)
			crossVU += bits.OnesCount64(in[a] & vMask)
		}
		minCross := crossUV
		if crossVU < minCross {
			minCross = crossVU
		}
		bw := float64(minCross) / float64(sizeU*sizeV)
		if bw < best.Bandwidth {
			best = Cut{UMask: uMask, CrossUV: crossUV, CrossVU: crossVU, Bandwidth: bw}
		}
	}
	return best
}

// HeuristicSparsestCut searches for a low-bandwidth cut using restarts of
// greedy single-node moves (Kernighan–Lin style) plus one Fiedler-vector
// sweep seed. It returns the best cut found; its bandwidth is an upper
// bound on the true sparsest cut.
func (t *Topology) HeuristicSparsestCut(restarts int, rng *rand.Rand) Cut {
	n := t.n
	best := Cut{Bandwidth: math.Inf(1)}
	consider := func(mask uint64) {
		c := t.EvaluateCut(mask)
		if c.Size(n) == 0 || c.Size(n) == n {
			return
		}
		c = t.localImproveCut(c.UMask)
		if c.Bandwidth < best.Bandwidth {
			best = c
		}
	}
	// Fiedler sweep seed: order routers by approximate second Laplacian
	// eigenvector, try every prefix cut.
	order := t.fiedlerOrder()
	var mask uint64
	for i := 0; i < n-1; i++ {
		mask |= 1 << uint(order[i])
		consider(mask)
	}
	// Random restarts.
	for r := 0; r < restarts; r++ {
		var m uint64
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				m |= 1 << uint(v)
			}
		}
		consider(m)
	}
	return best
}

// localImproveCut greedily moves single routers across the cut while the
// bandwidth decreases.
func (t *Topology) localImproveCut(uMask uint64) Cut {
	n := t.n
	cur := t.EvaluateCut(uMask)
	improved := true
	for improved {
		improved = false
		for v := 0; v < n; v++ {
			next := t.EvaluateCut(cur.UMask ^ (1 << uint(v)))
			if s := next.Size(n); s == 0 || s == n {
				continue
			}
			if next.Bandwidth < cur.Bandwidth {
				cur = next
				improved = true
			}
		}
	}
	return cur
}

// fiedlerOrder approximates the Fiedler (second Laplacian eigen-) vector
// of the symmetrized graph by power iteration with deflation of the
// all-ones vector, returning routers sorted by component value.
func (t *Topology) fiedlerOrder() []int {
	n := t.n
	// Symmetrized adjacency weights.
	w := make([][]float64, n)
	deg := make([]float64, n)
	for a := 0; a < n; a++ {
		w[a] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if t.adj[a][b] || t.adj[b][a] {
				w[a][b] = 1
			}
		}
	}
	maxDeg := 0.0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			deg[a] += w[a][b]
		}
		if deg[a] > maxDeg {
			maxDeg = deg[a]
		}
	}
	// Power-iterate on M = (maxDeg+1)I - L, whose dominant eigenvector
	// after deflating the constant vector is the Fiedler vector.
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)*1.7 + 0.3) // deterministic non-constant seed
	}
	y := make([]float64, n)
	for iter := 0; iter < 200; iter++ {
		// Deflate constant component.
		mean := 0.0
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
		for i := range x {
			x[i] -= mean
		}
		// y = Mx = (maxDeg+1)x - Lx = (maxDeg+1)x - deg*x + Wx
		for i := 0; i < n; i++ {
			sum := (maxDeg + 1 - deg[i]) * x[i]
			for j := 0; j < n; j++ {
				if w[i][j] != 0 {
					sum += w[i][j] * x[j]
				}
			}
			y[i] = sum
		}
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := range x {
			x[i] = y[i] / norm
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort by x value
		for j := i; j > 0 && x[order[j]] < x[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// BisectionBandwidth returns the minimum min-direction crossing count over
// balanced partitions (|U| = n/2, or (n±1)/2 for odd n), matching Table
// II's "Bi. BW" column. Exhaustive for n <= ExactCutLimit, heuristic
// beyond.
func (t *Topology) BisectionBandwidth() int {
	_, bw := t.BisectionCut()
	return bw
}

// BisectionCut returns a minimizing balanced partition mask along with
// its min-direction crossing count (the bisection bandwidth).
func (t *Topology) BisectionCut() (uint64, int) {
	n := t.n
	half := n / 2
	if n <= ExactCutLimit {
		out := t.outMasks()
		in := t.inMasks()
		full := uint64(1)<<uint(n) - 1
		best := math.MaxInt32
		var bestMask uint64
		// Enumerate subsets of {1..n-1} of size half-1 (router 0 in U) and,
		// for odd n, also size half (|U| = half+1 handled by symmetry of
		// the complement).
		var rec func(start, remaining int, mask uint64)
		rec = func(start, remaining int, mask uint64) {
			if remaining == 0 {
				uMask := mask | 1
				vMask := full &^ uMask
				crossUV, crossVU := 0, 0
				rem := uMask
				for rem != 0 {
					a := bits.TrailingZeros64(rem)
					rem &= rem - 1
					crossUV += bits.OnesCount64(out[a] & vMask)
					crossVU += bits.OnesCount64(in[a] & vMask)
				}
				c := crossUV
				if crossVU < c {
					c = crossVU
				}
				if c < best {
					best = c
					bestMask = uMask
				}
				return
			}
			for v := start; v < n; v++ {
				rec(v+1, remaining-1, mask|1<<uint(v))
			}
		}
		rec(1, half-1, 0)
		if n%2 == 1 {
			rec(1, half, 0)
		}
		return bestMask, best
	}
	// Heuristic: balanced KL restarts.
	rng := rand.New(rand.NewSource(7))
	best := math.MaxInt32
	var bestMask uint64
	order := t.fiedlerOrder()
	evalBalanced := func(uMask uint64) {
		c := t.EvaluateCut(uMask)
		cr := c.CrossUV
		if c.CrossVU < cr {
			cr = c.CrossVU
		}
		if cr < best {
			best = cr
			bestMask = uMask
		}
	}
	var m uint64
	for i := 0; i < half; i++ {
		m |= 1 << uint(order[i])
	}
	evalBalanced(m)
	for r := 0; r < 200; r++ {
		perm := rng.Perm(n)
		var mask uint64
		for i := 0; i < half; i++ {
			mask |= 1 << uint(perm[i])
		}
		// Greedy swap improvement preserving balance.
		cur := mask
		improved := true
		for improved {
			improved = false
			bestMask, bestVal := cur, crossOf(t, cur)
			for a := 0; a < n; a++ {
				if cur&(1<<uint(a)) == 0 {
					continue
				}
				for b := 0; b < n; b++ {
					if cur&(1<<uint(b)) != 0 {
						continue
					}
					cand := cur ^ (1 << uint(a)) ^ (1 << uint(b))
					if v := crossOf(t, cand); v < bestVal {
						bestVal, bestMask = v, cand
					}
				}
			}
			if bestMask != cur {
				cur = bestMask
				improved = true
			}
		}
		evalBalanced(cur)
	}
	return bestMask, best
}

func crossOf(t *Topology, uMask uint64) int {
	c := t.EvaluateCut(uMask)
	if c.CrossVU < c.CrossUV {
		return c.CrossVU
	}
	return c.CrossUV
}
