package topo

import (
	"math"
	"math/bits"
	"math/rand"

	"netsmith/internal/bitgraph"
)

// ExactCutLimit is the largest router count for which cut metrics are
// computed by exhaustive partition enumeration (2^(n-1) subsets). Beyond
// this, Kernighan–Lin style local search seeded by a Fiedler-vector sweep
// is used; the heuristic value is an upper bound on the true minimum.
const ExactCutLimit = 24

// Cut describes a two-way partition of the routers and its bandwidth.
type Cut struct {
	// U holds the routers in partition U; V is the complement. Networks
	// beyond 64 routers are supported (U is a multi-word bitset).
	U bitgraph.Set
	// CrossUV and CrossVU count directed links from U to V and V to U.
	CrossUV, CrossVU int
	// Bandwidth is the paper's B(U,V): min-direction crossings divided by
	// |U|*|V| (the minimum of the two directions is the true bottleneck
	// for asymmetric links).
	Bandwidth float64
}

// Size returns |U|.
func (c Cut) Size() int { return c.U.Count() }

// bitGraph returns the cached bitset view of the topology.
func (t *Topology) bitGraph() *bitgraph.Graph {
	t.refresh()
	return t.bg
}

// outMasks returns, for each router, the single-word bitmask of its
// out-neighbors; callers must guarantee n <= 64 (the exhaustive paths,
// gated on ExactCutLimit, do).
func (t *Topology) outMasks() []uint64 {
	bg := t.bitGraph()
	masks := make([]uint64, t.n)
	for a := 0; a < t.n; a++ {
		masks[a] = bg.OutRow(a)[0]
	}
	return masks
}

// inMasks returns, for each router, the single-word bitmask of its
// in-neighbors (n <= 64 only, as for outMasks).
func (t *Topology) inMasks() []uint64 {
	bg := t.bitGraph()
	masks := make([]uint64, t.n)
	for a := 0; a < t.n; a++ {
		masks[a] = bg.InRow(a)[0]
	}
	return masks
}

// EvaluateCut computes the cut defined by u (partition U) against its
// complement. The set must have been created for this topology's router
// count.
func (t *Topology) EvaluateCut(u bitgraph.Set) Cut {
	bg := t.bitGraph()
	uc := u.Clone()
	full := bg.Full()
	for i := range uc {
		uc[i] &= full[i]
	}
	crossUV, crossVU := bg.Cross(uc)
	sizeU := uc.Count()
	sizeV := t.n - sizeU
	bw := math.Inf(1)
	if sizeU > 0 && sizeV > 0 {
		minCross := crossUV
		if crossVU < minCross {
			minCross = crossVU
		}
		bw = float64(minCross) / float64(sizeU*sizeV)
	}
	return Cut{U: uc, CrossUV: crossUV, CrossVU: crossVU, Bandwidth: bw}
}

// EvaluateCutMask is EvaluateCut for a single-word partition mask
// (convenience for networks of at most 64 routers).
func (t *Topology) EvaluateCutMask(uMask uint64) Cut {
	return t.EvaluateCut(bitgraph.MaskSet(t.n, uMask))
}

// SparsestCut returns the cut minimizing B(U,V) = minCross/(|U||V|) over
// all two-way partitions (constraint C6 of Table I). For n <= ExactCutLimit
// the search is exhaustive (router 0 pinned to U, halving the space); for
// larger networks a heuristic (see HeuristicSparsestCut) is used and the
// result is an upper bound on the true minimum.
func (t *Topology) SparsestCut() Cut {
	if t.n <= ExactCutLimit {
		return t.exactSparsestCut()
	}
	return t.HeuristicSparsestCut(64, rand.New(rand.NewSource(1)))
}

func (t *Topology) exactSparsestCut() Cut {
	n := t.n
	out := t.outMasks()
	in := t.inMasks()
	full := uint64(1)<<uint(n) - 1
	bestBW := math.Inf(1)
	var bestMask uint64
	bestUV, bestVU := 0, 0
	// Enumerate subsets S of routers {1..n-1}; U = S | {0}.
	limit := uint64(1) << uint(n-1)
	for s := uint64(0); s < limit; s++ {
		uMask := (s << 1) | 1
		vMask := full &^ uMask
		if vMask == 0 {
			continue
		}
		sizeU := bits.OnesCount64(uMask)
		sizeV := n - sizeU
		crossUV, crossVU := 0, 0
		rem := uMask
		for rem != 0 {
			a := bits.TrailingZeros64(rem)
			rem &= rem - 1
			crossUV += bits.OnesCount64(out[a] & vMask)
			crossVU += bits.OnesCount64(in[a] & vMask)
		}
		minCross := crossUV
		if crossVU < minCross {
			minCross = crossVU
		}
		bw := float64(minCross) / float64(sizeU*sizeV)
		if bw < bestBW {
			bestBW = bw
			bestMask = uMask
			bestUV, bestVU = crossUV, crossVU
		}
	}
	return Cut{U: bitgraph.MaskSet(n, bestMask), CrossUV: bestUV, CrossVU: bestVU, Bandwidth: bestBW}
}

// HeuristicSparsestCut searches for a low-bandwidth cut using restarts of
// greedy single-node moves (Kernighan–Lin style) plus one Fiedler-vector
// sweep seed. It returns the best cut found; its bandwidth is an upper
// bound on the true sparsest cut.
func (t *Topology) HeuristicSparsestCut(restarts int, rng *rand.Rand) Cut {
	n := t.n
	best := Cut{Bandwidth: math.Inf(1)}
	consider := func(mask bitgraph.Set) {
		c := t.EvaluateCut(mask)
		if s := c.Size(); s == 0 || s == n {
			return
		}
		c = t.localImproveCut(c.U)
		if c.Bandwidth < best.Bandwidth {
			best = c
		}
	}
	// Fiedler sweep seed: order routers by approximate second Laplacian
	// eigenvector, try every prefix cut.
	order := t.fiedlerOrder()
	mask := bitgraph.NewSet(n)
	for i := 0; i < n-1; i++ {
		mask.Add(order[i])
		consider(mask)
	}
	// Random restarts.
	for r := 0; r < restarts; r++ {
		m := bitgraph.NewSet(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				m.Add(v)
			}
		}
		consider(m)
	}
	return best
}

// localImproveCut greedily moves single routers across the cut while the
// bandwidth decreases.
func (t *Topology) localImproveCut(u bitgraph.Set) Cut {
	n := t.n
	cur := t.EvaluateCut(u)
	work := cur.U.Clone()
	improved := true
	for improved {
		improved = false
		for v := 0; v < n; v++ {
			work.Flip(v)
			next := t.EvaluateCut(work)
			if s := next.Size(); s == 0 || s == n || next.Bandwidth >= cur.Bandwidth {
				work.Flip(v) // revert
				continue
			}
			cur = next
			improved = true
		}
	}
	return cur
}

// fiedlerOrder approximates the Fiedler (second Laplacian eigen-) vector
// of the symmetrized graph by power iteration with deflation of the
// all-ones vector, returning routers sorted by component value.
func (t *Topology) fiedlerOrder() []int {
	n := t.n
	// Symmetrized adjacency weights.
	w := make([][]float64, n)
	deg := make([]float64, n)
	for a := 0; a < n; a++ {
		w[a] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if t.adj[a][b] || t.adj[b][a] {
				w[a][b] = 1
			}
		}
	}
	maxDeg := 0.0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			deg[a] += w[a][b]
		}
		if deg[a] > maxDeg {
			maxDeg = deg[a]
		}
	}
	// Power-iterate on M = (maxDeg+1)I - L, whose dominant eigenvector
	// after deflating the constant vector is the Fiedler vector.
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)*1.7 + 0.3) // deterministic non-constant seed
	}
	y := make([]float64, n)
	for iter := 0; iter < 200; iter++ {
		// Deflate constant component.
		mean := 0.0
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
		for i := range x {
			x[i] -= mean
		}
		// y = Mx = (maxDeg+1)x - Lx = (maxDeg+1)x - deg*x + Wx
		for i := 0; i < n; i++ {
			sum := (maxDeg + 1 - deg[i]) * x[i]
			for j := 0; j < n; j++ {
				if w[i][j] != 0 {
					sum += w[i][j] * x[j]
				}
			}
			y[i] = sum
		}
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := range x {
			x[i] = y[i] / norm
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort by x value
		for j := i; j > 0 && x[order[j]] < x[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// BisectionBandwidth returns the minimum min-direction crossing count over
// balanced partitions (|U| = n/2, or (n±1)/2 for odd n), matching Table
// II's "Bi. BW" column. Exhaustive for n <= ExactCutLimit, heuristic
// beyond.
func (t *Topology) BisectionBandwidth() int {
	_, bw := t.BisectionCut()
	return bw
}

// BisectionCut returns a minimizing balanced partition along with its
// min-direction crossing count (the bisection bandwidth).
func (t *Topology) BisectionCut() (bitgraph.Set, int) {
	n := t.n
	half := n / 2
	if n <= ExactCutLimit {
		out := t.outMasks()
		in := t.inMasks()
		full := uint64(1)<<uint(n) - 1
		best := math.MaxInt32
		var bestMask uint64
		// Enumerate subsets of {1..n-1} of size half-1 (router 0 in U) and,
		// for odd n, also size half (|U| = half+1 handled by symmetry of
		// the complement).
		var rec func(start, remaining int, mask uint64)
		rec = func(start, remaining int, mask uint64) {
			if remaining == 0 {
				uMask := mask | 1
				vMask := full &^ uMask
				crossUV, crossVU := 0, 0
				rem := uMask
				for rem != 0 {
					a := bits.TrailingZeros64(rem)
					rem &= rem - 1
					crossUV += bits.OnesCount64(out[a] & vMask)
					crossVU += bits.OnesCount64(in[a] & vMask)
				}
				c := crossUV
				if crossVU < c {
					c = crossVU
				}
				if c < best {
					best = c
					bestMask = uMask
				}
				return
			}
			for v := start; v < n; v++ {
				rec(v+1, remaining-1, mask|1<<uint(v))
			}
		}
		rec(1, half-1, 0)
		if n%2 == 1 {
			rec(1, half, 0)
		}
		return bitgraph.MaskSet(n, bestMask), best
	}
	// Heuristic: balanced KL restarts.
	bg := t.bitGraph()
	rng := rand.New(rand.NewSource(7))
	best := math.MaxInt32
	var bestSet bitgraph.Set
	evalBalanced := func(u bitgraph.Set) {
		if cr := bg.MinCross(u); cr < best {
			best = cr
			bestSet = u.Clone()
		}
	}
	order := t.fiedlerOrder()
	m := bitgraph.NewSet(n)
	for i := 0; i < half; i++ {
		m.Add(order[i])
	}
	evalBalanced(m)
	for r := 0; r < 200; r++ {
		perm := rng.Perm(n)
		cur := bitgraph.NewSet(n)
		for i := 0; i < half; i++ {
			cur.Add(perm[i])
		}
		// Greedy swap improvement preserving balance.
		improved := true
		for improved {
			improved = false
			curVal := bg.MinCross(cur)
			bestVal := curVal
			bestA, bestB := -1, -1
			for a := 0; a < n; a++ {
				if !cur.Has(a) {
					continue
				}
				for b := 0; b < n; b++ {
					if cur.Has(b) {
						continue
					}
					cur.Flip(a)
					cur.Flip(b)
					if v := bg.MinCross(cur); v < bestVal {
						bestVal, bestA, bestB = v, a, b
					}
					cur.Flip(a)
					cur.Flip(b)
				}
			}
			if bestA >= 0 {
				cur.Flip(bestA)
				cur.Flip(bestB)
				improved = true
			}
		}
		evalBalanced(cur)
	}
	return bestSet, best
}
