package topo

import (
	"encoding/json"
	"strings"
	"testing"

	"netsmith/internal/layout"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := New("test-topo", layout.Grid4x5, layout.Medium)
	orig.AddLink(0, 1)
	orig.AddLink(1, 0)
	orig.AddLink(3, 5) // unidirectional
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "test-topo" || back.Class != layout.Medium {
		t.Errorf("metadata lost: %q %v", back.Name, back.Class)
	}
	if back.Grid.Rows != 4 || back.Grid.Cols != 5 {
		t.Error("grid lost")
	}
	if back.CanonicalLinkList() != orig.CanonicalLinkList() {
		t.Errorf("links differ: %s vs %s", back.CanonicalLinkList(), orig.CanonicalLinkList())
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"name":"x","rows":0,"cols":5,"class":"small"}`,
		`{"name":"x","rows":2,"cols":2,"class":"giant"}`,
		`{"name":"x","rows":2,"cols":2,"class":"small","links":[[0,9]]}`,
		`{"name":"x","rows":2,"cols":2,"class":"small","links":[[1,1]]}`,
	}
	for _, c := range cases {
		var tp Topology
		if err := json.Unmarshal([]byte(c), &tp); err == nil {
			t.Errorf("input %s should fail", c)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	tp := New("dot-test", layout.NewGrid(2, 2), layout.Small)
	tp.AddLink(0, 1)
	tp.AddLink(1, 0)
	tp.AddLink(2, 3)
	dot := tp.DOT()
	if !strings.Contains(dot, "digraph") {
		t.Error("missing digraph header")
	}
	if !strings.Contains(dot, "0 -> 1 [dir=both]") {
		t.Error("bidirectional pair must be one both-direction edge")
	}
	if !strings.Contains(dot, "2 -> 3 [style=dashed]") {
		t.Error("unidirectional link must be dashed")
	}
	if strings.Contains(dot, "1 -> 0") {
		t.Error("reverse of a both-edge must not be emitted")
	}
}
