// Package topo defines the directed network topology representation used
// throughout NetSmith and the graph metrics the optimizer reasons about:
// all-pairs shortest-path hop distances, average hops, diameter, bisection
// bandwidth and sparsest cut.
//
// Topologies are directed: NetSmith supports asymmetric links, where the
// outgoing half of a full-duplex link budget may connect to a different
// router than the incoming half (as in the SiCortex Kautz networks). A
// symmetric topology simply contains both directions of every link.
package topo

import (
	"fmt"
	"sort"
	"strings"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
)

// Topology is a directed graph over n routers placed on a physical grid.
type Topology struct {
	Name  string
	Grid  *layout.Grid
	Class layout.Class
	n     int
	adj   [][]bool
	// out and in cache adjacency lists; linkList and linkID cache the
	// dense directed-link numbering; bg caches the bitset view used by
	// the cut metrics. All are rebuilt lazily after mutation.
	out, in  [][]int
	linkList []layout.Link
	linkID   []int32 // n*n lookup, -1 for absent links
	bg       *bitgraph.Graph
	dirty    bool
}

// New creates an empty topology over the grid.
func New(name string, g *layout.Grid, c layout.Class) *Topology {
	n := g.N()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Topology{Name: name, Grid: g, Class: c, n: n, adj: adj, dirty: true}
}

// FromLinks builds a topology from a list of directed links.
func FromLinks(name string, g *layout.Grid, c layout.Class, links []layout.Link) *Topology {
	t := New(name, g, c)
	for _, l := range links {
		t.AddLink(l.From, l.To)
	}
	return t
}

// FromPairs builds a topology from undirected pairs, adding both
// directions of each link.
func FromPairs(name string, g *layout.Grid, c layout.Class, pairs [][2]int) *Topology {
	t := New(name, g, c)
	for _, p := range pairs {
		t.AddLink(p[0], p[1])
		t.AddLink(p[1], p[0])
	}
	return t
}

// N returns the number of routers.
func (t *Topology) N() int { return t.n }

// Has reports whether the directed link a->b exists.
func (t *Topology) Has(a, b int) bool { return t.adj[a][b] }

// AddLink inserts the directed link a->b (idempotent).
func (t *Topology) AddLink(a, b int) {
	if a == b {
		panic(fmt.Sprintf("topo: self link %d->%d", a, b))
	}
	if !t.adj[a][b] {
		t.adj[a][b] = true
		t.dirty = true
	}
}

// RemoveLink deletes the directed link a->b (idempotent).
func (t *Topology) RemoveLink(a, b int) {
	if t.adj[a][b] {
		t.adj[a][b] = false
		t.dirty = true
	}
}

// Clone returns a deep copy, preserving name unless renamed later.
func (t *Topology) Clone() *Topology {
	c := New(t.Name, t.Grid, t.Class)
	for i := 0; i < t.n; i++ {
		copy(c.adj[i], t.adj[i])
	}
	return c
}

// Links returns all directed links in deterministic (dense-ID) order.
// The caller may keep or mutate the returned slice.
func (t *Topology) Links() []layout.Link {
	t.refresh()
	links := make([]layout.Link, len(t.linkList))
	copy(links, t.linkList)
	return links
}

// NumDirectedLinks counts directed links. It is also the number of
// dense link IDs: IDs are 0..NumDirectedLinks()-1.
func (t *Topology) NumDirectedLinks() int {
	t.refresh()
	return len(t.linkList)
}

// LinkID returns the dense ID of the directed link a->b, or -1 when the
// link does not exist. IDs are contiguous in [0, NumDirectedLinks()) and
// enumerate links in the deterministic Links() order; they are stable
// until the topology is mutated.
func (t *Topology) LinkID(a, b int) int {
	t.refresh()
	return int(t.linkID[a*t.n+b])
}

// LinkByID returns the directed link with the given dense ID.
func (t *Topology) LinkByID(id int) layout.Link {
	t.refresh()
	return t.linkList[id]
}

// NumLinks counts links in the paper's Table II accounting: hardware
// full-duplex link budgets. Each full-duplex link contributes one outgoing
// and one incoming wire half; with asymmetric links the two halves may
// terminate at different routers, so the budget count is the number of
// directed wires divided by two (rounded up). For symmetric topologies
// this equals the usual undirected link count.
func (t *Topology) NumLinks() int {
	return (t.NumDirectedLinks() + 1) / 2
}

// refresh rebuilds adjacency lists and the dense link index after
// mutations.
func (t *Topology) refresh() {
	if !t.dirty {
		return
	}
	t.out = make([][]int, t.n)
	t.in = make([][]int, t.n)
	t.linkList = t.linkList[:0]
	if t.linkID == nil {
		t.linkID = make([]int32, t.n*t.n)
	}
	t.bg = bitgraph.New(t.n)
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if t.adj[a][b] {
				t.out[a] = append(t.out[a], b)
				t.in[b] = append(t.in[b], a)
				t.linkID[a*t.n+b] = int32(len(t.linkList))
				t.linkList = append(t.linkList, layout.Link{From: a, To: b})
				t.bg.Add(a, b)
			} else {
				t.linkID[a*t.n+b] = -1
			}
		}
	}
	t.dirty = false
}

// Out returns the out-neighbors of router a. The returned slice must not
// be modified.
func (t *Topology) Out(a int) []int {
	t.refresh()
	return t.out[a]
}

// In returns the in-neighbors of router a. The returned slice must not be
// modified.
func (t *Topology) In(a int) []int {
	t.refresh()
	return t.in[a]
}

// OutDegree returns the number of outgoing links at router a.
func (t *Topology) OutDegree(a int) int { return len(t.Out(a)) }

// InDegree returns the number of incoming links at router a.
func (t *Topology) InDegree(a int) int { return len(t.In(a)) }

// MaxRadix returns the maximum in- or out-degree over all routers.
func (t *Topology) MaxRadix() int {
	max := 0
	for a := 0; a < t.n; a++ {
		if d := t.OutDegree(a); d > max {
			max = d
		}
		if d := t.InDegree(a); d > max {
			max = d
		}
	}
	return max
}

// RespectsRadix reports whether every router's in- and out-degree is at
// most radix (constraint C2 of Table I).
func (t *Topology) RespectsRadix(radix int) bool {
	for a := 0; a < t.n; a++ {
		if t.OutDegree(a) > radix || t.InDegree(a) > radix {
			return false
		}
	}
	return true
}

// RespectsLinkLengths reports whether every link is within the topology's
// link-length class (constraint C3 of Table I).
func (t *Topology) RespectsLinkLengths() bool {
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if t.adj[a][b] {
				dx, dy := t.Grid.Span(a, b)
				if !t.Class.Allows(dx, dy) {
					return false
				}
			}
		}
	}
	return true
}

// IsSymmetric reports whether every link a->b is paired with b->a
// (constraint C9 of Table I).
func (t *Topology) IsSymmetric() bool {
	for a := 0; a < t.n; a++ {
		for b := a + 1; b < t.n; b++ {
			if t.adj[a][b] != t.adj[b][a] {
				return false
			}
		}
	}
	return true
}

// TotalWireLengthMM sums the physical wire length over all directed links
// (each direction is a separate wire), used by the power/area model.
func (t *Topology) TotalWireLengthMM() float64 {
	total := 0.0
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if t.adj[a][b] {
				total += t.Grid.LengthMM(a, b)
			}
		}
	}
	return total
}

// LinkSpanHistogram counts links (Table II style: bidirectional pair = 1)
// by their Kite span name, e.g. "(1,0)", "(2,1)".
func (t *Topology) LinkSpanHistogram() map[string]int {
	hist := make(map[string]int)
	seen := make(map[[2]int]bool)
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if !t.adj[a][b] {
				continue
			}
			key := [2]int{a, b}
			if a > b {
				key = [2]int{b, a}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			dx, dy := t.Grid.Span(a, b)
			if dy > dx {
				dx, dy = dy, dx
			}
			hist[fmt.Sprintf("(%d,%d)", dx, dy)]++
		}
	}
	return hist
}

// String renders a compact description.
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s, %s]: %d links", t.Name, t.Grid, t.Class, t.NumLinks())
	return b.String()
}

// CanonicalLinkList renders the link set as a sorted, comparable string
// (used in tests to detect identical topologies).
func (t *Topology) CanonicalLinkList() string {
	links := t.Links()
	parts := make([]string, len(links))
	for i, l := range links {
		parts[i] = fmt.Sprintf("%d>%d", l.From, l.To)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
