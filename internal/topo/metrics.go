package topo

import "math"

// Unreachable is the hop distance reported between disconnected routers.
const Unreachable = math.MaxInt32

// ShortestPaths computes all-pairs shortest hop distances by running one
// BFS per source over the directed graph. dist[s][d] == Unreachable when d
// cannot be reached from s. The diagonal is zero.
func (t *Topology) ShortestPaths() [][]int {
	t.refresh()
	n := t.n
	dist := make([][]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		row := make([]int, n)
		for i := range row {
			row[i] = Unreachable
		}
		row[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			du := row[u]
			for _, v := range t.out[u] {
				if row[v] == Unreachable {
					row[v] = du + 1
					queue = append(queue, v)
				}
			}
		}
		dist[s] = row
	}
	return dist
}

// IsConnected reports whether every router can reach every other router
// (strong connectivity, since links are directed).
func (t *Topology) IsConnected() bool {
	dist := t.ShortestPaths()
	for s := range dist {
		for d, h := range dist[s] {
			if s != d && h == Unreachable {
				return false
			}
		}
	}
	return true
}

// TotalHops returns the sum of shortest-path hop distances over all
// ordered source/destination pairs (the paper's O1 objective, Dtotal), or
// (sum, false) when the network is disconnected.
func (t *Topology) TotalHops() (int, bool) {
	dist := t.ShortestPaths()
	total := 0
	for s := range dist {
		for d, h := range dist[s] {
			if s == d {
				continue
			}
			if h == Unreachable {
				return 0, false
			}
			total += h
		}
	}
	return total, true
}

// AverageHops returns the mean shortest-path hop count over all ordered
// pairs, excluding self-pairs (Table II's "Avg. Hops"). Returns +Inf when
// disconnected.
func (t *Topology) AverageHops() float64 {
	total, ok := t.TotalHops()
	if !ok {
		return math.Inf(1)
	}
	pairs := t.n * (t.n - 1)
	return float64(total) / float64(pairs)
}

// WeightedAverageHops returns the traffic-weighted mean hop count for a
// demand matrix w (w[s][d] >= 0). Pairs with zero weight are ignored.
// Returns +Inf if any positively weighted pair is disconnected.
func (t *Topology) WeightedAverageHops(w [][]float64) float64 {
	dist := t.ShortestPaths()
	sum, wsum := 0.0, 0.0
	for s := range dist {
		for d := range dist[s] {
			if s == d || w[s][d] == 0 {
				continue
			}
			if dist[s][d] == Unreachable {
				return math.Inf(1)
			}
			sum += w[s][d] * float64(dist[s][d])
			wsum += w[s][d]
		}
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Diameter returns the maximum shortest-path distance over all pairs, or
// Unreachable when disconnected.
func (t *Topology) Diameter() int {
	dist := t.ShortestPaths()
	max := 0
	for s := range dist {
		for d, h := range dist[s] {
			if s == d {
				continue
			}
			if h == Unreachable {
				return Unreachable
			}
			if h > max {
				max = h
			}
		}
	}
	return max
}

// HopHistogram returns counts of ordered pairs by their shortest-path hop
// distance; index i holds the number of pairs at distance i. Disconnected
// pairs are omitted.
func (t *Topology) HopHistogram() []int {
	dist := t.ShortestPaths()
	var hist []int
	for s := range dist {
		for d, h := range dist[s] {
			if s == d || h == Unreachable {
				continue
			}
			for len(hist) <= h {
				hist = append(hist, 0)
			}
			hist[h]++
		}
	}
	return hist
}
