package bitgraph

import "math/bits"

// wordBits is the number of bits per Set word.
const wordBits = 64

// Set is a fixed-capacity bitset over node indices, stored as 64-bit
// words. A Set created for an n-node graph has ceil(n/64) words; all
// operations assume operands were created for the same n. The zero-length
// Set is valid and empty.
type Set []uint64

// wordsFor returns the number of words needed for n bits.
func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// NewSet returns an empty set with capacity for n nodes.
func NewSet(n int) Set { return make(Set, wordsFor(n)) }

// SetOf returns a set over n nodes containing the given members.
func SetOf(n int, members ...int) Set {
	s := NewSet(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// MaskSet converts a single-word bitmask (node i present iff bit i set)
// to a Set over n nodes; n may exceed 64, in which case the high nodes
// are absent. Convenience for tests and small-n callers.
func MaskSet(n int, mask uint64) Set {
	s := NewSet(n)
	if len(s) > 0 {
		if n < wordBits {
			mask &= 1<<uint(n) - 1
		}
		s[0] = mask
	}
	return s
}

// FullSet returns the set of all n nodes.
func FullSet(n int) Set {
	s := NewSet(n)
	for i := range s {
		s[i] = ^uint64(0)
	}
	if r := n % wordBits; r != 0 && len(s) > 0 {
		s[len(s)-1] = 1<<uint(r) - 1
	}
	return s
}

// Has reports whether node i is in the set.
func (s Set) Has(i int) bool { return s[i/wordBits]&(1<<uint(i%wordBits)) != 0 }

// Add inserts node i.
func (s Set) Add(i int) { s[i/wordBits] |= 1 << uint(i%wordBits) }

// Del removes node i.
func (s Set) Del(i int) { s[i/wordBits] &^= 1 << uint(i%wordBits) }

// Flip toggles node i.
func (s Set) Flip(i int) { s[i/wordBits] ^= 1 << uint(i%wordBits) }

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality (operands must share capacity).
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i, w := range s {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with o (same capacity).
func (s Set) CopyFrom(o Set) { copy(s, o) }

// Clear removes every element.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// ComplementWithin returns full &^ s: the complement of s restricted to
// the node universe described by full.
func (s Set) ComplementWithin(full Set) Set {
	c := make(Set, len(s))
	for i := range c {
		c[i] = full[i] &^ s[i]
	}
	return c
}

// SamePartition reports whether a and b describe the same two-way
// partition of the node universe full: equal sets, or complements of
// each other within it. This is the single definition of cut-pool
// partition identity (used by both the synthesis cut pool and Eval's
// crossing-counter pool).
func SamePartition(a, b, full Set) bool {
	if len(a) != len(b) || len(a) != len(full) {
		return false
	}
	eq, comp := true, true
	for i := range a {
		if a[i] != b[i] {
			eq = false
		}
		if a[i] != full[i]&^b[i] {
			comp = false
		}
		if !eq && !comp {
			return false
		}
	}
	return true
}

// AndCount returns |s ∩ o| without allocating.
func AndCount(s, o Set) int {
	c := 0
	for i, w := range s {
		c += bits.OnesCount64(w & o[i])
	}
	return c
}

// ForEach calls fn for every member in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// String renders the set as a {a,b,...} member list (for debugging).
func (s Set) String() string {
	out := []byte{'{'}
	first := true
	s.ForEach(func(i int) {
		if !first {
			out = append(out, ',')
		}
		first = false
		out = appendInt(out, i)
	})
	return string(append(out, '}'))
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}
