package bitgraph

import "testing"

// costOf prices links asymmetrically so direction mistakes show up.
func testCost(a, b int) int64 { return int64(31*a + b + 1) }

func recomputeCost(g *Graph) int64 {
	var sum int64
	for _, l := range g.Links() {
		sum += testCost(l.A, l.B)
	}
	return sum
}

// TestEvalLinkCostMaintained drives the maintained link-cost sum through
// adds, removes, duplicate no-ops and transactional commit/rollback and
// requires exact agreement with a from-scratch pricing at every step.
func TestEvalLinkCostMaintained(t *testing.T) {
	g := New(12)
	for i := 0; i < 12; i++ {
		g.Add(i, (i+1)%12)
	}
	e := NewEval(g, nil)
	e.SetLinkCost(testCost)
	if got, want := e.LinkCost(), recomputeCost(g); got != want {
		t.Fatalf("initial cost %d != %d", got, want)
	}

	check := func(step string) {
		t.Helper()
		if got, want := e.LinkCost(), recomputeCost(e.Graph()); got != want {
			t.Fatalf("%s: cost %d != recomputed %d", step, got, want)
		}
		if err := e.CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}

	e.Add(0, 5)
	e.Add(0, 5) // duplicate: must not double-charge
	check("add")
	e.Remove(0, 5)
	e.Remove(0, 5) // absent: must not refund twice
	check("remove")

	e.Begin()
	e.Add(2, 7)
	e.Remove(3, 4)
	e.Commit()
	check("commit")

	before := e.LinkCost()
	e.Begin()
	e.Add(5, 9)
	e.Remove(6, 7)
	e.Add(1, 8)
	e.Rollback()
	check("rollback")
	if e.LinkCost() != before {
		t.Fatalf("rollback: cost %d != pre-transaction %d", e.LinkCost(), before)
	}

	// Re-pricing resets the sum for the current link set.
	e.SetLinkCost(func(a, b int) int64 { return 2 * testCost(a, b) })
	if got := e.LinkCost(); got != 2*before {
		t.Fatalf("re-priced cost %d != %d", got, 2*before)
	}
	e.SetLinkCost(nil)
	if e.LinkCost() != 0 {
		t.Fatal("nil pricer must clear the sum")
	}
}
