package bitgraph

import (
	"math"
	"math/rand"
	"testing"
)

// randomConnected builds a random graph seeded with a ring so most
// mutations keep it connected.
func randomConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.Add(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.Add(i, j)
			}
		}
	}
	return g
}

func randomPool(n, cuts int, rng *rand.Rand) []Set {
	pool := make([]Set, 0, cuts)
	for len(pool) < cuts {
		m := NewSet(n)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				m.Add(v)
			}
		}
		if c := m.Count(); c == 0 || c == n {
			continue
		}
		pool = append(pool, m)
	}
	return pool
}

func TestEvalMatchesHopStats(t *testing.T) {
	for _, n := range []int{7, 20, 70, 100} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := randomConnected(n, 0.1, rng)
		e := NewEval(g, nil)
		total, unreach, diam := g.HopStats()
		if e.Total() != total || e.Unreachable() != unreach || e.Diameter() != diam {
			t.Errorf("n=%d: eval (%d,%d,%d) != HopStats (%d,%d,%d)",
				n, e.Total(), e.Unreachable(), e.Diameter(), total, unreach, diam)
		}
	}
}

// The core cross-check: randomized Add/Remove sequences with mixed
// Commit/Rollback decisions must keep every incremental aggregate
// bit-identical to a from-scratch recomputation.
func TestEvalIncrementalMatchesRecompute(t *testing.T) {
	for _, n := range []int{9, 20, 25, 66, 90} {
		rng := rand.New(rand.NewSource(int64(n) * 31))
		g := randomConnected(n, 0.08, rng)
		// Odd n runs the single-word fast-repair path (no weights, no
		// diameter tracking); even n runs the slow recompute path with
		// both weighted aggregates and the diameter histogram.
		var w [][]float64
		if n%2 == 0 {
			w = make([][]float64, n)
			for i := range w {
				w[i] = make([]float64, n)
				for j := range w[i] {
					if i != j && rng.Float64() < 0.3 {
						w[i][j] = rng.Float64() * 4
					}
				}
			}
		}
		e := NewEval(g, w)
		if n%2 == 0 {
			e.TrackDiameter()
		}
		for _, m := range randomPool(n, 8, rng) {
			e.AddCut(m)
		}
		for step := 0; step < 300; step++ {
			e.Begin()
			// Apply 1-3 random ops (mimics add/remove/swap moves).
			ops := 1 + rng.Intn(3)
			for o := 0; o < ops; o++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					continue
				}
				if g.Has(a, b) {
					e.Remove(a, b)
				} else {
					e.Add(a, b)
				}
			}
			if rng.Intn(2) == 0 {
				e.Commit()
			} else {
				e.Rollback()
			}
			if step%25 == 0 || step == 299 {
				if err := e.CheckConsistency(); err != nil {
					t.Fatalf("n=%d step %d: %v", n, step, err)
				}
				if w != nil {
					wantW, wantWU := g.WeightedHops(w)
					gotW, gotWU := e.WeightedTotal()
					if math.Abs(gotW-wantW) > 1e-9 || gotWU != wantWU {
						t.Fatalf("n=%d step %d: weighted (%v,%d) != (%v,%d)",
							n, step, gotW, gotWU, wantW, wantWU)
					}
				}
			}
		}
	}
}

func TestEvalRollbackRestoresExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20
	g := randomConnected(n, 0.1, rng)
	e := NewEval(g, nil)
	for _, m := range randomPool(n, 5, rng) {
		e.AddCut(m)
	}
	total, unreach, diam := e.Total(), e.Unreachable(), e.Diameter()
	pm := e.PoolMin()
	links := g.NumLinks()
	e.Begin()
	e.Remove(0, 1)
	e.Add(3, 17)
	e.Remove(5, 6)
	e.Rollback()
	if e.Total() != total || e.Unreachable() != unreach || e.Diameter() != diam {
		t.Errorf("rollback aggregates (%d,%d,%d) != (%d,%d,%d)",
			e.Total(), e.Unreachable(), e.Diameter(), total, unreach, diam)
	}
	if e.PoolMin() != pm {
		t.Errorf("rollback pool min %v != %v", e.PoolMin(), pm)
	}
	if g.NumLinks() != links {
		t.Errorf("rollback links %d != %d", g.NumLinks(), links)
	}
	if err := e.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// AddCut must treat a partition and its complement within the n-node
// universe as the same cut (regression for the old ^mask dedup bug that
// compared against the complement over all 64 bits).
func TestEvalAddCutComplementDedup(t *testing.T) {
	g := New(10)
	for i := 0; i < 10; i++ {
		g.Add(i, (i+1)%10)
	}
	e := NewEval(g, nil)
	m := SetOf(10, 0, 1, 2, 3)
	if !e.AddCut(m) {
		t.Fatal("first AddCut must grow the pool")
	}
	if e.AddCut(m.Clone()) {
		t.Error("identical cut must be deduplicated")
	}
	comp := m.ComplementWithin(g.Full())
	if e.AddCut(comp) {
		t.Error("complement-within-n cut must be deduplicated")
	}
	if e.NumCuts() != 1 {
		t.Errorf("pool size %d, want 1", e.NumCuts())
	}
}

func TestEvalPoolMinMatchesGraph(t *testing.T) {
	for _, n := range []int{12, 30, 80} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := randomConnected(n, 0.12, rng)
		pool := randomPool(n, 10, rng)
		e := NewEval(g, nil)
		for _, m := range pool {
			e.AddCut(m)
		}
		if got, want := e.PoolMin(), g.PoolMin(pool); got != want {
			t.Errorf("n=%d: eval pool min %v != graph pool min %v", n, got, want)
		}
		// Mutate and compare again: counters must track exactly.
		for step := 0; step < 50; step++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if g.Has(a, b) {
				e.Remove(a, b)
			} else {
				e.Add(a, b)
			}
			if got, want := e.PoolMin(), g.PoolMin(pool); got != want {
				t.Fatalf("n=%d step %d: eval pool min %v != graph %v", n, step, got, want)
			}
		}
	}
}

func TestWeightedHopsMultiWord(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 70
	g := randomConnected(n, 0.05, rng)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = 1
			}
		}
	}
	wt, wu := g.WeightedHops(w)
	total, unreach, _ := g.HopStats()
	if wu != unreach {
		t.Errorf("weighted unreachable %d != %d", wu, unreach)
	}
	if math.Abs(wt-float64(total)) > 1e-6 {
		t.Errorf("unit-weight total %v != hop total %d", wt, total)
	}
}
