package bitgraph

import (
	"fmt"
	"math"
	"math/bits"
)

// Eval is a stateful incremental evaluator over a Graph. It maintains,
// under Add/Remove link mutations:
//
//   - per-source shortest-path distance vectors (one BFS row per source),
//   - the total hop count, unreachable-pair count and (optionally)
//     diameter aggregates,
//   - optional traffic-weighted hop aggregates, and
//   - per-cut crossing counters for a pool of partition sets.
//
// Mutations dirty only the sources whose rows actually change: removing
// link a->b invalidates exactly the sources s with dist(s,b) ==
// dist(s,a)+1 and no alternative predecessor of b at dist(s,a) (a
// shortest path must route through the link — subpaths of shortest
// paths are shortest); adding a->b invalidates exactly the sources with
// dist(s,a)+1 < dist(s,b) (the link creates a shortcut). Dirty sources
// are queued and recomputed lazily at the next aggregate read, so a
// multi-op move (swap, symmetric pair) — or a run of mutations whose
// score is never read — pays one BFS per distinct dirty source against
// the final graph. Pending() exposes the queue depth, letting callers
// recognize provably score-neutral mutations without any BFS. Cut
// counters update eagerly in O(pool) per mutation.
//
// Begin/Commit/Rollback bracket speculative moves: Rollback restores the
// journaled distance rows by copy (no BFS) so rejected annealing moves
// cost only the forward evaluation.
type Eval struct {
	g *Graph
	n int

	dist       []int16 // n x n row-major: dist[s*n+d], -1 unreachable
	srcTotal   []int64
	srcUnreach []int32

	total       int64
	unreachable int

	// Diameter tracking is opt-in (TrackDiameter): the histogram retire/
	// apply work is pure overhead for configs that never read Diameter().
	trackDiameter bool
	histo         []int64 // histo[d] = reachable ordered pairs at distance d
	maxDist       int     // diameter over reachable pairs (tracked mode)

	w           [][]float64 // optional demand matrix
	srcWTotal   []float64
	srcWUnreach []int32
	wTotal      float64
	wUnreach    int

	cuts []evalCut

	// Optional per-link cost aggregate (energy-aware synthesis): costOf
	// prices a directed link and costTotal tracks the sum over present
	// links. Costs are integers (callers pre-scale, e.g. milli-pJ) so the
	// incremental sum is exact and independent of mutation order — the
	// bit-identical incremental-vs-recompute contract extends to it.
	costOf    func(a, b int) int64
	costTotal int64
	snapCost  int64

	scratch *bfsScratch
	oldRow  []int16
	preds   []int32

	// Transposed level masks, maintained for graphs of at most 64
	// nodes (source sets then fit one word): T[v*(n+1)+d] is the bitmask
	// of sources whose distance to vertex v is exactly d, and reach[v]
	// the sources that reach v at all. They turn the per-op dirty-source
	// detection from an O(n) scalar scan into a handful of word
	// operations over distance levels.
	fastT bool
	T     []uint64
	reach []uint64

	// Deferred invalidation queue (see type comment). In fast mode the
	// queue only ever holds the dirty sources of a single removal
	// (additions repair eagerly and flush any pending removal first), so
	// flush can repair decrementally; singleRem/remB record that
	// removal's head vertex.
	pending   []int32
	pendGen   []uint32
	pendCur   uint32
	pendMask  uint64 // fast-mode mirror of the pending set
	singleRem bool
	remB      int
	wave      []int32

	// journal
	inTxn    bool
	ops      []linkOp
	rows     []rowSave
	rowPool  [][]int16
	savedGen []uint32
	savedIdx []int32 // index into rows, valid when savedGen matches
	curGen   uint32

	snapTotal    int64
	snapUnreach  int
	snapWTotal   float64
	snapWUnreach int
	snapHisto    []int64
	snapMaxDist  int
}

type evalCut struct {
	mask             Set
	pairs            float64 // |U| * |V|
	crossUV, crossVU int
}

type linkOp struct {
	a, b  int
	added bool
}

type rowSave struct {
	src      int
	row      []int16
	changed  uint64 // fast mode: vertices whose distance changed since the save
	total    int64
	unreach  int32
	wTotal   float64
	wUnreach int32
}

// NewEval builds an evaluator over g with an optional demand matrix
// (weights may be nil). The full evaluation runs once here; subsequent
// mutations are incremental. The Graph must only be mutated through the
// returned Eval from this point on.
func NewEval(g *Graph, weights [][]float64) *Eval {
	n := g.n
	e := &Eval{
		g:          g,
		n:          n,
		dist:       make([]int16, n*n),
		srcTotal:   make([]int64, n),
		srcUnreach: make([]int32, n),
		w:          weights,
		scratch:    newBFSScratch(n),
		oldRow:     make([]int16, n),
		savedGen:   make([]uint32, n),
		savedIdx:   make([]int32, n),
		pendGen:    make([]uint32, n),
		pendCur:    1,
	}
	if weights != nil {
		e.srcWTotal = make([]float64, n)
		e.srcWUnreach = make([]int32, n)
	}
	for s := 0; s < n; s++ {
		row := e.dist[s*n : (s+1)*n]
		total, reached := g.bfsRowStats(s, row, e.scratch)
		unreach := int32(n - reached)
		var wTotal float64
		var wUnreach int32
		if weights != nil {
			for v := 0; v < n; v++ {
				if v == s {
					continue
				}
				d := row[v]
				if d < 0 {
					if weights[s][v] > 0 {
						wUnreach++
					}
					continue
				}
				wTotal += weights[s][v] * float64(d)
			}
		}
		e.srcTotal[s] = total
		e.srcUnreach[s] = unreach
		e.total += total
		e.unreachable += int(unreach)
		if weights != nil {
			e.srcWTotal[s] = wTotal
			e.srcWUnreach[s] = wUnreach
			e.wTotal += wTotal
			e.wUnreach += int(wUnreach)
		}
	}
	if n <= MaxFastNodes {
		e.fastT = true
		e.T = make([]uint64, n*(n+1))
		e.reach = make([]uint64, n)
		for s := 0; s < n; s++ {
			bit := uint64(1) << uint(s)
			for v := 0; v < n; v++ {
				if d := e.dist[s*n+v]; d >= 0 {
					e.T[v*(n+1)+int(d)] |= bit
					e.reach[v] |= bit
				}
			}
		}
	}
	return e
}

// TrackDiameter enables incremental diameter maintenance (a per-distance
// pair histogram updated on every dirty-source recompute). Callers that
// never read Diameter() in the hot path should leave it off; Diameter()
// then falls back to an O(n^2) scan of the maintained distance matrix.
// Must be called outside transactions.
func (e *Eval) TrackDiameter() {
	if e.inTxn {
		panic("bitgraph: TrackDiameter inside transaction")
	}
	if e.trackDiameter {
		return
	}
	e.flush()
	e.trackDiameter = true
	e.histo = make([]int64, e.n+1)
	e.snapHisto = make([]int64, e.n+1)
	e.maxDist = 0
	n := e.n
	for s := 0; s < n; s++ {
		for v := 0; v < n; v++ {
			if d := e.dist[s*n+v]; d > 0 {
				e.histo[d]++
				if int(d) > e.maxDist {
					e.maxDist = int(d)
				}
			}
		}
	}
}

// Graph returns the underlying graph. Callers may read it but must
// mutate only through the Eval.
func (e *Eval) Graph() *Graph { return e.g }

// markDirty queues source s for lazy recomputation (slow mode; fast
// mode ORs whole dirty masks into pendMask instead).
func (e *Eval) markDirty(s int) {
	e.pendGen[s] = e.pendCur
	e.pending = append(e.pending, int32(s))
}

// flush materializes all pending recomputes.
func (e *Eval) flush() {
	if e.fastT {
		m := e.pendMask
		if m == 0 {
			return
		}
		e.pendMask = 0
		if e.singleRem && !e.trackDiameter && e.w == nil {
			// All pending sources come from one removal: patch each by
			// re-leveling just the affected region behind the removed
			// link's head, falling back to a BFS when it grows large.
			for ; m != 0; m &= m - 1 {
				s := bits.TrailingZeros64(m)
				if !e.repairRemoveFast(s, e.remB) {
					e.recomputeFast(s)
				}
			}
			return
		}
		for ; m != 0; m &= m - 1 {
			e.recompute(bits.TrailingZeros64(m))
		}
		return
	}
	if len(e.pending) == 0 {
		return
	}
	for _, s := range e.pending {
		e.recompute(int(s))
	}
	e.pending = e.pending[:0]
	e.pendCur++
}

// Pending returns the number of sources queued for recomputation. A
// mutation sequence that leaves Pending() at zero did not change any
// distance; combined with unchanged cut counters this certifies a
// score-neutral move without running any BFS.
func (e *Eval) Pending() int {
	if e.fastT {
		return bits.OnesCount64(e.pendMask)
	}
	return len(e.pending)
}

// Total returns the sum of shortest-path distances over reachable
// ordered pairs.
func (e *Eval) Total() int64 {
	e.flush()
	return e.total
}

// Unreachable returns the number of unreachable ordered pairs.
func (e *Eval) Unreachable() int {
	e.flush()
	return e.unreachable
}

// Diameter returns the maximum shortest-path distance over reachable
// pairs. O(1) when TrackDiameter is enabled, O(n^2) otherwise.
func (e *Eval) Diameter() int {
	e.flush()
	if e.trackDiameter {
		return e.maxDist
	}
	max := int16(0)
	for _, d := range e.dist {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// WeightedTotal returns the demand-weighted hop total and the number of
// positively weighted unreachable pairs. Requires weights at NewEval.
func (e *Eval) WeightedTotal() (float64, int) {
	e.flush()
	return e.wTotal, e.wUnreach
}

// Dist returns the maintained shortest-path distance from s to d
// (-1 when unreachable).
func (e *Eval) Dist(s, d int) int {
	e.flush()
	return int(e.dist[s*e.n+d])
}

// SetLinkCost attaches a per-link integer cost function and initializes
// the maintained sum over the current link set. Subsequent Add/Remove
// calls keep the sum exact in O(1); Rollback restores it from the Begin
// snapshot. Must be called outside transactions. cost must be pure (the
// same (a,b) always prices identically).
func (e *Eval) SetLinkCost(cost func(a, b int) int64) {
	if e.inTxn {
		panic("bitgraph: SetLinkCost inside transaction")
	}
	e.costOf = cost
	e.costTotal = 0
	if cost == nil {
		return
	}
	for _, l := range e.g.Links() {
		e.costTotal += cost(l.A, l.B)
	}
}

// LinkCost returns the maintained cost sum over present links (0 when no
// cost function is set). Never triggers a BFS.
func (e *Eval) LinkCost() int64 { return e.costTotal }

// NumCuts returns the cut-pool size.
func (e *Eval) NumCuts() int { return len(e.cuts) }

// AddCut registers a partition in the crossing-counter pool unless an
// equal cut — or its complement within the n-node universe, which
// defines the same partition — is already present. Returns true when
// the pool grew. Must not be called inside a transaction.
func (e *Eval) AddCut(mask Set) bool {
	if e.inTxn {
		panic("bitgraph: AddCut inside transaction")
	}
	for _, c := range e.cuts {
		if SamePartition(c.mask, mask, e.g.full) {
			return false
		}
	}
	sizeU := AndCount(mask, e.g.full)
	sizeV := e.n - sizeU
	if sizeU == 0 || sizeV == 0 {
		return false
	}
	uv, vu := e.g.Cross(mask)
	e.cuts = append(e.cuts, evalCut{
		mask:    mask.Clone(),
		pairs:   float64(sizeU * sizeV),
		crossUV: uv,
		crossVU: vu,
	})
	return true
}

// PoolMin returns the minimum cut bandwidth min(crossUV, crossVU) /
// (|U||V|) over the registered pool (+Inf when the pool is empty). The
// division mirrors Graph.CutBandwidth exactly so incremental scores stay
// bit-identical to from-scratch recomputation. Counters are maintained
// eagerly, so PoolMin never triggers a BFS.
func (e *Eval) PoolMin() float64 {
	min := math.Inf(1)
	for i := range e.cuts {
		c := &e.cuts[i]
		cross := c.crossUV
		if c.crossVU < cross {
			cross = c.crossVU
		}
		if bw := float64(cross) / c.pairs; bw < min {
			min = bw
		}
	}
	return min
}

// PoolMinCross returns the minimum raw min-direction crossing count
// over the registered pool (math.MaxInt when empty), mirroring
// Graph.PoolMinCross exactly so incremental scores stay bit-identical
// to from-scratch recomputation. Counters are eager; never triggers a
// BFS.
func (e *Eval) PoolMinCross() int {
	min := math.MaxInt
	for i := range e.cuts {
		c := &e.cuts[i]
		cross := c.crossUV
		if c.crossVU < cross {
			cross = c.crossVU
		}
		if cross < min {
			min = cross
		}
	}
	return min
}

// Begin opens a transaction: all Add/Remove calls until Commit or
// Rollback are journaled and can be undone as a unit. Transactions do
// not nest.
func (e *Eval) Begin() {
	if e.inTxn {
		panic("bitgraph: nested Eval transaction")
	}
	e.flush() // pre-transaction mutations must not roll back
	e.inTxn = true
	e.curGen++
	e.snapTotal = e.total
	e.snapUnreach = e.unreachable
	e.snapWTotal = e.wTotal
	e.snapWUnreach = e.wUnreach
	e.snapCost = e.costTotal
	if e.trackDiameter {
		copy(e.snapHisto, e.histo)
		e.snapMaxDist = e.maxDist
	}
}

// Commit accepts the transaction's mutations (materializing any pending
// recomputes so post-transaction state is fully settled).
func (e *Eval) Commit() {
	if !e.inTxn {
		panic("bitgraph: Commit outside transaction")
	}
	e.flush()
	e.inTxn = false
	e.ops = e.ops[:0]
	for i := range e.rows {
		e.rowPool = append(e.rowPool, e.rows[i].row)
		e.rows[i].row = nil
	}
	e.rows = e.rows[:0]
}

// Rollback undoes every mutation since Begin: graph links and cut
// counters are reverted op by op, journaled distance rows are restored
// by copy, and the scalar aggregates return to their Begin snapshot.
func (e *Eval) Rollback() {
	if !e.inTxn {
		panic("bitgraph: Rollback outside transaction")
	}
	e.inTxn = false
	// Pending sources were never recomputed; their rows still describe
	// the pre-transaction graph exactly, so just drop the marks.
	e.pending = e.pending[:0]
	e.pendCur++
	e.pendMask = 0
	for i := len(e.ops) - 1; i >= 0; i-- {
		op := e.ops[i]
		if op.added {
			e.g.Remove(op.a, op.b)
			e.cutCounters(op.a, op.b, -1)
		} else {
			e.g.Add(op.a, op.b)
			e.cutCounters(op.a, op.b, +1)
		}
	}
	e.ops = e.ops[:0]
	// Restore rows newest-to-oldest so a source saved once but
	// recomputed twice ends at its pre-transaction state.
	for i := len(e.rows) - 1; i >= 0; i-- {
		r := &e.rows[i]
		if e.fastT {
			// Only the journaled changed vertices can differ; restore
			// their transposed bits without a full row diff.
			cur := e.dist[r.src*e.n : (r.src+1)*e.n]
			bit := uint64(1) << uint(r.src)
			stride := e.n + 1
			for m := r.changed; m != 0; m &= m - 1 {
				v := bits.TrailingZeros64(m)
				od, nd := cur[v], r.row[v]
				if od == nd {
					continue
				}
				if od >= 0 {
					e.T[v*stride+int(od)] &^= bit
				}
				if nd >= 0 {
					e.T[v*stride+int(nd)] |= bit
					if od < 0 {
						e.reach[v] |= bit
					}
				} else {
					e.reach[v] &^= bit
				}
			}
		}
		copy(e.dist[r.src*e.n:(r.src+1)*e.n], r.row)
		e.srcTotal[r.src] = r.total
		e.srcUnreach[r.src] = r.unreach
		if e.w != nil {
			e.srcWTotal[r.src] = r.wTotal
			e.srcWUnreach[r.src] = r.wUnreach
		}
		e.rowPool = append(e.rowPool, r.row)
		r.row = nil
	}
	e.rows = e.rows[:0]
	e.total = e.snapTotal
	e.unreachable = e.snapUnreach
	e.wTotal = e.snapWTotal
	e.wUnreach = e.snapWUnreach
	e.costTotal = e.snapCost
	if e.trackDiameter {
		copy(e.histo, e.snapHisto)
		e.maxDist = e.snapMaxDist
	}
}

// Add inserts link a->b, updates cut counters eagerly and queues the
// affected sources for lazy distance recomputation (no-op when the link
// exists).
func (e *Eval) Add(a, b int) {
	if a == b || e.g.Has(a, b) {
		return
	}
	// A new link a->b creates a shortcut exactly for sources that reach
	// a and would get closer to b through it (old distances). Sources
	// already pending are skipped: their rows are stale but will be
	// recomputed against the final graph anyway.
	n := e.n
	if e.fastT {
		// Additions are repaired eagerly (the improvement wave from b
		// touches only vertices whose distance actually drops, typically
		// a handful), which keeps every row exact at all times in fast
		// mode except under pending removals — flushed here so the
		// detection and the repair both see exact rows.
		if e.pendMask != 0 {
			e.flush()
		}
		// Level-mask form of the dirty rule: a source at distance d from
		// a is dirtied iff its distance to b exceeds d+1 (or b is
		// unreachable), i.e. it is outside the cumulative <=d+1 mask.
		stride := n + 1
		ta := e.T[a*stride : a*stride+stride]
		tb := e.T[b*stride : b*stride+stride]
		var dirty, seen uint64
		reachA := e.reach[a]
		cum := tb[0]
		for d := 0; seen != reachA; d++ {
			cum |= tb[d+1]
			la := ta[d]
			dirty |= la &^ cum
			seen |= la
		}
		e.g.Add(a, b)
		e.cutCounters(a, b, +1)
		if e.costOf != nil {
			e.costTotal += e.costOf(a, b)
		}
		if e.inTxn {
			e.ops = append(e.ops, linkOp{a, b, true})
		}
		for dirty != 0 {
			s := bits.TrailingZeros64(dirty)
			dirty &= dirty - 1
			e.repairAddFast(s, a, b)
		}
		return
	}
	{
		dist, pendGen, pendCur := e.dist, e.pendGen, e.pendCur
		for s, base := 0, 0; s < n; s, base = s+1, base+n {
			if pendGen[s] == pendCur {
				continue
			}
			da := dist[base+a]
			if da < 0 {
				continue
			}
			db := dist[base+b]
			if db < 0 || da+1 < db {
				e.markDirty(s)
			}
		}
	}
	e.g.Add(a, b)
	e.cutCounters(a, b, +1)
	if e.costOf != nil {
		e.costTotal += e.costOf(a, b)
	}
	if e.inTxn {
		e.ops = append(e.ops, linkOp{a, b, true})
	}
}

// Remove deletes link a->b, updates cut counters eagerly and queues the
// affected sources for lazy distance recomputation (no-op when the link
// is absent).
//
// The link can lie on a shortest path from s only when dist(s,b) ==
// dist(s,a)+1; every other source keeps its exact distance vector
// (subpaths of shortest paths are shortest). Even then, if b has
// another predecessor p (p->b present, p != a) with dist(s,p) ==
// dist(s,a), every shortest path through a->b reroutes through p->b at
// equal length, so nothing changes for s.
func (e *Eval) Remove(a, b int) {
	if a == b || !e.g.Has(a, b) {
		return
	}
	n := e.n
	if e.fastT {
		// Level-mask form: candidates at level d are sources with
		// dist(.,a)==d and dist(.,b)==d+1; each alternative predecessor
		// of b clears the candidates it covers at level d.
		stride := n + 1
		ta := e.T[a*stride : a*stride+stride]
		tb := e.T[b*stride : b*stride+stride]
		pm := e.g.in[b] &^ (1 << uint(a)) // w==1 in fast mode
		var dirty, seen uint64
		reachA := e.reach[a]
		for d := 0; seen != reachA; d++ {
			la := ta[d]
			seen |= la
			cand := la & tb[d+1]
			if cand != 0 {
				pp := pm
				for pp != 0 && cand != 0 {
					p := bits.TrailingZeros64(pp)
					pp &= pp - 1
					cand &^= e.T[p*stride+d]
				}
				dirty |= cand
			}
		}
		e.singleRem = e.pendMask == 0
		e.remB = b
		e.pendMask |= dirty
	} else {
		e.preds = e.preds[:0]
		e.g.InRow(b).ForEach(func(p int) {
			if p != a {
				e.preds = append(e.preds, int32(p))
			}
		})
		dist, preds := e.dist, e.preds
		pendGen, pendCur := e.pendGen, e.pendCur
		for s, base := 0, 0; s < n; s, base = s+1, base+n {
			if pendGen[s] == pendCur {
				continue
			}
			da := dist[base+a]
			if da < 0 || dist[base+b] != da+1 {
				continue
			}
			alt := false
			for _, p := range preds {
				if dist[base+int(p)] == da {
					alt = true
					break
				}
			}
			if !alt {
				e.markDirty(s)
			}
		}
	}
	e.g.Remove(a, b)
	e.cutCounters(a, b, -1)
	if e.costOf != nil {
		e.costTotal -= e.costOf(a, b)
	}
	if e.inTxn {
		e.ops = append(e.ops, linkOp{a, b, false})
	}
}

// repairAddFast patches source s's row after inserting a->b, where
// dist(s,a)+1 improves on dist(s,b): a breadth-first improvement wave
// from b touches only the vertices whose distance actually drops,
// updating the aggregates and transposed level masks in place.
// Fast mode only (w == 1).
func (e *Eval) repairAddFast(s, a, b int) {
	n := e.n
	e.journalRow(s)
	row := e.dist[s*n : (s+1)*n]
	bit := uint64(1) << uint(s)
	stride := n + 1
	out := e.g.out
	var dTot int64
	var dUnreach int32
	var wTot float64
	var wUnreach int32
	var changed uint64
	apply := func(v int, d int16) {
		changed |= 1 << uint(v)
		od := row[v]
		if od >= 0 {
			e.T[v*stride+int(od)] &^= bit
			dTot += int64(d - od)
		} else {
			e.reach[v] |= bit
			dUnreach--
			dTot += int64(d)
		}
		e.T[v*stride+int(d)] |= bit
		if e.trackDiameter {
			if od > 0 {
				e.histo[od]--
			}
			e.histo[d]++
			// A newly reachable pair can sit beyond the old diameter.
			if int(d) > e.maxDist {
				e.maxDist = int(d)
			}
		}
		if e.w != nil {
			if od >= 0 {
				wTot += e.w[s][v] * float64(d-od)
			} else {
				wTot += e.w[s][v] * float64(d)
				if e.w[s][v] > 0 {
					wUnreach--
				}
			}
		}
		row[v] = d
	}
	apply(b, row[a]+1)
	wave := append(e.preds[:0], int32(b))
	for head := 0; head < len(wave); head++ {
		v := int(wave[head])
		dv1 := row[v] + 1
		m := out[v]
		for m != 0 {
			u := bits.TrailingZeros64(m)
			m &= m - 1
			if ou := row[u]; ou >= 0 && ou <= dv1 {
				continue
			}
			apply(u, dv1)
			wave = append(wave, int32(u))
		}
	}
	e.preds = wave[:0]
	e.noteChanged(s, changed)
	e.srcTotal[s] += dTot
	e.srcUnreach[s] += dUnreach
	e.total += dTot
	e.unreachable += int(dUnreach)
	if e.w != nil {
		e.srcWTotal[s] += wTot
		e.srcWUnreach[s] += wUnreach
		e.wTotal += wTot
		e.wUnreach += int(wUnreach)
	}
	if e.trackDiameter {
		for e.maxDist > 0 && e.histo[e.maxDist] == 0 {
			e.maxDist--
		}
	}
}

// maxAffectedRepair caps the affected-set size for decremental repair;
// larger regions fall back to a plain source BFS, which touches every
// vertex anyway.
const maxAffectedRepair = 10

// repairRemoveFast patches source s's row after a removal whose head is
// b, for a source whose only shortest support of b was the removed
// link. Phase 1 walks the shortest-path DAG forward from b collecting
// the affected vertices (those left with no unaffected equal-level
// predecessor); phase 2 re-levels exactly that set. Returns false when
// the affected region exceeds maxAffectedRepair. Fast mode without
// diameter or weighted bookkeeping only; rows must be exact for the
// pre-removal graph.
func (e *Eval) repairRemoveFast(s, b int) bool {
	n := e.n
	row := e.dist[s*n : (s+1)*n]
	out, in := e.g.out, e.g.in
	db := row[b]
	aff := uint64(1) << uint(b)
	count := 1
	wave := append(e.wave[:0], int32(b))
	for head := 0; head < len(wave); head++ {
		v := int(wave[head])
		dv1 := row[v] + 1
		m := out[v]
		for m != 0 {
			u := bits.TrailingZeros64(m)
			m &= m - 1
			if aff&(1<<uint(u)) != 0 || row[u] != dv1 {
				continue
			}
			// u loses v as a shortest predecessor; it stays exact only
			// if an unaffected predecessor at the same level remains.
			alt := false
			pm := in[u] &^ aff
			for pm != 0 {
				p := bits.TrailingZeros64(pm)
				pm &= pm - 1
				if row[p] == dv1-1 {
					alt = true
					break
				}
			}
			if !alt {
				aff |= 1 << uint(u)
				count++
				if count > maxAffectedRepair {
					e.wave = wave[:0]
					return false
				}
				wave = append(wave, int32(u))
			}
		}
	}
	e.wave = wave[:0]
	e.journalRow(s)
	// Phase 2: distances of affected vertices strictly grow, so
	// re-level upward from b's old distance; a vertex settles at d once
	// a settled or never-affected predecessor sits at d-1.
	bit := uint64(1) << uint(s)
	stride := n + 1
	var changed uint64
	var dTot int64
	var dUnreach int32
	rem := aff
	for d := db + 1; rem != 0 && int(d) <= n; d++ {
		var newly uint64
		rm := rem
		for rm != 0 {
			u := bits.TrailingZeros64(rm)
			rm &= rm - 1
			pm := in[u] &^ rem
			for pm != 0 {
				p := bits.TrailingZeros64(pm)
				pm &= pm - 1
				if row[p] == d-1 {
					newly |= 1 << uint(u)
					break
				}
			}
		}
		if newly == 0 {
			// Stagnation: when no remaining vertex has any reachable
			// outside predecessor, the rest are unreachable.
			anyExternal := false
			for rm := rem; rm != 0 && !anyExternal; rm &= rm - 1 {
				u := bits.TrailingZeros64(rm)
				for pm := in[u] &^ rem; pm != 0; pm &= pm - 1 {
					if row[bits.TrailingZeros64(pm)] >= 0 {
						anyExternal = true
						break
					}
				}
			}
			if !anyExternal {
				break
			}
			continue
		}
		for nm := newly; nm != 0; nm &= nm - 1 {
			u := bits.TrailingZeros64(nm)
			od := row[u]
			changed |= 1 << uint(u)
			e.T[u*stride+int(od)] &^= bit
			e.T[u*stride+int(d)] |= bit
			dTot += int64(d - od)
			row[u] = d
		}
		rem &^= newly
	}
	for ; rem != 0; rem &= rem - 1 {
		u := bits.TrailingZeros64(rem)
		od := row[u]
		changed |= 1 << uint(u)
		e.T[u*stride+int(od)] &^= bit
		e.reach[u] &^= bit
		dTot -= int64(od)
		dUnreach++
		row[u] = -1
	}
	e.noteChanged(s, changed)
	e.srcTotal[s] += dTot
	e.srcUnreach[s] += dUnreach
	e.total += dTot
	e.unreachable += int(dUnreach)
	return true
}

// PeekRemove returns the number of sources whose distance rows would
// change if link a->b were removed, without mutating any state. Callers
// can veto a removal (e.g. an annealer rejecting on a delta lower
// bound) without ever paying for the mutation and its rollback.
func (e *Eval) PeekRemove(a, b int) int {
	if a == b || !e.g.Has(a, b) {
		return 0
	}
	e.flush()
	n := e.n
	if e.fastT {
		stride := n + 1
		ta := e.T[a*stride : a*stride+stride]
		tb := e.T[b*stride : b*stride+stride]
		pm := e.g.in[b] &^ (1 << uint(a))
		var dirty, seen uint64
		reachA := e.reach[a]
		for d := 0; seen != reachA; d++ {
			la := ta[d]
			seen |= la
			cand := la & tb[d+1]
			if cand != 0 {
				pp := pm
				for pp != 0 && cand != 0 {
					p := bits.TrailingZeros64(pp)
					pp &= pp - 1
					cand &^= e.T[p*stride+d]
				}
				dirty |= cand
			}
		}
		return bits.OnesCount64(dirty)
	}
	e.preds = e.preds[:0]
	e.g.InRow(b).ForEach(func(p int) {
		if p != a {
			e.preds = append(e.preds, int32(p))
		}
	})
	dist, preds := e.dist, e.preds
	count := 0
	for s, base := 0, 0; s < n; s, base = s+1, base+n {
		da := dist[base+a]
		if da < 0 || dist[base+b] != da+1 {
			continue
		}
		alt := false
		for _, p := range preds {
			if dist[base+int(p)] == da {
				alt = true
				break
			}
		}
		if !alt {
			count++
		}
	}
	return count
}

// retuneT moves source s's transposed level-mask bits from the old row
// to the new row and returns the mask of vertices whose distance
// changed.
func (e *Eval) retuneT(s int, old, new []int16) uint64 {
	bit := uint64(1) << uint(s)
	stride := e.n + 1
	var changed uint64
	for v := 0; v < e.n; v++ {
		od, nd := old[v], new[v]
		if od == nd {
			continue
		}
		changed |= 1 << uint(v)
		if od >= 0 {
			e.T[v*stride+int(od)] &^= bit
		}
		if nd >= 0 {
			e.T[v*stride+int(nd)] |= bit
			if od < 0 {
				e.reach[v] |= bit
			}
		} else {
			e.reach[v] &^= bit
		}
	}
	return changed
}

// cutCounters applies a link delta to every cut's crossing counters.
func (e *Eval) cutCounters(a, b, delta int) {
	for i := range e.cuts {
		c := &e.cuts[i]
		aIn, bIn := c.mask.Has(a), c.mask.Has(b)
		if aIn == bIn {
			continue
		}
		if aIn {
			c.crossUV += delta
		} else {
			c.crossVU += delta
		}
	}
}

// journalRow saves source s's pre-transaction row and aggregates once
// per transaction.
func (e *Eval) journalRow(s int) {
	if !e.inTxn || e.savedGen[s] == e.curGen {
		return
	}
	e.savedGen[s] = e.curGen
	n := e.n
	var buf []int16
	if len(e.rowPool) > 0 {
		buf = e.rowPool[len(e.rowPool)-1]
		e.rowPool = e.rowPool[:len(e.rowPool)-1]
	} else {
		buf = make([]int16, n)
	}
	copy(buf, e.dist[s*n:(s+1)*n])
	save := rowSave{src: s, row: buf, total: e.srcTotal[s], unreach: e.srcUnreach[s]}
	if e.w != nil {
		save.wTotal = e.srcWTotal[s]
		save.wUnreach = e.srcWUnreach[s]
	}
	e.savedIdx[s] = int32(len(e.rows))
	e.rows = append(e.rows, save)
}

// noteChanged accumulates the changed-vertex mask on source s's journal
// entry so Rollback can restore the transposed masks without a full
// row diff.
func (e *Eval) noteChanged(s int, mask uint64) {
	if e.inTxn && e.savedGen[s] == e.curGen {
		e.rows[e.savedIdx[s]].changed |= mask
	}
}

// recompute re-runs the BFS for one dirty source and folds the row
// delta into the aggregates, journaling the old row inside transactions.
func (e *Eval) recompute(s int) {
	n := e.n
	if e.fastT && !e.trackDiameter && e.w == nil {
		e.recomputeFast(s)
		return
	}
	e.journalRow(s)
	row := e.dist[s*n : (s+1)*n]
	if !e.trackDiameter && e.w == nil {
		// Multi-word fast path: the BFS itself produces the per-source
		// aggregates.
		total, reached := e.g.bfsRowStats(s, row, e.scratch)
		unreach := int32(n - reached)
		e.total += total - e.srcTotal[s]
		e.unreachable += int(unreach - e.srcUnreach[s])
		e.srcTotal[s] = total
		e.srcUnreach[s] = unreach
		return
	}
	copy(e.oldRow, row)
	total, reached := e.g.bfsRowStats(s, row, e.scratch)
	unreach := int32(n - reached)
	var wTotal float64
	var wUnreach int32
	for v := 0; v < n; v++ {
		if v == s {
			continue
		}
		// Retire the old distance's histogram contribution in the same
		// pass that applies the new one.
		if e.trackDiameter {
			if od := e.oldRow[v]; od > 0 {
				e.histo[od]--
			}
		}
		d := row[v]
		if d < 0 {
			if e.w != nil && e.w[s][v] > 0 {
				wUnreach++
			}
			continue
		}
		if e.trackDiameter {
			e.histo[d]++
			if int(d) > e.maxDist {
				e.maxDist = int(d)
			}
		}
		if e.w != nil {
			wTotal += e.w[s][v] * float64(d)
		}
	}
	e.total += total - e.srcTotal[s]
	e.unreachable += int(unreach - e.srcUnreach[s])
	e.srcTotal[s] = total
	e.srcUnreach[s] = unreach
	if e.w != nil {
		e.wTotal += wTotal - e.srcWTotal[s]
		e.wUnreach += int(wUnreach - e.srcWUnreach[s])
		e.srcWTotal[s] = wTotal
		e.srcWUnreach[s] = wUnreach
	}
	if e.trackDiameter {
		for e.maxDist > 0 && e.histo[e.maxDist] == 0 {
			e.maxDist--
		}
	}
	if e.fastT {
		e.noteChanged(s, e.retuneT(s, e.oldRow, row))
	}
}

// recomputeFast is recompute for single-word graphs without diameter or
// weighted bookkeeping: one fused BFS pass rewrites only the distances
// that changed, moving their transposed level-mask bits and journaling
// the changed-vertex set as it goes.
func (e *Eval) recomputeFast(s int) {
	n := e.n
	e.journalRow(s)
	row := e.dist[s*n : (s+1)*n]
	bit := uint64(1) << uint(s)
	stride := n + 1
	out := e.g.out
	var changed uint64
	var total int64
	visited := uint64(1) << uint(s)
	frontier := visited
	d := int16(0)
	for frontier != 0 {
		var next uint64
		f := frontier
		for f != 0 {
			u := bits.TrailingZeros64(f)
			f &= f - 1
			next |= out[u]
		}
		next &^= visited
		if next == 0 {
			break
		}
		d++
		total += int64(d) * int64(bits.OnesCount64(next))
		nf := next
		for nf != 0 {
			v := bits.TrailingZeros64(nf)
			nf &= nf - 1
			if od := row[v]; od != d {
				changed |= 1 << uint(v)
				if od >= 0 {
					e.T[v*stride+int(od)] &^= bit
				} else {
					e.reach[v] |= bit
				}
				e.T[v*stride+int(d)] |= bit
				row[v] = d
			}
		}
		visited |= next
		frontier = next
	}
	reached := bits.OnesCount64(visited)
	// Vertices the BFS no longer reaches keep their old row entries;
	// retire them.
	for stale := e.g.full[0] &^ visited; stale != 0; stale &= stale - 1 {
		v := bits.TrailingZeros64(stale)
		if od := row[v]; od >= 0 {
			changed |= 1 << uint(v)
			e.T[v*stride+int(od)] &^= bit
			e.reach[v] &^= bit
			row[v] = -1
		}
	}
	e.noteChanged(s, changed)
	unreach := int32(n - reached)
	e.total += total - e.srcTotal[s]
	e.unreachable += int(unreach - e.srcUnreach[s])
	e.srcTotal[s] = total
	e.srcUnreach[s] = unreach
}

// CheckConsistency recomputes every aggregate from scratch and returns
// an error describing the first mismatch (nil when the incremental
// state is exact). Intended for tests and debugging.
func (e *Eval) CheckConsistency() error {
	e.flush()
	total, unreach, diam := e.g.HopStats()
	if total != e.total || unreach != e.unreachable || diam != e.Diameter() {
		return fmt.Errorf("bitgraph: eval aggregates (%d,%d,%d) != recomputed (%d,%d,%d)",
			e.total, e.unreachable, e.Diameter(), total, unreach, diam)
	}
	n := e.n
	row := make([]int16, n)
	scratch := newBFSScratch(n)
	for s := 0; s < n; s++ {
		e.g.bfsRow(s, row, scratch)
		for v := 0; v < n; v++ {
			if row[v] != e.dist[s*n+v] {
				return fmt.Errorf("bitgraph: eval dist[%d][%d] = %d, recomputed %d",
					s, v, e.dist[s*n+v], row[v])
			}
		}
	}
	if e.trackDiameter {
		histo := make([]int64, n+1)
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if d := e.dist[s*n+v]; d > 0 {
					histo[d]++
				}
			}
		}
		for d := range histo {
			if histo[d] != e.histo[d] {
				return fmt.Errorf("bitgraph: eval histo[%d] = %d, recomputed %d",
					d, e.histo[d], histo[d])
			}
		}
	}
	if e.fastT {
		for s := 0; s < n; s++ {
			bit := uint64(1) << uint(s)
			for v := 0; v < n; v++ {
				d := e.dist[s*n+v]
				if (d >= 0) != (e.reach[v]&bit != 0) {
					return fmt.Errorf("bitgraph: eval reach[%d] bit %d inconsistent with dist %d", v, s, d)
				}
				if d >= 0 && e.T[v*(n+1)+int(d)]&bit == 0 {
					return fmt.Errorf("bitgraph: eval T[%d][%d] missing source %d", v, d, s)
				}
			}
		}
	}
	for i := range e.cuts {
		c := &e.cuts[i]
		uv, vu := e.g.Cross(c.mask)
		if uv != c.crossUV || vu != c.crossVU {
			return fmt.Errorf("bitgraph: eval cut %d counters (%d,%d) != recomputed (%d,%d)",
				i, c.crossUV, c.crossVU, uv, vu)
		}
	}
	if e.w != nil {
		wTotal, wUnreach := e.g.WeightedHops(e.w)
		if math.Abs(wTotal-e.wTotal) > 1e-6*(1+math.Abs(wTotal)) || wUnreach != e.wUnreach {
			return fmt.Errorf("bitgraph: eval weighted (%v,%d) != recomputed (%v,%d)",
				e.wTotal, e.wUnreach, wTotal, wUnreach)
		}
	}
	if e.costOf != nil {
		var want int64
		for _, l := range e.g.Links() {
			want += e.costOf(l.A, l.B)
		}
		if want != e.costTotal {
			return fmt.Errorf("bitgraph: eval link cost %d != recomputed %d", e.costTotal, want)
		}
	}
	return nil
}
