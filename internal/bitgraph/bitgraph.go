// Package bitgraph provides a compact directed-graph representation with
// bitset-based breadth-first search and cut evaluation. It is the shared
// computational core of the topology synthesizer and the baseline
// calibration tooling: one BFS level is computed as the union of out-row
// bitsets of the current frontier, making all-pairs hop statistics cost
// O(n^2/64) word operations per source. Graphs over at most 64 routers
// use a specialized single-word path; larger graphs use multi-word Set
// rows, so node count is bounded only by memory.
//
// For metaheuristic search, Eval layers a stateful incremental evaluator
// on top of Graph: per-source distance vectors, cut-pool crossing
// counters and objective aggregates maintained under Add/Remove with
// dirty-source invalidation, plus journaled rollback for rejected moves.
package bitgraph

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// MaxFastNodes is the largest node count served by the single-word
// (one uint64 mask per row) fast paths. Larger graphs are fully
// supported via multi-word rows.
const MaxFastNodes = 64

// Link is a directed edge.
type Link struct{ A, B int }

// Graph is an incrementally maintained directed graph with degree
// counters, neighbor bitsets and an O(1)-sampleable link list.
type Graph struct {
	n, w          int
	out, in       []uint64 // n rows of w words each, flat
	OutDeg, InDeg []int
	linkList      []Link
	linkIndex     []int32 // n*n flat position of link a->b in linkList, -1 absent
	full          Set
}

// New returns an empty graph over n nodes (any n >= 1).
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("bitgraph: unsupported node count %d", n))
	}
	w := wordsFor(n)
	g := &Graph{
		n:         n,
		w:         w,
		out:       make([]uint64, n*w),
		in:        make([]uint64, n*w),
		OutDeg:    make([]int, n),
		InDeg:     make([]int, n),
		linkIndex: make([]int32, n*n),
		full:      FullSet(n),
	}
	for i := range g.linkIndex {
		g.linkIndex[i] = -1
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// Words returns the number of Set words per row.
func (g *Graph) Words() int { return g.w }

// Full returns the all-nodes set; the caller must not mutate it.
func (g *Graph) Full() Set { return g.full }

// OutRow returns node a's out-neighbor bitset; the caller must not
// mutate it.
func (g *Graph) OutRow(a int) Set { return Set(g.out[a*g.w : (a+1)*g.w]) }

// InRow returns node a's in-neighbor bitset; the caller must not
// mutate it.
func (g *Graph) InRow(a int) Set { return Set(g.in[a*g.w : (a+1)*g.w]) }

// Has reports whether the directed link a->b exists.
func (g *Graph) Has(a, b int) bool {
	return g.out[a*g.w+b/wordBits]&(1<<uint(b%wordBits)) != 0
}

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.linkList) }

// Links returns the current directed link list; the slice is owned by the
// graph and must not be mutated.
func (g *Graph) Links() []Link { return g.linkList }

// LinkAt returns the i-th link (for random sampling).
func (g *Graph) LinkAt(i int) Link { return g.linkList[i] }

// Add inserts a->b (idempotent).
func (g *Graph) Add(a, b int) {
	if g.Has(a, b) {
		return
	}
	g.out[a*g.w+b/wordBits] |= 1 << uint(b%wordBits)
	g.in[b*g.w+a/wordBits] |= 1 << uint(a%wordBits)
	g.OutDeg[a]++
	g.InDeg[b]++
	g.linkIndex[a*g.n+b] = int32(len(g.linkList))
	g.linkList = append(g.linkList, Link{a, b})
}

// Remove deletes a->b (idempotent).
func (g *Graph) Remove(a, b int) {
	if !g.Has(a, b) {
		return
	}
	g.out[a*g.w+b/wordBits] &^= 1 << uint(b%wordBits)
	g.in[b*g.w+a/wordBits] &^= 1 << uint(a%wordBits)
	g.OutDeg[a]--
	g.InDeg[b]--
	idx := g.linkIndex[a*g.n+b]
	last := g.linkList[len(g.linkList)-1]
	g.linkList[idx] = last
	g.linkIndex[last.A*g.n+last.B] = idx
	g.linkList = g.linkList[:len(g.linkList)-1]
	g.linkIndex[a*g.n+b] = -1
}

// CanonicalClone rebuilds the graph with its link list in sorted (A, B)
// order. Two graphs with the same link set always produce identical
// canonical clones, regardless of the insertion/removal history that
// shaped their link lists. Search code that samples links by index
// (LinkAt) depends on this: a graph reloaded from a stored link list and
// the same graph rebuilt by a fresh search agree on every sampled index
// only after canonicalization.
func (g *Graph) CanonicalClone() *Graph {
	links := append([]Link(nil), g.linkList...)
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	c := New(g.n)
	for _, l := range links {
		c.Add(l.A, l.B)
	}
	return c
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	w := g.w
	c := &Graph{
		n:         g.n,
		w:         w,
		out:       append([]uint64(nil), g.out...),
		in:        append([]uint64(nil), g.in...),
		OutDeg:    append([]int(nil), g.OutDeg...),
		InDeg:     append([]int(nil), g.InDeg...),
		linkList:  append([]Link(nil), g.linkList...),
		linkIndex: append([]int32(nil), g.linkIndex...),
		full:      g.full,
	}
	return c
}

// HopStats runs one bitmask BFS per source and returns the total hop
// count over reachable ordered pairs, the number of unreachable ordered
// pairs and the diameter over reachable pairs.
func (g *Graph) HopStats() (total int64, unreachable int, diameter int) {
	n := g.n
	if g.w == 1 {
		for src := 0; src < n; src++ {
			visited := uint64(1) << uint(src)
			frontier := visited
			d := 0
			for frontier != 0 {
				var next uint64
				f := frontier
				for f != 0 {
					u := bits.TrailingZeros64(f)
					f &= f - 1
					next |= g.out[u]
				}
				next &^= visited
				if next == 0 {
					break
				}
				d++
				total += int64(d) * int64(bits.OnesCount64(next))
				visited |= next
				frontier = next
			}
			if d > diameter {
				diameter = d
			}
			unreachable += n - bits.OnesCount64(visited)
		}
		return total, unreachable, diameter
	}
	visited, frontier, next := NewSet(n), NewSet(n), NewSet(n)
	for src := 0; src < n; src++ {
		visited.Clear()
		visited.Add(src)
		frontier.Clear()
		frontier.Add(src)
		d := 0
		for {
			next.Clear()
			g.frontierUnion(frontier, next)
			level := 0
			for i := range next {
				next[i] &^= visited[i]
				level += bits.OnesCount64(next[i])
			}
			if level == 0 {
				break
			}
			d++
			total += int64(d) * int64(level)
			for i := range visited {
				visited[i] |= next[i]
			}
			frontier, next = next, frontier
		}
		if d > diameter {
			diameter = d
		}
		unreachable += n - visited.Count()
	}
	return total, unreachable, diameter
}

// frontierUnion ORs the out-rows of every frontier member into dst.
func (g *Graph) frontierUnion(frontier, dst Set) {
	w := g.w
	for wi, word := range frontier {
		base := wi * wordBits
		for word != 0 {
			u := base + bits.TrailingZeros64(word)
			word &= word - 1
			row := g.out[u*w : u*w+w]
			for i, rw := range row {
				dst[i] |= rw
			}
		}
	}
}

// BFSRow fills dist (length n) with hop distances from src; unreachable
// nodes get -1. It allocates scratch internally; hot paths should use
// Eval, which reuses scratch buffers.
func (g *Graph) BFSRow(src int, dist []int16) {
	scratch := newBFSScratch(g.n)
	g.bfsRow(src, dist, scratch)
}

type bfsScratch struct {
	visited, frontier, next Set
}

func newBFSScratch(n int) *bfsScratch {
	return &bfsScratch{visited: NewSet(n), frontier: NewSet(n), next: NewSet(n)}
}

// bfsRow computes the distance row for src into dist using the provided
// scratch buffers.
func (g *Graph) bfsRow(src int, dist []int16, s *bfsScratch) {
	g.bfsRowStats(src, dist, s)
}

// bfsRowStats is bfsRow plus aggregates the BFS produces for free: the
// sum of finite distances from src and the number of reached nodes
// (including src itself).
func (g *Graph) bfsRowStats(src int, dist []int16, s *bfsScratch) (total int64, reached int) {
	n := g.n
	for i := 0; i < n; i++ {
		dist[i] = -1
	}
	dist[src] = 0
	if g.w == 1 {
		visited := uint64(1) << uint(src)
		frontier := visited
		d := int16(0)
		for frontier != 0 {
			var next uint64
			f := frontier
			for f != 0 {
				u := bits.TrailingZeros64(f)
				f &= f - 1
				next |= g.out[u]
			}
			next &^= visited
			if next == 0 {
				break
			}
			d++
			total += int64(d) * int64(bits.OnesCount64(next))
			nf := next
			for nf != 0 {
				v := bits.TrailingZeros64(nf)
				nf &= nf - 1
				dist[v] = d
			}
			visited |= next
			frontier = next
		}
		return total, bits.OnesCount64(visited)
	}
	visited, frontier, next := s.visited, s.frontier, s.next
	visited.Clear()
	visited.Add(src)
	frontier.Clear()
	frontier.Add(src)
	reached = 1
	d := int16(0)
	for {
		next.Clear()
		g.frontierUnion(frontier, next)
		level := 0
		for i := range next {
			next[i] &^= visited[i]
			level += bits.OnesCount64(next[i])
		}
		if level == 0 {
			break
		}
		d++
		total += int64(d) * int64(level)
		reached += level
		next.ForEach(func(v int) { dist[v] = d })
		for i := range visited {
			visited[i] |= next[i]
		}
		frontier, next = next, frontier
	}
	s.frontier, s.next = frontier, next
	return total, reached
}

// WeightedHops returns sum(w[s][d] * dist(s,d)) over reachable pairs plus
// the count of unreachable ordered pairs with positive weight.
func (g *Graph) WeightedHops(w [][]float64) (total float64, unreachable int) {
	n := g.n
	dist := make([]int16, n)
	scratch := newBFSScratch(n)
	for src := 0; src < n; src++ {
		g.bfsRow(src, dist, scratch)
		for v := 0; v < n; v++ {
			if v == src {
				continue
			}
			if dist[v] < 0 {
				if w[src][v] > 0 {
					unreachable++
				}
				continue
			}
			total += w[src][v] * float64(dist[v])
		}
	}
	return total, unreachable
}

// Cross returns the two directed crossing counts (U->V, V->U) for the
// partition given by u; V is the complement of u within the node set.
func (g *Graph) Cross(u Set) (crossUV, crossVU int) {
	w := g.w
	for wi, word := range u {
		word &= g.full[wi]
		base := wi * wordBits
		for word != 0 {
			a := base + bits.TrailingZeros64(word)
			word &= word - 1
			outRow := g.out[a*w : a*w+w]
			inRow := g.in[a*w : a*w+w]
			for i := range outRow {
				vWord := g.full[i] &^ u[i]
				crossUV += bits.OnesCount64(outRow[i] & vWord)
				crossVU += bits.OnesCount64(inRow[i] & vWord)
			}
		}
	}
	return crossUV, crossVU
}

// MinCross returns the smaller of the two directed crossing counts for
// the partition given by u.
func (g *Graph) MinCross(u Set) int {
	crossUV, crossVU := g.Cross(u)
	if crossVU < crossUV {
		return crossVU
	}
	return crossUV
}

// CutBandwidth evaluates B(U,V): the min-direction crossing count divided
// by |U||V|, for the partition given by u.
func (g *Graph) CutBandwidth(u Set) float64 {
	sizeU := AndCount(u, g.full)
	sizeV := g.n - sizeU
	if sizeU == 0 || sizeV == 0 {
		return math.Inf(1)
	}
	return float64(g.MinCross(u)) / float64(sizeU*sizeV)
}

// PoolMin returns the minimum CutBandwidth over a pool of partition
// sets.
func (g *Graph) PoolMin(pool []Set) float64 {
	min := math.Inf(1)
	for _, m := range pool {
		if bw := g.CutBandwidth(m); bw < min {
			min = bw
		}
	}
	return min
}

// PoolMinCross returns the minimum raw min-direction crossing count
// over a pool of partition sets (math.MaxInt when the pool is empty).
// Unlike PoolMin it is not normalized by partition sizes: it measures
// how many single-link failures a cut can absorb before disconnecting,
// which is what fragility-priced synthesis scores.
func (g *Graph) PoolMinCross(pool []Set) int {
	min := math.MaxInt
	for _, m := range pool {
		if c := g.MinCross(m); c < min {
			min = c
		}
	}
	return min
}
