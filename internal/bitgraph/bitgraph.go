// Package bitgraph provides a compact directed-graph representation for
// networks of at most 64 routers, with bitmask-based breadth-first search
// and cut evaluation. It is the shared computational core of the topology
// synthesizer and the baseline calibration tooling: one BFS level is
// computed as the union of out-masks of the current frontier, making
// all-pairs hop statistics cost O(n^2) word operations.
package bitgraph

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxNodes is the largest supported node count (one uint64 mask).
const MaxNodes = 64

// Link is a directed edge.
type Link struct{ A, B int }

// Graph is an incrementally maintained directed graph with degree
// counters, neighbor bitmasks and an O(1)-sampleable link list.
type Graph struct {
	n               int
	OutMask, InMask []uint64
	OutDeg, InDeg   []int
	linkList        []Link
	linkIndex       map[Link]int
	full            uint64
}

// New returns an empty graph over n nodes (n <= MaxNodes).
func New(n int) *Graph {
	if n <= 0 || n > MaxNodes {
		panic(fmt.Sprintf("bitgraph: unsupported node count %d", n))
	}
	return &Graph{
		n:         n,
		OutMask:   make([]uint64, n),
		InMask:    make([]uint64, n),
		OutDeg:    make([]int, n),
		InDeg:     make([]int, n),
		linkIndex: make(map[Link]int),
		full:      uint64(1)<<uint(n) - 1,
	}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// Full returns the all-nodes bitmask.
func (g *Graph) Full() uint64 { return g.full }

// Has reports whether the directed link a->b exists.
func (g *Graph) Has(a, b int) bool { return g.OutMask[a]&(1<<uint(b)) != 0 }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.linkList) }

// Links returns the current directed link list; the slice is owned by the
// graph and must not be mutated.
func (g *Graph) Links() []Link { return g.linkList }

// LinkAt returns the i-th link (for random sampling).
func (g *Graph) LinkAt(i int) Link { return g.linkList[i] }

// Add inserts a->b (idempotent).
func (g *Graph) Add(a, b int) {
	if g.Has(a, b) {
		return
	}
	g.OutMask[a] |= 1 << uint(b)
	g.InMask[b] |= 1 << uint(a)
	g.OutDeg[a]++
	g.InDeg[b]++
	g.linkIndex[Link{a, b}] = len(g.linkList)
	g.linkList = append(g.linkList, Link{a, b})
}

// Remove deletes a->b (idempotent).
func (g *Graph) Remove(a, b int) {
	if !g.Has(a, b) {
		return
	}
	g.OutMask[a] &^= 1 << uint(b)
	g.InMask[b] &^= 1 << uint(a)
	g.OutDeg[a]--
	g.InDeg[b]--
	idx := g.linkIndex[Link{a, b}]
	last := g.linkList[len(g.linkList)-1]
	g.linkList[idx] = last
	g.linkIndex[last] = idx
	g.linkList = g.linkList[:len(g.linkList)-1]
	delete(g.linkIndex, Link{a, b})
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	copy(c.OutMask, g.OutMask)
	copy(c.InMask, g.InMask)
	copy(c.OutDeg, g.OutDeg)
	copy(c.InDeg, g.InDeg)
	c.linkList = append(c.linkList, g.linkList...)
	for k, v := range g.linkIndex {
		c.linkIndex[k] = v
	}
	return c
}

// HopStats runs one bitmask BFS per source and returns the total hop
// count over reachable ordered pairs, the number of unreachable ordered
// pairs and the diameter over reachable pairs.
func (g *Graph) HopStats() (total int64, unreachable int, diameter int) {
	n := g.n
	for src := 0; src < n; src++ {
		visited := uint64(1) << uint(src)
		frontier := visited
		d := 0
		for frontier != 0 {
			var next uint64
			f := frontier
			for f != 0 {
				u := bits.TrailingZeros64(f)
				f &= f - 1
				next |= g.OutMask[u]
			}
			next &^= visited
			if next == 0 {
				break
			}
			d++
			total += int64(d) * int64(bits.OnesCount64(next))
			visited |= next
			frontier = next
		}
		if d > diameter {
			diameter = d
		}
		unreachable += n - bits.OnesCount64(visited)
	}
	return total, unreachable, diameter
}

// WeightedHops returns sum(w[s][d] * dist(s,d)) over reachable pairs plus
// the count of unreachable ordered pairs with positive weight.
func (g *Graph) WeightedHops(w [][]float64) (total float64, unreachable int) {
	n := g.n
	for src := 0; src < n; src++ {
		visited := uint64(1) << uint(src)
		frontier := visited
		d := 0
		for frontier != 0 {
			var next uint64
			f := frontier
			for f != 0 {
				u := bits.TrailingZeros64(f)
				f &= f - 1
				next |= g.OutMask[u]
			}
			next &^= visited
			if next == 0 {
				break
			}
			d++
			nf := next
			for nf != 0 {
				v := bits.TrailingZeros64(nf)
				nf &= nf - 1
				total += w[src][v] * float64(d)
			}
			visited |= next
			frontier = next
		}
		miss := g.full &^ visited
		for miss != 0 {
			v := bits.TrailingZeros64(miss)
			miss &= miss - 1
			if w[src][v] > 0 {
				unreachable++
			}
		}
	}
	return total, unreachable
}

// CutBandwidth evaluates B(U,V): the min-direction crossing count divided
// by |U||V|, for the partition given by uMask.
func (g *Graph) CutBandwidth(uMask uint64) float64 {
	uMask &= g.full
	sizeU := bits.OnesCount64(uMask)
	sizeV := g.n - sizeU
	if sizeU == 0 || sizeV == 0 {
		return math.Inf(1)
	}
	minCross := g.MinCross(uMask)
	return float64(minCross) / float64(sizeU*sizeV)
}

// MinCross returns the smaller of the two directed crossing counts for
// the partition given by uMask.
func (g *Graph) MinCross(uMask uint64) int {
	uMask &= g.full
	vMask := g.full &^ uMask
	crossUV, crossVU := 0, 0
	rem := uMask
	for rem != 0 {
		a := bits.TrailingZeros64(rem)
		rem &= rem - 1
		crossUV += bits.OnesCount64(g.OutMask[a] & vMask)
		crossVU += bits.OnesCount64(g.InMask[a] & vMask)
	}
	if crossVU < crossUV {
		return crossVU
	}
	return crossUV
}

// PoolMin returns the minimum CutBandwidth over a pool of partition
// masks.
func (g *Graph) PoolMin(pool []uint64) float64 {
	min := math.Inf(1)
	for _, m := range pool {
		if bw := g.CutBandwidth(m); bw < min {
			min = bw
		}
	}
	return min
}
