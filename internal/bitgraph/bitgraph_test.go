package bitgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveInvariants(t *testing.T) {
	g := New(8)
	g.Add(0, 1)
	g.Add(1, 2)
	g.Add(0, 1) // idempotent
	if g.NumLinks() != 2 {
		t.Fatalf("links = %d, want 2", g.NumLinks())
	}
	if !g.Has(0, 1) || g.Has(1, 0) {
		t.Fatal("directedness broken")
	}
	if g.OutDeg[0] != 1 || g.InDeg[1] != 1 || g.InDeg[2] != 1 {
		t.Fatal("degree counters wrong")
	}
	g.Remove(0, 1)
	g.Remove(0, 1) // idempotent
	if g.NumLinks() != 1 || g.Has(0, 1) {
		t.Fatal("remove broken")
	}
	if g.OutDeg[0] != 0 || g.InDeg[1] != 0 {
		t.Fatal("degree counters not restored")
	}
}

func TestNewBounds(t *testing.T) {
	for _, bad := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) must panic", bad)
				}
			}()
			New(bad)
		}()
	}
	g := New(64)
	if g.Full()[0] != ^uint64(0) || g.Words() != 1 {
		t.Error("64-node full mask wrong")
	}
	// Beyond 64 nodes the graph switches to multi-word rows.
	big := New(130)
	if big.Words() != 3 || big.Full().Count() != 130 {
		t.Errorf("130-node graph: words=%d full=%d, want 3 words, 130 bits",
			big.Words(), big.Full().Count())
	}
	big.Add(0, 129)
	big.Add(129, 64)
	if !big.Has(0, 129) || !big.Has(129, 64) || big.Has(64, 129) {
		t.Error("cross-word links broken")
	}
	if big.OutDeg[129] != 1 || big.InDeg[64] != 1 {
		t.Error("cross-word degree counters wrong")
	}
}

func TestHopStatsLine(t *testing.T) {
	// Directed line 0->1->2->3: total = (1+2+3)+(1+2)+1 = 10 reachable;
	// unreachable = all backward pairs = 6; diameter 3.
	g := New(4)
	g.Add(0, 1)
	g.Add(1, 2)
	g.Add(2, 3)
	total, unreachable, diam := g.HopStats()
	if total != 10 || unreachable != 6 || diam != 3 {
		t.Errorf("HopStats = (%d,%d,%d), want (10,6,3)", total, unreachable, diam)
	}
}

func TestCutBandwidthDirected(t *testing.T) {
	// 2 links 0->1 and 1->0 plus 2->... partition {0} vs {1}:
	g := New(2)
	g.Add(0, 1)
	if got := g.CutBandwidth(SetOf(2, 0)); got != 1.0 {
		// one direction has 1 crossing, the other 0: min = 0.
		if got != 0 {
			t.Errorf("one-way cut bandwidth = %v, want 0 (min direction)", got)
		}
	}
	g.Add(1, 0)
	if got := g.CutBandwidth(SetOf(2, 0)); got != 1.0 {
		t.Errorf("two-way cut bandwidth = %v, want 1", got)
	}
}

func TestPoolMin(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.Add(i, (i+1)%4)
		g.Add((i+1)%4, i)
	}
	// Ring of 4: cut {0,1} crosses 2 each way: B = 2/4 = 0.5.
	// Cut {0,2} crosses 4 each way: B = 1.
	pool := []Set{MaskSet(4, 0b0011), MaskSet(4, 0b0101)}
	if got := g.PoolMin(pool); got != 0.5 {
		t.Errorf("pool min = %v, want 0.5", got)
	}
	if math.IsInf(g.CutBandwidth(NewSet(4)), 1) != true {
		t.Error("empty partition must be +Inf")
	}
}

// Property: graphs with the same link set canonicalize to identical
// link lists regardless of insertion/removal history.
func TestCanonicalCloneOrderIndependent(t *testing.T) {
	a := New(5)
	for _, l := range [][2]int{{3, 1}, {0, 2}, {1, 4}, {2, 3}} {
		a.Add(l[0], l[1])
	}
	b := New(5)
	// Same final set, scrambled history: extra links added and removed.
	b.Add(1, 4)
	b.Add(4, 0)
	b.Add(2, 3)
	b.Add(0, 2)
	b.Remove(4, 0)
	b.Add(3, 1)
	ca, cb := a.CanonicalClone(), b.CanonicalClone()
	if len(ca.Links()) != len(cb.Links()) {
		t.Fatalf("link counts differ: %d vs %d", len(ca.Links()), len(cb.Links()))
	}
	for i := range ca.Links() {
		if ca.LinkAt(i) != cb.LinkAt(i) {
			t.Fatalf("link %d differs: %v vs %v", i, ca.LinkAt(i), cb.LinkAt(i))
		}
		if i > 0 {
			p, q := ca.LinkAt(i-1), ca.LinkAt(i)
			if p.A > q.A || (p.A == q.A && p.B >= q.B) {
				t.Fatalf("canonical list not sorted at %d: %v then %v", i, p, q)
			}
		}
	}
	// The clone is independent of the original.
	ca.Remove(0, 2)
	if !a.Has(0, 2) {
		t.Fatal("canonical clone shares state with the original")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(4)
	g.Add(0, 1)
	c := g.Clone()
	c.Add(1, 2)
	c.Remove(0, 1)
	if !g.Has(0, 1) || g.Has(1, 2) {
		t.Fatal("clone shares state")
	}
}

// Property: multi-word HopStats agrees with Floyd-Warshall across the
// 64-node word boundary.
func TestHopStatsMatchesFloydWarshallMultiWord(t *testing.T) {
	if err := quick.Check(hopStatsMatchesFW(60, 20, 0.06), &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: HopStats total/unreachable match a reference Floyd-Warshall
// on random graphs.
func TestHopStatsMatchesFloydWarshall(t *testing.T) {
	if err := quick.Check(hopStatsMatchesFW(5, 8, 0.3), &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func hopStatsMatchesFW(nBase, nSpread int, p float64) func(seed int64) bool {
	return func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := nBase + rng.Intn(nSpread)
		g := New(n)
		const inf = 1 << 20
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = inf
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < p {
					g.Add(i, j)
					d[i][j] = 1
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		var wantTotal int64
		wantUnreach, wantDiam := 0, 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if d[i][j] >= inf {
					wantUnreach++
				} else {
					wantTotal += int64(d[i][j])
					if d[i][j] > wantDiam {
						wantDiam = d[i][j]
					}
				}
			}
		}
		total, unreach, diam := g.HopStats()
		return total == wantTotal && unreach == wantUnreach && diam == wantDiam
	}
}

// Property: MinCross symmetry — MinCross(U) == MinCross(complement).
func TestMinCrossComplement(t *testing.T) {
	f := func(seed int64, maskRaw uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6
		g := New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.4 {
					g.Add(i, j)
				}
			}
		}
		mask := MaskSet(n, maskRaw)
		return g.MinCross(mask) == g.MinCross(mask.ComplementWithin(g.Full()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
