package traffic

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// FuzzParsePattern hardens the registry's CLI syntax ("name" or
// "name:key=val:key=val"): parsing must never panic, a successful parse
// must yield a non-empty name, and rebuilding the canonical argument
// from the parsed pieces must round-trip to the same name and params.
// Accepted arguments are additionally pushed through Registry.Build
// (except "trace", whose required file parameter would touch the
// filesystem) to shake out constructor panics on hostile parameter
// values — builders must return errors, never crash.
func FuzzParsePattern(f *testing.F) {
	for _, seed := range []string{
		"uniform",
		"shuffle",
		"hotspot:weight=0.7:hot=0+19",
		"hotspot:weight=nan",
		"bursty:base=shuffle:ponoff=0.1:poffon=0.05",
		"bursty:base=bursty",
		"trace:file=/dev/null:loop=maybe",
		"  spaced  :  k = v ",
		":",
		"name:noequals",
		"name:k=v:k=w",
		"a=b:k=v",
		"name:k=v=w",
	} {
		f.Add(seed)
	}
	env := Env{N: 20, Rows: 4, Cols: 5, Cores: []int{1, 2, 3}, MCs: []int{0, 19}}
	reg := Default()
	f.Fuzz(func(t *testing.T, arg string) {
		name, params, err := ParsePatternArg(arg)
		if err != nil {
			return
		}
		if name == "" {
			t.Fatalf("ParsePatternArg(%q) accepted an empty name", arg)
		}
		// Canonical rebuild: the split runs on ":" before "=", so parsed
		// values can never contain ":" and re-parsing must reproduce the
		// exact name/params pair.
		rebuilt := name
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rebuilt += ":" + k + "=" + params[k]
		}
		name2, params2, err2 := ParsePatternArg(rebuilt)
		if err2 != nil {
			t.Fatalf("round-trip %q -> %q failed to parse: %v", arg, rebuilt, err2)
		}
		if name2 != strings.TrimSpace(name) {
			t.Fatalf("round-trip name %q != %q (arg %q)", name2, name, arg)
		}
		if len(params) > 0 && !reflect.DeepEqual(params, params2) {
			t.Fatalf("round-trip params %v != %v (arg %q)", params2, params, arg)
		}
		if name != "trace" {
			_, _ = reg.Build(name, env, params) // must not panic
		}
	})
}

// FuzzParseTrace hardens the trace file format: parsing arbitrary bytes
// must never panic, and any accepted trace must survive a
// parse -> WriteTrace -> parse round trip record-for-record.
func FuzzParseTrace(f *testing.F) {
	for _, seed := range []string{
		"cycle,src,dst,flits\n0,1,2,3\n5,2,1,9\n",
		"# comment\n\n12,0,3,1\n",
		"0,1,2\n",
		"0,1,2,3,4\n",
		"x,y,z,w\nnot,a,header,twice\n",
		"-3,-1,-2,-9\n",
		"9223372036854775807,0,1,1\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, recs); err != nil {
			t.Fatalf("WriteTrace on parsed records: %v", err)
		}
		recs2, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of written trace: %v", err)
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("trace round-trip mismatch:\n%v\nvs\n%v", recs, recs2)
		}
	})
}
