package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// The patterns in this file extend the paper's three workloads with the
// classic adversarial and structured patterns of the NoC literature
// (Dally & Towles ch. 3): matrix transpose, bit-complement, bit-reverse,
// tornado, and a configurable hotspot. All are stateless and safe to
// share across concurrent simulations; the stateful patterns (bursty
// MMPP modulation, trace replay) live in their own files and must be
// constructed per run.

// injectFixed implements Inject for fixed-destination patterns whose
// Dest returns -1 (or src itself) for non-originating sources.
func injectFixed(dest func(int) int, src int, rng *rand.Rand) (int, int, bool) {
	dst := dest(src)
	if dst < 0 || dst == src {
		return 0, 0, false
	}
	return dst, mixedSize(rng), true
}

// originatesFixed is the matching Originator implementation.
func originatesFixed(dest func(int) int, src int) bool {
	dst := dest(src)
	return dst >= 0 && dst != src
}

// Transpose maps router (r, c) of a Rows x Cols grid to (c, r): the
// row-major matrix-transpose permutation, well defined for any grid
// shape. Diagonal routers (and all routers of a 1-row grid transposed
// onto themselves) are fixed points and do not inject.
type Transpose struct{ Rows, Cols int }

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// Dest returns the transpose destination for src.
func (t Transpose) Dest(src int) int {
	r, c := src/t.Cols, src%t.Cols
	return c*t.Rows + r
}

// Inject implements Pattern.
func (t Transpose) Inject(src int, rng *rand.Rand) (int, int, bool) {
	return injectFixed(t.Dest, src, rng)
}

// OnDeliver implements Pattern.
func (t Transpose) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (t Transpose) Originates(src int) bool { return originatesFixed(t.Dest, src) }

// addrBits returns the address width covering 0..n-1 (>= 1).
func addrBits(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// BitComplement sends src to the bitwise complement of its address
// (dst = ^src over the minimal address width). On power-of-two node
// counts this is the full complement permutation; otherwise sources
// whose complement falls outside the network do not inject.
type BitComplement struct{ N int }

// Name implements Pattern.
func (b BitComplement) Name() string { return "bitcomp" }

// Dest returns the complement destination, or -1 if it is out of range.
func (b BitComplement) Dest(src int) int {
	dst := src ^ (1<<addrBits(b.N) - 1)
	if dst >= b.N {
		return -1
	}
	return dst
}

// Inject implements Pattern.
func (b BitComplement) Inject(src int, rng *rand.Rand) (int, int, bool) {
	return injectFixed(b.Dest, src, rng)
}

// OnDeliver implements Pattern.
func (b BitComplement) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (b BitComplement) Originates(src int) bool { return originatesFixed(b.Dest, src) }

// BitReverse sends src to the bit-reversal of its address (the FFT
// communication pattern). As with BitComplement, non-power-of-two node
// counts leave some sources without an in-range destination.
type BitReverse struct{ N int }

// Name implements Pattern.
func (b BitReverse) Name() string { return "bitrev" }

// Dest returns the bit-reversed destination, or -1 if it is out of range.
func (b BitReverse) Dest(src int) int {
	w := addrBits(b.N)
	dst := int(bits.Reverse64(uint64(src)) >> (64 - w))
	if dst >= b.N {
		return -1
	}
	return dst
}

// Inject implements Pattern.
func (b BitReverse) Inject(src int, rng *rand.Rand) (int, int, bool) {
	return injectFixed(b.Dest, src, rng)
}

// OnDeliver implements Pattern.
func (b BitReverse) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (b BitReverse) Originates(src int) bool { return originatesFixed(b.Dest, src) }

// Tornado shifts each grid dimension by ceil(k/2)-1 hops with wraparound
// (dst_i = src_i + ceil(k_i/2) - 1 mod k_i): the adversarial pattern
// that defeats minimal routing on rings and tori by making every flow
// travel almost half-way around each dimension.
type Tornado struct{ Rows, Cols int }

// Name implements Pattern.
func (t Tornado) Name() string { return "tornado" }

func tornadoShift(k int) int { return (k+1)/2 - 1 }

// Dest returns the tornado destination for src.
func (t Tornado) Dest(src int) int {
	r, c := src/t.Cols, src%t.Cols
	r = (r + tornadoShift(t.Rows)) % t.Rows
	c = (c + tornadoShift(t.Cols)) % t.Cols
	return r*t.Cols + c
}

// Inject implements Pattern.
func (t Tornado) Inject(src int, rng *rand.Rand) (int, int, bool) {
	return injectFixed(t.Dest, src, rng)
}

// OnDeliver implements Pattern.
func (t Tornado) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (t Tornado) Originates(src int) bool { return originatesFixed(t.Dest, src) }

// Hotspot sends a configurable fraction of traffic to a small set of hot
// routers and the rest uniformly: with probability Weight the packet
// targets a uniformly chosen hot router, otherwise any other router.
// The expected fraction of traffic landing on the hot set is therefore
// Weight plus the uniform background's share.
type Hotspot struct {
	N      int
	Hot    []int   // hot destination routers (non-empty)
	Weight float64 // probability in [0,1] that a packet targets the hot set
}

// NewHotspot validates and builds a hotspot pattern.
func NewHotspot(n int, hot []int, weight float64) (*Hotspot, error) {
	if n < 2 {
		return nil, fmt.Errorf("traffic: hotspot needs >= 2 nodes, got %d", n)
	}
	if len(hot) == 0 {
		return nil, fmt.Errorf("traffic: hotspot needs at least one hot router")
	}
	seen := make(map[int]bool, len(hot))
	for _, h := range hot {
		if h < 0 || h >= n {
			return nil, fmt.Errorf("traffic: hot router %d out of range [0,%d)", h, n)
		}
		if seen[h] {
			return nil, fmt.Errorf("traffic: duplicate hot router %d", h)
		}
		seen[h] = true
	}
	if weight < 0 || weight > 1 {
		return nil, fmt.Errorf("traffic: hotspot weight %g outside [0,1]", weight)
	}
	return &Hotspot{N: n, Hot: hot, Weight: weight}, nil
}

// Name implements Pattern.
func (h *Hotspot) Name() string { return "hotspot" }

// Inject implements Pattern.
func (h *Hotspot) Inject(src int, rng *rand.Rand) (int, int, bool) {
	if rng.Float64() < h.Weight {
		// Uniform over the hot set excluding src (if src itself is hot
		// and the only hot router, fall through to background traffic).
		if dst, ok := pickExcluding(h.Hot, src, rng); ok {
			return dst, mixedSize(rng), true
		}
	}
	dst := rng.Intn(h.N - 1)
	if dst >= src {
		dst++
	}
	return dst, mixedSize(rng), true
}

// pickExcluding draws uniformly from set \ {excl}.
func pickExcluding(set []int, excl int, rng *rand.Rand) (int, bool) {
	k := len(set)
	for i := 0; i < k; i++ {
		if set[i] == excl {
			if k == 1 {
				return 0, false
			}
			j := rng.Intn(k - 1)
			if j >= i {
				j++
			}
			return set[j], true
		}
	}
	return set[rng.Intn(k)], true
}

// OnDeliver implements Pattern.
func (h *Hotspot) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (h *Hotspot) Originates(src int) bool { return h.N >= 2 }

// NextInjectionAfter implements InjectionHinter for the fixed
// permutation patterns: non-fixed sources are always eligible, and
// a pattern with no originating source at all never injects (its
// Inject is a permanent rng-free no-op).

// NextInjectionAfter implements InjectionHinter.
func (t Transpose) NextInjectionAfter(cycle int64) int64 {
	return hintFixed(t.Dest, t.Rows*t.Cols, cycle)
}

// NextInjectionAfter implements InjectionHinter.
func (b BitComplement) NextInjectionAfter(cycle int64) int64 {
	return hintFixed(b.Dest, b.N, cycle)
}

// NextInjectionAfter implements InjectionHinter.
func (b BitReverse) NextInjectionAfter(cycle int64) int64 {
	return hintFixed(b.Dest, b.N, cycle)
}

// NextInjectionAfter implements InjectionHinter.
func (t Tornado) NextInjectionAfter(cycle int64) int64 {
	return hintFixed(t.Dest, t.Rows*t.Cols, cycle)
}

// NextInjectionAfter implements InjectionHinter: some node always
// injects.
func (h *Hotspot) NextInjectionAfter(cycle int64) int64 { return cycle + 1 }

// hintFixed answers NextInjectionAfter for a fixed-destination pattern:
// conservative cycle+1 while any source originates, Never when none do.
// The O(n) scan only runs in the degenerate all-fixed-point case worth
// Never; any real pattern exits on its first originating source.
func hintFixed(dest func(int) int, n int, cycle int64) int64 {
	for src := 0; src < n; src++ {
		if originatesFixed(dest, src) {
			return cycle + 1
		}
	}
	return Never
}
