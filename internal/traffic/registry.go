package traffic

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"netsmith/internal/layout"
)

// The registry makes workloads pluggable: every pattern is registered
// under a name with a constructor and a self-describing parameter list,
// so drivers (netbench -matrix, the scenario smoke in CI, examples) can
// enumerate and build patterns without hard-coding them. Constructors
// return a FRESH pattern instance per call; stateful patterns (bursty,
// trace) rely on this for safe concurrent use across matrix cells.

// Env is the network context a pattern is built for.
type Env struct {
	N          int   // router count
	Rows, Cols int   // grid shape (Rows*Cols == N for grid layouts)
	Cores, MCs []int // core-attached and memory-controller routers
}

// GridEnv derives the standard Env for an interposer grid: all routers
// are core-attached except the first/last-column memory controllers.
func GridEnv(g *layout.Grid) Env {
	return Env{
		N: g.N(), Rows: g.Rows, Cols: g.Cols,
		Cores: g.CoreRouters(), MCs: g.MemoryControllerRouters(),
	}
}

// Params carries per-pattern options as string key/values; each pattern
// documents its keys via ParamSpec and parses them in its constructor.
type Params map[string]string

// ParamSpec documents one pattern parameter.
type ParamSpec struct {
	Name    string
	Default string // empty means "derived from Env" or required (see Doc)
	Doc     string
}

// Builder constructs a fresh pattern instance for an environment.
type Builder func(env Env, p Params) (Pattern, error)

// Entry is one registered pattern.
type Entry struct {
	Name   string
	Doc    string
	Params []ParamSpec
	Build  Builder
}

// Registry maps pattern names to constructors.
type Registry struct {
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]Entry{}} }

// Register adds an entry; duplicate names are an error.
func (r *Registry) Register(e Entry) error {
	if e.Name == "" || e.Build == nil {
		return fmt.Errorf("traffic: registry entry needs a name and builder")
	}
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("traffic: pattern %q already registered", e.Name)
	}
	r.entries[e.Name] = e
	return nil
}

// Names lists registered patterns in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the entry for name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// Build constructs a fresh instance of the named pattern, validating
// that every supplied parameter is one the pattern declares.
func (r *Registry) Build(name string, env Env, params Params) (Pattern, error) {
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("traffic: unknown pattern %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	for k := range params {
		known := false
		for _, s := range e.Params {
			if s.Name == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("traffic: pattern %q has no parameter %q", name, k)
		}
	}
	return e.Build(env, params)
}

// param returns the supplied value or the spec default.
func param(p Params, name, def string) string {
	if v, ok := p[name]; ok && v != "" {
		return v
	}
	return def
}

func floatParam(p Params, name, def string) (float64, error) {
	v, err := strconv.ParseFloat(param(p, name, def), 64)
	if err != nil {
		return 0, fmt.Errorf("traffic: parameter %s: %v", name, err)
	}
	return v, nil
}

func boolParam(p Params, name, def string) (bool, error) {
	v, err := strconv.ParseBool(param(p, name, def))
	if err != nil {
		return false, fmt.Errorf("traffic: parameter %s: %v", name, err)
	}
	return v, nil
}

func intListParam(p Params, name string) ([]int, error) {
	raw := param(p, name, "")
	if raw == "" {
		return nil, nil
	}
	var out []int
	for _, g := range strings.FieldsFunc(raw, func(r rune) bool { return r == '+' || r == ' ' }) {
		v, err := strconv.Atoi(g)
		if err != nil {
			return nil, fmt.Errorf("traffic: parameter %s: bad router id %q", name, g)
		}
		out = append(out, v)
	}
	return out, nil
}

// Default returns the registry of built-in patterns. The returned
// registry is freshly populated on each call, so callers may extend it
// without affecting others.
func Default() *Registry {
	r := NewRegistry()
	must := func(e Entry) {
		if err := r.Register(e); err != nil {
			panic(err)
		}
	}
	must(Entry{
		Name: "uniform",
		Doc:  "uniform-random all-to-all (coherence proxy), 50/50 control/data",
		Build: func(env Env, p Params) (Pattern, error) {
			return Uniform{N: env.N}, nil
		},
	})
	must(Entry{
		Name: "shuffle",
		Doc:  "gem5 shuffle permutation (far source-destination pairs)",
		Build: func(env Env, p Params) (Pattern, error) {
			return Shuffle{N: env.N}, nil
		},
	})
	must(Entry{
		Name: "memory",
		Doc:  "core-to-MC request/reply hotspot (paper Fig. 6b)",
		Build: func(env Env, p Params) (Pattern, error) {
			if len(env.Cores) == 0 || len(env.MCs) == 0 {
				return nil, fmt.Errorf("traffic: memory pattern needs cores and MCs in the environment")
			}
			return NewMemory(env.Cores, env.MCs), nil
		},
	})
	must(Entry{
		Name: "transpose",
		Doc:  "matrix-transpose permutation on the grid: (r,c) -> (c,r)",
		Build: func(env Env, p Params) (Pattern, error) {
			if env.Rows*env.Cols != env.N {
				return nil, fmt.Errorf("traffic: transpose needs a grid environment (%dx%d != %d)", env.Rows, env.Cols, env.N)
			}
			return Transpose{Rows: env.Rows, Cols: env.Cols}, nil
		},
	})
	must(Entry{
		Name: "bitcomp",
		Doc:  "bit-complement permutation: dst = ^src over the address width",
		Build: func(env Env, p Params) (Pattern, error) {
			return BitComplement{N: env.N}, nil
		},
	})
	must(Entry{
		Name: "bitrev",
		Doc:  "bit-reverse permutation (FFT communication)",
		Build: func(env Env, p Params) (Pattern, error) {
			return BitReverse{N: env.N}, nil
		},
	})
	must(Entry{
		Name: "tornado",
		Doc:  "per-dimension half-way wraparound shift (adversarial for minimal routing)",
		Build: func(env Env, p Params) (Pattern, error) {
			if env.Rows*env.Cols != env.N {
				return nil, fmt.Errorf("traffic: tornado needs a grid environment (%dx%d != %d)", env.Rows, env.Cols, env.N)
			}
			return Tornado{Rows: env.Rows, Cols: env.Cols}, nil
		},
	})
	must(Entry{
		Name: "hotspot",
		Doc:  "weight fraction of traffic to a hot router set, rest uniform",
		Params: []ParamSpec{
			{Name: "weight", Default: "0.5", Doc: "probability a packet targets the hot set"},
			{Name: "hot", Default: "", Doc: "'+'-separated hot router ids, e.g. 0+5+7 (default: the MCs, else router 0)"},
		},
		Build: func(env Env, p Params) (Pattern, error) {
			w, err := floatParam(p, "weight", "0.5")
			if err != nil {
				return nil, err
			}
			hot, err := intListParam(p, "hot")
			if err != nil {
				return nil, err
			}
			if hot == nil {
				if len(env.MCs) > 0 {
					hot = append(hot, env.MCs...)
				} else {
					hot = []int{0}
				}
			}
			return NewHotspot(env.N, hot, w)
		},
	})
	must(Entry{
		Name: "bursty",
		Doc:  "two-state MMPP on/off modulation of a base pattern",
		Params: []ParamSpec{
			{Name: "base", Default: "uniform", Doc: "base pattern name (any registered pattern except bursty)"},
			{Name: "ponoff", Default: "0.02", Doc: "ON->OFF probability per injection opportunity"},
			{Name: "poffon", Default: "0.02", Doc: "OFF->ON probability per injection opportunity"},
		},
		Build: func(env Env, p Params) (Pattern, error) {
			baseName := param(p, "base", "uniform")
			if baseName == "bursty" {
				return nil, fmt.Errorf("traffic: bursty cannot modulate itself")
			}
			base, err := r.Build(baseName, env, nil)
			if err != nil {
				return nil, err
			}
			pOnOff, err := floatParam(p, "ponoff", "0.02")
			if err != nil {
				return nil, err
			}
			pOffOn, err := floatParam(p, "poffon", "0.02")
			if err != nil {
				return nil, err
			}
			return NewBursty(base, env.N, pOnOff, pOffOn)
		},
	})
	must(Entry{
		Name: "trace",
		Doc:  "replay recorded (cycle,src,dst,flits) tuples per source",
		Params: []ParamSpec{
			{Name: "file", Default: "", Doc: "trace file path (required; format of traffic.WriteTrace)"},
			{Name: "loop", Default: "true", Doc: "restart a source's sequence when exhausted"},
		},
		Build: func(env Env, p Params) (Pattern, error) {
			path := param(p, "file", "")
			if path == "" {
				return nil, fmt.Errorf("traffic: trace pattern requires the file parameter")
			}
			loop, err := boolParam(p, "loop", "true")
			if err != nil {
				return nil, err
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			recs, err := ParseTrace(f)
			if err != nil {
				return nil, err
			}
			return NewReplay(strings.TrimSuffix(filepath.Base(path), ".csv"), env.N, recs, loop)
		},
	})
	return r
}

// patternKeyEscaper keeps CanonicalPatternKey injective: parameters
// arrive as arbitrary map values on the public API (not only
// ParsePatternArg output), so a value containing ':' or '=' must not
// render the same bytes as a differently-split parameter set.
var patternKeyEscaper = strings.NewReplacer("%", "%25", ":", "%3A", "=", "%3D")

// CanonicalPatternKey renders a (name, params) pair as the canonical
// "name:key=val:..." string with parameters in sorted key order (':',
// '=' and '%' percent-escaped), so two ways of writing the same
// workload produce the same string and different workloads never
// collide. It is the pattern component of content-addressed cache keys
// (sim.PatternFactory Key, the result store).
func CanonicalPatternKey(name string, p Params) string {
	if len(p) == 0 {
		return name
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := name
	for _, k := range keys {
		out += ":" + patternKeyEscaper.Replace(k) + "=" + patternKeyEscaper.Replace(p[k])
	}
	return out
}

// ParsePatternArg splits a command-line pattern argument of the form
// "name" or "name:key=val:key=val" (e.g. "hotspot:weight=0.7:hot=0+19").
func ParsePatternArg(arg string) (name string, params Params, err error) {
	parts := strings.Split(arg, ":")
	name = strings.TrimSpace(parts[0])
	if name == "" {
		return "", nil, fmt.Errorf("traffic: empty pattern name in %q", arg)
	}
	if len(parts) == 1 {
		return name, nil, nil
	}
	params = Params{}
	for _, kv := range parts[1:] {
		k, v, found := strings.Cut(kv, "=")
		if !found || k == "" {
			return "", nil, fmt.Errorf("traffic: bad pattern parameter %q in %q (want key=val)", kv, arg)
		}
		params[k] = v
	}
	return name, params, nil
}
