package traffic

import (
	"bytes"
	"math/rand"
	"testing"
)

// checkPermutation asserts that a deterministic-destination pattern is
// injective over its originating sources and agrees with Originates.
func checkPermutation(t *testing.T, n int, dest func(int) int, orig func(int) bool) {
	t.Helper()
	seen := make(map[int]int)
	for src := 0; src < n; src++ {
		if !orig(src) {
			continue
		}
		d := dest(src)
		if d < 0 || d >= n || d == src {
			t.Fatalf("src %d: invalid destination %d", src, d)
		}
		if prev, dup := seen[d]; dup {
			t.Fatalf("destination %d shared by sources %d and %d", d, prev, src)
		}
		seen[d] = src
	}
}

func TestTransposePermutation(t *testing.T) {
	tr := Transpose{Rows: 4, Cols: 5}
	checkPermutation(t, 20, tr.Dest, tr.Originates)
	// On a square grid transpose is an involution: twice returns the
	// source (on non-square grids it is a permutation but not its own
	// inverse, since the transposed geometry swaps Rows and Cols).
	sq := Transpose{Rows: 4, Cols: 4}
	checkPermutation(t, 16, sq.Dest, sq.Originates)
	for src := 0; src < 16; src++ {
		if got := sq.Dest(sq.Dest(src)); got != src {
			t.Errorf("Dest(Dest(%d)) = %d", src, got)
		}
		// Diagonal routers are the fixed points.
		if sq.Originates(src) == (src/4 == src%4) {
			t.Errorf("Originates(%d) wrong for diagonal rule", src)
		}
	}
	// Router (r,c) maps to (c,r) of the transposed grid: index c*Rows+r.
	if got := tr.Dest(1*5 + 3); got != 3*4+1 {
		t.Errorf("Dest(8) = %d, want 13", got)
	}
	// (0,0) is a fixed point and must not inject.
	rng := rand.New(rand.NewSource(1))
	if _, _, ok := tr.Inject(0, rng); ok {
		t.Error("fixed point 0 must not inject")
	}
	if dst, _, ok := tr.Inject(7, rng); !ok || dst != tr.Dest(7) {
		t.Errorf("Inject(7) = %d,%v", dst, ok)
	}
}

func TestBitComplementPermutation(t *testing.T) {
	// Power-of-two node count: the full complement permutation, no fixed
	// points, every source injects.
	b := BitComplement{N: 16}
	checkPermutation(t, 16, b.Dest, b.Originates)
	for src := 0; src < 16; src++ {
		if !b.Originates(src) {
			t.Fatalf("source %d must originate on a power-of-two network", src)
		}
		if got := b.Dest(src); got != 15-src {
			t.Errorf("Dest(%d) = %d, want %d", src, got, 15-src)
		}
	}
	// Non-power-of-two: complements landing outside the network do not
	// inject (e.g. ^0 = 31 >= 20), in-range ones still do.
	b = BitComplement{N: 20}
	checkPermutation(t, 20, b.Dest, b.Originates)
	rng := rand.New(rand.NewSource(2))
	if _, _, ok := b.Inject(0, rng); ok {
		t.Error("src 0 has no in-range complement on 20 nodes")
	}
	if dst, _, ok := b.Inject(12, rng); !ok || dst != 19 {
		t.Errorf("Inject(12) = %d,%v, want 19", dst, ok)
	}
}

func TestBitReversePermutation(t *testing.T) {
	b := BitReverse{N: 16}
	checkPermutation(t, 16, b.Dest, b.Originates)
	// 4-bit reversal: 0b0001 -> 0b1000, 0b0110 -> 0b0110 (fixed point).
	if got := b.Dest(1); got != 8 {
		t.Errorf("Dest(1) = %d, want 8", got)
	}
	if b.Originates(6) {
		t.Error("palindromic address 6 (0110) is a fixed point")
	}
	b = BitReverse{N: 20}
	checkPermutation(t, 20, b.Dest, b.Originates)
}

func TestTornadoFormula(t *testing.T) {
	// 4x5 grid: rows shift by ceil(4/2)-1 = 1, cols by ceil(5/2)-1 = 2.
	tor := Tornado{Rows: 4, Cols: 5}
	checkPermutation(t, 20, tor.Dest, tor.Originates)
	for src := 0; src < 20; src++ {
		r, c := src/5, src%5
		want := ((r+1)%4)*5 + (c+2)%5
		if got := tor.Dest(src); got != want {
			t.Errorf("Dest(%d) = %d, want %d", src, got, want)
		}
		if !tor.Originates(src) {
			t.Errorf("tornado on 4x5 has no fixed points, but %d does not originate", src)
		}
	}
	// Degenerate 1x2 grid: shifts are 0 in rows and 0 in cols -> all
	// fixed points, nobody injects.
	small := Tornado{Rows: 1, Cols: 2}
	for src := 0; src < 2; src++ {
		if small.Originates(src) {
			t.Errorf("1x2 tornado source %d must not originate", src)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	const n, trials = 20, 40000
	hot := []int{0, 19}
	weight := 0.6
	h, err := NewHotspot(n, hot, weight)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	src := 5
	hits := 0
	for i := 0; i < trials; i++ {
		dst, _, ok := h.Inject(src, rng)
		if !ok || dst == src || dst < 0 || dst >= n {
			t.Fatalf("hotspot Inject = (%d, %v)", dst, ok)
		}
		if dst == 0 || dst == 19 {
			hits++
		}
	}
	// Hot traffic (weight) plus the uniform background's share of the
	// hot set: w + (1-w) * |hot| / (n-1).
	want := weight + (1-weight)*float64(len(hot))/float64(n-1)
	got := float64(hits) / trials
	if got < want-0.02 || got > want+0.02 {
		t.Errorf("hot fraction %.4f far from %.4f (weight %.2f)", got, want, weight)
	}
	// A hot source never targets itself; with one hot router the hot
	// draw falls back to uniform background.
	solo, err := NewHotspot(n, []int{3}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		dst, _, ok := solo.Inject(3, rng)
		if !ok || dst == 3 {
			t.Fatalf("hot source 3 drew dst %d ok=%v", dst, ok)
		}
	}
	// Validation.
	if _, err := NewHotspot(n, []int{n}, 0.5); err == nil {
		t.Error("out-of-range hot router accepted")
	}
	if _, err := NewHotspot(n, nil, 0.5); err == nil {
		t.Error("empty hot set accepted")
	}
	if _, err := NewHotspot(n, []int{1}, 1.5); err == nil {
		t.Error("weight > 1 accepted")
	}
}

func TestBurstyDutyCycle(t *testing.T) {
	const n, trials = 8, 60000
	b, err := NewBursty(Uniform{N: n}, n, 0.05, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.DutyCycle(); got < 0.75-1e-12 || got > 0.75+1e-12 {
		t.Fatalf("duty cycle %v, want 0.75", got)
	}
	rng := rand.New(rand.NewSource(11))
	on := 0
	for i := 0; i < trials; i++ {
		if _, _, ok := b.Inject(0, rng); ok {
			on++
		}
	}
	got := float64(on) / trials
	// Mean burst length is 1/0.05 = 20 opportunities, so trials/20 =
	// 3000 bursts: the observed duty cycle should sit within a few
	// percent of the stationary 0.75.
	if got < 0.70 || got > 0.80 {
		t.Errorf("observed duty cycle %.4f far from 0.75", got)
	}
	// Each source has an independent chain; a fresh source starts ON.
	if !b.Originates(3) {
		t.Error("bursty must originate wherever its base does")
	}
	// Replies pass through to the base pattern ungated.
	m := NewMemory([]int{1, 2}, []int{0})
	bm, err := NewBursty(m, 3, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if dst, flits, ok := bm.OnDeliver(1, 0, rng); !ok || dst != 1 || flits != DataFlits {
		t.Error("bursty must forward OnDeliver to the base pattern")
	}
	if bm.Originates(0) {
		t.Error("bursty over memory: MCs do not originate")
	}
	if _, err := NewBursty(nil, 4, 0.5, 0.5); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewBursty(Uniform{N: 4}, 4, 0, 0.5); err == nil {
		t.Error("zero transition probability accepted")
	}
}

func TestReplayPattern(t *testing.T) {
	recs := []TraceRecord{
		{Cycle: 30, Src: 0, Dst: 2, Flits: 9},
		{Cycle: 10, Src: 0, Dst: 1, Flits: 1},
		{Cycle: 20, Src: 2, Dst: 0, Flits: 1},
	}
	r, err := NewReplay("t", 4, recs, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Source 0 replays its records in cycle order, then dries up.
	if dst, flits, ok := r.Inject(0, rng); !ok || dst != 1 || flits != 1 {
		t.Fatalf("first replay = (%d,%d,%v), want (1,1,true)", dst, flits, ok)
	}
	if dst, flits, ok := r.Inject(0, rng); !ok || dst != 2 || flits != 9 {
		t.Fatalf("second replay = (%d,%d,%v), want (2,9,true)", dst, flits, ok)
	}
	if _, _, ok := r.Inject(0, rng); ok {
		t.Fatal("non-looping replay must dry up")
	}
	// Sources without records never originate; recorded ones do.
	if r.Originates(1) || r.Originates(3) {
		t.Error("silent sources must not originate")
	}
	if !r.Originates(0) || !r.Originates(2) {
		t.Error("recorded sources must originate")
	}
	// Looping replay wraps around.
	r2, err := NewReplay("t", 4, recs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		wantDst := []int{1, 2, 1, 2, 1}[i]
		if dst, _, ok := r2.Inject(0, rng); !ok || dst != wantDst {
			t.Fatalf("loop step %d: dst %d ok=%v, want %d", i, dst, ok, wantDst)
		}
	}
	// Validation: out-of-range, self-sends and empty traces rejected.
	if _, err := NewReplay("t", 2, recs, false); err == nil {
		t.Error("out-of-range record accepted")
	}
	if _, err := NewReplay("t", 4, []TraceRecord{{Src: 1, Dst: 1, Flits: 1}}, false); err == nil {
		t.Error("self-send accepted")
	}
	if _, err := NewReplay("t", 4, nil, false); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	recs := []TraceRecord{
		{Cycle: 1, Src: 0, Dst: 3, Flits: 1},
		{Cycle: 2, Src: 3, Dst: 0, Flits: 9},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
	// Comments and blank lines are ignored; malformed lines rejected.
	if _, err := ParseTrace(bytes.NewBufferString("# comment\n\n5,1,2,1\n")); err != nil {
		t.Errorf("comments/blanks: %v", err)
	}
	// A header is accepted even after leading comments/blank lines.
	got, err = ParseTrace(bytes.NewBufferString("# recorded by tool\n\ncycle,src,dst,flits\n5,1,2,1\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("header after comment: %v (%d records)", err, len(got))
	}
	// Only one header is forgiven; a second non-numeric line is an error.
	if _, err := ParseTrace(bytes.NewBufferString("cycle,src,dst,flits\ncycle,src,dst,flits\n5,1,2,1\n")); err == nil {
		t.Error("double header accepted")
	}
	if _, err := ParseTrace(bytes.NewBufferString("5,1,2\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ParseTrace(bytes.NewBufferString("cycle,src,dst,flits\n1,2,x,1\n")); err == nil {
		t.Error("bad field accepted")
	}
}
