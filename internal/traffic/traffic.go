// Package traffic provides the synthetic traffic patterns used by the
// paper's evaluation: uniform random (coherence-style all-to-all),
// shuffle, and memory (core-to-memory-controller request/reply hotspot)
// traffic, with the 8-byte control / 72-byte data packet mix of the
// Garnet standalone setup.
package traffic

import (
	"math"
	"math/rand"
)

// Flit sizes: links are 8 bytes wide, so control packets are 1 flit and
// data packets ceil(72/8) = 9 flits.
const (
	ControlFlits = 1
	DataFlits    = 9
)

// AvgFlitsPerPacket is the expected packet size when control and data
// packets are injected with equal likelihood.
const AvgFlitsPerPacket = float64(ControlFlits+DataFlits) / 2

// Pattern decides the destination and size of injected packets, and may
// generate replies on delivery (memory traffic).
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Inject returns the destination and flit count for a new packet
	// injected at src. ok=false means this opportunity injects nothing —
	// either because src never originates traffic (e.g. memory
	// controllers do not issue requests, permutation fixed points have
	// no partner) or, for stateful patterns, because the source is
	// transiently silent (e.g. the OFF phase of bursty modulation).
	// A source that does originate must return ok=true with a valid
	// dst != src on every opportunity it injects; patterns must not
	// randomly drop opportunities of an originating source (resample
	// internally instead). The static property lives in Originator.
	Inject(src int, rng *rand.Rand) (dst, flits int, ok bool)
	// OnDeliver is called when a packet reaches dst; a returned reply
	// (ok=true) is injected at dst back toward src. Patterns without
	// replies return ok=false.
	OnDeliver(src, dst int, rng *rand.Rand) (replyDst, replyFlits int, ok bool)
}

// Never is the NextInjectionAfter answer meaning "no source will ever
// inject again".
const Never = int64(math.MaxInt64)

// InjectionHinter is optionally implemented by patterns that can bound
// when their next injection may occur, enabling the simulator's hybrid
// event-driven stepping to fast-forward quiescent stretches. Given the
// current cycle, NextInjectionAfter returns a lower bound on the next
// cycle at which any source could inject: cycle+1 means "possibly
// immediately" (always safe), and Never promises that no future Inject
// call will return ok AND that no future Inject or OnDeliver call will
// consume rng — only under that promise can the engine skip whole
// injection opportunities without perturbing the shared rng stream.
// The hint must be a pure function of the pattern's current state (no
// rng draws, no mutation). Patterns that do not implement the
// interface simply disable generation-phase fast-forward.
//
// Note the engine's Bernoulli injection gate draws rng once per
// (router, cycle) opportunity regardless of what the pattern would
// answer, so a finite bound > cycle+1 cannot be exploited today: the
// engine only acts on Never, where the skipped draws are provably
// unobservable. The general signature exists so patterns that own
// their timing exactly (trace replay) keep expressing it.
type InjectionHinter interface {
	NextInjectionAfter(cycle int64) int64
}

// Originator is implemented by patterns that can statically report
// whether a source ever originates traffic. Unlike Inject's ok result it
// must not depend on rng draws or mutable state, so the simulator can
// count injecting nodes (for per-node throughput normalization) without
// perturbing the pattern. All patterns in this package implement it.
type Originator interface {
	Originates(src int) bool
}

// PatternOriginates reports whether src originates traffic under p,
// using the static Originator answer when available and falling back to
// a single probing Inject call (with a throwaway rng) otherwise.
func PatternOriginates(p Pattern, src int) bool {
	if o, ok := p.(Originator); ok {
		return o.Originates(src)
	}
	_, _, ok := p.Inject(src, rand.New(rand.NewSource(1)))
	return ok
}

// mixedSize returns control or data size with equal likelihood.
func mixedSize(rng *rand.Rand) int {
	if rng.Intn(2) == 0 {
		return ControlFlits
	}
	return DataFlits
}

// Uniform is uniform-random all-to-all traffic (the paper's "coherence
// traffic" proxy): every node sends to every other node with equal
// probability, 50/50 control/data.
type Uniform struct{ N int }

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Inject implements Pattern.
func (u Uniform) Inject(src int, rng *rand.Rand) (int, int, bool) {
	if u.N < 2 {
		return 0, 0, false
	}
	dst := rng.Intn(u.N - 1)
	if dst >= src {
		dst++
	}
	return dst, mixedSize(rng), true
}

// OnDeliver implements Pattern.
func (u Uniform) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (u Uniform) Originates(src int) bool { return u.N >= 2 }

// NextInjectionAfter implements InjectionHinter: every node is always
// eligible, except in the degenerate <2-node network where Inject is a
// permanent rng-free no-op.
func (u Uniform) NextInjectionAfter(cycle int64) int64 {
	if u.N < 2 {
		return Never
	}
	return cycle + 1
}

// Shuffle is the gem5 shuffle permutation: dst = 2*src for the lower
// half, (2*src+1) mod n for the upper half (far source-destination
// pairs). Nodes whose shuffle target is themselves do not inject.
type Shuffle struct{ N int }

// Name implements Pattern.
func (s Shuffle) Name() string { return "shuffle" }

// Dest returns the shuffle destination for src.
func (s Shuffle) Dest(src int) int {
	if src < s.N/2 {
		return 2 * src
	}
	return (2*src + 1) % s.N
}

// Inject implements Pattern.
func (s Shuffle) Inject(src int, rng *rand.Rand) (int, int, bool) {
	dst := s.Dest(src)
	if dst == src {
		return 0, 0, false
	}
	return dst, mixedSize(rng), true
}

// OnDeliver implements Pattern.
func (s Shuffle) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (s Shuffle) Originates(src int) bool { return s.Dest(src) != src }

// NextInjectionAfter implements InjectionHinter. Below three nodes the
// shuffle is the identity permutation (every source is a fixed point
// and Inject is a permanent rng-free no-op); otherwise some source is
// always eligible.
func (s Shuffle) NextInjectionAfter(cycle int64) int64 {
	if s.N < 3 {
		return Never
	}
	return cycle + 1
}

// WeightMatrix returns the demand matrix of the shuffle pattern for
// pattern-optimized synthesis (NS-ShufOpt).
func (s Shuffle) WeightMatrix() [][]float64 {
	w := make([][]float64, s.N)
	for i := range w {
		w[i] = make([]float64, s.N)
	}
	for src := 0; src < s.N; src++ {
		if d := s.Dest(src); d != src {
			w[src][d] = 1
		}
	}
	return w
}

// Memory models memory traffic: core-attached routers issue 1-flit read
// requests to uniformly chosen memory-controller routers, which answer
// with 9-flit data replies. MCs do not originate traffic. The reply
// hotspot at MCs makes this a tighter bottleneck than the sparsest cut,
// as the paper observes in Fig. 6(b).
type Memory struct {
	Cores []int
	MCs   []int
	core  map[int]bool
}

// NewMemory builds the pattern from core and MC router lists.
func NewMemory(cores, mcs []int) *Memory {
	m := &Memory{Cores: cores, MCs: mcs, core: make(map[int]bool)}
	for _, c := range cores {
		m.core[c] = true
	}
	return m
}

// Name implements Pattern.
func (m *Memory) Name() string { return "memory" }

// Inject implements Pattern.
func (m *Memory) Inject(src int, rng *rand.Rand) (int, int, bool) {
	if !m.core[src] {
		return 0, 0, false // MCs only reply
	}
	return m.MCs[rng.Intn(len(m.MCs))], ControlFlits, true
}

// OnDeliver implements Pattern: a request arriving at an MC triggers a
// data reply to the requesting core.
func (m *Memory) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) {
	if m.core[dst] {
		return 0, 0, false // reply delivered; chain ends
	}
	return src, DataFlits, true
}

// Originates implements Originator: only cores issue requests.
func (m *Memory) Originates(src int) bool { return m.core[src] }

// NextInjectionAfter implements InjectionHinter: cores are always
// eligible; with no cores at all nothing ever injects (and neither
// Inject nor OnDeliver can draw rng again).
func (m *Memory) NextInjectionAfter(cycle int64) int64 {
	if len(m.Cores) == 0 {
		return Never
	}
	return cycle + 1
}

// Permutation routes each source to a fixed destination given by perm.
type Permutation struct {
	Perm []int
	Tag  string
}

// Name implements Pattern.
func (p Permutation) Name() string {
	if p.Tag != "" {
		return p.Tag
	}
	return "permutation"
}

// Inject implements Pattern.
func (p Permutation) Inject(src int, rng *rand.Rand) (int, int, bool) {
	dst := p.Perm[src]
	if dst == src {
		return 0, 0, false
	}
	return dst, mixedSize(rng), true
}

// OnDeliver implements Pattern.
func (p Permutation) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator.
func (p Permutation) Originates(src int) bool { return p.Perm[src] != src }

// NextInjectionAfter implements InjectionHinter. Conservative: an
// all-fixed-point permutation would justify Never, but detecting it
// costs an O(n) scan per call, so non-fixed sources are assumed.
func (p Permutation) NextInjectionAfter(cycle int64) int64 { return cycle + 1 }
