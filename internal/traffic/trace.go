package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// TraceRecord is one recorded injection: at Cycle, router Src sent a
// Flits-flit packet to Dst. Traces come from full-system runs (see
// fullsys.RecordTrace, which distills the PARSEC workload models into
// this shape) or from external tools via ParseTrace.
type TraceRecord struct {
	Cycle int64
	Src   int
	Dst   int
	Flits int
}

// ParseTrace reads a trace in the textual format "cycle,src,dst,flits"
// (one record per line; blank lines and #-comments ignored; an optional
// non-numeric header line is skipped).
func ParseTrace(r io.Reader) ([]TraceRecord, error) {
	var recs []TraceRecord
	sc := bufio.NewScanner(r)
	lineNo := 0
	headerOK := true // a header may precede the first record (after any comments)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("traffic: trace line %d: want 4 fields (cycle,src,dst,flits), got %d", lineNo, len(fields))
		}
		cycle, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			if headerOK {
				headerOK = false
				continue // header line
			}
			return nil, fmt.Errorf("traffic: trace line %d: bad cycle %q", lineNo, fields[0])
		}
		headerOK = false
		var ints [3]int
		for i, f := range fields[1:] {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("traffic: trace line %d: bad integer %q", lineNo, f)
			}
			ints[i] = v
		}
		recs = append(recs, TraceRecord{Cycle: cycle, Src: ints[0], Dst: ints[1], Flits: ints[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteTrace emits records in the format ParseTrace reads.
func WriteTrace(w io.Writer, recs []TraceRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "cycle,src,dst,flits"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d\n", r.Cycle, r.Src, r.Dst, r.Flits); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// replayEntry is the per-source remainder of a record (timing is owned
// by the simulator's injection process; see Replay).
type replayEntry struct {
	dst   int
	flits int
}

// Replay feeds recorded (src, dst, flits) tuples back into the
// simulator. The engine's injection process owns *when* a source gets an
// injection opportunity; Replay supplies the recorded destination/size
// sequence of that source in trace-cycle order, looping when Loop is set
// (so long measurement windows re-run short traces) and drying up
// (ok=false) otherwise.
//
// Replay keeps per-source cursors and is NOT safe to share across
// concurrent simulations — construct one instance per run.
type Replay struct {
	tag    string
	perSrc [][]replayEntry
	next   []int
	loop   bool
	live   int // sources with records left; only decrements when !loop
}

// NewReplay validates records against the node count n and builds a
// replay pattern. Records are replayed per source in ascending Cycle
// order (ties keep input order).
func NewReplay(tag string, n int, recs []TraceRecord, loop bool) (*Replay, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("traffic: empty trace")
	}
	sorted := make([]TraceRecord, len(recs))
	copy(sorted, recs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })
	r := &Replay{tag: tag, perSrc: make([][]replayEntry, n), next: make([]int, n), loop: loop}
	for _, rec := range sorted {
		if rec.Src < 0 || rec.Src >= n || rec.Dst < 0 || rec.Dst >= n {
			return nil, fmt.Errorf("traffic: trace record %+v outside [0,%d)", rec, n)
		}
		if rec.Src == rec.Dst {
			return nil, fmt.Errorf("traffic: trace record %+v is a self-send", rec)
		}
		if rec.Flits < 1 {
			return nil, fmt.Errorf("traffic: trace record %+v has no flits", rec)
		}
		r.perSrc[rec.Src] = append(r.perSrc[rec.Src], replayEntry{dst: rec.Dst, flits: rec.Flits})
	}
	for _, q := range r.perSrc {
		if len(q) > 0 {
			r.live++
		}
	}
	return r, nil
}

// Name implements Pattern.
func (r *Replay) Name() string {
	if r.tag != "" {
		return "trace/" + r.tag
	}
	return "trace"
}

// Inject implements Pattern: pop the source's next recorded packet.
func (r *Replay) Inject(src int, rng *rand.Rand) (int, int, bool) {
	q := r.perSrc[src]
	if len(q) == 0 || r.next[src] >= len(q) {
		return 0, 0, false
	}
	e := q[r.next[src]]
	r.next[src]++
	if r.next[src] == len(q) {
		if r.loop {
			r.next[src] = 0
		} else {
			r.live--
		}
	}
	return e.dst, e.flits, true
}

// OnDeliver implements Pattern: traces carry replies as their own
// records, so delivery never chains.
func (r *Replay) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) { return 0, 0, false }

// Originates implements Originator: a source originates iff the trace
// recorded at least one packet from it.
func (r *Replay) Originates(src int) bool { return len(r.perSrc[src]) > 0 }

// NextInjectionAfter implements InjectionHinter: once every source's
// cursor is exhausted (non-loop traces only) the replay is permanently
// dry — Inject returns ok=false without touching rng or state, and
// OnDeliver never draws — so the simulator may fast-forward the rest of
// the run. While records remain any opportunity may pop one.
func (r *Replay) NextInjectionAfter(cycle int64) int64 {
	if r.live == 0 {
		return Never
	}
	return cycle + 1
}
