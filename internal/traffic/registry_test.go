package traffic

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"netsmith/internal/layout"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"bitcomp", "bitrev", "bursty", "hotspot", "memory",
		"shuffle", "tornado", "trace", "transpose", "uniform"}
	if got := Default().Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestRegistryBuildsAllParamFree(t *testing.T) {
	env := GridEnv(layout.Grid4x5)
	reg := Default()
	rng := rand.New(rand.NewSource(1))
	for _, name := range reg.Names() {
		if name == "trace" { // requires a file parameter
			continue
		}
		p, err := reg.Build(name, env, nil)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		// Every built pattern implements the static-originator contract
		// and injects a valid packet from each originating source.
		o, ok := p.(Originator)
		if !ok {
			t.Fatalf("%s does not implement Originator", name)
		}
		originating := 0
		for src := 0; src < env.N; src++ {
			if !o.Originates(src) {
				continue
			}
			originating++
			dst, flits, ok := p.Inject(src, rng)
			for !ok { // bursty may be transiently OFF
				dst, flits, ok = p.Inject(src, rng)
			}
			if dst < 0 || dst >= env.N || dst == src || flits < 1 {
				t.Errorf("%s: Inject(%d) = (%d, %d)", name, src, dst, flits)
			}
		}
		if originating == 0 {
			t.Errorf("%s: no originating sources on 4x5", name)
		}
	}
}

// TestRegistryMemoryControllers is the regression test for the
// Inject-contract bugfix: under the registry, memory-controller routers
// must consistently report ok=false (they only reply) and the static
// Originator answer must agree, so the simulator's injecting-node count
// cannot be perturbed by rng draws.
func TestRegistryMemoryControllers(t *testing.T) {
	env := GridEnv(layout.Grid4x5)
	p, err := Default().Build("memory", env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	isMC := map[int]bool{}
	for _, mc := range env.MCs {
		isMC[mc] = true
	}
	for src := 0; src < env.N; src++ {
		if got := PatternOriginates(p, src); got != !isMC[src] {
			t.Errorf("Originates(%d) = %v, want %v", src, got, !isMC[src])
		}
		for i := 0; i < 200; i++ {
			dst, _, ok := p.Inject(src, rng)
			if isMC[src] && ok {
				t.Fatalf("MC %d injected", src)
			}
			if !isMC[src] {
				if !ok {
					t.Fatalf("core %d dropped an injection opportunity", src)
				}
				if !isMC[dst] {
					t.Fatalf("core %d sent a request to non-MC %d", src, dst)
				}
			}
		}
	}
}

func TestRegistryTraceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	recs := []TraceRecord{{Cycle: 0, Src: 1, Dst: 2, Flits: 9}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	env := GridEnv(layout.Grid4x5)
	p, err := Default().Build("trace", env, Params{"file": path, "loop": "false"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if dst, flits, ok := p.Inject(1, rng); !ok || dst != 2 || flits != 9 {
		t.Errorf("trace replay = (%d,%d,%v)", dst, flits, ok)
	}
	if _, err := Default().Build("trace", env, nil); err == nil {
		t.Error("trace without file accepted")
	}
}

func TestRegistryErrors(t *testing.T) {
	env := GridEnv(layout.Grid4x5)
	reg := Default()
	if _, err := reg.Build("nosuch", env, nil); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := reg.Build("hotspot", env, Params{"heat": "1"}); err == nil {
		t.Error("undeclared parameter accepted")
	}
	if _, err := reg.Build("hotspot", env, Params{"weight": "nan%"}); err == nil {
		t.Error("malformed weight accepted")
	}
	if _, err := reg.Build("bursty", env, Params{"base": "bursty"}); err == nil {
		t.Error("self-referential bursty accepted")
	}
	if _, err := reg.Build("uniform", Env{N: 1}, nil); err != nil {
		t.Error("uniform over one node should build (it just never injects)")
	}
	if err := reg.Register(Entry{Name: "uniform", Build: func(Env, Params) (Pattern, error) { return nil, nil }}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestRegistryHotspotParams(t *testing.T) {
	env := GridEnv(layout.Grid4x5)
	p, err := Default().Build("hotspot", env, Params{"weight": "1", "hot": "7+11"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		dst, _, ok := p.Inject(0, rng)
		if !ok || (dst != 7 && dst != 11) {
			t.Fatalf("weight=1 hotspot sent to %d", dst)
		}
	}
}

func TestParsePatternArg(t *testing.T) {
	name, params, err := ParsePatternArg("hotspot:weight=0.7:hot=0+19")
	if err != nil || name != "hotspot" {
		t.Fatalf("parse: %v name=%s", err, name)
	}
	if params["weight"] != "0.7" || params["hot"] != "0+19" {
		t.Errorf("params = %v", params)
	}
	if name, params, err := ParsePatternArg("uniform"); err != nil || name != "uniform" || params != nil {
		t.Errorf("bare name parse = %s %v %v", name, params, err)
	}
	if _, _, err := ParsePatternArg("hotspot:weight"); err == nil {
		t.Error("missing value accepted")
	}
	if _, _, err := ParsePatternArg(""); err == nil {
		t.Error("empty arg accepted")
	}
}
