package traffic

import (
	"fmt"
	"math/rand"
)

// Bursty modulates a base pattern with a per-source two-state Markov
// chain (a discrete-time on/off MMPP): each injection opportunity first
// advances the source's chain, then injects via the base pattern only in
// the ON state. Burst and gap lengths are geometric with means
// 1/POnOff and 1/POffOn opportunities, and the long-run duty cycle is
// POffOn / (POnOff + POffOn).
//
// Bursty keeps per-source state and is NOT safe to share across
// concurrent simulations — construct one instance per run (the scenario
// matrix harness does this via its pattern factories).
type Bursty struct {
	Base   Pattern
	POnOff float64 // ON -> OFF transition probability per opportunity
	POffOn float64 // OFF -> ON transition probability per opportunity

	off []bool // per-source chain state; zero value = ON
}

// NewBursty validates and builds the modulated pattern for n sources.
func NewBursty(base Pattern, n int, pOnOff, pOffOn float64) (*Bursty, error) {
	if base == nil {
		return nil, fmt.Errorf("traffic: bursty needs a base pattern")
	}
	if pOnOff <= 0 || pOnOff > 1 || pOffOn <= 0 || pOffOn > 1 {
		return nil, fmt.Errorf("traffic: bursty transition probabilities (%g, %g) must be in (0,1]", pOnOff, pOffOn)
	}
	return &Bursty{Base: base, POnOff: pOnOff, POffOn: pOffOn, off: make([]bool, n)}, nil
}

// DutyCycle returns the stationary ON probability of the chain.
func (b *Bursty) DutyCycle() float64 { return b.POffOn / (b.POnOff + b.POffOn) }

// Name implements Pattern.
func (b *Bursty) Name() string { return "bursty/" + b.Base.Name() }

// Inject implements Pattern: advance the source's on/off chain, then
// delegate to the base pattern when ON.
func (b *Bursty) Inject(src int, rng *rand.Rand) (int, int, bool) {
	if b.off[src] {
		if rng.Float64() < b.POffOn {
			b.off[src] = false
		}
	} else if rng.Float64() < b.POnOff {
		b.off[src] = true
	}
	if b.off[src] {
		return 0, 0, false
	}
	return b.Base.Inject(src, rng)
}

// OnDeliver implements Pattern: replies are not gated by the burst state.
func (b *Bursty) OnDeliver(src, dst int, rng *rand.Rand) (int, int, bool) {
	return b.Base.OnDeliver(src, dst, rng)
}

// Originates implements Originator: burst gating is transient, so a
// source originates iff it does under the base pattern.
func (b *Bursty) Originates(src int) bool { return PatternOriginates(b.Base, src) }

// NextInjectionAfter implements InjectionHinter. Never is out of the
// question regardless of the base pattern's answer: Inject advances the
// on/off chain with an rng draw on every opportunity, so skipping
// opportunities would perturb the shared rng stream.
func (b *Bursty) NextInjectionAfter(cycle int64) int64 { return cycle + 1 }
