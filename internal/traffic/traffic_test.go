package traffic

import (
	"math/rand"
	"testing"

	"netsmith/internal/layout"
)

func TestUniformDestinationDistribution(t *testing.T) {
	u := Uniform{N: 20}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		dst, flits, ok := u.Inject(3, rng)
		if !ok {
			t.Fatal("uniform must always inject")
		}
		if dst == 3 {
			t.Fatal("self destination")
		}
		if flits != ControlFlits && flits != DataFlits {
			t.Fatalf("flits = %d", flits)
		}
		counts[dst]++
	}
	// Each of the 19 destinations should get ~trials/19.
	want := trials / 19
	for d, c := range counts {
		if d == 3 {
			continue
		}
		if c < want/2 || c > want*2 {
			t.Errorf("dst %d count %d far from %d", d, c, want)
		}
	}
	if _, _, ok := u.OnDeliver(0, 1, rng); ok {
		t.Error("uniform has no replies")
	}
}

func TestUniformPacketMix(t *testing.T) {
	u := Uniform{N: 4}
	rng := rand.New(rand.NewSource(2))
	data := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		_, flits, _ := u.Inject(0, rng)
		if flits == DataFlits {
			data++
		}
	}
	if data < trials*4/10 || data > trials*6/10 {
		t.Errorf("data fraction %d/%d far from 50%%", data, trials)
	}
}

func TestShuffleFormula(t *testing.T) {
	// Paper: dest = 2src for src < n/2; (2src+1) mod n otherwise.
	s := Shuffle{N: 20}
	cases := map[int]int{0: 0, 1: 2, 5: 10, 9: 18, 10: 1, 15: 11, 19: 19}
	for src, want := range cases {
		if got := s.Dest(src); got != want {
			t.Errorf("Dest(%d) = %d, want %d", src, got, want)
		}
	}
	rng := rand.New(rand.NewSource(3))
	// Fixed points (0 and 19 for n=20) must not inject.
	if _, _, ok := s.Inject(0, rng); ok {
		t.Error("fixed point 0 must not inject")
	}
	if dst, _, ok := s.Inject(5, rng); !ok || dst != 10 {
		t.Errorf("Inject(5) = %d, want 10", dst)
	}
}

func TestShuffleWeightMatrix(t *testing.T) {
	s := Shuffle{N: 20}
	w := s.WeightMatrix()
	nonzero := 0
	for src := range w {
		for dst := range w[src] {
			if w[src][dst] > 0 {
				nonzero++
				if dst != s.Dest(src) {
					t.Errorf("weight at (%d,%d) but Dest(%d)=%d", src, dst, src, s.Dest(src))
				}
			}
		}
	}
	if nonzero != 18 { // 20 minus 2 fixed points
		t.Errorf("nonzero weights = %d, want 18", nonzero)
	}
}

func TestMemoryPattern(t *testing.T) {
	g := layout.Grid4x5
	m := NewMemory(g.CoreRouters(), g.MemoryControllerRouters())
	rng := rand.New(rand.NewSource(4))
	// Cores send 1-flit requests to MCs only.
	for i := 0; i < 1000; i++ {
		src := g.CoreRouters()[rng.Intn(len(g.CoreRouters()))]
		dst, flits, ok := m.Inject(src, rng)
		if !ok {
			t.Fatal("cores must inject")
		}
		if flits != ControlFlits {
			t.Fatal("requests are control packets")
		}
		_, col := g.Pos(dst)
		if col != 0 && col != g.Cols-1 {
			t.Fatalf("request to non-MC router %d", dst)
		}
	}
	// MCs do not inject.
	if _, _, ok := m.Inject(g.MemoryControllerRouters()[0], rng); ok {
		t.Error("MCs must not originate requests")
	}
	// Delivery at MC generates a 9-flit reply to the requester.
	mc := g.MemoryControllerRouters()[0]
	core := g.CoreRouters()[0]
	if dst, flits, ok := m.OnDeliver(core, mc, rng); !ok || dst != core || flits != DataFlits {
		t.Errorf("OnDeliver at MC = (%d,%d,%v)", dst, flits, ok)
	}
	// Reply delivery at the core ends the chain.
	if _, _, ok := m.OnDeliver(mc, core, rng); ok {
		t.Error("reply delivery must not chain")
	}
}

func TestPermutationPattern(t *testing.T) {
	p := Permutation{Perm: []int{1, 0, 2}, Tag: "swap01"}
	rng := rand.New(rand.NewSource(5))
	if p.Name() != "swap01" {
		t.Error("tag not used as name")
	}
	if dst, _, ok := p.Inject(0, rng); !ok || dst != 1 {
		t.Error("perm inject broken")
	}
	if _, _, ok := p.Inject(2, rng); ok {
		t.Error("fixed point must not inject")
	}
}

func TestAvgFlitsPerPacket(t *testing.T) {
	if AvgFlitsPerPacket != 5.0 {
		t.Errorf("avg flits = %v, want 5 (1-flit control + 9-flit data, 50/50)", AvgFlitsPerPacket)
	}
}
