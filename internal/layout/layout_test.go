package layout

import "testing"

func TestClassAllows(t *testing.T) {
	cases := []struct {
		c      Class
		dx, dy int
		want   bool
	}{
		{Small, 1, 0, true},
		{Small, 0, 1, true},
		{Small, 1, 1, true},
		{Small, 2, 0, false},
		{Small, 0, 2, false},
		{Small, 2, 1, false},
		{Small, 0, 0, false},
		{Medium, 1, 1, true},
		{Medium, 2, 0, true},
		{Medium, 0, 2, true},
		{Medium, 2, 1, false},
		{Medium, 2, 2, false},
		{Large, 2, 0, true},
		{Large, 2, 1, true},
		{Large, 1, 2, true},
		{Large, 2, 2, false},
		{Large, 3, 0, false},
		{Large, -2, -1, true}, // absolute spans
	}
	for _, tc := range cases {
		if got := tc.c.Allows(tc.dx, tc.dy); got != tc.want {
			t.Errorf("%v.Allows(%d,%d) = %v, want %v", tc.c, tc.dx, tc.dy, got, tc.want)
		}
	}
}

func TestClassNesting(t *testing.T) {
	// Every link allowed by a shorter class must be allowed by all longer
	// classes.
	for dx := 0; dx <= 3; dx++ {
		for dy := 0; dy <= 3; dy++ {
			if Small.Allows(dx, dy) && !Medium.Allows(dx, dy) {
				t.Errorf("medium does not nest small at (%d,%d)", dx, dy)
			}
			if Medium.Allows(dx, dy) && !Large.Allows(dx, dy) {
				t.Errorf("large does not nest medium at (%d,%d)", dx, dy)
			}
		}
	}
}

func TestClassStringParse(t *testing.T) {
	for _, c := range Classes() {
		parsed, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if parsed != c {
			t.Errorf("round trip %v -> %q -> %v", c, c.String(), parsed)
		}
	}
	if _, err := ParseClass("huge"); err == nil {
		t.Error("ParseClass(huge) should fail")
	}
}

func TestClockOrdering(t *testing.T) {
	if !(Small.ClockGHz() > Medium.ClockGHz() && Medium.ClockGHz() > Large.ClockGHz()) {
		t.Errorf("clock speeds must decrease with link length: %v %v %v",
			Small.ClockGHz(), Medium.ClockGHz(), Large.ClockGHz())
	}
}

func TestGridPositions(t *testing.T) {
	g := Grid4x5
	if g.N() != 20 {
		t.Fatalf("4x5 grid has %d routers, want 20", g.N())
	}
	// Row-major numbering: router 7 is row 1, col 2.
	row, col := g.Pos(7)
	if row != 1 || col != 2 {
		t.Errorf("Pos(7) = (%d,%d), want (1,2)", row, col)
	}
	if r := g.Router(1, 2); r != 7 {
		t.Errorf("Router(1,2) = %d, want 7", r)
	}
	// Round trip everything.
	for r := 0; r < g.N(); r++ {
		rr, cc := g.Pos(r)
		if g.Router(rr, cc) != r {
			t.Errorf("round trip failed for router %d", r)
		}
	}
}

func TestGridSpan(t *testing.T) {
	g := Grid4x5
	// Routers 0 (0,0) and 12 (2,2): dx=2, dy=2.
	dx, dy := g.Span(0, 12)
	if dx != 2 || dy != 2 {
		t.Errorf("Span(0,12) = (%d,%d), want (2,2)", dx, dy)
	}
	// Symmetry.
	dx2, dy2 := g.Span(12, 0)
	if dx != dx2 || dy != dy2 {
		t.Error("Span must be symmetric")
	}
}

func TestValidLinksSmall4x5(t *testing.T) {
	g := Grid4x5
	links := g.ValidLinks(Small)
	// Count expected (1,1)-budget directed links on a 4x5 grid:
	// horizontal 4*(4)=16 pairs, vertical 3*5=15 pairs, diagonal 2*3*4=24
	// pairs; each pair contributes two directed links.
	wantPairs := 16 + 15 + 24
	if len(links) != 2*wantPairs {
		t.Errorf("small 4x5 has %d directed candidate links, want %d", len(links), 2*wantPairs)
	}
	for _, l := range links {
		if l.From == l.To {
			t.Errorf("self link %v", l)
		}
		dx, dy := g.Span(l.From, l.To)
		if !Small.Allows(dx, dy) {
			t.Errorf("link %v violates small budget: span (%d,%d)", l, dx, dy)
		}
	}
}

func TestValidLinksMonotone(t *testing.T) {
	g := Grid4x5
	ns := len(g.ValidLinks(Small))
	nm := len(g.ValidLinks(Medium))
	nl := len(g.ValidLinks(Large))
	if !(ns < nm && nm < nl) {
		t.Errorf("candidate link counts must grow with class: %d %d %d", ns, nm, nl)
	}
}

func TestValidMaskMatchesLinks(t *testing.T) {
	g := Grid6x5
	for _, c := range Classes() {
		mask := g.ValidMask(c)
		count := 0
		for a := range mask {
			for b := range mask[a] {
				if mask[a][b] {
					count++
				}
			}
		}
		if count != len(g.ValidLinks(c)) {
			t.Errorf("%v: mask has %d links, slice has %d", c, count, len(g.ValidLinks(c)))
		}
	}
}

func TestMemoryControllerRouters(t *testing.T) {
	g := Grid4x5
	mcs := g.MemoryControllerRouters()
	if len(mcs) != 8 {
		t.Fatalf("4x5 grid has %d MC routers, want 8", len(mcs))
	}
	for _, r := range mcs {
		_, col := g.Pos(r)
		if col != 0 && col != g.Cols-1 {
			t.Errorf("MC router %d not in edge column (col=%d)", r, col)
		}
	}
	cores := g.CoreRouters()
	if len(cores)+len(mcs) != g.N() {
		t.Errorf("core (%d) + MC (%d) routers != %d", len(cores), len(mcs), g.N())
	}
}

func TestLengthMM(t *testing.T) {
	g := NewGrid(4, 5)
	if got := g.LengthMM(0, 1); got != g.PitchMM {
		t.Errorf("adjacent link length = %v, want %v", got, g.PitchMM)
	}
	// Diagonal (1,1) is sqrt(2) * pitch.
	d := g.LengthMM(0, 6)
	want := g.PitchMM * 1.4142135623730951
	if diff := d - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("diagonal length = %v, want %v", d, want)
	}
}
