// Package layout models the physical placement of network-on-interposer
// (NoI) routers and the link-length constraints that govern which router
// pairs may be directly connected.
//
// NetSmith's search space is constrained by the physical layout of routers
// and by a maximum acceptable link delay, expressed — following the Kite
// taxonomy (Bharadwaj et al., DAC'20) — as the longest permitted (x, y) hop
// span of a single link. Links are named by the grid hops they span in the
// X and Y dimensions: a (1,0) link connects horizontally adjacent routers,
// a (2,1) link spans two columns and one row, and so on.
package layout

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Class is a link-length budget category from the Kite taxonomy. Networks
// limited to (1,1) links are "small", (2,0) links "medium" and (2,1) links
// "large". Longer links force slower network clocks, so each class carries
// the fastest NoI clock it permits (values from the paper: 3.6, 3.0 and
// 2.7 GHz respectively).
type Class int

const (
	// Small permits links spanning at most (1,1): (1,0), (0,1) and (1,1).
	Small Class = iota
	// Medium permits links up to Euclidean length 2.0: Small plus (2,0)
	// and (0,2).
	Medium
	// Large permits links up to Euclidean length sqrt(5): Medium plus
	// (2,1) and (1,2).
	Large
)

// String returns the lower-case class name used throughout the paper.
func (c Class) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass converts a class name ("small", "medium", "large") to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("layout: unknown link-length class %q", s)
}

// ParseGrid converts the CLI/API "RxC" notation (e.g. "4x5") to a
// Grid; the single parser shared by cmd/netbench and the serve API.
func ParseGrid(s string) (*Grid, error) {
	r, c, ok := strings.Cut(s, "x")
	if ok {
		rows, err1 := strconv.Atoi(r)
		cols, err2 := strconv.Atoi(c)
		if err1 == nil && err2 == nil && rows > 0 && cols > 0 {
			return NewGrid(rows, cols), nil
		}
	}
	return nil, fmt.Errorf("layout: bad grid %q (want RxC, e.g. 4x5)", s)
}

// Classes lists all link-length classes in increasing length order.
func Classes() []Class { return []Class{Small, Medium, Large} }

// MaxSpan returns the longest permitted link span (dx, dy) with dx >= dy,
// defining the class per the Kite naming.
func (c Class) MaxSpan() (dx, dy int) {
	switch c {
	case Small:
		return 1, 1
	case Medium:
		return 2, 0
	case Large:
		return 2, 1
	default:
		panic("layout: invalid class")
	}
}

// maxLen2 returns the squared Euclidean length of the longest permitted
// link. A span (dx, dy) is permitted when dx*dx+dy*dy <= maxLen2. This
// nests the classes: small {(1,0),(0,1),(1,1)}, medium adds {(2,0),(0,2)},
// large adds {(2,1),(1,2)}.
func (c Class) maxLen2() int {
	dx, dy := c.MaxSpan()
	return dx*dx + dy*dy
}

// Allows reports whether a link spanning dx columns and dy rows (absolute
// values) is within the class's length budget.
func (c Class) Allows(dx, dy int) bool {
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx == 0 && dy == 0 {
		return false // self links are never meaningful
	}
	return dx*dx+dy*dy <= c.maxLen2()
}

// ClockGHz returns the fastest NoI clock the class permits; the paper
// clocks small, medium and large networks at 3.6, 3.0 and 2.7 GHz.
func (c Class) ClockGHz() float64 {
	switch c {
	case Small:
		return 3.6
	case Medium:
		return 3.0
	case Large:
		return 2.7
	default:
		panic("layout: invalid class")
	}
}

// Link identifies a directed candidate link between two routers.
type Link struct {
	From, To int
}

// Grid is a regular placement of NoI routers with Rows rows and Cols
// columns. Router r sits at row r/Cols, column r%Cols, matching the 4x5
// organization in the paper's Figure 2(b) (row-major numbering). Pitch is
// the physical distance between adjacent routers in millimetres, used by
// the power/area model.
type Grid struct {
	Rows, Cols int
	PitchMM    float64
}

// NewGrid returns a Grid with the given dimensions and a default 2.0 mm
// router pitch (a typical interposer router spacing).
func NewGrid(rows, cols int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("layout: invalid grid %dx%d", rows, cols))
	}
	return &Grid{Rows: rows, Cols: cols, PitchMM: 2.0}
}

// Standard paper configurations.
var (
	// Grid4x5 is the paper's 20-router NoI (4 rows x 5 columns).
	Grid4x5 = NewGrid(4, 5)
	// Grid6x5 is the paper's 30-router configuration.
	Grid6x5 = NewGrid(6, 5)
	// Grid8x6 is the paper's 48-router scalability configuration.
	Grid8x6 = NewGrid(8, 6)
	// Grid10x10 is a 100-router configuration beyond the paper's largest
	// study, exercising the multi-word synthesis path (no 64-router
	// cap).
	Grid10x10 = NewGrid(10, 10)
)

// N returns the number of routers in the grid.
func (g *Grid) N() int { return g.Rows * g.Cols }

// Pos returns the (row, col) position of router r.
func (g *Grid) Pos(r int) (row, col int) {
	if r < 0 || r >= g.N() {
		panic(fmt.Sprintf("layout: router %d out of range for %dx%d grid", r, g.Rows, g.Cols))
	}
	return r / g.Cols, r % g.Cols
}

// Router returns the router index at (row, col).
func (g *Grid) Router(row, col int) int {
	if row < 0 || row >= g.Rows || col < 0 || col >= g.Cols {
		panic(fmt.Sprintf("layout: position (%d,%d) out of range for %dx%d grid", row, col, g.Rows, g.Cols))
	}
	return row*g.Cols + col
}

// Span returns the absolute column and row distance between routers a
// and b.
func (g *Grid) Span(a, b int) (dx, dy int) {
	ra, ca := g.Pos(a)
	rb, cb := g.Pos(b)
	dx, dy = cb-ca, rb-ra
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx, dy
}

// LengthMM returns the physical (Euclidean) length of a link between
// routers a and b in millimetres.
func (g *Grid) LengthMM(a, b int) float64 {
	dx, dy := g.Span(a, b)
	return g.PitchMM * math.Sqrt(float64(dx*dx+dy*dy))
}

// ValidLinks enumerates the set L of candidate directed links permitted by
// the class's length budget, in deterministic (from, to) order. Both
// directions of each pair are listed because NetSmith supports asymmetric
// links.
func (g *Grid) ValidLinks(c Class) []Link {
	n := g.N()
	links := make([]Link, 0, n*8)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			dx, dy := g.Span(a, b)
			if c.Allows(dx, dy) {
				links = append(links, Link{From: a, To: b})
			}
		}
	}
	return links
}

// ValidMask returns an n x n boolean matrix where entry [a][b] is true if
// a directed link a->b is permitted by the class.
func (g *Grid) ValidMask(c Class) [][]bool {
	n := g.N()
	m := make([][]bool, n)
	for a := 0; a < n; a++ {
		m[a] = make([]bool, n)
	}
	for _, l := range g.ValidLinks(c) {
		m[l.From][l.To] = true
	}
	return m
}

// MemoryControllerRouters returns the routers that host memory
// controllers. Following the paper's 4x5 organization, NoI routers in the
// left-most and right-most columns connect two cores plus two memory
// controllers each; middle-column routers connect four cores.
func (g *Grid) MemoryControllerRouters() []int {
	mcs := make([]int, 0, 2*g.Rows)
	for row := 0; row < g.Rows; row++ {
		mcs = append(mcs, g.Router(row, 0))
	}
	for row := 0; row < g.Rows; row++ {
		mcs = append(mcs, g.Router(row, g.Cols-1))
	}
	return mcs
}

// CoreRouters returns the routers in the middle columns, which attach only
// cores (no memory controllers).
func (g *Grid) CoreRouters() []int {
	cores := make([]int, 0, g.N())
	for row := 0; row < g.Rows; row++ {
		for col := 1; col < g.Cols-1; col++ {
			cores = append(cores, g.Router(row, col))
		}
	}
	return cores
}

// String describes the grid.
func (g *Grid) String() string { return fmt.Sprintf("%dx%d grid (%d routers)", g.Rows, g.Cols, g.N()) }
