package expert

import "netsmith/internal/layout"

// Specs returns the calibration targets for every baseline whose
// adjacency list is not published, keyed by the paper's Table II metrics
// (20- and 30-router configurations) and, for the 48-router scalability
// study, by extrapolated targets (the paper publishes no Table II row for
// 48 routers; the targets extend the 20->30 trends and are marked as
// approximations in EXPERIMENTS.md).
func Specs() []CalibrationSpec {
	g20, g30, g48 := layout.Grid4x5, layout.Grid6x5, layout.Grid8x6
	return []CalibrationSpec{
		// 20 routers (4x5): published Table II metrics.
		{Name: NameKiteSmall, Grid: g20, Class: layout.Small, Links: 38, Diameter: 4, AvgHops: 2.38, Bisection: 8, Seed: 107},
		{Name: NameKiteMedium, Grid: g20, Class: layout.Medium, Links: 40, Diameter: 4, AvgHops: 2.25, Bisection: 8, Seed: 12},
		{Name: NameKiteLarge, Grid: g20, Class: layout.Large, Links: 36, Diameter: 5, AvgHops: 2.27, Bisection: 8, Seed: 13},
		{Name: NameButterDonut, Grid: g20, Class: layout.Large, Links: 36, Diameter: 4, AvgHops: 2.32, Bisection: 8, Seed: 14},
		{Name: NameDoubleButterfly, Grid: g20, Class: layout.Large, Links: 32, Diameter: 4, AvgHops: 2.59, Bisection: 8, Seed: 103},
		{Name: NameLPBTPower, Grid: g20, Class: layout.Small, Links: 33, Diameter: 5, AvgHops: 2.59, Bisection: 4, Seed: 16},
		{Name: NameLPBTHopsSmall, Grid: g20, Class: layout.Small, Links: 34, Diameter: 6, AvgHops: 2.74, Bisection: 4, Seed: 17},
		{Name: NameLPBTHopsMedium, Grid: g20, Class: layout.Medium, Links: 38, Diameter: 4, AvgHops: 2.33, Bisection: 7, Seed: 18},

		// 30 routers (6x5): published Table II metrics.
		{Name: NameKiteSmall, Grid: g30, Class: layout.Small, Links: 58, Diameter: 5, AvgHops: 2.91, Bisection: 10, Seed: 21},
		{Name: NameKiteMedium, Grid: g30, Class: layout.Medium, Links: 60, Diameter: 5, AvgHops: 2.66, Bisection: 10, Seed: 22},
		{Name: NameKiteLarge, Grid: g30, Class: layout.Large, Links: 56, Diameter: 5, AvgHops: 2.69, Bisection: 10, Seed: 23},
		{Name: NameButterDonut, Grid: g30, Class: layout.Large, Links: 44, Diameter: 10, AvgHops: 3.71, Bisection: 8, Seed: 24},
		{Name: NameDoubleButterfly, Grid: g30, Class: layout.Large, Links: 48, Diameter: 5, AvgHops: 2.90, Bisection: 8, Seed: 25},

		// 48 routers (8x6): extrapolated targets for the Fig. 11 study.
		// Kite-Large and LPBT do not scale to 48 per the paper.
		{Name: NameKiteSmall, Grid: g48, Class: layout.Small, Links: 92, Diameter: 7, AvgHops: 3.55, Bisection: 12, Seed: 31},
		{Name: NameKiteMedium, Grid: g48, Class: layout.Medium, Links: 96, Diameter: 6, AvgHops: 3.25, Bisection: 13, Seed: 32},
		{Name: NameButterDonut, Grid: g48, Class: layout.Large, Links: 70, Diameter: 8, AvgHops: 4.20, Bisection: 10, Seed: 33},
		{Name: NameDoubleButterfly, Grid: g48, Class: layout.Large, Links: 77, Diameter: 6, AvgHops: 3.60, Bisection: 10, Seed: 34},
	}
}
