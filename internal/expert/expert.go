// Package expert provides the baseline network-on-interposer topologies
// NetSmith is compared against: the expert-designed networks (Mesh,
// Folded Torus, the Kite family, Butter Donut, Double Butterfly) and the
// prior-work synthesized networks (LPBT-Power, LPBT-Hops).
//
// Mesh and Folded Torus are fully constructive for any grid. The original
// papers for Kite, Butter Donut and Double Butterfly publish figures and
// metrics but not adjacency lists, so this package carries frozen link
// lists calibrated to the published Table II metrics (#links, diameter,
// average hops, bisection bandwidth); see calibrate.go and DESIGN.md for
// the methodology, and EXPERIMENTS.md for achieved-vs-published numbers.
package expert

import (
	"fmt"

	"netsmith/internal/layout"
	"netsmith/internal/topo"
)

// Mesh builds the standard 2D mesh (the normalization baseline of the
// paper's Figures 8 and 9).
func Mesh(g *layout.Grid) *topo.Topology {
	t := topo.New("Mesh", g, layout.Small)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if c+1 < g.Cols {
				t.AddLink(g.Router(r, c), g.Router(r, c+1))
				t.AddLink(g.Router(r, c+1), g.Router(r, c))
			}
			if r+1 < g.Rows {
				t.AddLink(g.Router(r, c), g.Router(r+1, c))
				t.AddLink(g.Router(r+1, c), g.Router(r, c))
			}
		}
	}
	return t
}

// foldedRingOrder returns the visiting order of a folded (interleaved)
// ring over k linearly placed nodes: 0, 2, 4, ..., 5, 3, 1. Consecutive
// ring neighbors are at most two physical positions apart, so a folded
// torus fits the medium (2,0) link budget.
func foldedRingOrder(k int) []int {
	order := make([]int, 0, k)
	for i := 0; i < k; i += 2 {
		order = append(order, i)
	}
	start := k - 1 // largest odd index when k is even
	if k%2 == 1 {
		start = k - 2
	}
	for i := start; i >= 1; i -= 2 {
		order = append(order, i)
	}
	return order
}

// FoldedTorus builds a folded torus: one folded ring per row and per
// column. All links span at most two grid hops, so it is a medium-class
// topology.
func FoldedTorus(g *layout.Grid) *topo.Topology {
	t := topo.New("Folded Torus", g, layout.Medium)
	for r := 0; g.Cols >= 2 && r < g.Rows; r++ {
		order := foldedRingOrder(g.Cols)
		for i := range order {
			a := g.Router(r, order[i])
			b := g.Router(r, order[(i+1)%len(order)])
			t.AddLink(a, b)
			t.AddLink(b, a)
		}
	}
	for c := 0; g.Rows >= 2 && c < g.Cols; c++ {
		order := foldedRingOrder(g.Rows)
		for i := range order {
			a := g.Router(order[i], c)
			b := g.Router(order[(i+1)%len(order)], c)
			t.AddLink(a, b)
			t.AddLink(b, a)
		}
	}
	return t
}

// Baseline names used throughout the experiments.
const (
	NameMesh            = "Mesh"
	NameFoldedTorus     = "Folded Torus"
	NameKiteSmall       = "Kite-Small"
	NameKiteMedium      = "Kite-Medium"
	NameKiteLarge       = "Kite-Large"
	NameButterDonut     = "Butter Donut"
	NameDoubleButterfly = "Double Butterfly"
	NameLPBTPower       = "LPBT-Power"
	NameLPBTHopsSmall   = "LPBT-Hops-Small"
	NameLPBTHopsMedium  = "LPBT-Hops-Medium"
)

// Get builds the named baseline for the given grid. Mesh and Folded Torus
// are constructive for any grid; the remaining baselines are available at
// the grid sizes the paper evaluates (4x5, 6x5 and — for a subset that
// scales — 8x6).
func Get(name string, g *layout.Grid) (*topo.Topology, error) {
	switch name {
	case NameMesh:
		return Mesh(g), nil
	case NameFoldedTorus:
		return FoldedTorus(g), nil
	}
	key := frozenKey{name: name, rows: g.Rows, cols: g.Cols}
	f, ok := frozen[key]
	if !ok {
		return nil, fmt.Errorf("expert: no %q baseline for %s", name, g)
	}
	t := topo.FromPairs(name, g, f.class, f.pairs)
	return t, nil
}

// Names lists the baselines available for a grid, in presentation order.
func Names(g *layout.Grid) []string {
	all := []string{
		NameMesh, NameFoldedTorus,
		NameKiteSmall, NameKiteMedium, NameKiteLarge,
		NameButterDonut, NameDoubleButterfly,
		NameLPBTPower, NameLPBTHopsSmall, NameLPBTHopsMedium,
	}
	var out []string
	for _, n := range all {
		if n == NameMesh || n == NameFoldedTorus {
			out = append(out, n)
			continue
		}
		if _, ok := frozen[frozenKey{name: n, rows: g.Rows, cols: g.Cols}]; ok {
			out = append(out, n)
		}
	}
	return out
}
