package expert

import (
	"math"
	"testing"

	"netsmith/internal/layout"
)

func TestMeshMetrics(t *testing.T) {
	m := Mesh(layout.Grid4x5)
	if m.NumLinks() != 31 {
		t.Errorf("4x5 mesh links = %d, want 31", m.NumLinks())
	}
	if !m.IsConnected() || !m.IsSymmetric() {
		t.Fatal("mesh must be connected and symmetric")
	}
	if !m.RespectsLinkLengths() {
		t.Error("mesh uses only unit links")
	}
	if got, want := m.AverageHops(), 3.0; math.Abs(got-want) > 0.01 {
		t.Errorf("4x5 mesh avg hops = %v, want ~3.0", got)
	}
}

func TestFoldedRingOrder(t *testing.T) {
	cases := map[int][]int{
		4: {0, 2, 3, 1},
		5: {0, 2, 4, 3, 1},
		6: {0, 2, 4, 5, 3, 1},
		8: {0, 2, 4, 6, 7, 5, 3, 1},
	}
	for k, want := range cases {
		got := foldedRingOrder(k)
		if len(got) != len(want) {
			t.Fatalf("foldedRingOrder(%d) = %v, want %v", k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("foldedRingOrder(%d) = %v, want %v", k, got, want)
			}
		}
		// Consecutive ring entries must be at most 2 positions apart.
		for i := range got {
			d := got[i] - got[(i+1)%len(got)]
			if d < 0 {
				d = -d
			}
			if d > 2 {
				t.Errorf("foldedRingOrder(%d): neighbors %d,%d span %d > 2", k, got[i], got[(i+1)%len(got)], d)
			}
		}
	}
}

func TestFoldedTorus4x5(t *testing.T) {
	ft := FoldedTorus(layout.Grid4x5)
	if ft.NumLinks() != 40 {
		t.Errorf("4x5 folded torus links = %d, want 40 (Table II)", ft.NumLinks())
	}
	if d := ft.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4 (Table II)", d)
	}
	// Analytic: E[ringdist5]=1.2, E[ringdist4]=1.0 over all pairs incl
	// self, scaled by 20/19 for self-exclusion => 2.3158.
	if got, want := ft.AverageHops(), 2.2*20.0/19.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("avg hops = %v, want %v (Table II: 2.32)", got, want)
	}
	if bis := ft.BisectionBandwidth(); bis != 10 {
		t.Errorf("bisection = %d, want 10 (Table II)", bis)
	}
	if !ft.RespectsLinkLengths() {
		t.Error("folded torus must fit the medium budget")
	}
	if !ft.RespectsRadix(4) {
		t.Error("folded torus is radix 4")
	}
}

func TestFoldedTorus6x5(t *testing.T) {
	ft := FoldedTorus(layout.Grid6x5)
	if ft.NumLinks() != 60 {
		t.Errorf("6x5 folded torus links = %d, want 60 (Table II)", ft.NumLinks())
	}
	if d := ft.Diameter(); d != 5 {
		t.Errorf("diameter = %d, want 5 (Table II)", d)
	}
	// E[ringdist5]=1.2, E[ringdist6]=1.5 => (2.7)*30/29 = 2.7931.
	if got, want := ft.AverageHops(), 2.7*30.0/29.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("avg hops = %v, want %v (Table II: 2.79)", got, want)
	}
}

// Published Table II metrics with the tolerance our calibrated stand-ins
// must meet. Bisection tolerances are wider where calibration could not
// reach the published value (recorded in EXPERIMENTS.md).
func TestCalibratedBaselines20(t *testing.T) {
	cases := []struct {
		name    string
		links   int
		diam    int
		avg     float64
		bis     int
		bisTol  int
		avgTol  float64
		diamTol int
	}{
		{NameKiteSmall, 38, 4, 2.38, 8, 0, 0.02, 0},
		{NameKiteMedium, 40, 4, 2.25, 8, 0, 0.03, 0},
		{NameKiteLarge, 36, 5, 2.27, 8, 0, 0.02, 0},
		{NameButterDonut, 36, 4, 2.32, 8, 0, 0.02, 0},
		{NameDoubleButterfly, 32, 4, 2.59, 8, 2, 0.02, 1},
		{NameLPBTPower, 33, 5, 2.59, 4, 0, 0.02, 0},
		{NameLPBTHopsSmall, 34, 6, 2.74, 4, 0, 0.02, 0},
		{NameLPBTHopsMedium, 38, 4, 2.33, 7, 0, 0.02, 0},
	}
	for _, c := range cases {
		tp, err := Get(c.name, layout.Grid4x5)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !tp.IsConnected() {
			t.Fatalf("%s: disconnected", c.name)
		}
		if !tp.IsSymmetric() {
			t.Errorf("%s: expert baselines are symmetric", c.name)
		}
		if !tp.RespectsLinkLengths() {
			t.Errorf("%s: link-length violation", c.name)
		}
		if !tp.RespectsRadix(4) {
			t.Errorf("%s: radix violation", c.name)
		}
		if got := tp.NumLinks(); got != c.links {
			t.Errorf("%s: links = %d, want %d", c.name, got, c.links)
		}
		if got := tp.Diameter(); got < c.diam-c.diamTol || got > c.diam+c.diamTol {
			t.Errorf("%s: diameter = %d, want %d±%d", c.name, got, c.diam, c.diamTol)
		}
		if got := tp.AverageHops(); math.Abs(got-c.avg) > c.avgTol {
			t.Errorf("%s: avg hops = %.3f, want %.2f±%.2f", c.name, got, c.avg, c.avgTol)
		}
		if got := tp.BisectionBandwidth(); got < c.bis-c.bisTol || got > c.bis+c.bisTol {
			t.Errorf("%s: bisection = %d, want %d±%d", c.name, got, c.bis, c.bisTol)
		}
	}
}

func TestCalibratedBaselines30(t *testing.T) {
	cases := []struct {
		name  string
		links int
		avg   float64
	}{
		{NameKiteSmall, 58, 2.91},
		{NameKiteMedium, 60, 2.66},
		{NameKiteLarge, 56, 2.69},
		{NameButterDonut, 44, 3.71},
		{NameDoubleButterfly, 48, 2.90},
	}
	for _, c := range cases {
		tp, err := Get(c.name, layout.Grid6x5)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !tp.IsConnected() || !tp.RespectsLinkLengths() || !tp.RespectsRadix(4) {
			t.Fatalf("%s: constraint violation", c.name)
		}
		if got := tp.NumLinks(); got < c.links-2 || got > c.links {
			t.Errorf("%s 30r: links = %d, want %d (-2..0)", c.name, got, c.links)
		}
		if got := tp.AverageHops(); math.Abs(got-c.avg) > 0.05 {
			t.Errorf("%s 30r: avg hops = %.3f, want %.2f±0.05", c.name, got, c.avg)
		}
	}
}

func TestGet48Subset(t *testing.T) {
	// Per the paper, Kite-Large and LPBT do not scale to 48 routers.
	if _, err := Get(NameKiteLarge, layout.Grid8x6); err == nil {
		t.Error("Kite-Large must not exist at 8x6")
	}
	if _, err := Get(NameLPBTPower, layout.Grid8x6); err == nil {
		t.Error("LPBT must not exist at 8x6")
	}
	for _, name := range []string{NameKiteSmall, NameKiteMedium, NameButterDonut, NameDoubleButterfly} {
		tp, err := Get(name, layout.Grid8x6)
		if err != nil {
			t.Fatalf("%s at 8x6: %v", name, err)
		}
		if !tp.IsConnected() || !tp.RespectsLinkLengths() || !tp.RespectsRadix(4) {
			t.Errorf("%s 48r: constraint violation", name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("Hypercube", layout.Grid4x5); err == nil {
		t.Error("unknown baseline must error")
	}
}

func TestNamesListsAvailable(t *testing.T) {
	names20 := Names(layout.Grid4x5)
	if len(names20) != 10 {
		t.Errorf("4x5 baselines: %v (want all 10)", names20)
	}
	names48 := Names(layout.Grid8x6)
	for _, n := range names48 {
		if _, err := Get(n, layout.Grid8x6); err != nil {
			t.Errorf("Names lists %s at 8x6 but Get fails: %v", n, err)
		}
	}
}

func TestGetReturnsFreshCopies(t *testing.T) {
	a, _ := Get(NameKiteSmall, layout.Grid4x5)
	b, _ := Get(NameKiteSmall, layout.Grid4x5)
	l := a.Links()[0]
	a.RemoveLink(l.From, l.To)
	if !b.Has(l.From, l.To) {
		t.Error("Get must return independent topologies")
	}
}
