package expert

import "netsmith/internal/layout"

// frozenKey identifies a calibrated baseline by name and grid size.
type frozenKey struct {
	name       string
	rows, cols int
}

// frozenTopo is a calibrated, frozen link list (undirected pairs; the
// topology contains both directions of every pair).
type frozenTopo struct {
	class layout.Class
	pairs [][2]int
}

// frozen holds the calibrated baseline link lists. The lists are
// generated once by cmd/calibrate (deterministic seeds, see specs.go) and
// frozen here so every build and benchmark compares against the exact
// same baselines.
var frozen = map[frozenKey]frozenTopo{}

// registerFrozen is called from the generated file frozen_lists.go.
func registerFrozen(name string, rows, cols int, class layout.Class, pairs [][2]int) {
	frozen[frozenKey{name: name, rows: rows, cols: cols}] = frozenTopo{class: class, pairs: pairs}
}
