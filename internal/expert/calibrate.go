package expert

import (
	"math"
	"math/rand"

	"netsmith/internal/bitgraph"
	"netsmith/internal/layout"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
)

// CalibrationSpec targets the published Table II metrics of a baseline
// whose adjacency list is not public. Calibrate searches symmetric
// topologies within the link-length class for one matching the target
// link count, diameter, average hops and bisection bandwidth. The
// resulting frozen link lists stand in for the original designs in every
// experiment; divergences are recorded in EXPERIMENTS.md.
type CalibrationSpec struct {
	Name       string
	Grid       *layout.Grid
	Class      layout.Class
	Radix      int
	Links      int     // undirected pair target (= full-duplex budgets)
	Diameter   int     // published diameter
	AvgHops    float64 // published average hops
	Bisection  int     // published bisection bandwidth
	Seed       int64
	Iterations int
}

// Calibrate runs the metric-matching search and returns the best
// symmetric topology found.
func Calibrate(spec CalibrationSpec) *topo.Topology {
	if spec.Radix == 0 {
		spec.Radix = 4
	}
	if spec.Iterations == 0 {
		spec.Iterations = 50000
	}
	n := spec.Grid.N()
	// Candidate undirected pairs within the class.
	var pairs [][2]int
	for _, l := range spec.Grid.ValidLinks(spec.Class) {
		if l.From < l.To {
			pairs = append(pairs, [2]int{l.From, l.To})
		}
	}
	cutPool := balancedCutPool(spec.Grid, spec.Seed)
	pairWeight := float64(n * (n - 1))

	score := func(s *bitgraph.Graph) float64 {
		total, unreachable, diam := s.HopStats()
		if unreachable > 0 {
			return 1e12 + float64(unreachable)
		}
		avg := float64(total) / pairWeight
		links := s.NumLinks() / 2
		bis := math.MaxInt32
		for _, m := range cutPool {
			if c := s.MinCross(m); c < bis {
				bis = c
			}
		}
		v := 50.0 * math.Abs(float64(links-spec.Links))
		v += 2000.0 * math.Abs(avg-spec.AvgHops)
		// Shortfalls hurt more than surpluses: a baseline with less
		// bandwidth or a larger diameter than published would unfairly
		// favour NetSmith in the comparisons.
		if bis < spec.Bisection {
			v += 300.0 * float64(spec.Bisection-bis)
		} else {
			v += 50.0 * float64(bis-spec.Bisection)
		}
		if diam > spec.Diameter {
			v += 40.0 * float64(diam-spec.Diameter)
		} else {
			v += 10.0 * float64(spec.Diameter-diam)
		}
		return v
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	var best *bitgraph.Graph
	bestScore := math.Inf(1)
	anneal := func(restarts int, from *bitgraph.Graph, tempScale float64) {
		for restart := 0; restart < restarts; restart++ {
			var s *bitgraph.Graph
			if from != nil {
				s = from.Clone()
			} else {
				s = bitgraph.New(n)
				// Connected seed: boustrophedon cycle, symmetric.
				seedCycleSymmetric(s, spec.Grid)
				// Random fill toward the target link count.
				perm := rng.Perm(len(pairs))
				for _, idx := range perm {
					if s.NumLinks()/2 >= spec.Links {
						break
					}
					p := pairs[idx]
					if canAddPair(s, p, spec.Radix) {
						s.Add(p[0], p[1])
						s.Add(p[1], p[0])
					}
				}
			}
			cur := score(s)
			t0 := math.Max(1.0, cur*0.05*tempScale)
			cooling := math.Pow(1e-3, 1/float64(spec.Iterations))
			temp := t0
			for i := 0; i < spec.Iterations; i++ {
				p := pairs[rng.Intn(len(pairs))]
				var undo func()
				if s.Has(p[0], p[1]) {
					s.Remove(p[0], p[1])
					s.Remove(p[1], p[0])
					undo = func() { s.Add(p[0], p[1]); s.Add(p[1], p[0]) }
				} else if canAddPair(s, p, spec.Radix) {
					s.Add(p[0], p[1])
					s.Add(p[1], p[0])
					undo = func() { s.Remove(p[0], p[1]); s.Remove(p[1], p[0]) }
				} else {
					continue
				}
				next := score(s)
				if next <= cur || rng.Float64() < math.Exp((cur-next)/temp) {
					cur = next
					if cur < bestScore {
						bestScore = cur
						best = s.Clone()
					}
				} else {
					undo()
				}
				temp *= cooling
			}
		}
	}
	build := func(g *bitgraph.Graph) *topo.Topology {
		t := topo.New(spec.Name, spec.Grid, spec.Class)
		for _, l := range g.Links() {
			t.AddLink(l.A, l.B)
		}
		return t
	}
	// exactScore replays the proxy score with the exact bisection
	// bandwidth; it arbitrates between candidates across refinement
	// rounds.
	exactScore := func(t *topo.Topology) float64 {
		if !t.IsConnected() {
			return math.Inf(1)
		}
		v := 50.0 * math.Abs(float64(t.NumLinks()-spec.Links))
		v += 2000.0 * math.Abs(t.AverageHops()-spec.AvgHops)
		bis := t.BisectionBandwidth()
		if bis < spec.Bisection {
			v += 300.0 * float64(spec.Bisection-bis)
		} else {
			v += 50.0 * float64(bis-spec.Bisection)
		}
		diam := t.Diameter()
		if diam > spec.Diameter {
			v += 40.0 * float64(diam-spec.Diameter)
		} else {
			v += 10.0 * float64(spec.Diameter-diam)
		}
		return v
	}

	anneal(6, nil, 1.0)
	champion := build(best)
	championScore := exactScore(champion)
	// Exact-separation refinement: the proxy pool may miss the true
	// bisection cut, leaving the achieved bisection below target. Add the
	// exact minimizing cut to the pool and polish the incumbent under the
	// strengthened pool (mirrors the SCOp row-generation loop). The
	// champion is only replaced when the exact metrics improve.
	for round := 0; round < 10; round++ {
		mask, exact := build(best).BisectionCut()
		proxy := math.MaxInt32
		for _, m := range cutPool {
			if c := best.MinCross(m); c < proxy {
				proxy = c
			}
		}
		if exact >= proxy || exact >= spec.Bisection {
			break
		}
		cutPool = append(cutPool, mask)
		seedState := best.Clone()
		bestScore = math.Inf(1) // rescore under the strengthened pool
		anneal(2, seedState, 0.5)
		anneal(1, nil, 1.0)
		if cand := build(best); exactScore(cand) < championScore {
			champion = cand
			championScore = exactScore(cand)
		}
	}
	return champion
}

func canAddPair(s *bitgraph.Graph, p [2]int, radix int) bool {
	return !s.Has(p[0], p[1]) &&
		s.OutDeg[p[0]] < radix && s.InDeg[p[0]] < radix &&
		s.OutDeg[p[1]] < radix && s.InDeg[p[1]] < radix
}

// seedCycleSymmetric adds a symmetric boustrophedon path covering the
// grid, guaranteeing connectivity with unit-length links.
func seedCycleSymmetric(s *bitgraph.Graph, g *layout.Grid) {
	var prev = -1
	for row := 0; row < g.Rows; row++ {
		for i := 0; i < g.Cols; i++ {
			col := i
			if row%2 == 1 {
				col = g.Cols - 1 - i
			}
			cur := g.Router(row, col)
			if prev >= 0 {
				s.Add(prev, cur)
				s.Add(cur, prev)
			}
			prev = cur
		}
	}
}

// balancedCutPool returns balanced partitions for the bisection proxy:
// geometric cuts that happen to be balanced plus random balanced masks.
func balancedCutPool(g *layout.Grid, seed int64) []bitgraph.Set {
	n := g.N()
	half := n / 2
	var pool []bitgraph.Set
	for _, m := range synth.GeometricCuts(g) {
		if m.Count() == half {
			pool = append(pool, m)
		}
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for len(pool) < 96 {
		perm := rng.Perm(n)
		m := bitgraph.NewSet(n)
		for i := 0; i < half; i++ {
			m.Add(perm[i])
		}
		pool = append(pool, m)
	}
	return pool
}
