package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"netsmith/internal/power"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// Pareto sweeps: the paper's latency/throughput/energy trade-off as a
// first-class artifact. A sweep synthesizes one topology per
// (EnergyWeight, RobustWeight) grid point through the CachedGenerate
// path, measures every candidate with the matrix harness (uniform
// traffic, CollectEnergy on), prunes dominated points with an exact
// non-domination filter, and caches the assembled frontier in the
// content-addressed store under a canonical pareto key. Every stage is
// deterministic, so frontiers are byte-identical across GOMAXPROCS and
// warm/cold stores — a frontier diff between code versions is a real
// behavior change, never schedule noise.

// DefaultEnergyWeights is the EnergyWeight grid swept when a
// ParetoConfig leaves EnergyWeights empty: the unpriced baseline plus
// three increasingly energy-biased syntheses.
func DefaultEnergyWeights() []float64 { return []float64{0, 0.5, 1, 2} }

// DefaultParetoRates is the offered-rate grid measured per candidate
// when Rates is empty: a zero-load anchor, a mid-load point and a point
// near typical mesh saturation. The lowest rate anchors the reported
// per-point power (load-independent leakage dominates there), higher
// rates feed saturation detection.
func DefaultParetoRates() []float64 { return []float64{0.02, 0.08, 0.14} }

// ParetoMetrics is the objective vector the domination filter ranks:
// lower zero-load latency, higher saturation throughput, lower energy
// per delivered flit.
type ParetoMetrics struct {
	LatencyNs       float64
	SaturationPerNs float64
	EnergyPerFlitPJ float64
}

// Dominates reports whether a is at least as good as b on every axis
// and strictly better on at least one. Equal vectors do not dominate
// each other.
func (a ParetoMetrics) Dominates(b ParetoMetrics) bool {
	if a.LatencyNs > b.LatencyNs || a.SaturationPerNs < b.SaturationPerNs || a.EnergyPerFlitPJ > b.EnergyPerFlitPJ {
		return false
	}
	return a.LatencyNs < b.LatencyNs || a.SaturationPerNs > b.SaturationPerNs || a.EnergyPerFlitPJ < b.EnergyPerFlitPJ
}

// FilterDominated returns the indices of the non-dominated points of
// ms, ascending (input order). Ties are canonical: of metric-identical
// duplicates only the first survives, so the filter's output is a
// deterministic function of the input order. Every dropped index is
// dominated by — or metric-identical to — some surviving index.
func FilterDominated(ms []ParetoMetrics) []int {
	keep := make([]int, 0, len(ms))
	for i, m := range ms {
		alive := true
		for j, o := range ms {
			if j == i {
				continue
			}
			if o.Dominates(m) || (o == m && j < i) {
				alive = false
				break
			}
		}
		if alive {
			keep = append(keep, i)
		}
	}
	return keep
}

// ParetoPoint is one surviving sweep point: the synthesized topology,
// its synthesis-side scores, and its measured behavior at the sweep's
// lowest offered rate (power) and across the rate grid (saturation).
type ParetoPoint struct {
	EnergyWeight float64 `json:"energy_weight"`
	RobustWeight float64 `json:"robust_weight"`

	Topology      *topo.Topology `json:"topology"`
	Links         int            `json:"links"`
	Objective     float64        `json:"objective"`
	EnergyProxy   float64        `json:"energy_proxy"`
	CriticalLinks int            `json:"critical_links"`
	Fragility     int            `json:"fragility"`

	// LatencyNs is the measured zero-load latency (lowest swept rate);
	// SaturationPerNs the measured saturation throughput in
	// packets/node/ns (0 when the curve never saturates in the grid).
	LatencyNs       float64 `json:"latency_ns"`
	SaturationPerNs float64 `json:"saturation_pkt_node_ns"`

	// Power accounting at the lowest swept rate. IdlePowerMW is the
	// load-independent leakage (power.Model.LeakageMW — measured
	// leakage equals it by construction); ActivePowerMW the dynamic
	// remainder; the shares partition AvgPowerMW.
	AvgPowerMW      float64 `json:"avg_power_mw"`
	IdlePowerMW     float64 `json:"idle_power_mw"`
	ActivePowerMW   float64 `json:"active_power_mw"`
	IdleShare       float64 `json:"idle_share"`
	ActiveShare     float64 `json:"active_share"`
	EnergyPerFlitPJ float64 `json:"energy_per_flit_pj"`
}

// Metrics extracts the point's domination vector.
func (p ParetoPoint) Metrics() ParetoMetrics {
	return ParetoMetrics{LatencyNs: p.LatencyNs, SaturationPerNs: p.SaturationPerNs, EnergyPerFlitPJ: p.EnergyPerFlitPJ}
}

// FleetEnergy is the sweep-level aggregate: the PUE-style accounting of
// a fleet deploying one instance of every frontier design. Powers are
// sums over frontier points in milliwatts (multiply by deployed
// instance count for fleet watts); EnergyPerFlitPJ is the mean energy
// per delivered flit across frontier points; the shares partition
// AggregatePowerMW into its load-independent and dynamic components.
type FleetEnergy struct {
	AggregatePowerMW float64 `json:"aggregate_power_mw"`
	IdlePowerMW      float64 `json:"idle_power_mw"`
	ActivePowerMW    float64 `json:"active_power_mw"`
	IdleShare        float64 `json:"idle_share"`
	ActiveShare      float64 `json:"active_share"`
	EnergyPerFlitPJ  float64 `json:"energy_per_flit_pj"`
}

// ParetoStats reports what a sweep actually did — never part of the
// cached frontier (a warm hit recomputes nothing, so its stats differ
// from the run that filled the cache).
type ParetoStats struct {
	Points        int `json:"points"`       // sweep points in the weight grid
	Synthesized   int `json:"synthesized"`  // points searched this run
	SynthCached   int `json:"synth_cached"` // points served from the synthesis cache
	Cells         int `json:"cells"`        // matrix cells measured (unique topologies x rates)
	CellsComputed int `json:"cells_computed"`
	CellsCached   int `json:"cells_cached"`
	StoreErrors   int `json:"store_errors"`
	// FrontierCached is true when the assembled frontier itself came
	// from the store (nothing was synthesized or simulated).
	FrontierCached bool `json:"frontier_cached"`
}

// Frontier is the assembled, dominated-point-free artifact. Everything
// but Stats is deterministic and cached; Points keeps sweep order.
type Frontier struct {
	Grid          string        `json:"grid"`
	Class         string        `json:"class"`
	Objective     string        `json:"objective"`
	Seed          int64         `json:"seed"`
	EnergyWeights []float64     `json:"energy_weights"`
	RobustWeights []float64     `json:"robust_weights"`
	Rates         []float64     `json:"rates"`
	Fidelity      string        `json:"fidelity"`
	Swept         int           `json:"swept"`
	Pruned        int           `json:"pruned"`
	Points        []ParetoPoint `json:"points"`
	Energy        FleetEnergy   `json:"fleet_energy"`

	Stats ParetoStats `json:"-"`
}

// ParetoIncompleteError reports a successfully finished shard of a
// sweep that cannot assemble the frontier alone. The shard has
// synthesized and measured its owned points into the store; once every
// shard has done the same, an unsharded sweep over the warm store
// assembles the frontier without recomputing anything.
type ParetoIncompleteError struct {
	Shard         sim.Shard
	Points        int // total sweep points
	Owned         int // points owned by this shard
	Pending       int // points owned by other shards
	Synthesized   int
	SynthCached   int
	Cells         int
	CellsComputed int
	CellsCached   int
}

func (e *ParetoIncompleteError) Error() string {
	return fmt.Sprintf("exp: pareto shard %s complete (%d of %d points owned, %d synthesized, %d cached; %d cells, %d computed); %d points pending from other shards",
		e.Shard, e.Owned, e.Points, e.Synthesized, e.SynthCached, e.Cells, e.CellsComputed, e.Pending)
}

// ParetoConfig parameterizes a sweep. The Base config carries
// everything but the swept weights (which must be zero there — the
// grids own them); every sweep point is Base with one
// (EnergyWeight, RobustWeight) pair applied.
type ParetoConfig struct {
	// Base is the synthesis config shared by every sweep point.
	// TimeBudget must be zero (time-budgeted searches are not
	// deterministic, so neither the synthesis cache nor the frontier
	// key could describe them) and EnergyWeight/RobustWeight must be
	// zero (the sweep grids set them per point).
	Base synth.Config

	// EnergyWeights and RobustWeights span the sweep grid
	// (energy-major order). Empty EnergyWeights defaults to
	// DefaultEnergyWeights; empty RobustWeights to {0}. Weights must
	// be finite, non-negative and free of duplicates.
	EnergyWeights []float64
	RobustWeights []float64

	// Rates is the offered-rate grid measured per candidate (positive,
	// strictly ascending; default DefaultParetoRates). The lowest rate
	// anchors per-point power, the full grid feeds saturation.
	Rates []float64

	// Fidelity selects the sim cycle budgets (sim.FidelitySmoke/Fast/
	// Full; default fast, matching the matrix front ends).
	Fidelity string

	// Store caches synthesis results, matrix cells and the assembled
	// frontier. Optional unless Shard is enabled.
	Store *store.Store

	// Ctx cancels the sweep between synthesis points and between
	// matrix cells.
	Ctx context.Context

	// Progress receives (done, total) in sweep units: one unit per
	// synthesis point resolved plus an equal share for measurement
	// (total = 2 x points).
	Progress func(done, total int)

	// Shard, when enabled (Count > 1), restricts the sweep to points
	// with index % Count == Index. A sharded sweep persists its work
	// and returns *ParetoIncompleteError; it never assembles the
	// frontier (that would duplicate other shards' cells). Requires
	// Store.
	Shard sim.Shard
}

// normalized resolves defaults and validates; the returned config has
// a defaulted Base and non-empty grids.
func (pc ParetoConfig) normalized() (ParetoConfig, error) {
	if pc.Base.TimeBudget > 0 {
		return pc, errors.New("exp: pareto sweep requires a fixed iteration budget (Base.TimeBudget must be zero)")
	}
	if pc.Base.EnergyWeight != 0 || pc.Base.RobustWeight != 0 {
		return pc, errors.New("exp: pareto Base.EnergyWeight/RobustWeight must be zero; the sweep grids set them per point")
	}
	base, err := pc.Base.Normalized()
	if err != nil {
		return pc, err
	}
	pc.Base = base
	if len(pc.EnergyWeights) == 0 {
		pc.EnergyWeights = DefaultEnergyWeights()
	}
	if len(pc.RobustWeights) == 0 {
		pc.RobustWeights = []float64{0}
	}
	if err := checkWeightGrid("energy", pc.EnergyWeights); err != nil {
		return pc, err
	}
	if err := checkWeightGrid("robust", pc.RobustWeights); err != nil {
		return pc, err
	}
	if len(pc.Rates) == 0 {
		pc.Rates = DefaultParetoRates()
	}
	for i, r := range pc.Rates {
		if !(r > 0) || math.IsInf(r, 0) {
			return pc, fmt.Errorf("exp: pareto rate %v must be positive and finite", r)
		}
		if i > 0 && r <= pc.Rates[i-1] {
			return pc, fmt.Errorf("exp: pareto rates must be strictly ascending (%v after %v)", r, pc.Rates[i-1])
		}
	}
	if pc.Fidelity == "" {
		pc.Fidelity = sim.FidelityFast
	}
	var scratch sim.Config
	if err := sim.ApplyFidelity(&scratch, pc.Fidelity); err != nil {
		return pc, err
	}
	if pc.Shard.Count > 1 {
		if pc.Store == nil {
			return pc, errors.New("exp: sharded pareto sweep requires a store (shards meet only through it)")
		}
		if pc.Shard.Index < 0 || pc.Shard.Index >= pc.Shard.Count {
			return pc, fmt.Errorf("exp: pareto shard index %d out of range [0,%d)", pc.Shard.Index, pc.Shard.Count)
		}
	}
	return pc, nil
}

func checkWeightGrid(name string, ws []float64) error {
	for i, w := range ws {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("exp: pareto %s weight %v must be finite and non-negative", name, w)
		}
		for j := 0; j < i; j++ {
			if ws[j] == w {
				return fmt.Errorf("exp: duplicate pareto %s weight %v", name, w)
			}
		}
	}
	return nil
}

// Points validates the config and returns the resolved sweep-point
// count (the weight-grid size after defaulting).
func (pc ParetoConfig) Points() (int, error) {
	norm, err := pc.normalized()
	if err != nil {
		return 0, err
	}
	return len(norm.EnergyWeights) * len(norm.RobustWeights), nil
}

// paretoPayload is the canonical frontier-key description: the shared
// base synthesis payload (swept weights zeroed, via
// synth.Config.CachePayload) plus every sweep knob that changes what
// the frontier contains. Store and Shard are mechanisms, not inputs —
// results are bit-identical with or without them — so they are
// deliberately absent.
type paretoPayload struct {
	Synth         json.RawMessage `json:"synth"`
	EnergyWeights []float64       `json:"energy_weights"`
	RobustWeights []float64       `json:"robust_weights"`
	Rates         []float64       `json:"rates"`
	Fidelity      string          `json:"fidelity"`
	Pattern       string          `json:"pattern"`
	WarmupCycles  int             `json:"warmup"`
	MeasureCycles int             `json:"measure"`
	DrainCycles   int             `json:"drain"`
}

// paretoPattern is the measurement pattern every sweep point is
// simulated under. Fixed: the frontier ranks topologies, and uniform
// all-to-all is the paper's ranking workload.
const paretoPattern = "uniform"

// cacheKey canonicalizes a normalized config into the frontier's store
// key.
func (pc ParetoConfig) cacheKey() (store.Key, bool) {
	base := pc.Base
	base.EnergyWeight, base.RobustWeight = 0, 0
	sp, ok := base.CachePayload()
	if !ok {
		return store.Key{}, false
	}
	var mc sim.Config
	if err := sim.ApplyFidelity(&mc, pc.Fidelity); err != nil {
		return store.Key{}, false
	}
	return store.NewKey("pareto", paretoPayload{
		Synth:         sp,
		EnergyWeights: pc.EnergyWeights,
		RobustWeights: pc.RobustWeights,
		Rates:         pc.Rates,
		Fidelity:      pc.Fidelity,
		Pattern:       paretoPattern,
		WarmupCycles:  mc.WarmupCycles,
		MeasureCycles: mc.MeasureCycles,
		DrainCycles:   mc.DrainCycles,
	}), true
}

// ParetoSweep runs the full sweep: synthesize each weight grid point
// (cache-first), measure every distinct candidate through the matrix
// harness, prune dominated points, aggregate fleet energy, and cache
// the frontier. Deterministic: same config, same bytes, at any
// GOMAXPROCS, warm or cold store. A sharded config persists its owned
// share and returns *ParetoIncompleteError instead of a frontier.
func ParetoSweep(pc ParetoConfig) (*Frontier, error) {
	pc, err := pc.normalized()
	if err != nil {
		return nil, err
	}
	n := len(pc.EnergyWeights) * len(pc.RobustWeights)
	total := 2 * n
	progress := pc.Progress
	if progress == nil {
		progress = func(int, int) {}
	}
	ctx := pc.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	key, keyOK := pc.cacheKey()
	if keyOK && pc.Store != nil {
		var fr Frontier
		if hit, err := pc.Store.Get(key, &fr); err == nil && hit {
			fr.Stats = ParetoStats{Points: n, FrontierCached: true}
			progress(total, total)
			return &fr, nil
		}
	}

	// Phase 1: synthesize owned points (cache-first). Points owned by
	// other shards are probed, never searched — present means some
	// shard already finished them.
	type pointState struct {
		ew, rw float64
		res    *synth.Result
	}
	pts := make([]pointState, 0, n)
	stats := ParetoStats{Points: n}
	done, owned, pending := 0, 0, 0
	for _, ew := range pc.EnergyWeights {
		for _, rw := range pc.RobustWeights {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exp: pareto sweep cancelled after %d of %d points: %w", done, n, err)
			}
			cfg := pc.Base
			cfg.EnergyWeight, cfg.RobustWeight = ew, rw
			p := pointState{ew: ew, rw: rw}
			if pc.Shard.Owns(len(pts)) {
				owned++
				res, hit, err := synth.CachedGenerate(pc.Store, cfg)
				if err != nil {
					return nil, fmt.Errorf("exp: pareto point (energy %g, robust %g): %w", ew, rw, err)
				}
				p.res = res
				if hit {
					stats.SynthCached++
				} else {
					stats.Synthesized++
				}
				done++
				progress(done, total)
			} else if res, ok := synth.Probe(pc.Store, cfg); ok {
				p.res = res
			} else {
				pending++
			}
			pts = append(pts, p)
		}
	}

	// Phase 2: measure. Weight grids frequently synthesize the same
	// topology at adjacent points (names collide too — dedup by
	// canonical topology JSON), so each distinct topology is prepared
	// and simulated once. A sharded sweep measures only its owned
	// points; curves index unique setups (one pattern, no faults).
	sharded := pc.Shard.Count > 1
	uniq := make(map[string]int)
	var setups []*sim.Setup
	pointSetup := make([]int, len(pts))
	for i, p := range pts {
		pointSetup[i] = -1
		if p.res == nil || (sharded && !pc.Shard.Owns(i)) {
			continue
		}
		tj, err := json.Marshal(p.res.Topology)
		if err != nil {
			return nil, fmt.Errorf("exp: pareto topology marshal: %w", err)
		}
		sig := string(tj)
		u, ok := uniq[sig]
		if !ok {
			setup, err := sim.Prepare(p.res.Topology, sim.UseMCLB, pc.Base.Seed)
			if err != nil {
				return nil, fmt.Errorf("exp: pareto prepare (energy %g, robust %g): %w", p.ew, p.rw, err)
			}
			u = len(setups)
			setups = append(setups, setup)
			uniq[sig] = u
		}
		pointSetup[i] = u
	}

	// One single-setup matrix per distinct topology, not one matrix over
	// all of them: RunMatrix folds a cell's position into its simulation
	// seed (and therefore its store key), so a multi-setup matrix would
	// key cells by which other topologies this run happened to measure.
	// Per-topology matrices make every cell's key a function of the
	// topology and rate alone — the property that lets shards, assembly
	// passes and differently-shaped sweeps share cells through the store.
	var curves []sim.MatrixCurve
	if len(setups) > 0 {
		base := sim.Config{CollectEnergy: true}
		if err := sim.ApplyFidelity(&base, pc.Fidelity); err != nil {
			return nil, err
		}
		synthDone := done
		totalCells := len(setups) * len(pc.Rates)
		cellsDone := 0
		for _, setup := range setups {
			res, err := sim.RunMatrix(sim.MatrixConfig{
				Setups:   []*sim.Setup{setup},
				Patterns: []sim.PatternFactory{sim.RegistryFactory(traffic.Default(), paretoPattern, traffic.GridEnv(pc.Base.Grid), nil)},
				Rates:    pc.Rates,
				Base:     base,
				Seed:     pc.Base.Seed,
				Ctx:      pc.Ctx,
				Store:    pc.Store,
				Progress: func(cdone, ctotal int) {
					progress(synthDone+owned*(cellsDone+cdone)/totalCells, total)
				},
			})
			if err != nil {
				return nil, err
			}
			cellsDone += len(pc.Rates)
			curves = append(curves, res.Curves...)
			stats.Cells += res.Stats.Cells
			stats.CellsComputed += res.Stats.Computed
			stats.CellsCached += res.Stats.CacheHits
			stats.StoreErrors += res.Stats.StoreErrors
		}
	}

	if sharded {
		return nil, &ParetoIncompleteError{
			Shard: pc.Shard, Points: n, Owned: owned, Pending: pending,
			Synthesized: stats.Synthesized, SynthCached: stats.SynthCached,
			Cells: stats.Cells, CellsComputed: stats.CellsComputed, CellsCached: stats.CellsCached,
		}
	}

	// Phase 3: assemble — score every point, prune dominated ones,
	// aggregate fleet energy, cache the frontier.
	model := power.Default22nm()
	points := make([]ParetoPoint, len(pts))
	metrics := make([]ParetoMetrics, len(pts))
	for i, p := range pts {
		points[i] = assemblePoint(p.ew, p.rw, p.res, curves[pointSetup[i]], model)
		metrics[i] = points[i].Metrics()
	}
	keep := FilterDominated(metrics)
	kept := make([]ParetoPoint, 0, len(keep))
	for _, i := range keep {
		kept = append(kept, points[i])
	}
	fr := &Frontier{
		Grid:          fmt.Sprintf("%dx%d", pc.Base.Grid.Rows, pc.Base.Grid.Cols),
		Class:         pc.Base.Class.String(),
		Objective:     pc.Base.Objective.String(),
		Seed:          pc.Base.Seed,
		EnergyWeights: pc.EnergyWeights, RobustWeights: pc.RobustWeights,
		Rates: pc.Rates, Fidelity: pc.Fidelity,
		Swept: n, Pruned: n - len(kept),
		Points: kept,
		Energy: fleetEnergy(kept),
		Stats:  stats,
	}
	if keyOK && pc.Store != nil {
		// Best-effort, like every other cache write.
		_ = pc.Store.Put(key, fr)
	}
	progress(total, total)
	return fr, nil
}

// assemblePoint scores one sweep point from its synthesis result and
// measured curve. Power is reported at the curve's lowest rate; idle
// power is the analytic leakage, which equals measured leakage exactly
// (power.ActivityReport computes it from the same formula).
func assemblePoint(ew, rw float64, res *synth.Result, c sim.MatrixCurve, m power.Model) ParetoPoint {
	low := c.Points[0]
	avg := low.AvgPowerMW
	idle := m.LeakageMW(res.Topology)
	if idle > avg {
		idle = avg
	}
	active := avg - idle
	var idleShare, activeShare float64
	if avg > 0 {
		idleShare, activeShare = idle/avg, active/avg
	}
	return ParetoPoint{
		EnergyWeight: ew, RobustWeight: rw,
		Topology: res.Topology, Links: len(res.Topology.Links()),
		Objective: res.Objective, EnergyProxy: res.EnergyProxy,
		CriticalLinks: res.CriticalLinks, Fragility: res.Fragility,
		LatencyNs:       c.ZeroLoadLatencyNs,
		SaturationPerNs: c.SaturationPerNs,
		AvgPowerMW:      avg, IdlePowerMW: idle, ActivePowerMW: active,
		IdleShare: idleShare, ActiveShare: activeShare,
		EnergyPerFlitPJ: low.EnergyPerFlitPJ,
	}
}

// fleetEnergy aggregates the PUE-style accounting over the frontier.
func fleetEnergy(points []ParetoPoint) FleetEnergy {
	var fe FleetEnergy
	for _, p := range points {
		fe.AggregatePowerMW += p.AvgPowerMW
		fe.IdlePowerMW += p.IdlePowerMW
		fe.ActivePowerMW += p.ActivePowerMW
		fe.EnergyPerFlitPJ += p.EnergyPerFlitPJ
	}
	if n := len(points); n > 0 {
		fe.EnergyPerFlitPJ /= float64(n)
	}
	if fe.AggregatePowerMW > 0 {
		fe.IdleShare = fe.IdlePowerMW / fe.AggregatePowerMW
		fe.ActiveShare = fe.ActivePowerMW / fe.AggregatePowerMW
	}
	return fe
}
