package exp

import (
	"fmt"
	"io"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// Fig10Curve is one topology's behaviour under the shuffle pattern,
// including the shuffle-optimized NetSmith topology (Figure 10).
type Fig10Curve struct {
	Topology string
	Class    string
	Sweep    *sim.SweepResult
}

// Fig10 evaluates the shuffle traffic pattern on the 20-router
// topologies plus NS-ShufOpt per class.
func (s *Suite) Fig10() ([]Fig10Curve, error) {
	g := layout.Grid4x5
	shuffle := traffic.Shuffle{N: g.N()}
	var tops []*topo.Topology
	for _, name := range []string{expert.NameKiteSmall, expert.NameFoldedTorus,
		expert.NameKiteMedium, expert.NameButterDonut, expert.NameKiteLarge} {
		t, err := expert.Get(name, g)
		if err != nil {
			return nil, err
		}
		tops = append(tops, t)
	}
	for _, c := range layout.Classes() {
		t, err := s.NS(g, c, synth.LatOp)
		if err != nil {
			return nil, err
		}
		tops = append(tops, t)
		shuf, err := s.NSShufOpt(g, c)
		if err != nil {
			return nil, err
		}
		tops = append(tops, shuf)
	}
	var curves []Fig10Curve
	for _, t := range tops {
		sr, err := s.curve(t, shuffle)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", t.Name, err)
		}
		curves = append(curves, Fig10Curve{Topology: t.Name, Class: t.Class.String(), Sweep: sr})
	}
	return curves, nil
}

// PrintFig10 renders the shuffle study.
func PrintFig10(w io.Writer, curves []Fig10Curve) {
	fmt.Fprintln(w, "Figure 10: shuffle traffic on shuffle-optimized topologies (20 routers)")
	fmt.Fprintf(w, "%-22s %-7s %12s %18s\n", "Topology", "Class", "ZeroLoad(ns)", "SatTput(pkt/n/ns)")
	for _, c := range curves {
		fmt.Fprintf(w, "%-22s %-7s %12.2f %18.3f\n",
			c.Topology, c.Class, c.Sweep.ZeroLoadLatencyNs, c.Sweep.SaturationPerNs)
	}
}
