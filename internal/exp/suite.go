// Package exp reproduces every table and figure of the paper's
// evaluation. Each driver returns structured rows and can print them in
// a paper-like layout; cmd/netbench and the root bench_test.go both call
// into this package. A Suite caches synthesized topologies and prepared
// routing/VC setups so that figures sharing inputs do not recompute
// them.
package exp

import (
	"fmt"
	"sync"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// Suite carries experiment fidelity and caches.
type Suite struct {
	// Fast trades fidelity for runtime: fewer synthesis iterations,
	// shorter simulation windows, coarser rate grids. The shapes of all
	// results are preserved; absolute precision drops.
	Fast bool
	Seed int64

	mu     sync.Mutex
	topos  map[string]*topo.Topology
	setups map[string]*sim.Setup
}

// NewSuite returns a Suite; fast=true is the benchmark default.
func NewSuite(fast bool) *Suite {
	return &Suite{Fast: fast, Seed: 42, topos: map[string]*topo.Topology{}, setups: map[string]*sim.Setup{}}
}

func (s *Suite) synthIterations() int {
	if s.Fast {
		return 20000
	}
	return 80000
}

func (s *Suite) synthRestarts() int {
	if s.Fast {
		// Fixed restarts run in parallel (deterministically merged), so
		// fast mode affords four of them in less wall-clock than the two
		// sequential restarts it historically used.
		return 4
	}
	return 5
}

// NS returns the cached NetSmith topology for a grid/class/objective.
func (s *Suite) NS(g *layout.Grid, c layout.Class, obj synth.Objective) (*topo.Topology, error) {
	return s.nsWeighted(g, c, obj, nil, "")
}

// NSShufOpt returns the shuffle-pattern-optimized topology.
func (s *Suite) NSShufOpt(g *layout.Grid, c layout.Class) (*topo.Topology, error) {
	sh := traffic.Shuffle{N: g.N()}
	return s.nsWeighted(g, c, synth.Weighted, sh.WeightMatrix(), "ShufOpt")
}

func (s *Suite) nsWeighted(g *layout.Grid, c layout.Class, obj synth.Objective, w [][]float64, tag string) (*topo.Topology, error) {
	key := fmt.Sprintf("ns/%dx%d/%s/%s/%s", g.Rows, g.Cols, c, obj, tag)
	s.mu.Lock()
	if t, ok := s.topos[key]; ok {
		s.mu.Unlock()
		return t, nil
	}
	s.mu.Unlock()
	res, err := synth.Generate(synth.Config{
		Grid: g, Class: c, Objective: obj, Weights: w,
		Seed: s.Seed, Iterations: s.synthIterations(), Restarts: s.synthRestarts(),
	})
	if err != nil {
		return nil, err
	}
	t := res.Topology
	if tag != "" {
		t.Name = fmt.Sprintf("NS-%s-%s", tag, c)
	}
	s.mu.Lock()
	s.topos[key] = t
	s.mu.Unlock()
	return t, nil
}

// Expert returns a named baseline for a grid.
func (s *Suite) Expert(name string, g *layout.Grid) (*topo.Topology, error) {
	return expert.Get(name, g)
}

// Setup prepares (and caches) routing + VCs for a topology.
func (s *Suite) Setup(t *topo.Topology, kind sim.RoutingKind) (*sim.Setup, error) {
	key := fmt.Sprintf("setup/%s/%d/%s", t.Name, kind, t.CanonicalLinkList())
	s.mu.Lock()
	if st, ok := s.setups[key]; ok {
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()
	st, err := sim.Prepare(t, kind, s.Seed)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.setups[key] = st
	s.mu.Unlock()
	return st, nil
}

// routingFor selects the paper's per-topology routing: NetSmith
// topologies use MCLB; expert and LPBT baselines use their heuristic
// (NDBT or LPBT-internal, both approximated by NDBT path filtering).
func routingFor(name string) sim.RoutingKind {
	if len(name) >= 3 && name[:3] == "NS-" {
		return sim.UseMCLB
	}
	return sim.UseNDBT
}

// rates returns the sweep grid (coarser when fast).
func (s *Suite) rates() []float64 {
	if s.Fast {
		return []float64{0.005, 0.05, 0.10, 0.14, 0.18, 0.24, 0.32}
	}
	return sim.DefaultRates()
}

// curve runs a sweep for a topology under its standard routing.
func (s *Suite) curve(t *topo.Topology, p traffic.Pattern) (*sim.SweepResult, error) {
	st, err := s.Setup(t, routingFor(t.Name))
	if err != nil {
		return nil, err
	}
	return st.Curve(p, s.rates(), s.Fast, s.Seed)
}

// twentyRouterSet lists the 20-router topologies compared throughout the
// evaluation (experts + LPBT + NetSmith LatOp/SCOp per class).
func (s *Suite) twentyRouterSet() ([]*topo.Topology, error) {
	g := layout.Grid4x5
	var out []*topo.Topology
	for _, name := range []string{
		expert.NameKiteSmall, expert.NameLPBTPower, expert.NameLPBTHopsSmall,
		expert.NameFoldedTorus, expert.NameKiteMedium, expert.NameLPBTHopsMedium,
		expert.NameButterDonut, expert.NameDoubleButterfly, expert.NameKiteLarge,
	} {
		t, err := expert.Get(name, g)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	for _, c := range layout.Classes() {
		for _, obj := range []synth.Objective{synth.LatOp, synth.SCOp} {
			t, err := s.NS(g, c, obj)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// classOf groups a topology by its link-length class for presentation.
func classOf(t *topo.Topology) layout.Class { return t.Class }
