package exp

import (
	"fmt"
	"io"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
)

// Table2Row mirrors one row of the paper's Table II (topology metrics).
type Table2Row struct {
	Routers   int
	Class     string
	Topology  string
	Links     int
	Diameter  int
	AvgHops   float64
	Bisection int
	// PaperAvgHops/PaperBisection carry the published values where the
	// paper reports them (0 = not published).
	PaperAvgHops   float64
	PaperBisection int
}

// paperTable2 holds the published metrics for cross-reference.
var paperTable2 = map[string][2]float64{ // key: "routers/name" -> {avg hops, bisection}
	"20/Kite-Small":       {2.38, 8},
	"20/LPBT-Power":       {2.59, 4},
	"20/LPBT-Hops-Small":  {2.74, 4},
	"20/NS-LatOp-small":   {2.34, 7},
	"20/NS-SCOp-small":    {2.38, 8},
	"20/Folded Torus":     {2.32, 10},
	"20/Kite-Medium":      {2.25, 8},
	"20/LPBT-Hops-Medium": {2.33, 7},
	"20/NS-LatOp-medium":  {2.06, 10},
	"20/NS-SCOp-medium":   {2.16, 11},
	"20/Butter Donut":     {2.32, 8},
	"20/Double Butterfly": {2.59, 8},
	"20/Kite-Large":       {2.27, 8},
	"20/NS-LatOp-large":   {1.96, 13},
	"20/NS-SCOp-large":    {2.03, 14},
	"30/Kite-Small":       {2.91, 10},
	"30/NS-LatOp-small":   {2.80, 8},
	"30/Folded Torus":     {2.79, 10},
	"30/Kite-Medium":      {2.66, 10},
	"30/NS-LatOp-medium":  {2.47, 11},
	"30/Butter Donut":     {3.71, 8},
	"30/Double Butterfly": {2.90, 8},
	"30/Kite-Large":       {2.69, 10},
	"30/NS-LatOp-large":   {2.32, 14},
}

// Table2 computes the full topology-metrics table for the 20- and
// 30-router configurations.
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	add := func(t *topo.Topology, routers int) {
		row := Table2Row{
			Routers:   routers,
			Class:     t.Class.String(),
			Topology:  t.Name,
			Links:     t.NumLinks(),
			Diameter:  t.Diameter(),
			AvgHops:   t.AverageHops(),
			Bisection: t.BisectionBandwidth(),
		}
		if p, ok := paperTable2[fmt.Sprintf("%d/%s", routers, t.Name)]; ok {
			row.PaperAvgHops = p[0]
			row.PaperBisection = int(p[1])
		}
		rows = append(rows, row)
	}

	// 20 routers: full comparison set.
	set20, err := s.twentyRouterSet()
	if err != nil {
		return nil, err
	}
	for _, t := range set20 {
		add(t, 20)
	}
	// 30 routers: experts + NS-LatOp per class (as published).
	g30 := layout.Grid6x5
	for _, name := range []string{
		expert.NameKiteSmall, expert.NameFoldedTorus, expert.NameKiteMedium,
		expert.NameButterDonut, expert.NameDoubleButterfly, expert.NameKiteLarge,
	} {
		t, err := expert.Get(name, g30)
		if err != nil {
			return nil, err
		}
		add(t, 30)
	}
	for _, c := range layout.Classes() {
		t, err := s.NS(g30, c, synth.LatOp)
		if err != nil {
			return nil, err
		}
		add(t, 30)
	}
	return rows, nil
}

// PrintTable2 renders rows in the paper's layout, with published values
// in parentheses where available.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table II: topology metrics (paper values in parentheses)\n")
	fmt.Fprintf(w, "%-8s %-7s %-20s %6s %5s %12s %12s\n",
		"Routers", "Class", "Topology", "Links", "Diam", "AvgHops", "BisectionBW")
	for _, r := range rows {
		avg := fmt.Sprintf("%.2f", r.AvgHops)
		if r.PaperAvgHops > 0 {
			avg += fmt.Sprintf("(%.2f)", r.PaperAvgHops)
		}
		bis := fmt.Sprintf("%d", r.Bisection)
		if r.PaperBisection > 0 {
			bis += fmt.Sprintf("(%d)", r.PaperBisection)
		}
		fmt.Fprintf(w, "%-8d %-7s %-20s %6d %5d %12s %12s\n",
			r.Routers, r.Class, r.Topology, r.Links, r.Diameter, avg, bis)
	}
}
