package exp

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/synth"
)

// smokePareto is the smallest sweep that still exercises every stage:
// two energy weights on a 3x3 grid, tiny fixed synthesis budget, smoke
// cycle budgets, two measured rates.
func smokePareto(st *store.Store) ParetoConfig {
	return ParetoConfig{
		Base: synth.Config{
			Grid: layout.NewGrid(3, 3), Class: layout.Medium, Objective: synth.LatOp,
			Seed: 7, Iterations: 400, Restarts: 1,
		},
		EnergyWeights: []float64{0, 1.5},
		Rates:         []float64{0.02, 0.3},
		Fidelity:      sim.FidelitySmoke,
		Store:         st,
	}
}

func renderFrontier(t *testing.T, fr *Frontier) (csv, js []byte) {
	t.Helper()
	var cb, jb bytes.Buffer
	if err := FrontierCSV(&cb, fr); err != nil {
		t.Fatal(err)
	}
	if err := FrontierJSON(&jb, fr); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

func TestDominates(t *testing.T) {
	a := ParetoMetrics{LatencyNs: 3, SaturationPerNs: 0.4, EnergyPerFlitPJ: 2}
	better := ParetoMetrics{LatencyNs: 2.5, SaturationPerNs: 0.4, EnergyPerFlitPJ: 2}
	tradeoff := ParetoMetrics{LatencyNs: 2.5, SaturationPerNs: 0.3, EnergyPerFlitPJ: 2}
	if !better.Dominates(a) {
		t.Error("strictly-better point does not dominate")
	}
	if a.Dominates(better) {
		t.Error("worse point dominates")
	}
	if a.Dominates(a) {
		t.Error("a point dominates itself")
	}
	if tradeoff.Dominates(a) || a.Dominates(tradeoff) {
		t.Error("incomparable trade-off points dominate each other")
	}
}

// TestFilterDominatedProperties is the property test behind the
// frontier's correctness claim: over random point sets (drawn from a
// small discrete value pool so ties and duplicates are common), no
// survivor is dominated, every dropped point is dominated by — or a
// later duplicate of — a survivor, and the output is a deterministic
// function of the input.
func TestFilterDominatedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := []float64{1, 2, 3}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		ms := make([]ParetoMetrics, n)
		for i := range ms {
			ms[i] = ParetoMetrics{
				LatencyNs:       vals[rng.Intn(len(vals))],
				SaturationPerNs: vals[rng.Intn(len(vals))],
				EnergyPerFlitPJ: vals[rng.Intn(len(vals))],
			}
		}
		keep := FilterDominated(ms)
		kept := make(map[int]bool, len(keep))
		prev := -1
		for _, i := range keep {
			if i <= prev {
				t.Fatalf("trial %d: survivors not ascending: %v", trial, keep)
			}
			prev = i
			kept[i] = true
		}
		for _, i := range keep {
			for j := range ms {
				if j != i && ms[j].Dominates(ms[i]) {
					t.Fatalf("trial %d: survivor %d (%+v) dominated by %d (%+v)", trial, i, ms[i], j, ms[j])
				}
			}
		}
		for i := range ms {
			if kept[i] {
				continue
			}
			justified := false
			for _, j := range keep {
				if ms[j].Dominates(ms[i]) || (ms[j] == ms[i] && j < i) {
					justified = true
					break
				}
			}
			if !justified {
				t.Fatalf("trial %d: dropped %d (%+v) with no dominating or earlier-duplicate survivor of %v", trial, i, ms[i], keep)
			}
		}
		again := FilterDominated(ms)
		if len(again) != len(keep) {
			t.Fatalf("trial %d: filter nondeterministic", trial)
		}
		for k := range keep {
			if again[k] != keep[k] {
				t.Fatalf("trial %d: filter nondeterministic", trial)
			}
		}
	}
}

func TestFilterDominatedDuplicates(t *testing.T) {
	p := ParetoMetrics{LatencyNs: 1, SaturationPerNs: 1, EnergyPerFlitPJ: 1}
	keep := FilterDominated([]ParetoMetrics{p, p, p})
	if len(keep) != 1 || keep[0] != 0 {
		t.Fatalf("duplicate handling: keep = %v, want [0]", keep)
	}
	if keep := FilterDominated(nil); len(keep) != 0 {
		t.Fatalf("empty input: keep = %v", keep)
	}
}

// TestParetoFrontierDeterministic pins the artifact contract: the same
// sweep emits byte-identical CSV and JSON at GOMAXPROCS 1 and 8,
// across reruns, and from a warm store versus a cold one.
func TestParetoFrontierDeterministic(t *testing.T) {
	run := func(procs int, st *store.Store) (*Frontier, []byte, []byte) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		fr, err := ParetoSweep(smokePareto(st))
		if err != nil {
			t.Fatal(err)
		}
		csv, js := renderFrontier(t, fr)
		return fr, csv, js
	}
	fr1, csv1, js1 := run(1, nil)
	_, csv8, js8 := run(8, nil)
	if !bytes.Equal(csv1, csv8) {
		t.Errorf("frontier CSV differs between GOMAXPROCS 1 and 8:\n%s\n----\n%s", csv1, csv8)
	}
	if !bytes.Equal(js1, js8) {
		t.Error("frontier JSON differs between GOMAXPROCS 1 and 8")
	}
	if len(fr1.Points) == 0 || fr1.Swept != 2 {
		t.Fatalf("degenerate frontier: %d points of %d swept", len(fr1.Points), fr1.Swept)
	}
	for _, p := range fr1.Points {
		if p.LatencyNs <= 0 || p.AvgPowerMW <= 0 || p.EnergyPerFlitPJ <= 0 {
			t.Errorf("unmeasured frontier point: %+v", p)
		}
		if p.IdlePowerMW+p.ActivePowerMW > p.AvgPowerMW*1.0000001 {
			t.Errorf("power split exceeds total: %+v", p)
		}
	}
	if fr1.Energy.AggregatePowerMW <= 0 || fr1.Energy.EnergyPerFlitPJ <= 0 {
		t.Errorf("fleet energy not populated: %+v", fr1.Energy)
	}

	// Cold store: fills synthesis, cell and frontier caches.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, csvCold, jsCold := run(8, st)
	if cold.Stats.FrontierCached || cold.Stats.Synthesized == 0 {
		t.Fatalf("cold run did not synthesize: %+v", cold.Stats)
	}
	if !bytes.Equal(csv1, csvCold) || !bytes.Equal(js1, jsCold) {
		t.Error("store-backed frontier differs from storeless frontier")
	}
	// Warm store: the frontier itself answers, byte-identically.
	warm, csvWarm, jsWarm := run(1, st)
	if !warm.Stats.FrontierCached {
		t.Fatalf("warm run recomputed: %+v", warm.Stats)
	}
	if !bytes.Equal(csvCold, csvWarm) || !bytes.Equal(jsCold, jsWarm) {
		t.Error("warm frontier differs from the run that cached it")
	}
}

// TestParetoKeySensitivity checks the frontier key covers every sweep
// knob (a changed knob misses) while unchanged sub-results still hit
// (a widened weight grid synthesizes only the new point).
func TestParetoKeySensitivity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := smokePareto(st)
	fr, err := ParetoSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Stats.FrontierCached {
		t.Fatal("cold sweep reported a frontier hit")
	}

	mutations := map[string]func(*ParetoConfig){
		"energy weights": func(pc *ParetoConfig) { pc.EnergyWeights = []float64{0, 2} },
		"robust weights": func(pc *ParetoConfig) { pc.RobustWeights = []float64{0, 10} },
		"rates":          func(pc *ParetoConfig) { pc.Rates = []float64{0.02, 0.25} },
		"fidelity":       func(pc *ParetoConfig) { pc.Fidelity = sim.FidelityFast },
		"seed":           func(pc *ParetoConfig) { pc.Base.Seed = 8 },
		"iterations":     func(pc *ParetoConfig) { pc.Base.Iterations = 500 },
	}
	for name, mutate := range mutations {
		pc := smokePareto(st)
		mutate(&pc)
		got, err := ParetoSweep(pc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Stats.FrontierCached {
			t.Errorf("changed %s still hit the frontier cache", name)
		}
	}

	// Widening the energy grid reuses both cached syntheses and their
	// cells; only the new point does any work.
	wide := smokePareto(st)
	wide.EnergyWeights = []float64{0, 1.5, 3}
	got, err := ParetoSweep(wide)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Synthesized != 1 || got.Stats.SynthCached != 2 {
		t.Errorf("widened grid: synthesized %d, cached %d; want 1 new, 2 cached",
			got.Stats.Synthesized, got.Stats.SynthCached)
	}

	// The exact original config is a pure frontier hit.
	again, err := ParetoSweep(smokePareto(st))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Stats.FrontierCached {
		t.Errorf("unchanged sweep missed the frontier cache: %+v", again.Stats)
	}
}

// TestParetoShardedAssembly: two shards persist their halves and return
// ParetoIncompleteError; an unsharded pass over the shared store then
// assembles a frontier byte-identical to a storeless run, recomputing
// nothing.
func TestParetoShardedAssembly(t *testing.T) {
	ref, err := ParetoSweep(smokePareto(nil))
	if err != nil {
		t.Fatal(err)
	}
	csvWant, jsWant := renderFrontier(t, ref)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	totalOwned := 0
	for i := 0; i < 2; i++ {
		pc := smokePareto(st)
		pc.Shard = sim.Shard{Index: i, Count: 2}
		_, err := ParetoSweep(pc)
		var inc *ParetoIncompleteError
		if !errors.As(err, &inc) {
			t.Fatalf("shard %d: got err %v, want ParetoIncompleteError", i, err)
		}
		if inc.Points != 2 {
			t.Fatalf("shard %d: points = %d, want 2", i, inc.Points)
		}
		totalOwned += inc.Owned
		if !strings.Contains(inc.Error(), "pending") {
			t.Errorf("shard error lacks pending count: %v", inc)
		}
	}
	if totalOwned != 2 {
		t.Fatalf("shards owned %d points in total, want 2", totalOwned)
	}
	merged, err := ParetoSweep(smokePareto(st))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Stats.Synthesized != 0 || merged.Stats.CellsComputed != 0 {
		t.Errorf("assembly recomputed shard work: %+v", merged.Stats)
	}
	csvGot, jsGot := renderFrontier(t, merged)
	if !bytes.Equal(csvWant, csvGot) || !bytes.Equal(jsWant, jsGot) {
		t.Error("assembled frontier differs from storeless run")
	}
}

func TestParetoSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pc := smokePareto(nil)
	pc.Ctx = ctx
	if _, err := ParetoSweep(pc); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v", err)
	}
}

func TestParetoConfigValidation(t *testing.T) {
	cases := map[string]func(*ParetoConfig){
		"time budget":        func(pc *ParetoConfig) { pc.Base.TimeBudget = time.Second },
		"base energy weight": func(pc *ParetoConfig) { pc.Base.EnergyWeight = 1 },
		"base robust weight": func(pc *ParetoConfig) { pc.Base.RobustWeight = 1 },
		"duplicate weight":   func(pc *ParetoConfig) { pc.EnergyWeights = []float64{1, 1} },
		"negative weight":    func(pc *ParetoConfig) { pc.EnergyWeights = []float64{-1} },
		"zero rate":          func(pc *ParetoConfig) { pc.Rates = []float64{0, 0.1} },
		"unsorted rates":     func(pc *ParetoConfig) { pc.Rates = []float64{0.2, 0.1} },
		"bad fidelity":       func(pc *ParetoConfig) { pc.Fidelity = "nosuch" },
		"shard sans store":   func(pc *ParetoConfig) { pc.Store = nil; pc.Shard = sim.Shard{Index: 0, Count: 2} },
		"shard range":        func(pc *ParetoConfig) { pc.Shard = sim.Shard{Index: 2, Count: 2} },
	}
	for name, mutate := range cases {
		pc := smokePareto(nil)
		if name == "shard range" || name == "shard sans store" {
			// give the shard cases a store where they expect one
			if name == "shard range" {
				st, err := store.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				pc.Store = st
			}
		}
		mutate(&pc)
		if _, err := ParetoSweep(pc); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
		if _, err := pc.Points(); err == nil {
			t.Errorf("%s: Points accepted invalid config", name)
		}
	}
	if n, err := smokePareto(nil).Points(); err != nil || n != 2 {
		t.Fatalf("Points() = %d, %v; want 2, nil", n, err)
	}
	if n, err := (ParetoConfig{Base: smokePareto(nil).Base}).Points(); err != nil || n != len(DefaultEnergyWeights()) {
		t.Fatalf("defaulted Points() = %d, %v; want %d", n, err, len(DefaultEnergyWeights()))
	}
}
