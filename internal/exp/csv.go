package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters: every driver's rows can be exported as comma-separated
// series for external plotting, mirroring the paper's figure axes.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// Fig1CSV emits topology, class, latency_ns, saturation_pkt_node_ns.
func Fig1CSV(w io.Writer, points []Fig1Point) error {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{p.Topology, p.Class, f(p.ZeroLoadNs), f(p.SaturationPerNs),
			strconv.FormatBool(p.NetSmith)}
	}
	return writeCSV(w, []string{"topology", "class", "latency_ns", "saturation_pkt_node_ns", "netsmith"}, rows)
}

// Table2CSV emits the topology metrics table.
func Table2CSV(w io.Writer, rows []Table2Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{strconv.Itoa(r.Routers), r.Class, r.Topology,
			strconv.Itoa(r.Links), strconv.Itoa(r.Diameter), f(r.AvgHops), strconv.Itoa(r.Bisection),
			f(r.PaperAvgHops), strconv.Itoa(r.PaperBisection)}
	}
	return writeCSV(w, []string{"routers", "class", "topology", "links", "diameter",
		"avg_hops", "bisection", "paper_avg_hops", "paper_bisection"}, out)
}

// Fig5CSV emits one row per progress sample.
func Fig5CSV(w io.Writer, traces []Fig5Trace) error {
	var out [][]string
	for _, tr := range traces {
		for _, p := range tr.Points {
			out = append(out, []string{tr.Grid, tr.Class,
				f(p.Elapsed.Seconds()), f(p.Incumbent), f(p.Bound), f(p.Gap)})
		}
	}
	return writeCSV(w, []string{"grid", "class", "elapsed_s", "incumbent", "bound", "gap"}, out)
}

// Fig6CSV emits the full latency-vs-injection curves.
func Fig6CSV(w io.Writer, curves []Fig6Curve) error {
	var out [][]string
	for _, c := range curves {
		for _, p := range c.Sweep.Points {
			out = append(out, []string{c.Topology, c.Class, c.Pattern,
				f(p.OfferedRate), f(p.AvgLatencyNs), f(p.AcceptedPerNs),
				strconv.FormatBool(p.Saturated)})
		}
	}
	return writeCSV(w, []string{"topology", "class", "pattern", "offered_pkt_node_cycle",
		"latency_ns", "accepted_pkt_node_ns", "saturated"}, out)
}

// Fig7CSV emits measured vs bound throughput.
func Fig7CSV(w io.Writer, rows []Fig7Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Topology, f(r.NDBT), f(r.MCLB), f(r.CutBound), f(r.OccupancyBound)}
	}
	return writeCSV(w, []string{"topology", "ndbt", "mclb", "cut_bound", "occupancy_bound"}, out)
}

// Fig8CSV emits the PARSEC study.
func Fig8CSV(w io.Writer, rows []Fig8Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Benchmark, r.Topology, r.Class, f(r.Speedup), f(r.LatencyReduction)}
	}
	return writeCSV(w, []string{"benchmark", "topology", "class", "speedup", "latency_reduction"}, out)
}

// Fig9CSV emits mesh-normalized power/area.
func Fig9CSV(w io.Writer, rows []Fig9Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Topology, r.Class, f(r.Dynamic), f(r.Leakage), f(r.Total),
			f(r.RouterAreaR), f(r.WireAreaR), f(r.TotalAreaR)}
	}
	return writeCSV(w, []string{"topology", "class", "dynamic", "leakage", "total",
		"router_area", "wire_area", "total_area"}, out)
}

// Fig10CSV emits the shuffle study curves.
func Fig10CSV(w io.Writer, curves []Fig10Curve) error {
	var out [][]string
	for _, c := range curves {
		for _, p := range c.Sweep.Points {
			out = append(out, []string{c.Topology, c.Class,
				f(p.OfferedRate), f(p.AvgLatencyNs), f(p.AcceptedPerNs)})
		}
	}
	return writeCSV(w, []string{"topology", "class", "offered_pkt_node_cycle",
		"latency_ns", "accepted_pkt_node_ns"}, out)
}

// Fig11CSV emits the 48-router study curves.
func Fig11CSV(w io.Writer, curves []Fig11Curve) error {
	var out [][]string
	for _, c := range curves {
		for _, p := range c.Sweep.Points {
			out = append(out, []string{c.Topology, c.Class,
				f(p.OfferedRate), f(p.AvgLatencyNs), f(p.AcceptedPerNs)})
		}
	}
	return writeCSV(w, []string{"topology", "class", "offered_pkt_node_cycle",
		"latency_ns", "accepted_pkt_node_ns"}, out)
}

// ErrUnknownExperiment is returned by CSVByName for unknown ids.
var ErrUnknownExperiment = fmt.Errorf("exp: unknown experiment")
