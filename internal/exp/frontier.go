package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// Pareto-frontier emission. Rows keep the sweep's fixed weight-grid
// order and floats use the same deterministic formatting as the figure
// and matrix CSVs, so frontier output is bit-identical across reruns,
// GOMAXPROCS settings and warm/cold stores — a frontier diff between
// code versions is a real behavior change.

// FrontierCSV emits one row per surviving (non-dominated) sweep point:
// the swept weights, the synthesized topology's structural scores, and
// its measured latency/saturation/energy.
func FrontierCSV(w io.Writer, fr *Frontier) error {
	var rows [][]string
	for _, p := range fr.Points {
		rows = append(rows, []string{fr.Grid, fr.Class,
			f(p.EnergyWeight), f(p.RobustWeight),
			strconv.Itoa(p.Links), f(p.Objective), f(p.EnergyProxy),
			strconv.Itoa(p.CriticalLinks), strconv.Itoa(p.Fragility),
			f(p.LatencyNs), f(p.SaturationPerNs),
			f(p.AvgPowerMW), f(p.IdlePowerMW), f(p.ActivePowerMW),
			f(p.IdleShare), f(p.ActiveShare), f(p.EnergyPerFlitPJ)})
	}
	return writeCSV(w, []string{"grid", "class",
		"energy_weight", "robust_weight",
		"links", "objective", "energy_proxy",
		"critical_links", "fragility",
		"latency_ns", "saturation_pkt_node_ns",
		"avg_power_mw", "idle_power_mw", "active_power_mw",
		"idle_share", "active_share", "energy_per_flit_pj"}, rows)
}

// FrontierJSON emits the full frontier (sweep description, surviving
// points with topologies, fleet energy aggregate) as indented JSON.
// Stats are excluded — they describe one run, not the artifact.
func FrontierJSON(w io.Writer, fr *Frontier) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fr)
}

// PrintFrontier renders the frontier as an aligned table plus the
// fleet-level energy aggregate.
func PrintFrontier(w io.Writer, fr *Frontier) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "energy w\trobust w\tlinks\tzero-load ns\tsaturation pkt/node/ns\tavg mW\tidle mW\tactive mW\tpJ/flit")
	for _, p := range fr.Points {
		fmt.Fprintf(tw, "%g\t%g\t%d\t%.2f\t%.4f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			p.EnergyWeight, p.RobustWeight, p.Links,
			p.LatencyNs, p.SaturationPerNs,
			p.AvgPowerMW, p.IdlePowerMW, p.ActivePowerMW, p.EnergyPerFlitPJ)
	}
	tw.Flush()
	fe := fr.Energy
	fmt.Fprintf(w, "frontier: %d of %d points survive (%d dominated)\n",
		len(fr.Points), fr.Swept, fr.Pruned)
	fmt.Fprintf(w, "fleet: %.2f mW aggregate (%.1f%% idle, %.1f%% active), %.2f pJ/flit mean\n",
		fe.AggregatePowerMW, 100*fe.IdleShare, 100*fe.ActiveShare, fe.EnergyPerFlitPJ)
}
