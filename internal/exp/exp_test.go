package exp

import (
	"bytes"
	"strings"
	"testing"

	"netsmith/internal/layout"
	"netsmith/internal/synth"
)

// suite is shared across tests: experiments cache synthesized topologies
// and prepared setups.
var suite = NewSuite(true)

func TestTable2NetSmithDominates(t *testing.T) {
	rows, err := suite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Index 20-router rows by name.
	byName := map[string]Table2Row{}
	for _, r := range rows {
		if r.Routers == 20 {
			byName[r.Topology] = r
		}
	}
	// The paper's headline: in medium and large classes NetSmith beats
	// every expert topology on average hops (LatOp) and bisection
	// bandwidth (SCOp).
	for _, c := range []struct {
		cls     string
		experts []string
	}{
		{"medium", []string{"Folded Torus", "Kite-Medium", "LPBT-Hops-Medium"}},
		{"large", []string{"Butter Donut", "Double Butterfly", "Kite-Large"}},
	} {
		lat := byName["NS-LatOp-"+c.cls]
		sc := byName["NS-SCOp-"+c.cls]
		for _, e := range c.experts {
			er, ok := byName[e]
			if !ok {
				t.Fatalf("missing expert row %s", e)
			}
			if lat.AvgHops >= er.AvgHops {
				t.Errorf("%s: NS-LatOp avg hops %.3f not below %s %.3f",
					c.cls, lat.AvgHops, e, er.AvgHops)
			}
			if sc.Bisection < er.Bisection {
				t.Errorf("%s: NS-SCOp bisection %d below %s %d",
					c.cls, sc.Bisection, e, er.Bisection)
			}
		}
	}
	// Small class: Kite-Small is (per the paper) essentially optimal;
	// NS must at least match its bisection and come within 3% on hops.
	kite := byName["Kite-Small"]
	nsLat := byName["NS-LatOp-small"]
	if nsLat.AvgHops > kite.AvgHops*1.03 {
		t.Errorf("NS-LatOp-small %.3f much worse than Kite-Small %.3f", nsLat.AvgHops, kite.AvgHops)
	}
	// Cost neutrality: NetSmith uses at most the radix-4 link budget.
	for name, r := range byName {
		if strings.HasPrefix(name, "NS-") && r.Links > 40 {
			t.Errorf("%s uses %d links, beyond the 40 full-duplex budget", name, r.Links)
		}
	}
}

func TestTable2Print(t *testing.T) {
	rows, err := suite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Kite-Small", "NS-LatOp-medium", "Folded Torus", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestFig5TracesConverge(t *testing.T) {
	traces, err := suite.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 9 {
		t.Fatalf("9 traces expected (3 grids x 3 classes), got %d", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Points) == 0 {
			t.Errorf("%s %s: empty trace", tr.Grid, tr.Class)
			continue
		}
		// Gap must be non-increasing over the trace (incumbent only
		// improves; bound fixed).
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].Gap > tr.Points[i-1].Gap+1e-9 {
				t.Errorf("%s %s: gap increased", tr.Grid, tr.Class)
				break
			}
		}
		if tr.FinalGap < 0 || tr.FinalGap > 0.5 {
			t.Errorf("%s %s: final gap %.2f implausible", tr.Grid, tr.Class, tr.FinalGap)
		}
	}
	// The paper's observation: smaller link-length budgets converge to
	// smaller gaps on the 4x5 grid.
	var small, large float64
	for _, tr := range traces {
		if tr.Grid == "4x5" && tr.Class == "small" {
			small = tr.FinalGap
		}
		if tr.Grid == "4x5" && tr.Class == "large" {
			large = tr.FinalGap
		}
	}
	if small > large+0.05 {
		t.Errorf("small-class gap %.3f should not exceed large-class gap %.3f by much", small, large)
	}
}

func TestFig7BoundsHold(t *testing.T) {
	rows, err := suite.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	var nsMCLB, bestExpertMCLB float64
	for _, r := range rows {
		// Measured throughput must respect the analytic upper bounds
		// (within simulator slack: Bernoulli injection can momentarily
		// exceed; allow 10%).
		bound := r.CutBound
		if r.OccupancyBound < bound {
			bound = r.OccupancyBound
		}
		if r.MCLB > bound*1.10 {
			t.Errorf("%s: measured MCLB %.3f exceeds bound %.3f", r.Topology, r.MCLB, bound)
		}
		// MCLB routing should not lose to the NDBT heuristic.
		if r.MCLB < r.NDBT*0.92 {
			t.Errorf("%s: MCLB %.3f clearly below NDBT %.3f", r.Topology, r.MCLB, r.NDBT)
		}
		if strings.HasPrefix(r.Topology, "NS-") {
			if r.MCLB > nsMCLB {
				nsMCLB = r.MCLB
			}
		} else if r.MCLB > bestExpertMCLB {
			bestExpertMCLB = r.MCLB
		}
	}
	// NetSmith large topologies outperform experts even when experts get
	// MCLB routing (the paper's isolation claim).
	if nsMCLB <= bestExpertMCLB {
		t.Errorf("NS large MCLB %.3f not above best expert MCLB %.3f", nsMCLB, bestExpertMCLB)
	}
}

func TestFig9RelativePower(t *testing.T) {
	rows, err := suite.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Topology] = r
	}
	for name, r := range byName {
		// Leakage near mesh (same router count, similar links).
		if r.Leakage < 0.7 || r.Leakage > 2.2 {
			t.Errorf("%s leakage %.2fx mesh implausible", name, r.Leakage)
		}
		// Wire area should exceed mesh for richer topologies.
		if r.TotalAreaR < 0.5 || r.TotalAreaR > 4 {
			t.Errorf("%s area %.2fx mesh implausible", name, r.TotalAreaR)
		}
	}
	// Large NetSmith vs small NetSmith: slower clock lowers dynamic
	// power (paper: ~17% lower).
	large, small := byName["NS-LatOp-large"], byName["NS-LatOp-small"]
	if large.Dynamic >= small.Dynamic*1.15 {
		t.Errorf("NS large dynamic %.2f should not far exceed NS small %.2f", large.Dynamic, small.Dynamic)
	}
}

func TestNSShufOptBeatsUniformOnShuffle(t *testing.T) {
	g := layout.Grid4x5
	shuf, err := suite.NSShufOpt(g, layout.Medium)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := suite.NS(g, layout.Medium, synth.LatOp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(shuf.Name, "NS-ShufOpt") {
		t.Errorf("name %q", shuf.Name)
	}
	// Weighted hops on the shuffle matrix must be no worse than the
	// uniform-optimized topology's.
	w := make([][]float64, g.N())
	for i := range w {
		w[i] = make([]float64, g.N())
	}
	for src := 0; src < g.N(); src++ {
		dst := 2 * src
		if src >= g.N()/2 {
			dst = (2*src + 1) % g.N()
		}
		if dst != src {
			w[src][dst] = 1
		}
	}
	if shuf.WeightedAverageHops(w) > lat.WeightedAverageHops(w)+1e-9 {
		t.Errorf("ShufOpt weighted hops %.3f worse than LatOp %.3f",
			shuf.WeightedAverageHops(w), lat.WeightedAverageHops(w))
	}
}

func TestSuiteCaching(t *testing.T) {
	a, err := suite.NS(layout.Grid4x5, layout.Medium, synth.LatOp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := suite.NS(layout.Grid4x5, layout.Medium, synth.LatOp)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("NS topologies must be cached per (grid, class, objective)")
	}
}
