package exp

import (
	"fmt"
	"io"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/power"
	"netsmith/internal/route"
)

// Fig9Row is one topology's mesh-normalized power and area (Figure 9).
type Fig9Row struct {
	Topology string
	Class    string
	power.Relative
}

// fig9Load is the uniform offered load at which activity is evaluated.
const fig9Load = 0.10

// Fig9 computes DSENT-substitute power and area for the 20-router
// topologies, normalized to mesh.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	mesh := expert.Mesh(layout.Grid4x5)
	meshRouting, err := route.MCLB(mesh, route.MCLBOptions{Seed: s.Seed, Restarts: 2, Sweeps: 10})
	if err != nil {
		return nil, err
	}
	model := power.Default22nm()
	base := power.Analyze(mesh, meshRouting, fig9Load, model)

	set, err := s.twentyRouterSet()
	if err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, t := range set {
		r, err := route.MCLB(t, route.MCLBOptions{Seed: s.Seed, Restarts: 2, Sweeps: 10})
		if err != nil {
			return nil, err
		}
		rep := power.Analyze(t, r, fig9Load, model)
		rows = append(rows, Fig9Row{
			Topology: t.Name,
			Class:    t.Class.String(),
			Relative: rep.RelativeTo(base),
		})
	}
	return rows, nil
}

// PrintFig9 renders the normalized power/area table.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: power and area relative to mesh (lower is better)")
	fmt.Fprintf(w, "%-20s %-7s %8s %8s %8s %10s %9s %9s\n",
		"Topology", "Class", "Dynamic", "Leakage", "Total", "RouterArea", "WireArea", "TotalArea")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %-7s %8.2f %8.2f %8.2f %10.2f %9.2f %9.2f\n",
			r.Topology, r.Class, r.Dynamic, r.Leakage, r.Total,
			r.RouterAreaR, r.WireAreaR, r.TotalAreaR)
	}
}
