package exp

import (
	"fmt"
	"strings"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/synth"
)

// MatrixSetups prepares scenario-matrix topologies the one way every
// front end (netbench -matrix, netsmith serve) must share: "mesh" is
// the expert baseline with NDBT routing, "ns" is synthesized through
// the cache (synth.MatrixNSConfig) with MCLB routing, and both Prepare
// with the matrix seed. The routing and seed are baked into every
// cell's Setup fingerprint, so a private copy of this logic that
// drifted would silently stop CLI and HTTP runs from sharing store
// cells — it lives here, next to the other experiment drivers, for the
// same reason sim.ApplyFidelity and synth.MatrixNSConfig are shared.
// The returned bool reports whether every "ns" synthesis came from the
// cache. population/generations select population-mode synthesis for
// the "ns" topology (0 keeps the classic restart annealer).
func MatrixSetups(topos []string, g *layout.Grid, cl layout.Class, st *store.Store, energyWeight, robustWeight float64, seed int64, synthIters, population, generations int) ([]*sim.Setup, bool, error) {
	var setups []*sim.Setup
	synthAllCached := true
	for _, name := range topos {
		switch strings.TrimSpace(name) {
		case "mesh":
			setup, err := sim.Prepare(expert.Mesh(g), sim.UseNDBT, seed)
			if err != nil {
				return nil, false, err
			}
			setups = append(setups, setup)
		case "ns":
			res, hit, err := synth.CachedGenerate(st,
				synth.MatrixNSConfig(g, cl, energyWeight, robustWeight, seed, synthIters, population, generations))
			if err != nil {
				return nil, false, err
			}
			if !hit {
				synthAllCached = false
			}
			setup, err := sim.Prepare(res.Topology, sim.UseMCLB, seed)
			if err != nil {
				return nil, false, err
			}
			setups = append(setups, setup)
		default:
			return nil, false, fmt.Errorf("unknown topology %q (want mesh or ns)", name)
		}
	}
	return setups, synthAllCached, nil
}
