package exp

import (
	"fmt"
	"io"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// Fig11Curve is one 48-router topology's uniform-random behaviour
// (Figure 11: the scalability study on the 8x6 layout).
type Fig11Curve struct {
	Topology string
	Class    string
	Sweep    *sim.SweepResult
}

// Fig11 evaluates the 48-router (8x6) networks: the expert topologies
// that scale (Kite-Large and LPBT do not, per the paper) and NetSmith
// LatOp per class.
func (s *Suite) Fig11() ([]Fig11Curve, error) {
	g := layout.Grid8x6
	var tops []*topo.Topology
	for _, name := range []string{expert.NameKiteSmall, expert.NameFoldedTorus,
		expert.NameKiteMedium, expert.NameButterDonut, expert.NameDoubleButterfly} {
		t, err := expert.Get(name, g)
		if err != nil {
			return nil, err
		}
		tops = append(tops, t)
	}
	for _, c := range layout.Classes() {
		t, err := s.NS(g, c, synth.LatOp)
		if err != nil {
			return nil, err
		}
		tops = append(tops, t)
	}
	uniform := traffic.Uniform{N: g.N()}
	var curves []Fig11Curve
	for _, t := range tops {
		sr, err := s.curve(t, uniform)
		if err != nil {
			return nil, fmt.Errorf("fig11 %s: %w", t.Name, err)
		}
		curves = append(curves, Fig11Curve{Topology: t.Name, Class: t.Class.String(), Sweep: sr})
	}
	return curves, nil
}

// PrintFig11 renders the scalability study.
func PrintFig11(w io.Writer, curves []Fig11Curve) {
	fmt.Fprintln(w, "Figure 11: synthetic uniform random traffic, 48 (8x6) router NoIs")
	fmt.Fprintf(w, "%-20s %-7s %12s %18s\n", "Topology", "Class", "ZeroLoad(ns)", "SatTput(pkt/n/ns)")
	for _, c := range curves {
		fmt.Fprintf(w, "%-20s %-7s %12.2f %18.3f\n",
			c.Topology, c.Class, c.Sweep.ZeroLoadLatencyNs, c.Sweep.SaturationPerNs)
	}
}
