package exp

import (
	"fmt"
	"io"

	"netsmith/internal/sim"
	"netsmith/internal/traffic"
)

// Fig1Point is one topology's position on the latency-vs-saturation
// scatter of the paper's Figure 1.
type Fig1Point struct {
	Topology        string
	Class           string
	NetSmith        bool
	ZeroLoadNs      float64 // average packet latency at low load
	SaturationPerNs float64 // packets/node/ns
}

// Fig1 measures average packet latency and saturation throughput for
// every 20-router topology under uniform random traffic.
func (s *Suite) Fig1() ([]Fig1Point, error) {
	set, err := s.twentyRouterSet()
	if err != nil {
		return nil, err
	}
	var points []Fig1Point
	for _, t := range set {
		sr, err := s.curve(t, traffic.Uniform{N: t.N()})
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", t.Name, err)
		}
		points = append(points, Fig1Point{
			Topology:        t.Name,
			Class:           t.Class.String(),
			NetSmith:        routingFor(t.Name) == sim.UseMCLB,
			ZeroLoadNs:      sr.ZeroLoadLatencyNs,
			SaturationPerNs: sr.SaturationPerNs,
		})
	}
	return points, nil
}

// PrintFig1 renders the scatter as a table (latency down, throughput
// right: the paper's lower-right corner is best).
func PrintFig1(w io.Writer, points []Fig1Point) {
	fmt.Fprintln(w, "Figure 1: average packet latency vs saturation throughput (uniform random, 20 routers)")
	fmt.Fprintf(w, "%-20s %-7s %12s %18s\n", "Topology", "Class", "Latency(ns)", "SatTput(pkt/n/ns)")
	for _, p := range points {
		marker := " "
		if p.NetSmith {
			marker = "*" // solid markers in the paper
		}
		fmt.Fprintf(w, "%-20s %-7s %12.2f %18.3f %s\n", p.Topology, p.Class, p.ZeroLoadNs, p.SaturationPerNs, marker)
	}
	fmt.Fprintln(w, "(* = NetSmith-generated)")
}
