package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"netsmith/internal/sim"
)

// Scenario-matrix emission. Rows are ordered by the matrix's fixed
// (topology, pattern, rate) input order and floats are formatted with
// the same deterministic rules as the figure CSVs, so matrix output is
// bit-identical across reruns and GOMAXPROCS settings.

// MatrixCSV emits one row per matrix cell. The energy columns carry the
// measured averages when the matrix ran with Base.CollectEnergy and
// zeros otherwise; the fault column is empty for fault-free cells and
// the robustness columns (delivered fraction, post/pre latency
// inflation, dropped flits) read 1/0/0 there.
func MatrixCSV(w io.Writer, res *sim.MatrixResult) error {
	var rows [][]string
	for _, c := range res.Curves {
		for _, p := range c.Points {
			rows = append(rows, []string{c.Topology, c.Pattern, c.Fault,
				f(p.OfferedRate), f(p.AvgLatencyNs), f(p.AcceptedPerNs),
				strconv.FormatBool(p.Saturated), strconv.FormatBool(p.Stalled),
				f(p.AvgPowerMW), f(p.EnergyPerFlitPJ),
				f(p.DeliveredFraction), f(p.LatencyInflation),
				strconv.Itoa(p.DroppedFlits)})
		}
	}
	return writeCSV(w, []string{"topology", "pattern", "fault",
		"offered_pkt_node_cycle",
		"latency_ns", "accepted_pkt_node_ns", "saturated", "stalled",
		"avg_power_mw", "energy_per_flit_pj",
		"delivered_fraction", "latency_inflation", "dropped_flits"}, rows)
}

// MatrixJSON emits the full matrix (curves with per-point samples and
// derived zero-load latency / saturation throughput) as indented JSON.
func MatrixJSON(w io.Writer, res *sim.MatrixResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// PrintMatrix renders the per-curve summary (zero-load latency and
// saturation throughput per topology x pattern x fault) as an aligned
// table, with measured-energy columns (power and dynamic pJ/flit at the
// lowest offered rate) when the matrix collected energy and robustness
// columns (worst delivered fraction and total drops over the curve)
// when it ran a fault axis.
func PrintMatrix(w io.Writer, res *sim.MatrixResult) {
	energy, faults := false, false
	for _, c := range res.Curves {
		if len(c.Points) > 0 && c.Points[0].AvgPowerMW > 0 {
			energy = true
		}
		if c.Fault != "" {
			faults = true
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "topology\tpattern"
	if faults {
		header += "\tfault"
	}
	header += "\tzero-load ns\tsaturation pkt/node/ns"
	if energy {
		header += "\tzero-load mW\tzero-load pJ/flit"
	}
	if faults {
		header += "\tmin delivered\tdrops"
	}
	fmt.Fprintln(tw, header)
	for _, c := range res.Curves {
		fmt.Fprintf(tw, "%s\t%s", c.Topology, c.Pattern)
		if faults {
			label := c.Fault
			if label == "" {
				label = "none"
			}
			fmt.Fprintf(tw, "\t%s", label)
		}
		fmt.Fprintf(tw, "\t%.2f\t%.4f", c.ZeroLoadLatencyNs, c.SaturationPerNs)
		if energy {
			fmt.Fprintf(tw, "\t%.2f\t%.2f", c.Points[0].AvgPowerMW, c.Points[0].EnergyPerFlitPJ)
		}
		if faults {
			minDelivered, drops := 1.0, 0
			for _, p := range c.Points {
				if p.DeliveredFraction < minDelivered {
					minDelivered = p.DeliveredFraction
				}
				drops += p.DroppedFlits
			}
			fmt.Fprintf(tw, "\t%.4f\t%d", minDelivered, drops)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
