package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"netsmith/internal/sim"
)

// Scenario-matrix emission. Rows are ordered by the matrix's fixed
// (topology, pattern, rate) input order and floats are formatted with
// the same deterministic rules as the figure CSVs, so matrix output is
// bit-identical across reruns and GOMAXPROCS settings.

// MatrixCSV emits one row per matrix cell.
func MatrixCSV(w io.Writer, res *sim.MatrixResult) error {
	var rows [][]string
	for _, c := range res.Curves {
		for _, p := range c.Points {
			rows = append(rows, []string{c.Topology, c.Pattern,
				f(p.OfferedRate), f(p.AvgLatencyNs), f(p.AcceptedPerNs),
				strconv.FormatBool(p.Saturated), strconv.FormatBool(p.Stalled)})
		}
	}
	return writeCSV(w, []string{"topology", "pattern", "offered_pkt_node_cycle",
		"latency_ns", "accepted_pkt_node_ns", "saturated", "stalled"}, rows)
}

// MatrixJSON emits the full matrix (curves with per-point samples and
// derived zero-load latency / saturation throughput) as indented JSON.
func MatrixJSON(w io.Writer, res *sim.MatrixResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// PrintMatrix renders the per-curve summary (zero-load latency and
// saturation throughput per topology x pattern) as an aligned table.
func PrintMatrix(w io.Writer, res *sim.MatrixResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "topology\tpattern\tzero-load ns\tsaturation pkt/node/ns")
	for _, c := range res.Curves {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.4f\n",
			c.Topology, c.Pattern, c.ZeroLoadLatencyNs, c.SaturationPerNs)
	}
	tw.Flush()
}
