package exp

import (
	"fmt"
	"io"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
	"netsmith/internal/traffic"
)

// Fig7Row isolates topology vs routing benefits on large topologies
// (Figure 7): measured saturation under NDBT vs MCLB routing, plus the
// analytic cut-based and occupancy-based throughput bounds.
type Fig7Row struct {
	Topology string
	// Measured saturation throughput (packets/node/ns).
	NDBT, MCLB float64
	// Analytic upper bounds (packets/node/ns).
	CutBound, OccupancyBound float64
}

// throughputBounds computes the analytic bounds in packets/node/ns.
//
// Cut bound: for a partition (U, V), uniform traffic of lambda
// packets/node/cycle loads the cut with lambda*|U||V|/(n-1) packets per
// cycle, each of avgFlits flits, against a capacity of minCross flits
// per cycle: lambda <= B(U,V)*(n-1)/avgFlits, minimized at the sparsest
// cut.
//
// Occupancy bound: total flit-hop demand lambda*n*avgHops*avgFlits per
// cycle cannot exceed the aggregate link capacity E flits/cycle.
func throughputBounds(t *topo.Topology) (cut, occ float64) {
	clock := t.Class.ClockGHz()
	n := float64(t.N())
	avgFlits := traffic.AvgFlitsPerPacket
	sc := t.SparsestCut()
	cut = sc.Bandwidth * (n - 1) / avgFlits * clock
	e := float64(t.NumDirectedLinks())
	occ = e / (n * t.AverageHops() * avgFlits) * clock
	return cut, occ
}

// Fig7 compares NDBT and MCLB routing on the large 20-router topologies.
func (s *Suite) Fig7() ([]Fig7Row, error) {
	g := layout.Grid4x5
	var tops []*topo.Topology
	for _, name := range []string{expert.NameButterDonut, expert.NameDoubleButterfly, expert.NameKiteLarge} {
		t, err := expert.Get(name, g)
		if err != nil {
			return nil, err
		}
		tops = append(tops, t)
	}
	for _, obj := range []synth.Objective{synth.LatOp, synth.SCOp} {
		t, err := s.NS(g, layout.Large, obj)
		if err != nil {
			return nil, err
		}
		tops = append(tops, t)
	}
	uniform := traffic.Uniform{N: g.N()}
	var rows []Fig7Row
	for _, t := range tops {
		row := Fig7Row{Topology: t.Name}
		row.CutBound, row.OccupancyBound = throughputBounds(t)
		for _, kind := range []sim.RoutingKind{sim.UseNDBT, sim.UseMCLB} {
			st, err := s.Setup(t, kind)
			if err != nil {
				return nil, err
			}
			sr, err := st.Curve(uniform, s.rates(), s.Fast, s.Seed)
			if err != nil {
				return nil, err
			}
			if kind == sim.UseNDBT {
				row.NDBT = sr.SaturationPerNs
			} else {
				row.MCLB = sr.SaturationPerNs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig7 renders measured throughput against analytic bounds.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: isolating topology and routing benefits (large topologies, uniform random)")
	fmt.Fprintf(w, "%-20s %8s %8s %10s %10s  (pkt/node/ns)\n", "Topology", "NDBT", "MCLB", "CutBound", "OccBound")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %8.3f %8.3f %10.3f %10.3f\n",
			r.Topology, r.NDBT, r.MCLB, r.CutBound, r.OccupancyBound)
	}
}
