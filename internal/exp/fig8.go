package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"netsmith/internal/expert"
	"netsmith/internal/fullsys"
	"netsmith/internal/layout"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
)

// Fig8Row is one benchmark x topology cell of the PARSEC study
// (Figure 8): execution-time speedup and packet-latency reduction, both
// relative to mesh.
type Fig8Row struct {
	Benchmark        string
	Topology         string
	Class            string
	Speedup          float64 // execution time mesh/topology
	LatencyReduction float64 // 1 - latency/mesh latency
}

// Fig8Topologies selects the NoIs compared in the full-system study:
// Kite per class plus NetSmith LatOp per class (the paper additionally
// shows SCOp, folded torus, LPBT; the full mode includes those too).
func (s *Suite) fig8Topologies() ([]*topo.Topology, error) {
	g := layout.Grid4x5
	names := []string{expert.NameKiteSmall, expert.NameKiteMedium, expert.NameKiteLarge}
	if !s.Fast {
		names = append(names, expert.NameFoldedTorus, expert.NameButterDonut,
			expert.NameDoubleButterfly, expert.NameLPBTHopsMedium)
	}
	var out []*topo.Topology
	for _, n := range names {
		t, err := expert.Get(n, g)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	for _, c := range layout.Classes() {
		t, err := s.NS(g, c, synth.LatOp)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if !s.Fast {
		for _, c := range layout.Classes() {
			t, err := s.NS(g, c, synth.SCOp)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// Fig8 runs the PARSEC workload model on mesh plus the comparison NoIs
// and reports per-benchmark speedup and latency reduction vs mesh,
// appending a geometric-mean row per topology.
func (s *Suite) Fig8() ([]Fig8Row, error) {
	tops, err := s.fig8Topologies()
	if err != nil {
		return nil, err
	}
	benchmarks := fullsys.Benchmarks()
	if s.Fast {
		// Every third benchmark spans the load range.
		benchmarks = []fullsys.Benchmark{benchmarks[0], benchmarks[4], benchmarks[7], benchmarks[11]}
	}
	model := fullsys.DefaultExecModel()

	type cell struct{ cpi, lat float64 }
	baseline := map[string]cell{}
	meshSys, err := fullsys.BuildExpert(expert.Mesh(layout.Grid4x5), s.Seed)
	if err != nil {
		return nil, err
	}
	for _, b := range benchmarks {
		res, err := meshSys.RunWorkload(b, model, s.Seed, s.Fast)
		if err != nil {
			return nil, err
		}
		baseline[b.Name] = cell{cpi: res.CPI, lat: res.AvgPacketNs}
	}

	var rows []Fig8Row
	for _, t := range tops {
		builder := fullsys.BuildExpert
		if strings.HasPrefix(t.Name, "NS-") {
			builder = fullsys.Build
		}
		sys, err := builder(t, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", t.Name, err)
		}
		prodSpeedup := 1.0
		for _, b := range benchmarks {
			res, err := sys.RunWorkload(b, model, s.Seed, s.Fast)
			if err != nil {
				return nil, err
			}
			base := baseline[b.Name]
			sp := base.cpi / res.CPI
			rows = append(rows, Fig8Row{
				Benchmark:        b.Name,
				Topology:         t.Name,
				Class:            t.Class.String(),
				Speedup:          sp,
				LatencyReduction: 1 - res.AvgPacketNs/base.lat,
			})
			prodSpeedup *= sp
		}
		rows = append(rows, Fig8Row{
			Benchmark: "geomean",
			Topology:  t.Name,
			Class:     t.Class.String(),
			Speedup:   math.Pow(prodSpeedup, 1/float64(len(benchmarks))),
		})
	}
	return rows, nil
}

// PrintFig8 renders the study grouped by benchmark.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8: PARSEC speedup and packet latency reduction vs mesh")
	fmt.Fprintf(w, "%-14s %-20s %-7s %9s %12s\n", "Benchmark", "Topology", "Class", "Speedup", "LatReduction")
	for _, r := range rows {
		if r.Benchmark == "geomean" {
			fmt.Fprintf(w, "%-14s %-20s %-7s %9.3f %12s\n", r.Benchmark, r.Topology, r.Class, r.Speedup, "-")
			continue
		}
		fmt.Fprintf(w, "%-14s %-20s %-7s %9.3f %11.1f%%\n",
			r.Benchmark, r.Topology, r.Class, r.Speedup, 100*r.LatencyReduction)
	}
}
