package exp

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"netsmith/internal/sim"
	"netsmith/internal/synth"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFig1CSV(t *testing.T) {
	pts := []Fig1Point{
		{Topology: "Kite-Small", Class: "small", ZeroLoadNs: 2.8, SaturationPerNs: 0.5},
		{Topology: "NS-LatOp-small", Class: "small", NetSmith: true, ZeroLoadNs: 2.7, SaturationPerNs: 0.55},
	}
	var buf bytes.Buffer
	if err := Fig1CSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "topology" || rows[2][4] != "true" {
		t.Errorf("csv content wrong: %v", rows)
	}
}

func TestTable2CSV(t *testing.T) {
	var buf bytes.Buffer
	err := Table2CSV(&buf, []Table2Row{{Routers: 20, Class: "medium", Topology: "X",
		Links: 40, Diameter: 4, AvgHops: 2.1, Bisection: 10, PaperAvgHops: 2.06, PaperBisection: 10}})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][5] != "2.1" || rows[1][7] != "2.06" {
		t.Errorf("csv values wrong: %v", rows[1])
	}
}

func TestFig5CSVFlattensTraces(t *testing.T) {
	traces := []Fig5Trace{{
		Grid: "4x5", Class: "small",
		Points: []synth.ProgressPoint{
			{Elapsed: time.Second, Incumbent: 900, Bound: 800, Gap: 0.11},
			{Elapsed: 2 * time.Second, Incumbent: 850, Bound: 800, Gap: 0.06},
		},
	}}
	var buf bytes.Buffer
	if err := Fig5CSV(&buf, traces); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[2][2] != "2" {
		t.Errorf("elapsed column wrong: %v", rows[2])
	}
}

func TestCurveCSVs(t *testing.T) {
	sweep := &sim.SweepResult{Points: []sim.SweepPoint{
		{OfferedRate: 0.01, AvgLatencyNs: 3, AcceptedPerNs: 0.03},
		{OfferedRate: 0.2, AvgLatencyNs: 30, AcceptedPerNs: 0.4, Saturated: true},
	}}
	var buf bytes.Buffer
	if err := Fig6CSV(&buf, []Fig6Curve{{Topology: "T", Class: "large", Pattern: "uniform", Sweep: sweep}}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); !strings.Contains(got, "true") || !strings.Contains(got, "uniform") {
		t.Errorf("fig6 csv missing fields:\n%s", got)
	}
	buf.Reset()
	if err := Fig10CSV(&buf, []Fig10Curve{{Topology: "T", Class: "small", Sweep: sweep}}); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 3 {
		t.Errorf("fig10 rows = %d", len(rows))
	}
	buf.Reset()
	if err := Fig11CSV(&buf, []Fig11Curve{{Topology: "T", Class: "small", Sweep: sweep}}); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 3 {
		t.Errorf("fig11 rows = %d", len(rows))
	}
}

func TestFig789CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7CSV(&buf, []Fig7Row{{Topology: "T", NDBT: 0.3, MCLB: 0.4, CutBound: 0.6, OccupancyBound: 0.8}}); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); rows[1][2] != "0.4" {
		t.Errorf("fig7 csv: %v", rows)
	}
	buf.Reset()
	if err := Fig8CSV(&buf, []Fig8Row{{Benchmark: "canneal", Topology: "T", Class: "large", Speedup: 1.03, LatencyReduction: 0.2}}); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); rows[1][0] != "canneal" {
		t.Errorf("fig8 csv: %v", rows)
	}
	buf.Reset()
	if err := Fig9CSV(&buf, []Fig9Row{{Topology: "T", Class: "small"}}); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 2 {
		t.Errorf("fig9 csv: %v", rows)
	}
}
