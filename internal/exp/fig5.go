package exp

import (
	"fmt"
	"io"
	"time"

	"netsmith/internal/layout"
	"netsmith/internal/synth"
)

// Fig5Trace is one solver-progress curve: objective-bounds gap vs time
// for a LatOp synthesis run (the paper's Figure 5).
type Fig5Trace struct {
	Grid   string
	Class  string
	Points []synth.ProgressPoint
	// FinalGap is the bounds gap when the budget expired.
	FinalGap float64
}

// Fig5 runs LatOp synthesis with progress tracking for the 20-, 30- and
// 48-router layouts across all three link-length classes. Time budgets
// scale with Fast (the paper uses minutes to days; the shapes — smaller
// classes converge faster, larger layouts take longer — reproduce at any
// budget).
func (s *Suite) Fig5() ([]Fig5Trace, error) {
	grids := []*layout.Grid{layout.Grid4x5, layout.Grid6x5, layout.Grid8x6}
	budget := map[*layout.Grid]time.Duration{
		layout.Grid4x5: 4 * time.Second,
		layout.Grid6x5: 8 * time.Second,
		layout.Grid8x6: 12 * time.Second,
	}
	if s.Fast {
		budget = map[*layout.Grid]time.Duration{
			layout.Grid4x5: 1 * time.Second,
			layout.Grid6x5: 2 * time.Second,
			layout.Grid8x6: 3 * time.Second,
		}
	}
	var traces []Fig5Trace
	for _, g := range grids {
		for _, c := range layout.Classes() {
			var pts []synth.ProgressPoint
			res, err := synth.Generate(synth.Config{
				Grid: g, Class: c, Objective: synth.LatOp,
				Seed: s.Seed, Iterations: 1 << 30, Restarts: 1 << 20,
				TimeBudget: budget[g],
				Progress:   func(p synth.ProgressPoint) { pts = append(pts, p) },
			})
			if err != nil {
				return nil, err
			}
			traces = append(traces, Fig5Trace{
				Grid:     fmt.Sprintf("%dx%d", g.Rows, g.Cols),
				Class:    c.String(),
				Points:   pts,
				FinalGap: res.Gap,
			})
		}
	}
	return traces, nil
}

// PrintFig5 renders each trace as gap-vs-time samples.
func PrintFig5(w io.Writer, traces []Fig5Trace) {
	fmt.Fprintln(w, "Figure 5: solver objective-bounds gap vs time (LatOp)")
	for _, tr := range traces {
		fmt.Fprintf(w, "  %s %s: final gap %.1f%%; trace:", tr.Grid, tr.Class, 100*tr.FinalGap)
		step := len(tr.Points)/6 + 1
		for i := 0; i < len(tr.Points); i += step {
			p := tr.Points[i]
			fmt.Fprintf(w, " (%.2fs, %.0f%%)", p.Elapsed.Seconds(), 100*p.Gap)
		}
		if n := len(tr.Points); n > 0 {
			p := tr.Points[n-1]
			fmt.Fprintf(w, " (%.2fs, %.0f%%)", p.Elapsed.Seconds(), 100*p.Gap)
		}
		fmt.Fprintln(w)
	}
}
