package exp

import (
	"fmt"
	"io"

	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/traffic"
)

// Fig6Curve is one latency-vs-injection curve (Figure 6: synthetic
// traffic on 20-router NoIs; (a) coherence = uniform random, (b)
// memory = MC request/reply).
type Fig6Curve struct {
	Topology string
	Class    string
	Pattern  string
	Sweep    *sim.SweepResult
}

// Fig6 sweeps every 20-router topology under both traffic types.
func (s *Suite) Fig6() ([]Fig6Curve, error) {
	set, err := s.twentyRouterSet()
	if err != nil {
		return nil, err
	}
	g := layout.Grid4x5
	patterns := []traffic.Pattern{
		traffic.Uniform{N: g.N()},
		traffic.NewMemory(g.CoreRouters(), g.MemoryControllerRouters()),
	}
	var curves []Fig6Curve
	for _, t := range set {
		for _, p := range patterns {
			sr, err := s.curve(t, p)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s/%s: %w", t.Name, p.Name(), err)
			}
			curves = append(curves, Fig6Curve{
				Topology: t.Name, Class: t.Class.String(), Pattern: p.Name(), Sweep: sr,
			})
		}
	}
	return curves, nil
}

// PrintFig6 renders the curves grouped by pattern.
func PrintFig6(w io.Writer, curves []Fig6Curve) {
	fmt.Fprintln(w, "Figure 6: synthetic traffic, 20 (4x5) router NoIs")
	for _, pattern := range []string{"uniform", "memory"} {
		label := "(a) coherence traffic"
		if pattern == "memory" {
			label = "(b) memory traffic"
		}
		fmt.Fprintln(w, label)
		fmt.Fprintf(w, "  %-20s %-7s %11s %17s\n", "Topology", "Class", "ZeroLoad(ns)", "SatTput(pkt/n/ns)")
		for _, c := range curves {
			if c.Pattern != pattern {
				continue
			}
			fmt.Fprintf(w, "  %-20s %-7s %11.2f %17.3f\n",
				c.Topology, c.Class, c.Sweep.ZeroLoadLatencyNs, c.Sweep.SaturationPerNs)
		}
	}
}
