package exp

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/sim"
	"netsmith/internal/store"
	"netsmith/internal/traffic"
)

// smokeMatrix builds a small 4x4 mesh matrix config exercising both
// stateless and stateful (bursty) registry patterns, with energy
// collection on so the determinism comparisons cover the measured
// counters.
func smokeMatrix(t *testing.T) sim.MatrixConfig {
	t.Helper()
	g := layout.NewGrid(4, 4)
	st, err := sim.Prepare(expert.Mesh(g), sim.UseNDBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	env := traffic.GridEnv(g)
	reg := traffic.Default()
	return sim.MatrixConfig{
		Setups: []*sim.Setup{st},
		Patterns: []sim.PatternFactory{
			sim.RegistryFactory(reg, "uniform", env, nil),
			sim.RegistryFactory(reg, "tornado", env, nil),
			sim.RegistryFactory(reg, "bursty", env, traffic.Params{"ponoff": "0.1", "poffon": "0.1"}),
		},
		Rates: []float64{0.02, 0.30},
		Base: sim.Config{
			WarmupCycles: 300, MeasureCycles: 800, DrainCycles: 1600,
			// Energy columns are part of the determinism contract: the
			// GOMAXPROCS/rerun comparisons below cover the measured
			// counters bit-for-bit.
			CollectEnergy: true,
		},
		Seed: 42,
	}
}

func renderMatrix(t *testing.T, res *sim.MatrixResult) (csv, js []byte) {
	t.Helper()
	var cb, jb bytes.Buffer
	if err := MatrixCSV(&cb, res); err != nil {
		t.Fatal(err)
	}
	if err := MatrixJSON(&jb, res); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestMatrixDeterministicAcrossGOMAXPROCS is the sweep-determinism
// contract: the same seed must emit bit-identical CSV and JSON whether
// cells run on one worker or eight.
func TestMatrixDeterministicAcrossGOMAXPROCS(t *testing.T) {
	mc := smokeMatrix(t)
	run := func(procs int) (csv, js []byte) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, err := sim.RunMatrix(mc)
		if err != nil {
			t.Fatal(err)
		}
		return renderMatrix(t, res)
	}
	csv1, js1 := run(1)
	csv8, js8 := run(8)
	if !bytes.Equal(csv1, csv8) {
		t.Errorf("matrix CSV differs between GOMAXPROCS 1 and 8:\n%s\n----\n%s", csv1, csv8)
	}
	if !bytes.Equal(js1, js8) {
		t.Error("matrix JSON differs between GOMAXPROCS 1 and 8")
	}
	// Rerun at the same parallelism: also bit-identical.
	csvAgain, jsAgain := run(8)
	if !bytes.Equal(csv8, csvAgain) || !bytes.Equal(js8, jsAgain) {
		t.Error("matrix output differs across reruns")
	}
}

func TestMatrixShapeAndCSVColumns(t *testing.T) {
	mc := smokeMatrix(t)
	res, err := sim.RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d, want 3 (1 topology x 3 patterns)", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Points) != 2 {
			t.Fatalf("%s/%s: %d points, want 2", c.Topology, c.Pattern, len(c.Points))
		}
		if c.ZeroLoadLatencyNs <= 0 {
			t.Errorf("%s/%s: zero-load latency %v", c.Topology, c.Pattern, c.ZeroLoadLatencyNs)
		}
	}
	if got := res.Curve("Mesh", "tornado"); got == nil || got.Pattern != "tornado" {
		t.Error("Curve lookup failed")
	}
	if res.Curve("Mesh", "nosuch") != nil {
		t.Error("Curve lookup invented a row")
	}
	csv, _ := renderMatrix(t, res)
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 1+3*2 {
		t.Fatalf("CSV rows = %d, want header + 6 cells", len(lines))
	}
	wantHeader := "topology,pattern,fault,offered_pkt_node_cycle,latency_ns,accepted_pkt_node_ns,saturated,stalled,avg_power_mw,energy_per_flit_pj,delivered_fraction,latency_inflation,dropped_flits"
	if lines[0] != wantHeader {
		t.Errorf("CSV header = %s", lines[0])
	}
	for _, c := range res.Curves {
		for _, p := range c.Points {
			if p.AvgPowerMW <= 0 || p.EnergyPerFlitPJ <= 0 {
				t.Errorf("%s/%s@%g: energy columns not populated: %+v",
					c.Topology, c.Pattern, p.OfferedRate, p)
			}
		}
	}
	var buf bytes.Buffer
	PrintMatrix(&buf, res)
	if !strings.Contains(buf.String(), "tornado") {
		t.Error("PrintMatrix dropped a pattern row")
	}
	if !strings.Contains(buf.String(), "zero-load mW") {
		t.Error("PrintMatrix dropped the energy columns for an energy-collecting matrix")
	}
}

// TestMatrixShardMergeBytesIdentical is the acceptance pin for sharded
// execution: a 2-shard run merged through a shared store must emit CSV
// and JSON byte-identical to the unsharded run.
func TestMatrixShardMergeBytesIdentical(t *testing.T) {
	mc := smokeMatrix(t)
	res, err := sim.RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	csvWant, jsWant := renderMatrix(t, res)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mc.Store = st
	mc.Shard = sim.Shard{Index: 0, Count: 2}
	var inc *sim.IncompleteError
	if _, err := sim.RunMatrix(mc); !errors.As(err, &inc) {
		t.Fatalf("first shard: got err %v, want IncompleteError", err)
	}
	mc.Shard = sim.Shard{Index: 1, Count: 2}
	merged, err := sim.RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	csvGot, jsGot := renderMatrix(t, merged)
	if !bytes.Equal(csvWant, csvGot) {
		t.Errorf("sharded CSV differs from unsharded:\n%s\n----\n%s", csvWant, csvGot)
	}
	if !bytes.Equal(jsWant, jsGot) {
		t.Error("sharded JSON differs from unsharded")
	}
}

// TestMatrixResumeBytesIdentical is the acceptance pin for resume: an
// interrupted run's partial store plus a re-run must emit bytes
// identical to an uninterrupted run.
func TestMatrixResumeBytesIdentical(t *testing.T) {
	mc := smokeMatrix(t)
	res, err := sim.RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	csvWant, jsWant := renderMatrix(t, res)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Interrupted: a third of the cells reach the store, then the
	// process "dies" (IncompleteError stands in for the kill).
	mc.Store = st
	mc.Shard = sim.Shard{Index: 0, Count: 3}
	var inc *sim.IncompleteError
	if _, err := sim.RunMatrix(mc); !errors.As(err, &inc) {
		t.Fatalf("partial shard: got err %v, want IncompleteError", err)
	}
	// Resumed: same config, same store, unsharded.
	mc.Shard = sim.Shard{}
	resumed, err := sim.RunMatrix(mc)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.CacheHits == 0 {
		t.Fatalf("resume did not use the store: %+v", resumed.Stats)
	}
	csvGot, jsGot := renderMatrix(t, resumed)
	if !bytes.Equal(csvWant, csvGot) {
		t.Error("resumed CSV differs from uninterrupted run")
	}
	if !bytes.Equal(jsWant, jsGot) {
		t.Error("resumed JSON differs from uninterrupted run")
	}
}

func TestMatrixErrors(t *testing.T) {
	if _, err := sim.RunMatrix(sim.MatrixConfig{}); err == nil {
		t.Error("empty matrix accepted")
	}
	mc := smokeMatrix(t)
	mc.Patterns = append(mc.Patterns, sim.RegistryFactory(traffic.Default(), "nosuch", traffic.Env{N: 9}, nil))
	if _, err := sim.RunMatrix(mc); err == nil {
		t.Error("bad pattern factory did not propagate")
	}
}
