package vc

import (
	"testing"

	"netsmith/internal/expert"
	"netsmith/internal/layout"
	"netsmith/internal/route"
	"netsmith/internal/synth"
	"netsmith/internal/topo"
)

func TestCDGCycleDetection(t *testing.T) {
	g := newCDG(4)
	// Paths around a bidirectional ring 0-1-2-3 create a CDG cycle when
	// all four "turns" exist: (0,1)->(1,2)->(2,3)->(3,0)->(0,1).
	g.add(route.Path{0, 1, 2})
	g.add(route.Path{1, 2, 3})
	g.add(route.Path{2, 3, 0})
	if !g.acyclic() {
		t.Fatal("three turns cannot close the cycle")
	}
	g.add(route.Path{3, 0, 1})
	if g.acyclic() {
		t.Fatal("four turns around a ring must form a CDG cycle")
	}
	g.remove(route.Path{3, 0, 1})
	if !g.acyclic() {
		t.Fatal("removing the closing path must restore acyclicity")
	}
}

func TestCDGRefcounting(t *testing.T) {
	g := newCDG(4)
	p := route.Path{0, 1, 2}
	g.add(p)
	g.add(p)
	g.remove(p)
	// One reference remains: edge still present.
	if len(g.succ) == 0 {
		t.Fatal("refcounted edge vanished after single remove")
	}
	g.remove(p)
	if len(g.succ) != 0 {
		t.Fatal("edges must vanish when refcount reaches zero")
	}
}

func TestAssignRing(t *testing.T) {
	// Unidirectional ring: all-to-all shortest paths wrap around and the
	// single-layer CDG is cyclic, so at least 2 VCs are required.
	g := layout.NewGrid(1, 6)
	tp := topo.New("ring", g, layout.Large)
	for i := 0; i < 6; i++ {
		tp.AddLink(i, (i+1)%6)
	}
	ps, err := route.AllShortestPaths(tp, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := route.RandomSelection("ring", ps, 1)
	a, err := Assign(r, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVCs < 2 {
		t.Errorf("ring requires >= 2 VCs, got %d", a.NumVCs)
	}
	if err := a.Verify(r); err != nil {
		t.Fatal(err)
	}
}

func TestAssignMeshXY(t *testing.T) {
	// A mesh with XY-like (monotone) routing should need very few VCs.
	m := expert.Mesh(layout.Grid4x5)
	r, err := route.NDBT(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Assign(r, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(r); err != nil {
		t.Fatal(err)
	}
	if a.NumVCs > 3 {
		t.Errorf("mesh NDBT needs %d VCs, expected <= 3", a.NumVCs)
	}
}

func TestAssignKiteAndNetSmith(t *testing.T) {
	// The paper: 4 VCs suffice for all 20-router configurations.
	cases := []*topo.Topology{}
	kite, err := expert.Get(expert.NameKiteSmall, layout.Grid4x5)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, kite)
	res, err := synth.Generate(synth.Config{Grid: layout.Grid4x5, Class: layout.Medium,
		Objective: synth.LatOp, Seed: 1, Iterations: 8000, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, res.Topology)
	for _, tp := range cases {
		r, err := route.MCLB(tp, route.MCLBOptions{Seed: 2, Restarts: 4})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Assign(r, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		if err := a.Verify(r); err != nil {
			t.Fatalf("%s: %v", tp.Name, err)
		}
		if a.NumVCs > 4 {
			t.Errorf("%s: %d VCs needed, paper reports <= 4 for 20-router configs", tp.Name, a.NumVCs)
		}
	}
}

func TestMaxVCsEnforced(t *testing.T) {
	g := layout.NewGrid(1, 6)
	tp := topo.New("ring", g, layout.Large)
	for i := 0; i < 6; i++ {
		tp.AddLink(i, (i+1)%6)
	}
	ps, _ := route.AllShortestPaths(tp, 0)
	r := route.RandomSelection("ring", ps, 1)
	if _, err := Assign(r, Options{Seed: 1, MaxVCs: 1}); err == nil {
		t.Error("MaxVCs=1 must fail on a unidirectional ring")
	}
}

func TestOccupancyBalanced(t *testing.T) {
	m := expert.Mesh(layout.Grid4x5)
	ps, _ := route.AllShortestPaths(m, 0)
	r := route.RandomSelection("mesh", ps, 11)
	a, err := Assign(r, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	occ := a.Occupancy(r)
	total := 0
	for _, w := range occ {
		total += w
	}
	sumHops := 0
	for s := 0; s < 20; s++ {
		for d := 0; d < 20; d++ {
			if s != d {
				sumHops += r.Table[s][d].Hops()
			}
		}
	}
	if total != sumHops {
		t.Errorf("occupancy sums to %d, want %d", total, sumHops)
	}
	if a.NumVCs >= 2 {
		// Balancing should keep the heaviest layer under 85% of total.
		max := 0
		for _, w := range occ {
			if w > max {
				max = w
			}
		}
		if float64(max) > 0.85*float64(total) {
			t.Errorf("unbalanced layers: %v", occ)
		}
	}
}

func TestVerifyCatchesBadAssignment(t *testing.T) {
	g := layout.NewGrid(1, 4)
	tp := topo.New("ring", g, layout.Large)
	for i := 0; i < 4; i++ {
		tp.AddLink(i, (i+1)%4)
	}
	ps, _ := route.AllShortestPaths(tp, 0)
	r := route.RandomSelection("ring", ps, 1)
	// Force everything into one layer: wrap-around flows close the CDG
	// cycle.
	bad := &Assignment{NumVCs: 1, LayerOf: make([][]int, 4)}
	for s := range bad.LayerOf {
		bad.LayerOf[s] = make([]int, 4)
		for d := range bad.LayerOf[s] {
			if s == d {
				bad.LayerOf[s][d] = -1
			}
		}
	}
	if err := bad.Verify(r); err == nil {
		t.Error("Verify must reject a cyclic single-layer assignment")
	}
}
